/**
 * @file
 * profile_script — the paper's measurement methodology as a tool.
 *
 * Profiles a perlish or tclish script the way §3 profiles the real
 * interpreters: virtual-command distribution, execute-instruction
 * concentration (Figures 1-2), memory-model cost (§3.3) and the
 * machine-level stall breakdown (Figure 3) for that one script.
 *
 * Usage:
 *   ./build/examples/profile_script perl path/to/script.pl
 *   ./build/examples/profile_script tcl  path/to/script.tcl
 *   ./build/examples/profile_script            (built-in demo script)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "harness/runner.hh"
#include "sim/machine.hh"

using namespace interp;
using namespace interp::harness;

namespace {

const char *kDemo = R"(
# Built-in demo: word-frequency counting (hash + regex heavy).
$text = "the structure and the performance of the interpreters";
foreach $w (split(/ /, $text)) {
    $count{$w} += 1;
}
$distinct = scalar(keys(%count));
$thecount = $count{"the"};
print "words: $distinct distinct, 'the' x $thecount\n";
)";

} // namespace

int
main(int argc, char **argv)
{
    Lang lang = Lang::Perl;
    std::string source = kDemo;
    std::string label = "built-in demo";

    if (argc == 3) {
        if (std::strcmp(argv[1], "tcl") == 0)
            lang = Lang::Tcl;
        else if (std::strcmp(argv[1], "perl") != 0) {
            std::fprintf(stderr, "usage: %s [perl|tcl script]\n",
                         argv[0]);
            return 2;
        }
        std::ifstream in(argv[2]);
        if (!in.good()) {
            std::fprintf(stderr, "cannot open %s\n", argv[2]);
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
        label = argv[2];
    }

    BenchSpec spec;
    spec.lang = lang;
    spec.name = "profile";
    spec.source = source;
    spec.needsInputs = true; // make the standard inputs available
    Measurement m = run(spec);

    std::printf("== %s (%s) ==\n\n", label.c_str(), langName(lang));
    std::printf("program output:\n%s\n", m.stdoutText.c_str());

    std::printf("software profile (Table 2 view):\n");
    std::printf("  virtual commands      %llu\n",
                (unsigned long long)m.commands);
    std::printf("  native instructions   %llu  (+%llu precompile)\n",
                (unsigned long long)(m.profile.userInstructions() -
                                     m.profile.precompileInsts()),
                (unsigned long long)m.profile.precompileInsts());
    std::printf("  fetch/decode per cmd  %.1f\n",
                m.profile.fetchDecodePerCommand());
    std::printf("  execute per cmd       %.1f\n",
                m.profile.executePerCommand());
    std::printf("  memory model          %.1f insts/access, %.2f%% of "
                "total\n\n",
                m.profile.memModelCostPerAccess(),
                100.0 * m.profile.memModelFraction());

    std::printf("command distribution (Figure 2 view):\n");
    auto sorted = m.profile.byExecuteInsts();
    uint64_t total_exec = m.profile.executeInsts();
    int shown = 0;
    for (const auto &[id, stats] : sorted) {
        if (shown++ >= 10 || stats.execute == 0)
            break;
        std::printf("  %-14s %8llu cmds  %5.1f%% of execute insts\n",
                    id < m.commandNames.size() ? m.commandNames[id].c_str()
                                               : "?",
                    (unsigned long long)stats.retired,
                    total_exec ? 100.0 * stats.execute / total_exec : 0);
    }
    std::printf("  top-3 commands cover %.1f%% of execute instructions "
                "(Figure 1 point)\n\n",
                100.0 * m.profile.cumulativeExecuteShare(3));

    std::printf("machine behaviour (Figure 3 view, Table 3 machine):\n");
    std::printf("  cycles        %llu\n", (unsigned long long)m.cycles);
    std::printf("  busy          %.1f%% of issue slots\n",
                m.breakdown.busyPct);
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        if (m.breakdown.stallPct[c] >= 0.05)
            std::printf("  %-12s  %.1f%%\n",
                        sim::stallCauseName((sim::StallCause)c),
                        m.breakdown.stallPct[c]);
    return 0;
}
