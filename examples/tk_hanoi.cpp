/**
 * @file
 * tk_hanoi — run the Tk-style Towers of Hanoi script and render the
 * final framebuffer as ASCII art.
 *
 * Demonstrates the embedding API the way Tcl was actually used: a C++
 * host application creates an interpreter, extends it with a display
 * (here the software rasterizer behind the tk_* commands), runs a
 * script, and inspects the results from the host side.
 *
 * Usage: ./build/examples/tk_hanoi [ndisks (1..7)]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gfx/framebuffer.hh"
#include "harness/workloads.hh"
#include "tclish/interp.hh"
#include "trace/execution.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

using namespace interp;

int
main(int argc, char **argv)
{
    int ndisks = argc > 1 ? std::atoi(argv[1]) : 5;
    if (ndisks < 1 || ndisks > 7) {
        std::fprintf(stderr, "ndisks must be 1..7\n");
        return 2;
    }

    std::string script = harness::loadProgram("tclish/hanoi.tcl");
    size_t at = script.find("set ndisks 5");
    if (at != std::string::npos)
        script.replace(at, 12, "set ndisks " + std::to_string(ndisks));

    trace::Execution exec;
    trace::Profile profile;
    exec.addSink(&profile);
    vfs::FileSystem fs;
    tclish::TclInterp tcl(exec, fs);

    auto result = tcl.run(script, 200'000'000);
    if (!result.exited) {
        std::fprintf(stderr, "script did not finish\n");
        return 1;
    }
    std::printf("%s", fs.stdoutCapture().c_str());

    gfx::Framebuffer *fb = tcl.framebuffer();
    if (!fb) {
        std::fprintf(stderr, "no framebuffer created\n");
        return 1;
    }

    // Downsample 2x2 -> one character.
    static const char kShades[] = " .:-=+*#%@";
    for (int y = 0; y + 1 < fb->height(); y += 2) {
        for (int x = 0; x + 1 < fb->width(); x += 2) {
            int v = fb->pixel(x, y) + fb->pixel(x + 1, y) +
                    fb->pixel(x, y + 1) + fb->pixel(x + 1, y + 1);
            v = v / 4;
            std::putchar(kShades[v > 9 ? 9 : v]);
        }
        std::putchar('\n');
    }

    std::printf("\n%llu Tcl commands, %llu native instructions "
                "(%.0f per command), %.1f%% in the Tk library\n",
                (unsigned long long)result.commands,
                (unsigned long long)profile.userInstructions(),
                (double)profile.userInstructions() /
                    (double)result.commands,
                100.0 * profile.nativeLibInsts() /
                    (double)profile.executeInsts());
    return 0;
}
