/**
 * @file
 * Quickstart: the public API in one page.
 *
 * Runs the same small program in all five execution modes (compiled
 * direct, MIPSI, the JVM-like VM, perlish, tclish) under full
 * instrumentation, and prints the software-level profile and the
 * simulated timing for each — a one-screen recreation of the paper's
 * core comparison.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/runner.hh"

using namespace interp;
using namespace interp::harness;

int
main()
{
    // The same computation, expressed in each language.
    const char *minic_src = R"(
        int main() {
            int total = 0;
            int i;
            for (i = 1; i <= 1000; i += 1)
                total += (i * i) % 97;
            print_str("total=");
            print_int(total);
            print_char('\n');
            return 0;
        }
    )";
    const char *perl_src = R"(
        $total = 0;
        for ($i = 1; $i <= 1000; $i += 1) {
            $total += ($i * $i) % 97;
        }
        print "total=$total\n";
    )";
    const char *tcl_src = R"(
        set total 0
        for {set i 1} {$i <= 1000} {incr i} {
            set total [expr {$total + ($i * $i) % 97}]
        }
        puts "total=$total"
    )";

    struct Entry
    {
        Lang lang;
        const char *source;
    };
    const Entry entries[] = {
        {Lang::C, minic_src},     {Lang::Mipsi, minic_src},
        {Lang::Java, minic_src},  {Lang::Perl, perl_src},
        {Lang::Tcl, tcl_src},
    };

    std::printf("%-6s %10s %14s %10s %10s %12s %6s\n", "mode",
                "commands", "instructions", "f/d per", "exec per",
                "cycles", "busy%");
    std::printf("------------------------------------------------------"
                "--------------\n");

    std::string reference;
    for (const Entry &entry : entries) {
        BenchSpec spec;
        spec.lang = entry.lang;
        spec.name = "quickstart";
        spec.source = entry.source;

        Measurement m = run(spec); // Profile + Table 3 machine model

        if (reference.empty())
            reference = m.stdoutText;
        else if (m.stdoutText != reference)
            std::printf("!! output mismatch under %s\n",
                        langName(entry.lang));

        std::printf("%-6s %10llu %14llu %10.1f %10.1f %12llu %5.1f%%\n",
                    langName(m.lang),
                    (unsigned long long)m.commands,
                    (unsigned long long)m.profile.userInstructions(),
                    m.profile.fetchDecodePerCommand(),
                    m.profile.executePerCommand(),
                    (unsigned long long)m.cycles, m.breakdown.busyPct);
    }
    std::printf("\nprogram output (identical in all modes): %s",
                reference.c_str());
    return 0;
}
