/**
 * @file
 * cache_explorer — architectural what-if for an interpreter workload.
 *
 * §4/§5 ask whether interpreters merit special hardware. This tool
 * answers the cheaper question the paper leaves the reader with: how
 * much would ordinary cache scaling help each interpreter? It runs
 * `des` in every execution mode over a grid of machine configurations
 * and prints cycles and the dominant stall for each.
 *
 * Usage: ./build/examples/cache_explorer [--jobs N] [benchmark]
 *        (benchmark = any macro-suite name; default "des")
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "sim/machine.hh"

using namespace interp;
using namespace interp::harness;

namespace {

const char *
dominantStall(const sim::SlotBreakdown &bd)
{
    int best = 0;
    for (int c = 1; c < sim::kNumStallCauses; ++c)
        if (bd.stallPct[c] > bd.stallPct[best])
            best = c;
    return sim::stallCauseName((sim::StallCause)best);
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    std::string which = argc > 1 ? argv[1] : "des";

    struct Config
    {
        const char *name;
        uint32_t icache_kb, iassoc, dcache_kb, dassoc;
    };
    const Config configs[] = {
        {"base (8K/1w + 8K/1w)", 8, 1, 8, 1},
        {"I$ 32K/2w", 32, 2, 8, 1},
        {"D$ 32K/2w", 8, 1, 32, 2},
        {"both 32K/2w", 32, 2, 32, 2},
        {"both 64K/4w", 64, 4, 64, 4},
    };
    constexpr size_t kNumConfigs = sizeof(configs) / sizeof(configs[0]);

    std::vector<BenchSpec> matching;
    for (BenchSpec &spec : macroSuite())
        if (spec.name == which)
            matching.push_back(std::move(spec));

    // Flatten the benchmark x config grid into one parallel job list;
    // spec i of the flat suite is (matching[i / kNumConfigs],
    // configs[i % kNumConfigs]).
    std::vector<BenchSpec> grid;
    std::vector<sim::MachineConfig> cfgs;
    for (const BenchSpec &spec : matching) {
        for (const Config &config : configs) {
            sim::MachineConfig cfg;
            cfg.icache.sizeBytes = config.icache_kb * 1024;
            cfg.icache.assoc = config.iassoc;
            cfg.dcache.sizeBytes = config.dcache_kb * 1024;
            cfg.dcache.assoc = config.dassoc;
            cfgs.push_back(cfg);
            grid.push_back(spec);
        }
    }
    std::vector<Measurement> results = runSuiteWith(
        grid, jobs, [&cfgs](const BenchSpec &spec, size_t i) {
            return run(spec, {}, &cfgs[i]);
        });

    for (size_t b = 0; b < matching.size(); ++b) {
        const BenchSpec &spec = matching[b];
        std::printf("=== %s-%s ===\n", langName(spec.lang),
                    spec.name.c_str());
        uint64_t base_cycles = 0;
        for (size_t c = 0; c < kNumConfigs; ++c) {
            const Measurement &m = results[b * kNumConfigs + c];
            if (m.failed) {
                std::printf("  %-22s failed: %s\n", configs[c].name,
                            m.error.c_str());
                continue;
            }
            if (base_cycles == 0)
                base_cycles = m.cycles;
            std::printf("  %-22s %12llu cycles  %5.2fx  busy %4.1f%%  "
                        "worst stall: %s\n",
                        configs[c].name, (unsigned long long)m.cycles,
                        (double)base_cycles / (double)m.cycles,
                        m.breakdown.busyPct, dominantStall(m.breakdown));
        }
        std::printf("\n");
    }
    if (matching.empty()) {
        std::fprintf(stderr,
                     "no macro benchmark named '%s' (try des, compress, "
                     "tcllex, txt2html, ...)\n",
                     which.c_str());
        return 2;
    }
    std::printf("Reading: if ordinary cache growth recovers most "
                "stalls, special-purpose\ninterpreter hardware is hard "
                "to justify — the paper's §5 conclusion.\n");
    return 0;
}
