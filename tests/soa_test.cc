/**
 * @file
 * SoA-batch equivalence: one recorded tape, replayed twice through
 * identically configured sinks — once with the bundle-at-a-time path
 * (the default Sink::onBatch forwarding loop reconstructing a Bundle
 * per element) and once with the batched SoA column consumers
 * (Machine::simulateBatch, Profile::onBatch, CacheSweep::onBatch).
 * Every observable counter must match exactly: simulated cycles, the
 * full stall ledger, per-structure hit/miss counts, the Profile
 * attribution tables, and the cache-sweep miss grid. This is the
 * test that pins "the SoA layout changed the memory layout, not the
 * event stream"; the sanitizer preset additionally runs it with
 * INTERP_SIM_CHECK's shadow machine cross-checking every batch.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "harness/record_replay.hh"
#include "harness/runner.hh"
#include "sim/cache_sweep.hh"
#include "sim/machine.hh"
#include "trace/profile.hh"
#include "tracefile/reader.hh"

namespace {

using namespace interp;
namespace fs = std::filesystem;

/**
 * Wrapper that erases a sink's batched fast path: it does not
 * override onBatch, so the default forwarding loop materializes each
 * Bundle from the SoA columns and delivers it through onBundle —
 * exactly what every consumer saw before batching existed.
 */
class BundleAtATime : public trace::Sink
{
  public:
    explicit BundleAtATime(trace::Sink &inner) : inner(inner) {}
    void onBundle(const trace::Bundle &b) override
    {
        inner.onBundle(b);
    }
    void onCommand(trace::CommandId id) override
    {
        inner.onCommand(id);
    }
    void onMemModelAccess() override { inner.onMemModelAccess(); }

  private:
    trace::Sink &inner;
};

/**
 * Record one Mipsi microbenchmark and return the tape path. The tape
 * goes into ./soa_tapes (the ctest working directory): this test is
 * the FIXTURES_SETUP for bench_topdown_smoke, which replays the same
 * directory (tests/CMakeLists.txt, `topdown` label).
 */
std::string
recordTape()
{
    fs::path dir = "soa_tapes";
    fs::create_directories(dir);
    harness::BenchSpec spec =
        harness::microBench(harness::Lang::Mipsi, "string-split", 40);
    harness::TraceIo io;
    io.recordDir = dir.string();
    harness::runOrReplay(spec, io);
    fs::path tape = dir / "mipsi-string-split.itr";
    EXPECT_TRUE(fs::exists(tape)) << tape;
    return tape.string();
}

void
expectSameMachine(const sim::Machine &a, const sim::Machine &b)
{
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.instructions(), b.instructions());
    EXPECT_EQ(a.totalSlots(), b.totalSlots());
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        EXPECT_EQ(a.slotsLostTo((sim::StallCause)c),
                  b.slotsLostTo((sim::StallCause)c))
            << sim::stallCauseName((sim::StallCause)c);
    EXPECT_EQ(a.icache().hits(), b.icache().hits());
    EXPECT_EQ(a.icache().misses(), b.icache().misses());
    EXPECT_EQ(a.dcache().hits(), b.dcache().hits());
    EXPECT_EQ(a.dcache().misses(), b.dcache().misses());
    EXPECT_EQ(a.l2cache().hits(), b.l2cache().hits());
    EXPECT_EQ(a.l2cache().misses(), b.l2cache().misses());
    EXPECT_EQ(a.itlb().hits(), b.itlb().hits());
    EXPECT_EQ(a.itlb().misses(), b.itlb().misses());
    EXPECT_EQ(a.dtlb().hits(), b.dtlb().hits());
    EXPECT_EQ(a.dtlb().misses(), b.dtlb().misses());
}

void
expectSameProfile(const trace::Profile &a, const trace::Profile &b)
{
    EXPECT_EQ(a.commands(), b.commands());
    EXPECT_EQ(a.instructions(), b.instructions());
    EXPECT_EQ(a.fetchDecodeInsts(), b.fetchDecodeInsts());
    EXPECT_EQ(a.executeInsts(), b.executeInsts());
    EXPECT_EQ(a.precompileInsts(), b.precompileInsts());
    EXPECT_EQ(a.nativeLibInsts(), b.nativeLibInsts());
    EXPECT_EQ(a.memModelInsts(), b.memModelInsts());
    EXPECT_EQ(a.systemInsts(), b.systemInsts());
    EXPECT_EQ(a.memModelAccesses(), b.memModelAccesses());

    const auto &pa = a.perCommand();
    const auto &pb = b.perCommand();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].retired, pb[i].retired) << "command " << i;
        EXPECT_EQ(pa[i].fetchDecode, pb[i].fetchDecode)
            << "command " << i;
        EXPECT_EQ(pa[i].execute, pb[i].execute) << "command " << i;
        EXPECT_EQ(pa[i].nativeLib, pb[i].nativeLib)
            << "command " << i;
    }
}

TEST(SoaEquivalence, BatchedSinksMatchBundleAtATimeReplay)
{
    std::string tape = recordTape();
    tracefile::TraceReader reader(tape);

    // Pass 1: bundle-at-a-time through the default forwarding loop.
    sim::Machine slowMachine;
    trace::Profile slowProfile;
    sim::CacheSweep slowSweep({4, 16}, {1, 2});
    BundleAtATime wrapMachine(slowMachine);
    BundleAtATime wrapProfile(slowProfile);
    BundleAtATime wrapSweep(slowSweep);
    reader.replay({&wrapMachine, &wrapProfile, &wrapSweep});

    // Pass 2: the batched SoA column consumers.
    sim::Machine fastMachine;
    trace::Profile fastProfile;
    sim::CacheSweep fastSweep({4, 16}, {1, 2});
    reader.replay({&fastMachine, &fastProfile, &fastSweep});

    expectSameMachine(slowMachine, fastMachine);
    expectSameProfile(slowProfile, fastProfile);

    EXPECT_EQ(slowSweep.instructions(), fastSweep.instructions());
    auto sa = slowSweep.results();
    auto sb = fastSweep.results();
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].misses, sb[i].misses) << "sweep point " << i;
        EXPECT_EQ(sa[i].missesPer100Insts, sb[i].missesPer100Insts)
            << "sweep point " << i;
    }
}

} // namespace
