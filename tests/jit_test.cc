/**
 * @file
 * Tier-3 jit suite: ExecBuffer/JitArtifact units (W^X lifetime,
 * contained overflow, poison), golden equivalence of the jit modes
 * against their faithful baselines across the macro suite, the
 * poisoned-artifact previous-tier fallback, the TierManager jit rung,
 * and the synthetic-region i-cache attribution the §4 simulator sees.
 *
 * The tier-3 golden contract is the tier-2 contract extended one
 * rung: stdout, command streams, and per-command retired and
 * nativeLib attribution stay byte-identical to the *baseline*;
 * per-command (execute - memModel) is byte-identical too; fetch/
 * decode and the memory-model subset may only shrink. Stencil
 * emission is charged to Precompile.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "jit/artifact.hh"
#include "jit/exec_buffer.hh"
#include "support/logging.hh"
#include "tier/tier.hh"
#include "trace/code_registry.hh"
#include "trace/profile.hh"

namespace {

using namespace interp;
using namespace interp::harness;

BenchSpec
macroSpec(Lang lang, const std::string &name)
{
    for (BenchSpec &spec : macroSuite())
        if (spec.lang == lang && spec.name == name)
            return spec;
    ADD_FAILURE() << "no macro benchmark " << langName(lang) << "/"
                  << name;
    return {};
}

/** Counting-only run: the golden checks compare attribution, not
 *  simulated cycles, so skip the machine model for speed. */
Measurement
runCounting(const BenchSpec &spec)
{
    return run(spec, {}, nullptr, /*with_machine=*/false);
}

// --- ExecBuffer / JitArtifact units ------------------------------------

/** Step helper recording the indices it ran; stops at stopAt. */
struct StepLog
{
    std::vector<uint32_t> seen;
    uint32_t stopAt = 0xffffffffu;
};

uint8_t
logStep(void *ctx, uint32_t index)
{
    auto *log = (StepLog *)ctx;
    log->seen.push_back(index);
    return index == log->stopAt ? 1 : 0;
}

TEST(JitUnit, ExecBufferEnforcesWxLifetime)
{
    jit::ExecBuffer buf;
    if (!buf.map(64))
        GTEST_SKIP() << "host refuses anonymous mappings";
    EXPECT_TRUE(buf.mapped());
    EXPECT_FALSE(buf.sealed());
    buf.emit8(0xc3);
    EXPECT_EQ(buf.used(), 1u);

    if (!buf.seal())
        GTEST_SKIP() << "host refuses executable memory";
    EXPECT_TRUE(buf.sealed());
    // Writing into an executable mapping is exactly the bug W^X
    // exists to stop: emitting after the flip is a contained fatal.
    ScopedFatalThrow guard;
    EXPECT_THROW(buf.emit8(0x90), FatalError);
}

TEST(JitUnit, ExecBufferOverflowIsContainedFatal)
{
    jit::ExecBuffer buf;
    if (!buf.map(1)) // rounded up to one page
        GTEST_SKIP() << "host refuses anonymous mappings";
    std::vector<uint8_t> page(buf.capacity(), 0x90);
    buf.emit(page.data(), page.size()); // exactly full: fine
    ScopedFatalThrow guard;
    EXPECT_THROW(buf.emit8(0xc3), FatalError);
}

TEST(JitUnit, OverflowedBuildIsContainedFatal)
{
    // A capacity too small for the stencil stream must fail loudly
    // during build (never UB, never a half-emitted region). The
    // mapping is page-rounded, so overflow needs more than one page
    // of stencils against a one-page capacity.
    if (!jit::JitArtifact::build(&logStep, 1)->native())
        GTEST_SKIP() << "portable backend: no emit path to overflow";
    ScopedFatalThrow guard;
    EXPECT_THROW(jit::JitArtifact::build(&logStep, 200,
                                         /*capacity_bytes=*/16),
                 FatalError);
}

TEST(JitUnit, ArtifactRunsStepsWithFallThroughAndEarlyOut)
{
    auto art = jit::JitArtifact::build(&logStep, 5);
    ASSERT_TRUE(art);
    EXPECT_EQ(art->numSteps(), 5u);

    StepLog all;
    art->enter(&all, 0);
    EXPECT_EQ(all.seen, (std::vector<uint32_t>{0, 1, 2, 3, 4}));

    StepLog tail;
    art->enter(&tail, 3);
    EXPECT_EQ(tail.seen, (std::vector<uint32_t>{3, 4}));

    StepLog early;
    early.stopAt = 2;
    art->enter(&early, 0);
    EXPECT_EQ(early.seen, (std::vector<uint32_t>{0, 1, 2}));

    StepLog none;
    art->enter(&none, 5); // past the end: a no-op, not a fault
    EXPECT_TRUE(none.seen.empty());
}

TEST(JitUnit, NativeBackendEmitsTheExpectedBytes)
{
#if defined(__x86_64__) && defined(__linux__)
    auto art = jit::JitArtifact::build(&logStep, 7);
    ASSERT_TRUE(art);
    if (!art->native())
        GTEST_SKIP() << "host refuses executable memory";
    EXPECT_EQ(art->codeBytes(), jit::JitArtifact::kEntryBytes +
                                    7 * jit::JitArtifact::kStencilBytes +
                                    1);
#else
    auto art = jit::JitArtifact::build(&logStep, 7);
    EXPECT_FALSE(art->native());
    EXPECT_EQ(art->codeBytes(), 0u);
#endif
}

TEST(JitUnit, PoisonedArtifactNeverExecutes)
{
    auto art = jit::JitArtifact::build(&logStep, 3);
    art->debugPoison();
    EXPECT_TRUE(art->poisoned());
    StepLog log;
    ScopedFatalThrow guard;
    EXPECT_THROW(art->enter(&log, 0), FatalError);
    EXPECT_TRUE(log.seen.empty());
}

// --- golden equivalence -------------------------------------------------

/**
 * The tier-3 golden property against the *baseline* (not merely the
 * previous tier): everything the program does is identical; retired
 * and nativeLib are byte-identical per command; execute may differ
 * only inside the memory-model subset, and only downward; fetch/
 * decode may only shrink. Totals accumulate into the out-params for
 * suite-level strict-reduction claims.
 */
void
expectJitGolden(const BenchSpec &base_spec, uint64_t *base_fdmm = nullptr,
                uint64_t *jit_fdmm = nullptr)
{
    BenchSpec jit_spec = base_spec;
    jit_spec.lang = tierJitOf(base_spec.lang);
    ASSERT_TRUE(isJit(jit_spec.lang)) << "spec has no jit tier";

    Measurement base = runCounting(base_spec);
    Measurement jit = runCounting(jit_spec);

    EXPECT_EQ(base.stdoutText, jit.stdoutText);
    EXPECT_TRUE(base.finished);
    EXPECT_TRUE(jit.finished);
    EXPECT_EQ(base.commands, jit.commands);
    EXPECT_EQ(base.commandNames, jit.commandNames);

    const auto &bc = base.profile.perCommand();
    const auto &jc = jit.profile.perCommand();
    ASSERT_EQ(bc.size(), jc.size());
    for (size_t i = 0; i < bc.size(); ++i) {
        EXPECT_EQ(bc[i].retired, jc[i].retired) << "command " << i;
        EXPECT_EQ(bc[i].nativeLib, jc[i].nativeLib) << "command " << i;
        EXPECT_EQ(bc[i].execute - bc[i].memModel,
                  jc[i].execute - jc[i].memModel)
            << "command " << i;
    }
    // fetch/decode may move between command rows (tcl-jit charges
    // region glue to the command whose body is running, where the
    // baseline charged the dispatch to the reader) — the category
    // contract is on the totals, which may only shrink.
    EXPECT_LE(jit.profile.fetchDecodeInsts(),
              base.profile.fetchDecodeInsts());
    // memModel inherits tier-2's bounded IC early-miss tax: a program
    // with no cacheable hits (spin's proc-less loop) pays a few dead
    // guard probes with nothing to amortize them, so mm alone may sit
    // a handful of instructions above baseline. The rung's claim is
    // on fetch/decode + memory-model together, which may only shrink.
    EXPECT_LE(jit.profile.fetchDecodeInsts() +
                  jit.profile.memModelInsts(),
              base.profile.fetchDecodeInsts() +
                  base.profile.memModelInsts());
    // Stencil emission is one-shot translation work, charged apart.
    EXPECT_GT(jit.profile.precompileInsts(),
              base.profile.precompileInsts());

    if (base_fdmm)
        *base_fdmm += base.profile.fetchDecodeInsts() +
                      base.profile.memModelInsts();
    if (jit_fdmm)
        *jit_fdmm += jit.profile.fetchDecodeInsts() +
                     jit.profile.memModelInsts();
}

TEST(JitGolden, MipsiMicro)
{
    expectJitGolden(microBench(Lang::Mipsi, "a=b+c", 60));
    expectJitGolden(microBench(Lang::Mipsi, "string-split", 20));
}

TEST(JitGolden, TclMicro)
{
    expectJitGolden(microBench(Lang::Tcl, "a=b+c", 30));
    expectJitGolden(microBench(Lang::Tcl, "string-concat", 30));
}

// One sweep over every macro program with a template backend. Each
// program individually satisfies the golden contract; per language
// the fetch/decode + memory-model total must strictly shrink versus
// the baseline, or tier 3 would be dead weight.
TEST(JitGolden, MacroSuiteSweep)
{
    uint64_t base_fdmm[2] = {0, 0};
    uint64_t jit_fdmm[2] = {0, 0};
    for (const BenchSpec &spec : macroSuite()) {
        if (!isJit(tierJitOf(spec.lang)))
            continue;
        SCOPED_TRACE(std::string(langName(spec.lang)) + "/" +
                     spec.name);
        int lane = spec.lang == Lang::Mipsi ? 0 : 1;
        expectJitGolden(spec, &base_fdmm[lane], &jit_fdmm[lane]);
    }
    EXPECT_LT(jit_fdmm[0], base_fdmm[0]) << "mipsi suite fd+mm";
    EXPECT_LT(jit_fdmm[1], base_fdmm[1]) << "tcl suite fd+mm";
}

// The jit tier must improve on the tier it is promoted from, not just
// on the baseline — otherwise the ladder's top rung buys nothing.
TEST(JitGolden, ImprovesOnThePreviousTier)
{
    for (const char *name : {"des", "tcllex"}) {
        Lang base = name == std::string("des") ? Lang::Mipsi : Lang::Tcl;
        BenchSpec prev_spec = macroSpec(base, name);
        prev_spec.lang = tierTier2Of(base);
        BenchSpec jit_spec = macroSpec(base, name);
        jit_spec.lang = tierJitOf(base);
        Measurement prev = runCounting(prev_spec);
        Measurement jit = runCounting(jit_spec);
        EXPECT_LT(jit.profile.fetchDecodeInsts() +
                      jit.profile.memModelInsts(),
                  prev.profile.fetchDecodeInsts() +
                      prev.profile.memModelInsts())
            << name;
        EXPECT_EQ(prev.stdoutText, jit.stdoutText) << name;
    }
}

// `--jobs N` must not perturb jit-mode measurements: the suite runs
// bit-identical serial or parallel (each job owns its Execution,
// registry and deterministic heap).
TEST(JitGolden, ParallelJobsAreBitIdentical)
{
    std::vector<BenchSpec> specs;
    for (auto lang : {Lang::Mipsi, Lang::Tcl}) {
        specs.push_back(macroSpec(lang, "des"));
        BenchSpec jit = macroSpec(lang, "des");
        jit.lang = tierJitOf(lang);
        specs.push_back(std::move(jit));
    }
    SuiteOptions serial;
    serial.jobs = 1;
    serial.withMachine = false;
    SuiteOptions parallel = serial;
    parallel.jobs = 4;
    std::vector<Measurement> a = runSuite(specs, serial);
    std::vector<Measurement> b = runSuite(specs, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_FALSE(a[i].failed) << i;
        EXPECT_FALSE(b[i].failed) << i;
        EXPECT_EQ(a[i].commands, b[i].commands) << i;
        EXPECT_EQ(a[i].profile.instructions(),
                  b[i].profile.instructions())
            << i;
        EXPECT_EQ(a[i].stdoutText, b[i].stdoutText) << i;
    }
}

// --- the emitted region as a synthetic code segment --------------------

/** Counts instructions observed at PCs inside Segment::JitCode. */
class RegionCounter : public trace::Sink
{
  public:
    void
    onBundle(const trace::Bundle &b) override
    {
        if (b.pc >= lo && b.pc < lo + 0x04000000)
            insts += b.count;
    }
    uint32_t lo =
        trace::CodeRegistry::segmentBase(trace::Segment::JitCode);
    uint64_t insts = 0;
};

TEST(JitRegion, GlueExecutesInTheJitSegmentAndSimulatorSeesIt)
{
    BenchSpec spec = microBench(Lang::Mipsi, "a=b+c", 60);
    spec.lang = Lang::MipsiJit;
    RegionCounter region;
    Measurement m = run(spec, {&region}, nullptr, /*with_machine=*/true);
    EXPECT_TRUE(m.finished);
    // Two glue instructions per straight-line guest instruction, all
    // at JitCode PCs — the region's i-cache footprint is real input
    // to the §4 machine (cycles > 0 proves it simulated the stream).
    EXPECT_GT(region.insts, 0u);
    EXPECT_GT(m.cycles, 0u);
    // The glue is the whole jit-mode fetch/decode except region
    // re-entry, so it must account for most of that category.
    EXPECT_LE(region.insts, m.profile.fetchDecodeInsts());
    EXPECT_GT(region.insts, m.profile.fetchDecodeInsts() / 2);
}

// --- poisoned-artifact fallback ----------------------------------------

TEST(JitFallback, PoisonedArtifactFallsBackToPreviousTier)
{
    // Publish a stencil program the way the tier manager would...
    BenchSpec spec = microBench(Lang::Mipsi, "a=b+c", 60);
    spec.lang = Lang::MipsiJit;
    std::shared_ptr<const jit::JitArtifact> published;
    spec.publishJitArtifact =
        [&published](std::shared_ptr<const jit::JitArtifact> a) {
            published = std::move(a);
        };
    Measurement first = runCounting(spec);
    EXPECT_TRUE(first.finished);
    ASSERT_TRUE(published);
    EXPECT_GT(published->numSteps(), 0u);

    // ...then poison it. A run handed the poisoned artifact must not
    // enter it (that would fatal) — it drops to the previous tier and
    // measures exactly like a plain threaded run.
    published->debugPoison();
    BenchSpec poisoned = microBench(Lang::Mipsi, "a=b+c", 60);
    poisoned.lang = Lang::MipsiJit;
    poisoned.jitArtifact = published;
    Measurement fallback = runCounting(poisoned);

    BenchSpec prev = microBench(Lang::Mipsi, "a=b+c", 60);
    prev.lang = Lang::MipsiThreaded;
    Measurement threaded = runCounting(prev);

    EXPECT_TRUE(fallback.finished);
    EXPECT_EQ(fallback.commands, threaded.commands);
    EXPECT_EQ(fallback.stdoutText, threaded.stdoutText);
    EXPECT_EQ(fallback.profile.instructions(),
              threaded.profile.instructions());
    EXPECT_EQ(fallback.profile.fetchDecodeInsts(),
              threaded.profile.fetchDecodeInsts());
}

TEST(JitFallback, StaleArtifactIsRecompiledNotExecuted)
{
    // An artifact compiled for different guest text (wrong step
    // count) must never be entered; the run compiles fresh and stays
    // byte-identical to an artifact-less jit run.
    auto stale = jit::JitArtifact::build(&logStep, 1);
    BenchSpec spec = microBench(Lang::Mipsi, "a=b+c", 40);
    spec.lang = Lang::MipsiJit;
    Measurement clean = runCounting(spec);
    BenchSpec with_stale = microBench(Lang::Mipsi, "a=b+c", 40);
    with_stale.lang = Lang::MipsiJit;
    with_stale.jitArtifact = stale;
    Measurement recompiled = runCounting(with_stale);
    EXPECT_EQ(clean.profile.instructions(),
              recompiled.profile.instructions());
    EXPECT_EQ(clean.stdoutText, recompiled.stdoutText);
}

// --- TierManager: the jit rung -----------------------------------------

tier::TierConfig
jitLadderConfig(uint64_t remedy_after, uint64_t tier2_after,
                uint64_t jit_after)
{
    tier::TierConfig cfg;
    cfg.enabled = true;
    cfg.remedyAfter = remedy_after;
    cfg.tier2After = tier2_after;
    cfg.jitAfter = jit_after;
    cfg.commandsPerPoint = 1'000'000'000; // invocation-driven only
    cfg.decayEvery = 1'000'000;           // effectively off
    return cfg;
}

TEST(TierManagerJit, TclClimbsToTheJitRung)
{
    tier::TierManager tm(jitLadderConfig(1, 2, 3));
    tier::TierPlan p1 = tm.plan(Lang::Tcl, "des");
    EXPECT_EQ(p1.lang, Lang::TclBytecode);
    tier::TierPlan p2 = tm.plan(Lang::Tcl, "des");
    EXPECT_EQ(p2.lang, Lang::TclTier2);
    tier::TierPlan p3 = tm.plan(Lang::Tcl, "des");
    EXPECT_EQ(p3.lang, Lang::TclJit);
    EXPECT_EQ(p3.level, 3);
    EXPECT_TRUE(p3.promotedJit);
    // tcl-jit compiles per cached script inside the interpreter: no
    // catalog artifact slot, no publish hook.
    EXPECT_FALSE(p3.publishJit);
    EXPECT_FALSE(p3.jitArtifact);

    // The crossing fires exactly once.
    tier::TierPlan p4 = tm.plan(Lang::Tcl, "des");
    EXPECT_EQ(p4.lang, Lang::TclJit);
    EXPECT_FALSE(p4.promotedJit);
    EXPECT_EQ(tm.snapshot().promotedJit, 1u);
}

TEST(TierManagerJit, MipsiSingleBuilderPublishesTheStencilProgram)
{
    tier::TierManager tm(jitLadderConfig(1, 2, 3));
    tm.plan(Lang::Mipsi, "des");
    tm.plan(Lang::Mipsi, "des");

    // First tier-3 crossing: this request is the designated builder —
    // it gets the publish hook and no artifact (it compiles in-run).
    tier::TierPlan builder = tm.plan(Lang::Mipsi, "des");
    EXPECT_EQ(builder.lang, Lang::MipsiJit);
    EXPECT_EQ(builder.level, 3);
    EXPECT_TRUE(builder.promotedJit);
    EXPECT_FALSE(builder.jitArtifact);
    ASSERT_TRUE(builder.publishJit);

    // While the build is outstanding, concurrent requests fall back a
    // rung (mipsi's tier 2 folds to the threaded remedy).
    tier::TierPlan waiting = tm.plan(Lang::Mipsi, "des");
    EXPECT_EQ(waiting.lang, Lang::MipsiThreaded);
    EXPECT_LT(waiting.level, 3);
    EXPECT_FALSE(waiting.publishJit);

    // Publish lands: the next request executes the stencil program.
    builder.publishJit(jit::JitArtifact::build(&logStep, 4));
    tier::TierPlan served = tm.plan(Lang::Mipsi, "des");
    EXPECT_EQ(served.lang, Lang::MipsiJit);
    ASSERT_TRUE(served.jitArtifact);
    EXPECT_EQ(served.jitArtifact->numSteps(), 4u);
    EXPECT_FALSE(served.publishJit);
    EXPECT_EQ(tm.snapshot().artifactsPublished, 1u);
    EXPECT_EQ(tm.snapshot().promotedJit, 1u);
}

TEST(TierManagerJit, ModesWithoutATemplateBackendFoldToTier2)
{
    // Java and Perl top out below tier 3: the jit threshold folds
    // down and promotedJit never fires.
    tier::TierManager tm(jitLadderConfig(1, 2, 3));
    tm.plan(Lang::Java, "des");
    tm.plan(Lang::Java, "des");
    // Past the jit threshold the target folds to tier 2. The jvm
    // aside-build protocol may degrade this particular request
    // further (both artifact builds are still outstanding), but it
    // must never hand out a jit rung or a jit hook.
    tier::TierPlan java = tm.plan(Lang::Java, "des");
    EXPECT_LE(java.level, 2);
    EXPECT_FALSE(java.promotedJit);
    EXPECT_FALSE(java.publishJit);
    EXPECT_FALSE(java.jitArtifact);

    tm.plan(Lang::Perl, "plexus");
    tm.plan(Lang::Perl, "plexus");
    tier::TierPlan perl = tm.plan(Lang::Perl, "plexus");
    EXPECT_EQ(perl.lang, Lang::PerlIC);
    EXPECT_EQ(perl.level, 1);
    EXPECT_FALSE(perl.promotedJit);

    EXPECT_EQ(tm.snapshot().promotedJit, 0u);
}

} // namespace
