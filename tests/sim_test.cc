/**
 * @file
 * Unit and property tests for the architecture simulator: caches,
 * TLBs, branch prediction and the stall-accounting machine.
 */

#include <gtest/gtest.h>

#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/cache_sweep.hh"
#include "sim/machine.hh"
#include "sim/tlb.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/events.hh"

namespace {

using namespace interp;
using namespace interp::sim;

// --- Cache -------------------------------------------------------------

TEST(Cache, ColdMissThenHit)
{
    Cache cache({1024, 1, 32});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x101f)) << "same 32-byte line";
    EXPECT_FALSE(cache.access(0x1020)) << "next line misses";
}

TEST(Cache, DirectMappedConflict)
{
    Cache cache({1024, 1, 32}); // 32 sets
    cache.access(0x0000);
    cache.access(0x0000 + 1024); // same set, different tag
    EXPECT_FALSE(cache.access(0x0000)) << "evicted by the conflict";
}

TEST(Cache, TwoWayAbsorbsConflictPair)
{
    Cache cache({1024, 2, 32});
    cache.access(0x0000);
    cache.access(0x0000 + 1024);
    EXPECT_TRUE(cache.access(0x0000)) << "both fit in a 2-way set";
    EXPECT_TRUE(cache.access(0x0000 + 1024));
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache({2 * 32, 2, 32}); // one set, 2 ways
    cache.access(0 * 32);
    cache.access(1 * 32);
    cache.access(0 * 32);        // refresh line 0
    cache.access(2 * 32);        // evicts line 1 (LRU)
    EXPECT_TRUE(cache.access(0 * 32));
    EXPECT_FALSE(cache.access(1 * 32));
}

/**
 * Fill-then-evict in strict LRU order, parameterized on associativity.
 * Filling a set must consume free ways without evicting valid lines
 * (first free way, as in Tlb::access), and once full, evictions must
 * follow recency order exactly.
 */
class CacheLruOrder : public testing::TestWithParam<uint32_t>
{};

TEST_P(CacheLruOrder, FillThenEvictFollowsRecency)
{
    const uint32_t assoc = GetParam();
    Cache cache({assoc * 32, assoc, 32}); // one set, `assoc` ways

    // Fill: each new line is a cold miss but must not evict any of the
    // previously installed lines while free ways remain.
    for (uint32_t i = 0; i < assoc; ++i) {
        EXPECT_FALSE(cache.access(i * 32)) << "cold line " << i;
        for (uint32_t j = 0; j <= i; ++j)
            EXPECT_TRUE(cache.access(j * 32))
                << "line " << j << " evicted during fill at " << i;
    }
    // That re-touch loop left recency order = 0,1,...,assoc-1 (oldest
    // first). Overflowing lines must evict in exactly that order.
    for (uint32_t i = 0; i < assoc; ++i) {
        EXPECT_FALSE(cache.access((assoc + i) * 32));
        EXPECT_FALSE(cache.access(i * 32))
            << "line " << i << " should have been the LRU victim";
        // Re-installing line i evicts the then-oldest resident, so
        // line i+1 is gone by the time the next iteration probes it.
    }
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheLruOrder, testing::Values(2u, 4u));

TEST(Cache, WorkingSetFitsAfterWarmup)
{
    Cache cache({8192, 1, 32});
    // Sequential 4 KB working set: second pass must be all hits.
    for (uint32_t a = 0; a < 4096; a += 32)
        cache.access(a);
    uint64_t misses_before = cache.misses();
    for (uint32_t a = 0; a < 4096; a += 32)
        EXPECT_TRUE(cache.access(a));
    EXPECT_EQ(cache.misses(), misses_before);
}

TEST(Cache, MissRateMonotonicInSizeProperty)
{
    // Property: for an LRU cache with fixed assoc, a larger cache
    // never has more misses on the same trace (inclusion property
    // holds within same associativity for power-of-2 sizes with LRU
    // only per-set; we check empirically on a random trace).
    Rng rng(42);
    std::vector<uint32_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back((uint32_t)rng.below(64 * 1024));
    uint64_t last = UINT64_MAX;
    for (uint32_t kb : {8, 16, 32, 64}) {
        Cache cache({kb * 1024, 4, 32});
        for (uint32_t a : trace)
            cache.access(a);
        EXPECT_LE(cache.misses(), last);
        last = cache.misses();
    }
}

TEST(Cache, FullAssocBeatsDirectOnConflictTrace)
{
    // Ping-pong between two conflicting lines.
    Cache direct({1024, 1, 32});
    Cache assoc({1024, 4, 32});
    for (int i = 0; i < 100; ++i) {
        direct.access(i % 2 ? 0u : 1024u);
        assoc.access(i % 2 ? 0u : 1024u);
    }
    EXPECT_EQ(assoc.misses(), 2u);
    EXPECT_EQ(direct.misses(), 100u);
}

TEST(Cache, ResetClearsState)
{
    Cache cache({1024, 1, 32});
    cache.access(0);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_FALSE(cache.access(0));
}

// --- TLB ---------------------------------------------------------------

TEST(Tlb, HitWithinPage)
{
    Tlb tlb(8);
    EXPECT_FALSE(tlb.access(0x2000));
    EXPECT_TRUE(tlb.access(0x2000 + 8191)) << "same 8 KB page";
    EXPECT_FALSE(tlb.access(0x2000 + 8192));
}

TEST(Tlb, LruCapacity)
{
    Tlb tlb(4);
    for (uint32_t p = 0; p < 4; ++p)
        tlb.access(p * 8192);
    for (uint32_t p = 0; p < 4; ++p)
        EXPECT_TRUE(tlb.access(p * 8192));
    tlb.access(4 * 8192); // evicts page 0 (LRU)
    EXPECT_FALSE(tlb.access(0));
    EXPECT_TRUE(tlb.access(4 * 8192));
}

TEST(Tlb, EightEntryItlbThrashesOnNinePages)
{
    Tlb tlb(8);
    // Round-robin over 9 pages with LRU: every access misses.
    uint64_t misses = 0;
    for (int round = 0; round < 10; ++round)
        for (uint32_t p = 0; p < 9; ++p)
            misses += !tlb.access(p * 8192);
    EXPECT_EQ(misses, 90u);
}

// --- Branch prediction ------------------------------------------------------

TEST(Branch, OneBitLearnsStableDirection)
{
    BranchPredictor bp(BranchConfig{});
    // First prediction defaults to not-taken -> mispredict, then learn.
    EXPECT_FALSE(bp.predictConditional(0x100, true));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(bp.predictConditional(0x100, true));
}

TEST(Branch, OneBitMispredictsTwicePerFlip)
{
    BranchPredictor bp(BranchConfig{});
    bp.predictConditional(0x100, true); // learn taken
    // Alternating pattern: 1-bit predictor mispredicts every time.
    int wrong = 0;
    bool dir = false;
    for (int i = 0; i < 20; ++i) {
        wrong += !bp.predictConditional(0x100, dir);
        dir = !dir;
    }
    EXPECT_EQ(wrong, 20);
}

TEST(Branch, BhtIndexedByPc)
{
    BranchPredictor bp(BranchConfig{});
    bp.predictConditional(0x100, true);
    // A different PC (different BHT slot) still starts cold.
    EXPECT_FALSE(bp.predictConditional(0x104, true));
}

TEST(Branch, ReturnStackMatchesCalls)
{
    BranchPredictor bp(BranchConfig{});
    bp.call(0x1000);
    bp.call(0x2000);
    EXPECT_TRUE(bp.predictReturn(0x2000));
    EXPECT_TRUE(bp.predictReturn(0x1000));
    EXPECT_FALSE(bp.predictReturn(0x3000)) << "underflow mispredicts";
}

TEST(Branch, ReturnStackOverflowLosesDeepFrames)
{
    BranchPredictor bp(BranchConfig{});
    for (uint32_t i = 0; i < 13; ++i)
        bp.call(0x1000 + i * 4); // 12-entry stack: frame 0 lost
    for (uint32_t i = 13; i > 1; --i)
        EXPECT_TRUE(bp.predictReturn(0x1000 + (i - 1) * 4));
    EXPECT_FALSE(bp.predictReturn(0x1000));
}

TEST(Branch, BtcRemembersIndirectTargets)
{
    BranchPredictor bp(BranchConfig{});
    EXPECT_FALSE(bp.predictIndirect(0x500, 0xaaaa));
    EXPECT_TRUE(bp.predictIndirect(0x500, 0xaaaa));
    EXPECT_FALSE(bp.predictIndirect(0x500, 0xbbbb)) << "target changed";
    EXPECT_TRUE(bp.predictIndirect(0x500, 0xbbbb));
}

TEST(Branch, BtcIndexWrapsByMasking)
{
    BranchConfig cfg;
    cfg.btcEntries = 4;
    BranchPredictor bp(cfg);
    // 0x100 and 0x110 are 4 word-slots apart: same BTC entry. The
    // second PC must evict the first (tag mismatch), proving the
    // index wraps over the full table rather than truncating.
    bp.predictIndirect(0x100, 0xaaaa);
    EXPECT_TRUE(bp.predictIndirect(0x100, 0xaaaa));
    EXPECT_FALSE(bp.predictIndirect(0x110, 0xbbbb)) << "cold aliased slot";
    EXPECT_FALSE(bp.predictIndirect(0x100, 0xaaaa)) << "evicted by alias";
}

TEST(Branch, NonPowerOfTwoBhtIsFatal)
{
    BranchConfig cfg;
    cfg.bhtEntries = 100; // masking with 99 would alias away entries
    ScopedFatalThrow contain;
    EXPECT_THROW(BranchPredictor bp(cfg), FatalError);
}

TEST(Branch, NonPowerOfTwoBtcIsFatal)
{
    BranchConfig cfg;
    cfg.btcEntries = 33;
    ScopedFatalThrow contain;
    EXPECT_THROW(BranchPredictor bp(cfg), FatalError);
}

TEST(Branch, EmptyPredictorStructuresAreFatal)
{
    ScopedFatalThrow contain;
    BranchConfig no_bht;
    no_bht.bhtEntries = 0;
    EXPECT_THROW(BranchPredictor bp(no_bht), FatalError);
    BranchConfig no_btc;
    no_btc.btcEntries = 0;
    EXPECT_THROW(BranchPredictor bp(no_btc), FatalError);
    BranchConfig no_ras;
    no_ras.returnStack = 0;
    EXPECT_THROW(BranchPredictor bp(no_ras), FatalError);
}

// --- Machine -----------------------------------------------------------

trace::Bundle
aluBundle(uint32_t pc, uint32_t count)
{
    trace::Bundle b;
    b.pc = pc;
    b.count = count;
    b.cls = trace::InstClass::IntAlu;
    return b;
}

TEST(Machine, BusyOnlyForStraightLineHits)
{
    Machine machine;
    // Many passes so the cold-start misses are amortized away.
    for (int pass = 0; pass < 20; ++pass)
        machine.onBundle(aluBundle(0x1000, 64));
    EXPECT_EQ(machine.instructions(), 20u * 64u);
    auto bd = machine.breakdown();
    EXPECT_GT(bd.busyPct, 50.0);
}

TEST(Machine, ImissChargedForColdFetch)
{
    Machine machine;
    machine.onBundle(aluBundle(0x0, 1024)); // 128 lines, all cold
    EXPECT_GT(machine.stallCycles(StallCause::Imiss), 0u);
    EXPECT_EQ(machine.stallCycles(StallCause::Dmiss), 0u);
}

TEST(Machine, DmissAndDtlbChargedForColdLoads)
{
    Machine machine;
    trace::Bundle b;
    b.pc = 0x1000;
    b.cls = trace::InstClass::Load;
    for (int i = 0; i < 64; ++i) {
        b.memAddr = 0x40000000 + (uint32_t)i * 8192; // new page each time
        machine.onBundle(b);
    }
    EXPECT_GT(machine.stallCycles(StallCause::Dmiss), 0u);
    EXPECT_GT(machine.stallCycles(StallCause::Dtlb), 0u);
}

TEST(Machine, MispredictCharged)
{
    Machine machine;
    trace::Bundle b;
    b.pc = 0x1000;
    b.cls = trace::InstClass::CondBranch;
    bool dir = false;
    for (int i = 0; i < 32; ++i) {
        b.taken = dir;
        dir = !dir;
        machine.onBundle(b);
    }
    EXPECT_GT(machine.stallCycles(StallCause::Mispredict), 0u);
}

TEST(Machine, L2HitCheaperThanL2Miss)
{
    // Working set fitting L2 but not L1 vs exceeding both.
    MachineConfig cfg;
    Machine small(cfg), large(cfg);
    trace::Bundle b;
    b.pc = 0x1000;
    b.cls = trace::InstClass::Load;
    // Warm both with their working sets twice; second pass differs.
    for (int pass = 0; pass < 2; ++pass) {
        for (uint32_t i = 0; i < 2048; ++i) {
            b.memAddr = 0x40000000 + i * 32; // 64 KB: fits L2, not L1
            small.onBundle(b);
        }
        for (uint32_t i = 0; i < 64 * 1024; ++i) {
            b.memAddr = 0x40000000 + i * 32; // 2 MB: misses L2 too
            large.onBundle(b);
        }
    }
    double small_per = (double)small.stallCycles(StallCause::Dmiss) /
                       (double)small.instructions();
    double large_per = (double)large.stallCycles(StallCause::Dmiss) /
                       (double)large.instructions();
    EXPECT_LT(small_per, large_per);
}

TEST(Machine, BreakdownSumsToRoughly100)
{
    Machine machine;
    Rng rng(7);
    trace::Bundle b;
    for (int i = 0; i < 5000; ++i) {
        b.pc = 0x1000 + (uint32_t)rng.below(64 * 1024) / 4 * 4;
        b.count = 1 + (uint32_t)rng.below(4);
        b.cls = (i % 5 == 0) ? trace::InstClass::Load
                             : trace::InstClass::IntAlu;
        b.memAddr = 0x40000000 + (uint32_t)rng.below(1 << 20);
        machine.onBundle(b);
    }
    auto bd = machine.breakdown();
    double total = bd.busyPct;
    for (double pct : bd.stallPct)
        total += pct;
    EXPECT_NEAR(total, 100.0, 1.0);
}

TEST(Machine, ResetRestoresInitialState)
{
    Machine machine;
    machine.onBundle(aluBundle(0, 100));
    machine.reset();
    EXPECT_EQ(machine.instructions(), 0u);
    EXPECT_EQ(machine.cycles(), 0u);
}

TEST(CacheSweep, GridShapeAndMonotonicity)
{
    CacheSweep sweep({8, 16, 32, 64}, {1, 2, 4});
    Rng rng(3);
    trace::Bundle b;
    b.cls = trace::InstClass::IntAlu;
    for (int i = 0; i < 50000; ++i) {
        b.pc = (uint32_t)rng.below(48 * 1024) & ~3u;
        b.count = 4;
        sweep.onBundle(b);
    }
    auto results = sweep.results();
    ASSERT_EQ(results.size(), 12u);
    // Within each associativity, misses fall (weakly) with size.
    for (int a = 0; a < 3; ++a)
        for (int s = 1; s < 4; ++s)
            EXPECT_LE(results[a * 4 + s].misses,
                      results[a * 4 + s - 1].misses + 5);
    EXPECT_EQ(sweep.instructions(), 200000u);
}

TEST(CacheSweep, ZeroCountBundleIsIgnored)
{
    // A Bundle with count == 0 carries no instructions; the line walk
    // from pc to pc + (count - 1) * 4 must not underflow and sweep
    // ~2^32 lines through every cache.
    CacheSweep sweep({8}, {1});
    trace::Bundle b;
    b.pc = 0x1000;
    b.count = 0;
    b.cls = trace::InstClass::IntAlu;
    sweep.onBundle(b);
    EXPECT_EQ(sweep.instructions(), 0u);
    EXPECT_EQ(sweep.results()[0].misses, 0u);

    // And a normal bundle afterwards behaves as if it came first.
    b.count = 4;
    sweep.onBundle(b);
    EXPECT_EQ(sweep.instructions(), 4u);
    EXPECT_EQ(sweep.results()[0].misses, 1u);
}

} // namespace
