/**
 * @file
 * Unit and property tests for the architecture simulator: caches,
 * TLBs, branch prediction and the stall-accounting machine.
 */

#include <gtest/gtest.h>

#include "sim/branch.hh"
#include "sim/cache.hh"
#include "sim/cache_sweep.hh"
#include "sim/machine.hh"
#include "sim/tlb.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "trace/events.hh"

namespace {

using namespace interp;
using namespace interp::sim;

// --- Cache -------------------------------------------------------------

TEST(Cache, ColdMissThenHit)
{
    Cache cache({1024, 1, 32});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x101f)) << "same 32-byte line";
    EXPECT_FALSE(cache.access(0x1020)) << "next line misses";
}

TEST(Cache, DirectMappedConflict)
{
    Cache cache({1024, 1, 32}); // 32 sets
    cache.access(0x0000);
    cache.access(0x0000 + 1024); // same set, different tag
    EXPECT_FALSE(cache.access(0x0000)) << "evicted by the conflict";
}

TEST(Cache, TwoWayAbsorbsConflictPair)
{
    Cache cache({1024, 2, 32});
    cache.access(0x0000);
    cache.access(0x0000 + 1024);
    EXPECT_TRUE(cache.access(0x0000)) << "both fit in a 2-way set";
    EXPECT_TRUE(cache.access(0x0000 + 1024));
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache({2 * 32, 2, 32}); // one set, 2 ways
    cache.access(0 * 32);
    cache.access(1 * 32);
    cache.access(0 * 32);        // refresh line 0
    cache.access(2 * 32);        // evicts line 1 (LRU)
    EXPECT_TRUE(cache.access(0 * 32));
    EXPECT_FALSE(cache.access(1 * 32));
}

/**
 * Fill-then-evict in strict LRU order, parameterized on associativity.
 * Filling a set must consume free ways without evicting valid lines
 * (first free way, as in Tlb::access), and once full, evictions must
 * follow recency order exactly.
 */
class CacheLruOrder : public testing::TestWithParam<uint32_t>
{};

TEST_P(CacheLruOrder, FillThenEvictFollowsRecency)
{
    const uint32_t assoc = GetParam();
    Cache cache({assoc * 32, assoc, 32}); // one set, `assoc` ways

    // Fill: each new line is a cold miss but must not evict any of the
    // previously installed lines while free ways remain.
    for (uint32_t i = 0; i < assoc; ++i) {
        EXPECT_FALSE(cache.access(i * 32)) << "cold line " << i;
        for (uint32_t j = 0; j <= i; ++j)
            EXPECT_TRUE(cache.access(j * 32))
                << "line " << j << " evicted during fill at " << i;
    }
    // That re-touch loop left recency order = 0,1,...,assoc-1 (oldest
    // first). Overflowing lines must evict in exactly that order.
    for (uint32_t i = 0; i < assoc; ++i) {
        EXPECT_FALSE(cache.access((assoc + i) * 32));
        EXPECT_FALSE(cache.access(i * 32))
            << "line " << i << " should have been the LRU victim";
        // Re-installing line i evicts the then-oldest resident, so
        // line i+1 is gone by the time the next iteration probes it.
    }
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheLruOrder,
                         testing::Values(1u, 2u, 4u));

/**
 * Same fill-then-evict recency contract for the fully-associative
 * TLB, parameterized on entry count. Mirrors CacheLruOrder so the
 * shared victim-selection idiom (first free way wins, valid entries
 * form a prefix) is pinned in both structures.
 */
class TlbLruOrder : public testing::TestWithParam<uint32_t>
{};

TEST_P(TlbLruOrder, FillThenEvictFollowsRecency)
{
    const uint32_t entries = GetParam();
    Tlb tlb(entries);
    const uint32_t page = 8192;

    // Fill: every new page is a cold miss and must land in a free
    // entry, never evicting a resident page while free entries remain.
    for (uint32_t i = 0; i < entries; ++i) {
        EXPECT_FALSE(tlb.access(i * page)) << "cold page " << i;
        for (uint32_t j = 0; j <= i; ++j)
            EXPECT_TRUE(tlb.access(j * page))
                << "page " << j << " evicted during fill at " << i;
    }
    // Recency order is now 0,1,...,entries-1 (oldest first); overflow
    // pages must evict in exactly that order.
    for (uint32_t i = 0; i < entries; ++i) {
        EXPECT_FALSE(tlb.access((entries + i) * page));
        EXPECT_FALSE(tlb.access(i * page))
            << "page " << i << " should have been the LRU victim";
    }
}

INSTANTIATE_TEST_SUITE_P(Entries, TlbLruOrder,
                         testing::Values(1u, 2u, 4u));

TEST(Cache, WorkingSetFitsAfterWarmup)
{
    Cache cache({8192, 1, 32});
    // Sequential 4 KB working set: second pass must be all hits.
    for (uint32_t a = 0; a < 4096; a += 32)
        cache.access(a);
    uint64_t misses_before = cache.misses();
    for (uint32_t a = 0; a < 4096; a += 32)
        EXPECT_TRUE(cache.access(a));
    EXPECT_EQ(cache.misses(), misses_before);
}

TEST(Cache, MissRateMonotonicInSizeProperty)
{
    // Property: for an LRU cache with fixed assoc, a larger cache
    // never has more misses on the same trace (inclusion property
    // holds within same associativity for power-of-2 sizes with LRU
    // only per-set; we check empirically on a random trace).
    Rng rng(42);
    std::vector<uint32_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back((uint32_t)rng.below(64 * 1024));
    uint64_t last = UINT64_MAX;
    for (uint32_t kb : {8, 16, 32, 64}) {
        Cache cache({kb * 1024, 4, 32});
        for (uint32_t a : trace)
            cache.access(a);
        EXPECT_LE(cache.misses(), last);
        last = cache.misses();
    }
}

TEST(Cache, FullAssocBeatsDirectOnConflictTrace)
{
    // Ping-pong between two conflicting lines.
    Cache direct({1024, 1, 32});
    Cache assoc({1024, 4, 32});
    for (int i = 0; i < 100; ++i) {
        direct.access(i % 2 ? 0u : 1024u);
        assoc.access(i % 2 ? 0u : 1024u);
    }
    EXPECT_EQ(assoc.misses(), 2u);
    EXPECT_EQ(direct.misses(), 100u);
}

TEST(Cache, ResetClearsState)
{
    Cache cache({1024, 1, 32});
    cache.access(0);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_FALSE(cache.access(0));
}

// --- TLB ---------------------------------------------------------------

TEST(Tlb, HitWithinPage)
{
    Tlb tlb(8);
    EXPECT_FALSE(tlb.access(0x2000));
    EXPECT_TRUE(tlb.access(0x2000 + 8191)) << "same 8 KB page";
    EXPECT_FALSE(tlb.access(0x2000 + 8192));
}

TEST(Tlb, LruCapacity)
{
    Tlb tlb(4);
    for (uint32_t p = 0; p < 4; ++p)
        tlb.access(p * 8192);
    for (uint32_t p = 0; p < 4; ++p)
        EXPECT_TRUE(tlb.access(p * 8192));
    tlb.access(4 * 8192); // evicts page 0 (LRU)
    EXPECT_FALSE(tlb.access(0));
    EXPECT_TRUE(tlb.access(4 * 8192));
}

TEST(Tlb, EightEntryItlbThrashesOnNinePages)
{
    Tlb tlb(8);
    // Round-robin over 9 pages with LRU: every access misses.
    uint64_t misses = 0;
    for (int round = 0; round < 10; ++round)
        for (uint32_t p = 0; p < 9; ++p)
            misses += !tlb.access(p * 8192);
    EXPECT_EQ(misses, 90u);
}

// --- Branch prediction ------------------------------------------------------

TEST(Branch, OneBitLearnsStableDirection)
{
    BranchPredictor bp(BranchConfig{});
    // First prediction defaults to not-taken -> mispredict, then learn.
    EXPECT_FALSE(bp.predictConditional(0x100, true));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(bp.predictConditional(0x100, true));
}

TEST(Branch, OneBitMispredictsTwicePerFlip)
{
    BranchPredictor bp(BranchConfig{});
    bp.predictConditional(0x100, true); // learn taken
    // Alternating pattern: 1-bit predictor mispredicts every time.
    int wrong = 0;
    bool dir = false;
    for (int i = 0; i < 20; ++i) {
        wrong += !bp.predictConditional(0x100, dir);
        dir = !dir;
    }
    EXPECT_EQ(wrong, 20);
}

TEST(Branch, BhtIndexedByPc)
{
    BranchPredictor bp(BranchConfig{});
    bp.predictConditional(0x100, true);
    // A different PC (different BHT slot) still starts cold.
    EXPECT_FALSE(bp.predictConditional(0x104, true));
}

TEST(Branch, ReturnStackMatchesCalls)
{
    BranchPredictor bp(BranchConfig{});
    bp.call(0x1000);
    bp.call(0x2000);
    EXPECT_TRUE(bp.predictReturn(0x2000));
    EXPECT_TRUE(bp.predictReturn(0x1000));
    EXPECT_FALSE(bp.predictReturn(0x3000)) << "underflow mispredicts";
}

TEST(Branch, ReturnStackOverflowLosesDeepFrames)
{
    BranchPredictor bp(BranchConfig{});
    for (uint32_t i = 0; i < 13; ++i)
        bp.call(0x1000 + i * 4); // 12-entry stack: frame 0 lost
    for (uint32_t i = 13; i > 1; --i)
        EXPECT_TRUE(bp.predictReturn(0x1000 + (i - 1) * 4));
    EXPECT_FALSE(bp.predictReturn(0x1000));
}

TEST(Branch, BtcRemembersIndirectTargets)
{
    BranchPredictor bp(BranchConfig{});
    EXPECT_FALSE(bp.predictIndirect(0x500, 0xaaaa));
    EXPECT_TRUE(bp.predictIndirect(0x500, 0xaaaa));
    EXPECT_FALSE(bp.predictIndirect(0x500, 0xbbbb)) << "target changed";
    EXPECT_TRUE(bp.predictIndirect(0x500, 0xbbbb));
}

TEST(Branch, BtcIndexWrapsByMasking)
{
    BranchConfig cfg;
    cfg.btcEntries = 4;
    BranchPredictor bp(cfg);
    // 0x100 and 0x110 are 4 word-slots apart: same BTC entry. The
    // second PC must evict the first (tag mismatch), proving the
    // index wraps over the full table rather than truncating.
    bp.predictIndirect(0x100, 0xaaaa);
    EXPECT_TRUE(bp.predictIndirect(0x100, 0xaaaa));
    EXPECT_FALSE(bp.predictIndirect(0x110, 0xbbbb)) << "cold aliased slot";
    EXPECT_FALSE(bp.predictIndirect(0x100, 0xaaaa)) << "evicted by alias";
}

TEST(Branch, NonPowerOfTwoBhtIsFatal)
{
    BranchConfig cfg;
    cfg.bhtEntries = 100; // masking with 99 would alias away entries
    ScopedFatalThrow contain;
    EXPECT_THROW(BranchPredictor bp(cfg), FatalError);
}

TEST(Branch, NonPowerOfTwoBtcIsFatal)
{
    BranchConfig cfg;
    cfg.btcEntries = 33;
    ScopedFatalThrow contain;
    EXPECT_THROW(BranchPredictor bp(cfg), FatalError);
}

TEST(Branch, EmptyPredictorStructuresAreFatal)
{
    ScopedFatalThrow contain;
    BranchConfig no_bht;
    no_bht.bhtEntries = 0;
    EXPECT_THROW(BranchPredictor bp(no_bht), FatalError);
    BranchConfig no_btc;
    no_btc.btcEntries = 0;
    EXPECT_THROW(BranchPredictor bp(no_btc), FatalError);
    BranchConfig no_ras;
    no_ras.returnStack = 0;
    EXPECT_THROW(BranchPredictor bp(no_ras), FatalError);
}

// --- Machine -----------------------------------------------------------

trace::Bundle
aluBundle(uint32_t pc, uint32_t count)
{
    trace::Bundle b;
    b.pc = pc;
    b.count = count;
    b.cls = trace::InstClass::IntAlu;
    return b;
}

TEST(Machine, BusyOnlyForStraightLineHits)
{
    Machine machine;
    // Many passes so the cold-start misses are amortized away.
    for (int pass = 0; pass < 20; ++pass)
        machine.onBundle(aluBundle(0x1000, 64));
    EXPECT_EQ(machine.instructions(), 20u * 64u);
    auto bd = machine.breakdown();
    EXPECT_GT(bd.busyPct, 50.0);
}

TEST(Machine, ImissChargedForColdFetch)
{
    Machine machine;
    machine.onBundle(aluBundle(0x0, 1024)); // 128 lines, all cold
    EXPECT_GT(machine.stallCycles(StallCause::Imiss), 0u);
    EXPECT_EQ(machine.stallCycles(StallCause::Dmiss), 0u);
}

TEST(Machine, DmissAndDtlbChargedForColdLoads)
{
    Machine machine;
    trace::Bundle b;
    b.pc = 0x1000;
    b.cls = trace::InstClass::Load;
    for (int i = 0; i < 64; ++i) {
        b.memAddr = 0x40000000 + (uint32_t)i * 8192; // new page each time
        machine.onBundle(b);
    }
    EXPECT_GT(machine.stallCycles(StallCause::Dmiss), 0u);
    EXPECT_GT(machine.stallCycles(StallCause::Dtlb), 0u);
}

TEST(Machine, MispredictCharged)
{
    Machine machine;
    trace::Bundle b;
    b.pc = 0x1000;
    b.cls = trace::InstClass::CondBranch;
    bool dir = false;
    for (int i = 0; i < 32; ++i) {
        b.taken = dir;
        dir = !dir;
        machine.onBundle(b);
    }
    EXPECT_GT(machine.stallCycles(StallCause::Mispredict), 0u);
}

TEST(Machine, L2HitCheaperThanL2Miss)
{
    // Working set fitting L2 but not L1 vs exceeding both.
    MachineConfig cfg;
    Machine small(cfg), large(cfg);
    trace::Bundle b;
    b.pc = 0x1000;
    b.cls = trace::InstClass::Load;
    // Warm both with their working sets twice; second pass differs.
    for (int pass = 0; pass < 2; ++pass) {
        for (uint32_t i = 0; i < 2048; ++i) {
            b.memAddr = 0x40000000 + i * 32; // 64 KB: fits L2, not L1
            small.onBundle(b);
        }
        for (uint32_t i = 0; i < 64 * 1024; ++i) {
            b.memAddr = 0x40000000 + i * 32; // 2 MB: misses L2 too
            large.onBundle(b);
        }
    }
    double small_per = (double)small.stallCycles(StallCause::Dmiss) /
                       (double)small.instructions();
    double large_per = (double)large.stallCycles(StallCause::Dmiss) /
                       (double)large.instructions();
    EXPECT_LT(small_per, large_per);
}

/**
 * Mixed workload exercising every stall cause: loads (dmiss/dtlb/load
 * delay), alternating branches (mispredict), short-int and float runs
 * (use delays), scattered PCs (imiss/itlb), calls and returns.
 */
std::vector<trace::Bundle>
mixedWorkload(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<trace::Bundle> out;
    out.reserve((size_t)n);
    for (int i = 0; i < n; ++i) {
        trace::Bundle b;
        b.pc = 0x1000 + (uint32_t)rng.below(64 * 1024) / 4 * 4;
        b.count = 1 + (uint32_t)rng.below(4);
        switch (rng.below(10)) {
          case 0:
          case 1:
            b.cls = trace::InstClass::Load;
            b.count = 1;
            b.memAddr = 0x40000000 + (uint32_t)rng.below(1 << 20);
            break;
          case 2:
            b.cls = trace::InstClass::Store;
            b.count = 1;
            b.memAddr = 0x40000000 + (uint32_t)rng.below(1 << 20);
            break;
          case 3:
            b.cls = trace::InstClass::CondBranch;
            b.count = 1;
            b.taken = rng.below(2) != 0;
            b.target = b.pc + 16;
            break;
          case 4:
            b.cls = trace::InstClass::ShortInt;
            break;
          case 5:
            b.cls = trace::InstClass::FloatOp;
            break;
          case 6:
            b.cls = trace::InstClass::Call;
            b.count = 1;
            b.target = 0x8000;
            break;
          case 7:
            b.cls = trace::InstClass::Return;
            b.count = 1;
            b.target = 0x2000 + (uint32_t)rng.below(64) * 4;
            break;
          case 8:
            b.cls = trace::InstClass::IndirectJump;
            b.count = 1;
            b.target = 0x9000 + (uint32_t)rng.below(8) * 64;
            break;
          default:
            b.cls = trace::InstClass::IntAlu;
            break;
        }
        out.push_back(b);
    }
    return out;
}

/**
 * The Figure 3 invariant: busy% and every stall% share one slot
 * denominator, so the columns sum to 100 up to fp rounding — at any
 * issue width (the old accounting mixed slot- and cycle-denominated
 * terms, and only came close at width 1).
 */
class MachineBreakdownSum : public testing::TestWithParam<uint32_t>
{};

TEST_P(MachineBreakdownSum, SumsTo100AtEveryIssueWidth)
{
    MachineConfig cfg;
    cfg.issueWidth = GetParam();
    Machine machine(cfg);
    for (const auto &b : mixedWorkload(5000, 7))
        machine.onBundle(b);
    ASSERT_GT(machine.totalSlots(), 0u);
    EXPECT_NEAR(machine.breakdown().total(), 100.0, 0.01);

    // The ledger leaves total cycles exactly where the pre-ledger
    // accounting had them: ceil(insts / W) + total stall cycles.
    uint64_t stall_cycles = 0;
    for (int c = 0; c < kNumStallCauses; ++c)
        stall_cycles += machine.stallCycles((StallCause)c);
    uint64_t w = cfg.issueWidth;
    EXPECT_EQ(machine.cycles(),
              (machine.instructions() + w - 1) / w + stall_cycles);
}

INSTANTIATE_TEST_SUITE_P(IssueWidth, MachineBreakdownSum,
                         testing::Values(1u, 2u, 4u));

TEST(Machine, ResetRestoresInitialState)
{
    Machine machine;
    machine.onBundle(aluBundle(0, 100));
    machine.reset();
    EXPECT_EQ(machine.instructions(), 0u);
    EXPECT_EQ(machine.cycles(), 0u);
}

TEST(Machine, ZeroCountBundleFetchesNothing)
{
    // Regression: fetch() computed pc + (count - 1) * 4 with a
    // uint32_t count, so count == 0 underflowed and walked ~2^30
    // i-cache lines. An empty bundle must be a no-op.
    Machine machine;
    trace::Bundle b;
    b.pc = 0x1000;
    b.count = 0;
    b.cls = trace::InstClass::IntAlu;
    machine.onBundle(b);
    EXPECT_EQ(machine.instructions(), 0u);
    EXPECT_EQ(machine.icache().accesses(), 0u);
    EXPECT_EQ(machine.itlb().misses(), 0u);
    EXPECT_EQ(machine.cycles(), 0u);

    // And a normal bundle afterwards behaves as if it came first.
    b.count = 4;
    machine.onBundle(b);
    EXPECT_EQ(machine.instructions(), 4u);
    EXPECT_EQ(machine.icache().accesses(), 1u);
}

TEST(Machine, LineCrossingFetchChargesPerLine)
{
    // Four instructions starting 8 bytes before a 32-byte line
    // boundary span exactly two lines on the same 8 KB page: two
    // i-cache accesses, one iTLB access.
    Machine machine;
    trace::Bundle b;
    b.pc = 0x1000 - 8;
    b.count = 4;
    b.cls = trace::InstClass::IntAlu;
    machine.onBundle(b);
    EXPECT_EQ(machine.icache().accesses(), 2u);
    EXPECT_EQ(machine.icache().misses(), 2u);
    EXPECT_EQ(machine.itlb().hits() + machine.itlb().misses(), 1u);
}

TEST(Machine, PageCrossingFetchChargesOneItlbPerPage)
{
    // Two instructions straddling the 8 KB page boundary: two lines,
    // two pages, so two iTLB accesses (both cold misses).
    Machine machine;
    trace::Bundle b;
    b.pc = 0x2000 - 4;
    b.count = 2;
    b.cls = trace::InstClass::IntAlu;
    machine.onBundle(b);
    EXPECT_EQ(machine.icache().accesses(), 2u);
    EXPECT_EQ(machine.itlb().hits() + machine.itlb().misses(), 2u);
    EXPECT_EQ(machine.itlb().misses(), 2u);
}

TEST(Machine, SameLineRefetchIsDeduplicatedUntilReset)
{
    // Consecutive fetches of the same line collapse into one lookup
    // (the paper's per-line charging), but reset() must forget the
    // last-line latch so a genuine re-fetch is charged again.
    Machine machine;
    machine.onBundle(aluBundle(0x1000, 1));
    EXPECT_EQ(machine.icache().accesses(), 1u);
    machine.onBundle(aluBundle(0x1004, 1)); // same 32-byte line
    EXPECT_EQ(machine.icache().accesses(), 1u);

    machine.reset();
    machine.onBundle(aluBundle(0x1000, 1));
    EXPECT_EQ(machine.icache().accesses(), 1u)
        << "reset() must not suppress the first fetch after it";
}

TEST(Machine, BatchedPathMatchesBundlePathExactly)
{
    // The run-hoisted batch loop (closed-form use-delay ticks, hoisted
    // switch) must be observationally identical to the per-bundle
    // reference path on every counter.
    auto work = mixedWorkload(4000, 99);

    Machine byBundle, byBatch;
    for (const auto &b : work)
        byBundle.onBundle(b);

    trace::BundleBatch batch;
    for (const auto &b : work) {
        batch.push(b);
        if (batch.full()) {
            byBatch.onBatch(batch);
            batch.clear();
        }
    }
    if (!batch.empty())
        byBatch.onBatch(batch);

    EXPECT_EQ(byBatch.instructions(), byBundle.instructions());
    EXPECT_EQ(byBatch.cycles(), byBundle.cycles());
    EXPECT_EQ(byBatch.totalSlots(), byBundle.totalSlots());
    for (int c = 0; c < kNumStallCauses; ++c)
        EXPECT_EQ(byBatch.slotsLostTo((StallCause)c),
                  byBundle.slotsLostTo((StallCause)c))
            << stallCauseName((StallCause)c);
    EXPECT_EQ(byBatch.icache().accesses(), byBundle.icache().accesses());
    EXPECT_EQ(byBatch.icache().misses(), byBundle.icache().misses());
    EXPECT_EQ(byBatch.dcache().accesses(), byBundle.dcache().accesses());
    EXPECT_EQ(byBatch.dcache().misses(), byBundle.dcache().misses());
    EXPECT_EQ(byBatch.l2cache().misses(), byBundle.l2cache().misses());
    EXPECT_EQ(byBatch.itlb().misses(), byBundle.itlb().misses());
    EXPECT_EQ(byBatch.dtlb().misses(), byBundle.dtlb().misses());
    EXPECT_EQ(byBatch.predictor().lookups(),
              byBundle.predictor().lookups());
    EXPECT_EQ(byBatch.predictor().mispredicts(),
              byBundle.predictor().mispredicts());
    EXPECT_EQ(byBatch.imissPer100Insts(), byBundle.imissPer100Insts());
}

TEST(Machine, ShadowCheckAcceptsBatchedSimulation)
{
    // With shadowCheck on, every batch is re-simulated bundle-at-a-
    // time and any counter divergence is fatal. A clean run over a
    // stressful workload must therefore complete without throwing.
    MachineConfig cfg;
    cfg.shadowCheck = true;
    Machine machine(cfg);
    ScopedFatalThrow contain;
    auto work = mixedWorkload(4000, 1234);
    trace::BundleBatch batch;
    EXPECT_NO_THROW({
        for (const auto &b : work) {
            batch.push(b);
            if (batch.full()) {
                machine.onBatch(batch);
                batch.clear();
            }
        }
        if (!batch.empty())
            machine.onBatch(batch);
    });
    EXPECT_NEAR(machine.breakdown().total(), 100.0, 0.01);
}

TEST(CacheSweep, GridShapeAndMonotonicity)
{
    CacheSweep sweep({8, 16, 32, 64}, {1, 2, 4});
    Rng rng(3);
    trace::Bundle b;
    b.cls = trace::InstClass::IntAlu;
    for (int i = 0; i < 50000; ++i) {
        b.pc = (uint32_t)rng.below(48 * 1024) & ~3u;
        b.count = 4;
        sweep.onBundle(b);
    }
    auto results = sweep.results();
    ASSERT_EQ(results.size(), 12u);
    // Within each associativity, misses fall (weakly) with size.
    for (int a = 0; a < 3; ++a)
        for (int s = 1; s < 4; ++s)
            EXPECT_LE(results[a * 4 + s].misses,
                      results[a * 4 + s - 1].misses + 5);
    EXPECT_EQ(sweep.instructions(), 200000u);
}

TEST(CacheSweep, ZeroCountBundleIsIgnored)
{
    // A Bundle with count == 0 carries no instructions; the line walk
    // from pc to pc + (count - 1) * 4 must not underflow and sweep
    // ~2^32 lines through every cache.
    CacheSweep sweep({8}, {1});
    trace::Bundle b;
    b.pc = 0x1000;
    b.count = 0;
    b.cls = trace::InstClass::IntAlu;
    sweep.onBundle(b);
    EXPECT_EQ(sweep.instructions(), 0u);
    EXPECT_EQ(sweep.results()[0].misses, 0u);

    // And a normal bundle afterwards behaves as if it came first.
    b.count = 4;
    sweep.onBundle(b);
    EXPECT_EQ(sweep.instructions(), 4u);
    EXPECT_EQ(sweep.results()[0].misses, 1u);
}

} // namespace
