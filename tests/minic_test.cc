/**
 * @file
 * End-to-end MiniC tests: compile source, run it on the direct-mode
 * executor and on the MIPSI emulator, and check program output and
 * exit codes. Exercises the whole lexer/parser/sema/codegen chain.
 */

#include <gtest/gtest.h>

#include <string>

#include "minic/compile.hh"
#include "mipsi/direct.hh"
#include "mipsi/mipsi.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;

/** Compile and run in direct mode; returns captured stdout. */
std::string
runDirect(const std::string &src, int *exit_code = nullptr,
          vfs::FileSystem *fs_in = nullptr)
{
    trace::Execution exec;
    vfs::FileSystem local_fs;
    vfs::FileSystem &fs = fs_in ? *fs_in : local_fs;
    mipsi::DirectCpu cpu(exec, fs);
    cpu.load(minic::compileMips(src));
    auto result = cpu.run(200'000'000);
    EXPECT_TRUE(result.exited) << "program did not exit";
    if (exit_code)
        *exit_code = result.exitCode;
    return fs.stdoutCapture();
}

/** Compile and run under the MIPSI interpreter; returns stdout. */
std::string
runMipsi(const std::string &src, int *exit_code = nullptr,
         vfs::FileSystem *fs_in = nullptr)
{
    trace::Execution exec;
    vfs::FileSystem local_fs;
    vfs::FileSystem &fs = fs_in ? *fs_in : local_fs;
    mipsi::Mipsi vm(exec, fs);
    vm.load(minic::compileMips(src));
    auto result = vm.run(200'000'000);
    EXPECT_TRUE(result.exited) << "program did not exit";
    if (exit_code)
        *exit_code = result.exitCode;
    return fs.stdoutCapture();
}

TEST(MiniC, HelloWorld)
{
    const char *src = R"(
        int main() {
            print_str("hello, world\n");
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "hello, world\n");
    EXPECT_EQ(runMipsi(src), "hello, world\n");
}

TEST(MiniC, ArithmeticAndPrecedence)
{
    const char *src = R"(
        int main() {
            print_int(2 + 3 * 4);        print_char('\n');
            print_int((2 + 3) * 4);      print_char('\n');
            print_int(100 / 7);          print_char('\n');
            print_int(100 % 7);          print_char('\n');
            print_int(-5 / 2);           print_char('\n');
            print_int(1 << 10);          print_char('\n');
            print_int(-16 >> 2);         print_char('\n');
            print_int(0xff & 0x0f);      print_char('\n');
            print_int(0xf0 | 0x0f);      print_char('\n');
            print_int(0xff ^ 0x0f);      print_char('\n');
            print_int(~0);               print_char('\n');
            return 0;
        }
    )";
    const char *want = "14\n20\n14\n2\n-2\n1024\n-4\n15\n255\n240\n-1\n";
    EXPECT_EQ(runDirect(src), want);
    EXPECT_EQ(runMipsi(src), want);
}

TEST(MiniC, ComparisonsAndLogical)
{
    const char *src = R"(
        int main() {
            print_int(3 < 4); print_int(4 < 3); print_int(3 <= 3);
            print_int(4 > 3); print_int(3 >= 4); print_int(3 == 3);
            print_int(3 != 3);
            print_int(1 && 2); print_int(1 && 0);
            print_int(0 || 3); print_int(0 || 0);
            print_int(!5); print_int(!0);
            print_int(-1 < 1);
            return 0;
        }
    )";
    const char *want = "10110101010011";
    EXPECT_EQ(runDirect(src), want);
    EXPECT_EQ(runMipsi(src), want);
}

TEST(MiniC, ShortCircuitSideEffects)
{
    const char *src = R"(
        int hits;
        int bump() { hits = hits + 1; return 1; }
        int main() {
            hits = 0;
            int a = 0 && bump();
            int b = 1 || bump();
            print_int(hits);
            int c = 1 && bump();
            int d = 0 || bump();
            print_int(hits);
            print_int(a); print_int(b); print_int(c); print_int(d);
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "020111");
    EXPECT_EQ(runMipsi(src), "020111");
}

TEST(MiniC, ControlFlow)
{
    const char *src = R"(
        int main() {
            int total = 0;
            for (int i = 0; i < 10; i = i + 1) {
                if (i == 3)
                    continue;
                if (i == 8)
                    break;
                total += i;
            }
            int j = 0;
            while (j < 5)
                j += 2;
            print_int(total);
            print_char(' ');
            print_int(j);
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "25 6");
    EXPECT_EQ(runMipsi(src), "25 6");
}

TEST(MiniC, RecursionFibonacci)
{
    const char *src = R"(
        int fib(int n) {
            if (n < 2)
                return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            print_int(fib(15));
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "610");
    EXPECT_EQ(runMipsi(src), "610");
}

TEST(MiniC, GlobalsAndArrays)
{
    const char *src = R"(
        int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        int scale = 3;
        char msg[16] = "ok";
        int main() {
            int sum = 0;
            for (int i = 0; i < 8; i += 1)
                sum += table[i] * scale;
            print_int(sum);
            print_char(' ');
            print_str(msg);
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "108 ok");
    EXPECT_EQ(runMipsi(src), "108 ok");
}

TEST(MiniC, LocalArraysAndPointers)
{
    const char *src = R"(
        void fill(int *a, int n) {
            for (int i = 0; i < n; i += 1)
                a[i] = i * i;
        }
        int main() {
            int buf[10];
            fill(buf, 10);
            int *p = buf;
            int sum = 0;
            for (int i = 0; i < 10; i += 1)
                sum += *(p + i);
            print_int(sum);
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "285");
    EXPECT_EQ(runMipsi(src), "285");
}

TEST(MiniC, CharPointersAndStrings)
{
    const char *src = R"(
        int strlen_(char *s) {
            int n = 0;
            while (s[n] != 0)
                n += 1;
            return n;
        }
        void reverse(char *s, int n) {
            int i = 0;
            int j = n - 1;
            while (i < j) {
                char t;
                t = s[i];
                s[i] = s[j];
                s[j] = t;
                i += 1;
                j -= 1;
            }
        }
        char word[16] = "streams";
        int main() {
            reverse(word, strlen_(word));
            print_str(word);
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "smaerts");
    EXPECT_EQ(runMipsi(src), "smaerts");
}

TEST(MiniC, AddressOfScalar)
{
    const char *src = R"(
        void put(int *p, int v) { *p = v; }
        int main() {
            int x = 1;
            put(&x, 42);
            print_int(x);
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "42");
    EXPECT_EQ(runMipsi(src), "42");
}

TEST(MiniC, ExitCodePropagates)
{
    const char *src = "int main() { return 7; }";
    int code = -1;
    runDirect(src, &code);
    EXPECT_EQ(code, 7);
    code = -1;
    runMipsi(src, &code);
    EXPECT_EQ(code, 7);
}

TEST(MiniC, ExplicitExitBuiltin)
{
    const char *src = R"(
        int main() {
            print_str("before");
            exit(3);
            print_str("after");
            return 0;
        }
    )";
    int code = -1;
    EXPECT_EQ(runDirect(src, &code), "before");
    EXPECT_EQ(code, 3);
}

TEST(MiniC, FileIoThroughVfs)
{
    const char *src = R"(
        char buf[64];
        int main() {
            int fd = open("data.txt", 0);
            if (fd < 0) {
                print_str("no file");
                return 1;
            }
            int n = read(fd, buf, 63);
            buf[n] = 0;
            close(fd);
            print_str(buf);
            return 0;
        }
    )";
    vfs::FileSystem fs;
    fs.writeFile("data.txt", "file contents here");
    EXPECT_EQ(runDirect(src, nullptr, &fs), "file contents here");

    vfs::FileSystem fs2;
    fs2.writeFile("data.txt", "file contents here");
    EXPECT_EQ(runMipsi(src, nullptr, &fs2), "file contents here");
}

TEST(MiniC, SbrkHeapAllocation)
{
    const char *src = R"(
        int main() {
            int *a = sbrk(40);
            int *b = sbrk(40);
            for (int i = 0; i < 10; i += 1) {
                a[i] = i;
                b[i] = i * 10;
            }
            print_int(a[9] + b[9]);
            return 0;
        }
    )";
    EXPECT_EQ(runDirect(src), "99");
    EXPECT_EQ(runMipsi(src), "99");
}

TEST(MiniC, SemanticErrorsAreFatal)
{
    EXPECT_EXIT((void)minic::compileMips("int main() { return x; }"),
                testing::ExitedWithCode(1), "undefined variable");
    EXPECT_EXIT((void)minic::compileMips("int f() { return 0; }"),
                testing::ExitedWithCode(1), "no 'main'");
    EXPECT_EXIT((void)minic::compileMips("int main() { 3 = 4; return 0; }"),
                testing::ExitedWithCode(1), "lvalue");
    EXPECT_EXIT((void)minic::compileMips(
                    "int main() { break; return 0; }"),
                testing::ExitedWithCode(1), "outside a loop");
}

TEST(MiniC, ParserErrorsAreFatal)
{
    EXPECT_EXIT((void)minic::compileMips("int main( { return 0; }"),
                testing::ExitedWithCode(1), "expected");
    EXPECT_EXIT((void)minic::compileMips("int main() { int x = ; }"),
                testing::ExitedWithCode(1), "expected an expression");
}

/**
 * Property-style sweep: random-ish arithmetic expressions evaluated by
 * the compiler + emulator must match host evaluation.
 */
class ArithSweep : public testing::TestWithParam<int>
{};

TEST_P(ArithSweep, MatchesHost)
{
    int seed = GetParam();
    // Small deterministic "expression": ((seed*13+7)^(seed<<3))%1000 etc.
    int32_t a = seed * 13 + 7;
    int32_t b = (seed << 3) | 1;
    int32_t expect = ((a ^ b) + (a % b) * 3 - (b / (seed + 1))) |
                     (a & 0x5555);
    std::string src =
        "int main() {\n"
        "    int a = " + std::to_string(seed) + " * 13 + 7;\n"
        "    int b = (" + std::to_string(seed) + " << 3) | 1;\n"
        "    print_int(((a ^ b) + (a % b) * 3 - (b / (" +
        std::to_string(seed) + " + 1))) | (a & 0x5555));\n"
        "    return 0;\n"
        "}\n";
    EXPECT_EQ(runDirect(src), std::to_string(expect));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithSweep,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                         89, 144, 233));

} // namespace
