/**
 * @file
 * Unit tests for the binary trace format: varint/zigzag/RLE/CRC
 * primitives, writer->reader event round trips (including chunk
 * boundaries and attribution state), and the robustness contract —
 * truncated, bit-flipped, version-bumped and unfinalized files must
 * fail with a contained FatalError, never a crash or a silently
 * wrong decode.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "tracefile/format.hh"
#include "tracefile/reader.hh"
#include "tracefile/writer.hh"

namespace {

using namespace interp;
using namespace interp::tracefile;
namespace fs = std::filesystem;

std::string
tmpPath(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / "interp_tracefile";
    fs::create_directories(dir);
    return (dir / name).string();
}

// --- primitives ------------------------------------------------------------

TEST(Varint, RoundTrips)
{
    const uint64_t values[] = {0, 1, 0x7f, 0x80, 0x3fff, 0x4000,
                               1234567, 0xffffffffull,
                               0xffffffffffffffffull};
    std::string buf;
    for (uint64_t v : values)
        putVarint(buf, v);
    const uint8_t *p = (const uint8_t *)buf.data();
    const uint8_t *end = p + buf.size();
    for (uint64_t v : values) {
        uint64_t got = 0;
        ASSERT_TRUE(getVarint(p, end, got));
        EXPECT_EQ(got, v);
    }
    EXPECT_EQ(p, end);
}

TEST(Varint, TruncationDetected)
{
    std::string buf;
    putVarint(buf, 0x12345678u);
    for (size_t cut = 0; cut < buf.size(); ++cut) {
        const uint8_t *p = (const uint8_t *)buf.data();
        uint64_t got;
        EXPECT_FALSE(getVarint(p, p + cut, got))
            << "decoded from only " << cut << " bytes";
    }
}

TEST(Varint, SignedRoundTrips)
{
    const int64_t values[] = {0, 1, -1, 63, -64, 64, -65, 1 << 20,
                              -(1 << 20), INT64_MAX, INT64_MIN};
    std::string buf;
    for (int64_t v : values)
        putSVarint(buf, v);
    const uint8_t *p = (const uint8_t *)buf.data();
    const uint8_t *end = p + buf.size();
    for (int64_t v : values) {
        int64_t got = 0;
        ASSERT_TRUE(getSVarint(p, end, got));
        EXPECT_EQ(got, v);
    }
}

TEST(Crc32, KnownVector)
{
    // The classic check value for CRC-32/IEEE.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Rle, RoundTripsRunsAndLiterals)
{
    std::string raw;
    raw.append(200, 'a');          // long run (> one token)
    raw += "literal bytes here";   // literal stretch
    raw.append(3, 'b');            // below run threshold
    raw.append(7, '\0');           // zero run
    for (int i = 0; i < 300; ++i)  // incompressible stretch
        raw.push_back((char)(i * 37 + 11));

    std::string stored = rleCompress(raw);
    std::string back;
    ASSERT_TRUE(rleDecompress((const uint8_t *)stored.data(),
                              stored.size(), raw.size(), back));
    EXPECT_EQ(back, raw);
}

TEST(Rle, CompressesRuns)
{
    std::string raw(10000, 'x');
    std::string stored = rleCompress(raw);
    EXPECT_LT(stored.size(), raw.size() / 20);
}

TEST(Rle, RejectsMalformedInput)
{
    std::string out;
    // Literal token promising 5 bytes with only 2 present.
    const uint8_t lit[] = {0x04, 'a', 'b'};
    EXPECT_FALSE(rleDecompress(lit, sizeof(lit), 5, out));
    // Run token with no value byte.
    const uint8_t run[] = {0x90};
    EXPECT_FALSE(rleDecompress(run, sizeof(run), 19, out));
    // Output size mismatch.
    const uint8_t ok[] = {0x81, 'z'};
    EXPECT_FALSE(rleDecompress(ok, sizeof(ok), 3, out));
}

// --- writer -> reader round trip -------------------------------------------

/** Sink recording every delivered event for equality checks. */
class Collector : public trace::Sink
{
  public:
    struct Event
    {
        int kind; // 0 bundle, 1 command, 2 memaccess
        trace::Bundle bundle;
        trace::CommandId command = 0;
    };

    void
    onBundle(const trace::Bundle &b) override
    {
        events.push_back({0, b, 0});
    }
    void
    onCommand(trace::CommandId c) override
    {
        events.push_back({1, {}, c});
    }
    void onMemModelAccess() override { events.push_back({2, {}, 0}); }

    std::vector<Event> events;
};

void
expectSameEvents(const Collector &a, const Collector &b)
{
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        const auto &ea = a.events[i];
        const auto &eb = b.events[i];
        ASSERT_EQ(ea.kind, eb.kind) << "event " << i;
        if (ea.kind == 1) {
            EXPECT_EQ(ea.command, eb.command) << "event " << i;
            continue;
        }
        if (ea.kind != 0)
            continue;
        const trace::Bundle &x = ea.bundle;
        const trace::Bundle &y = eb.bundle;
        EXPECT_EQ(x.pc, y.pc) << "event " << i;
        EXPECT_EQ(x.count, y.count) << "event " << i;
        EXPECT_EQ((int)x.cls, (int)y.cls) << "event " << i;
        EXPECT_EQ((int)x.cat, (int)y.cat) << "event " << i;
        EXPECT_EQ(x.command, y.command) << "event " << i;
        EXPECT_EQ(x.memModel, y.memModel) << "event " << i;
        EXPECT_EQ(x.native, y.native) << "event " << i;
        EXPECT_EQ(x.system, y.system) << "event " << i;
        EXPECT_EQ(x.taken, y.taken) << "event " << i;
        EXPECT_EQ(x.memAddr, y.memAddr) << "event " << i;
        EXPECT_EQ(x.target, y.target) << "event " << i;
    }
}

/** Deterministic synthetic stream exercising every event shape. */
void
emitSyntheticStream(trace::Sink &sink)
{
    uint32_t pc = 0x1000;
    uint32_t addr = 0x40000000;
    for (int i = 0; i < 5000; ++i) {
        trace::Bundle b;
        b.cat = (i % 7 == 0) ? trace::Category::FetchDecode
                             : trace::Category::Execute;
        b.command = (trace::CommandId)(i % 13);
        b.memModel = i % 5 == 0;
        b.native = i % 11 == 0;
        b.system = i % 17 == 0;
        if (i % 13 == 0)
            sink.onCommand(b.command);
        switch (i % 4) {
          case 0: // straight-line run, sequential PC
            b.pc = pc;
            b.count = 1 + (i % 9);
            b.cls = trace::InstClass::IntAlu;
            break;
          case 1: // load with wandering address
            b.pc = pc;
            b.count = 1;
            b.cls = trace::InstClass::Load;
            addr += (i % 3 == 0) ? 16 : (uint32_t)-48;
            b.memAddr = addr;
            break;
          case 2: // branch, sometimes backward, alternating outcome
            b.pc = pc;
            b.count = 1;
            b.cls = trace::InstClass::CondBranch;
            b.taken = i % 3 != 0;
            b.target = b.taken ? pc - 256 : pc + 16;
            break;
          default: // non-sequential jump to a distant routine
            b.pc = pc + 0x2000;
            b.count = 1;
            b.cls = trace::InstClass::IndirectJump;
            b.taken = true;
            b.target = 0x04000000 + (uint32_t)(i * 64);
            break;
        }
        pc = b.pc + b.count * 4;
        sink.onBundle(b);
        if (i % 19 == 0)
            sink.onMemModelAccess();
    }
}

std::string
writeSyntheticTrace(const std::string &name, size_t chunk_bytes)
{
    std::string path = tmpPath(name);
    TraceWriter writer(path, "Perl", "synthetic", chunk_bytes);
    emitSyntheticStream(writer);
    writer.setRunResult(1234, 777, true);
    writer.setCommandNames({"add", "sub", "print"});
    writer.finish();
    return path;
}

TEST(TraceRoundTrip, EventsSurviveExactly)
{
    // Tiny chunks force many chunk boundaries (delta/attribution
    // state resets) through the same stream.
    for (size_t chunk_bytes : {size_t(64), size_t(4096),
                               kDefaultChunkBytes}) {
        Collector live;
        emitSyntheticStream(live);

        std::string path = writeSyntheticTrace("roundtrip.itr",
                                               chunk_bytes);
        TraceReader reader(path);
        Collector replayed;
        reader.replay({&replayed});
        expectSameEvents(live, replayed);

        EXPECT_EQ(reader.meta().lang, "Perl");
        EXPECT_EQ(reader.meta().name, "synthetic");
        EXPECT_EQ(reader.meta().programBytes, 1234u);
        EXPECT_EQ(reader.meta().commands, 777u);
        EXPECT_TRUE(reader.meta().finished);
        ASSERT_EQ(reader.meta().commandNames.size(), 3u);
        EXPECT_EQ(reader.meta().commandNames[2], "print");
    }
}

TEST(TraceRoundTrip, ReplayIsRepeatable)
{
    std::string path = writeSyntheticTrace("repeat.itr", 512);
    TraceReader reader(path);
    Collector first, second;
    reader.replay({&first});
    reader.replay({&second});
    expectSameEvents(first, second);
}

TEST(TraceRoundTrip, MultipleSinksSeeTheSameStream)
{
    std::string path = writeSyntheticTrace("fanout.itr", 512);
    TraceReader reader(path);
    Collector a, b;
    reader.replay({&a, &b});
    expectSameEvents(a, b);
}

// --- corrupt / hostile files -----------------------------------------------

// Open + full decode in one call: the robustness contract is that a
// bad file fails with a contained FatalError, whether the defect is
// caught by the constructor's structural scan or by the payload
// decode in replay().
void
openAndReplay(const std::string &path)
{
    TraceReader reader(path);
    Collector sink;
    reader.replay({&sink});
}

void
flipByteAt(const std::string &path, uint64_t offset)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg((std::streamoff)offset);
    char c = 0;
    f.read(&c, 1);
    c = (char)(c ^ 0x5a);
    f.seekp((std::streamoff)offset);
    f.write(&c, 1);
}

TEST(TraceCorruption, TruncatedChunkIsContained)
{
    std::string path = writeSyntheticTrace("truncated.itr", 512);
    uint64_t size = (uint64_t)fs::file_size(path);
    fs::resize_file(path, size - 7);
    ScopedFatalThrow contain;
    EXPECT_THROW(openAndReplay(path), FatalError);
}

TEST(TraceCorruption, TruncatedHeaderIsContained)
{
    std::string path = writeSyntheticTrace("shortheader.itr", 512);
    fs::resize_file(path, 20);
    ScopedFatalThrow contain;
    EXPECT_THROW(TraceReader reader(path), FatalError);
}

TEST(TraceCorruption, BadCrcIsContained)
{
    std::string path = writeSyntheticTrace("badcrc.itr", 512);
    // Flip a byte inside the first chunk's payload (header is 80
    // fixed + 4+4 lang + 4+9 name = 101 bytes, chunk header 32).
    flipByteAt(path, 150);
    ScopedFatalThrow contain;
    EXPECT_THROW(openAndReplay(path), FatalError);
}

TEST(TraceCorruption, WrongVersionIsContained)
{
    std::string path = writeSyntheticTrace("badversion.itr", 512);
    flipByteAt(path, 8); // first byte of the version field
    ScopedFatalThrow contain;
    EXPECT_THROW(TraceReader reader(path), FatalError);
}

TEST(TraceCorruption, BadMagicIsContained)
{
    std::string path = writeSyntheticTrace("badmagic.itr", 512);
    flipByteAt(path, 0);
    ScopedFatalThrow contain;
    EXPECT_THROW(TraceReader reader(path), FatalError);
}

TEST(TraceCorruption, UnfinalizedFileIsRejected)
{
    std::string path = tmpPath("unfinished.itr");
    {
        TraceWriter writer(path, "Tcl", "aborted", 512);
        trace::Bundle b;
        b.pc = 64;
        writer.onBundle(b);
        // No finish(): simulates a recording killed mid-run. The
        // destructor warns; the file must then be unreadable.
    }
    ScopedFatalThrow contain;
    EXPECT_THROW(TraceReader reader(path), FatalError);
}

TEST(TraceCorruption, MissingFileIsContained)
{
    ScopedFatalThrow contain;
    EXPECT_THROW(TraceReader reader(tmpPath("does-not-exist.itr")),
                 FatalError);
}

TEST(TraceCorruption, TrailingGarbageIsContained)
{
    std::string path = writeSyntheticTrace("trailing.itr", 512);
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("junk", 4);
    f.close();
    ScopedFatalThrow contain;
    EXPECT_THROW(openAndReplay(path), FatalError);
}

// --- degenerate-but-legal and degenerate-illegal edge files ----------------

TEST(TraceCorruption, ZeroLengthFileIsContained)
{
    // A zero-byte file (e.g. a recording that died before the header
    // write) must fail the header read, not index into an empty
    // buffer.
    std::string path = tmpPath("zero.itr");
    { std::ofstream f(path, std::ios::binary | std::ios::trunc); }
    ASSERT_EQ(fs::file_size(path), 0u);
    ScopedFatalThrow contain;
    EXPECT_THROW(openAndReplay(path), FatalError);
}

TEST(TraceRoundTrip, EmptyFinalizedTapeReplaysCleanly)
{
    // finish() with no events is legal (a run can retire zero virtual
    // commands); the tape must open and replay to all-zero totals —
    // clean EOF, not UB and not a spurious corruption report.
    std::string path = tmpPath("empty.itr");
    {
        TraceWriter writer(path, "Tcl", "empty", 512);
        writer.setRunResult(0, 0, true);
        writer.setCommandNames({});
        writer.finish();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.meta().totalEvents, 0u);
    EXPECT_EQ(reader.meta().totalInsts, 0u);
    EXPECT_TRUE(reader.meta().finished);
    EXPECT_TRUE(reader.meta().commandNames.empty());
    Collector sink;
    reader.replay({&sink});
    EXPECT_TRUE(sink.events.empty());
}

} // namespace
