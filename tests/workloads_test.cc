/**
 * @file
 * Tests for the guest-workload registry (src/workloads/): structural
 * completeness (every workload carries runnable sources and a golden
 * per mode, names are unique, the macro suite is exactly the registry
 * in canonical order), the glob-based suite subsetting the bench
 * drivers share, and golden execution — every post-registry workload
 * reproduces its declared stdout under every baseline mode it
 * supports, and the composition tower's rungs (threaded, jit) keep
 * the composed output byte-identical to the mipsi baseline.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "workloads/compose.hh"
#include "workloads/registry.hh"

namespace {

using namespace interp;
using namespace interp::workloads;
using harness::Lang;

// --- structural completeness -------------------------------------------

TEST(Registry, NamesAreUniqueAndNonEmpty)
{
    const auto &table = registry();
    ASSERT_GE(table.size(), 21u) << "15 legacy + 4 modern + 2 composed";
    std::set<std::string> names;
    for (const Workload &w : table) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_TRUE(names.insert(w.name).second)
            << "duplicate workload " << w.name;
    }
}

TEST(Registry, EveryWorkloadHasSourcesAndAGoldenPerMode)
{
    for (const Workload &w : registry()) {
        ASSERT_FALSE(w.sources.empty()) << w.name;
        std::set<Lang> langs;
        for (const ModeSource &src : w.sources) {
            EXPECT_FALSE(src.path.empty()) << w.name;
            EXPECT_TRUE(langs.insert(src.lang).second)
                << w.name << ": duplicate source for "
                << harness::langName(src.lang);
            const std::string *golden = goldenFor(w, src.lang);
            ASSERT_NE(golden, nullptr)
                << w.name << " has no golden under "
                << harness::langName(src.lang);
            EXPECT_FALSE(golden->empty()) << w.name;
            // The checksum form must be a full 16-digit fnv64 hex.
            if (golden->rfind("fnv64:", 0) == 0)
                EXPECT_EQ(golden->size(), 6u + 16u) << w.name;
        }
        // No golden may dangle: each must name a declared source mode.
        for (const Golden &g : w.goldens)
            EXPECT_TRUE(langs.count(g.lang))
                << w.name << " golden for undeclared mode "
                << harness::langName(g.lang);
    }
}

TEST(Registry, ComposedWorkloadsAreScriptelUnderMipsi)
{
    size_t composed = 0;
    for (const Workload &w : registry()) {
        if (!w.composed())
            continue;
        ++composed;
        EXPECT_TRUE(w.needsInputs) << w.name << ": the script file is "
                                              "installed via the vfs";
        ASSERT_EQ(w.sources.size(), 1u) << w.name;
        EXPECT_EQ(w.sources[0].lang, Lang::Mipsi) << w.name;
        // The composed source is the Scriptel interpreter specialised
        // to open this workload's script.
        harness::BenchSpec spec = specFor(w, Lang::Mipsi);
        EXPECT_NE(spec.source.find(w.script), std::string::npos)
            << w.name;
        EXPECT_EQ(spec.source.find("compose.sel"), std::string::npos)
            << w.name << ": placeholder not fully substituted";
    }
    EXPECT_GE(composed, 2u);
}

TEST(Registry, MacroSuiteIsExactlyTheRegistry)
{
    // Every (workload, mode) pair appears exactly once in the macro
    // suite, and per-mode groups respect the declared order keys.
    auto suite = macroRows();
    std::set<std::pair<std::string, Lang>> seen;
    for (const harness::BenchSpec &spec : suite) {
        const Workload *w = find(spec.name);
        ASSERT_NE(w, nullptr) << spec.name;
        EXPECT_TRUE(w->supports(spec.lang)) << spec.name;
        EXPECT_TRUE(seen.insert({spec.name, spec.lang}).second)
            << spec.name << " duplicated under "
            << harness::langName(spec.lang);
    }
    size_t pairs = 0;
    for (const Workload &w : registry())
        pairs += w.sources.size();
    EXPECT_EQ(seen.size(), pairs);
}

TEST(Registry, FnvChecksumKnownAnswer)
{
    // FNV-1a 64 of the empty string is the offset basis.
    EXPECT_EQ(fnv64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv64Hex("a"), "fnv64:af63dc4c8601ec8c");
}

// --- suite subsetting (--programs=) ------------------------------------

TEST(Programs, GlobMatchSemantics)
{
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("compose-*", "compose-mat"));
    EXPECT_FALSE(globMatch("compose-*", "composed"));
    EXPECT_TRUE(globMatch("r?match", "rxmatch"));
    EXPECT_FALSE(globMatch("r?match", "rmatch"));
    EXPECT_TRUE(globMatch("*mat*", "matmul"));
    EXPECT_FALSE(globMatch("", "x"));
    EXPECT_TRUE(globMatch("", ""));
}

TEST(Programs, FilterKeepsMatchingRowsAcrossModes)
{
    auto all = macroRows();
    EXPECT_EQ(filterPrograms(all, "").size(), all.size());

    auto spins = filterPrograms(all, "spin");
    ASSERT_EQ(spins.size(), 4u) << "spin runs under all four modes";
    for (const auto &spec : spins)
        EXPECT_EQ(spec.name, "spin");

    auto several = filterPrograms(all, "compose-*,rxmatch");
    std::set<std::string> names;
    for (const auto &spec : several)
        names.insert(spec.name);
    EXPECT_EQ(names,
              (std::set<std::string>{"compose-spin", "compose-mat",
                                     "rxmatch"}));

    EXPECT_TRUE(filterPrograms(all, "no-such-workload").empty());
}

// --- golden execution --------------------------------------------------

/** Run @p w under @p mode (counting-only) and return the measurement. */
harness::Measurement
runUnder(const Workload &w, Lang mode)
{
    harness::BenchSpec spec = specFor(w, mode);
    spec.lang = mode;
    return harness::run(spec, {}, nullptr, /*with_machine=*/false);
}

TEST(Goldens, ModernWorkloadsReproduceEveryDeclaredGolden)
{
    // The post-registry additions (order keys >= 10) each run to
    // completion under every baseline mode they declare and hit the
    // golden byte-for-byte (or checksum-for-checksum).
    size_t checked = 0;
    for (const char *name :
         {"rxmatch", "kanren", "matmul", "spin", "compose-spin",
          "compose-mat"}) {
        const Workload *w = find(name);
        ASSERT_NE(w, nullptr) << name;
        for (const ModeSource &src : w->sources) {
            harness::Measurement m = runUnder(*w, src.lang);
            EXPECT_TRUE(m.finished)
                << name << " under " << harness::langName(src.lang);
            EXPECT_TRUE(goldenMatches(*w, src.lang, m.stdoutText))
                << name << " under " << harness::langName(src.lang)
                << " printed:\n"
                << m.stdoutText;
            ++checked;
        }
    }
    EXPECT_EQ(checked, 17u);
}

TEST(Goldens, LegacyRowsStillReproduce)
{
    // Spot-check that moving the legacy suite into the registry kept
    // its goldens live (the full sweep is the bench drivers' job).
    for (const char *name : {"hanoi", "tcllex"}) {
        const Workload *w = find(name);
        ASSERT_NE(w, nullptr) << name;
        for (const ModeSource &src : w->sources) {
            harness::Measurement m = runUnder(*w, src.lang);
            EXPECT_TRUE(m.finished) << name;
            EXPECT_TRUE(goldenMatches(*w, src.lang, m.stdoutText))
                << name << " under " << harness::langName(src.lang);
        }
    }
}

TEST(Goldens, ComposedTowerIsIdenticalUpTheTierLadder)
{
    // The tier ladder's contract extends to guest-on-guest programs:
    // threaded and jit MIPSI must reproduce the composed stdout (and
    // hence the inner interpreter's own trailer) byte-identically.
    const Workload *w = find("compose-spin");
    ASSERT_NE(w, nullptr);
    harness::Measurement base = runUnder(*w, Lang::Mipsi);
    ASSERT_TRUE(base.finished);
    ASSERT_TRUE(goldenMatches(*w, Lang::Mipsi, base.stdoutText));

    for (Lang rung : {Lang::MipsiThreaded, Lang::MipsiJit}) {
        harness::Measurement m = runUnder(*w, rung);
        EXPECT_TRUE(m.finished) << harness::langName(rung);
        EXPECT_EQ(m.stdoutText, base.stdoutText)
            << harness::langName(rung);
        EXPECT_EQ(m.commands, base.commands)
            << harness::langName(rung);
    }
}

TEST(Compose, PhaseClassifierCoversScriptelRoutines)
{
    using workloads::GuestFetchProfiler;
    EXPECT_EQ(GuestFetchProfiler::classify("fetch_op"),
              InnerPhase::Fetch);
    EXPECT_EQ(GuestFetchProfiler::classify("exec_op"),
              InnerPhase::Decode);
    EXPECT_EQ(GuestFetchProfiler::classify("op_add"),
              InnerPhase::Execute);
    EXPECT_EQ(GuestFetchProfiler::classify("main"),
              InnerPhase::Dispatch);
    EXPECT_EQ(GuestFetchProfiler::classify("tokenize"),
              InnerPhase::Precompile);
    EXPECT_EQ(GuestFetchProfiler::classify("strlen"),
              InnerPhase::Runtime);
}

} // namespace
