/**
 * @file
 * Tests for the tclish interpreter: symbol table, parsing and
 * substitution rules, command semantics, procs and scopes, expr,
 * tk drawing, and the Tcl-specific cost profile (huge fetch/decode,
 * symbol-table memory model).
 */

#include <gtest/gtest.h>

#include <string>

#include "tclish/interp.hh"
#include "tclish/symtab.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;
using namespace interp::tclish;

// --- SymTab ----------------------------------------------------------

TEST(TclSymTab, LookupCreatesAndFinds)
{
    SymTab table;
    int steps;
    table.lookup("x", steps) = "1";
    EXPECT_EQ(*table.find("x", steps), "1");
    EXPECT_EQ(table.find("y", steps), nullptr);
    EXPECT_EQ(table.size(), 1u);
}

TEST(TclSymTab, ChainsGrowWithEntries)
{
    SymTab table;
    int steps;
    for (int i = 0; i < 512; ++i)
        table.lookup("var" + std::to_string(i), steps) = "v";
    // With 32 fixed buckets and 512 entries, average chains are ~16.
    int total = 0;
    for (int i = 0; i < 512; ++i) {
        table.find("var" + std::to_string(i), steps);
        total += steps;
    }
    EXPECT_GT(total / 512, 4) << "fixed buckets mean growing chains";
}

TEST(TclSymTab, ValuesStableAcrossGrowth)
{
    // Regression guard for the reference-invalidated-by-growth bug
    // class: values written early must remain intact and findable
    // after the table has grown by an order of magnitude (fixed
    // bucket array, chained nodes — growth must never rehash or move
    // live entries).
    SymTab table;
    int steps;
    std::string *early = &table.lookup("early", steps);
    *early = "payload";
    for (int i = 0; i < 2000; ++i)
        table.lookup("fill" + std::to_string(i), steps) =
            std::to_string(i);
    EXPECT_EQ(table.find("early", steps), early)
        << "node moved during growth";
    EXPECT_EQ(*early, "payload");
    for (int i = 0; i < 2000; i += 97)
        EXPECT_EQ(*table.find("fill" + std::to_string(i), steps),
                  std::to_string(i));
}

TEST(TclSymTab, Erase)
{
    SymTab table;
    int steps;
    table.lookup("a", steps) = "1";
    EXPECT_TRUE(table.erase("a"));
    EXPECT_FALSE(table.erase("a"));
    EXPECT_EQ(table.find("a", steps), nullptr);
}

// --- interpreter harness -----------------------------------------------

std::string
runTcl(const std::string &script, vfs::FileSystem *fs_in = nullptr,
       trace::Profile *profile = nullptr, TclInterp **interp_out = nullptr,
       int *exit_code = nullptr)
{
    static trace::Execution *exec;
    static TclInterp *interp;
    static vfs::FileSystem *fs;
    delete interp;
    delete exec;
    delete fs;
    exec = new trace::Execution;
    fs = fs_in ? nullptr : new vfs::FileSystem;
    vfs::FileSystem &the_fs = fs_in ? *fs_in : *fs;
    if (profile)
        exec->addSink(profile);
    interp = new TclInterp(*exec, the_fs);
    auto result = interp->run(script, 50'000'000);
    EXPECT_TRUE(result.exited) << "script did not finish";
    if (interp_out)
        *interp_out = interp;
    if (exit_code)
        *exit_code = result.exitCode;
    return the_fs.stdoutCapture();
}

// --- language semantics -------------------------------------------------

TEST(Tclish, PutsAndSet)
{
    EXPECT_EQ(runTcl("puts \"hello tcl\""), "hello tcl\n");
    EXPECT_EQ(runTcl("set x 42\nputs $x"), "42\n");
    EXPECT_EQ(runTcl("set x 1; set y 2; puts \"$x$y\""), "12\n");
}

TEST(Tclish, SetReturnsValueAndBracketsSubstitute)
{
    EXPECT_EQ(runTcl("puts [set x 7]"), "7\n");
    EXPECT_EQ(runTcl("set x [set y 5]\nputs $x$y"), "55\n");
}

TEST(Tclish, BracesPreventSubstitution)
{
    EXPECT_EQ(runTcl("puts {$x [foo]}"), "$x [foo]\n");
    EXPECT_EQ(runTcl("set v 9\nputs \"$v {x}\""), "9 {x}\n");
}

TEST(Tclish, BackslashEscapes)
{
    EXPECT_EQ(runTcl(R"(puts "a\tb\nc")"), "a\tb\nc\n");
    EXPECT_EQ(runTcl(R"(puts "\$notavar")"), "$notavar\n");
}

TEST(Tclish, ExprArithmetic)
{
    EXPECT_EQ(runTcl("puts [expr 2 + 3 * 4]"), "14\n");
    EXPECT_EQ(runTcl("puts [expr (2 + 3) * 4]"), "20\n");
    EXPECT_EQ(runTcl("puts [expr 17 % 5]"), "2\n");
    EXPECT_EQ(runTcl("puts [expr -17 / 5]"), "-4\n")
        << "Tcl divides toward negative infinity";
    EXPECT_EQ(runTcl("puts [expr 1 << 10]"), "1024\n");
    EXPECT_EQ(runTcl("puts [expr 0xff & 0x0f]"), "15\n");
    EXPECT_EQ(runTcl("puts [expr 3 < 4 && 4 < 3 || 1]"), "1\n");
    EXPECT_EQ(runTcl("puts [expr !0]"), "1\n");
    EXPECT_EQ(runTcl("puts [expr ~5 & 0xff]"), "250\n");
}

TEST(Tclish, ExprReadsVariablesItself)
{
    // Braced expr arguments are not substituted by the parser; expr
    // does its own $ lookups at evaluation time.
    EXPECT_EQ(runTcl("set a 6\nset b 7\nputs [expr {$a * $b}]"),
              "42\n");
}

TEST(Tclish, IfElseifElse)
{
    const char *script = R"(
        proc sign {v} {
            if {$v > 0} {
                return pos
            } elseif {$v < 0} {
                return neg
            } else {
                return zero
            }
        }
        puts [sign 5][sign -5][sign 0]
    )";
    EXPECT_EQ(runTcl(script), "posnegzero\n");
}

TEST(Tclish, WhileForBreakContinue)
{
    const char *script = R"(
        set total 0
        for {set i 0} {$i < 10} {incr i} {
            if {$i == 3} { continue }
            if {$i == 8} { break }
            set total [expr {$total + $i}]
        }
        set j 0
        while {$j < 5} { incr j 2 }
        puts "$total $j"
    )";
    EXPECT_EQ(runTcl(script), "25 6\n");
}

TEST(Tclish, ForeachOverList)
{
    EXPECT_EQ(runTcl(R"(
        set out ""
        foreach w {alpha {b c} gamma} {
            append out <$w>
        }
        puts $out
    )"),
              "<alpha><b c><gamma>\n");
}

TEST(Tclish, ProcsAndScopes)
{
    const char *script = R"(
        set g 100
        proc bump {x} {
            global g
            set local 5
            incr g
            return [expr {$x + $local}]
        }
        puts [bump 10]
        puts $g
        puts [info_exists_placeholder]
    )";
    // 'local' must not leak into the global scope; reading it should
    // be a fatal error, which we test separately. Here: happy path.
    const char *ok_script = R"(
        set g 100
        proc bump {x} {
            global g
            set local 5
            incr g
            return [expr {$x + $local}]
        }
        puts [bump 10]
        puts $g
    )";
    (void)script;
    EXPECT_EQ(runTcl(ok_script), "15\n101\n");
}

TEST(Tclish, ProcLocalDoesNotLeak)
{
    EXPECT_EXIT((void)runTcl(R"(
            proc f {} { set hidden 1 }
            f
            puts $hidden
        )"),
                testing::ExitedWithCode(1), "no such variable");
}

TEST(Tclish, RecursionFactorial)
{
    EXPECT_EQ(runTcl(R"(
        proc fact {n} {
            if {$n <= 1} { return 1 }
            return [expr {$n * [fact [expr {$n - 1}]]}]
        }
        puts [fact 10]
    )"),
              "3628800\n");
}

TEST(Tclish, ArraysViaParenNames)
{
    EXPECT_EQ(runTcl(R"tcl(
        set a(one) 1
        set a(two) 2
        set k two
        puts "$a(one) $a($k)"
    )tcl"),
              "1 2\n");
}

TEST(Tclish, StringCommands)
{
    EXPECT_EQ(runTcl(R"(
        set s "interpreter"
        puts [string length $s]
        puts [string index $s 5]
        puts [string range $s 0 4]
        puts [string compare abc abd]
        puts [string first pre $s]
        puts [string toupper $s]
    )"),
              "11\np\ninter\n-1\n5\nINTERPRETER\n");
}

TEST(Tclish, ListCommands)
{
    EXPECT_EQ(runTcl(R"(
        set l [list a b {c d} e]
        puts [llength $l]
        puts [lindex $l 2]
        lappend l f
        puts [llength $l]
        puts [join {1 2 3} +]
        puts [lrange {a b c d e} 1 3]
    )"),
              "4\nc d\n5\n1+2+3\nb c d\n");
}

TEST(Tclish, SplitAndJoin)
{
    EXPECT_EQ(runTcl(R"(
        puts [split "a:b::c" :]
        puts [split "  x  y  "]
    )"),
              "a b {} c\nx y\n");
}

TEST(Tclish, FormatSubset)
{
    EXPECT_EQ(runTcl(R"(puts [format "%05d|%-4s|%x" 42 ab 255])"),
              "00042|ab  |ff\n");
}

TEST(Tclish, AppendAndIncr)
{
    EXPECT_EQ(runTcl(R"(
        set s x
        append s y z
        set n 5
        incr n
        incr n 10
        puts "$s $n"
    )"),
              "xyz 16\n");
}

TEST(Tclish, FileIo)
{
    vfs::FileSystem fs;
    fs.writeFile("data.txt", "10\n20\n12\n");
    EXPECT_EQ(runTcl(R"(
        set f [open data.txt r]
        set total 0
        while {[gets $f line] >= 0} {
            set total [expr {$total + $line}]
        }
        close $f
        set out [open result.txt w]
        puts $out "total=$total"
        close $out
        puts "done $total"
    )",
                     &fs),
              "done 42\n");
    EXPECT_EQ(fs.readFile("result.txt"), "total=42\n");
}

TEST(Tclish, ExitCode)
{
    int code = -1;
    runTcl("puts a\nexit 5\nputs b", nullptr, nullptr, nullptr, &code);
    EXPECT_EQ(code, 5);
}

TEST(Tclish, CommentsIgnored)
{
    // After ';' the parser is at command start again, so '#' begins a
    // comment there (real Tcl semantics).
    EXPECT_EQ(runTcl("# a comment\nputs ok ;# trailing comment\n"),
              "ok\n");
    EXPECT_EQ(runTcl("# comment\nputs ok"), "ok\n");
}

TEST(Tclish, UnknownCommandFatal)
{
    EXPECT_EXIT((void)runTcl("definitely_not_a_command"),
                testing::ExitedWithCode(1), "invalid command name");
}

TEST(Tclish, UndefinedVariableFatal)
{
    EXPECT_EXIT((void)runTcl("puts $missing"),
                testing::ExitedWithCode(1), "no such variable");
}

TEST(Tclish, TkDrawing)
{
    TclInterp *interp = nullptr;
    EXPECT_EQ(runTcl(R"(
        tk_init 64 64
        tk_clear 0
        tk_fillrect 8 8 16 16 3
        tk_line 0 0 63 63 1
        tk_circle 40 20 10 2
        tk_update
        puts drawn
    )",
                     nullptr, nullptr, &interp),
              "drawn\n");
    ASSERT_NE(interp->framebuffer(), nullptr);
    // 16x16 rect minus the 16 diagonal pixels the line overdraws.
    EXPECT_EQ(interp->framebuffer()->countPixels(3), 240);
    EXPECT_GT(interp->framebuffer()->countPixels(1), 30);
}

// --- paper-shape checks --------------------------------------------------

TEST(Tclish, FetchDecodeCostIsHuge)
{
    // Table 2: Tcl fetch/decode is ~2,000-5,200 native instructions
    // per command — an order of magnitude above Perl, two above Java.
    trace::Profile profile;
    runTcl(R"(
        set s 0
        for {set i 0} {$i < 200} {incr i} {
            set s [expr {$s + $i}]
        }
        puts $s
    )",
           nullptr, &profile);
    double fd = profile.fetchDecodePerCommand();
    EXPECT_GT(fd, 400.0);
    EXPECT_LT(fd, 8000.0);
}

TEST(Tclish, SymbolTableCostGrowsWithEntries)
{
    // §3.3: per-access memory-model cost 206 (small table) to 514
    // (xf's big table), varying with the number of entries.
    auto cost_with_vars = [](int nvars) {
        trace::Profile profile;
        std::string script;
        for (int i = 0; i < nvars; ++i)
            script += "set filler" + std::to_string(i) + " 1\n";
        script += R"(
            set s 0
            for {set i 0} {$i < 100} {incr i} {
                set s [expr {$s + $i}]
            }
            puts $s
        )";
        runTcl(script, nullptr, &profile);
        return profile.memModelCostPerAccess();
    };
    double small = cost_with_vars(2);
    double large = cost_with_vars(400);
    EXPECT_GT(small, 100.0);
    EXPECT_LT(small, 450.0);
    EXPECT_GT(large, small * 1.3)
        << "lookup cost must grow with symbol-table size";
}

TEST(Tclish, LoopBodiesAreReparsedEveryIteration)
{
    // Direct interpretation: running the same body N times costs ~N
    // times the parse work — there is no cached compiled form.
    auto fd_total = [](int iters) {
        trace::Profile profile;
        runTcl("for {set i 0} {$i < " + std::to_string(iters) +
                   "} {incr i} { set x [expr {$i + $i}] }\nputs $x",
               nullptr, &profile);
        return (double)profile.fetchDecodeInsts();
    };
    double fd10 = fd_total(10);
    double fd100 = fd_total(100);
    EXPECT_GT(fd100, 6.0 * fd10);
}

} // namespace
