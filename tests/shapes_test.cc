/**
 * @file
 * Paper-shape regression tests: the architectural claims of §4,
 * checked on compact workloads so the suite stays fast. These guard
 * the calibration — if a cost-model change breaks a headline result
 * of the paper, a test here fails.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/runner.hh"
#include "harness/workloads.hh"
#include "sim/cache_sweep.hh"

namespace {

using namespace interp;
using namespace interp::harness;

Measurement
runNamed(Lang lang, const std::string &name, uint64_t budget = 60'000'000)
{
    for (BenchSpec spec : macroSuite()) {
        if (spec.lang == lang && spec.name == name) {
            spec.maxCommands = budget;
            return run(spec);
        }
    }
    ADD_FAILURE() << "no such benchmark " << name;
    return {};
}

TEST(Shapes, InterpreterDominatesApplication)
{
    // Figure 3's central claim: an interpreter's profile is nearly the
    // same whatever it runs. Compare busy% across MIPSI benchmarks
    // against the spread across the native versions of the same
    // programs.
    std::vector<std::string> programs = {"des", "compress", "eqntott"};
    std::vector<double> native_busy, mipsi_busy;
    for (const auto &name : programs) {
        BenchSpec spec;
        spec.lang = Lang::C;
        spec.name = name;
        spec.source = loadProgram("minic/" + name + ".mc");
        spec.needsInputs = true;
        spec.maxCommands = 40'000'000;
        native_busy.push_back(run(spec).breakdown.busyPct);
        mipsi_busy.push_back(
            runNamed(Lang::Mipsi, name, 3'000'000).breakdown.busyPct);
    }
    auto spread = [](const std::vector<double> &v) {
        double lo = v[0], hi = v[0];
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return hi - lo;
    };
    EXPECT_LT(spread(mipsi_busy), 6.0)
        << "interpreted profiles are uniform";
    EXPECT_LT(spread(mipsi_busy), spread(native_busy))
        << "interpretation dilutes application-specific behaviour";
}

TEST(Shapes, ICacheSplitsLowFromHighLevelVMs)
{
    // §4.1: MIPSI (low-level VM) barely misses the 8K i-cache; Tcl
    // (high-level VM) loses a large slot share to imiss.
    double mipsi_imiss =
        runNamed(Lang::Mipsi, "des", 2'000'000)
            .breakdown.stallPct[(int)sim::StallCause::Imiss];
    double tcl_imiss =
        runNamed(Lang::Tcl, "des")
            .breakdown.stallPct[(int)sim::StallCause::Imiss];
    double perl_imiss =
        runNamed(Lang::Perl, "des")
            .breakdown.stallPct[(int)sim::StallCause::Imiss];
    EXPECT_LT(mipsi_imiss, 3.0);
    EXPECT_GT(tcl_imiss, 10.0);
    EXPECT_GT(perl_imiss, 10.0);
}

TEST(Shapes, CompressDtlbInversion)
{
    // §4.1: native compress thrashes the 32-entry dTLB; interpreted by
    // MIPSI, dTLB misses become inconsequential.
    BenchSpec native;
    native.lang = Lang::C;
    native.name = "compress";
    native.source = loadProgram("minic/compress.mc");
    native.needsInputs = true;
    double native_dtlb =
        run(native).breakdown.stallPct[(int)sim::StallCause::Dtlb];
    double mipsi_dtlb =
        runNamed(Lang::Mipsi, "compress", 3'000'000)
            .breakdown.stallPct[(int)sim::StallCause::Dtlb];
    EXPECT_GT(native_dtlb, 4.0);
    EXPECT_LT(mipsi_dtlb, 1.0);
}

TEST(Shapes, JavaGraphicsProgramsLookLikeHighLevelVMs)
{
    // §4.1: Java programs that live in native graphics libraries
    // (hanoi) lose their interpreter-like i-cache behaviour.
    double plain =
        runNamed(Lang::Java, "des")
            .breakdown.stallPct[(int)sim::StallCause::Imiss];
    double gfx =
        runNamed(Lang::Java, "hanoi")
            .breakdown.stallPct[(int)sim::StallCause::Imiss];
    EXPECT_LT(plain, 3.0);
    EXPECT_GT(gfx, 8.0);
}

TEST(Shapes, Figure4WorkingSetsAndAssociativity)
{
    // Perl misses keep falling through 64K (32-64K working set); at a
    // capacity-sufficient size, 4-way removes the remaining conflict
    // misses vs direct-mapped.
    for (BenchSpec spec : macroSuite()) {
        if (spec.lang != Lang::Perl || spec.name != "txt2html")
            continue;
        sim::CacheSweep sweep({8, 16, 32, 64}, {1, 4});
        run(spec, {&sweep}, nullptr, false);
        auto r = sweep.results(); // [1w:8,16,32,64, 4w:8,16,32,64]
        ASSERT_EQ(r.size(), 8u);
        EXPECT_GT(r[0].missesPer100Insts, 2.0) << "8K direct misses";
        EXPECT_GT(r[1].missesPer100Insts, r[3].missesPer100Insts * 2)
            << "still capacity-limited between 16K and 64K";
        EXPECT_LT(r[6].missesPer100Insts,
                  r[2].missesPer100Insts * 0.5)
            << "4-way removes conflicts at 32K";
        return;
    }
    FAIL() << "txt2html not in suite";
}

TEST(Shapes, Table2FetchDecodeBands)
{
    // The f/d cost ladder, on the des benchmarks.
    double mipsi =
        runNamed(Lang::Mipsi, "des", 2'000'000)
            .profile.fetchDecodePerCommand();
    double java =
        runNamed(Lang::Java, "des").profile.fetchDecodePerCommand();
    double perl =
        runNamed(Lang::Perl, "des").profile.fetchDecodePerCommand();
    double tcl =
        runNamed(Lang::Tcl, "des").profile.fetchDecodePerCommand();
    EXPECT_NEAR(mipsi, 49, 8) << "paper: 51";
    EXPECT_NEAR(java, 16, 5) << "paper: 16";
    EXPECT_GT(perl, 100) << "paper: 200";
    EXPECT_LT(perl, 260);
    EXPECT_GT(tcl, 900) << "paper: 2100";
}

TEST(Shapes, PerlPrecompileReportedSeparately)
{
    Measurement m = runNamed(Lang::Perl, "des");
    EXPECT_GT(m.profile.precompileInsts(), 10'000u);
    EXPECT_LT(m.profile.precompileInsts(),
              m.profile.userInstructions() / 2)
        << "precompile is a startup overhead, not the bulk";
}

} // namespace
