/**
 * @file
 * interproxy cluster tests: unit (ring, histogram merge, STATS
 * aggregation, hello hardening) and end-to-end against real shards.
 *
 * The end-to-end suite spawns in-process interpd shards plus an
 * interproxy router (cluster::LocalCluster) and pins the cluster
 * acceptance contract:
 *
 *   identity   an EVAL answered through the proxy carries exactly the
 *              payload a single interpd produces for the same spec
 *              (status, commands, instructions, stdout), across modes
 *              and with pipelined out-of-order replies;
 *   failover   killing a shard mid-run hangs nothing: in-flight
 *              requests fail over to the next ring candidate, new
 *              requests route around the corpse, STATS reports the
 *              DEGRADED shard, and a restarted shard is re-adopted;
 *   shedding   the client sees SHED only at aggregate cluster
 *              capacity (every alive shard refused), not on one
 *              unlucky shard;
 *   stats      the proxy's cluster document reconciles with client
 *              totals, and the merged shard histograms/catalog
 *              counters behave (each program warms exactly one
 *              shard's catalog);
 *   hardening  a peer that opens with garbage instead of the
 *              protocol hello gets one contained ERROR reply and a
 *              close — from the daemon and from the proxy alike —
 *              and truncated/oversized frames never wedge either.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hh"
#include "cluster/spawn.hh"
#include "cluster/stats.hh"
#include "harness/runner.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "server/stats.hh"
#include "support/logging.hh"
#include "workloads/registry.hh"

using namespace interp;
using namespace interp::server;
using namespace interp::cluster;
using harness::Lang;

namespace {

/** What the batch harness measures for a micro spec under `mode`. */
harness::Measurement
batchMeasure(Lang mode, const std::string &op, int iterations)
{
    harness::BenchSpec spec =
        harness::microBench(harness::baselineOf(mode), op, iterations);
    spec.lang = mode;
    return harness::run(spec, {}, nullptr, /*with_machine=*/false);
}

EvalRequest
microRequest(Lang mode, uint32_t iterations)
{
    EvalRequest req;
    req.mode = mode;
    req.program = "micro:a=b+c";
    req.iterations = iterations;
    return req;
}

/** Raw connected fd to a unix socket — no hello, no framing. */
int
rawConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, (const sockaddr *)&sun, sizeof(sun)), 0)
        << path << ": " << std::strerror(errno);
    return fd;
}

/** Everything the peer sends until it closes (bounded read loop). */
std::string
readToEof(int fd)
{
    std::string in;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        in.append(buf, (size_t)n);
    }
    return in;
}

std::string
proxyStats(const std::string &path)
{
    Client conn = Client::connectUnix(path);
    return conn.stats();
}

/** Poll the proxy until shard @p name reports @p state (or timeout). */
bool
waitShardState(const std::string &proxy_path, const std::string &name,
               const std::string &state, int max_ms)
{
    for (int waited = 0; waited < max_ms; waited += 50) {
        std::string json = proxyStats(proxy_path);
        std::string needle =
            "\"" + name + "\":{\"state\":\"" + state + "\"";
        if (json.find(needle) != std::string::npos)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

} // namespace

// --- ring unit tests -------------------------------------------------------

TEST(HashRing, DeterministicAndCovering)
{
    HashRing ring(4, 64);
    std::vector<uint64_t> hits(4, 0);
    for (int i = 0; i < 4000; ++i) {
        std::string key =
            routingKey((uint8_t)(i % 8), "prog" + std::to_string(i));
        int s = ring.shardFor(key);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, 4);
        EXPECT_EQ(s, ring.shardFor(key)); // stable
        ++hits[(size_t)s];
    }
    // 64 vnodes spread keys roughly evenly; insist only that no
    // shard starves (each gets >= 5% of the keys).
    for (int s = 0; s < 4; ++s)
        EXPECT_GE(hits[(size_t)s], 200u) << "shard " << s;
}

TEST(HashRing, CandidatesAreEveryShardOnceHomeFirst)
{
    HashRing ring(5, 32);
    std::vector<int> cand;
    for (int i = 0; i < 200; ++i) {
        std::string key = routingKey(1, "p" + std::to_string(i));
        ring.candidatesFor(key, cand);
        ASSERT_EQ(cand.size(), 5u);
        EXPECT_EQ(cand[0], ring.shardFor(key));
        std::set<int> distinct(cand.begin(), cand.end());
        EXPECT_EQ(distinct.size(), 5u);
    }
}

TEST(HashRing, GrowthRemapsOnlyOntoTheNewShard)
{
    // The consistent-hashing contract: adding shard N leaves every
    // key either where it was or on the new shard — nothing shuffles
    // between the old shards.
    HashRing before(4, 64), after(5, 64);
    int moved = 0, total = 3000;
    for (int i = 0; i < total; ++i) {
        std::string key = routingKey((uint8_t)(i % 8),
                                     "prog" + std::to_string(i));
        int was = before.shardFor(key);
        int now = after.shardFor(key);
        if (now != was) {
            EXPECT_EQ(now, 4) << "key moved between old shards";
            ++moved;
        }
    }
    // Roughly 1/5 of keys should move; insist it is well under half
    // (modulo hashing would move ~4/5).
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, total / 2);
}

// --- histogram merge unit tests --------------------------------------------

TEST(HistogramMerge, MergeEqualsConcatenation)
{
    // mergeFrom is exact at bucket granularity: merging histograms
    // of two sample sets equals the histogram of the concatenation.
    std::vector<uint64_t> a, b;
    uint64_t v = 7;
    for (int i = 0; i < 300; ++i) {
        v = (v * 6364136223846793005ull + 1442695040888963407ull) %
            500000;
        (i % 2 ? a : b).push_back(v);
    }
    LatencyHistogram ha, hb, hall;
    for (uint64_t s : a) {
        ha.add(s);
        hall.add(s);
    }
    for (uint64_t s : b) {
        hb.add(s);
        hall.add(s);
    }
    ha.mergeFrom(hb);
    EXPECT_EQ(ha.count(), hall.count());
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(ha.bucket(i), hall.bucket(i)) << "bucket " << i;
    for (double q : {0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(ha.quantile(q), hall.quantile(q)) << "q=" << q;
}

TEST(HistogramMerge, JsonRoundTripIsLosslessAndAccumulates)
{
    LatencyHistogram h;
    for (uint64_t s : {0ull, 1ull, 3ull, 900ull, 70000ull, 70001ull,
                       1ull << 25})
        h.add(s);

    std::string json = "{";
    appendHistogramJson(json, "lat_us", h);
    json += "}";

    LatencyHistogram back;
    ASSERT_TRUE(statsJsonHistogram(json, "lat_us", back));
    EXPECT_EQ(back.count(), h.count());
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(back.bucket(i), h.bucket(i)) << "bucket " << i;

    // Parsing into a non-empty histogram accumulates (the cluster
    // aggregation path: parse each shard on top of the running sum).
    ASSERT_TRUE(statsJsonHistogram(json, "lat_us", back));
    EXPECT_EQ(back.count(), 2 * h.count());
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(back.bucket(i), 2 * h.bucket(i)) << "bucket " << i;
}

TEST(ClusterStatsMerge, SumsCountersAndFoldsHistograms)
{
    ServerStats s1, s2;
    s1.noteAccepted(Lang::Tcl);
    s1.noteServed(Lang::Tcl);
    s1.noteLatency(100, 1000);
    s2.noteAccepted(Lang::Mipsi);
    s2.noteAccepted(Lang::Mipsi);
    s2.noteShed(Lang::Mipsi);
    s2.noteServed(Lang::Mipsi);
    s2.noteLatency(200, 3000);

    CatalogCounters c1{5, 1, 1}, c2{7, 2, 2};
    std::vector<std::string> docs = {
        s1.renderJson(0, 2, c1, "s0"),
        s2.renderJson(1, 1, c2, "s1"),
        "not json at all", // a garbled shard reply is skipped
    };
    std::string merged = mergeShardStats(docs);

    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(merged, "shards_reporting", v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(statsJsonUint(merged, "accepted", v));
    EXPECT_EQ(v, 3u);
    ASSERT_TRUE(statsJsonUint(merged, "served", v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(statsJsonUint(merged, "shed", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(merged, "catalog.hits", v));
    EXPECT_EQ(v, 12u);
    ASSERT_TRUE(statsJsonUint(merged, "catalog.loads", v));
    EXPECT_EQ(v, 3u);
    // Two samples folded into every histogram.
    ASSERT_TRUE(statsJsonUint(merged, "histograms.queue_us.count", v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(statsJsonUint(merged, "histograms.total_us.count", v));
    EXPECT_EQ(v, 2u);
}

namespace {

/** Erase every `,"key":<digits>` occurrence from a stats document. */
std::string
stripUintKey(std::string json, const std::string &key)
{
    const std::string needle = ",\"" + key + "\":";
    for (size_t pos; (pos = json.find(needle)) != std::string::npos;) {
        size_t end = pos + needle.size();
        while (end < json.size() && json[end] >= '0' &&
               json[end] <= '9')
            ++end;
        json.erase(pos, end - pos);
    }
    return json;
}

} // namespace

TEST(ClusterStatsMerge, JitCounterSumsAndToleratesPreJitShards)
{
    ServerStats s1, s2;
    s1.noteAccepted(Lang::Mipsi);
    s1.noteTierJit(Lang::Mipsi);
    s1.noteTierJit(Lang::Tcl);
    s2.noteAccepted(Lang::Tcl);
    s2.noteTierJit(Lang::Tcl);

    CatalogCounters c{0, 0, 0};
    // The third document mimics a shard running a pre-jit build: no
    // tier_up_jit key anywhere. The merge must count it as zero, not
    // drop the shard or fail the parse.
    std::vector<std::string> docs = {
        s1.renderJson(0, 1, c, "s0"),
        s2.renderJson(0, 1, c, "s1"),
        stripUintKey(s2.renderJson(0, 1, c, "s2"), "tier_up_jit"),
    };
    ASSERT_EQ(docs[2].find("tier_up_jit"), std::string::npos);

    std::string merged = mergeShardStats(docs);
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(merged, "shards_reporting", v));
    EXPECT_EQ(v, 3u);
    ASSERT_TRUE(statsJsonUint(merged, "tier_up_jit", v));
    EXPECT_EQ(v, 3u);
    // The stripped document still contributed its other counters.
    ASSERT_TRUE(statsJsonUint(merged, "accepted", v));
    EXPECT_EQ(v, 3u);
}

// --- hello hardening -------------------------------------------------------

TEST(ProtocolHello, IncrementalAcceptAndFirstByteReject)
{
    std::string hello;
    encodeHello(hello);
    ASSERT_EQ(hello.size(), kHelloBytes);

    // Byte at a time: Incomplete until the last, then Ok + consumed.
    std::string buf;
    for (size_t i = 0; i + 1 < hello.size(); ++i) {
        buf.push_back(hello[i]);
        EXPECT_EQ(takeHello(buf), HelloResult::Incomplete);
    }
    buf.push_back(hello.back());
    EXPECT_EQ(takeHello(buf), HelloResult::Ok);
    EXPECT_TRUE(buf.empty());

    // Garbage is rejected on the first wrong byte — one byte of an
    // HTTP request is enough, no need to wait for four.
    std::string garbage = "G";
    EXPECT_EQ(takeHello(garbage), HelloResult::Mismatch);

    // Right magic, wrong version.
    std::string wrong = {'I', 'P', 'D',
                         (char)(kProtocolVersion + 1)};
    EXPECT_EQ(takeHello(wrong), HelloResult::Mismatch);
}

namespace {

/** Open with garbage: expect one framed ERROR (id 0) then close. */
void
expectGarbageRejected(const std::string &path)
{
    int fd = rawConnect(path);
    const char garbage[] = "GET / HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL),
              (ssize_t)(sizeof(garbage) - 1));
    std::string in = readToEof(fd);
    ::close(fd);

    std::string payload;
    ASSERT_EQ(takeFrame(in, payload, kMaxResponseBytes),
              FrameResult::Frame)
        << "no framed reply before close";
    EvalResponse resp;
    ASSERT_TRUE(decodeResponse(payload, resp));
    EXPECT_EQ(resp.id, 0u);
    EXPECT_EQ(resp.status, Status::Error);
    EXPECT_NE(resp.result.find("protocol mismatch"),
              std::string::npos)
        << resp.result;
    EXPECT_TRUE(in.empty()) << "bytes after the ERROR reply";
}

/** Hello then a truncated frame then close: no reply, no wedge. */
void
expectTruncatedFrameContained(const std::string &path)
{
    int fd = rawConnect(path);
    std::string bytes;
    encodeHello(bytes);
    // Header claims 100 payload bytes; send 3 and hang up.
    bytes += std::string("\x64\x00\x00\x00", 4);
    bytes += "abc";
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              (ssize_t)bytes.size());
    ::shutdown(fd, SHUT_WR);
    EXPECT_TRUE(readToEof(fd).empty());
    ::close(fd);

    // An oversized length is a protocol error: closed, no reply.
    fd = rawConnect(path);
    bytes.clear();
    encodeHello(bytes);
    bytes += std::string("\xff\xff\xff\xff", 4);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              (ssize_t)bytes.size());
    EXPECT_TRUE(readToEof(fd).empty());
    ::close(fd);
}

} // namespace

TEST(ClusterEndToEnd, GarbageAndTruncationContainedByBothDaemons)
{
    ClusterConfig cc;
    cc.shardCount = 1;
    cc.workersPerShard = 1;
    LocalCluster cluster(cc);
    cluster.start();

    // The shard daemon rejects a bad greeting and survives runts...
    expectGarbageRejected(cluster.shardPath(0));
    expectTruncatedFrameContained(cluster.shardPath(0));
    // ...and the proxy front door behaves identically.
    expectGarbageRejected(cluster.proxyPath());
    expectTruncatedFrameContained(cluster.proxyPath());

    // Both still serve a well-behaved client end to end.
    Client conn = Client::connectUnix(cluster.proxyPath());
    EvalRequest req = microRequest(Lang::Tcl, 300);
    req.id = 9;
    EvalResponse resp = conn.eval(req);
    EXPECT_EQ(resp.status, Status::Ok) << resp.result;
}

// --- end-to-end: identity through the cluster ------------------------------

TEST(ClusterEndToEnd, IdentityAcrossModesAndStatsReconcile)
{
    const uint32_t kIters = 300;
    const std::vector<Lang> modes = {Lang::Mipsi, Lang::Tcl,
                                     Lang::Java};

    std::map<Lang, harness::Measurement> expected;
    for (Lang mode : modes)
        expected.emplace(mode,
                         batchMeasure(mode, "a=b+c", (int)kIters));

    ClusterConfig cc;
    cc.shardCount = 3;
    cc.workersPerShard = 2;
    LocalCluster cluster(cc);
    cluster.start();

    // Every response routed through the proxy must carry exactly the
    // payload a lone interpd would have produced (same contract the
    // single-daemon identity test pins): the cluster must not perturb
    // the measurement.
    LoadgenOptions opt;
    opt.unixPath = cluster.proxyPath();
    opt.clients = 4;
    opt.requestsPerClient = 6;
    for (Lang mode : modes)
        opt.mix.push_back(microRequest(mode, kIters));
    opt.onResponse = [&expected](const EvalRequest &req,
                                 const EvalResponse &resp) {
        ASSERT_EQ(resp.status, Status::Ok) << resp.result;
        const harness::Measurement &m = expected.at(req.mode);
        EXPECT_EQ(resp.commands, m.commands);
        EXPECT_EQ(resp.instructions, m.profile.instructions());
        EXPECT_EQ(resp.result, m.stdoutText);
        EXPECT_EQ(resp.cycles, 0u);
    };
    LoadgenReport report = runLoadgen(opt);
    EXPECT_EQ(report.all.sent, 24u);
    EXPECT_EQ(report.all.ok, 24u);

    // The proxy's cluster STATS document reconciles with the client.
    std::string json = proxyStats(cluster.proxyPath());
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "proxy.accepted", v));
    EXPECT_EQ(v, report.all.sent);
    ASSERT_TRUE(statsJsonUint(json, "proxy.served", v));
    EXPECT_EQ(v, report.all.ok);
    ASSERT_TRUE(statsJsonUint(json, "proxy.forwarded", v));
    EXPECT_EQ(v, report.all.sent); // no retries in a healthy run
    ASSERT_TRUE(statsJsonUint(json, "proxy.shard_failures", v));
    EXPECT_EQ(v, 0u);
    ASSERT_TRUE(statsJsonUint(json, "proxy.shards_up", v));
    EXPECT_EQ(v, 3u);
    ASSERT_TRUE(statsJsonUint(json, "proxy.degraded", v));
    EXPECT_EQ(v, 0u);
    for (Lang mode : modes) {
        std::string path = std::string("modes.") +
                           harness::langName(mode) + ".served";
        ASSERT_TRUE(statsJsonUint(json, path, v)) << path;
        EXPECT_EQ(v, report.byMode.at(harness::langName(mode)).ok);
    }

    // Merged shard documents: every shard reported, counters sum to
    // the cluster totals, histograms folded across shards.
    ASSERT_TRUE(statsJsonUint(json, "merged.shards_reporting", v));
    EXPECT_EQ(v, 3u);
    ASSERT_TRUE(statsJsonUint(json, "merged.served", v));
    EXPECT_EQ(v, report.all.ok);
    ASSERT_TRUE(
        statsJsonUint(json, "merged.histograms.total_us.count", v));
    EXPECT_EQ(v, report.all.ok);

    // Warm-catalog replication: (mode, program) pins to one shard,
    // so each of the 3 routing keys is built exactly once in the
    // whole cluster and every other request hits warm.
    ASSERT_TRUE(statsJsonUint(json, "merged.catalog.loads", v));
    EXPECT_EQ(v, modes.size());
    ASSERT_TRUE(statsJsonUint(json, "merged.catalog.misses", v));
    EXPECT_EQ(v, modes.size());
    ASSERT_TRUE(statsJsonUint(json, "merged.catalog.hits", v));
    EXPECT_EQ(v, report.all.ok - modes.size());
}

TEST(ClusterEndToEnd, PipelinedRepliesDemuxOutOfOrder)
{
    ClusterConfig cc;
    cc.shardCount = 2;
    cc.workersPerShard = 2;
    LocalCluster cluster(cc);
    cluster.start();

    harness::Measurement heavy = batchMeasure(Lang::Tcl, "a=b+c", 20000);
    harness::Measurement light = batchMeasure(Lang::Mipsi, "a=b+c", 300);

    // One connection, 8 pipelined requests alternating a slow Tcl
    // run and a fast MIPSI run: the two route to (possibly) distinct
    // shards and complete out of submission order; the proxy must
    // hand every reply back under the client's id regardless.
    Client conn = Client::connectUnix(cluster.proxyPath());
    for (uint32_t i = 1; i <= 8; ++i) {
        EvalRequest req = (i % 2) ? microRequest(Lang::Tcl, 20000)
                                  : microRequest(Lang::Mipsi, 300);
        req.id = i;
        conn.sendEval(req);
    }
    std::map<uint32_t, EvalResponse> responses;
    for (int i = 0; i < 8; ++i) {
        EvalResponse resp = conn.recv();
        EXPECT_TRUE(responses.emplace(resp.id, resp).second)
            << "duplicate reply for id " << resp.id;
    }
    ASSERT_EQ(responses.size(), 8u);
    for (const auto &entry : responses) {
        const harness::Measurement &m =
            (entry.first % 2) ? heavy : light;
        ASSERT_EQ(entry.second.status, Status::Ok)
            << entry.second.result;
        EXPECT_EQ(entry.second.commands, m.commands);
        EXPECT_EQ(entry.second.result, m.stdoutText);
    }
}

// --- end-to-end: failover --------------------------------------------------

TEST(ClusterEndToEnd, ShardDeathFailsOverAndRecovers)
{
    ClusterConfig cc;
    cc.shardCount = 2;
    cc.workersPerShard = 2;
    cc.proxy.maxRetries = 2;
    cc.proxy.probeIntervalMs = 100;
    cc.proxy.probeMissLimit = 2;
    cc.proxy.connectBackoffMs = 50;
    LocalCluster cluster(cc);
    cluster.start();

    // Find the home shard of the request key so the kill provably
    // hits the hot path (the other shard would be a no-op kill).
    EvalRequest probe = microRequest(Lang::Tcl, 2000);
    HashRing ring(2, cc.proxy.vnodes);
    int home =
        ring.shardFor(routingKey((uint8_t)probe.mode, probe.program));

    std::atomic<bool> killed{false};
    LoadgenOptions opt;
    opt.unixPath = cluster.proxyPath();
    opt.clients = 4;
    opt.requestsPerClient = 12;
    opt.mix.push_back(probe);
    unsigned kill_after = 8; // responses before the kill
    std::atomic<unsigned> seen{0};
    std::thread killer;
    opt.onResponse = [&](const EvalRequest &, const EvalResponse &) {
        if (++seen == kill_after && !killed.exchange(true))
            killer = std::thread(
                [&cluster, home] { cluster.killShard((size_t)home); });
    };

    LoadgenReport report = runLoadgen(opt);
    if (killer.joinable())
        killer.join();

    // Nothing hangs and every request is answered exactly once; with
    // a 2-shard ring and retries, the shard death surfaces as
    // failover (OK via the surviving shard) — at worst a handful of
    // ERRORs for requests that exhausted retries mid-kill.
    EXPECT_EQ(report.all.sent, 48u);
    EXPECT_EQ(report.all.ok + report.all.shed + report.all.deadline +
                  report.all.error,
              report.all.sent);
    EXPECT_GE(report.all.ok, report.all.sent - 8);

    // The proxy accounted the death: shard down, DEGRADED visible.
    std::string name = "s" + std::to_string(home);
    ASSERT_TRUE(
        waitShardState(cluster.proxyPath(), name, "down", 3000));
    std::string json = proxyStats(cluster.proxyPath());
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "proxy.shard_failures", v));
    EXPECT_GE(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "proxy.degraded", v));
    EXPECT_GE(v, 1u);
    ASSERT_TRUE(
        statsJsonUint(json, "shards." + name + ".down_events", v));
    EXPECT_GE(v, 1u);

    // New traffic for the dead shard's key routes around the corpse.
    Client conn = Client::connectUnix(cluster.proxyPath());
    EvalRequest req = probe;
    req.id = 1000;
    EvalResponse resp = conn.eval(req);
    EXPECT_EQ(resp.status, Status::Ok) << resp.result;
    json = proxyStats(cluster.proxyPath());
    ASSERT_TRUE(statsJsonUint(json, "proxy.rerouted", v));
    EXPECT_GE(v, 1u);

    // A restarted shard is re-adopted (reconnect + probes pass).
    cluster.restartShard((size_t)home);
    ASSERT_TRUE(waitShardState(cluster.proxyPath(), name, "up", 5000));
    req.id = 1001;
    resp = conn.eval(req);
    EXPECT_EQ(resp.status, Status::Ok) << resp.result;
    json = proxyStats(cluster.proxyPath());
    ASSERT_TRUE(
        statsJsonUint(json, "shards." + name + ".reconnects", v));
    EXPECT_GE(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "proxy.degraded", v));
    EXPECT_EQ(v, 0u);
}

// --- end-to-end: aggregate-capacity shedding -------------------------------

TEST(ClusterEndToEnd, ShedsOnlyAtAggregateCapacity)
{
    ClusterConfig cc;
    cc.shardCount = 1;
    cc.workersPerShard = 1;
    cc.maxQueuePerShard = 1;
    cc.maxBatchPerShard = 1;
    cc.proxy.maxRetries = 1;
    LocalCluster cluster(cc);
    cluster.start();

    // Pipeline a burst far beyond the single shard's queue: the
    // shard sheds, the proxy retries, finds no other candidate, and
    // only then answers SHED — tagged as a cluster-capacity refusal.
    const uint32_t kBurst = 12;
    Client conn = Client::connectUnix(cluster.proxyPath());
    for (uint32_t i = 1; i <= kBurst; ++i) {
        EvalRequest req = microRequest(Lang::Tcl, 20000);
        req.id = i;
        conn.sendEval(req);
    }
    std::map<uint32_t, EvalResponse> outcomes;
    for (uint32_t i = 0; i < kBurst; ++i) {
        EvalResponse resp = conn.recv();
        EXPECT_TRUE(outcomes.emplace(resp.id, resp).second)
            << "duplicate reply for id " << resp.id;
    }
    ASSERT_EQ(outcomes.size(), kBurst);

    uint64_t ok = 0, shed = 0;
    for (const auto &entry : outcomes) {
        ASSERT_TRUE(entry.second.status == Status::Ok ||
                    entry.second.status == Status::Shed)
            << "id " << entry.first << " -> "
            << statusName(entry.second.status);
        if (entry.second.status == Status::Shed) {
            ++shed;
            EXPECT_NE(
                entry.second.result.find("cluster at capacity"),
                std::string::npos)
                << entry.second.result;
        } else {
            ++ok;
        }
    }
    EXPECT_GE(ok, 1u);
    EXPECT_GE(shed, 1u);
    EXPECT_EQ(ok + shed, (uint64_t)kBurst);

    std::string json = proxyStats(cluster.proxyPath());
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "proxy.shed", v));
    EXPECT_EQ(v, shed);
    ASSERT_TRUE(statsJsonUint(json, "proxy.retries", v));
    EXPECT_GE(v, shed); // every client SHED burned a retry first
}

TEST(ClusterEndToEnd, MixedClassLoadSplitsOutcomesByClass)
{
    // The single-daemon mixed-class contract holds through the
    // proxy: an interactive:batch registry mix against an overloaded
    // cluster keeps deadline misses and sheds attributable per
    // traffic class, and the proxy's cluster document reconciles
    // with the per-class client ledger.
    ClusterConfig cc;
    cc.shardCount = 1;
    cc.workersPerShard = 1;
    cc.maxQueuePerShard = 1;
    cc.maxBatchPerShard = 1;
    cc.proxy.maxRetries = 1;
    LocalCluster cluster(cc);
    cluster.start();

    auto named = [](const char *name, uint32_t deadline) {
        EvalRequest req;
        req.mode = Lang::Mipsi;
        req.kind = ProgramKind::Named;
        req.program = name;
        req.deadlineMs = deadline;
        return req;
    };

    LoadgenOptions opt;
    opt.unixPath = cluster.proxyPath();
    opt.clients = 4;
    opt.requestsPerClient = 8;
    opt.openRatePerSec = 2000; // far beyond the one-shard capacity
    opt.mix.push_back(named("spin", 0)); // expired: DEADLINE at dequeue
    opt.mix.push_back(named("matmul", kNoDeadline));
    opt.classOf = [](const EvalRequest &req) {
        const workloads::Workload *w = workloads::find(req.program);
        return std::string(
            w ? workloads::trafficName(w->traffic) : "other");
    };

    LoadgenReport report = runLoadgen(opt);

    ASSERT_EQ(report.byClass.size(), 2u);
    const LoadgenTotals &inter = report.byClass.at("interactive");
    const LoadgenTotals &batch = report.byClass.at("batch");

    EXPECT_EQ(report.all.sent, 32u);
    EXPECT_EQ(inter.sent, 16u);
    EXPECT_EQ(batch.sent, 16u);
    for (const LoadgenTotals *t : {&inter, &batch})
        EXPECT_EQ(t->sent,
                  t->ok + t->shed + t->deadline + t->error);

    EXPECT_EQ(inter.ok, 0u);
    EXPECT_GE(inter.deadline, 1u);
    EXPECT_EQ(batch.deadline, 0u);
    EXPECT_EQ(inter.error, 0u);
    EXPECT_EQ(batch.error, 0u);
    EXPECT_GE(report.all.shed, 1u);
    EXPECT_GE(batch.ok, 1u);

    // Cluster accounting: every shed the client saw was a proxy
    // capacity refusal, every deadline the merged shard document
    // counted was an interactive request.
    std::string json = proxyStats(cluster.proxyPath());
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "proxy.shed", v));
    EXPECT_EQ(v, report.all.shed);
    ASSERT_TRUE(statsJsonUint(json, "merged.deadline", v));
    EXPECT_EQ(v, inter.deadline);
}

// --- end-to-end: loadgen endpoint accounting -------------------------------

TEST(ClusterEndToEnd, LoadgenCountsConnectFailuresPerEndpoint)
{
    ClusterConfig cc;
    cc.shardCount = 1;
    cc.workersPerShard = 1;
    LocalCluster cluster(cc);
    cluster.start();

    // Two endpoints: the live proxy and a socket nobody listens on.
    // Clients alternate; the dead endpoint's failures must land in
    // the per-endpoint transport tallies — not as SHED, which is a
    // server's answer, never the transport's.
    std::string dead = cluster.proxyPath() + ".nobody";
    LoadgenOptions opt;
    opt.endpoints = {cluster.proxyPath(), dead};
    opt.connectAttempts = 2;
    opt.clients = 2;
    opt.requestsPerClient = 3;
    opt.mix.push_back(microRequest(Lang::Tcl, 300));

    LoadgenReport report = runLoadgen(opt);

    EXPECT_EQ(report.all.sent, 3u); // only the live endpoint's client
    EXPECT_EQ(report.all.ok, 3u);
    EXPECT_EQ(report.all.shed, 0u);
    EXPECT_EQ(report.all.error, 0u);

    const EndpointTotals &live =
        report.byEndpoint.at(cluster.proxyPath());
    EXPECT_EQ(live.connects, 1u);
    EXPECT_EQ(live.connectFailures, 0u);
    EXPECT_EQ(live.sent, 3u);
    EXPECT_EQ(live.ok, 3u);

    const EndpointTotals &down = report.byEndpoint.at(dead);
    EXPECT_EQ(down.connects, 0u);
    EXPECT_EQ(down.connectFailures, 2u); // both attempts refused
    EXPECT_EQ(down.abandoned, 3u);       // its requests never ran
    EXPECT_EQ(down.sent, 0u);
}

// --- end-to-end: slow shard, late reply ------------------------------------

TEST(ClusterEndToEnd, LateReplyAfterTimeoutIsCountedOnceAndDropped)
{
    // A shard that answers *after* the proxy's forward timeout: the
    // client must see exactly one reply (the timeout ERROR), the late
    // frame must be dropped — not delivered, not double-decremented —
    // and the lateReplies gauges must record it.
    ClusterConfig cc;
    cc.shardCount = 1;
    cc.workersPerShard = 1;
    cc.proxy.forwardTimeoutMs = 60;
    cc.proxy.maxRetries = 0; // a retry would just time out again
    LocalCluster cluster(cc);
    cluster.start();

    Client conn = Client::connectUnix(cluster.proxyPath());
    EvalRequest slow = microRequest(Lang::Tcl, 60000);
    slow.id = 1;
    EvalResponse resp = conn.eval(slow);
    EXPECT_EQ(resp.status, Status::Error);
    EXPECT_NE(resp.result.find("timed out"), std::string::npos)
        << resp.result;

    // Wait for the shard to finish the run and its reply to reach
    // the proxy's late-reply branch.
    bool late_seen = false;
    for (int waited = 0; waited < 5000 && !late_seen; waited += 50) {
        std::string json = proxyStats(cluster.proxyPath());
        uint64_t v = 0;
        late_seen = statsJsonUint(json, "proxy.late_replies", v) &&
                    v >= 1;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(late_seen) << "late reply never counted";

    std::string json = proxyStats(cluster.proxyPath());
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "proxy.late_replies", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "shards.s0.late_replies", v));
    EXPECT_EQ(v, 1u);
    // The in-flight slot was released exactly once — the gauge is
    // back to zero, not underflowed.
    ASSERT_TRUE(statsJsonUint(json, "shards.s0.inflight", v));
    EXPECT_EQ(v, 0u);
    // Exactly one ERROR was delivered for the request.
    ASSERT_TRUE(statsJsonUint(json, "proxy.failed", v));
    EXPECT_EQ(v, 1u);

    // The connection and the shard both still serve normally.
    EvalRequest ok = microRequest(Lang::Tcl, 100);
    ok.id = 2;
    EvalResponse resp2 = conn.eval(ok);
    EXPECT_EQ(resp2.status, Status::Ok) << resp2.result;
}

// --- end-to-end: tier-up across the cluster --------------------------------

TEST(ClusterEndToEnd, TierCountersMergeAcrossShards)
{
    // Shards promote independently; the proxy's merged STATS document
    // must roll the per-shard tier ledgers up, and promotion must not
    // perturb the payload the cluster returns.
    const uint32_t kIters = 300;
    harness::Measurement tcl =
        batchMeasure(Lang::Tcl, "a=b+c", (int)kIters);

    ClusterConfig cc;
    cc.shardCount = 2;
    cc.workersPerShard = 1;
    cc.tierPerShard.enabled = true;
    cc.tierPerShard.remedyAfter = 2;
    cc.tierPerShard.tier2After = 4;
    cc.tierPerShard.commandsPerPoint = 1'000'000'000;
    cc.tierPerShard.decayEvery = 1'000'000;
    LocalCluster cluster(cc);
    cluster.start();

    // Consistent hashing pins the program to one home shard, so its
    // hotness accumulates there run after run.
    Client conn = Client::connectUnix(cluster.proxyPath());
    std::vector<uint64_t> insts;
    for (int i = 0; i < 6; ++i) {
        EvalResponse resp = conn.eval(microRequest(Lang::Tcl, kIters));
        ASSERT_EQ(resp.status, Status::Ok) << resp.result;
        EXPECT_EQ(resp.commands, tcl.commands) << "request " << i;
        EXPECT_EQ(resp.result, tcl.stdoutText) << "request " << i;
        insts.push_back(resp.instructions);
    }
    EXPECT_EQ(insts.front(), tcl.profile.instructions());
    EXPECT_LT(insts.back(), insts.front());

    std::string json = proxyStats(cluster.proxyPath());
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "merged.tier_up_remedy", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "merged.tier_up_tier2", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "merged.tiered_runs", v));
    EXPECT_GE(v, 4u);
}

// --- end-to-end: teardown hygiene ------------------------------------------

TEST(ClusterEndToEnd, TeardownSweepsTempSocketsEvenAfterShardKill)
{
    // The /tmp/interproxy-XXXXXX leak: a SIGKILL'd shard can never
    // unlink its own socket file, so teardown must sweep whatever is
    // left in the temp dir — orphaned sockets included — and remove
    // the dir itself, on every exit path.
    std::string dir;
    {
        ClusterConfig cc;
        cc.shardCount = 2;
        cc.workersPerShard = 1;
        LocalCluster cluster(cc);
        cluster.start();
        dir = cluster.tempDir();
        ASSERT_FALSE(dir.empty());
        struct stat st{};
        ASSERT_EQ(::stat(dir.c_str(), &st), 0) << dir;
        ASSERT_TRUE(S_ISDIR(st.st_mode));

        // Serve one request so every socket in the dir is live.
        Client conn = Client::connectUnix(cluster.proxyPath());
        EvalResponse resp = conn.eval(microRequest(Lang::Tcl, 50));
        EXPECT_EQ(resp.status, Status::Ok) << resp.result;

        // Hard-kill a shard: its socket file is now an orphan.
        cluster.killShard(0);
    }
    // Destructor teardown: no /tmp residue, dir and all.
    struct stat st{};
    errno = 0;
    EXPECT_NE(::stat(dir.c_str(), &st), 0)
        << dir << " left behind after teardown";
    EXPECT_EQ(errno, ENOENT);
}
