/**
 * @file
 * Unit tests for the support library (string utilities, RNG).
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strutil.hh"

namespace {

using namespace interp;

TEST(StrUtil, SplitKeepsEmptyFields)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StrUtil, SplitSingleField)
{
    auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StrUtil, SplitWhitespaceDropsEmpty)
{
    auto parts = splitWhitespace("  one\ttwo\n three  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "one");
    EXPECT_EQ(parts[1], "two");
    EXPECT_EQ(parts[2], "three");
}

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StrUtil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_TRUE(endsWith("foobar", "bar"));
    EXPECT_FALSE(endsWith("ar", "bar"));
}

TEST(StrUtil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StrUtil, Format)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%05.1f", 3.25), "003.2");
}

TEST(StrUtil, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567890), "1,234,567,890");
}

TEST(StrUtil, SigThousands)
{
    // 12,960,000 instructions -> "13,000" (thousands).
    EXPECT_EQ(sigThousands(12'960'000), "13,000");
    EXPECT_EQ(sigThousands(290'450'000), "290,000");
    EXPECT_EQ(sigThousands(170'000), "170");
    EXPECT_EQ(sigThousands(3'400), "3.4");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u) << "all values in [-3,3] should appear";
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

// --- log-line prefixes (setLogTimestamps) -------------------------------

/** Restores the global prefix option on scope exit. */
struct TimestampGuard
{
    bool saved = logTimestampsEnabled();
    ~TimestampGuard() { setLogTimestamps(saved); }
};

TEST(Logging, PrefixEmptyWhenDisabled)
{
    TimestampGuard guard;
    setLogTimestamps(false);
    EXPECT_EQ(logLinePrefix(), "");
}

TEST(Logging, PrefixFormatAndMonotonicity)
{
    TimestampGuard guard;
    setLogTimestamps(true);
    std::string p = logLinePrefix();
    // "[sssss.ssssss tNN] " — fixed-width seconds, then a thread id.
    ASSERT_GE(p.size(), 6u);
    EXPECT_EQ(p.front(), '[');
    size_t dot = p.find('.');
    size_t tid = p.find(" t");
    size_t close = p.find("] ");
    ASSERT_NE(dot, std::string::npos);
    ASSERT_NE(tid, std::string::npos);
    ASSERT_NE(close, std::string::npos);
    EXPECT_LT(dot, tid);
    EXPECT_LT(tid, close);
    EXPECT_EQ(close + 2, p.size()) << "prefix ends with \"] \"";
    EXPECT_EQ(tid + 2 + 2, close) << "two-digit dense thread id";

    auto seconds = [](const std::string &prefix) {
        return std::stod(prefix.substr(1, prefix.find(' ') - 1));
    };
    double first = seconds(p);
    EXPECT_GE(first, 0.0);
    std::string q = logLinePrefix();
    EXPECT_GE(seconds(q), first) << "monotonic clock never steps back";
}

TEST(Logging, ThreadsGetDistinctIds)
{
    TimestampGuard guard;
    setLogTimestamps(true);
    std::string here = logLinePrefix();
    std::string there;
    std::thread other([&there] { there = logLinePrefix(); });
    other.join();
    auto tid = [](const std::string &prefix) {
        size_t t = prefix.find(" t");
        return prefix.substr(t + 2, prefix.find("] ") - t - 2);
    };
    EXPECT_NE(tid(here), tid(there));
}

} // namespace
