/**
 * @file
 * Tests for the MIPSI emulator and direct executor: instruction
 * semantics (including delay slots), syscalls, guest memory, and the
 * interpretation cost profile the paper reports for MIPSI.
 */

#include <gtest/gtest.h>

#include "minic/compile.hh"
#include "mips/asm_builder.hh"
#include "mipsi/direct.hh"
#include "mipsi/guest_memory.hh"
#include "mipsi/mipsi.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;
using namespace interp::mips;

/** Run an assembled image under MIPSI; returns the final CPU state. */
mipsi::CpuState
runAsm(AsmBuilder &b, std::string *out = nullptr)
{
    Image img = b.link();
    trace::Execution exec;
    vfs::FileSystem fs;
    mipsi::Mipsi vm(exec, fs);
    vm.load(img);
    auto result = vm.run(1'000'000);
    EXPECT_TRUE(result.exited);
    if (out)
        *out = fs.stdoutCapture();
    return vm.cpu();
}

/** Append exit(0) to a builder program. */
void
emitExit(AsmBuilder &b)
{
    b.li(V0, SYS_EXIT);
    b.syscall();
}

TEST(GuestMemory, ByteHalfWordRoundTrip)
{
    mipsi::GuestMemory mem;
    mem.write32(0x10000000, 0x11223344);
    EXPECT_EQ(mem.read32(0x10000000), 0x11223344u);
    EXPECT_EQ(mem.read8(0x10000000), 0x44) << "little-endian";
    EXPECT_EQ(mem.read8(0x10000003), 0x11);
    EXPECT_EQ(mem.read16(0x10000002), 0x1122);
    mem.write8(0x10000001, 0xaa);
    EXPECT_EQ(mem.read32(0x10000000), 0x1122aa44u);
}

TEST(GuestMemory, CrossPageAccess)
{
    mipsi::GuestMemory mem;
    uint32_t addr = 0x10000ffe; // spans a 4 KB page boundary
    mem.write32(addr, 0xcafebabe);
    EXPECT_EQ(mem.read32(addr), 0xcafebabeu);
}

TEST(GuestMemory, DemandPaging)
{
    mipsi::GuestMemory mem;
    EXPECT_EQ(mem.pagesAllocated(), 0u);
    mem.read8(0x10000000);
    mem.read8(0x50000000);
    EXPECT_EQ(mem.pagesAllocated(), 2u);
    EXPECT_EQ(mem.read32(0x10000000), 0u) << "fresh pages are zero";
}

TEST(Mipsi, BranchDelaySlotExecutes)
{
    AsmBuilder b;
    // beq taken; its delay slot must still execute (sets $t0 = 7).
    auto target = b.newLabel();
    b.branch(Op::Beq, ZERO, ZERO, target); // emits delay nop
    // Overwrite the auto-nop? We cannot; so craft manually instead:
    // use raw emit: branch with fixup is easier to test via the value
    // of the link register semantics below. Here: check the nop path.
    b.li(T1, 99); // skipped if branch taken
    b.bind(target);
    b.li(T2, 55);
    emitExit(b);
    auto state = runAsm(b);
    EXPECT_EQ(state.regs[T1], 0u) << "branch skipped li $t1";
    EXPECT_EQ(state.regs[T2], 55u);
}

TEST(Mipsi, DelaySlotInstructionRuns)
{
    AsmBuilder b;
    auto target = b.newLabel();
    // Hand-craft: beq $0,$0,target ; li $t0, 7 (delay slot, runs!)
    Inst beq;
    beq.op = Op::Beq;
    beq.rs = ZERO;
    beq.rt = ZERO;
    beq.imm = 2; // target = branch_pc + 4 + 2*4: skips one instruction
    b.emit(beq);
    b.itype(Op::Addiu, T0, ZERO, 7); // delay slot
    b.itype(Op::Addiu, T1, ZERO, 9); // skipped
    b.bind(target);
    (void)target;
    emitExit(b);
    auto state = runAsm(b);
    EXPECT_EQ(state.regs[T0], 7u) << "delay slot executed";
    EXPECT_EQ(state.regs[T1], 0u) << "branch target skipped successor";
}

TEST(Mipsi, JalLinksPastDelaySlot)
{
    AsmBuilder b;
    auto fn = b.newLabel();
    b.jal(fn);       // + delay nop
    b.li(T3, 1);     // return lands here (pc+8)
    emitExit(b);
    b.bind(fn);
    b.li(T4, 2);
    b.jr(RA);
    auto state = runAsm(b);
    EXPECT_EQ(state.regs[T3], 1u);
    EXPECT_EQ(state.regs[T4], 2u);
}

TEST(Mipsi, ArithmeticSemantics)
{
    AsmBuilder b;
    b.li(T0, 7);
    b.li(T1, -3);
    b.rtype(Op::Addu, T2, T0, T1);  // 4
    b.rtype(Op::Subu, T3, T0, T1);  // 10
    b.rtype(Op::Slt, T4, T1, T0);   // 1 (signed)
    b.rtype(Op::Sltu, T5, T1, T0);  // 0 (unsigned: big vs 7)
    b.multDiv(Op::Mult, T0, T1);    // -21
    b.mflo(T6);
    b.multDiv(Op::Div, T3, T0);     // 10 / 7 = 1 rem 3
    b.mflo(T7);
    b.mfhi(T8);
    emitExit(b);
    auto state = runAsm(b);
    EXPECT_EQ(state.regs[T2], 4u);
    EXPECT_EQ(state.regs[T3], 10u);
    EXPECT_EQ(state.regs[T4], 1u);
    EXPECT_EQ(state.regs[T5], 0u);
    EXPECT_EQ((int32_t)state.regs[T6], -21);
    EXPECT_EQ(state.regs[T7], 1u);
    EXPECT_EQ(state.regs[T8], 3u);
}

TEST(Mipsi, ShiftSemantics)
{
    AsmBuilder b;
    b.li(T0, -16);
    b.shift(Op::Srl, T1, T0, 2);  // logical
    b.shift(Op::Sra, T2, T0, 2);  // arithmetic
    b.shift(Op::Sll, T3, T0, 1);
    b.li(T4, 3);
    b.shiftVar(Op::Sllv, T5, T0, T4);
    emitExit(b);
    auto state = runAsm(b);
    EXPECT_EQ(state.regs[T1], 0xfffffff0u >> 2);
    EXPECT_EQ((int32_t)state.regs[T2], -4);
    EXPECT_EQ((int32_t)state.regs[T3], -32);
    EXPECT_EQ((int32_t)state.regs[T5], -128);
}

TEST(Mipsi, LoadStoreSignedness)
{
    AsmBuilder b;
    uint32_t addr = b.dataWord(0);
    b.la(T0, addr);
    b.li(T1, 0x80);
    b.loadStore(Op::Sb, T1, 0, T0);
    b.loadStore(Op::Lb, T2, 0, T0);   // sign-extends
    b.loadStore(Op::Lbu, T3, 0, T0);  // zero-extends
    b.li(T1, 0x8000);
    b.loadStore(Op::Sh, T1, 0, T0);
    b.loadStore(Op::Lh, T4, 0, T0);
    b.loadStore(Op::Lhu, T5, 0, T0);
    emitExit(b);
    auto state = runAsm(b);
    EXPECT_EQ((int32_t)state.regs[T2], -128);
    EXPECT_EQ(state.regs[T3], 0x80u);
    EXPECT_EQ((int32_t)state.regs[T4], -32768);
    EXPECT_EQ(state.regs[T5], 0x8000u);
}

TEST(Mipsi, RegisterZeroIsImmutable)
{
    AsmBuilder b;
    b.itype(Op::Addiu, ZERO, ZERO, 55);
    b.rtype(Op::Addu, T0, ZERO, ZERO);
    emitExit(b);
    auto state = runAsm(b);
    EXPECT_EQ(state.regs[T0], 0u);
}

TEST(Mipsi, PrintSyscalls)
{
    AsmBuilder b;
    uint32_t msg = b.dataAsciiz("x=");
    b.la(A0, msg);
    b.li(V0, SYS_PRINT_STRING);
    b.syscall();
    b.li(A0, -7);
    b.li(V0, SYS_PRINT_INT);
    b.syscall();
    b.li(A0, '!');
    b.li(V0, SYS_PRINT_CHAR);
    b.syscall();
    emitExit(b);
    std::string out;
    runAsm(b, &out);
    EXPECT_EQ(out, "x=-7!");
}

TEST(Mipsi, CommandsEqualGuestInstructions)
{
    // Commands retired by MIPSI must equal instructions executed by
    // direct mode on the same program (same semantics, same path).
    const char *src = R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 50; i += 1)
                s += i;
            print_int(s);
            return 0;
        }
    )";
    auto img = minic::compileMips(src);

    trace::Execution e1;
    vfs::FileSystem f1;
    mipsi::Mipsi vm(e1, f1);
    vm.load(img);
    auto r1 = vm.run();

    trace::Execution e2;
    vfs::FileSystem f2;
    mipsi::DirectCpu cpu(e2, f2);
    cpu.load(img);
    auto r2 = cpu.run();

    EXPECT_TRUE(r1.exited);
    EXPECT_TRUE(r2.exited);
    EXPECT_EQ(r1.commands, r2.instructions);
    EXPECT_EQ(f1.stdoutCapture(), f2.stdoutCapture());
}

TEST(Mipsi, FetchDecodeCostNearlyFixed)
{
    // The paper's Table 2: MIPSI fetch/decode is ~47-51 native
    // instructions per virtual command, nearly constant across
    // programs. Check two very different programs land close.
    auto profile_of = [](const char *src) {
        trace::Execution exec;
        trace::Profile profile;
        exec.addSink(&profile);
        vfs::FileSystem fs;
        mipsi::Mipsi vm(exec, fs);
        vm.load(minic::compileMips(src));
        auto r = vm.run(10'000'000);
        EXPECT_TRUE(r.exited);
        return profile.fetchDecodePerCommand();
    };
    double loops = profile_of(R"(
        int main() {
            int s = 0;
            for (int i = 0; i < 2000; i += 1) s += i;
            return s & 1;
        })");
    double memory = profile_of(R"(
        int buf[256];
        int main() {
            for (int r = 0; r < 20; r += 1)
                for (int i = 0; i < 256; i += 1)
                    buf[i] = buf[(i + 7) & 255] + 1;
            return 0;
        })");
    EXPECT_GT(loops, 35.0);
    EXPECT_LT(loops, 65.0);
    EXPECT_NEAR(loops, memory, 6.0) << "fetch/decode cost is uniform";
}

TEST(Mipsi, MemoryModelShareInPaperRange)
{
    // §3.3: MIPSI memory-model work is 13-18% of total instructions.
    trace::Execution exec;
    trace::Profile profile;
    exec.addSink(&profile);
    vfs::FileSystem fs;
    mipsi::Mipsi vm(exec, fs);
    vm.load(minic::compileMips(R"(
        int buf[512];
        int main() {
            int s = 0;
            for (int r = 0; r < 30; r += 1)
                for (int i = 0; i < 512; i += 1) {
                    buf[i] = s;
                    s += buf[(i * 17) & 511];
                }
            print_int(s);
            return 0;
        })"));
    auto r = vm.run(30'000'000);
    EXPECT_TRUE(r.exited);
    double frac = profile.memModelFraction();
    EXPECT_GT(frac, 0.08);
    EXPECT_LT(frac, 0.30);
    EXPECT_GT(profile.memModelCostPerAccess(), 20.0);
    EXPECT_LT(profile.memModelCostPerAccess(), 70.0);
}

TEST(Direct, OneNativeInstructionPerGuestInstruction)
{
    trace::Execution exec;
    trace::Profile profile;
    exec.addSink(&profile);
    vfs::FileSystem fs;
    mipsi::DirectCpu cpu(exec, fs);
    cpu.load(minic::compileMips(
        "int main() { int s = 0;"
        " for (int i = 0; i < 100; i += 1) s += i * i; return 0; }"));
    auto r = cpu.run();
    EXPECT_TRUE(r.exited);
    // Each guest instruction emits >= 1 native instruction; sub-word
    // memory ops add an extract, and syscalls add system work, so the
    // user-level ratio stays close to 1.
    double ratio = (double)profile.userInstructions() / (double)r.instructions;
    EXPECT_GE(ratio, 1.0);
    EXPECT_LT(ratio, 1.2);
}

TEST(Direct, SllNopsVisibleInCommandMix)
{
    // Footnote 1: delay-slot no-ops are encoded as sll and inflate the
    // sll command count. Branch-heavy code must show many sll commands.
    trace::Execution exec;
    trace::Profile profile;
    exec.addSink(&profile);
    vfs::FileSystem fs;
    mipsi::DirectCpu cpu(exec, fs);
    cpu.load(minic::compileMips(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 500; i += 1)
                if (i & 1)
                    n += 1;
            return n & 1;
        })"));
    auto r = cpu.run();
    EXPECT_TRUE(r.exited);
    auto &set = cpu.commandSet();
    uint64_t sll = 0;
    auto per = profile.perCommand();
    for (size_t i = 0; i < per.size() && i < set.size(); ++i)
        if (set.name((trace::CommandId)i) == "sll")
            sll = per[i].retired;
    EXPECT_GT(sll, r.instructions / 20) << "delay-slot nops are sll";
}

TEST(Mipsi, GuestExitCode)
{
    AsmBuilder b;
    b.li(A0, 42);
    b.li(V0, SYS_EXIT2);
    b.syscall();
    Image img = b.link();
    trace::Execution exec;
    vfs::FileSystem fs;
    mipsi::Mipsi vm(exec, fs);
    vm.load(img);
    auto result = vm.run();
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 42);
}

} // namespace
