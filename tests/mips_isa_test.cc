/**
 * @file
 * Unit tests for the MIPS ISA module: encode/decode round trips,
 * field extraction, disassembly, and the assembler/linker.
 */

#include <gtest/gtest.h>

#include "mips/asm_builder.hh"
#include "mips/isa.hh"

namespace {

using namespace interp::mips;

TEST(Isa, DecodeNop)
{
    Inst inst = decode(kNopWord);
    EXPECT_EQ(inst.op, Op::Sll);
    EXPECT_TRUE(inst.isNop());
}

TEST(Isa, DecodeAddu)
{
    // addu $3, $1, $2 : opcode 0, funct 0x21
    uint32_t word = encodeR(0x21, 1, 2, 3, 0);
    Inst inst = decode(word);
    EXPECT_EQ(inst.op, Op::Addu);
    EXPECT_EQ(inst.rs, 1);
    EXPECT_EQ(inst.rt, 2);
    EXPECT_EQ(inst.rd, 3);
}

TEST(Isa, DecodeItypeSignExtension)
{
    uint32_t word = encodeI(0x09, 2, 4, 0xffff); // addiu $4, $2, -1
    Inst inst = decode(word);
    EXPECT_EQ(inst.op, Op::Addiu);
    EXPECT_EQ(inst.imm, -1);
}

TEST(Isa, DecodeRegimm)
{
    Inst bltz = decode(encodeI(0x01, 5, 0, 8));
    EXPECT_EQ(bltz.op, Op::Bltz);
    Inst bgez = decode(encodeI(0x01, 5, 1, 8));
    EXPECT_EQ(bgez.op, Op::Bgez);
}

TEST(Isa, DecodeJump)
{
    Inst j = decode(encodeJ(0x02, 0x12345));
    EXPECT_EQ(j.op, Op::J);
    EXPECT_EQ(j.target, 0x12345u);
    Inst jal = decode(encodeJ(0x03, 0x12345));
    EXPECT_EQ(jal.op, Op::Jal);
}

TEST(Isa, InvalidOpcodeDecodesInvalid)
{
    EXPECT_EQ(decode(0xfc000000).op, Op::Invalid);
    EXPECT_EQ(decode(0x0000003f).op, Op::Invalid); // bad funct
}

/** Encode/decode round-trip over every opcode. */
class RoundTrip : public testing::TestWithParam<int>
{};

TEST_P(RoundTrip, EncodeDecode)
{
    Op op = (Op)GetParam();
    Inst inst;
    inst.op = op;
    inst.rs = 3;
    inst.rt = 5;
    inst.rd = 7;
    inst.shamt = 9;
    inst.imm = -42;
    inst.target = 0x3ffff;
    // Normalize fields irrelevant to the encoding so comparison holds.
    switch (op) {
      case Op::J: case Op::Jal:
        inst.rs = inst.rt = inst.rd = inst.shamt = 0;
        inst.imm = (int16_t)(inst.target & 0xffff);
        break;
      case Op::Bltz: case Op::Bgez:
        inst.rt = op == Op::Bgez ? 1 : 0;
        inst.rd = inst.shamt = 0;
        inst.target = 0;
        break;
      case Op::Syscall:
        inst.rs = inst.rt = inst.rd = inst.shamt = 0;
        inst.imm = 0;
        inst.target = 0;
        break;
      default:
        break;
    }
    uint32_t word = encode(inst);
    Inst back = decode(word);
    EXPECT_EQ(back.op, inst.op) << opName(op);
    if (op != Op::J && op != Op::Jal) {
        EXPECT_EQ(back.rs, inst.rs) << opName(op);
        EXPECT_EQ(back.rt, inst.rt) << opName(op);
    } else {
        EXPECT_EQ(back.target, inst.target & 0x03ffffff);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTrip,
    testing::Range((int)Op::Sll, (int)Op::NumOps),
    [](const testing::TestParamInfo<int> &info) {
        return std::string(opName((Op)info.param));
    });

TEST(Disasm, Samples)
{
    EXPECT_EQ(disassemble(decode(kNopWord), 0), "nop");
    EXPECT_EQ(disassemble(decode(encodeR(0x21, 1, 2, 3, 0)), 0),
              "addu $3, $1, $2");
    EXPECT_EQ(disassemble(decode(encodeI(0x23, 29, 4, 16)), 0),
              "lw $4, 16($29)");
    EXPECT_EQ(disassemble(decode(encodeI(0x04, 1, 2, 4)), 0x1000),
              "beq $1, $2, 0x1014");
}

TEST(AsmBuilder, BranchFixupForwardAndBack)
{
    AsmBuilder b;
    auto start = b.here("start");
    auto fwd = b.newLabel();
    b.branch(Op::Beq, ZERO, ZERO, fwd); // + delay nop
    b.nop();
    b.bind(fwd);
    b.branch(Op::Bne, V0, ZERO, start); // backward + delay nop
    Image img = b.link();

    // beq at index 0, delay nop index 1, nop index 2, bne index 3.
    Inst beq = decode(img.text[0]);
    EXPECT_EQ(beq.op, Op::Beq);
    // target = pc+4 + imm*4 = index 3 -> imm = (3 - 1) = 2.
    EXPECT_EQ(beq.imm, 2);
    Inst bne = decode(img.text[3]);
    EXPECT_EQ(bne.imm, -4); // back to index 0: 0 - (3+1) = -4
    EXPECT_TRUE(decode(img.text[1]).isNop()) << "delay slot filled";
}

TEST(AsmBuilder, JalTargetEncodesAbsolute)
{
    AsmBuilder b;
    b.nop();
    auto fn = b.newLabel();
    b.jal(fn);
    b.bind(fn);
    b.nop();
    Image img = b.link();
    Inst jal = decode(img.text[1]);
    uint32_t target = ((kTextBase + 8) & 0xf0000000) | (jal.target << 2);
    EXPECT_EQ(target, kTextBase + 3 * 4);
    EXPECT_EQ(img.symbols.size(), 0u);
}

TEST(AsmBuilder, LiSmallAndLarge)
{
    AsmBuilder b;
    b.li(T0, 5);          // 1 inst
    b.li(T1, -5);         // 1 inst
    b.li(T2, 0x12345678); // lui + ori
    Image img = b.link();
    ASSERT_EQ(img.text.size(), 4u);
    EXPECT_EQ(decode(img.text[0]).op, Op::Addiu);
    EXPECT_EQ(decode(img.text[2]).op, Op::Lui);
    EXPECT_EQ(decode(img.text[3]).op, Op::Ori);
}

TEST(AsmBuilder, DataDirectives)
{
    AsmBuilder b;
    b.nop();
    uint32_t s = b.dataAsciiz("hi");
    uint32_t w = b.dataWord(0xdeadbeef);
    b.dataSymbol("str", s);
    Image img = b.link();
    EXPECT_EQ(s, kDataBase);
    EXPECT_EQ(w, kDataBase + 4) << "word aligned after 3-byte string";
    EXPECT_EQ(img.data[0], 'h');
    EXPECT_EQ(img.data[2], 0);
    EXPECT_EQ(img.data[4], 0xef);
    EXPECT_EQ(img.data[7], 0xde);
    EXPECT_EQ(img.symbols.at("str"), kDataBase);
}

TEST(AsmBuilder, EntryDefaultsToTextBase)
{
    AsmBuilder b;
    b.nop();
    EXPECT_EQ(b.link().entry, kTextBase);
}

TEST(AsmBuilder, NamedLabelsBecomeSymbols)
{
    AsmBuilder b;
    b.nop();
    b.here("func");
    b.nop();
    Image img = b.link();
    EXPECT_EQ(img.symbols.at("func"), kTextBase + 4);
}

TEST(Image, SizeAndBreak)
{
    AsmBuilder b;
    b.nop();
    b.nop();
    b.dataAsciiz("abc");
    Image img = b.link();
    EXPECT_EQ(img.sizeBytes(), 8u + 4u);
    EXPECT_EQ(img.initialBreak() % 8, 0u);
    EXPECT_GE(img.initialBreak(), img.dataBase + 4);
}

} // namespace
