/**
 * @file
 * End-to-end record/replay equivalence: for every execution mode of
 * the study, a benchmark recorded with runOrReplay(--record) and then
 * replayed from the tape must reproduce the live Measurement —
 * profile counters, Table 3 machine cycles and stall breakdown, and
 * the Figure 4 cache-sweep points — exactly. The doubles are derived
 * deterministically from the same integer event stream on both paths,
 * so equality here is bitwise, not approximate.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "harness/record_replay.hh"
#include "harness/runner.hh"
#include "sim/cache_sweep.hh"
#include "support/logging.hh"
#include "tracefile/reader.hh"

namespace {

using namespace interp;
using namespace interp::harness;
namespace fs = std::filesystem;

std::string
traceDir()
{
    fs::path dir = fs::path(::testing::TempDir()) / "interp_replay";
    fs::create_directories(dir);
    return dir.string();
}

void
expectSameProfile(const trace::Profile &live, const trace::Profile &tape)
{
    EXPECT_EQ(live.commands(), tape.commands());
    EXPECT_EQ(live.instructions(), tape.instructions());
    EXPECT_EQ(live.fetchDecodeInsts(), tape.fetchDecodeInsts());
    EXPECT_EQ(live.executeInsts(), tape.executeInsts());
    EXPECT_EQ(live.precompileInsts(), tape.precompileInsts());
    EXPECT_EQ(live.nativeLibInsts(), tape.nativeLibInsts());
    EXPECT_EQ(live.memModelInsts(), tape.memModelInsts());
    EXPECT_EQ(live.systemInsts(), tape.systemInsts());
    EXPECT_EQ(live.memModelAccesses(), tape.memModelAccesses());

    const auto &lc = live.perCommand();
    const auto &tc = tape.perCommand();
    ASSERT_EQ(lc.size(), tc.size());
    for (size_t i = 0; i < lc.size(); ++i) {
        EXPECT_EQ(lc[i].retired, tc[i].retired) << "command " << i;
        EXPECT_EQ(lc[i].fetchDecode, tc[i].fetchDecode)
            << "command " << i;
        EXPECT_EQ(lc[i].execute, tc[i].execute) << "command " << i;
        EXPECT_EQ(lc[i].nativeLib, tc[i].nativeLib) << "command " << i;
    }
}

void
expectSameMeasurement(const Measurement &live, const Measurement &tape)
{
    EXPECT_EQ(live.programBytes, tape.programBytes);
    EXPECT_EQ(live.commands, tape.commands);
    EXPECT_EQ(live.cycles, tape.cycles);
    EXPECT_EQ(live.finished, tape.finished);
    EXPECT_EQ(live.commandNames, tape.commandNames);
    // Bitwise equality: same integer stream, same arithmetic.
    EXPECT_EQ(live.imissPer100, tape.imissPer100);
    EXPECT_EQ(live.breakdown.busyPct, tape.breakdown.busyPct);
    for (size_t i = 0; i < live.breakdown.stallPct.size(); ++i)
        EXPECT_EQ(live.breakdown.stallPct[i],
                  tape.breakdown.stallPct[i])
            << "stall cause " << i;
    expectSameProfile(live.profile, tape.profile);
}

/** Record spec into dir, replay it, and check both Measurements. */
void
roundTrip(BenchSpec spec)
{
    std::string dir = traceDir();
    TraceIo record;
    record.recordDir = dir;
    TraceIo replay;
    replay.replayDir = dir;

    Measurement live = runOrReplay(spec, record);
    Measurement tape = runOrReplay(spec, replay);
    expectSameMeasurement(live, tape);

    // Program stdout is deliberately not part of the trace format.
    EXPECT_TRUE(tape.stdoutText.empty());
}

TEST(Replay, CByteIdentical)
{
    roundTrip(microBench(Lang::C, "a=b+c", 60));
}

TEST(Replay, MipsiByteIdentical)
{
    roundTrip(microBench(Lang::Mipsi, "a=b+c", 60));
}

TEST(Replay, JavaByteIdentical)
{
    roundTrip(microBench(Lang::Java, "string-split", 40));
}

TEST(Replay, PerlByteIdentical)
{
    roundTrip(microBench(Lang::Perl, "string-split", 40));
}

TEST(Replay, TclByteIdentical)
{
    roundTrip(microBench(Lang::Tcl, "string-split", 40));
}

TEST(Replay, CacheSweepMatchesLiveRun)
{
    // The bench_fig4 shape: the sweep rides along as an extra sink on
    // both the live run and the replay; every (size, assoc) point must
    // agree.
    BenchSpec spec = microBench(Lang::Perl, "a=b+c", 40);
    std::string dir = traceDir();
    TraceIo record;
    record.recordDir = dir;
    TraceIo replay;
    replay.replayDir = dir;

    const std::vector<uint32_t> sizes = {8, 16, 32, 64};
    const std::vector<uint32_t> assocs = {1, 2, 4};
    sim::CacheSweep live_sweep(sizes, assocs);
    sim::CacheSweep tape_sweep(sizes, assocs);

    runOrReplay(spec, record, {&live_sweep}, nullptr, false);
    runOrReplay(spec, replay, {&tape_sweep}, nullptr, false);

    std::vector<sim::SweepPoint> live = live_sweep.results();
    std::vector<sim::SweepPoint> tape = tape_sweep.results();
    ASSERT_EQ(live.size(), tape.size());
    EXPECT_EQ(live_sweep.instructions(), tape_sweep.instructions());
    for (size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(live[i].misses, tape[i].misses) << "point " << i;
        EXPECT_EQ(live[i].missesPer100Insts, tape[i].missesPer100Insts)
            << "point " << i;
    }
}

TEST(Replay, AlternateMachineConfigFromOneTape)
{
    // Record once, replay under a different machine configuration —
    // the record-once/replay-many workflow. The replayed cycles must
    // match a live run under that same configuration.
    BenchSpec spec = microBench(Lang::Tcl, "if", 30);
    std::string dir = traceDir();
    TraceIo record;
    record.recordDir = dir;
    TraceIo replay;
    replay.replayDir = dir;

    sim::MachineConfig big;
    big.icache.sizeBytes = 32 * 1024;
    big.icache.assoc = 4;

    Measurement live_default = runOrReplay(spec, record);
    Measurement live_big = run(spec, {}, &big);
    Measurement tape_default = runOrReplay(spec, replay);
    Measurement tape_big = runOrReplay(spec, replay, {}, &big);

    EXPECT_EQ(live_default.cycles, tape_default.cycles);
    EXPECT_EQ(live_big.cycles, tape_big.cycles);
    // Sanity: the sweep actually changes the answer, so the equality
    // above is not vacuous.
    EXPECT_NE(live_big.cycles, live_default.cycles);
}

TEST(Replay, WrongTapeForSpecIsFatal)
{
    BenchSpec recorded = microBench(Lang::Perl, "if", 20);
    std::string dir = traceDir();
    TraceIo record;
    record.recordDir = dir;
    runOrReplay(recorded, record);

    BenchSpec other = microBench(Lang::Perl, "if", 20);
    other.name = "something-else";
    ScopedFatalThrow contain;
    EXPECT_THROW(
        replayTrace(traceFilePath(dir, recorded), other), FatalError);
}

TEST(Replay, MissingTapeIsFatal)
{
    BenchSpec spec = microBench(Lang::Perl, "if", 20);
    TraceIo replay;
    replay.replayDir = traceDir() + "/no-such-subdir";
    ScopedFatalThrow contain;
    EXPECT_THROW(runOrReplay(spec, replay), FatalError);
}

TEST(Replay, TraceFileNamesAreSanitized)
{
    BenchSpec spec;
    spec.lang = Lang::Perl;
    spec.name = "des+50 weird/name";
    EXPECT_EQ(traceFileName(spec), "perl-des_50_weird_name.itr");
    spec.name = "scaling-10";
    spec.lang = Lang::C;
    EXPECT_EQ(traceFileName(spec), "c-scaling-10.itr");
}

TEST(Replay, ReaderDeliversBundlesInBatches)
{
    // The reader uses the same batched delivery as a live Execution:
    // bundles arrive through onBatch (many per virtual call), and
    // non-bundle events interleave in exact stream order.
    BenchSpec spec = microBench(Lang::Perl, "a=b+c", 40);
    std::string dir = traceDir();
    TraceIo record;
    record.recordDir = dir;
    runOrReplay(spec, record);

    class BatchCounter : public trace::Sink
    {
      public:
        void
        onBatch(const trace::BundleBatch &batch) override
        {
            ++batches;
            bundles += batch.size();
        }
        void onBundle(const trace::Bundle &) override { ++singles; }
        uint64_t batches = 0, bundles = 0, singles = 0;
    };

    tracefile::TraceReader reader(traceFilePath(dir, spec));
    BatchCounter counter;
    reader.replay({&counter});
    EXPECT_EQ(counter.singles, 0u)
        << "bundles must arrive through onBatch, not one at a time";
    EXPECT_EQ(counter.bundles, reader.meta().totalBundles);
    EXPECT_LT(counter.batches, counter.bundles / 8)
        << "batches should amortize many bundles per virtual call";
}

TEST(Replay, RecordedMetaDescribesTheRun)
{
    BenchSpec spec = microBench(Lang::Java, "if", 25);
    std::string dir = traceDir();
    TraceIo record;
    record.recordDir = dir;
    Measurement live = runOrReplay(spec, record);

    tracefile::TraceReader reader(traceFilePath(dir, spec));
    const tracefile::TraceMeta &meta = reader.meta();
    EXPECT_EQ(meta.lang, langName(spec.lang));
    EXPECT_EQ(meta.name, spec.name);
    EXPECT_EQ(meta.programBytes, live.programBytes);
    EXPECT_EQ(meta.commands, live.commands);
    EXPECT_EQ(meta.finished, live.finished);
    EXPECT_EQ(meta.totalInsts, live.profile.instructions());
    EXPECT_EQ(meta.totalMemAccesses, live.profile.memModelAccesses());
    EXPECT_EQ(meta.commandNames, live.commandNames);
}

} // namespace
