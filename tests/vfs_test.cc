/**
 * @file
 * Unit tests for the in-memory virtual file system.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "vfs/vfs.hh"

namespace {

using namespace interp::vfs;

TEST(Vfs, WriteAndReadWholeFile)
{
    FileSystem fs;
    fs.writeFile("a.txt", "hello");
    EXPECT_TRUE(fs.exists("a.txt"));
    EXPECT_EQ(fs.readFile("a.txt"), "hello");
}

TEST(Vfs, OpenMissingFileFails)
{
    FileSystem fs;
    EXPECT_EQ(fs.open("missing", OpenMode::Read), -1);
}

TEST(Vfs, ReadInChunks)
{
    FileSystem fs;
    fs.writeFile("f", "abcdefghij");
    int fd = fs.open("f", OpenMode::Read);
    ASSERT_GE(fd, 3);
    char buf[4] = {};
    EXPECT_EQ(fs.read(fd, buf, 4), 4);
    EXPECT_EQ(std::string(buf, 4), "abcd");
    EXPECT_EQ(fs.read(fd, buf, 4), 4);
    EXPECT_EQ(std::string(buf, 4), "efgh");
    EXPECT_EQ(fs.read(fd, buf, 4), 2);
    EXPECT_EQ(std::string(buf, 2), "ij");
    EXPECT_EQ(fs.read(fd, buf, 4), 0) << "EOF returns 0";
    EXPECT_TRUE(fs.close(fd));
}

TEST(Vfs, WriteModeTruncates)
{
    FileSystem fs;
    fs.writeFile("f", "old contents");
    int fd = fs.open("f", OpenMode::Write);
    EXPECT_EQ(fs.write(fd, "new", 3), 3);
    fs.close(fd);
    EXPECT_EQ(fs.readFile("f"), "new");
}

TEST(Vfs, AppendMode)
{
    FileSystem fs;
    fs.writeFile("f", "one");
    int fd = fs.open("f", OpenMode::Append);
    fs.write(fd, "two", 3);
    fs.close(fd);
    EXPECT_EQ(fs.readFile("f"), "onetwo");
}

TEST(Vfs, SeekSetCurEnd)
{
    FileSystem fs;
    fs.writeFile("f", "0123456789");
    int fd = fs.open("f", OpenMode::Read);
    char c;
    EXPECT_EQ(fs.seek(fd, 4, 0), 4);
    fs.read(fd, &c, 1);
    EXPECT_EQ(c, '4');
    EXPECT_EQ(fs.seek(fd, 2, 1), 7);
    fs.read(fd, &c, 1);
    EXPECT_EQ(c, '7');
    EXPECT_EQ(fs.seek(fd, -1, 2), 9);
    fs.read(fd, &c, 1);
    EXPECT_EQ(c, '9');
    EXPECT_EQ(fs.seek(fd, -100, 0), -1) << "negative target rejected";
}

TEST(Vfs, StdoutStderrCapture)
{
    FileSystem fs;
    fs.write(1, "out", 3);
    fs.write(2, "err", 3);
    EXPECT_EQ(fs.stdoutCapture(), "out");
    EXPECT_EQ(fs.stderrCapture(), "err");
}

TEST(Vfs, StdinConsumption)
{
    FileSystem fs;
    fs.setStdin("ab");
    char buf[4];
    EXPECT_EQ(fs.read(0, buf, 4), 2);
    EXPECT_EQ(fs.read(0, buf, 4), 0);
}

TEST(Vfs, BadDescriptorRejected)
{
    FileSystem fs;
    char buf[1];
    EXPECT_EQ(fs.read(99, buf, 1), -1);
    EXPECT_EQ(fs.write(99, buf, 1), -1);
    EXPECT_FALSE(fs.close(99));
    EXPECT_FALSE(fs.close(0)) << "std descriptors cannot be closed";
}

TEST(Vfs, WriteToReadOnlyFdFails)
{
    FileSystem fs;
    fs.writeFile("f", "x");
    int fd = fs.open("f", OpenMode::Read);
    EXPECT_EQ(fs.write(fd, "y", 1), -1);
}

TEST(Vfs, DescriptorReuseAfterClose)
{
    FileSystem fs;
    fs.writeFile("f", "x");
    int fd1 = fs.open("f", OpenMode::Read);
    fs.close(fd1);
    int fd2 = fs.open("f", OpenMode::Read);
    EXPECT_EQ(fd1, fd2) << "closed descriptors are recycled";
}

TEST(Vfs, RemoveAndList)
{
    FileSystem fs;
    fs.writeFile("b", "");
    fs.writeFile("a", "");
    auto names = fs.list();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a") << "listing is sorted";
    EXPECT_TRUE(fs.remove("a"));
    EXPECT_FALSE(fs.remove("a"));
    EXPECT_FALSE(fs.exists("a"));
}

TEST(Vfs, SparseWriteZeroFills)
{
    FileSystem fs;
    int fd = fs.open("f", OpenMode::Write);
    fs.seek(fd, 4, 0);
    fs.write(fd, "x", 1);
    fs.close(fd);
    const std::string &data = fs.readFile("f");
    ASSERT_EQ(data.size(), 5u);
    EXPECT_EQ(data[0], '\0');
    EXPECT_EQ(data[4], 'x');
}

} // namespace
