/**
 * @file
 * Golden equivalence tests for the §5 remedy execution modes
 * (threaded MIPSI, quickened JVM, bytecode tclish). Each remedy must
 * be observationally identical to its baseline — same stdout, same
 * virtual commands, byte-identical per-command retired and execute
 * counts — while spending strictly fewer fetch/decode instructions.
 * Also covers the code-mutation guards (a remedy that would rewrite
 * code after its first execution must fatal, containably) and the
 * record/replay composition of the remedy modes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/record_replay.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"
#include "jvm/vm.hh"
#include "minic/compile.hh"
#include "mips/asm_builder.hh"
#include "mipsi/mipsi.hh"
#include "mipsi/threaded.hh"
#include "support/logging.hh"
#include "tclish/interp.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;
using namespace interp::harness;

Lang
remedyOf(Lang lang)
{
    switch (lang) {
      case Lang::Mipsi: return Lang::MipsiThreaded;
      case Lang::Java: return Lang::JavaQuick;
      case Lang::Tcl: return Lang::TclBytecode;
      default: return lang;
    }
}

BenchSpec
macroSpec(Lang lang, const std::string &name)
{
    for (BenchSpec &spec : macroSuite())
        if (spec.lang == lang && spec.name == name)
            return spec;
    ADD_FAILURE() << "no macro benchmark " << langName(lang) << "/"
                  << name;
    return {};
}

/**
 * The golden property: run the spec in baseline and remedy mode and
 * check that everything the program and the execute stage produce is
 * identical, with the whole improvement confined to fetch/decode
 * (plus a one-shot Precompile charge).
 */
void
expectGoldenPair(const BenchSpec &base_spec)
{
    BenchSpec rem_spec = base_spec;
    rem_spec.lang = remedyOf(base_spec.lang);
    ASSERT_NE(rem_spec.lang, base_spec.lang) << "spec has no remedy";

    Measurement base = run(base_spec);
    Measurement rem = run(rem_spec);

    // Program-visible behaviour is identical.
    EXPECT_EQ(base.stdoutText, rem.stdoutText);
    EXPECT_TRUE(base.finished);
    EXPECT_TRUE(rem.finished);
    EXPECT_EQ(base.commands, rem.commands);
    EXPECT_EQ(base.commandNames, rem.commandNames);

    // Execute attribution is byte-identical per virtual command.
    const auto &bc = base.profile.perCommand();
    const auto &rc = rem.profile.perCommand();
    ASSERT_EQ(bc.size(), rc.size());
    uint64_t base_fd = 0;
    uint64_t rem_fd = 0;
    for (size_t i = 0; i < bc.size(); ++i) {
        EXPECT_EQ(bc[i].retired, rc[i].retired) << "command " << i;
        EXPECT_EQ(bc[i].execute, rc[i].execute) << "command " << i;
        EXPECT_EQ(bc[i].nativeLib, rc[i].nativeLib) << "command " << i;
        EXPECT_LE(rc[i].fetchDecode, bc[i].fetchDecode)
            << "command " << i;
        base_fd += bc[i].fetchDecode;
        rem_fd += rc[i].fetchDecode;
    }
    EXPECT_EQ(base.profile.executeInsts(), rem.profile.executeInsts());

    // The delta is entirely in fetch/decode: strictly fewer per-trip
    // f/d instructions, paid for by a one-shot Precompile charge.
    EXPECT_LT(rem_fd, base_fd);
    EXPECT_LT(rem.profile.fetchDecodeInsts(),
              base.profile.fetchDecodeInsts());
    EXPECT_GT(rem.profile.precompileInsts(),
              base.profile.precompileInsts());
}

// --- golden equivalence: micro workloads -------------------------------

TEST(Remedies, MipsiThreadedGoldenMicro)
{
    expectGoldenPair(microBench(Lang::Mipsi, "a=b+c", 60));
    expectGoldenPair(microBench(Lang::Mipsi, "string-split", 40));
}

TEST(Remedies, JavaQuickGoldenMicro)
{
    expectGoldenPair(microBench(Lang::Java, "a=b+c", 60));
    expectGoldenPair(microBench(Lang::Java, "string-split", 40));
}

TEST(Remedies, TclBytecodeGoldenMicro)
{
    expectGoldenPair(microBench(Lang::Tcl, "a=b+c", 60));
    expectGoldenPair(microBench(Lang::Tcl, "if", 30));
}

// --- golden equivalence: one macro workload per remedy -----------------

TEST(Remedies, MipsiThreadedGoldenMacro)
{
    expectGoldenPair(macroSpec(Lang::Mipsi, "des"));
}

TEST(Remedies, JavaQuickGoldenMacro)
{
    expectGoldenPair(macroSpec(Lang::Java, "des"));
}

TEST(Remedies, TclBytecodeGoldenMacro)
{
    expectGoldenPair(macroSpec(Lang::Tcl, "des"));
}

// --- record/replay composition -----------------------------------------

void
roundTrip(BenchSpec spec)
{
    std::string dir =
        ::testing::TempDir() + "/interp_remedies_" + traceFileName(spec);
    TraceIo record;
    record.recordDir = dir;
    TraceIo replay;
    replay.replayDir = dir;
    Measurement live = runOrReplay(spec, record);
    Measurement tape = runOrReplay(spec, replay);
    EXPECT_EQ(live.commands, tape.commands);
    EXPECT_EQ(live.cycles, tape.cycles);
    EXPECT_EQ(live.profile.instructions(), tape.profile.instructions());
    EXPECT_EQ(live.profile.fetchDecodeInsts(),
              tape.profile.fetchDecodeInsts());
    EXPECT_EQ(live.profile.executeInsts(), tape.profile.executeInsts());
    EXPECT_EQ(live.profile.precompileInsts(),
              tape.profile.precompileInsts());
    const auto &lc = live.profile.perCommand();
    const auto &tc = tape.profile.perCommand();
    ASSERT_EQ(lc.size(), tc.size());
    for (size_t i = 0; i < lc.size(); ++i) {
        EXPECT_EQ(lc[i].retired, tc[i].retired) << "command " << i;
        EXPECT_EQ(lc[i].fetchDecode, tc[i].fetchDecode)
            << "command " << i;
        EXPECT_EQ(lc[i].execute, tc[i].execute) << "command " << i;
    }
}

TEST(Remedies, MipsiThreadedRecordReplay)
{
    roundTrip(microBench(Lang::MipsiThreaded, "a=b+c", 60));
}

TEST(Remedies, JavaQuickRecordReplay)
{
    roundTrip(microBench(Lang::JavaQuick, "string-split", 40));
}

TEST(Remedies, TclBytecodeRecordReplay)
{
    roundTrip(microBench(Lang::TclBytecode, "if", 30));
}

// --- mode metadata ------------------------------------------------------

TEST(Remedies, BaselineOfAndIsRemedy)
{
    EXPECT_EQ(baselineOf(Lang::MipsiThreaded), Lang::Mipsi);
    EXPECT_EQ(baselineOf(Lang::JavaQuick), Lang::Java);
    EXPECT_EQ(baselineOf(Lang::TclBytecode), Lang::Tcl);
    EXPECT_EQ(baselineOf(Lang::Perl), Lang::Perl);
    EXPECT_EQ(baselineOf(Lang::C), Lang::C);
    EXPECT_TRUE(isRemedy(Lang::MipsiThreaded));
    EXPECT_TRUE(isRemedy(Lang::JavaQuick));
    EXPECT_TRUE(isRemedy(Lang::TclBytecode));
    EXPECT_FALSE(isRemedy(Lang::Mipsi));
    EXPECT_FALSE(isRemedy(Lang::C));
}

TEST(Remedies, WithModesExpandsSuites)
{
    std::vector<BenchSpec> suite = macroSuite();
    std::vector<BenchSpec> base = withModes(suite, ModeSet::Baseline);
    ASSERT_EQ(base.size(), suite.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(base[i].lang, suite[i].lang);
        EXPECT_EQ(base[i].name, suite[i].name);
    }
    std::vector<BenchSpec> rems = withModes(suite, ModeSet::Remedies);
    for (const BenchSpec &spec : rems)
        EXPECT_TRUE(isRemedy(spec.lang)) << spec.name;
    std::vector<BenchSpec> all = withModes(suite, ModeSet::All);
    EXPECT_EQ(all.size(), suite.size() + rems.size());
}

// --- code-mutation guards ----------------------------------------------

TEST(Remedies, JvmRequickeningIsFatal)
{
    trace::Execution exec;
    vfs::FileSystem fs;
    jvm::Vm vm(exec, fs, /*quick=*/true);
    auto module = minic::compileBytecode(
        "int main() { int x = 1; return x; }");
    vm.load(module);
    vm.debugQuicken(0, 0);
    ScopedFatalThrow contain;
    EXPECT_THROW(vm.debugQuicken(0, 0), FatalError)
        << "rewriting an already-quickened bytecode must fatal";
}

TEST(Remedies, TclInvalidatingExecutedScriptIsFatal)
{
    trace::Execution exec;
    vfs::FileSystem fs;
    tclish::TclInterp interp(exec, fs, /*bytecode=*/true);
    const std::string script = "set x 7\nputs $x\n";
    auto result = interp.run(script, 1'000'000);
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(fs.stdoutCapture(), "7\n");
    interp.debugInvalidate("never compiled"); // unknown script: no-op
    ScopedFatalThrow contain;
    EXPECT_THROW(interp.debugInvalidate(script), FatalError)
        << "invalidating an executed compiled script must fatal";
}

TEST(Remedies, MipsiThreadedStoreToTextIsFatal)
{
    using namespace interp::mips;
    // Discover the text base with a throwaway link, then build the
    // real program: store a word over its own text segment.
    uint32_t text_base;
    {
        AsmBuilder probe;
        probe.li(V0, SYS_EXIT);
        probe.syscall();
        text_base = probe.link().textBase;
    }
    AsmBuilder b;
    b.la(T0, text_base);
    Inst sw;
    sw.op = Op::Sw;
    sw.rs = T0;
    sw.rt = ZERO;
    sw.imm = 0;
    b.emit(sw);
    b.li(V0, SYS_EXIT);
    b.syscall();
    Image img = b.link();
    ASSERT_EQ(img.textBase, text_base);

    {
        // The switch core permits self-modifying code.
        trace::Execution exec;
        vfs::FileSystem fs;
        mipsi::Mipsi vm(exec, fs);
        vm.load(img);
        auto result = vm.run(1'000'000);
        EXPECT_TRUE(result.exited);
    }
    {
        // The threaded core must refuse: its predecoded entries would
        // go stale.
        trace::Execution exec;
        vfs::FileSystem fs;
        mipsi::ThreadedMipsi vm(exec, fs);
        vm.load(img);
        ScopedFatalThrow contain;
        EXPECT_THROW(vm.run(1'000'000), FatalError);
    }
}

TEST(Remedies, MipsiThreadedPcOutsideTextIsFatal)
{
    using namespace interp::mips;
    AsmBuilder b;
    b.la(T0, 0x7000'0000); // far outside the text segment
    Inst jr;
    jr.op = Op::Jr;
    jr.rs = T0;
    b.emit(jr);
    Inst nop; // delay slot
    nop.op = Op::Sll;
    b.emit(nop);
    b.li(V0, SYS_EXIT);
    b.syscall();
    trace::Execution exec;
    vfs::FileSystem fs;
    mipsi::ThreadedMipsi vm(exec, fs);
    vm.load(b.link());
    ScopedFatalThrow contain;
    EXPECT_THROW(vm.run(1'000'000), FatalError)
        << "jumping outside the predecoded text must fatal";
}

} // namespace
