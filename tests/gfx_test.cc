/**
 * @file
 * Unit tests for the software rasterizer.
 */

#include <gtest/gtest.h>

#include "gfx/framebuffer.hh"

namespace {

using interp::gfx::Framebuffer;

TEST(Gfx, StartsBlack)
{
    Framebuffer fb(16, 16);
    EXPECT_EQ(fb.countPixels(0), 256);
}

TEST(Gfx, SetAndGetPixel)
{
    Framebuffer fb(8, 8);
    fb.setPixel(3, 4, 9);
    EXPECT_EQ(fb.pixel(3, 4), 9);
    EXPECT_EQ(fb.pixel(4, 3), 0);
}

TEST(Gfx, OutOfBoundsClipped)
{
    Framebuffer fb(4, 4);
    fb.setPixel(-1, 0, 1);
    fb.setPixel(0, -1, 1);
    fb.setPixel(4, 0, 1);
    fb.setPixel(0, 4, 1);
    EXPECT_EQ(fb.countPixels(1), 0);
    EXPECT_EQ(fb.pixel(-5, 2), 0);
}

TEST(Gfx, HorizontalLine)
{
    Framebuffer fb(10, 10);
    fb.drawLine(1, 5, 8, 5, 7);
    for (int x = 1; x <= 8; ++x)
        EXPECT_EQ(fb.pixel(x, 5), 7);
    EXPECT_EQ(fb.countPixels(7), 8);
}

TEST(Gfx, DiagonalLineEndpoints)
{
    Framebuffer fb(10, 10);
    fb.drawLine(0, 0, 9, 9, 3);
    EXPECT_EQ(fb.pixel(0, 0), 3);
    EXPECT_EQ(fb.pixel(9, 9), 3);
    EXPECT_EQ(fb.countPixels(3), 10);
}

TEST(Gfx, LineIsSymmetricUnderReversal)
{
    Framebuffer a(32, 32), b(32, 32);
    a.drawLine(2, 5, 27, 19, 1);
    b.drawLine(27, 19, 2, 5, 1);
    EXPECT_EQ(a.countPixels(1), b.countPixels(1));
}

TEST(Gfx, FillRectClipsAndCounts)
{
    Framebuffer fb(10, 10);
    fb.fillRect(6, 6, 10, 10, 2); // clipped to 4x4
    EXPECT_EQ(fb.countPixels(2), 16);
    fb.fillRect(0, 0, 3, 2, 5);
    EXPECT_EQ(fb.countPixels(5), 6);
}

TEST(Gfx, DrawRectOutlineOnly)
{
    Framebuffer fb(10, 10);
    fb.drawRect(1, 1, 5, 4, 6);
    // Perimeter of 5x4 = 2*5 + 2*4 - 4 corners counted once = 14.
    EXPECT_EQ(fb.countPixels(6), 14);
    EXPECT_EQ(fb.pixel(2, 2), 0) << "interior untouched";
}

TEST(Gfx, CircleContainsCardinalPoints)
{
    Framebuffer fb(32, 32);
    fb.drawCircle(16, 16, 10, 4);
    EXPECT_EQ(fb.pixel(26, 16), 4);
    EXPECT_EQ(fb.pixel(6, 16), 4);
    EXPECT_EQ(fb.pixel(16, 26), 4);
    EXPECT_EQ(fb.pixel(16, 6), 4);
    EXPECT_EQ(fb.pixel(16, 16), 0) << "center untouched";
}

TEST(Gfx, FillCircleAreaReasonable)
{
    Framebuffer fb(64, 64);
    fb.fillCircle(32, 32, 10, 1);
    int64_t area = fb.countPixels(1);
    // pi*r^2 ~ 314; integer rasterization should be close.
    EXPECT_GT(area, 280);
    EXPECT_LT(area, 350);
}

TEST(Gfx, TextAdvancesAndDraws)
{
    Framebuffer fb(64, 16);
    int advance = fb.drawText(1, 1, "AB", 9);
    EXPECT_EQ(advance, 12) << "6 px per glyph";
    EXPECT_GT(fb.countPixels(9), 10);
}

TEST(Gfx, TextFoldsLowercase)
{
    Framebuffer a(32, 16), b(32, 16);
    a.drawText(0, 0, "abc", 1);
    b.drawText(0, 0, "ABC", 1);
    EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(Gfx, ChecksumChangesWithContent)
{
    Framebuffer fb(16, 16);
    uint64_t before = fb.checksum();
    fb.setPixel(5, 5, 1);
    EXPECT_NE(fb.checksum(), before);
}

TEST(Gfx, ClearResets)
{
    Framebuffer fb(16, 16);
    fb.fillRect(0, 0, 16, 16, 3);
    fb.clear(0);
    EXPECT_EQ(fb.countPixels(0), 256);
}

TEST(Gfx, DeterministicChecksumGolden)
{
    Framebuffer fb(64, 64);
    fb.clear(0);
    fb.drawLine(0, 0, 63, 63, 1);
    fb.fillRect(10, 10, 20, 20, 2);
    fb.drawCircle(40, 40, 12, 3);
    fb.drawText(2, 50, "GOLD", 4);
    // The scene must render identically forever (golden value).
    uint64_t golden = fb.checksum();
    Framebuffer fb2(64, 64);
    fb2.clear(0);
    fb2.drawLine(0, 0, 63, 63, 1);
    fb2.fillRect(10, 10, 20, 20, 2);
    fb2.drawCircle(40, 40, 12, 3);
    fb2.drawText(2, 50, "GOLD", 4);
    EXPECT_EQ(fb2.checksum(), golden);
}

} // namespace
