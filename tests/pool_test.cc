/**
 * @file
 * Tests for the parallel suite runner: the thread pool itself, the
 * jobs-option plumbing, failure containment (exceptions and fatal()
 * program errors become failed Measurements, not process exits), and
 * the determinism guarantee — a parallel suite run is bit-identical
 * to a serial one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/parallel.hh"
#include "harness/pool.hh"
#include "harness/runner.hh"
#include "support/detalloc.hh"
#include "support/logging.hh"

namespace {

using namespace interp;
using namespace interp::harness;

// --- ThreadPool --------------------------------------------------------

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                ++count;
            });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(ThreadPool, QueueAndIdleGauges)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.queuedCount(), 0u);
    EXPECT_EQ(pool.idleWorkers(), 2u);

    // Park both workers on a gate, then pile up three more jobs: the
    // gauges must read exactly 3 queued / 0 idle — the admission-
    // control snapshot interpd sheds on.
    std::mutex gate_mu;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<int> parked{0};
    for (int i = 0; i < 2; ++i)
        pool.submit([&] {
            std::unique_lock<std::mutex> lock(gate_mu);
            ++parked;
            gate_cv.wait(lock, [&] { return gate_open; });
        });
    while (parked.load() < 2)
        std::this_thread::yield();
    EXPECT_EQ(pool.queuedCount(), 0u) << "both jobs picked up";
    EXPECT_EQ(pool.idleWorkers(), 0u);

    for (int i = 0; i < 3; ++i)
        pool.submit([] {});
    EXPECT_EQ(pool.queuedCount(), 3u);
    EXPECT_EQ(pool.idleWorkers(), 0u);

    {
        std::lock_guard<std::mutex> lock(gate_mu);
        gate_open = true;
    }
    gate_cv.notify_all();
    pool.wait();
    EXPECT_EQ(pool.queuedCount(), 0u);
    EXPECT_EQ(pool.idleWorkers(), 2u);
}

// --- parallelFor -------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexOnce)
{
    for (int jobs : {1, 2, 8}) {
        std::vector<std::atomic<int>> hits(64);
        parallelFor(hits.size(), jobs,
                    [&hits](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ParallelFor, MoreJobsThanWork)
{
    std::atomic<int> count{0};
    parallelFor(3, 16, [&count](size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

// --- jobs-option plumbing ----------------------------------------------

TEST(ParseJobs, StripsOptionForms)
{
    const char *forms[][3] = {
        {"prog", "--jobs", "4"},
        {"prog", "--jobs=4", nullptr},
        {"prog", "-j4", nullptr},
        {"prog", "-j", "4"},
    };
    for (auto &form : forms) {
        char a0[16], a1[16], a2[16];
        char *argv[4] = {a0, a1, nullptr, nullptr};
        int argc = 2;
        std::strcpy(a0, form[0]);
        std::strcpy(a1, form[1]);
        if (form[2]) {
            std::strcpy(a2, form[2]);
            argv[2] = a2;
            argc = 3;
        }
        EXPECT_EQ(parseJobs(argc, argv), 4);
        EXPECT_EQ(argc, 1) << "option should be stripped";
        EXPECT_STREQ(argv[0], "prog");
    }
}

TEST(ParseJobs, LeavesOtherArgs)
{
    char a0[] = "prog", a1[] = "des", a2[] = "--jobs", a3[] = "2";
    char *argv[] = {a0, a1, a2, a3, nullptr};
    int argc = 4;
    EXPECT_EQ(parseJobs(argc, argv), 2);
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "des");
}

TEST(ParseJobs, ZeroMeansHardwareThreads)
{
    char a0[] = "prog", a1[] = "--jobs=0";
    char *argv[] = {a0, a1, nullptr};
    int argc = 2;
    EXPECT_GE(parseJobs(argc, argv), 1);
}

TEST(ParseJobs, RejectsGarbage)
{
    char a0[] = "prog", a1[] = "--jobs=many";
    char *argv[] = {a0, a1, nullptr};
    int argc = 2;
    ScopedFatalThrow contain;
    EXPECT_THROW(parseJobs(argc, argv), FatalError);
}

// --- failure containment -----------------------------------------------

TEST(RunSuite, ResultsInSpecOrder)
{
    // Jobs finish out of order (later specs sleep less); results must
    // still come back in spec order.
    std::vector<BenchSpec> specs(8);
    for (size_t i = 0; i < specs.size(); ++i) {
        specs[i].lang = Lang::Perl;
        specs[i].name = "spec" + std::to_string(i);
    }
    auto results = runSuiteWith(
        specs, 4, [&specs](const BenchSpec &spec, size_t i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(specs.size() - i));
            Measurement m;
            m.lang = spec.lang;
            m.name = spec.name;
            m.commands = i;
            return m;
        });
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].name, specs[i].name);
        EXPECT_EQ(results[i].commands, i);
    }
}

TEST(RunSuite, ExceptionBecomesFailedMeasurement)
{
    std::vector<BenchSpec> specs(4);
    for (size_t i = 0; i < specs.size(); ++i)
        specs[i].name = "job" + std::to_string(i);
    auto results = runSuiteWith(
        specs, 2, [](const BenchSpec &spec, size_t i) -> Measurement {
            if (i == 2)
                throw std::runtime_error("boom in job 2");
            Measurement m;
            m.name = spec.name;
            m.finished = true;
            return m;
        });
    ASSERT_EQ(results.size(), 4u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_TRUE(results[2].failed);
    EXPECT_NE(results[2].error.find("boom in job 2"), std::string::npos);
    EXPECT_EQ(results[2].name, "job2") << "failed result keeps its slot";
    EXPECT_TRUE(results[3].finished) << "later jobs unaffected";
}

TEST(RunSuite, FatalProgramErrorIsContained)
{
    // A syntactically broken program makes the compiler call fatal();
    // in a suite that must fail the one measurement, not the process.
    BenchSpec good;
    good.lang = Lang::Perl;
    good.name = "good";
    good.source = "$a = 1 + 2; print \"$a\";\n";
    BenchSpec bad;
    bad.lang = Lang::Perl;
    bad.name = "bad";
    bad.source = "for ($i = 0; ; { nonsense\n";
    std::vector<BenchSpec> specs = {good, bad, good};

    SuiteOptions opt;
    opt.jobs = 2;
    auto results = runSuite(specs, opt);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_EQ(results[0].stdoutText, "3");
    EXPECT_TRUE(results[1].failed);
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_FALSE(results[2].failed);
    EXPECT_EQ(results[2].stdoutText, "3");
}

// --- determinism: parallel == serial -----------------------------------

// Every numeric observable of a Measurement, serialized for equality
// comparison across runs.
std::string
fingerprint(const Measurement &m)
{
    std::ostringstream out;
    out << langName(m.lang) << '/' << m.name << ':' << m.programBytes
        << ',' << m.commands << ',' << m.cycles << ',' << m.finished
        << ',' << m.failed;
    const trace::Profile &p = m.profile;
    out << '|' << p.commands() << ',' << p.instructions() << ','
        << p.fetchDecodeInsts() << ',' << p.executeInsts() << ','
        << p.precompileInsts() << ',' << p.nativeLibInsts() << ','
        << p.memModelInsts() << ',' << p.systemInsts() << ','
        << p.memModelAccesses();
    out << '|' << m.breakdown.busyPct;
    for (double pct : m.breakdown.stallPct)
        out << ',' << pct;
    out << '|' << m.imissPer100 << '|' << m.stdoutText;
    return out.str();
}

TEST(DetAlloc, LifoReuseOfSameSizeClass)
{
    if (!support::deterministicAllocatorActive())
        GTEST_SKIP() << "system allocator in use (sanitizer build)";
    // Strict LIFO per size class is what makes heap-reuse aliasing a
    // pure function of the run's own alloc/free sequence.
    void *a = new char[40];
    delete[] (char *)a;
    void *b = new char[40];
    EXPECT_EQ(a, b) << "most recently freed cell must be reused first";
    EXPECT_EQ((uintptr_t)b % 16, 0u) << "cells are 16-byte aligned";
    delete[] (char *)b;
}

TEST(RunSuite, ParallelBitIdenticalToSerial)
{
    if (!support::deterministicAllocatorActive())
        GTEST_SKIP() << "bit-exact reproducibility needs the "
                        "deterministic allocator (off under sanitizers)";
    // The full macro suite under a tight command budget: every
    // language and workload generator is exercised, but each job stays
    // fast. The budget applies identically to both passes, so the
    // comparison is exact.
    std::vector<BenchSpec> specs = macroSuite();
    for (BenchSpec &spec : specs)
        spec.maxCommands = 20'000;

    SuiteOptions serial;
    serial.jobs = 1;
    SuiteOptions parallel;
    parallel.jobs = 4;
    auto serial_results = runSuite(specs, serial);
    auto parallel_results = runSuite(specs, parallel);

    ASSERT_EQ(serial_results.size(), parallel_results.size());
    for (size_t i = 0; i < serial_results.size(); ++i)
        EXPECT_EQ(fingerprint(serial_results[i]),
                  fingerprint(parallel_results[i]))
            << "spec " << i << " (" << specs[i].name << ")";
}

TEST(RunSuite, SerialRunsAreRepeatable)
{
    if (!support::deterministicAllocatorActive())
        GTEST_SKIP() << "bit-exact reproducibility needs the "
                        "deterministic allocator (off under sanitizers)";
    // Same process, run twice: heap state differs between passes, so
    // this only holds because synthetic data addresses are derived
    // from touch order, not raw pointer values — and because heap
    // reuse follows each run's own alloc/free sequence (detalloc).
    std::vector<BenchSpec> specs;
    for (BenchSpec &spec : macroSuite())
        if (spec.name == "des" &&
            (spec.lang == Lang::Perl || spec.lang == Lang::Tcl))
            specs.push_back(std::move(spec));
    for (BenchSpec &spec : specs)
        spec.maxCommands = 20'000;

    auto first = runSuite(specs, {});
    auto second = runSuite(specs, {});
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(fingerprint(first[i]), fingerprint(second[i]));
}

} // namespace
