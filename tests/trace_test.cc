/**
 * @file
 * Unit tests for the instrumentation layer: code registry, address
 * mapping, routine scopes, attribution, and the Profile sink.
 */

#include <gtest/gtest.h>

#include <vector>

#include "support/logging.hh"
#include "trace/code_registry.hh"
#include "trace/execution.hh"
#include "trace/profile.hh"

namespace {

using namespace interp::trace;

/** Sink that records every bundle. */
class Collector : public Sink
{
  public:
    void onBundle(const Bundle &b) override { bundles.push_back(b); }
    std::vector<Bundle> bundles;
};

/**
 * Sink that records the full event stream (bundles, batch boundaries,
 * commands, memory-model accesses) to check delivery order.
 */
class StreamCollector : public Sink
{
  public:
    void
    onBatch(const BundleBatch &batch) override
    {
        ++batches;
        for (const Bundle &b : batch)
            events.push_back({'b', b.count});
    }
    void onBundle(const Bundle &b) override
    {
        events.push_back({'b', b.count});
    }
    void onCommand(CommandId id) override { events.push_back({'c', id}); }
    void onMemModelAccess() override { events.push_back({'m', 0}); }

    std::vector<std::pair<char, uint32_t>> events;
    int batches = 0;
};

TEST(CodeRegistry, RoutinesDoNotOverlap)
{
    CodeRegistry reg;
    auto a = reg.registerRoutine("a", 10);
    auto b = reg.registerRoutine("b", 100);
    auto c = reg.registerRoutine("c", 1);
    const auto &ra = reg.routine(a);
    const auto &rb = reg.routine(b);
    const auto &rc = reg.routine(c);
    EXPECT_GE(rb.base, ra.base + ra.sizeInsts * 4);
    EXPECT_GE(rc.base, rb.base + rb.sizeInsts * 4);
    EXPECT_EQ(ra.base % 64, 0u) << "routines are 64-byte aligned";
}

TEST(CodeRegistry, SegmentsAreDisjoint)
{
    CodeRegistry reg;
    auto a = reg.registerRoutine("core", 1000, Segment::InterpCore);
    auto b = reg.registerRoutine("lib", 1000, Segment::NativeLib);
    EXPECT_NE(reg.routine(a).base & 0xfc000000,
              reg.routine(b).base & 0xfc000000);
}

TEST(AddressMapper, PreservesGranuleOffset)
{
    AddressMapper mapper;
    alignas(16) char buf[16] = {};
    uint32_t s = mapper.map(&buf[5]);
    uint32_t mask = (1u << AddressMapper::kGranuleBits) - 1;
    EXPECT_EQ(s & mask, 5u);
}

TEST(AddressMapper, SequentialWalkStaysSequential)
{
    AddressMapper mapper;
    alignas(16) static char arr[64];
    uint32_t a = mapper.map(&arr[0]);
    uint32_t b = mapper.map(&arr[16]);
    uint32_t c = mapper.map(&arr[36]);
    EXPECT_EQ(b - a, 16u);
    EXPECT_EQ(c - a, 36u);
}

TEST(AddressMapper, DistinctGranulesDistinctSynthGranules)
{
    AddressMapper mapper;
    alignas(16) static char big[3 * 16];
    uint32_t a = mapper.map(&big[0]);
    uint32_t b = mapper.map(&big[2 * 16]);
    EXPECT_NE(a >> AddressMapper::kGranuleBits,
              b >> AddressMapper::kGranuleBits);
    EXPECT_EQ(mapper.granulesTouched(), 2u);
}

TEST(AddressMapper, IndependentOfHostAddressValues)
{
    // Two mappers fed accesses with the same touch order and the same
    // intra-granule offsets produce identical synthetic addresses even
    // though the host base addresses differ — the property that makes
    // simulated cycles reproducible across ASLR and across threads.
    AddressMapper m1, m2;
    alignas(16) static char region1[256];
    alignas(16) static char region2[256];
    const size_t offsets[] = {0, 3, 48, 17, 240, 5};
    for (size_t off : offsets)
        EXPECT_EQ(m1.map(&region1[off]), m2.map(&region2[off]));
}

TEST(CommandSet, InternIsIdempotent)
{
    CommandSet set;
    auto a = set.intern("add");
    auto b = set.intern("sub");
    EXPECT_EQ(set.intern("add"), a);
    EXPECT_NE(a, b);
    EXPECT_EQ(set.name(a), "add");
    EXPECT_EQ(set.size(), 2u);
}

TEST(Execution, AluEmitsSequentialPcs)
{
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    auto r = exec.code().registerRoutine("work", 100);
    {
        RoutineScope scope(exec, r);
        exec.alu(5);
    }
    exec.flush();
    // call, alu-bundle, return
    ASSERT_EQ(sink.bundles.size(), 3u);
    EXPECT_EQ(sink.bundles[0].cls, InstClass::Call);
    EXPECT_EQ(sink.bundles[1].cls, InstClass::IntAlu);
    EXPECT_EQ(sink.bundles[1].count, 5u);
    EXPECT_EQ(sink.bundles[1].pc, exec.code().routine(r).base);
    EXPECT_EQ(sink.bundles[2].cls, InstClass::Return);
}

TEST(Execution, WrapEmitsTakenBranch)
{
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    auto r = exec.code().registerRoutine("tiny", 4);
    {
        RoutineScope scope(exec, r);
        exec.alu(10); // must wrap inside a 4-instruction routine
    }
    exec.flush();
    int branches = 0;
    uint32_t insts = 0;
    for (const auto &b : sink.bundles) {
        if (b.cls == InstClass::CondBranch) {
            EXPECT_TRUE(b.taken);
            ++branches;
        }
        insts += b.count;
        // PCs must stay inside the routine body (or be the call/ret).
        if (b.cls == InstClass::IntAlu) {
            const auto &routine = exec.code().routine(r);
            EXPECT_GE(b.pc, routine.base);
            EXPECT_LT(b.pc, routine.base + routine.sizeInsts * 4);
        }
    }
    EXPECT_GT(branches, 0);
    // Wrap branches are carved out of the requested count, so the
    // total emitted stays exactly what was asked for (plus call/ret).
    EXPECT_EQ(insts, 10u + 2u);
}

TEST(Execution, CategoriesAndFlagsPropagate)
{
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    exec.setCategory(Category::FetchDecode);
    exec.alu(1);
    {
        CategoryScope cat(exec, Category::Execute);
        MemModelScope mm(exec);
        exec.alu(1);
    }
    exec.alu(1);
    exec.flush();
    ASSERT_EQ(sink.bundles.size(), 3u);
    EXPECT_EQ(sink.bundles[0].cat, Category::FetchDecode);
    EXPECT_FALSE(sink.bundles[0].memModel);
    EXPECT_EQ(sink.bundles[1].cat, Category::Execute);
    EXPECT_TRUE(sink.bundles[1].memModel);
    EXPECT_EQ(sink.bundles[2].cat, Category::FetchDecode);
    EXPECT_FALSE(sink.bundles[2].memModel);
}

TEST(Execution, DispatchAndEndDispatch)
{
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    auto h = exec.code().registerRoutine("handler", 32);
    exec.dispatch(h);
    exec.alu(2);
    exec.endDispatch();
    exec.flush();
    ASSERT_EQ(sink.bundles.size(), 3u);
    EXPECT_EQ(sink.bundles[0].cls, InstClass::IndirectJump);
    EXPECT_EQ(sink.bundles[0].target, exec.code().routine(h).base);
    EXPECT_EQ(sink.bundles[2].cls, InstClass::Jump);
}

TEST(Execution, LoadsCarryMappedAddresses)
{
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    int value = 0;
    exec.load(&value);
    exec.store(&value);
    exec.flush();
    ASSERT_EQ(sink.bundles.size(), 2u);
    EXPECT_EQ(sink.bundles[0].cls, InstClass::Load);
    EXPECT_EQ(sink.bundles[0].memAddr, sink.bundles[1].memAddr);
}

TEST(Execution, CommandAttribution)
{
    Execution exec;
    CommandSet set;
    Profile profile;
    exec.addSink(&profile);
    auto add = set.intern("add");
    auto mul = set.intern("mul");

    exec.setCategory(Category::FetchDecode);
    exec.alu(10);
    exec.beginCommand(add);
    exec.setCategory(Category::Execute);
    exec.alu(3);
    exec.setCategory(Category::FetchDecode);
    exec.alu(10);
    exec.beginCommand(mul);
    exec.setCategory(Category::Execute);
    exec.alu(7);
    exec.flush();

    EXPECT_EQ(profile.commands(), 2u);
    EXPECT_EQ(profile.perCommand()[add].retired, 1u);
    EXPECT_EQ(profile.perCommand()[add].execute, 3u);
    EXPECT_EQ(profile.perCommand()[mul].execute, 7u);
    // The first fetch/decode block ran before any command and is
    // unattributed; the second belongs to `add`.
    EXPECT_EQ(profile.perCommand()[add].fetchDecode, 10u);
    EXPECT_EQ(profile.fetchDecodeInsts(), 20u);
    EXPECT_EQ(profile.executeInsts(), 10u);
}

TEST(Profile, ByExecuteSortsDescending)
{
    Execution exec;
    CommandSet set;
    Profile profile;
    exec.addSink(&profile);
    auto small = set.intern("small");
    auto big = set.intern("big");
    exec.beginCommand(small);
    exec.alu(5);
    exec.beginCommand(big);
    exec.alu(50);
    exec.flush();
    auto sorted = profile.byExecuteInsts();
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_EQ(sorted[0].first, big);
    EXPECT_DOUBLE_EQ(profile.cumulativeExecuteShare(1), 50.0 / 55.0);
    EXPECT_DOUBLE_EQ(profile.cumulativeExecuteShare(2), 1.0);
}

TEST(Profile, SystemWorkExcludedFromUserCounts)
{
    Execution exec;
    Profile profile;
    exec.addSink(&profile);
    exec.alu(10);
    {
        SystemScope sys(exec);
        exec.alu(90);
    }
    exec.flush();
    EXPECT_EQ(profile.instructions(), 100u);
    EXPECT_EQ(profile.systemInsts(), 90u);
    EXPECT_EQ(profile.userInstructions(), 10u);
    EXPECT_EQ(profile.executeInsts(), 10u);
}

TEST(Profile, MemModelAccounting)
{
    Execution exec;
    Profile profile;
    exec.addSink(&profile);
    for (int i = 0; i < 4; ++i) {
        MemModelScope mm(exec);
        exec.noteMemModelAccess();
        exec.alu(30);
    }
    exec.alu(80);
    exec.flush();
    EXPECT_EQ(profile.memModelAccesses(), 4u);
    EXPECT_DOUBLE_EQ(profile.memModelCostPerAccess(), 30.0);
    EXPECT_DOUBLE_EQ(profile.memModelFraction(), 120.0 / 200.0);
}

TEST(Execution, NestedRoutinesReturnToCaller)
{
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    auto outer = exec.code().registerRoutine("outer", 64);
    auto inner = exec.code().registerRoutine("inner", 64);
    {
        RoutineScope a(exec, outer);
        exec.alu(1);
        {
            RoutineScope b(exec, inner);
            exec.alu(1);
        }
        exec.alu(1);
    }
    exec.flush();
    // The post-call alu must continue inside `outer`.
    const auto &routine = exec.code().routine(outer);
    const Bundle &after = sink.bundles[sink.bundles.size() - 2];
    EXPECT_EQ(after.cls, InstClass::IntAlu);
    EXPECT_GE(after.pc, routine.base);
    EXPECT_LT(after.pc, routine.base + routine.sizeInsts * 4);
}

TEST(Execution, LateSinkAttachIsFatal)
{
    // A sink attached mid-run would silently miss the prefix of the
    // stream (a partial trace recording, a wrong profile); the
    // Execution seals its sink list at the first emitted event.
    Execution exec;
    Profile early;
    exec.addSink(&early);
    exec.alu(1);
    Profile late;
    interp::ScopedFatalThrow contain;
    EXPECT_THROW(exec.addSink(&late), interp::FatalError);
}

TEST(Execution, LateSinkAttachAfterCommandIsFatal)
{
    Execution exec;
    CommandSet set;
    exec.beginCommand(set.intern("cmd"));
    Profile late;
    interp::ScopedFatalThrow contain;
    EXPECT_THROW(exec.addSink(&late), interp::FatalError);
}

TEST(Batch, FullBatchDeliversWithoutFlush)
{
    // The batch drains to the sinks on its own once kCapacity bundles
    // accumulate; only the tail needs an explicit flush.
    Execution exec;
    StreamCollector sink;
    exec.addSink(&sink);
    for (uint32_t i = 0; i < BundleBatch::kCapacity; ++i)
        exec.load(&sink);
    EXPECT_EQ(sink.batches, 1);
    EXPECT_EQ(sink.events.size(), (size_t)BundleBatch::kCapacity);
    exec.load(&sink);
    EXPECT_EQ(sink.batches, 1) << "one pending bundle must not deliver";
    exec.flush();
    EXPECT_EQ(sink.batches, 2);
    EXPECT_EQ(sink.events.size(), (size_t)BundleBatch::kCapacity + 1);
}

TEST(Batch, PushIntoFullBatchIsFatal)
{
    // Regression: push used to write past the 256-bundle capacity
    // silently (clobbering a neighbouring column in the SoA layout);
    // the 257th push must now die in fatal() instead.
    BundleBatch batch;
    Bundle b;
    b.pc = 4;
    b.count = 1;
    for (uint32_t i = 0; i < BundleBatch::kCapacity; ++i)
        batch.push(b);
    EXPECT_EQ(batch.size(), BundleBatch::kCapacity);
    interp::ScopedFatalThrow contain;
    EXPECT_THROW(batch.push(b), interp::FatalError);
    EXPECT_THROW(batch.pushPacked(4, 1, 0, 0, kNoCommand, 0, 0),
                 interp::FatalError);
}

TEST(Batch, SoaRoundTripPreservesBundleFields)
{
    // push() packs into columns; get()/iteration reconstructs. Every
    // field must survive the round trip, including the packed
    // class/category and flag bits.
    BundleBatch batch;
    Bundle b;
    b.pc = 0x1234;
    b.count = 7;
    b.cls = InstClass::CondBranch;
    b.cat = Category::FetchDecode;
    b.memModel = true;
    b.native = false;
    b.system = true;
    b.taken = true;
    b.command = 42;
    b.memAddr = 0xdeadbeef;
    b.target = 0x4321;
    batch.push(b);
    Bundle r = batch[0];
    EXPECT_EQ(r.pc, b.pc);
    EXPECT_EQ(r.count, b.count);
    EXPECT_EQ(r.cls, b.cls);
    EXPECT_EQ(r.cat, b.cat);
    EXPECT_EQ(r.memModel, b.memModel);
    EXPECT_EQ(r.native, b.native);
    EXPECT_EQ(r.system, b.system);
    EXPECT_EQ(r.taken, b.taken);
    EXPECT_EQ(r.command, b.command);
    EXPECT_EQ(r.memAddr, b.memAddr);
    EXPECT_EQ(r.target, b.target);
}

TEST(Batch, NonBundleEventsKeepStreamOrder)
{
    // Commands and memory-model accesses flush the pending batch
    // first, so every sink observes the exact emission order — the
    // property that keeps recorded traces byte-identical.
    Execution exec;
    CommandSet set;
    StreamCollector sink;
    exec.addSink(&sink);
    auto add = set.intern("add");
    exec.alu(2);
    exec.beginCommand(add);
    exec.alu(3);
    exec.noteMemModelAccess();
    exec.alu(4);
    exec.flush();
    std::vector<std::pair<char, uint32_t>> expected = {
        {'b', 2}, {'c', add}, {'b', 3}, {'m', 0}, {'b', 4}};
    EXPECT_EQ(sink.events, expected);
}

TEST(Batch, DefaultOnBatchForwardsToOnBundle)
{
    // A sink that only implements onBundle still sees every bundle,
    // in order, through Sink::onBatch's default forwarding loop.
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    exec.alu(1);
    exec.shortInt(2);
    exec.floatOp(3);
    exec.flush();
    ASSERT_EQ(sink.bundles.size(), 3u);
    EXPECT_EQ(sink.bundles[0].cls, InstClass::IntAlu);
    EXPECT_EQ(sink.bundles[1].cls, InstClass::ShortInt);
    EXPECT_EQ(sink.bundles[2].cls, InstClass::FloatOp);
}

TEST(Batch, RemoveSinkDeliversPendingFirst)
{
    Execution exec;
    Collector sink;
    exec.addSink(&sink);
    exec.alu(7);
    exec.removeSink(&sink);
    ASSERT_EQ(sink.bundles.size(), 1u);
    EXPECT_EQ(sink.bundles[0].count, 7u);
}

TEST(Batch, FlushIsIdempotent)
{
    Execution exec;
    StreamCollector sink;
    exec.addSink(&sink);
    exec.alu(1);
    exec.flush();
    exec.flush();
    EXPECT_EQ(sink.batches, 1);
    EXPECT_EQ(sink.events.size(), 1u);
}

} // namespace
