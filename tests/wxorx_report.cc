/**
 * @file
 * W^X evidence tool: proves no jit translation unit ever maps memory
 * writable and executable at the same time.
 *
 * A sampler thread re-reads /proc/self/maps as fast as it can while
 * the main thread churns through JitArtifact build/run cycles — the
 * full executable-region lifetime (map RW, emit, seal to RX, execute,
 * unmap) repeated enough times that any window where a region is
 * rwx-mapped would be sampled. Exit status is the report: nonzero if
 * any rwx anonymous mapping was ever observed, zero otherwise.
 *
 * Registered as the `w_xor_x_report` ctest (label: jit). Like
 * vectorization_report, this checks the artifact the build actually
 * produced, not a promise in a comment. On hosts without
 * /proc/self/maps or without the native backend the property is
 * vacuous and the tool reports a skip (exit 0).
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "jit/artifact.hh"

using interp::jit::JitArtifact;

namespace {

std::atomic<bool> done{false};
std::atomic<uint64_t> samples{0};
std::atomic<bool> sawRwx{false};

/** One pass over /proc/self/maps; records any w+x line. */
bool
scanMaps(std::vector<std::string> &offenders)
{
    std::FILE *f = std::fopen("/proc/self/maps", "r");
    if (!f)
        return false;
    char line[512];
    bool any = false;
    while (std::fgets(line, sizeof line, f)) {
        // "address perms offset dev inode path"; perms is rwxp-style.
        const char *sp = std::strchr(line, ' ');
        if (!sp || std::strlen(sp) < 5)
            continue;
        const char *perms = sp + 1;
        if (perms[1] == 'w' && perms[2] == 'x') {
            any = true;
            offenders.push_back(line);
        }
    }
    std::fclose(f);
    return any;
}

uint8_t
spinStep(void *ctx, uint32_t index)
{
    auto *sum = (uint64_t *)ctx;
    *sum += index;
    return 0;
}

void
sampler()
{
    std::vector<std::string> offenders;
    while (!done.load(std::memory_order_relaxed)) {
        if (scanMaps(offenders)) {
            sawRwx.store(true);
            for (const std::string &line : offenders)
                std::fprintf(stderr, "rwx mapping: %s", line.c_str());
            return;
        }
        offenders.clear();
        samples.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace

int
main()
{
    if (!std::fopen("/proc/self/maps", "r")) {
        std::printf("w_xor_x_report: no /proc/self/maps; skipped\n");
        return 0;
    }

    std::thread t(sampler);

    // Enough build/run cycles that the sampler sees every lifetime
    // phase many times over; steps vary so region sizes span pages.
    constexpr int kCycles = 400;
    int native = 0;
    uint64_t sum = 0;
    for (int i = 0; i < kCycles && !sawRwx.load(); ++i) {
        auto art = JitArtifact::build(&spinStep,
                                      64 + (uint32_t)(i % 7) * 64);
        if (art->native())
            ++native;
        art->enter(&sum, 0);
    }

    done.store(true);
    t.join();

    std::printf("w_xor_x_report: %d/%d native builds, %llu map scans, "
                "rwx observed: %s\n",
                native, kCycles,
                (unsigned long long)samples.load(),
                sawRwx.load() ? "YES" : "no");
    if (native == 0)
        std::printf("w_xor_x_report: portable mode only (no "
                    "executable mappings to check)\n");
    return sawRwx.load() ? 1 : 0;
}
