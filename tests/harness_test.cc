/**
 * @file
 * Tests for the benchmark harness: workload generators, the runner,
 * the micro/macro suites, and cross-mode output agreement.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/workloads.hh"

namespace {

using namespace interp;
using namespace interp::harness;

// --- workload generators -----------------------------------------------

TEST(Workloads, Deterministic)
{
    EXPECT_EQ(compressInput(3000), compressInput(3000));
    EXPECT_EQ(txt2htmlInput(50), txt2htmlInput(50));
    EXPECT_EQ(plexusInput(10), plexusInput(10));
    EXPECT_EQ(cc1Input(20), cc1Input(20));
}

TEST(Workloads, SizesScale)
{
    EXPECT_GT(compressInput(8000).size(), 7900u);
    EXPECT_LT(compressInput(1000).size(), 1200u);
    EXPECT_GT(weblintInput(200).size(), weblintInput(20).size());
}

TEST(Workloads, ReadFileIsExactly4K)
{
    EXPECT_EQ(readFileInput().size(), 4096u);
}

TEST(Workloads, InstallPutsAllFiles)
{
    vfs::FileSystem fs;
    installAllInputs(fs);
    for (const char *name :
         {"compress.in", "cc1.in", "javac.in", "txt2html.in",
          "weblint.in", "a2ps.in", "requests.in", "tcllex.in",
          "tcltags.in", "read4k.in"})
        EXPECT_TRUE(fs.exists(name)) << name;
}

TEST(Workloads, PlexusInputIsHttpShaped)
{
    std::string log = plexusInput(5);
    EXPECT_NE(log.find("GET "), std::string::npos);
    EXPECT_NE(log.find("HTTP/1.0"), std::string::npos);
    EXPECT_NE(log.find("User-Agent: "), std::string::npos);
}

// --- runner ------------------------------------------------------------

TEST(Runner, LangNames)
{
    EXPECT_STREQ(langName(Lang::C), "C");
    EXPECT_STREQ(langName(Lang::Mipsi), "MIPSI");
    EXPECT_STREQ(langName(Lang::Java), "Java");
    EXPECT_STREQ(langName(Lang::Perl), "Perl");
    EXPECT_STREQ(langName(Lang::Tcl), "Tcl");
}

TEST(Runner, MacroSuiteShape)
{
    auto suite = macroSuite();
    ASSERT_EQ(suite.size(), 37u)
        << "1 C + 11 MIPSI + 9 Java + 8 Perl + 8 Tcl";
    int des_count = 0;
    for (const auto &spec : suite) {
        EXPECT_FALSE(spec.source.empty()) << spec.name;
        if (spec.name == "des")
            ++des_count;
    }
    EXPECT_EQ(des_count, 5) << "des is the common reference point";

    // The legacy Table 2 rows keep their historical positions: the
    // registry's order keys preserve the pre-registry suite prefix.
    EXPECT_EQ(suite[0].name, "des");
    EXPECT_EQ(suite[0].lang, Lang::C);
    EXPECT_EQ(suite[1].name, "des");
    EXPECT_EQ(suite[1].lang, Lang::Mipsi);
    EXPECT_EQ(suite[2].name, "compress");
}

TEST(Runner, MeasurementFieldsPopulated)
{
    BenchSpec spec;
    spec.lang = Lang::Perl;
    spec.name = "tiny";
    spec.source = "$x = 2 + 3; print \"$x\";";
    Measurement m = run(spec);
    EXPECT_TRUE(m.finished);
    EXPECT_EQ(m.stdoutText, "5");
    EXPECT_GT(m.commands, 0u);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.profile.instructions(), 0u);
    EXPECT_GT(m.breakdown.busyPct, 0.0);
    EXPECT_FALSE(m.commandNames.empty());
    EXPECT_GT(m.programBytes, 0u);
}

TEST(Runner, BudgetStopsRunaway)
{
    BenchSpec spec;
    spec.lang = Lang::Tcl;
    spec.name = "forever";
    spec.source = "while {1} { set x 1 }";
    spec.maxCommands = 2000;
    Measurement m = run(spec, {}, nullptr, false);
    EXPECT_FALSE(m.finished);
    EXPECT_GE(m.commands, 2000u);
    EXPECT_LT(m.commands, 2100u);
}

TEST(Runner, MachineConfigOverride)
{
    BenchSpec spec = microBench(Lang::Tcl, "a=b+c", 60);
    Measurement base = run(spec);
    sim::MachineConfig big;
    big.icache.sizeBytes = 64 * 1024;
    big.icache.assoc = 4;
    Measurement wide = run(spec, {}, &big);
    EXPECT_LT(wide.cycles, base.cycles)
        << "a big I$ must help a Tcl workload";
}

// --- micro suite -------------------------------------------------------

TEST(Micro, AllOpsRunInAllLanguages)
{
    for (const std::string &op : microOps()) {
        for (Lang lang : {Lang::C, Lang::Mipsi, Lang::Java, Lang::Perl,
                          Lang::Tcl}) {
            BenchSpec spec = microBench(lang, op, 3);
            Measurement m = run(spec, {}, nullptr, false);
            EXPECT_TRUE(m.finished)
                << op << " in " << langName(lang);
            EXPECT_GT(m.commands, 0u) << op << " " << langName(lang);
        }
    }
}

TEST(Micro, ComputeSlowdownOrdering)
{
    // Table 1's compute rows: Tcl >> Perl > MIPSI-or-Java, all >> 1.
    auto per_iter = [](Lang lang) {
        int iters = lang == Lang::Tcl ? 50 : 300;
        Measurement m = run(microBench(lang, "a=b+c", iters));
        return (double)m.cycles / iters;
    };
    double c = per_iter(Lang::C);
    double mipsi = per_iter(Lang::Mipsi);
    double java = per_iter(Lang::Java);
    double perl = per_iter(Lang::Perl);
    double tcl = per_iter(Lang::Tcl);
    EXPECT_GT(mipsi / c, 20.0);
    EXPECT_GT(perl / c, mipsi / c) << "Perl above MIPSI (paper: 770 vs "
                                      "260)";
    EXPECT_GT(tcl / c, 3.0 * (perl / c))
        << "Tcl is the extreme (paper: 6500 vs Perl's 770)";
    EXPECT_GT(java / c, 5.0);
    EXPECT_LT(java / c, mipsi / c) << "Java below MIPSI (paper: 96 vs "
                                      "260)";
}

TEST(Micro, StringOpsInvertTheOrdering)
{
    // Table 1's headline: Perl/Tcl string facilities live in native
    // runtime libraries, so their slowdowns drop below MIPSI/Java.
    auto slowdown = [](Lang lang, const char *op) {
        int iters = lang == Lang::Tcl ? 40 : (lang == Lang::C ? 600
                                                              : 150);
        Measurement m = run(microBench(lang, op, iters));
        return (double)m.cycles / iters;
    };
    double c = slowdown(Lang::C, "string-concat");
    double mipsi = slowdown(Lang::Mipsi, "string-concat") / c;
    double perl = slowdown(Lang::Perl, "string-concat") / c;
    double tcl = slowdown(Lang::Tcl, "string-concat") / c;
    EXPECT_LT(perl, mipsi) << "Perl concat beats MIPSI (19 vs 186)";
    EXPECT_LT(tcl, mipsi) << "Tcl concat beats MIPSI (78 vs 186)";
}

TEST(Micro, ReadIsBarelySlowed)
{
    // Table 1's read row: computation happens in precompiled (kernel)
    // code, so every interpreter's slowdown is small.
    auto per_iter = [](Lang lang) {
        int iters = 25;
        Measurement m = run(microBench(lang, "read", iters));
        return (double)m.cycles / iters;
    };
    double c = per_iter(Lang::C);
    for (Lang lang : {Lang::Mipsi, Lang::Java, Lang::Perl, Lang::Tcl}) {
        double ratio = per_iter(lang) / c;
        EXPECT_LT(ratio, 25.0) << langName(lang);
    }
    EXPECT_GT(per_iter(Lang::Tcl) / c, per_iter(Lang::Java) / c)
        << "Tcl still pays the most for I/O (paper: 15 vs 4.6)";
}

} // namespace
