/**
 * @file
 * Tests for the perlish interpreter: regex engine, hash table, value
 * semantics, language execution, and the Perl-specific cost profile
 * (startup precompilation, hash memory model, regex concentration).
 */

#include <gtest/gtest.h>

#include <string>

#include "perlish/hash_table.hh"
#include "perlish/interp.hh"
#include "perlish/regex.hh"
#include "perlish/value.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;
using namespace interp::perlish;

// --- Scalar -----------------------------------------------------------

TEST(Scalar, NumToStr)
{
    EXPECT_EQ(Scalar::fromNum(42).str(), "42");
    EXPECT_EQ(Scalar::fromNum(-3).str(), "-3");
    EXPECT_EQ(Scalar::fromNum(2.5).str(), "2.5");
}

TEST(Scalar, StrToNum)
{
    EXPECT_DOUBLE_EQ(Scalar::fromStr("17").num(), 17.0);
    EXPECT_DOUBLE_EQ(Scalar::fromStr("3.5x").num(), 3.5);
    EXPECT_DOUBLE_EQ(Scalar::fromStr("abc").num(), 0.0);
    EXPECT_DOUBLE_EQ(Scalar::fromStr("-12 things").num(), -12.0);
}

TEST(Scalar, Truthiness)
{
    EXPECT_FALSE(Scalar::fromNum(0).truthy());
    EXPECT_TRUE(Scalar::fromNum(0.5).truthy());
    EXPECT_FALSE(Scalar::fromStr("").truthy());
    EXPECT_FALSE(Scalar::fromStr("0").truthy());
    EXPECT_TRUE(Scalar::fromStr("00").truthy());
    EXPECT_TRUE(Scalar::fromStr("0.0").truthy()) << "Perl quirk";
    Scalar undef;
    undef.defined_ = false;
    EXPECT_FALSE(undef.truthy());
}

// --- HashTable --------------------------------------------------------

TEST(PerlHash, InsertFindErase)
{
    HashTable table;
    int steps;
    table.lookup("alpha", steps).setNum(1);
    table.lookup("beta", steps).setNum(2);
    EXPECT_EQ(table.size(), 2u);
    ASSERT_NE(table.find("alpha", steps), nullptr);
    EXPECT_DOUBLE_EQ(table.find("alpha", steps)->num(), 1.0);
    EXPECT_EQ(table.find("gamma", steps), nullptr);
    EXPECT_TRUE(table.erase("alpha"));
    EXPECT_FALSE(table.erase("alpha"));
    EXPECT_EQ(table.find("alpha", steps), nullptr);
    EXPECT_EQ(table.size(), 1u);
}

TEST(PerlHash, GrowsAndKeepsEntries)
{
    HashTable table;
    int steps;
    for (int i = 0; i < 500; ++i)
        table.lookup("key" + std::to_string(i), steps).setNum(i);
    EXPECT_GT(table.bucketCount(), 8u);
    for (int i = 0; i < 500; ++i) {
        Scalar *v = table.find("key" + std::to_string(i), steps);
        ASSERT_NE(v, nullptr) << i;
        EXPECT_DOUBLE_EQ(v->num(), (double)i);
    }
}

TEST(PerlHash, LastBucketAddrSurvivesGrow)
{
    // Regression: lookup() caches &buckets[index] for the memory-model
    // charge before insertion may trigger grow(); grow() reallocates
    // the bucket array, so the cached address must be recomputed or it
    // dangles into freed memory. Insert far past the growth threshold
    // (count > 3 * buckets.size(), initial 8 buckets) and check the
    // published address points into the live array every time.
    HashTable table;
    int steps;
    for (int i = 0; i < 100; ++i) {
        table.lookup("grow" + std::to_string(i), steps).setNum(i);
        ASSERT_NE(table.lastBucketAddr, nullptr);
        EXPECT_TRUE(table.ownsBucketAddr(table.lastBucketAddr))
            << "stale bucket address after insert " << i
            << " (buckets=" << table.bucketCount() << ")";
    }
    EXPECT_GT(table.bucketCount(), 8u) << "test never forced a grow";
}

TEST(PerlHash, KeysEnumeratesAll)
{
    HashTable table;
    int steps;
    table.lookup("a", steps);
    table.lookup("b", steps);
    table.lookup("c", steps);
    auto keys = table.keys();
    EXPECT_EQ(keys.size(), 3u);
}

// --- Regex ------------------------------------------------------------

TEST(Rx, Literals)
{
    Regex re("abc");
    EXPECT_TRUE(re.test("xxabcxx"));
    EXPECT_FALSE(re.test("abX"));
    auto m = re.search("xxabcxx");
    EXPECT_EQ(m.begin, 2u);
    EXPECT_EQ(m.end, 5u);
}

TEST(Rx, AnchorsAndDot)
{
    EXPECT_TRUE(Regex("^ab.d$").test("abcd"));
    EXPECT_FALSE(Regex("^b").test("ab"));
    EXPECT_TRUE(Regex("d$").test("abcd"));
    EXPECT_FALSE(Regex("^a$").test("ab"));
    EXPECT_FALSE(Regex(".").test("\n")) << "dot does not match newline";
}

TEST(Rx, Quantifiers)
{
    EXPECT_TRUE(Regex("ab*c").test("ac"));
    EXPECT_TRUE(Regex("ab*c").test("abbbbc"));
    EXPECT_FALSE(Regex("ab+c").test("ac"));
    EXPECT_TRUE(Regex("ab+c").test("abc"));
    EXPECT_TRUE(Regex("ab?c").test("ac"));
    EXPECT_TRUE(Regex("ab?c").test("abc"));
    EXPECT_FALSE(Regex("ab?c").test("abbc"));
}

TEST(Rx, GreedyWithBacktracking)
{
    auto m = Regex("a.*b").search("aXbYb");
    EXPECT_TRUE(m.matched);
    EXPECT_EQ(m.end, 5u) << "greedy star takes the last b";
    EXPECT_TRUE(Regex("a.*bc").test("abbc"));
}

TEST(Rx, Classes)
{
    EXPECT_TRUE(Regex("[a-z]+").test("hello"));
    EXPECT_FALSE(Regex("^[a-z]+$").test("heLLo"));
    EXPECT_TRUE(Regex("[^0-9]").test("a1"));
    EXPECT_FALSE(Regex("^[^0-9]+$").test("a1"));
    EXPECT_TRUE(Regex("[abc-]").test("-"));
    EXPECT_TRUE(Regex("[]x]").test("]")) << "']' first in class is literal";
}

TEST(Rx, Escapes)
{
    EXPECT_TRUE(Regex("\\d+").test("abc123"));
    EXPECT_FALSE(Regex("\\d").test("abc"));
    EXPECT_TRUE(Regex("\\w+").test("a_1"));
    EXPECT_TRUE(Regex("\\s").test("a b"));
    EXPECT_TRUE(Regex("\\S+").test(" x "));
    EXPECT_TRUE(Regex("a\\.b").test("a.b"));
    EXPECT_FALSE(Regex("a\\.b").test("aXb"));
    EXPECT_TRUE(Regex("\\tx").test("\tx"));
}

TEST(Rx, Alternation)
{
    Regex re("cat|dog|bird");
    EXPECT_TRUE(re.test("hotdog"));
    EXPECT_TRUE(re.test("a bird"));
    EXPECT_FALSE(re.test("fish"));
}

TEST(Rx, CapturesBasic)
{
    Regex re("(\\d+)-(\\d+)");
    auto m = re.search("range 10-25 end");
    ASSERT_TRUE(m.matched);
    ASSERT_EQ(m.groups.size(), 2u);
    EXPECT_EQ(m.groups[0].first, 6u);
    EXPECT_EQ(m.groups[0].second, 8u);
    EXPECT_EQ(m.groups[1].first, 9u);
    EXPECT_EQ(m.groups[1].second, 11u);
}

TEST(Rx, CapturesInAlternation)
{
    Regex re("(a+)|(b+)");
    auto m = re.search("bbb");
    ASSERT_TRUE(m.matched);
    EXPECT_EQ(m.groups[0].first, std::string::npos) << "unset group";
    EXPECT_EQ(m.groups[1].second - m.groups[1].first, 3u);
}

TEST(Rx, NestedGroups)
{
    Regex re("((a|b)+)c");
    auto m = re.search("xabbac!");
    ASSERT_TRUE(m.matched);
    EXPECT_EQ(m.groups[0].first, 1u);
    EXPECT_EQ(m.groups[0].second, 5u);
}

TEST(Rx, Substitute)
{
    uint64_t steps;
    Regex re("o");
    auto [once, n1] = re.substitute("foo boo", "0", false, steps);
    EXPECT_EQ(once, "f0o boo");
    EXPECT_EQ(n1, 1);
    auto [all, n2] = re.substitute("foo boo", "0", true, steps);
    EXPECT_EQ(all, "f00 b00");
    EXPECT_EQ(n2, 4);
}

TEST(Rx, SubstituteWithGroups)
{
    uint64_t steps;
    Regex re("(\\w+)@(\\w+)");
    auto [out, n] =
        re.substitute("mail me@here now", "$2:$1", true, steps);
    EXPECT_EQ(out, "mail here:me now");
    EXPECT_EQ(n, 1);
    Regex amp("b+");
    auto [out2, n2] = amp.substitute("abbbc", "[$&]", true, steps);
    EXPECT_EQ(out2, "a[bbb]c");
    EXPECT_EQ(n2, 1);
}

TEST(Rx, Split)
{
    uint64_t steps;
    Regex comma(",");
    auto parts = comma.split("a,b,,c", steps);
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    Regex spaces("\\s+");
    auto words = spaces.split("one  two\tthree ", steps);
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(words[2], "three");
}

TEST(Rx, SplitDropsTrailingEmpties)
{
    uint64_t steps;
    Regex comma(",");
    auto parts = comma.split("a,b,,,", steps);
    ASSERT_EQ(parts.size(), 2u);
}

TEST(Rx, SyntaxErrorsAreFatal)
{
    EXPECT_EXIT((void)Regex("a(b"), testing::ExitedWithCode(1),
                "missing");
    EXPECT_EXIT((void)Regex("[abc"), testing::ExitedWithCode(1),
                "unterminated");
    EXPECT_EXIT((void)Regex("*a"), testing::ExitedWithCode(1),
                "quantifier");
}

/** Property sweep: regex vs handwritten checks on structured inputs. */
class RxNumbers : public testing::TestWithParam<int>
{};

TEST_P(RxNumbers, DigitRunsFound)
{
    int n = GetParam();
    std::string text = "id" + std::to_string(n) + "suffix";
    Regex re("\\d+");
    auto m = re.search(text);
    ASSERT_TRUE(m.matched);
    EXPECT_EQ(text.substr(m.begin, m.end - m.begin), std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(Values, RxNumbers,
                         testing::Values(0, 7, 42, 100, 999, 12345,
                                         1000000));

// --- Interpreter -------------------------------------------------------

std::string
runPerl(const std::string &src, vfs::FileSystem *fs_in = nullptr,
        trace::Profile *profile = nullptr, int *exit_code = nullptr)
{
    trace::Execution exec;
    if (profile)
        exec.addSink(profile);
    vfs::FileSystem local;
    vfs::FileSystem &fs = fs_in ? *fs_in : local;
    Interp interp(exec, fs);
    interp.load(src);
    auto result = interp.run(100'000'000);
    EXPECT_TRUE(result.exited) << "script did not finish";
    if (exit_code)
        *exit_code = result.exitCode;
    return fs.stdoutCapture();
}

TEST(Perlish, HelloWorld)
{
    EXPECT_EQ(runPerl("print \"hello\\n\";"), "hello\n");
}

TEST(Perlish, ScalarsAndInterpolation)
{
    EXPECT_EQ(runPerl(R"(
        $x = 6;
        $y = 7;
        $z = $x * $y;
        print "answer=$z!\n";
    )"),
              "answer=42!\n");
}

TEST(Perlish, ArithmeticSemantics)
{
    EXPECT_EQ(runPerl(R"(
        print 7 % 3, " ", -7 % 3, " ";     # Perl: -7 % 3 == 2
        print 10 / 4, " ";
        print int(3.9), " ", int(-3.9);
    )"),
              "1 2 2.5 3 -3");
}

TEST(Perlish, BitwiseOps)
{
    EXPECT_EQ(runPerl(R"(
        print 0xff & 0x0f, " ", 0xf0 | 0x0f, " ", 0xff ^ 0x0f, " ";
        print 1 << 10, " ", 1024 >> 3, "\n";
        print(($x & 1) == 0 ? "even" : "odd") if ($x = 6);
    )"),
              "15 255 240 1024 128\neven");
}

TEST(Perlish, StringOps)
{
    EXPECT_EQ(runPerl(R"(
        $a = "foo" . "bar";
        $b = "ab" x 3;
        print $a, " ", $b, " ", length($a), "\n";
        print substr($a, 1, 3), " ", index($a, "bar"), "\n";
        print "x" lt "y", " ", "abc" eq "abc", "\n";
    )"),
              "foobar ababab 6\noob 3\n1 1\n");
}

TEST(Perlish, NumericVsStringComparison)
{
    EXPECT_EQ(runPerl(R"(
        print "10" == "10.0" ? "neq" : "nne";
        print " ";
        print "10" eq "10.0" ? "seq" : "sne";
    )"),
              "neq sne");
}

TEST(Perlish, ArraysPushPopShift)
{
    EXPECT_EQ(runPerl(R"(
        @list = (3, 1, 4, 1, 5);
        push(@list, 9);
        $n = pop(@list);
        $first = shift(@list);
        unshift(@list, 0);
        print "n=$n first=$first size=", scalar(@list), " last=", $#list, "\n";
        print join(",", @list), "\n";
    )"),
              "n=9 first=3 size=5 last=4\n0,1,4,1,5\n");
}

TEST(Perlish, HashesAndKeys)
{
    EXPECT_EQ(runPerl(R"(
        $age{bob} = 30;
        $age{"al"} = 25;
        $total = 0;
        foreach $k (keys(%age)) {
            $total += $age{$k};
        }
        print "total=$total n=", scalar(keys(%age)), "\n";
        print defined($age{bob}) ? "yes" : "no";
        delete($age{bob});
        print defined($age{bob}) ? "yes" : "no";
    )"),
              "total=55 n=2\nyesno");
}

TEST(Perlish, ControlFlow)
{
    EXPECT_EQ(runPerl(R"(
        $sum = 0;
        for ($i = 0; $i < 10; $i += 1) {
            next if $i == 3;
            last if $i == 8;
            $sum += $i;
        }
        $j = 0;
        while ($j < 5) { $j += 2; }
        until ($j > 10) { $j += 3; }
        print "$sum $j\n";
        unless ($sum > 100) { print "small\n"; }
    )"),
              "25 12\nsmall\n");
}

TEST(Perlish, ForeachRangesAndArrays)
{
    EXPECT_EQ(runPerl(R"(
        $s = 0;
        foreach $i (1..5) { $s += $i; }
        @w = ("a", "b", "c");
        $t = "";
        foreach $w (@w) { $t .= $w; }
        print "$s $t\n";
    )"),
              "15 abc\n");
}

TEST(Perlish, SubroutinesAndLocals)
{
    EXPECT_EQ(runPerl(R"(
        sub add {
            local($a, $b) = 0;
            $a = shift;
            $b = shift;
            return $a + $b;
        }
        sub fact {
            local($n) = 0;
            $n = shift;
            return 1 if $n <= 1;
            return $n * &fact($n - 1);
        }
        $a = 100;  # must survive the local() in add
        print add(2, 3), " ", &fact(5), " ", $a, "\n";
    )"),
              "5 120 100\n");
}

TEST(Perlish, MatchAndCaptures)
{
    EXPECT_EQ(runPerl(R"(
        $line = "From: alice@example.org";
        if ($line =~ /(\w+)@(\w+)/) {
            print "user=$1 host=$2\n";
        }
        print "no-digits\n" unless $line =~ /\d/;
    )"),
              "user=alice host=example\nno-digits\n");
}

TEST(Perlish, SubstAndSplit)
{
    EXPECT_EQ(runPerl(R"(
        $s = "one two  three";
        $n = ($s =~ s/ +/_/g);
        print "$s ($n)\n";
        @parts = split(/_/, $s);
        print scalar(@parts), ":", join("|", @parts), "\n";
    )"),
              "one_two_three (2)\n3:one|two|three\n");
}

TEST(Perlish, FileIo)
{
    vfs::FileSystem fs;
    fs.writeFile("nums.txt", "3\n5\n11\n");
    EXPECT_EQ(runPerl(R"(
        open(IN, "nums.txt");
        $total = 0;
        while ($line = <IN>) {
            chop($line);
            $total += $line;
        }
        close(IN);
        open(OUT, ">out.txt");
        print OUT "total=$total\n";
        close(OUT);
        print "done $total";
    )",
                      &fs),
              "done 19");
    EXPECT_EQ(fs.readFile("out.txt"), "total=19\n");
}

TEST(Perlish, SprintfSubset)
{
    EXPECT_EQ(runPerl(R"(
        print sprintf("%05d|%-4s|%x|%c", 42, "ab", 255, 65), "\n";
    )"),
              "00042|ab  |ff|A\n");
}

TEST(Perlish, DieAndExit)
{
    int code = 0;
    vfs::FileSystem fs;
    EXPECT_EQ(runPerl("print \"a\"; exit(3); print \"b\";", &fs,
                      nullptr, &code),
              "a");
    EXPECT_EQ(code, 3);

    vfs::FileSystem fs2;
    code = 0;
    EXPECT_EQ(runPerl("print \"x\"; die \"bad thing\"; print \"y\";",
                      &fs2, nullptr, &code),
              "x");
    EXPECT_EQ(code, 1);
    EXPECT_EQ(fs2.stderrCapture(), "bad thing");
}

TEST(Perlish, UndefinedScalarsReadAsEmpty)
{
    EXPECT_EQ(runPerl(R"(
        print "[", $nothing, "]", $nothing + 5, "\n";
        print defined($nothing) ? "def" : "undef", "\n";
    )"),
              "[]5\nundef\n");
}

// --- Paper-shape checks ------------------------------------------------

TEST(Perlish, PrecompileWorkIsAccounted)
{
    trace::Profile profile;
    runPerl(R"(
        $x = 1;
        $y = $x + 2;
        print "";
    )",
            nullptr, &profile);
    EXPECT_GT(profile.precompileInsts(), 1000u)
        << "startup compilation must be charged";
    // Precompile work scales with source size.
    trace::Profile big;
    std::string long_src;
    for (int i = 0; i < 50; ++i)
        long_src += "$v" + std::to_string(i) + " = " +
                    std::to_string(i) + ";\n";
    long_src += "print \"\";";
    runPerl(long_src, nullptr, &big);
    EXPECT_GT(big.precompileInsts(), 3 * profile.precompileInsts());
}

TEST(Perlish, FetchDecodeCostIsHigh)
{
    // Table 2: Perl fetch/decode is ~130-200 instructions per command
    // (an order of magnitude above Java's 16).
    trace::Profile profile;
    runPerl(R"(
        $s = 0;
        for ($i = 0; $i < 500; $i += 1) { $s += $i; }
        print "$s";
    )",
            nullptr, &profile);
    double fd = profile.fetchDecodePerCommand();
    EXPECT_GT(fd, 80.0);
    EXPECT_LT(fd, 260.0);
}

TEST(Perlish, HashCostNearPaperValue)
{
    // §3.3: hash translations average ~210 native instructions.
    trace::Profile profile;
    runPerl(R"(
        for ($i = 0; $i < 300; $i += 1) {
            $h{"key$i"} = $i;
        }
        $t = 0;
        for ($i = 0; $i < 300; $i += 1) {
            $t += $h{"key$i"};
        }
        print "$t";
    )",
            nullptr, &profile);
    double per_access = profile.memModelCostPerAccess();
    EXPECT_GT(per_access, 80.0);
    EXPECT_LT(per_access, 400.0);
}

TEST(Perlish, RegexDominatesTextProcessing)
{
    // Figures 1-2: in regex-heavy programs, the match/subst commands
    // dominate execute instructions while being few in number.
    trace::Profile profile;
    trace::Execution exec;
    exec.addSink(&profile);
    vfs::FileSystem fs;
    std::string text;
    for (int i = 0; i < 60; ++i)
        text += "line " + std::to_string(i) +
                " with some words to scan here\n";
    fs.writeFile("in.txt", text);
    Interp interp(exec, fs);
    interp.load(R"(
        open(F, "in.txt");
        $hits = 0;
        while ($l = <F>) {
            $hits += 1 if $l =~ /w[a-z]+ds/;
            $l =~ s/[aeiou]/./g;
        }
        close(F);
        print "$hits";
    )");
    auto result = interp.run(50'000'000);
    ASSERT_TRUE(result.exited);
    auto sorted = profile.byExecuteInsts();
    ASSERT_GE(sorted.size(), 2u);
    const std::string &top =
        interp.commandSet().name(sorted[0].first);
    EXPECT_TRUE(top == "subst" || top == "match") << top;
    EXPECT_GT(profile.cumulativeExecuteShare(3), 0.5)
        << "a few commands dominate execution";
}

} // namespace
