/**
 * @file
 * Tier-up suite: golden equivalence for the tier-2 execution modes
 * (jvm superinstructions + field inline caches, tclish command fusion
 * + symbol caches, perlish hash-element caches), TierManager
 * promotion-ladder unit tests, and the shared-module safety
 * guarantees the tiering layer rests on — artifacts are immutable,
 * in-place quickening of a shared module is a contained fatal, and
 * one artifact can serve many threads at once.
 *
 * The tier-2 golden contract extends the §5 remedy contract: stdout,
 * command streams, retired and nativeLib attribution stay
 * byte-identical, fetch/decode may only shrink, and the *execute*
 * delta is confined to the §3.3 memory-model subset (CommandStats::
 * memModel) — an inline cache makes an access cheaper, it never
 * changes what the access does.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hh"
#include "jvm/tier2.hh"
#include "jvm/vm.hh"
#include "minic/compile.hh"
#include "support/logging.hh"
#include "tier/tier.hh"
#include "trace/execution.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;
using namespace interp::harness;

BenchSpec
macroSpec(Lang lang, const std::string &name)
{
    for (BenchSpec &spec : macroSuite())
        if (spec.lang == lang && spec.name == name)
            return spec;
    ADD_FAILURE() << "no macro benchmark " << langName(lang) << "/"
                  << name;
    return {};
}

/** Counting-only run: the golden checks compare attribution, not
 *  simulated cycles, so skip the machine model for speed. */
Measurement
runCounting(const BenchSpec &spec)
{
    return run(spec, {}, nullptr, /*with_machine=*/false);
}

/**
 * The tier-2 golden property. Everything the program does is
 * identical; retired and nativeLib are byte-identical per command;
 * execute may differ *only* inside the memory-model subset (and only
 * downward — caches make accesses cheaper, never dearer); fetch/
 * decode may only shrink (superinstructions). When
 * @p expect_mem_reduction the workload is known to contain cacheable
 * sites, so total memModel must strictly drop.
 */
void
expectTier2Golden(const BenchSpec &base_spec, bool expect_mem_reduction,
                  uint64_t *base_mem = nullptr,
                  uint64_t *tier_mem = nullptr)
{
    BenchSpec t2_spec = base_spec;
    t2_spec.lang = tierTier2Of(base_spec.lang);
    ASSERT_NE(t2_spec.lang, base_spec.lang) << "spec has no tier-2";

    Measurement base = runCounting(base_spec);
    Measurement t2 = runCounting(t2_spec);

    // Program-visible behaviour is identical.
    EXPECT_EQ(base.stdoutText, t2.stdoutText);
    EXPECT_TRUE(base.finished);
    EXPECT_TRUE(t2.finished);
    EXPECT_EQ(base.commands, t2.commands);
    EXPECT_EQ(base.commandNames, t2.commandNames);

    const auto &bc = base.profile.perCommand();
    const auto &tc = t2.profile.perCommand();
    ASSERT_EQ(bc.size(), tc.size());
    uint64_t base_fd = 0;
    uint64_t t2_fd = 0;
    for (size_t i = 0; i < bc.size(); ++i) {
        EXPECT_EQ(bc[i].retired, tc[i].retired) << "command " << i;
        EXPECT_EQ(bc[i].nativeLib, tc[i].nativeLib) << "command " << i;
        // Execute minus its memory-model subset is byte-identical:
        // the caches only ever touch the §3.3 access sequences.
        EXPECT_EQ(bc[i].execute - bc[i].memModel,
                  tc[i].execute - tc[i].memModel)
            << "command " << i;
        // No per-command bound on memModel itself: a miss-heavy
        // command pays its guard probes without compensating hits
        // (the suite-level totals below are the reduction claim).
        EXPECT_LE(tc[i].fetchDecode, bc[i].fetchDecode)
            << "command " << i;
        base_fd += bc[i].fetchDecode;
        t2_fd += tc[i].fetchDecode;
    }
    EXPECT_EQ(base.profile.executeInsts() -
                  base.profile.memModelInsts(),
              t2.profile.executeInsts() - t2.profile.memModelInsts());
    EXPECT_LE(t2_fd, base_fd);

    if (expect_mem_reduction) {
        EXPECT_LT(t2.profile.memModelInsts(),
                  base.profile.memModelInsts())
            << langName(base_spec.lang) << "/" << base_spec.name;
    }
    if (base_mem)
        *base_mem += base.profile.memModelInsts();
    if (tier_mem)
        *tier_mem += t2.profile.memModelInsts();
}

// --- golden equivalence: targeted micro workloads ----------------------

TEST(TierGolden, JavaTier2Micro)
{
    // Globals compile to statics, so a=b+c is dense in GetStatic/
    // PutStatic inline-cache sites *and* hot adjacent pairs.
    expectTier2Golden(microBench(Lang::Java, "a=b+c", 60), true);
    expectTier2Golden(microBench(Lang::Java, "string-split", 40), true);
}

TEST(TierGolden, TclTier2Micro)
{
    // "$sa$sb" / "$str" substitute at compiled-command sites, where
    // the symbol cache is live.
    expectTier2Golden(microBench(Lang::Tcl, "string-concat", 30), true);
    expectTier2Golden(microBench(Lang::Tcl, "string-split", 30), true);
}

TEST(TierGolden, TclTier2NoSitesIsANoop)
{
    // a=b+c reads $b/$c only inside brace-quoted expr arguments —
    // command handlers run with no cache cursor, so tier-2 must not
    // perturb the memory model at all there.
    BenchSpec spec = microBench(Lang::Tcl, "a=b+c", 30);
    Measurement base = runCounting(spec);
    BenchSpec t2 = spec;
    t2.lang = Lang::TclTier2;
    Measurement tier = runCounting(t2);
    EXPECT_EQ(base.profile.memModelInsts(),
              tier.profile.memModelInsts());
    EXPECT_EQ(base.stdoutText, tier.stdoutText);
}

TEST(TierGolden, PerlIcMicro)
{
    // The micro ops carry no hash elements, so Perl-ic must be a
    // strict no-op on them: identical everything, including memModel.
    BenchSpec spec = microBench(Lang::Perl, "a=b+c", 60);
    expectTier2Golden(spec, false);
    Measurement base = runCounting(spec);
    BenchSpec ic = spec;
    ic.lang = Lang::PerlIC;
    Measurement t2 = runCounting(ic);
    EXPECT_EQ(base.profile.memModelInsts(), t2.profile.memModelInsts());
}

TEST(TierGolden, PerlIcHashWorkloads)
{
    // plexus and weblint are the hash-element-heavy macros; the cache
    // must strictly cut their §3.3 access cost.
    expectTier2Golden(macroSpec(Lang::Perl, "plexus"), true);
    expectTier2Golden(macroSpec(Lang::Perl, "weblint"), true);
}

// --- golden equivalence: every guest program ---------------------------

// One sweep over the whole Table 2 macro suite for every language
// with a tier-2 mode. Each program individually satisfies the golden
// contract (with memModel allowed to be merely equal — not every
// program exercises cacheable sites); per language, the suite total
// must strictly shrink, or tier-2 would be dead weight.
TEST(TierGolden, MacroSuiteSweep)
{
    uint64_t base_mem[3] = {0, 0, 0};
    uint64_t tier_mem[3] = {0, 0, 0};
    auto lane = [](Lang lang) {
        return lang == Lang::Java ? 0 : lang == Lang::Tcl ? 1 : 2;
    };
    for (const BenchSpec &spec : macroSuite()) {
        if (spec.lang != Lang::Java && spec.lang != Lang::Tcl &&
            spec.lang != Lang::Perl)
            continue;
        SCOPED_TRACE(std::string(langName(spec.lang)) + "/" +
                     spec.name);
        int l = lane(spec.lang);
        expectTier2Golden(spec, false, &base_mem[l], &tier_mem[l]);
    }
    EXPECT_LT(tier_mem[0], base_mem[0]) << "jvm suite memModel";
    EXPECT_LT(tier_mem[1], base_mem[1]) << "tcl suite memModel";
    EXPECT_LT(tier_mem[2], base_mem[2]) << "perl suite memModel";
}

// The one-shot artifact build is charged to Precompile, exactly like
// the in-place quickening it replaces — never to execute.
TEST(TierGolden, JavaTier2ChargesPrecompile)
{
    BenchSpec spec = microBench(Lang::Java, "a=b+c", 60);
    Measurement base = runCounting(spec);
    BenchSpec t2 = spec;
    t2.lang = Lang::JavaTier2;
    Measurement tier = runCounting(t2);
    EXPECT_GT(tier.profile.precompileInsts(),
              base.profile.precompileInsts());
}

// --- TierManager: the promotion ladder ---------------------------------

tier::TierConfig
testConfig(uint64_t remedy_after, uint64_t tier2_after)
{
    tier::TierConfig cfg;
    cfg.enabled = true;
    cfg.remedyAfter = remedy_after;
    cfg.tier2After = tier2_after;
    cfg.commandsPerPoint = 1'000'000'000; // invocation-driven only
    cfg.decayEvery = 1'000'000;           // effectively off
    return cfg;
}

TEST(TierManager, TclClimbsTheLadder)
{
    tier::TierManager tm(testConfig(3, 5));

    for (int i = 0; i < 2; ++i) {
        tier::TierPlan p = tm.plan(Lang::Tcl, "des");
        EXPECT_EQ(p.lang, Lang::Tcl);
        EXPECT_EQ(p.level, 0);
        EXPECT_FALSE(p.promotedRemedy);
    }
    tier::TierPlan remedy = tm.plan(Lang::Tcl, "des");
    EXPECT_EQ(remedy.lang, Lang::TclBytecode);
    EXPECT_EQ(remedy.level, 1);
    EXPECT_TRUE(remedy.promotedRemedy);
    EXPECT_FALSE(remedy.promotedTier2);

    // The crossing fires exactly once.
    tier::TierPlan again = tm.plan(Lang::Tcl, "des");
    EXPECT_EQ(again.lang, Lang::TclBytecode);
    EXPECT_FALSE(again.promotedRemedy);

    tier::TierPlan t2 = tm.plan(Lang::Tcl, "des");
    EXPECT_EQ(t2.lang, Lang::TclTier2);
    EXPECT_EQ(t2.level, 2);
    EXPECT_TRUE(t2.promotedTier2);

    tier::TierManager::Snapshot s = tm.snapshot();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.promotedRemedy, 1u);
    EXPECT_EQ(s.promotedTier2, 1u);
}

TEST(TierManager, PerlTopsOutAtTheCache)
{
    // Perl-ic is both remedy and top tier; the tier-2 threshold folds
    // back to it and promotedTier2 never fires.
    tier::TierManager tm(testConfig(2, 3));
    tm.plan(Lang::Perl, "plexus");
    tier::TierPlan remedy = tm.plan(Lang::Perl, "plexus");
    EXPECT_EQ(remedy.lang, Lang::PerlIC);
    EXPECT_TRUE(remedy.promotedRemedy);
    tier::TierPlan top = tm.plan(Lang::Perl, "plexus");
    EXPECT_EQ(top.lang, Lang::PerlIC);
    EXPECT_EQ(top.level, 1);
    EXPECT_FALSE(top.promotedTier2);
    EXPECT_EQ(tm.snapshot().promotedTier2, 0u);
}

TEST(TierManager, NoLadderForCOrExplicitRemedies)
{
    tier::TierManager tm(testConfig(1, 1));
    // C has no remedy; it never leaves baseline.
    for (int i = 0; i < 4; ++i) {
        tier::TierPlan p = tm.plan(Lang::C, "des");
        EXPECT_EQ(p.lang, Lang::C);
        EXPECT_EQ(p.level, 0);
    }
    // An explicitly-requested remedy mode is honored verbatim — the
    // client asked for it, tiering neither claims nor upgrades it.
    tier::TierPlan p = tm.plan(Lang::TclBytecode, "des");
    EXPECT_EQ(p.lang, Lang::TclBytecode);
    EXPECT_EQ(p.level, 0);
    EXPECT_EQ(tm.snapshot().promotedRemedy, 0u);
}

TEST(TierManager, DisabledIsATotalNoop)
{
    tier::TierConfig cfg = testConfig(1, 1);
    cfg.enabled = false;
    tier::TierManager tm(cfg);
    for (int i = 0; i < 8; ++i) {
        tier::TierPlan p = tm.plan(Lang::Java, "des");
        EXPECT_EQ(p.lang, Lang::Java);
        EXPECT_EQ(p.level, 0);
        EXPECT_FALSE(p.collectPairs);
    }
    EXPECT_EQ(tm.snapshot().entries, 0u);
}

TEST(TierManager, DecayDemandsSustainedHeat)
{
    // decayEvery=4, remedyAfter=4: the 4th invocation reaches 4
    // points and is immediately halved to 2, so the program must keep
    // arriving to cross — deterministically, on the 6th invocation.
    tier::TierConfig cfg = testConfig(4, 100);
    cfg.decayEvery = 4;
    tier::TierManager tm(cfg);
    for (int i = 0; i < 5; ++i) {
        tier::TierPlan p = tm.plan(Lang::Tcl, "hanoi");
        EXPECT_EQ(p.level, 0) << "invocation " << i + 1;
    }
    tier::TierPlan p = tm.plan(Lang::Tcl, "hanoi");
    EXPECT_EQ(p.level, 1);
    EXPECT_TRUE(p.promotedRemedy);
}

TEST(TierManager, CommandsFeedHotnessAsBackedgePoints)
{
    tier::TierConfig cfg = testConfig(5, 100);
    cfg.commandsPerPoint = 100;
    tier::TierManager tm(cfg);
    tier::TierPlan cold = tm.plan(Lang::Tcl, "tcllex");
    EXPECT_EQ(cold.level, 0);
    // 400 commands = 4 points; with the 2nd invocation point the
    // entry reaches the remedy threshold.
    tm.noteRun(Lang::Tcl, "tcllex", 400);
    tier::TierPlan hot = tm.plan(Lang::Tcl, "tcllex");
    EXPECT_EQ(hot.level, 1);
    EXPECT_TRUE(hot.promotedRemedy);
}

TEST(TierManager, ProgramsAreIndependent)
{
    tier::TierManager tm(testConfig(2, 100));
    tm.plan(Lang::Tcl, "des");
    tm.plan(Lang::Tcl, "des");
    tier::TierPlan other = tm.plan(Lang::Tcl, "hanoi");
    EXPECT_EQ(other.level, 0);
    EXPECT_EQ(tm.snapshot().entries, 2u);
    EXPECT_EQ(tm.snapshot().promotedRemedy, 1u);
}

// --- TierManager: jvm artifact builder gating --------------------------

TEST(TierManager, JavaSingleBuilderPerArtifact)
{
    jvm::Module module =
        minic::compileBytecode(microBench(Lang::Java, "a=b+c", 60).source,
                               "a=b+c");
    tier::TierManager tm(testConfig(1, 4));

    // First crossing: this request is the designated remedy builder —
    // it gets the publish hook and no artifact (it builds in-run).
    tier::TierPlan builder = tm.plan(Lang::Java, "micro");
    EXPECT_EQ(builder.lang, Lang::JavaQuick);
    EXPECT_TRUE(builder.promotedRemedy);
    EXPECT_FALSE(builder.artifact);
    ASSERT_TRUE(builder.publish);

    // While the build is outstanding, concurrent requests fall back a
    // tier instead of duplicating the build — and a baseline jvm run
    // doubles as a pair profiler.
    tier::TierPlan waiting = tm.plan(Lang::Java, "micro");
    EXPECT_EQ(waiting.lang, Lang::Java);
    EXPECT_EQ(waiting.level, 0);
    EXPECT_TRUE(waiting.collectPairs);
    EXPECT_FALSE(waiting.publish);

    // Publish lands: the next request picks the artifact up.
    jvm::PairProfile none;
    jvm::TierOptions quick_only;
    quick_only.fuse = false;
    quick_only.inlineCache = false;
    builder.publish(
        jvm::buildTierArtifact(nullptr, module, none, quick_only));
    tier::TierPlan served = tm.plan(Lang::Java, "micro");
    EXPECT_EQ(served.lang, Lang::JavaQuick);
    ASSERT_TRUE(served.artifact);
    EXPECT_GT(served.artifact->quickened, 0u);
    EXPECT_EQ(tm.snapshot().artifactsPublished, 1u);

    // Tier-2 crossing repeats the dance, with the entry's merged pair
    // profile snapshotted for the builder.
    jvm::PairProfile collected;
    collected.counts[7] = 123;
    tm.noteRun(Lang::Java, "micro", 0, &collected);
    tier::TierPlan t2b = tm.plan(Lang::Java, "micro");
    EXPECT_EQ(t2b.lang, Lang::JavaTier2);
    EXPECT_TRUE(t2b.promotedTier2);
    ASSERT_TRUE(t2b.pairs);
    EXPECT_EQ(t2b.pairs->counts[7], 123u);
    ASSERT_TRUE(t2b.publish);

    tier::TierPlan t2wait = tm.plan(Lang::Java, "micro");
    EXPECT_EQ(t2wait.lang, Lang::JavaQuick);
    EXPECT_TRUE(t2wait.artifact);

    t2b.publish(jvm::buildTierArtifact(nullptr, module, *t2b.pairs));
    tier::TierPlan t2served = tm.plan(Lang::Java, "micro");
    EXPECT_EQ(t2served.lang, Lang::JavaTier2);
    EXPECT_TRUE(t2served.artifact);
    EXPECT_EQ(tm.snapshot().artifactsPublished, 2u);
}

// --- jvm artifacts: determinism, immutability, sharing -----------------

jvm::PairProfile
profilePairs(const jvm::Module &module)
{
    trace::Execution exec;
    vfs::FileSystem fs;
    jvm::PairProfile pairs;
    jvm::Vm vm(exec, fs);
    vm.setPairSink(&pairs);
    vm.loadShared(std::make_shared<const jvm::Module>(module));
    vm.run();
    return pairs;
}

TEST(TierArtifact, BuildIsDeterministic)
{
    jvm::Module module = minic::compileBytecode(
        microBench(Lang::Java, "a=b+c", 60).source, "a=b+c");
    jvm::PairProfile pairs = profilePairs(module);
    auto a = jvm::buildTierArtifact(nullptr, module, pairs);
    auto b = jvm::buildTierArtifact(nullptr, module, pairs);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->fusedPairs, b->fusedPairs);
    EXPECT_EQ(a->quickened, b->quickened);
    EXPECT_EQ(a->fuseSites, b->fuseSites);
    EXPECT_EQ(a->icSites, b->icSites);
    EXPECT_EQ(a->fuse, b->fuse);
    EXPECT_EQ(a->ic, b->ic);
    EXPECT_GT(a->quickened, 0u);
    EXPECT_GT(a->fuseSites, 0u);
    EXPECT_GT(a->icSites, 0u);
}

TEST(TierArtifact, SharedModuleInPlaceQuickenIsFatal)
{
    // The bug this PR fixes: jvm-quick over a *shared* catalog module
    // must never rewrite it in place. Reaching the quickening pass on
    // a shared module is a contained fatal, not a silent mutation.
    jvm::Module module = minic::compileBytecode(
        microBench(Lang::Java, "a=b+c", 10).source, "a=b+c");
    trace::Execution exec;
    vfs::FileSystem fs;
    jvm::Vm vm(exec, fs, /*quick=*/true);
    vm.loadShared(std::make_shared<const jvm::Module>(module));
    ScopedFatalThrow guard;
    EXPECT_THROW(vm.run(), FatalError);
}

TEST(TierArtifact, PoisonedCachesFallBackContained)
{
    // Force every inline-cache site to miss: behaviour and non-memory
    // attribution must be unchanged — the fallback is the full
    // resolution sequence, charged to the same memory-model subset.
    jvm::Module module = minic::compileBytecode(
        microBench(Lang::Java, "a=b+c", 40).source, "a=b+c");
    auto shared = std::make_shared<const jvm::Module>(module);
    jvm::PairProfile pairs = profilePairs(module);
    auto artifact = jvm::buildTierArtifact(nullptr, module, pairs);

    auto measure = [&](bool poison) {
        struct Out
        {
            trace::Profile profile;
            jvm::Vm::RunResult r;
        };
        auto out = std::make_unique<Out>();
        trace::Execution exec;
        exec.addSink(&out->profile);
        vfs::FileSystem fs;
        jvm::Vm vm(exec, fs, /*quick=*/true);
        vm.useArtifact(artifact);
        if (poison)
            vm.debugPoisonIc();
        out->r = vm.run();
        exec.flush();
        return out;
    };
    auto hit = measure(false);
    auto miss = measure(true);

    EXPECT_TRUE(hit->r.exited);
    EXPECT_TRUE(miss->r.exited);
    EXPECT_EQ(hit->r.exitCode, miss->r.exitCode);
    EXPECT_EQ(hit->r.commands, miss->r.commands);
    EXPECT_EQ(hit->profile.executeInsts() -
                  hit->profile.memModelInsts(),
              miss->profile.executeInsts() -
                  miss->profile.memModelInsts());
    EXPECT_EQ(hit->profile.fetchDecodeInsts(),
              miss->profile.fetchDecodeInsts());
    // Misses pay the full §3.3 sequence; hits are what tier-2 is for.
    EXPECT_LT(hit->profile.memModelInsts(),
              miss->profile.memModelInsts());
}

TEST(TierArtifact, OneArtifactServesManyThreads)
{
    // The concurrency regression for the shared-mutable-program bug:
    // many VMs execute one published artifact at once. Every thread
    // must finish with identical results and identical attribution —
    // and under the san preset, with no object-lifetime violations.
    jvm::Module module = minic::compileBytecode(
        microBench(Lang::Java, "a=b+c", 40).source, "a=b+c");
    jvm::PairProfile pairs = profilePairs(module);
    auto artifact = jvm::buildTierArtifact(nullptr, module, pairs);

    constexpr int kThreads = 4;
    struct Out
    {
        uint64_t commands = 0;
        int exitCode = -1;
        uint64_t execute = 0;
        uint64_t memModel = 0;
    };
    std::vector<Out> outs(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            trace::Profile profile;
            trace::Execution exec;
            exec.addSink(&profile);
            vfs::FileSystem fs;
            jvm::Vm vm(exec, fs, /*quick=*/true);
            vm.useArtifact(artifact);
            jvm::Vm::RunResult r = vm.run();
            exec.flush();
            outs[t].commands = r.commands;
            outs[t].exitCode = r.exitCode;
            outs[t].execute = profile.executeInsts();
            outs[t].memModel = profile.memModelInsts();
        });
    for (std::thread &t : threads)
        t.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(outs[t].commands, outs[0].commands) << "thread " << t;
        EXPECT_EQ(outs[t].exitCode, outs[0].exitCode) << "thread " << t;
        EXPECT_EQ(outs[t].execute, outs[0].execute) << "thread " << t;
        EXPECT_EQ(outs[t].memModel, outs[0].memModel)
            << "thread " << t;
    }
}

} // namespace
