/**
 * @file
 * Cross-interpreter integration tests.
 *
 * The paper's common reference point is `des`, implemented in every
 * language. Here the five execution modes (compiled-direct, MIPSI,
 * JVM, perlish, tclish) must produce bit-identical output for the
 * same block count, and the software-level profiles must land in the
 * per-interpreter regimes of Table 2.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "jvm/vm.hh"
#include "minic/compile.hh"
#include "mipsi/direct.hh"
#include "mipsi/mipsi.hh"
#include "perlish/interp.hh"
#include "tclish/interp.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;

std::string
readProgram(const std::string &relative)
{
    std::string path = std::string(INTERP_PROGRAMS_DIR) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing program: " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
replaceOnce(std::string text, const std::string &from,
            const std::string &to)
{
    size_t at = text.find(from);
    EXPECT_NE(at, std::string::npos) << "pattern not found: " << from;
    text.replace(at, from.size(), to);
    return text;
}

struct RunOutcome
{
    std::string stdoutText;
    uint64_t commands = 0;
    trace::Profile profile;
};

RunOutcome
runDirectDes(const std::string &src)
{
    RunOutcome out;
    trace::Execution exec;
    exec.addSink(&out.profile);
    vfs::FileSystem fs;
    mipsi::DirectCpu cpu(exec, fs);
    cpu.load(minic::compileMips(src));
    auto r = cpu.run(500'000'000);
    EXPECT_TRUE(r.exited);
    out.commands = r.instructions;
    out.stdoutText = fs.stdoutCapture();
    return out;
}

RunOutcome
runMipsiDes(const std::string &src)
{
    RunOutcome out;
    trace::Execution exec;
    exec.addSink(&out.profile);
    vfs::FileSystem fs;
    mipsi::Mipsi vm(exec, fs);
    vm.load(minic::compileMips(src));
    auto r = vm.run(500'000'000);
    EXPECT_TRUE(r.exited);
    out.commands = r.commands;
    out.stdoutText = fs.stdoutCapture();
    return out;
}

RunOutcome
runJvmDes(const std::string &src)
{
    RunOutcome out;
    trace::Execution exec;
    exec.addSink(&out.profile);
    vfs::FileSystem fs;
    jvm::Vm vm(exec, fs);
    vm.load(minic::compileBytecode(src));
    auto r = vm.run(500'000'000);
    EXPECT_TRUE(r.exited);
    out.commands = r.commands;
    out.stdoutText = fs.stdoutCapture();
    return out;
}

RunOutcome
runPerlDes(const std::string &src)
{
    RunOutcome out;
    trace::Execution exec;
    exec.addSink(&out.profile);
    vfs::FileSystem fs;
    perlish::Interp vm(exec, fs);
    vm.load(src);
    auto r = vm.run(500'000'000);
    EXPECT_TRUE(r.exited);
    out.commands = r.commands;
    out.stdoutText = fs.stdoutCapture();
    return out;
}

RunOutcome
runTclDes(const std::string &src)
{
    RunOutcome out;
    trace::Execution exec;
    exec.addSink(&out.profile);
    vfs::FileSystem fs;
    tclish::TclInterp vm(exec, fs);
    auto r = vm.run(src, 500'000'000);
    EXPECT_TRUE(r.exited);
    out.commands = r.commands;
    out.stdoutText = fs.stdoutCapture();
    return out;
}

/** All five des variants normalized to the same block count. */
class DesSuite : public testing::Test
{
  protected:
    static constexpr const char *kBlocks = "4";

    std::string
    minicSrc()
    {
        return replaceOnce(readProgram("minic/des.mc"),
                           "int nblocks = 24;",
                           std::string("int nblocks = ") + kBlocks + ";");
    }

    std::string
    perlSrc()
    {
        return replaceOnce(readProgram("perlish/des.pl"),
                           "$nblocks = 10;",
                           std::string("$nblocks = ") + kBlocks + ";");
    }

    std::string
    tclSrc()
    {
        return replaceOnce(readProgram("tclish/des.tcl"),
                           "set nblocks 6",
                           std::string("set nblocks ") + kBlocks);
    }
};

TEST_F(DesSuite, AllFiveImplementationsAgree)
{
    auto direct = runDirectDes(minicSrc());
    EXPECT_NE(direct.stdoutText.find("roundtrip=1"), std::string::npos)
        << direct.stdoutText;

    auto mipsi = runMipsiDes(minicSrc());
    auto java = runJvmDes(minicSrc());
    auto perl = runPerlDes(perlSrc());
    auto tcl = runTclDes(tclSrc());

    EXPECT_EQ(mipsi.stdoutText, direct.stdoutText);
    EXPECT_EQ(java.stdoutText, direct.stdoutText);
    EXPECT_EQ(perl.stdoutText, direct.stdoutText);
    EXPECT_EQ(tcl.stdoutText, direct.stdoutText);
}

TEST_F(DesSuite, CommandCountsOrderAsInTable2)
{
    // Table 2, des row: the higher the VM level, the fewer commands:
    // C/MIPSI execute the most commands, then Java, then Perl, then
    // Tcl (170k/190k > 320k? — Java executes more bytecodes than
    // MIPSI instructions in the paper's des due to program structure;
    // the robust ordering is Perl < MIPSI and Tcl < Perl).
    auto mipsi = runMipsiDes(minicSrc());
    auto perl = runPerlDes(perlSrc());
    auto tcl = runTclDes(tclSrc());
    EXPECT_LT(perl.commands, mipsi.commands);
    EXPECT_LT(tcl.commands, perl.commands);
}

TEST_F(DesSuite, FetchDecodeLaddersAcrossInterpreters)
{
    // Table 2: f/d per command ~16 (Java) < ~50 (MIPSI) < ~130-200
    // (Perl) < thousands (Tcl).
    auto mipsi = runMipsiDes(minicSrc());
    auto java = runJvmDes(minicSrc());
    auto perl = runPerlDes(perlSrc());
    auto tcl = runTclDes(tclSrc());

    double fd_java = java.profile.fetchDecodePerCommand();
    double fd_mipsi = mipsi.profile.fetchDecodePerCommand();
    double fd_perl = perl.profile.fetchDecodePerCommand();
    double fd_tcl = tcl.profile.fetchDecodePerCommand();

    EXPECT_LT(fd_java, fd_mipsi);
    EXPECT_LT(fd_mipsi, fd_perl);
    EXPECT_LT(fd_perl, fd_tcl);
    EXPECT_GT(fd_tcl / fd_perl, 5.0)
        << "Tcl f/d is an order of magnitude above Perl";
}

TEST_F(DesSuite, NativeInstructionBlowupOrdering)
{
    // Interpreting des costs orders of magnitude more instructions
    // than direct execution, worst for Tcl (Table 2).
    auto direct = runDirectDes(minicSrc());
    auto mipsi = runMipsiDes(minicSrc());
    auto tcl = runTclDes(tclSrc());
    EXPECT_GT(mipsi.profile.userInstructions(),
              30 * direct.profile.userInstructions());
    // Tcl runs fewer blocks-equalized commands but each costs
    // thousands of instructions; compare per-block cost.
    EXPECT_GT(tcl.profile.userInstructions(),
              mipsi.profile.userInstructions());
}

} // namespace
