/**
 * @file
 * Tests for the Java-like VM: bytecode semantics via the MiniC
 * backend, cross-checks against direct-mode execution, heap/GC
 * behaviour, native graphics, and the cost profile the paper reports
 * for the Java interpreter.
 */

#include <gtest/gtest.h>

#include <string>

#include "jvm/vm.hh"
#include "minic/compile.hh"
#include "mipsi/direct.hh"
#include "trace/profile.hh"
#include "vfs/vfs.hh"

namespace {

using namespace interp;

std::string
runJvm(const std::string &src, int *exit_code = nullptr,
       vfs::FileSystem *fs_in = nullptr, trace::Profile *profile = nullptr,
       jvm::Vm **vm_out = nullptr)
{
    static trace::Execution *exec;
    static jvm::Vm *vm;
    static vfs::FileSystem *fs;
    delete vm;
    delete exec;
    delete fs;
    exec = new trace::Execution;
    fs = fs_in ? nullptr : new vfs::FileSystem;
    vfs::FileSystem &the_fs = fs_in ? *fs_in : *fs;
    if (profile)
        exec->addSink(profile);
    vm = new jvm::Vm(*exec, the_fs);
    auto module = minic::compileBytecode(src);
    vm->load(module);
    auto result = vm->run(200'000'000);
    EXPECT_TRUE(result.exited) << "program did not finish";
    if (exit_code)
        *exit_code = result.exitCode;
    if (vm_out)
        *vm_out = vm;
    return the_fs.stdoutCapture();
}

/** Same source run in direct (compiled-C) mode for cross-checking. */
std::string
runDirectRef(const std::string &src)
{
    trace::Execution exec;
    vfs::FileSystem fs;
    mipsi::DirectCpu cpu(exec, fs);
    cpu.load(minic::compileMips(src));
    auto r = cpu.run(200'000'000);
    EXPECT_TRUE(r.exited);
    return fs.stdoutCapture();
}

TEST(Jvm, HelloWorld)
{
    EXPECT_EQ(runJvm(R"(int main() { print_str("hi jvm\n"); return 0; })"),
              "hi jvm\n");
}

TEST(Jvm, ArithmeticMatchesDirectMode)
{
    const char *src = R"(
        int main() {
            print_int(2 + 3 * 4 - 5 / 2); print_char(' ');
            print_int(100 % 7); print_char(' ');
            print_int((1 << 12) >> 3); print_char(' ');
            print_int(-7 / 2); print_char(' ');
            print_int(0xff ^ 0x3c); print_char(' ');
            print_int(~5 & 0xff); print_char(' ');
            print_int(3 < 4); print_int(4 <= 3); print_int(5 == 5);
            return 0;
        }
    )";
    EXPECT_EQ(runJvm(src), runDirectRef(src));
}

TEST(Jvm, ControlFlowMatchesDirectMode)
{
    const char *src = R"(
        int main() {
            int total = 0;
            for (int i = 0; i < 20; i += 1) {
                if (i % 3 == 0)
                    continue;
                if (i == 17)
                    break;
                total += i;
            }
            int k = 1;
            while (k < 100)
                k = k * 2 + 1;
            print_int(total); print_char(' '); print_int(k);
            return 0;
        }
    )";
    EXPECT_EQ(runJvm(src), runDirectRef(src));
}

TEST(Jvm, RecursionAndCalls)
{
    const char *src = R"(
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { print_int(ack(2, 3)); return 0; }
    )";
    EXPECT_EQ(runJvm(src), "9");
}

TEST(Jvm, GlobalsBecomeStatics)
{
    const char *src = R"(
        int counter = 10;
        int table[5] = {5, 4, 3, 2, 1};
        char text[8] = "abc";
        int main() {
            counter += 32;
            int s = 0;
            for (int i = 0; i < 5; i += 1)
                s += table[i] * i;
            print_int(counter); print_char(' ');
            print_int(s); print_char(' ');
            print_str(text);
            return 0;
        }
    )";
    EXPECT_EQ(runJvm(src), "42 20 abc");
}

TEST(Jvm, LocalArraysAllocateOnHeap)
{
    const char *src = R"(
        int main() {
            int buf[32];
            char bytes[16];
            for (int i = 0; i < 32; i += 1)
                buf[i] = i * 3;
            bytes[0] = 'x';
            print_int(buf[31]);
            print_char(bytes[0]);
            return 0;
        }
    )";
    EXPECT_EQ(runJvm(src), "93x");
}

TEST(Jvm, DerefActsAsIndexZero)
{
    const char *src = R"(
        int g[4] = {9, 8, 7, 6};
        int first(int *p) { return *p; }
        int main() { print_int(first(g)); return 0; }
    )";
    EXPECT_EQ(runJvm(src), "9");
}

TEST(Jvm, AssignAsValueAndCompound)
{
    const char *src = R"(
        int a[3];
        int main() {
            int x;
            int y;
            x = (y = 5) + 1;
            a[1] = 10;
            a[1] += x;
            print_int(x); print_char(' ');
            print_int(y); print_char(' ');
            print_int(a[1] = a[1] + 1);
            return 0;
        }
    )";
    EXPECT_EQ(runJvm(src), "6 5 17");
}

TEST(Jvm, PointerArithmeticRejected)
{
    EXPECT_EXIT((void)minic::compileBytecode(R"(
            int g[4];
            int main() { int *p = g; return *(p + 1); }
        )"),
                testing::ExitedWithCode(1), "pointer arithmetic");
    EXPECT_EXIT((void)minic::compileBytecode(
                    "int main() { int x = 1; int *p = &x; return *p; }"),
                testing::ExitedWithCode(1), "not supported");
}

TEST(Jvm, DivisionByZeroIsFatal)
{
    EXPECT_EXIT((void)runJvm("int main() { int z = 0; return 5 / z; }"),
                testing::ExitedWithCode(1), "division by zero");
}

TEST(Jvm, ArrayBoundsChecked)
{
    EXPECT_EXIT((void)runJvm(
                    "int g[4]; int main() { int i = 9; return g[i]; }"),
                testing::ExitedWithCode(1), "out of bounds");
}

TEST(Jvm, FileIoNatives)
{
    vfs::FileSystem fs;
    fs.writeFile("in.txt", "payload!");
    const char *src = R"(
        char buf[32];
        int main() {
            int fd = open("in.txt", 0);
            int n = read(fd, buf, 31);
            close(fd);
            buf[n] = 0;
            print_str(buf);
            print_int(n);
            return 0;
        }
    )";
    EXPECT_EQ(runJvm(src, nullptr, &fs), "payload!8");
}

TEST(Jvm, GcCollectsGarbageArrays)
{
    const char *src = R"(
        int work(int n) {
            int tmp[64];
            tmp[0] = n;
            return tmp[0] + 1;
        }
        int main() {
            int s = 0;
            for (int i = 0; i < 20000; i += 1)
                s = work(s) & 0xffff;
            print_int(s);
            return 0;
        }
    )";
    jvm::Vm *vm = nullptr;
    std::string out = runJvm(src, nullptr, nullptr, nullptr, &vm);
    EXPECT_FALSE(out.empty());
    ASSERT_NE(vm, nullptr);
    EXPECT_GT(vm->heap().collections(), 0u) << "GC must have run";
    EXPECT_GE(vm->heap().totalAllocations(), 20000u);
    EXPECT_LT(vm->heap().liveObjects(), 10000u)
        << "dead frames' arrays were collected";
}

TEST(Jvm, LiveObjectSurvivesHeapGrowthAndGc)
{
    // Regression guard for the reference-invalidated-by-growth bug
    // class: a long-lived array's contents must survive thousands of
    // later allocations (which grow the heap's object table and
    // trigger collections).
    const char *src = R"(
        int main() {
            int keep[16];
            for (int i = 0; i < 16; i += 1)
                keep[i] = i * 3 + 1;
            int s = 0;
            for (int i = 0; i < 30000; i += 1) {
                int tmp[32];
                tmp[0] = i;
                s = (s + tmp[0]) & 0xffff;
            }
            for (int i = 0; i < 16; i += 1)
                s = s + keep[i];
            print_int(s);
            return 0;
        }
    )";
    EXPECT_EQ(runJvm(src), runDirectRef(src));
}

TEST(Jvm, GfxNativesDrawDeterministically)
{
    const char *src = R"(
        int main() {
            gfx_init(64, 64);
            gfx_clear(0);
            gfx_fillrect(8, 8, 16, 16, 3);
            gfx_line(0, 0, 63, 63, 1);
            gfx_circle(40, 20, 10, 2);
            gfx_text(2, 50, "OK", 4);
            gfx_flush();
            print_str("drawn");
            return 0;
        }
    )";
    jvm::Vm *vm = nullptr;
    EXPECT_EQ(runJvm(src, nullptr, nullptr, nullptr, &vm), "drawn");
    ASSERT_NE(vm->natives().framebuffer(), nullptr);
    auto *fb = vm->natives().framebuffer();
    EXPECT_GT(fb->countPixels(3), 200);
    EXPECT_GT(fb->countPixels(1), 30);
}

TEST(Jvm, FetchDecodeSmallAndUniform)
{
    // Table 2: Java fetch/decode is ~16 native instructions per
    // command, independent of program.
    auto fd_of = [](const char *src) {
        trace::Profile profile;
        runJvm(src, nullptr, nullptr, &profile);
        return profile.fetchDecodePerCommand();
    };
    double a = fd_of(
        "int main() { int s = 0;"
        " for (int i = 0; i < 3000; i += 1) s += i; return 0; }");
    double b = fd_of(R"(
        int g[128];
        int main() {
            for (int r = 0; r < 40; r += 1)
                for (int i = 0; i < 128; i += 1)
                    g[i] += g[(i + 9) & 127];
            return 0;
        })");
    EXPECT_GT(a, 8.0);
    EXPECT_LT(a, 24.0);
    EXPECT_NEAR(a, b, 3.0) << "uniform bytecode representation";
}

TEST(Jvm, StackAccessCheaperThanStaticAccess)
{
    // §3.3: stack ~2 instructions, field ~11. Compare execute cost of
    // a locals-only loop vs a statics-heavy loop.
    auto exec_per_cmd = [](const char *src) {
        trace::Profile profile;
        runJvm(src, nullptr, nullptr, &profile);
        return profile.executePerCommand();
    };
    double local_cost = exec_per_cmd(
        "int main() { int s = 0;"
        " for (int i = 0; i < 5000; i += 1) s += i; return 0; }");
    double static_cost = exec_per_cmd(
        "int s; int i;"
        "int main() {"
        " for (i = 0; i < 5000; i += 1) s += i; return 0; }");
    EXPECT_LT(local_cost, static_cost);
}

TEST(Jvm, NativeGraphicsDominatesGfxPrograms)
{
    // Figure 2: graphics programs spend most execute instructions in
    // native runtime libraries.
    trace::Profile profile;
    runJvm(R"(
        int main() {
            gfx_init(256, 256);
            for (int f = 0; f < 12; f += 1) {
                gfx_clear(0);
                gfx_fillrect(f * 4, f * 3, 120, 90, 2);
                gfx_fillcircle(128, 128, 40 + f, 3);
                gfx_flush();
            }
            return 0;
        })", nullptr, nullptr, &profile);
    double native_share =
        (double)profile.nativeLibInsts() / (double)profile.executeInsts();
    EXPECT_GT(native_share, 0.4);
}

TEST(Jvm, StaticValueInspection)
{
    const char *src = "int answer; int main() { answer = 42; return 0; }";
    jvm::Vm *vm = nullptr;
    runJvm(src, nullptr, nullptr, nullptr, &vm);
    EXPECT_EQ(vm->staticValue("answer"), 42);
}

} // namespace
