/**
 * @file
 * interpd end-to-end and unit tests.
 *
 * The end-to-end suite runs a real Server (event loop on its own
 * thread, workers on the harness pool) against a Unix-domain socket
 * and drives it through the same loadgen code path the CLI tool uses.
 * It pins the acceptance contract of the serving mode:
 *
 *   identity   every OK response is byte-identical to what the batch
 *              harness produces for the same spec (commands, native
 *              instructions, stdout) — serving must not perturb the
 *              measurement, even with several modes in flight;
 *   shedding   an over-capacity burst yields SHED responses and zero
 *              crashes, and every request id is answered exactly once;
 *   deadlines  an already-expired deadline returns DEADLINE without
 *              executing; a mid-run expiry aborts at a safepoint;
 *   stats      STATS counters reconcile exactly with client-observed
 *              totals.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <unistd.h>

#include "harness/runner.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "server/stats.hh"
#include "support/logging.hh"
#include "tracefile/reader.hh"
#include "workloads/registry.hh"

using namespace interp;
using namespace interp::server;
using harness::Lang;

namespace {

/** A running daemon on a private Unix socket, torn down on scope exit. */
class TestServer
{
  public:
    explicit TestServer(ServerConfig cfg)
    {
        static int counter = 0;
        char path[96];
        std::snprintf(path, sizeof(path), "/tmp/interpd_test_%d_%d.sock",
                      (int)::getpid(), counter++);
        cfg.unixPath = path;
        server = std::make_unique<Server>(cfg);
        server->start();
        loop = std::thread([this] { server->run(); });
    }

    ~TestServer()
    {
        server->stop();
        loop.join();
        server.reset();
    }

    const std::string &path() const { return server->config().unixPath; }
    Server &daemon() { return *server; }

  private:
    std::unique_ptr<Server> server;
    std::thread loop;
};

/** What the batch harness measures for a micro spec under `mode`. */
harness::Measurement
batchMeasure(Lang mode, const std::string &op, int iterations)
{
    harness::BenchSpec spec =
        harness::microBench(harness::baselineOf(mode), op, iterations);
    spec.lang = mode;
    return harness::run(spec, {}, nullptr, /*with_machine=*/false);
}

EvalRequest
microRequest(Lang mode, uint32_t iterations)
{
    EvalRequest req;
    req.mode = mode;
    req.program = "micro:a=b+c";
    req.iterations = iterations;
    return req;
}

} // namespace

// --- protocol unit tests ---------------------------------------------------

TEST(Protocol, EvalRequestRoundTrip)
{
    EvalRequest req;
    req.id = 7;
    req.mode = Lang::JavaQuick;
    req.flags = kFlagRecordTrace | kFlagWithMachine;
    req.deadlineMs = 1500;
    req.maxCommands = 123456789;
    req.iterations = 42;
    req.kind = ProgramKind::Inline;
    req.program = "puts \"hi\"";

    std::string wire;
    encodeEvalRequest(wire, req);

    std::string payload;
    ASSERT_EQ(takeFrame(wire, payload, kMaxRequestBytes),
              FrameResult::Frame);
    EXPECT_TRUE(wire.empty());
    EXPECT_EQ(requestVerb(payload), (uint8_t)Verb::Eval);

    EvalRequest back;
    ASSERT_TRUE(decodeEvalRequest(payload, back));
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.mode, req.mode);
    EXPECT_EQ(back.flags, req.flags);
    EXPECT_EQ(back.deadlineMs, req.deadlineMs);
    EXPECT_EQ(back.maxCommands, req.maxCommands);
    EXPECT_EQ(back.iterations, req.iterations);
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.program, req.program);
}

TEST(Protocol, ResponseRoundTripAndPartialFrames)
{
    EvalResponse resp;
    resp.id = 99;
    resp.status = Status::Deadline;
    resp.commands = 1;
    resp.instructions = 2;
    resp.cycles = 3;
    resp.queueMicros = 4;
    resp.serviceMicros = 5;
    resp.result = "late";

    std::string wire;
    encodeResponse(wire, resp);

    // Feed the stream a byte at a time: Incomplete until the last one.
    std::string buf, payload;
    for (size_t i = 0; i + 1 < wire.size(); ++i) {
        buf.push_back(wire[i]);
        ASSERT_EQ(takeFrame(buf, payload, kMaxResponseBytes),
                  FrameResult::Incomplete);
    }
    buf.push_back(wire.back());
    ASSERT_EQ(takeFrame(buf, payload, kMaxResponseBytes),
              FrameResult::Frame);

    EvalResponse back;
    ASSERT_TRUE(decodeResponse(payload, back));
    EXPECT_EQ(back.id, resp.id);
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.result, resp.result);
    EXPECT_EQ(back.queueMicros, resp.queueMicros);
}

TEST(Protocol, MalformationsAreRejected)
{
    // Oversized frame length.
    std::string buf("\xff\xff\xff\xff", 4);
    std::string payload;
    EXPECT_EQ(takeFrame(buf, payload, kMaxRequestBytes),
              FrameResult::Malformed);

    // Unknown mode byte.
    EvalRequest req;
    req.program = "des";
    std::string wire;
    encodeEvalRequest(wire, req);
    ASSERT_EQ(takeFrame(wire, payload, kMaxRequestBytes),
              FrameResult::Frame);
    std::string bad = payload;
    bad[5] = (char)0x7f; // mode field (verb + u32 id precede it)
    EvalRequest back;
    EXPECT_FALSE(decodeEvalRequest(bad, back));

    // Truncated payload.
    bad = payload.substr(0, payload.size() - 1);
    EXPECT_FALSE(decodeEvalRequest(bad, back));
    // Trailing garbage.
    bad = payload + "x";
    EXPECT_FALSE(decodeEvalRequest(bad, back));

    // STATS decoder rejects an EVAL payload and vice versa.
    StatsRequest sback;
    EXPECT_FALSE(decodeStatsRequest(payload, sback));
}

TEST(Protocol, StatsRequestRoundTrip)
{
    StatsRequest req;
    req.id = 31337;
    std::string wire;
    encodeStatsRequest(wire, req);
    std::string payload;
    ASSERT_EQ(takeFrame(wire, payload, kMaxRequestBytes),
              FrameResult::Frame);
    EXPECT_EQ(requestVerb(payload), (uint8_t)Verb::Stats);
    StatsRequest back;
    ASSERT_TRUE(decodeStatsRequest(payload, back));
    EXPECT_EQ(back.id, req.id);
}

TEST(Protocol, RecvBufferBurstDrainsIdenticalFrames)
{
    // The O(F*B) regression: a large pipelined burst used to cost one
    // whole-buffer memmove per frame. The RecvBuffer drain must hand
    // back exactly the frame sequence the string-based drain does, in
    // every chunking, with hello handling included.
    std::string wire;
    encodeHello(wire);
    constexpr int kFrames = 4000;
    for (int i = 0; i < kFrames; ++i) {
        EvalRequest req;
        req.id = (uint32_t)i;
        req.mode = Lang::Tcl;
        // Sizes vary so frame boundaries land at every chunk offset.
        req.program = std::string(1 + (i * 37) % 300, 'a' + i % 26);
        encodeEvalRequest(wire, req);
    }

    auto drainString = [&](size_t chunk) {
        std::vector<std::string> frames;
        std::string buf, payload;
        bool greeted = false;
        for (size_t off = 0; off < wire.size(); off += chunk) {
            buf.append(wire, off, std::min(chunk, wire.size() - off));
            if (!greeted) {
                if (takeHello(buf) != HelloResult::Ok)
                    continue;
                greeted = true;
            }
            while (takeFrame(buf, payload, kMaxRequestBytes) ==
                   FrameResult::Frame)
                frames.push_back(payload);
        }
        EXPECT_TRUE(buf.empty());
        return frames;
    };
    auto drainRecv = [&](size_t chunk) {
        std::vector<std::string> frames;
        RecvBuffer buf;
        std::string payload;
        bool greeted = false;
        for (size_t off = 0; off < wire.size(); off += chunk) {
            size_t n = std::min(chunk, wire.size() - off);
            buf.append(wire.data() + off, n);
            if (!greeted) {
                if (takeHello(buf) != HelloResult::Ok)
                    continue;
                greeted = true;
            }
            while (takeFrame(buf, payload, kMaxRequestBytes) ==
                   FrameResult::Frame)
                frames.push_back(payload);
        }
        EXPECT_TRUE(buf.empty());
        return frames;
    };

    // One poll cycle delivering the whole burst, typical read sizes,
    // and a pathological byte-at-a-time trickle over a small prefix.
    for (size_t chunk : {wire.size(), (size_t)65536, (size_t)4096,
                         (size_t)1023}) {
        std::vector<std::string> want = drainString(chunk);
        std::vector<std::string> got = drainRecv(chunk);
        ASSERT_EQ(want.size(), got.size()) << "chunk " << chunk;
        EXPECT_EQ(want.size(), (size_t)kFrames) << "chunk " << chunk;
        for (size_t i = 0; i < want.size(); ++i)
            ASSERT_EQ(want[i], got[i])
                << "chunk " << chunk << " frame " << i;
    }
}

TEST(Protocol, RecvBufferCompactsOncePerAppendCycle)
{
    // consume() must not move bytes; the erase happens lazily on the
    // next append. size()/data() always describe the unread suffix.
    RecvBuffer buf;
    buf.append("abcdef", 6);
    buf.consume(4);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(std::string(buf.data(), buf.size()), "ef");
    buf.append("gh", 2);
    EXPECT_EQ(std::string(buf.data(), buf.size()), "efgh");
    buf.consume(4);
    EXPECT_TRUE(buf.empty());
    // Defensive clamp: a consume past the end empties, never UB.
    buf.append("xy", 2);
    buf.consume(99);
    EXPECT_TRUE(buf.empty());
    buf.clear();
    EXPECT_TRUE(buf.empty());
}

// --- stats unit tests ------------------------------------------------------

TEST(LatencyHistogram, BucketsAreLog2)
{
    EXPECT_EQ(LatencyHistogram::bucketOf(0), 0);
    EXPECT_EQ(LatencyHistogram::bucketOf(1), 0);
    EXPECT_EQ(LatencyHistogram::bucketOf(2), 1);
    EXPECT_EQ(LatencyHistogram::bucketOf(3), 1);
    EXPECT_EQ(LatencyHistogram::bucketOf(1023), 9);
    EXPECT_EQ(LatencyHistogram::bucketOf(1024), 10);
    EXPECT_EQ(LatencyHistogram::bucketFloor(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketFloor(10), 1024u);
    EXPECT_EQ(LatencyHistogram::bucketCeil(0), 1u);
    EXPECT_EQ(LatencyHistogram::bucketCeil(10), 2047u);
    // Every value lands in the bucket that brackets it:
    // floor <= v <= ceil.
    for (uint64_t v :
         {0ull, 1ull, 7ull, 100ull, 4095ull, 1ull << 20}) {
        int b = LatencyHistogram::bucketOf(v);
        EXPECT_LE(LatencyHistogram::bucketFloor(b), v);
        EXPECT_GE(LatencyHistogram::bucketCeil(b), v);
    }

    LatencyHistogram h;
    for (int i = 0; i < 99; ++i)
        h.add(10); // bucket 3: [8, 16)
    h.add(100000); // bucket 16: [65536, 131072)
    EXPECT_EQ(h.count(), 100u);
    // Quantiles resolve to the bucket's inclusive upper bound, so
    // they never under-report the tail (the old floor answer turned
    // a p99 of 10us into "8us").
    EXPECT_EQ(h.quantile(0.50), 15u);
    EXPECT_EQ(h.quantile(0.99), 15u);
    EXPECT_EQ(h.quantile(1.0), 131071u);
    EXPECT_LE(10u, h.quantile(0.50));
    EXPECT_LE(100000u, h.quantile(1.0));
}

TEST(LatencyHistogram, QuantileNeverBelowExactQuantile)
{
    // The histogram quantile and LoadgenTotals::percentile use the
    // same rank formula (q * (n-1) over the sorted samples); with
    // ceiling resolution the coarse answer must bound the exact one
    // from above at every probed quantile.
    std::vector<uint64_t> samples;
    LatencyHistogram h;
    uint64_t v = 1;
    for (int i = 0; i < 500; ++i) {
        v = (v * 2862933555777941757ull + 3037000493ull) % 200000;
        samples.push_back(v);
        h.add(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        uint64_t exact =
            samples[(size_t)(q * (double)(samples.size() - 1))];
        EXPECT_LE(exact, h.quantile(q)) << "q=" << q;
    }
}

TEST(ServerStatsJson, RenderAndParse)
{
    ServerStats stats;
    stats.noteAccepted(Lang::Tcl);
    stats.noteServed(Lang::Tcl);
    stats.noteAccepted(Lang::Mipsi);
    stats.noteShed(Lang::Mipsi);
    stats.noteLatency(10, 1000);

    std::string json = stats.renderJson(3, 2);
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "accepted", v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Tcl.served", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.MIPSI.shed", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "queued_jobs", v));
    EXPECT_EQ(v, 3u);
    ASSERT_TRUE(statsJsonUint(json, "idle_workers", v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(statsJsonUint(json, "histograms.total_us.count", v));
    EXPECT_EQ(v, 1u);
    EXPECT_FALSE(statsJsonUint(json, "modes.Perl.served", v));
    EXPECT_FALSE(statsJsonUint(json, "no.such.path", v));
}

// --- end-to-end: identity under concurrency --------------------------------

TEST(ServerEndToEnd, LoadgenMatchesBatchHarnessAcrossModes)
{
    const uint32_t kIters = 300;
    const std::vector<Lang> modes = {Lang::Mipsi, Lang::Java,
                                     Lang::Tcl, Lang::MipsiThreaded};

    // The serving path must reproduce the batch harness bit for bit.
    std::map<Lang, harness::Measurement> expected;
    for (Lang mode : modes)
        expected.emplace(mode,
                         batchMeasure(mode, "a=b+c", (int)kIters));

    ServerConfig cfg;
    cfg.workers = 2;
    TestServer ts(cfg);

    LoadgenOptions opt;
    opt.unixPath = ts.path();
    opt.clients = 4;
    opt.requestsPerClient = 6;
    for (Lang mode : modes)
        opt.mix.push_back(microRequest(mode, kIters));
    opt.onResponse = [&expected](const EvalRequest &req,
                                 const EvalResponse &resp) {
        ASSERT_EQ(resp.status, Status::Ok) << resp.result;
        const harness::Measurement &m = expected.at(req.mode);
        EXPECT_EQ(resp.commands, m.commands);
        EXPECT_EQ(resp.instructions, m.profile.instructions());
        EXPECT_EQ(resp.result, m.stdoutText);
        EXPECT_EQ(resp.cycles, 0u); // no kFlagWithMachine
    };

    LoadgenReport report = runLoadgen(opt);
    EXPECT_EQ(report.all.sent, 24u);
    EXPECT_EQ(report.all.ok, 24u);

    // STATS reconciles exactly with the client-observed totals.
    Client conn = Client::connectUnix(ts.path());
    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "accepted", v));
    EXPECT_EQ(v, report.all.sent);
    ASSERT_TRUE(statsJsonUint(json, "served", v));
    EXPECT_EQ(v, report.all.ok);
    ASSERT_TRUE(statsJsonUint(json, "shed", v));
    EXPECT_EQ(v, 0u);
    ASSERT_TRUE(statsJsonUint(json, "deadline", v));
    EXPECT_EQ(v, 0u);
    ASSERT_TRUE(statsJsonUint(json, "failed", v));
    EXPECT_EQ(v, 0u);
    ASSERT_TRUE(statsJsonUint(json, "histograms.total_us.count", v));
    EXPECT_EQ(v, report.all.ok);
    for (Lang mode : modes) {
        std::string path = std::string("modes.") +
                           harness::langName(mode) + ".served";
        ASSERT_TRUE(statsJsonUint(json, path, v)) << path;
        EXPECT_EQ(v, report.byMode.at(harness::langName(mode)).ok);
    }
}

// --- end-to-end: backpressure ----------------------------------------------

TEST(ServerEndToEnd, OverCapacityBurstShedsWithoutCrashing)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxQueue = 2;
    cfg.maxBatch = 1;
    TestServer ts(cfg);

    // Pipeline a burst far beyond queue capacity; every id must come
    // back exactly once, sheds must appear, nothing may crash.
    const uint32_t kBurst = 12;
    Client conn = Client::connectUnix(ts.path());
    for (uint32_t i = 1; i <= kBurst; ++i) {
        EvalRequest req = microRequest(Lang::Tcl, 20000);
        req.id = i;
        conn.sendEval(req);
    }

    std::map<uint32_t, Status> outcomes;
    for (uint32_t i = 0; i < kBurst; ++i) {
        EvalResponse resp = conn.recv();
        EXPECT_TRUE(outcomes.emplace(resp.id, resp.status).second)
            << "duplicate response for id " << resp.id;
    }
    ASSERT_EQ(outcomes.size(), kBurst);

    uint64_t ok = 0, shed = 0;
    for (const auto &entry : outcomes) {
        ASSERT_TRUE(entry.second == Status::Ok ||
                    entry.second == Status::Shed)
            << "id " << entry.first << " -> "
            << statusName(entry.second);
        (entry.second == Status::Ok ? ok : shed)++;
    }
    EXPECT_GE(ok, 1u);   // at least the in-flight request ran
    EXPECT_GE(shed, 1u); // the burst exceeded queue + in-flight
    EXPECT_EQ(ok + shed, kBurst);

    // And the daemon is still healthy afterwards.
    EvalRequest again = microRequest(Lang::Tcl, 300);
    again.id = 777;
    EvalResponse resp = conn.eval(again);
    EXPECT_EQ(resp.status, Status::Ok) << resp.result;

    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "accepted", v));
    EXPECT_EQ(v, (uint64_t)kBurst + 1);
    ASSERT_TRUE(statsJsonUint(json, "shed", v));
    EXPECT_EQ(v, shed);
    ASSERT_TRUE(statsJsonUint(json, "served", v));
    EXPECT_EQ(v, ok + 1);
}

// --- end-to-end: deadlines -------------------------------------------------

TEST(ServerEndToEnd, ExpiredDeadlineReturnsWithoutExecuting)
{
    ServerConfig cfg;
    cfg.workers = 1;
    TestServer ts(cfg);

    Client conn = Client::connectUnix(ts.path());

    // A (no deadline) occupies the single worker; B (deadline 0 =
    // already expired) must be answered DEADLINE at dequeue with zero
    // work done. FIFO order makes this deterministic.
    EvalRequest a = microRequest(Lang::Mipsi, 20000);
    a.id = 1;
    EvalRequest b = microRequest(Lang::Mipsi, 20000);
    b.id = 2;
    b.deadlineMs = 0;
    conn.sendEval(a);
    conn.sendEval(b);

    std::map<uint32_t, EvalResponse> responses;
    for (int i = 0; i < 2; ++i) {
        EvalResponse resp = conn.recv();
        responses[resp.id] = resp;
    }
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[1].status, Status::Ok) << responses[1].result;
    EXPECT_EQ(responses[2].status, Status::Deadline);
    EXPECT_EQ(responses[2].commands, 0u);
    EXPECT_EQ(responses[2].instructions, 0u);
    EXPECT_EQ(responses[2].result, "deadline expired before execution");

    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "deadline", v));
    EXPECT_EQ(v, 1u);
}

TEST(ServerEndToEnd, MidRunDeadlineAbortsAtSafepoint)
{
    ServerConfig cfg;
    cfg.workers = 1;
    TestServer ts(cfg);

    Client conn = Client::connectUnix(ts.path());
    // Big enough to run well past the deadline; the safepoint sink
    // must cut it off (or the dequeue check, if the queue was slow —
    // either way: DEADLINE, never a full run).
    EvalRequest req = microRequest(Lang::Tcl, 2'000'000);
    req.id = 5;
    req.deadlineMs = 1;
    EvalResponse resp = conn.eval(req);
    EXPECT_EQ(resp.status, Status::Deadline);
    EXPECT_EQ(resp.commands, 0u);
}

TEST(ServerEndToEnd, MixedClassLoadSplitsOutcomesByClass)
{
    // A heterogeneous interactive:batch mix through one overloaded
    // daemon: deadline misses and sheds must be attributable to the
    // traffic class that suffered them, and the client-side per-class
    // ledger must reconcile with the server's STATS counters.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxQueue = 2;
    cfg.maxBatch = 1;
    TestServer ts(cfg);

    auto named = [](const char *name, uint32_t deadline) {
        EvalRequest req;
        req.mode = Lang::Mipsi;
        req.kind = ProgramKind::Named;
        req.program = name;
        req.deadlineMs = deadline;
        return req;
    };

    LoadgenOptions opt;
    opt.unixPath = ts.path();
    opt.clients = 4;
    opt.requestsPerClient = 8;
    opt.openRatePerSec = 2000; // far beyond one worker + queue of 2
    // Interactive requests carry an already-expired deadline, so any
    // that reach the worker are answered DEADLINE deterministically;
    // batch requests are unbounded registry runs slow enough (~70ms)
    // that the open-loop schedule must overflow the queue.
    opt.mix.push_back(named("spin", 0));
    opt.mix.push_back(named("matmul", kNoDeadline));
    opt.classOf = [](const EvalRequest &req) {
        const workloads::Workload *w = workloads::find(req.program);
        return std::string(
            w ? workloads::trafficName(w->traffic) : "other");
    };

    LoadgenReport report = runLoadgen(opt);

    ASSERT_EQ(report.byClass.size(), 2u);
    const LoadgenTotals &inter = report.byClass.at("interactive");
    const LoadgenTotals &batch = report.byClass.at("batch");

    // The classes partition the run exactly.
    EXPECT_EQ(report.all.sent, 32u);
    EXPECT_EQ(inter.sent, 16u);
    EXPECT_EQ(batch.sent, 16u);
    for (const LoadgenTotals *t : {&inter, &batch})
        EXPECT_EQ(t->sent,
                  t->ok + t->shed + t->deadline + t->error);

    // Deadline enforcement lands only on the class that set one: an
    // expired-deadline request never executes, so interactive gets no
    // OK and at least one DEADLINE, while batch can never miss.
    EXPECT_EQ(inter.ok, 0u);
    EXPECT_GE(inter.deadline, 1u);
    EXPECT_EQ(batch.deadline, 0u);
    EXPECT_EQ(inter.error, 0u);
    EXPECT_EQ(batch.error, 0u);
    // The overload must shed, yet batch work still completes.
    EXPECT_GE(report.all.shed, 1u);
    EXPECT_GE(batch.ok, 1u);

    // Server-side accounting reconciles with the per-class view:
    // every DEADLINE the daemon counted was an interactive request,
    // every SHED is in the client ledger.
    Client conn = Client::connectUnix(ts.path());
    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "deadline", v));
    EXPECT_EQ(v, inter.deadline);
    ASSERT_TRUE(statsJsonUint(json, "shed", v));
    EXPECT_EQ(v, report.all.shed);
}

// --- end-to-end: containment, inline programs, recording -------------------

TEST(ServerEndToEnd, PoisonedProgramIsContainedAsError)
{
    ServerConfig cfg;
    cfg.workers = 1;
    TestServer ts(cfg);

    Client conn = Client::connectUnix(ts.path());

    // Inline tclish program that works.
    EvalRequest good;
    good.id = 1;
    good.mode = Lang::Tcl;
    good.kind = ProgramKind::Inline;
    good.program = "puts \"served inline\"";
    EvalResponse resp = conn.eval(good);
    ASSERT_EQ(resp.status, Status::Ok) << resp.result;
    EXPECT_EQ(resp.result, "served inline\n");
    EXPECT_GT(resp.commands, 0u);

    // A poisoned program fails its own request, not the daemon.
    EvalRequest bad;
    bad.id = 2;
    bad.mode = Lang::Tcl;
    bad.kind = ProgramKind::Inline;
    bad.program = "no_such_command_at_all 1 2 3";
    resp = conn.eval(bad);
    EXPECT_EQ(resp.status, Status::Error);
    EXPECT_FALSE(resp.result.empty());

    // An unknown catalog name likewise.
    EvalRequest unknown;
    unknown.id = 3;
    unknown.mode = Lang::Perl;
    unknown.program = "no-such-benchmark";
    resp = conn.eval(unknown);
    EXPECT_EQ(resp.status, Status::Error);

    // The daemon survived both and still serves.
    resp = conn.eval(good);
    EXPECT_EQ(resp.status, Status::Ok) << resp.result;

    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "failed", v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(statsJsonUint(json, "served", v));
    EXPECT_EQ(v, 2u);
}

TEST(ServerEndToEnd, RecordFlagWritesReplayableTape)
{
    char dir[96];
    std::snprintf(dir, sizeof(dir), "/tmp/interpd_test_tapes_%d",
                  (int)::getpid());

    ServerConfig cfg;
    cfg.workers = 1;
    cfg.recordDir = dir;
    TestServer ts(cfg);

    Client conn = Client::connectUnix(ts.path());
    EvalRequest req = microRequest(Lang::Java, 300);
    req.id = 44;
    req.flags = kFlagRecordTrace;
    EvalResponse resp = conn.eval(req);
    ASSERT_EQ(resp.status, Status::Ok) << resp.result;

    // The tape exists, is finalized, and records the same run.
    // microBench names the spec after the op; -r44 is the request id.
    std::string tape = std::string(dir) + "/java-a_b_c-r44.itr";
    tracefile::TraceReader reader(tape);
    EXPECT_EQ(reader.meta().commands, resp.commands);
    EXPECT_TRUE(reader.meta().finished);
    std::remove(tape.c_str());
}

// --- end-to-end: open loop -------------------------------------------------

TEST(ServerEndToEnd, OpenLoopAccountsForEveryRequest)
{
    ServerConfig cfg;
    cfg.workers = 2;
    TestServer ts(cfg);

    LoadgenOptions opt;
    opt.unixPath = ts.path();
    opt.clients = 2;
    opt.requestsPerClient = 5;
    opt.openRatePerSec = 200; // paced sends, pipelined receives
    opt.mix.push_back(microRequest(Lang::Tcl, 300));
    opt.mix.push_back(microRequest(Lang::Mipsi, 300));

    LoadgenReport report = runLoadgen(opt);
    EXPECT_EQ(report.all.sent, 10u);
    EXPECT_EQ(report.all.ok + report.all.shed + report.all.deadline +
                  report.all.error,
              10u);
    EXPECT_EQ(report.all.ok, report.all.latencyUs.size());
    EXPECT_FALSE(report.table().empty());
}

// --- histogram edge cases ---------------------------------------------------

TEST(LatencyHistogram, QuantileOnEmptyIsZero)
{
    // An empty histogram has no samples to rank; every quantile is 0,
    // never a bucket bound hallucinated from zero counts. The proxy
    // renders quantiles for shards that have served nothing yet.
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 0u) << "q=" << q;
}

TEST(LatencyHistogram, MergeFromPartialPeerIsExactAtBucketGrain)
{
    // Merging a peer that has seen only some buckets (the common
    // cluster case: a shard that answered a handful of requests)
    // must equal the histogram of the concatenated sample sets —
    // bucket by bucket, count included.
    std::vector<uint64_t> mine = {1, 9, 9, 300, 70000};
    std::vector<uint64_t> peers = {10, 10000};

    LatencyHistogram a;
    for (uint64_t v : mine)
        a.add(v);
    LatencyHistogram b;
    for (uint64_t v : peers)
        b.add(v);
    LatencyHistogram all;
    for (uint64_t v : mine)
        all.add(v);
    for (uint64_t v : peers)
        all.add(v);

    a.mergeFrom(b);
    EXPECT_EQ(a.count(), all.count());
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(a.bucket(i), all.bucket(i)) << "bucket " << i;
    for (double q : {0.5, 0.99, 1.0})
        EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;

    // Merging into an empty histogram reproduces the peer exactly;
    // merging an empty peer is a no-op.
    LatencyHistogram empty;
    empty.mergeFrom(all);
    EXPECT_EQ(empty.count(), all.count());
    LatencyHistogram before = all;
    LatencyHistogram nothing;
    all.mergeFrom(nothing);
    EXPECT_EQ(all.count(), before.count());
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(all.bucket(i), before.bucket(i));
}

// --- end-to-end: dynamic tier-up -------------------------------------------

TEST(ServerEndToEnd, TierPromotionFiresAndPreservesIdentity)
{
    const uint32_t kIters = 300;

    // Baseline ground truth from the batch harness: every response,
    // whatever tier it ran at, must reproduce these.
    harness::Measurement java =
        batchMeasure(Lang::Java, "a=b+c", (int)kIters);
    harness::Measurement tcl =
        batchMeasure(Lang::Tcl, "a=b+c", (int)kIters);

    ServerConfig cfg;
    cfg.workers = 1; // sequential requests -> deterministic ladder
    cfg.tier.enabled = true;
    cfg.tier.remedyAfter = 2;
    cfg.tier.tier2After = 4;
    cfg.tier.commandsPerPoint = 1'000'000'000;
    cfg.tier.decayEvery = 1'000'000;
    TestServer ts(cfg);

    Client conn = Client::connectUnix(ts.path());
    const int kRequests = 6;
    std::vector<uint64_t> javaInsts, tclInsts;
    for (int i = 0; i < kRequests; ++i) {
        EvalResponse jr = conn.eval(microRequest(Lang::Java, kIters));
        ASSERT_EQ(jr.status, Status::Ok) << jr.result;
        EXPECT_EQ(jr.commands, java.commands) << "request " << i;
        EXPECT_EQ(jr.result, java.stdoutText) << "request " << i;
        javaInsts.push_back(jr.instructions);

        EvalResponse tr = conn.eval(microRequest(Lang::Tcl, kIters));
        ASSERT_EQ(tr.status, Status::Ok) << tr.result;
        EXPECT_EQ(tr.commands, tcl.commands) << "request " << i;
        EXPECT_EQ(tr.result, tcl.stdoutText) << "request " << i;
        tclInsts.push_back(tr.instructions);
    }

    // The cold run is the baseline; the fully-promoted run must be
    // spending measurably fewer native instructions per request.
    EXPECT_EQ(javaInsts.front(), java.profile.instructions());
    EXPECT_EQ(tclInsts.front(), tcl.profile.instructions());
    EXPECT_LT(javaInsts.back(), javaInsts.front());
    EXPECT_LT(tclInsts.back(), tclInsts.front());

    // STATS carries the promotion ledger, attributed to the baseline
    // request mode.
    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "modes.Java.tier_up_remedy", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Java.tier_up_tier2", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Java.tiered_runs", v));
    EXPECT_EQ(v, (uint64_t)kRequests - 1);
    ASSERT_TRUE(statsJsonUint(json, "modes.Tcl.tier_up_remedy", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Tcl.tier_up_tier2", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Tcl.tiered_runs", v));
    EXPECT_EQ(v, (uint64_t)kRequests - 1);
    // Daemon-total rollup includes the tier counters.
    ASSERT_TRUE(statsJsonUint(json, "tier_up_remedy", v));
    EXPECT_EQ(v, 2u);
    ASSERT_TRUE(statsJsonUint(json, "tier_up_tier2", v));
    EXPECT_EQ(v, 2u);
}

TEST(ServerEndToEnd, TierPromotionSafeUnderConcurrency)
{
    // The shared-mutable-program regression: many workers running —
    // and promoting — the same catalog program at once. Every
    // response must stay byte-identical to the batch harness, and
    // each promotion threshold must fire exactly once no matter how
    // many requests race across it.
    const uint32_t kIters = 300;
    harness::Measurement java =
        batchMeasure(Lang::Java, "a=b+c", (int)kIters);

    ServerConfig cfg;
    cfg.workers = 4;
    cfg.maxQueue = 256;
    cfg.tier.enabled = true;
    cfg.tier.remedyAfter = 3;
    cfg.tier.tier2After = 6;
    cfg.tier.commandsPerPoint = 1'000'000'000;
    cfg.tier.decayEvery = 1'000'000;
    TestServer ts(cfg);

    LoadgenOptions opt;
    opt.unixPath = ts.path();
    opt.clients = 4;
    opt.requestsPerClient = 8;
    opt.mix.push_back(microRequest(Lang::Java, kIters));
    opt.onResponse = [&java](const EvalRequest &,
                             const EvalResponse &resp) {
        ASSERT_EQ(resp.status, Status::Ok) << resp.result;
        EXPECT_EQ(resp.commands, java.commands);
        EXPECT_EQ(resp.result, java.stdoutText);
    };
    LoadgenReport report = runLoadgen(opt);
    EXPECT_EQ(report.all.sent, 32u);
    EXPECT_EQ(report.all.ok, 32u);

    Client conn = Client::connectUnix(ts.path());
    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "modes.Java.tier_up_remedy", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Java.tier_up_tier2", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Java.tiered_runs", v));
    EXPECT_GE(v, 2u);
}

TEST(ServerEndToEnd, JitPromotionClimbsToTierThreeAndPreservesIdentity)
{
    // The tier-3 rung over the wire: a hot catalog program must climb
    // baseline -> remedy -> tier-2 -> jit without the client seeing
    // anything but identical answers and a falling instruction bill.
    // Mipsi additionally exercises the aside-build: the first tier-3
    // request compiles and publishes the stencil program, later ones
    // load it from the catalog slot.
    const uint32_t kIters = 300;
    harness::Measurement mipsi =
        batchMeasure(Lang::Mipsi, "a=b+c", (int)kIters);
    harness::Measurement tcl =
        batchMeasure(Lang::Tcl, "a=b+c", (int)kIters);

    ServerConfig cfg;
    cfg.workers = 1; // sequential requests -> deterministic ladder
    cfg.tier.enabled = true;
    cfg.tier.remedyAfter = 2;
    cfg.tier.tier2After = 4;
    cfg.tier.jitAfter = 6;
    cfg.tier.commandsPerPoint = 1'000'000'000;
    cfg.tier.decayEvery = 1'000'000;
    TestServer ts(cfg);

    Client conn = Client::connectUnix(ts.path());
    const int kRequests = 9; // three requests past the jit threshold
    std::vector<uint64_t> mipsiInsts, tclInsts;
    for (int i = 0; i < kRequests; ++i) {
        EvalResponse mr = conn.eval(microRequest(Lang::Mipsi, kIters));
        ASSERT_EQ(mr.status, Status::Ok) << mr.result;
        EXPECT_EQ(mr.commands, mipsi.commands) << "request " << i;
        EXPECT_EQ(mr.result, mipsi.stdoutText) << "request " << i;
        mipsiInsts.push_back(mr.instructions);

        EvalResponse tr = conn.eval(microRequest(Lang::Tcl, kIters));
        ASSERT_EQ(tr.status, Status::Ok) << tr.result;
        EXPECT_EQ(tr.commands, tcl.commands) << "request " << i;
        EXPECT_EQ(tr.result, tcl.stdoutText) << "request " << i;
        tclInsts.push_back(tr.instructions);
    }

    EXPECT_EQ(mipsiInsts.front(), mipsi.profile.instructions());
    EXPECT_EQ(tclInsts.front(), tcl.profile.instructions());
    // Fully promoted beats both the cold run and the tier it came
    // from (the request right before the jit threshold).
    EXPECT_LT(mipsiInsts.back(), mipsiInsts.front());
    EXPECT_LT(tclInsts.back(), tclInsts.front());
    EXPECT_LT(mipsiInsts.back(), mipsiInsts[4]);
    EXPECT_LT(tclInsts.back(), tclInsts[4]);
    // Mipsi's builder request compiles in-run; once the published
    // stencil program is loaded the compile charge disappears.
    EXPECT_LT(mipsiInsts.back(), mipsiInsts[5]);

    std::string json = conn.stats();
    uint64_t v = 0;
    ASSERT_TRUE(statsJsonUint(json, "modes.MIPSI.tier_up_jit", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Tcl.tier_up_jit", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.Tcl.tier_up_tier2", v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(statsJsonUint(json, "modes.MIPSI.tiered_runs", v));
    EXPECT_EQ(v, (uint64_t)kRequests - 1);
    // Daemon-total rollup carries the new counter.
    ASSERT_TRUE(statsJsonUint(json, "tier_up_jit", v));
    EXPECT_EQ(v, 2u);
}
