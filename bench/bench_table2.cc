/**
 * @file
 * Regenerates Table 2: baseline performance of the interpreters on
 * the macro benchmark suite — program size, virtual commands, native
 * instructions (with Perl's precompilation in parentheses), the
 * average fetch/decode and execute instructions per virtual command,
 * and total simulated cycles on the Table 3 machine.
 *
 * Workloads are scaled down from the paper's (documented in
 * EXPERIMENTS.md); compare shapes, not absolute counts.
 *
 * `--jobs N` (or INTERP_JOBS) runs the suite on N worker threads;
 * the table is byte-identical at any job count. `--record <dir>`
 * additionally captures each run as a binary trace; `--replay <dir>`
 * regenerates the table from previously recorded traces without
 * re-interpreting anything (again byte-identical).
 * `--modes=baseline|remedies|all` additionally runs the §5 remedy
 * modes (threaded MIPSI, quickened JVM, Tcl bytecode).
 */

#include <cstdio>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"
#include "support/strutil.hh"

using namespace interp;
using namespace interp::harness;

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);

    std::printf("Table 2: baseline performance of the interpreters\n");
    std::printf("(counts in units of 10^3, as in the paper)\n\n");
    std::printf("%-6s %-10s %7s %10s %14s %12s %8s %12s\n", "Lang",
                "Benchmark", "Size", "VirtCmds", "NativeInsts",
                "Fetch/Dec", "Execute", "Cycles");
    std::printf("%-6s %-10s %7s %10s %14s %12s %8s %12s\n", "", "",
                "(KB)", "(x10^3)", "(x10^3)", "per cmd", "per cmd",
                "(x10^3)");
    std::printf("--------------------------------------------------"
                "--------------------------------\n");

    SuiteOptions opt;
    opt.jobs = jobs;
    opt.io = tio;

    Lang last = Lang::C;
    bool first = true;
    for (const Measurement &m : runSuite(withModes(macroSuite(), modes),
                                         opt)) {
        if (m.failed) {
            std::printf("%-6s %-10s failed: %s\n", langName(m.lang),
                        m.name.c_str(), m.error.c_str());
            continue;
        }
        if (!first && m.lang != last)
            std::printf("\n");
        first = false;
        last = m.lang;

        std::string insts = sigThousands((double)m.profile.userInstructions());
        if (m.profile.precompileInsts() > 0)
            insts = "(" +
                    sigThousands((double)m.profile.precompileInsts()) +
                    ") " + insts;

        double fd = m.profile.fetchDecodePerCommand();
        double ex = m.profile.executePerCommand();

        std::printf("%-6s %-10s %7.1f %10s %14s %12.0f %8.0f %12s%s\n",
                    langName(m.lang), m.name.c_str(),
                    m.programBytes / 1024.0,
                    sigThousands((double)m.commands).c_str(),
                    insts.c_str(), fd, ex,
                    sigThousands((double)m.cycles).c_str(),
                    m.finished ? "" : "  [budget]");
    }

    std::printf("\nPaper reference (Table 2): MIPSI f/d ~47-51, exec "
                "~17-23; Java f/d ~16, exec ~18-170;\nPerl f/d "
                "~130-200, exec ~82-2300; Tcl f/d ~2000-5200, exec "
                "~1500-5400.\n");
    return 0;
}
