/**
 * @file
 * Cluster scaling sweep: one interproxy router in front of 1/2/4/8
 * interpd shards, driven by the closed-loop load generator.
 *
 * Each point brings up an in-process LocalCluster, replays the same
 * mixed-key request set (three execution modes x six catalog micro
 * programs = eighteen routing keys, enough to spread across eight
 * shards), and reports client-observed throughput and p50/p95/p99
 * plus the router's own accounting: per-shard forwarded counts (the
 * balance evidence), retries, reroutes, and shed/error totals. A
 * `direct` baseline runs the identical load straight at a single
 * shard socket, so the proxy's per-request routing cost is the
 * difference between `direct` and the 1-shard proxied point.
 *
 * On a multi-core host the points show capacity scaling; on a 1-core
 * container (this repo's CI) total service capacity is fixed, so the
 * honest claims are (a) balance — forwarded counts per shard stay
 * within a small factor of each other, and (b) non-degradation — the
 * router adds no serialization, so throughput and tail latency stay
 * flat as shards are added. EXPERIMENTS.md documents both readings.
 *
 * `--json [file]` writes BENCH_cluster.json (schema
 * interp-cluster-v1); other knobs below.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/spawn.hh"
#include "server/client.hh"
#include "server/stats.hh"
#include "support/logging.hh"

using namespace interp;
using namespace interp::server;
using Clock = std::chrono::steady_clock;

namespace {

struct Point
{
    std::string label; ///< "direct" or "proxy"
    unsigned shards = 1;
    double wallMs = 0;
    double reqPerSec = 0;
    uint64_t sent = 0, ok = 0, shed = 0, error = 0;
    uint64_t p50 = 0, p95 = 0, p99 = 0;
    uint64_t retries = 0, rerouted = 0;
    std::vector<uint64_t> forwarded; ///< per shard, proxied points
};

struct Options
{
    std::vector<unsigned> shardCounts = {1, 2, 4, 8};
    unsigned clients = 8;
    unsigned requestsPerClient = 40;
    unsigned workersPerShard = 2;
    uint32_t iterations = 1500;
    unsigned repeat = 2; ///< best-of per point
    std::string jsonPath;
};

std::vector<EvalRequest>
requestMix(uint32_t iterations)
{
    const harness::Lang modes[] = {harness::Lang::Mipsi,
                                   harness::Lang::Tcl,
                                   harness::Lang::Java};
    const char *ops[] = {"micro:a=b+c",         "micro:if",
                         "micro:string-concat", "micro:null-proc",
                         "micro:string-split",  "micro:read"};
    std::vector<EvalRequest> mix;
    for (harness::Lang mode : modes) {
        for (const char *op : ops) {
            EvalRequest req;
            req.mode = mode;
            req.kind = ProgramKind::Named;
            req.program = op;
            req.iterations = iterations;
            mix.push_back(std::move(req));
        }
    }
    return mix;
}

/** One loadgen run against @p unixPath; fills throughput/latency. */
void
measureOnce(const Options &opt, const std::string &unixPath, Point &p)
{
    LoadgenOptions lg;
    lg.unixPath = unixPath;
    lg.clients = opt.clients;
    lg.requestsPerClient = opt.requestsPerClient;
    lg.mix = requestMix(opt.iterations);

    Clock::time_point t0 = Clock::now();
    LoadgenReport report = runLoadgen(lg);
    Clock::time_point t1 = Clock::now();

    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (p.wallMs != 0 && ms >= p.wallMs)
        return; // keep the best repetition
    p.wallMs = ms;
    p.sent = report.all.sent;
    p.ok = report.all.ok;
    p.shed = report.all.shed;
    p.error = report.all.error;
    p.reqPerSec = ms > 0 ? 1000.0 * (double)report.all.sent / ms : 0;
    p.p50 = report.all.percentile(0.50);
    p.p95 = report.all.percentile(0.95);
    p.p99 = report.all.percentile(0.99);
}

/** Router-side accounting for a proxied point. */
void
collectProxyStats(const std::string &proxyPath, Point &p)
{
    Client conn = Client::connectUnix(proxyPath);
    std::string json = conn.stats();
    statsJsonUint(json, "proxy.retries", p.retries);
    statsJsonUint(json, "proxy.rerouted", p.rerouted);
    p.forwarded.assign(p.shards, 0);
    for (unsigned s = 0; s < p.shards; ++s)
        statsJsonUint(json,
                      "shards.s" + std::to_string(s) + ".forwarded",
                      p.forwarded[s]);
}

void
printRow(const Point &p)
{
    std::string balance;
    for (uint64_t f : p.forwarded) {
        if (!balance.empty())
            balance += "/";
        balance += std::to_string(f);
    }
    std::printf("%-7s %6u %9.1f %9.0f %6llu %5llu %8llu %8llu %8llu  %s\n",
                p.label.c_str(), p.shards, p.wallMs, p.reqPerSec,
                (unsigned long long)p.ok, (unsigned long long)p.shed,
                (unsigned long long)p.p50, (unsigned long long)p.p95,
                (unsigned long long)p.p99, balance.c_str());
    std::fflush(stdout);
}

std::string
pointJson(const Point &p)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    {\"label\": \"%s\", \"shards\": %u, \"wall_ms\": %.3f, "
        "\"req_per_sec\": %.1f,\n"
        "     \"sent\": %llu, \"ok\": %llu, \"shed\": %llu, "
        "\"error\": %llu,\n"
        "     \"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu,\n"
        "     \"retries\": %llu, \"rerouted\": %llu, \"forwarded\": [",
        p.label.c_str(), p.shards, p.wallMs, p.reqPerSec,
        (unsigned long long)p.sent, (unsigned long long)p.ok,
        (unsigned long long)p.shed, (unsigned long long)p.error,
        (unsigned long long)p.p50, (unsigned long long)p.p95,
        (unsigned long long)p.p99, (unsigned long long)p.retries,
        (unsigned long long)p.rerouted);
    std::string out = buf;
    for (size_t i = 0; i < p.forwarded.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(p.forwarded[i]);
    }
    out += "]}";
    return out;
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: bench_cluster [--shards N,N,...] [--clients N]\n"
                 "                     [--requests N] [--workers N]\n"
                 "                     [--iterations N] [--repeat N]\n"
                 "                     [--json [file]]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--shards")) {
            opt.shardCounts.clear();
            std::string list = value();
            for (size_t start = 0; start < list.size();) {
                size_t comma = list.find(',', start);
                size_t end =
                    comma == std::string::npos ? list.size() : comma;
                opt.shardCounts.push_back(
                    (unsigned)std::atoi(list.substr(start).c_str()));
                start = end + 1;
            }
        } else if (!std::strcmp(argv[i], "--clients"))
            opt.clients = (unsigned)std::atoi(value());
        else if (!std::strcmp(argv[i], "--requests"))
            opt.requestsPerClient = (unsigned)std::atoi(value());
        else if (!std::strcmp(argv[i], "--workers"))
            opt.workersPerShard = (unsigned)std::atoi(value());
        else if (!std::strcmp(argv[i], "--iterations"))
            opt.iterations = (uint32_t)std::atoi(value());
        else if (!std::strcmp(argv[i], "--repeat"))
            opt.repeat = (unsigned)std::atoi(value());
        else if (!std::strcmp(argv[i], "--json"))
            opt.jsonPath = i + 1 < argc && argv[i + 1][0] != '-'
                               ? argv[++i]
                               : "BENCH_cluster.json";
        else
            usage();
    }
    if (opt.shardCounts.empty() || opt.repeat == 0)
        usage();

    std::printf("interproxy scaling sweep: %u closed-loop clients, "
                "%u reqs/client,\n%u workers/shard, %u iterations, "
                "best of %u\n\n",
                opt.clients, opt.requestsPerClient, opt.workersPerShard,
                opt.iterations, opt.repeat);
    std::printf("%-7s %6s %9s %9s %6s %5s %8s %8s %8s  %s\n", "route",
                "shards", "wall-ms", "req/s", "ok", "shed", "p50us",
                "p95us", "p99us", "forwarded-per-shard");
    std::printf("--------------------------------------------------------"
                "--------------------------\n");

    std::vector<Point> points;

    // Direct baseline: same load straight at one shard, no router.
    {
        cluster::ClusterConfig cc;
        cc.shardCount = 1;
        cc.workersPerShard = opt.workersPerShard;
        cc.maxQueuePerShard = 256;
        cluster::LocalCluster lc(cc);
        lc.start();
        Point p;
        p.label = "direct";
        p.shards = 1;
        for (unsigned r = 0; r < opt.repeat; ++r)
            measureOnce(opt, lc.shardPath(0), p);
        printRow(p);
        points.push_back(std::move(p));
    }

    for (unsigned shards : opt.shardCounts) {
        cluster::ClusterConfig cc;
        cc.shardCount = shards;
        cc.workersPerShard = opt.workersPerShard;
        cc.maxQueuePerShard = 256;
        cluster::LocalCluster lc(cc);
        lc.start();
        Point p;
        p.label = "proxy";
        p.shards = shards;
        for (unsigned r = 0; r < opt.repeat; ++r)
            measureOnce(opt, lc.proxyPath(), p);
        collectProxyStats(lc.proxyPath(), p);
        printRow(p);
        points.push_back(std::move(p));
    }

    std::printf("\nReading the table: `direct` vs the 1-shard `proxy` row "
                "is the router's\nper-request cost; forwarded-per-shard "
                "shows consistent-hash balance across\nthe 18 routing "
                "keys. Capacity scales with shards only when the host "
                "has\ncores to back them (see EXPERIMENTS.md).\n");

    if (!opt.jsonPath.empty()) {
        std::string json = "{\n  \"schema\": \"interp-cluster-v1\",\n";
        char hdr[256];
        std::snprintf(hdr, sizeof hdr,
                      "  \"clients\": %u, \"requests_per_client\": %u, "
                      "\"workers_per_shard\": %u,\n"
                      "  \"iterations\": %u, \"repeat\": %u, "
                      "\"routing_keys\": %zu,\n  \"points\": [\n",
                      opt.clients, opt.requestsPerClient,
                      opt.workersPerShard, opt.iterations, opt.repeat,
                      requestMix(opt.iterations).size());
        json += hdr;
        for (size_t i = 0; i < points.size(); ++i) {
            json += pointJson(points[i]);
            json += i + 1 < points.size() ? ",\n" : "\n";
        }
        json += "  ]\n}\n";
        std::FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.jsonPath.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}
