/**
 * @file
 * The composition tower: what interpretation costs when the guest is
 * itself an interpreter. Scriptel — a mini script interpreter written
 * in MiniC — runs its script natively (one interpretation level) or
 * under mipsi (two levels: mipsi fetches and decodes MIPS commands,
 * Scriptel fetches and decodes script ops on top). Each composed
 * workload's payload program also exists as a direct MiniC benchmark,
 * so the tower has a native floor to normalize against.
 *
 * Six rungs per tower:
 *   payload-native    direct .mc under Lang::C          (level 0)
 *   payload-mipsi     direct .mc under Lang::Mipsi      (level 1)
 *   scriptel-native   Scriptel+script under Lang::C     (level 1)
 *   composed-mipsi    Scriptel+script under Lang::Mipsi (level 2)
 *   composed-threaded ... under MipsiThreaded  (cheaper lower level)
 *   composed-jit      ... under MipsiJit       (cheapest lower level)
 *
 * The headline number is multiplicativity: the outer interpreter's
 * blowup measured on the composed program (composed-mipsi /
 * scriptel-native) lands close to its blowup on ordinary code
 * (payload-mipsi / payload-native), so tower cost is the *product* of
 * the per-level factors — and tiering the outer level divides the
 * whole product.
 *
 * Per-level attribution: on the composed-mipsi rung a
 * GuestFetchProfiler buckets every outer-native instruction by the
 * inner-interpreter phase owning the guest PC (inner fetch, inner
 * decode ladder, opcode handlers, tokenizer), recovering the paper's
 * Table 2 taxonomy one level down.
 *
 * `--json [file]` (default BENCH_compose.json) writes the
 * machine-readable document; `--programs=<glob[,glob]>` subsets the
 * composed workloads; `--jobs N` parallelizes the runs.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "minic/compile.hh"
#include "workloads/compose.hh"
#include "workloads/registry.hh"

using namespace interp;
using namespace interp::harness;

namespace {

struct Tower
{
    const workloads::Workload *composed;
    const workloads::Workload *payload; ///< direct counterpart
};

/** Composed workload -> the direct benchmark computing its payload. */
const char *
payloadNameOf(const std::string &composed_name)
{
    if (composed_name == "compose-spin")
        return "spin";
    if (composed_name == "compose-mat")
        return "matmul";
    return nullptr;
}

constexpr size_t kRungs = 6;
const char *kRungLabel[kRungs] = {"payload-native",  "payload-mipsi",
                                  "scriptel-native", "composed-mipsi",
                                  "composed-threaded", "composed-jit"};
/** Interpretation levels under each rung (for the report). */
const int kRungLevels[kRungs] = {0, 1, 1, 2, 2, 2};

/** Parse the `[compose steps=N tokens=M]` trailer; 0 on mismatch. */
bool
parseTrailer(const std::string &text, uint64_t &steps,
             uint64_t &tokens, size_t &payload_end)
{
    size_t at = text.rfind("[compose steps=");
    if (at == std::string::npos)
        return false;
    payload_end = at;
    unsigned long long s = 0, t = 0;
    if (std::sscanf(text.c_str() + at, "[compose steps=%llu tokens=%llu]",
                    &s, &t) != 2)
        return false;
    steps = s;
    tokens = t;
    return steps > 0;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

double
ratio(uint64_t num, uint64_t den)
{
    return den ? (double)num / (double)den : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    std::string patterns = workloads::parseProgramsArg(argc, argv);

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path =
                i + 1 < argc ? argv[i + 1] : "BENCH_compose.json";
            break;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
            break;
        }
    }

    std::vector<Tower> towers;
    for (const workloads::Workload &w : workloads::registry()) {
        if (!w.composed())
            continue;
        if (!patterns.empty() &&
            workloads::filterPrograms({workloads::specFor(w, Lang::Mipsi)},
                                      patterns)
                .empty())
            continue;
        const char *payload = payloadNameOf(w.name);
        const workloads::Workload *direct =
            payload ? workloads::find(payload) : nullptr;
        if (!direct) {
            std::fprintf(stderr,
                         "%s: no direct payload counterpart, skipped\n",
                         w.name.c_str());
            continue;
        }
        towers.push_back({&w, direct});
    }
    if (towers.empty()) {
        std::fprintf(stderr, "no composed workloads selected\n");
        return 1;
    }

    // Build the flat suite: kRungs specs per tower. Every composed
    // rung shares one pre-compiled Scriptel image so the tower runs
    // identical inner code and the profiler knows its symbol ranges.
    std::vector<BenchSpec> specs;
    std::vector<std::shared_ptr<mips::Image>> images;
    for (const Tower &tower : towers) {
        BenchSpec payload_spec =
            workloads::specFor(*tower.payload, Lang::Mipsi);
        BenchSpec composed_spec =
            workloads::specFor(*tower.composed, Lang::Mipsi);
        auto image = std::make_shared<mips::Image>(minic::compileMips(
            composed_spec.source, composed_spec.name));
        images.push_back(image);

        BenchSpec s0 = payload_spec;
        s0.lang = Lang::C;
        BenchSpec s1 = payload_spec;
        BenchSpec s2 = composed_spec;
        s2.lang = Lang::C;
        s2.image = image;
        BenchSpec s3 = composed_spec;
        s3.image = image;
        BenchSpec s4 = composed_spec;
        s4.lang = Lang::MipsiThreaded;
        s4.image = image;
        BenchSpec s5 = composed_spec;
        s5.lang = Lang::MipsiJit;
        s5.image = image;
        for (BenchSpec *s : {&s0, &s1, &s2, &s3, &s4, &s5})
            specs.push_back(std::move(*s));
    }

    // The composed-mipsi rung carries the per-level profiler.
    std::vector<std::unique_ptr<workloads::GuestFetchProfiler>> profs(
        specs.size());
    std::vector<Measurement> results = runSuiteWith(
        specs, jobs, [&](const BenchSpec &spec, size_t i) {
            std::vector<trace::Sink *> sinks;
            if (i % kRungs == 3) {
                profs[i] = std::make_unique<workloads::GuestFetchProfiler>(
                    *images[i / kRungs]);
                sinks.push_back(profs[i].get());
            }
            return runOrReplay(spec, tio, sinks);
        });

    std::printf("Composition tower: Scriptel (MiniC script interpreter) "
                "on mipsi\n\n");

    std::string json = "{\n  \"schema\": \"interp-compose-v1\",\n"
                       "  \"towers\": [\n";
    int bad = 0;

    for (size_t t = 0; t < towers.size(); ++t) {
        const Tower &tower = towers[t];
        const Measurement *r = &results[t * kRungs];
        for (size_t i = 0; i < kRungs; ++i)
            if (r[i].failed) {
                std::printf("%s: rung %s failed: %s\n",
                            tower.composed->name.c_str(), kRungLabel[i],
                            r[i].error.c_str());
                ++bad;
            }
        if (r[0].failed || r[1].failed || r[2].failed || r[3].failed ||
            r[4].failed || r[5].failed)
            continue;

        uint64_t steps = 0, tokens = 0;
        size_t payload_end = 0;
        bool trailer_ok =
            parseTrailer(r[3].stdoutText, steps, tokens, payload_end);

        // Golden contract: every composed rung byte-identical, the
        // payload prefix identical to the direct program's stdout,
        // and the registry golden (captured at the baseline) matches.
        bool composed_identical =
            r[3].stdoutText == r[2].stdoutText &&
            r[3].stdoutText == r[4].stdoutText &&
            r[3].stdoutText == r[5].stdoutText;
        bool payload_matches =
            trailer_ok && r[0].stdoutText == r[1].stdoutText &&
            r[3].stdoutText.compare(0, payload_end, r[0].stdoutText) == 0;
        bool golden_ok = workloads::goldenMatches(
            *tower.composed, Lang::Mipsi, r[3].stdoutText);
        if (!composed_identical || !payload_matches || !golden_ok)
            ++bad;

        std::printf("== %s  (payload: %s, %llu inner steps, %llu "
                    "tokens)%s\n",
                    tower.composed->name.c_str(),
                    tower.payload->name.c_str(),
                    (unsigned long long)steps,
                    (unsigned long long)tokens,
                    composed_identical && payload_matches && golden_ok
                        ? ""
                        : "  [CONTRACT VIOLATION]");
        std::printf("   %-18s %5s %12s %12s %10s %8s %9s\n", "rung",
                    "lvls", "insts", "virt-cmds", "fd-insts", "fd/cmd",
                    "insts/step");
        for (size_t i = 0; i < kRungs; ++i) {
            const Measurement &m = r[i];
            std::printf("   %-18s %5d %12llu %12llu %10llu %8.1f %9.0f\n",
                        kRungLabel[i], kRungLevels[i],
                        (unsigned long long)m.profile.userInstructions(),
                        (unsigned long long)m.commands,
                        (unsigned long long)m.profile.fetchDecodeInsts(),
                        ratio(m.profile.fetchDecodeInsts(), m.commands),
                        steps ? (double)m.profile.userInstructions() /
                                    (double)steps
                              : 0.0);
        }

        double outer_on_payload = ratio(r[1].profile.userInstructions(),
                                        r[0].profile.userInstructions());
        double inner_factor = ratio(r[2].profile.userInstructions(),
                                    r[0].profile.userInstructions());
        double outer_on_composed =
            ratio(r[3].profile.userInstructions(),
                  r[2].profile.userInstructions());
        double total = ratio(r[3].profile.userInstructions(),
                             r[0].profile.userInstructions());
        double threaded_factor =
            ratio(r[4].profile.userInstructions(),
                  r[2].profile.userInstructions());
        double jit_factor = ratio(r[5].profile.userInstructions(),
                                  r[2].profile.userInstructions());
        std::printf("   blowup: outer %.1fx on plain code, %.1fx on the "
                    "inner interpreter;\n"
                    "           inner %.1fx; total %.0fx = %.1f x %.1f "
                    "(multiplicative)\n"
                    "           tiered outer: threaded %.1fx, jit %.1fx "
                    "over scriptel-native\n",
                    outer_on_payload, outer_on_composed, inner_factor,
                    total, inner_factor, outer_on_composed,
                    threaded_factor, jit_factor);

        const workloads::GuestFetchProfiler *prof =
            profs[t * kRungs + 3].get();
        std::printf("   per-level attribution (composed-mipsi rung, by "
                    "guest PC):\n");
        std::printf("   %-18s %12s %12s %12s %11s\n", "inner phase",
                    "outer-fd", "outer-exec", "total", "guest-fetch");
        std::string phase_json;
        for (size_t p = 0; p < (size_t)workloads::InnerPhase::kCount;
             ++p) {
            const workloads::PhaseCounters &pc = prof->phases()[p];
            if (pc.total() == 0 && pc.guestFetches == 0)
                continue;
            const char *pname =
                workloads::innerPhaseName((workloads::InnerPhase)p);
            std::printf("   %-18s %12llu %12llu %12llu %11llu\n", pname,
                        (unsigned long long)pc.outerFetchDecode,
                        (unsigned long long)pc.outerExecute,
                        (unsigned long long)pc.total(),
                        (unsigned long long)pc.guestFetches);
            char pbuf[320];
            std::snprintf(
                pbuf, sizeof pbuf,
                "        {\"phase\": \"%s\", \"outer_fd_insts\": %llu, "
                "\"outer_exec_insts\": %llu, \"outer_precompile_insts\": "
                "%llu, \"guest_fetches\": %llu}",
                pname, (unsigned long long)pc.outerFetchDecode,
                (unsigned long long)pc.outerExecute,
                (unsigned long long)pc.outerPrecompile,
                (unsigned long long)pc.guestFetches);
            if (!phase_json.empty())
                phase_json += ",\n";
            phase_json += pbuf;
        }
        std::printf("\n");

        std::string rung_json;
        for (size_t i = 0; i < kRungs; ++i) {
            const Measurement &m = r[i];
            char rbuf[400];
            std::snprintf(
                rbuf, sizeof rbuf,
                "        {\"rung\": \"%s\", \"mode\": \"%s\", "
                "\"levels\": %d, \"insts\": %llu, \"commands\": %llu, "
                "\"fd_insts\": %llu, \"memmodel_insts\": %llu, "
                "\"cycles\": %llu}",
                kRungLabel[i], langName(m.lang), kRungLevels[i],
                (unsigned long long)m.profile.userInstructions(),
                (unsigned long long)m.commands,
                (unsigned long long)m.profile.fetchDecodeInsts(),
                (unsigned long long)m.profile.memModelInsts(),
                (unsigned long long)m.cycles);
            if (!rung_json.empty())
                rung_json += ",\n";
            rung_json += rbuf;
        }

        char tbuf[900];
        std::snprintf(
            tbuf, sizeof tbuf,
            "    {\"workload\": \"%s\", \"payload\": \"%s\", "
            "\"inner_steps\": %llu, \"inner_tokens\": %llu,\n"
            "      \"blowup\": {\"outer_on_payload\": %.3f, "
            "\"inner\": %.3f, \"outer_on_composed\": %.3f, "
            "\"total\": %.3f, \"outer_threaded_on_composed\": %.3f, "
            "\"outer_jit_on_composed\": %.3f},\n"
            "      \"stdout_golden_ok\": %s, "
            "\"composed_rungs_identical\": %s, "
            "\"payload_matches_direct\": %s,\n"
            "      \"rungs\": [\n",
            jsonEscape(tower.composed->name).c_str(),
            jsonEscape(tower.payload->name).c_str(),
            (unsigned long long)steps, (unsigned long long)tokens,
            outer_on_payload, inner_factor, outer_on_composed, total,
            threaded_factor, jit_factor, golden_ok ? "true" : "false",
            composed_identical ? "true" : "false",
            payload_matches ? "true" : "false");
        json += tbuf;
        json += rung_json + "\n      ],\n      \"per_level\": [\n" +
                phase_json + "\n      ]}";
        json += t + 1 < towers.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";

    std::printf("Reading the tower: insts/step normalizes every rung to "
                "one inner-interpreter\nstep, so the composed rows show "
                "the multiplied cost directly. The per-level\ntable "
                "splits the composed rung's outer-native instructions "
                "by which inner\nphase the guest PC was executing — the "
                "inner interpreter's own fetch/decode\nshare, measured "
                "through two levels of interpretation.\n");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %zu towers to %s\n", towers.size(),
                     json_path.c_str());
    }
    return bad == 0 ? 0 : 1;
}
