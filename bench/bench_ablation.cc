/**
 * @file
 * Ablations for the design choices DESIGN.md calls out.
 *
 *  A. Tcl symbol-table size: §3.3 reports 206 (des) to 514 (xf)
 *     instructions per variable access, varying with the number of
 *     entries — swept here by pre-populating the global table.
 *  B. Instruction-cache configuration: §4.1 implies that 16-64 KB or
 *     higher associativity fixes Perl/Tcl; measured as total-cycle
 *     improvement on a bigger I-cache.
 *  C. Perl's startup compilation: the fixed precompile overhead per
 *     run against the per-run execution cost, as a function of how
 *     much work the program does (why Perl's choice pays off for
 *     long-running programs and hurts one-liners).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"

using namespace interp;
using namespace interp::harness;

namespace {

void
ablationSymtab(int jobs, const TraceIo &tio, ModeSet modes)
{
    std::printf("A. Tcl symbol-table size vs per-access cost "
                "(paper: 206 at des-size to 514 at xf-size)\n");
    std::printf("   %-12s %14s %12s\n", "extra vars", "insts/access",
                "cycles(x1k)");
    const std::vector<int> fillers = {0, 50, 150, 400, 800};
    // Two passes when the remedy mode rides along; the baseline pass
    // builds its specs exactly as it always did, so the driver's
    // allocation sequence (and with it the deterministic heap's
    // granule aliasing at --jobs 1) is unchanged by the mode's
    // existence.
    bool with_remedy = modes != ModeSet::Baseline;
    int passes = with_remedy ? 2 : 1;
    std::vector<BenchSpec> specs;
    for (int pass = 0; pass < passes; ++pass) {
        for (int filler : fillers) {
            std::string script;
            for (int i = 0; i < filler; ++i)
                script += "set filler" + std::to_string(i) + " 1\n";
            script += loadProgram("tclish/des.tcl");
            BenchSpec spec;
            spec.lang = pass == 0 ? Lang::Tcl : Lang::TclBytecode;
            spec.name = "des+" + std::to_string(filler);
            spec.source = script;
            specs.push_back(std::move(spec));
        }
    }
    SuiteOptions opt;
    opt.jobs = jobs;
    opt.io = tio;
    std::vector<Measurement> results = runSuite(specs, opt);
    for (size_t i = 0; i < results.size(); ++i) {
        if (i % fillers.size() == 0 && with_remedy)
            std::printf("   [%s]\n", langName(specs[i].lang));
        std::printf("   %-12d %14.1f %12.0f\n",
                    fillers[i % fillers.size()],
                    results[i].profile.memModelCostPerAccess(),
                    results[i].cycles / 1000.0);
    }
    if (with_remedy)
        std::printf("   (the symbol-table cost is execute-side work: "
                    "per-access cost is identical in\n    bytecode "
                    "mode, only the parse disappears from the "
                    "cycles)\n");
    std::printf("\n");
}

void
ablationIcache(int jobs, const TraceIo &tio)
{
    std::printf("B. Bigger/associative I-cache (8K/1w -> 32K/4w), "
                "total-cycle improvement\n");
    std::printf("   %-14s %14s %14s %8s\n", "benchmark", "8K-1w(x1k)",
                "32K-4w(x1k)", "speedup");
    sim::MachineConfig big;
    big.icache.sizeBytes = 32 * 1024;
    big.icache.assoc = 4;
    std::vector<BenchSpec> specs;
    for (BenchSpec &spec : macroSuite())
        if (spec.name == "des")
            specs.push_back(std::move(spec));
    // The record-once/replay-many case in miniature: with --record
    // the first sweep writes each trace, with --replay both machine
    // configurations decode the same tape.
    SuiteOptions base_opt;
    base_opt.jobs = jobs;
    base_opt.io = tio;
    SuiteOptions big_opt;
    big_opt.jobs = jobs;
    big_opt.machineCfg = &big;
    big_opt.io = tio;
    if (!tio.recordDir.empty()) {
        big_opt.io.recordDir.clear(); // reuse the fresh tapes instead
        big_opt.io.replayDir = tio.recordDir;
    }
    std::vector<Measurement> base = runSuite(specs, base_opt);
    std::vector<Measurement> wide = runSuite(specs, big_opt);
    for (size_t i = 0; i < specs.size(); ++i)
        std::printf("   %-14s %14.0f %14.0f %7.2fx\n",
                    (std::string(langName(specs[i].lang)) + "-des")
                        .c_str(),
                    base[i].cycles / 1000.0, wide[i].cycles / 1000.0,
                    (double)base[i].cycles / (double)wide[i].cycles);
    std::printf("   (paper: the win concentrates in Perl/Tcl, whose "
                "loops do not fit 8 KB)\n\n");
}

void
ablationPrecompile(int jobs, const TraceIo &tio)
{
    std::printf("C. Perl startup compilation: fixed precompile cost vs "
                "run length\n");
    std::printf("   %-10s %16s %16s %10s\n", "loop count",
                "precompile(x1k)", "run insts(x1k)", "pre share");
    const std::vector<int> counts = {10, 100, 1000, 10000};
    std::vector<BenchSpec> specs;
    for (int n : counts) {
        BenchSpec spec;
        spec.lang = Lang::Perl;
        // Distinct names: each point gets its own trace file under
        // --record.
        spec.name = "scaling-" + std::to_string(n);
        spec.source =
            "$s = 0;\n"
            "for ($i = 0; $i < " + std::to_string(n) + "; $i += 1) {\n"
            "    $s += $i * 3 - ($s >> 4);\n"
            "}\nprint \"$s\";\n";
        specs.push_back(std::move(spec));
    }
    SuiteOptions opt;
    opt.jobs = jobs;
    opt.withMachine = false;
    opt.io = tio;
    std::vector<Measurement> results = runSuite(specs, opt);
    for (size_t i = 0; i < results.size(); ++i) {
        double pre = (double)results[i].profile.precompileInsts();
        double rest =
            (double)results[i].profile.userInstructions() - pre;
        std::printf("   %-10d %16.1f %16.1f %9.1f%%\n", counts[i],
                    pre / 1000.0, rest / 1000.0,
                    100.0 * pre / (pre + rest));
    }
    std::printf("   (the same startup work would repeat per statement "
                "in a Tcl-style direct\n    interpreter; amortizing it "
                "is Perl's design win, §3.3)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);
    std::printf("Ablations for DESIGN.md's called-out design choices\n"
                "====================================================\n\n");
    ablationSymtab(jobs, tio, modes);
    ablationIcache(jobs, tio);
    ablationPrecompile(jobs, tio);
    return 0;
}
