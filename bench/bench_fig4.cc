/**
 * @file
 * Regenerates Figure 4: instruction-cache miss rate (misses per 100
 * instructions) of the Java, Perl and Tcl benchmarks as a function of
 * cache size (8/16/32/64 KB) and associativity (1/2/4-way). One pass
 * per benchmark feeds all twelve cache configurations.
 *
 * `--record <dir>` captures each workload's event stream as a binary
 * trace while sweeping; `--replay <dir>` drives the whole sweep from
 * those traces instead — each workload's trace is decoded exactly
 * once and fans out to all twelve configurations, with the workloads
 * themselves spread across the `--jobs` pool. The printed table is
 * byte-identical either way.
 */

#include <cstdio>
#include <memory>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"
#include "sim/cache_sweep.hh"

using namespace interp;
using namespace interp::harness;

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);
    const std::vector<uint32_t> sizes = {8, 16, 32, 64};
    const std::vector<uint32_t> assocs = {1, 2, 4};

    std::printf("Figure 4: i-cache misses per 100 instructions vs size "
                "and associativity\n\n");
    std::printf("%-16s", "benchmark");
    for (uint32_t assoc : assocs)
        for (uint32_t kb : sizes)
            std::printf(" %2uw/%-2uK", assoc, kb);
    std::printf("\n");
    std::printf("------------------------------------------------------"
                "------------------------------------------------\n");

    std::vector<BenchSpec> specs;
    for (BenchSpec &spec : withModes(macroSuite(), modes)) {
        Lang base = baselineOf(spec.lang);
        if (base == Lang::Java || base == Lang::Perl ||
            base == Lang::Tcl)
            specs.push_back(std::move(spec));
    }

    // One private sweep sink per job: each sees the same stream the
    // machine model would, with no cross-thread sharing. Under
    // --replay that stream comes from one decode of the workload's
    // trace, shared by all twelve sweep points.
    std::vector<std::unique_ptr<sim::CacheSweep>> sweeps(specs.size());
    std::vector<Measurement> results = runSuiteWith(
        specs, jobs,
        [&](const BenchSpec &spec, size_t i) {
            sweeps[i] = std::make_unique<sim::CacheSweep>(sizes, assocs);
            return runOrReplay(spec, tio, {sweeps[i].get()}, nullptr,
                               false);
        });

    for (size_t i = 0; i < specs.size(); ++i) {
        std::string tag = std::string(langName(specs[i].lang)) + "-" +
                          specs[i].name;
        if (results[i].failed) {
            std::printf("%-16s failed: %s\n", tag.c_str(),
                        results[i].error.c_str());
            continue;
        }
        std::printf("%-16s", tag.c_str());
        for (const auto &point : sweeps[i]->results())
            std::printf(" %7.2f", point.missesPer100Insts);
        std::printf("\n");
    }

    std::printf("\nPaper reference: Perl's working set is 32-64 KB and "
                "Tcl's 16-32 KB (miss rates\nfall toward ~0 there); "
                "higher associativity removes the conflict misses that "
                "remain\nonce capacity suffices (e.g. tcltags at 32 KB: "
                "1.2 -> 0.4 per 100 from 2- to 4-way).\n");
    return 0;
}
