/**
 * @file
 * Measures the tier-3 jit modes (per-opcode/per-command stencil
 * regions, src/jit/) against their faithful baselines and the tier
 * they are promoted from, on the macro suite. These are the artifacts
 * interpd's dynamic tier-up compiles for the hottest catalog programs;
 * measured here standalone so the steady-state gain over tier 2 and
 * the one-time stencil-emission cost are on the record.
 *
 * The golden contract is the tier-2 contract extended one rung:
 * stdout, virtual commands, and per-command retired and native-lib
 * counts must be byte-identical to the baseline; fetch/decode and the
 * memory-model slice of execute may only shrink, and must shrink at
 * least as far as the previous tier (threaded MIPSI / tier-2 Tcl).
 * Stencil emission is charged to Precompile like every other one-time
 * translation in the study.
 *
 * The emitted region is registered as a synthetic code segment
 * (Segment::JitCode), so the §4 machine attributes its i-cache
 * behaviour like any interpreter routine; the driver reports the
 * instructions retired from the region and the distinct 32-byte
 * i-cache lines it touches, alongside the simulated overall miss
 * rate.
 *
 * `--json [file]` (default BENCH_remedies.json) merges one
 * machine-readable row per program into the remedies document: jit
 * rows are single-line objects carrying `"tier": 3`, appended to
 * `pairs`, and any previous tier-3 rows are replaced, so re-running
 * is idempotent. `--jobs N` / `--record` / `--replay` behave as in
 * the other drivers. `--programs=<glob[,glob...]>` restricts the
 * suite to matching workload names.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "support/strutil.hh"
#include "trace/code_registry.hh"
#include "workloads/registry.hh"

using namespace interp;
using namespace interp::harness;

namespace {

/** Instructions and distinct 32-byte lines fetched from the emitted
 *  stencil region (Segment::JitCode) — the Fig 3-revisited numbers. */
class JitRegionSink : public trace::Sink
{
  public:
    void
    onBundle(const trace::Bundle &b) override
    {
        if (b.pc < lo_ || b.pc >= hi_)
            return;
        insts_ += b.count;
        uint32_t first = b.pc >> 5;
        uint32_t last = (b.pc + 4 * b.count - 1) >> 5;
        for (uint32_t line = first; line <= last; ++line)
            lines_.insert(line);
    }

    uint64_t insts() const { return insts_; }
    size_t lines() const { return lines_.size(); }

  private:
    static constexpr uint32_t kSegSpan = 0x04000000;
    uint32_t lo_ =
        trace::CodeRegistry::segmentBase(trace::Segment::JitCode);
    uint32_t hi_ = lo_ + kSegSpan;
    uint64_t insts_ = 0;
    std::unordered_set<uint32_t> lines_;
};

/** Per-command equality of retired and native-lib counts: the parts
 *  of the tier-3 golden contract that per-command stats can check
 *  (fetch/decode and memModel are allowed to shrink). */
bool
retiredAndNativeIdentical(const trace::Profile &base,
                          const trace::Profile &jit)
{
    const auto &a = base.perCommand();
    const auto &b = jit.perCommand();
    size_t n = a.size() > b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
        trace::CommandStats sa =
            i < a.size() ? a[i] : trace::CommandStats{};
        trace::CommandStats sb =
            i < b.size() ? b[i] : trace::CommandStats{};
        if (sa.retired != sb.retired || sa.nativeLib != sb.nativeLib)
            return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

/**
 * Merge @p rows (single-line `"tier": 3` objects) into the remedies
 * document at @p path, replacing any previous tier-3 rows; the
 * bench_tierup merge with the tier tag one higher. Falls back to a
 * standalone document when the file is missing or not the expected
 * shape.
 */
std::string
mergeIntoRemedies(const std::string &path,
                  const std::vector<std::string> &rows)
{
    std::string joined;
    for (size_t i = 0; i < rows.size(); ++i) {
        joined += rows[i];
        if (i + 1 < rows.size())
            joined += ",\n";
    }

    std::string existing = slurp(path);
    size_t tail = existing.rfind("\n  ]\n}");
    if (existing.find("\"pairs\"") == std::string::npos ||
        tail == std::string::npos)
        return "{\n  \"schema\": \"interp-remedies-v1\",\n"
               "  \"pairs\": [\n" +
               joined + "\n  ]\n}\n";

    std::string head;
    size_t pos = 0;
    while (pos < tail) {
        size_t eol = existing.find('\n', pos);
        if (eol == std::string::npos || eol > tail)
            eol = tail;
        std::string line = existing.substr(pos, eol - pos);
        if (line.find("\"tier\": 3") == std::string::npos)
            head += line + "\n";
        pos = eol + 1;
    }
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == ' '))
        head.pop_back();
    if (!head.empty() && head.back() == ',')
        head.pop_back();
    return head + ",\n" + joined + "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = i + 1 < argc ? argv[i + 1]
                                     : "BENCH_remedies.json";
            break;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
            break;
        }
    }

    std::printf("Tier-3: template-compiled stencil regions "
                "(mipsi-jit, tcl-jit)\n");
    std::printf("(each row: baseline vs previous tier vs jit; stdout, "
                "retired and native-lib\n per command must be "
                "byte-identical to the baseline)\n\n");
    std::printf("%-10s %-9s %10s | %7s %7s %7s | %7s %7s %7s | "
                "%8s %6s %6s\n",
                "Mode", "Bench", "VirtCmds", "fd-base", "fd-prev",
                "fd-jit", "mm-base", "mm-prev", "mm-jit", "jit-insts",
                "lines", "im%");
    std::printf("---------------------------------------------------------"
                "--------------------------------------------\n");

    // One flat suite: baseline, previous tier, jit — triple i is
    // results[3i] / results[3i+1] / results[3i+2].
    std::vector<BenchSpec> specs;
    for (BenchSpec &spec : workloads::filterPrograms(
             macroSuite(), workloads::parseProgramsArg(argc, argv))) {
        if (!isJit(tierJitOf(spec.lang)))
            continue;
        BenchSpec prev = spec;
        prev.lang = tierTier2Of(spec.lang);
        BenchSpec jit = spec;
        jit.lang = tierJitOf(spec.lang);
        specs.push_back(std::move(spec));
        specs.push_back(std::move(prev));
        specs.push_back(std::move(jit));
    }

    // The jit rows carry a region sink so the emitted segment's
    // footprint rides the same pass as the Table 3 machine.
    std::vector<std::unique_ptr<JitRegionSink>> regions(specs.size());
    std::vector<Measurement> results = runSuiteWith(
        specs, jobs, [&](const BenchSpec &spec, size_t i) {
            std::vector<trace::Sink *> sinks;
            if (isJit(spec.lang)) {
                regions[i] = std::make_unique<JitRegionSink>();
                sinks.push_back(regions[i].get());
            }
            return runOrReplay(spec, tio, sinks);
        });

    std::vector<std::string> rows;
    int bad = 0;
    int improved_beyond_prev = 0;

    for (size_t i = 0; i + 2 < results.size(); i += 3) {
        const Measurement &base = results[i];
        const Measurement &prev = results[i + 1];
        const Measurement &jit = results[i + 2];
        const JitRegionSink *region = regions[i + 2].get();
        if (base.failed || prev.failed || jit.failed) {
            std::printf("%-10s %-9s failed: %s\n", langName(jit.lang),
                        jit.name.c_str(),
                        (base.failed   ? base.error
                         : prev.failed ? prev.error
                                       : jit.error)
                            .c_str());
            ++bad;
            continue;
        }

        uint64_t fd_base = base.profile.fetchDecodeInsts();
        uint64_t fd_prev = prev.profile.fetchDecodeInsts();
        uint64_t fd_jit = jit.profile.fetchDecodeInsts();
        uint64_t mm_base = base.profile.memModelInsts();
        uint64_t mm_prev = prev.profile.memModelInsts();
        uint64_t mm_jit = jit.profile.memModelInsts();

        bool ok = jit.commands == base.commands &&
                  jit.stdoutText == base.stdoutText &&
                  retiredAndNativeIdentical(base.profile, jit.profile) &&
                  fd_jit <= fd_base && mm_jit <= mm_base;
        if (!ok)
            ++bad;
        bool beyond =
            fd_jit + mm_jit < fd_prev + mm_prev;
        if (ok && beyond)
            ++improved_beyond_prev;

        auto per = [](uint64_t insts, uint64_t cmds) {
            return cmds ? (double)insts / (double)cmds : 0.0;
        };
        std::printf("%-10s %-9s %10s | %7.1f %7.1f %7.1f | %7.2f "
                    "%7.2f %7.2f | %8llu %6zu %5.2f%s\n",
                    langName(jit.lang), jit.name.c_str(),
                    sigThousands((double)jit.commands).c_str(),
                    per(fd_base, base.commands),
                    per(fd_prev, prev.commands),
                    per(fd_jit, jit.commands),
                    per(mm_base, base.commands),
                    per(mm_prev, prev.commands),
                    per(mm_jit, jit.commands),
                    (unsigned long long)(region ? region->insts() : 0),
                    region ? region->lines() : 0, jit.imissPer100,
                    ok ? "" : "  [CONTRACT VIOLATION]");

        char buf[1200];
        std::snprintf(
            buf, sizeof buf,
            "    {\"baseline_lang\": \"%s\", \"remedy_lang\": \"%s\", "
            "\"bench\": \"%s\", \"tier\": 3, \"commands\": %llu, "
            "\"baseline\": {\"fd_insts\": %llu, \"memmodel_insts\": "
            "%llu, \"insts\": %llu, \"cycles\": %llu}, "
            "\"prev_tier\": {\"lang\": \"%s\", \"fd_insts\": %llu, "
            "\"memmodel_insts\": %llu}, "
            "\"remedy\": {\"fd_insts\": %llu, \"memmodel_insts\": "
            "%llu, \"insts\": %llu, \"cycles\": %llu, "
            "\"precompile_insts\": %llu, \"jit_region_insts\": %llu, "
            "\"jit_region_lines\": %zu, \"imiss_per_100\": %.3f}, "
            "\"golden_contract_ok\": %s, "
            "\"improves_on_prev_tier\": %s}",
            jsonEscape(langName(base.lang)).c_str(),
            jsonEscape(langName(jit.lang)).c_str(),
            jsonEscape(jit.name).c_str(),
            (unsigned long long)jit.commands,
            (unsigned long long)fd_base, (unsigned long long)mm_base,
            (unsigned long long)base.profile.userInstructions(),
            (unsigned long long)base.cycles,
            jsonEscape(langName(prev.lang)).c_str(),
            (unsigned long long)fd_prev, (unsigned long long)mm_prev,
            (unsigned long long)fd_jit, (unsigned long long)mm_jit,
            (unsigned long long)jit.profile.userInstructions(),
            (unsigned long long)jit.cycles,
            (unsigned long long)jit.profile.precompileInsts(),
            (unsigned long long)(region ? region->insts() : 0),
            region ? region->lines() : (size_t)0, jit.imissPer100,
            ok ? "true" : "false", beyond ? "true" : "false");
        rows.push_back(buf);
    }

    std::printf("\nReading the table: fd and mm columns are per-command "
                "averages; the jit column\nmust sit at or below the "
                "previous tier's. jit-insts/lines are the emitted\n"
                "stencil region's retired instructions and distinct "
                "32-byte i-cache lines\n(the region is a synthetic "
                "code segment, so the §4 machine sees it); im%% is\n"
                "the simulated overall i-miss rate per 100 "
                "instructions.\n");
    std::printf("\n%d/%zu programs improve fetch/decode+memmodel beyond "
                "the previous tier.\n",
                improved_beyond_prev, results.size() / 3);

    if (!json_path.empty()) {
        std::string doc = mergeIntoRemedies(json_path, rows);
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "merged %zu tier-3 rows into %s\n",
                     rows.size(), json_path.c_str());
    }
    return bad == 0 ? 0 : 1;
}
