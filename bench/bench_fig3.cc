/**
 * @file
 * Regenerates Figure 3: overall execution behaviour on the Table 3
 * machine — the percentage of issue slots filled (processor busy) and
 * the distribution of unfilled slots over the stall causes, for every
 * interpreter/benchmark pair plus the SPECint-like compiled programs
 * (run natively and, for a subset, under MIPSI).
 *
 * The gcc bar is represented by cc1like (see DESIGN.md §2).
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/workloads.hh"

using namespace interp;
using namespace interp::harness;

namespace {

void
printRow(const Measurement &m, const char *tag)
{
    const auto &bd = m.breakdown;
    std::printf("%-14s %5.1f ", tag, bd.busyPct);
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        std::printf("%6.1f", bd.stallPct[c]);
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Figure 3: issue-slot breakdown on the Table 3 machine "
                "(2-issue, 8K I/D L1, 512K L2)\n\n");
    std::printf("%-14s %5s ", "benchmark", "busy");
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        std::printf("%6s", sim::stallCauseName((sim::StallCause)c));
    std::printf("\n");
    std::printf("%-14s %5s %6s %6s %6s %6s %6s %6s %6s %6s  "
                "(%% of issue slots)\n",
                "", "", "", "", "(load)", "(mred)", "", "", "", "");
    std::printf("--------------------------------------------------"
                "------------------------------\n");

    // SPEC-like compiled programs, run natively (the C- rows).
    std::vector<std::pair<std::string, std::string>> spec_like = {
        {"compress", "minic/compress.mc"},
        {"eqntott", "minic/eqntott.mc"},
        {"espresso", "minic/espresso.mc"},
        {"li", "minic/li.mc"},
        {"cc1like", "minic/cc1like.mc"}, // the gcc stand-in
        {"des", "minic/des.mc"},
    };
    for (const auto &[name, path] : spec_like) {
        BenchSpec spec;
        spec.lang = Lang::C;
        spec.name = name;
        spec.source = loadProgram(path);
        spec.needsInputs = true;
        Measurement m = run(spec);
        printRow(m, ("C-" + name).c_str());
    }
    std::printf("\n");

    // The interpreter suite.
    Lang last = Lang::C;
    for (const BenchSpec &spec : macroSuite()) {
        if (spec.lang == Lang::C)
            continue; // already covered above
        if (spec.lang != last)
            std::printf("\n");
        last = spec.lang;
        Measurement m = run(spec);
        std::string tag = std::string(langName(spec.lang)) + "-" +
                          spec.name;
        printRow(m, tag.c_str());
    }

    std::printf("\nPaper reference: each interpreter's profile is "
                "nearly identical across its\nbenchmarks; MIPSI/Java "
                "lose ~2%% of slots to imiss, Perl/Tcl 17-18%% (like "
                "gcc);\ndata-cache behaviour is SPEC-like "
                "throughout.\n");
    return 0;
}
