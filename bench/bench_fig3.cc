/**
 * @file
 * Regenerates Figure 3: overall execution behaviour on the Table 3
 * machine — the percentage of issue slots filled (processor busy) and
 * the distribution of unfilled slots over the stall causes, for every
 * interpreter/benchmark pair plus the SPECint-like compiled programs
 * (run natively and, for a subset, under MIPSI).
 *
 * Every column is a percentage of the same issue-slot total, so each
 * row sums to 100 (the `total` column prints the sum as a check).
 *
 * One pass per benchmark feeds machines at issue width 1, 2 and 4
 * simultaneously; under `--replay <dir>` that pass is a single decode
 * of the recorded trace fanned out to all three machines (the
 * bench_fig4 pattern). The 2-issue machine is the paper's Figure 3
 * row; the issue-width section at the end shows how busy% scales.
 *
 * The gcc bar is represented by cc1like (see DESIGN.md §2).
 */

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"
#include "sim/machine.hh"

using namespace interp;
using namespace interp::harness;

namespace {

constexpr uint32_t kIssueWidths[] = {1, 2, 4};
constexpr size_t kNumWidths = 3;
constexpr size_t kPaperWidth = 1; ///< index of the 2-issue machine

void
printRow(const sim::Machine &machine, const char *tag)
{
    auto bd = machine.breakdown();
    std::printf("%-14s %5.1f ", tag, bd.busyPct);
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        std::printf("%6.1f", bd.stallPct[c]);
    std::printf(" %6.1f\n", bd.total());
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);

    std::printf("Figure 3: issue-slot breakdown on the Table 3 machine "
                "(2-issue, 8K I/D L1, 512K L2)\n\n");
    std::printf("%-14s %5s ", "benchmark", "busy");
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        std::printf("%6s", sim::stallCauseName((sim::StallCause)c));
    std::printf(" %6s\n", "total");
    std::printf("%-14s %5s %6s %6s %6s %6s %6s %6s %6s %6s %6s  "
                "(%% of issue slots)\n",
                "", "", "", "", "(load)", "(mred)", "", "", "", "", "");
    std::printf("--------------------------------------------------"
                "-------------------------------------\n");

    // SPEC-like compiled programs run natively (the C- rows) plus the
    // interpreter suite, as one flat parallel job list.
    std::vector<std::pair<std::string, std::string>> spec_like = {
        {"compress", "minic/compress.mc"},
        {"eqntott", "minic/eqntott.mc"},
        {"espresso", "minic/espresso.mc"},
        {"li", "minic/li.mc"},
        {"cc1like", "minic/cc1like.mc"}, // the gcc stand-in
        {"des", "minic/des.mc"},
    };
    std::vector<BenchSpec> specs;
    for (const auto &[name, path] : spec_like) {
        BenchSpec spec;
        spec.lang = Lang::C;
        spec.name = name;
        spec.source = loadProgram(path);
        spec.needsInputs = true;
        specs.push_back(std::move(spec));
    }
    size_t num_native = specs.size();
    for (BenchSpec &spec : withModes(macroSuite(), modes))
        if (spec.lang != Lang::C) // C-des is already covered above
            specs.push_back(std::move(spec));

    // Three machines per benchmark, riding the same pass as extra
    // sinks (with_machine = false disables the harness's internal
    // 2-issue machine, which would duplicate machines[1]). Under
    // --replay each benchmark's tape is decoded once here, not once
    // per configuration.
    using MachineSet =
        std::array<std::unique_ptr<sim::Machine>, kNumWidths>;
    std::vector<MachineSet> machines(specs.size());
    std::vector<Measurement> results = runSuiteWith(
        specs, jobs,
        [&](const BenchSpec &spec, size_t i) {
            std::vector<trace::Sink *> sinks;
            for (size_t w = 0; w < kNumWidths; ++w) {
                sim::MachineConfig cfg;
                cfg.issueWidth = kIssueWidths[w];
                machines[i][w] = std::make_unique<sim::Machine>(cfg);
                sinks.push_back(machines[i][w].get());
            }
            return runOrReplay(spec, tio, sinks, nullptr, false);
        });

    Lang last = Lang::C;
    for (size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        if (i == num_native)
            std::printf("\n");
        if (i >= num_native) {
            if (m.lang != last)
                std::printf("\n");
            last = m.lang;
        }
        std::string tag = std::string(langName(m.lang)) + "-" + m.name;
        if (m.failed) {
            std::printf("%-14s failed: %s\n", tag.c_str(),
                        m.error.c_str());
            continue;
        }
        printRow(*machines[i][kPaperWidth], tag.c_str());
    }

    std::printf("\nIssue-width sensitivity: %% of issue slots busy at "
                "width 1 / 2 / 4\n");
    std::printf("%-14s %6s %6s %6s\n", "benchmark", "w=1", "w=2", "w=4");
    for (size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        if (m.failed)
            continue;
        std::string tag = std::string(langName(m.lang)) + "-" + m.name;
        std::printf("%-14s", tag.c_str());
        for (size_t w = 0; w < kNumWidths; ++w)
            std::printf(" %6.1f", machines[i][w]->breakdown().busyPct);
        std::printf("\n");
    }

    std::printf("\nPaper reference: each interpreter's profile is "
                "nearly identical across its\nbenchmarks; MIPSI/Java "
                "lose ~2%% of slots to imiss, Perl/Tcl 17-18%% (like "
                "gcc);\ndata-cache behaviour is SPEC-like "
                "throughout.\n");
    return 0;
}
