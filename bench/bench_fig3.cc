/**
 * @file
 * Regenerates Figure 3: overall execution behaviour on the Table 3
 * machine — the percentage of issue slots filled (processor busy) and
 * the distribution of unfilled slots over the stall causes, for every
 * interpreter/benchmark pair plus the SPECint-like compiled programs
 * (run natively and, for a subset, under MIPSI).
 *
 * The gcc bar is represented by cc1like (see DESIGN.md §2).
 */

#include <cstdio>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"

using namespace interp;
using namespace interp::harness;

namespace {

void
printRow(const Measurement &m, const char *tag)
{
    const auto &bd = m.breakdown;
    std::printf("%-14s %5.1f ", tag, bd.busyPct);
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        std::printf("%6.1f", bd.stallPct[c]);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);

    std::printf("Figure 3: issue-slot breakdown on the Table 3 machine "
                "(2-issue, 8K I/D L1, 512K L2)\n\n");
    std::printf("%-14s %5s ", "benchmark", "busy");
    for (int c = 0; c < sim::kNumStallCauses; ++c)
        std::printf("%6s", sim::stallCauseName((sim::StallCause)c));
    std::printf("\n");
    std::printf("%-14s %5s %6s %6s %6s %6s %6s %6s %6s %6s  "
                "(%% of issue slots)\n",
                "", "", "", "", "(load)", "(mred)", "", "", "", "");
    std::printf("--------------------------------------------------"
                "------------------------------\n");

    // SPEC-like compiled programs run natively (the C- rows) plus the
    // interpreter suite, as one flat parallel job list.
    std::vector<std::pair<std::string, std::string>> spec_like = {
        {"compress", "minic/compress.mc"},
        {"eqntott", "minic/eqntott.mc"},
        {"espresso", "minic/espresso.mc"},
        {"li", "minic/li.mc"},
        {"cc1like", "minic/cc1like.mc"}, // the gcc stand-in
        {"des", "minic/des.mc"},
    };
    std::vector<BenchSpec> specs;
    for (const auto &[name, path] : spec_like) {
        BenchSpec spec;
        spec.lang = Lang::C;
        spec.name = name;
        spec.source = loadProgram(path);
        spec.needsInputs = true;
        specs.push_back(std::move(spec));
    }
    size_t num_native = specs.size();
    for (BenchSpec &spec : withModes(macroSuite(), modes))
        if (spec.lang != Lang::C) // C-des is already covered above
            specs.push_back(std::move(spec));

    SuiteOptions opt;
    opt.jobs = jobs;
    opt.io = tio;
    std::vector<Measurement> results = runSuite(specs, opt);

    Lang last = Lang::C;
    for (size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        if (i == num_native)
            std::printf("\n");
        if (i >= num_native) {
            if (m.lang != last)
                std::printf("\n");
            last = m.lang;
        }
        std::string tag = std::string(langName(m.lang)) + "-" + m.name;
        if (m.failed) {
            std::printf("%-14s failed: %s\n", tag.c_str(),
                        m.error.c_str());
            continue;
        }
        printRow(m, tag.c_str());
    }

    std::printf("\nPaper reference: each interpreter's profile is "
                "nearly identical across its\nbenchmarks; MIPSI/Java "
                "lose ~2%% of slots to imiss, Perl/Tcl 17-18%% (like "
                "gcc);\ndata-cache behaviour is SPEC-like "
                "throughout.\n");
    return 0;
}
