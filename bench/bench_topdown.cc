/**
 * @file
 * Top-down replay-throughput evidence harness.
 *
 * Replays recorded .itr tapes through the batched trace→simulator
 * hot path (TraceReader decoding into a sim::Machine sink) and
 * reports, per tape and in total: decoded bundles, wall time,
 * bundles/second, and the host's own top-down basics over the replay
 * — IPC, L1d and LLC read-miss rates, branch-miss rate — via
 * support::HostPerf (perf_event_open, user-space-only counters).
 * Where the kernel refuses a counter (no PMU, perf_event_paranoid=3)
 * the column prints `n/a` and the run still completes: wall-clock
 * throughput never degrades, only the attribution does.
 *
 * This is the before/after instrument for hot-path changes: record a
 * tape set once (e.g. `bench_fig4 --record <dir>`), then run
 * `bench_topdown --replay <dir>` on both revisions and append the
 * two JSON outputs to bench/evidence_log.md. Simulated machine
 * cycles are printed alongside as the identity check — a hot-path
 * change that alters them is a bug, not a speedup.
 *
 * `--repeat N` (default 3) replays each tape N times and reports the
 * fastest run (counters from that same run). `--json [file]` writes
 * machine-readable BENCH_topdown.json (schema in EXPERIMENTS.md).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "support/hostperf.hh"
#include "support/logging.hh"
#include "tracefile/reader.hh"

using namespace interp;
namespace fs = std::filesystem;

namespace {

/** One tape's best-of-N replay measurement. */
struct TapeResult
{
    std::string name;
    uint64_t bundles = 0;
    uint64_t insts = 0;
    double bestMs = 0;
    uint64_t simCycles = 0;
    support::HostPerfSample host;
};

double
bundlesPerSec(const TapeResult &r)
{
    return r.bestMs > 0 ? (double)r.bundles / (r.bestMs / 1e3) : 0;
}

/** Format a rate counter as a percentage, or n/a. */
std::string
ratePct(double rate)
{
    char buf[32];
    if (rate < 0)
        return "n/a";
    std::snprintf(buf, sizeof(buf), "%.3f%%", rate * 100.0);
    return buf;
}

TapeResult
replayTape(const std::string &path, int repeat)
{
    tracefile::TraceReader reader(path);
    TapeResult r;
    r.name = fs::path(path).filename().string();
    r.bundles = reader.meta().totalBundles;
    r.insts = reader.meta().totalInsts;

    support::HostPerf perf;
    for (int run = 0; run < repeat; ++run) {
        sim::Machine machine;
        perf.start();
        auto t0 = std::chrono::steady_clock::now();
        reader.replay({&machine});
        auto t1 = std::chrono::steady_clock::now();
        support::HostPerfSample sample = perf.stop();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (run == 0 || ms < r.bestMs) {
            r.bestMs = ms;
            r.host = sample;
        }
        if (run == 0)
            r.simCycles = machine.cycles();
        else if (machine.cycles() != r.simCycles)
            fatal("replay of %s is not deterministic: %llu vs %llu "
                  "simulated cycles",
                  path.c_str(), (unsigned long long)machine.cycles(),
                  (unsigned long long)r.simCycles);
    }
    return r;
}

void
appendCounterJson(std::string &out, const char *name,
                  const support::HostCounter &c)
{
    char buf[96];
    if (c.ok)
        std::snprintf(buf, sizeof(buf), "\"%s\":%llu,", name,
                      (unsigned long long)c.value);
    else
        std::snprintf(buf, sizeof(buf), "\"%s\":null,", name);
    out += buf;
}

std::string
tapeJson(const TapeResult &r)
{
    char buf[256];
    std::string out = "    {";
    std::snprintf(buf, sizeof(buf),
                  "\"tape\":\"%s\",\"bundles\":%llu,\"insts\":%llu,"
                  "\"best_ms\":%.3f,\"bundles_per_sec\":%.0f,"
                  "\"sim_cycles\":%llu,\"host\":{",
                  r.name.c_str(), (unsigned long long)r.bundles,
                  (unsigned long long)r.insts, r.bestMs,
                  bundlesPerSec(r), (unsigned long long)r.simCycles);
    out += buf;
    appendCounterJson(out, "cycles", r.host.cycles);
    appendCounterJson(out, "instructions", r.host.instructions);
    appendCounterJson(out, "branches", r.host.branches);
    appendCounterJson(out, "branch_misses", r.host.branchMisses);
    appendCounterJson(out, "l1d_accesses", r.host.l1dAccesses);
    appendCounterJson(out, "l1d_misses", r.host.l1dMisses);
    appendCounterJson(out, "llc_accesses", r.host.llcAccesses);
    appendCounterJson(out, "llc_misses", r.host.llcMisses);
    std::snprintf(buf, sizeof(buf), "\"ipc\":%.3f}}", r.host.ipc());
    out += buf;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> tapes;
    std::string json_path;
    int repeat = 3;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
            std::vector<std::string> found;
            for (const auto &entry :
                 fs::directory_iterator(argv[++i]))
                if (entry.path().extension() == ".itr")
                    found.push_back(entry.path().string());
            std::sort(found.begin(), found.end());
            tapes.insert(tapes.end(), found.begin(), found.end());
        } else if (std::strcmp(argv[i], "--repeat") == 0 &&
                   i + 1 < argc) {
            repeat = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                            ? argv[++i]
                            : "BENCH_topdown.json";
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (argv[i][0] != '-') {
            tapes.push_back(argv[i]);
        } else {
            fatal("unknown option %s (usage: bench_topdown "
                  "[--replay <dir>] [tape.itr ...] [--repeat N] "
                  "[--json [file]])",
                  argv[i]);
        }
    }
    if (tapes.empty())
        fatal("no tapes: pass --replay <dir> or .itr paths "
              "(record some with e.g. `bench_fig4 --record <dir>`)");

    {
        support::HostPerf probe;
        if (!probe.anyAvailable())
            std::printf("note: perf_event_open unavailable; host "
                        "counter columns will read n/a\n\n");
    }

    std::printf("Top-down replay throughput (best of %d)\n\n", repeat);
    std::printf("%-28s %11s %9s %8s %6s %9s %9s %8s\n", "tape",
                "bundles", "ms", "Mbnd/s", "IPC", "L1d-miss",
                "LLC-miss", "br-miss");
    std::printf("--------------------------------------------------"
                "---------------------------------------\n");

    std::vector<TapeResult> results;
    uint64_t total_bundles = 0;
    double total_ms = 0;
    for (const std::string &path : tapes) {
        TapeResult r = replayTape(path, repeat);
        std::printf("%-28s %11llu %9.1f %8.2f %6.2f %9s %9s %8s\n",
                    r.name.c_str(), (unsigned long long)r.bundles,
                    r.bestMs, bundlesPerSec(r) / 1e6, r.host.ipc(),
                    ratePct(r.host.l1dMissRate()).c_str(),
                    ratePct(r.host.llcMissRate()).c_str(),
                    ratePct(r.host.branchMissRate()).c_str());
        total_bundles += r.bundles;
        total_ms += r.bestMs;
        results.push_back(std::move(r));
    }

    double total_tput =
        total_ms > 0 ? (double)total_bundles / (total_ms / 1e3) : 0;
    std::printf("--------------------------------------------------"
                "---------------------------------------\n");
    std::printf("%-28s %11llu %9.1f %8.2f\n", "TOTAL",
                (unsigned long long)total_bundles, total_ms,
                total_tput / 1e6);

    if (!json_path.empty()) {
        std::string json = "{\n  \"schema\": \"interp-topdown-v1\",\n";
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "  \"repeat\": %d,\n  \"total\": "
                      "{\"bundles\":%llu,\"ms\":%.3f,"
                      "\"bundles_per_sec\":%.0f},\n  \"tapes\": [\n",
                      repeat, (unsigned long long)total_bundles,
                      total_ms, total_tput);
        json += buf;
        for (size_t i = 0; i < results.size(); ++i) {
            json += tapeJson(results[i]);
            json += i + 1 < results.size() ? ",\n" : "\n";
        }
        json += "  ]\n}\n";
        FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f)
            fatal("cannot write %s", json_path.c_str());
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return 0;
}
