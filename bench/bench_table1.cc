/**
 * @file
 * Regenerates Table 1: microbenchmark slowdowns of each interpreter
 * relative to the equivalent operation compiled (direct mode).
 *
 * Slowdown = (interpreted cycles per iteration) / (compiled cycles
 * per iteration), with cycles from the Table 3 machine model. The
 * baseline compiler is this repository's non-optimizing MiniC, so
 * absolute slowdowns run lower than the paper's (whose baseline was
 * an optimizing C compiler); the ordering and the orders of magnitude
 * are the reproduction target.
 *
 * `--record <dir>` / `--replay <dir>` capture and replay the whole
 * micro cross product as binary traces (see record_replay.hh).
 * `--modes=baseline|remedies|all` swaps in / adds the §5 remedy
 * modes as extra columns against the same compiled-C baseline.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"

using namespace interp;
using namespace interp::harness;

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);

    // Interpreted columns by mode; C is always the slowdown baseline.
    std::vector<Lang> interp_langs;
    switch (modes) {
      case ModeSet::Baseline:
        interp_langs = {Lang::Mipsi, Lang::Java, Lang::Perl, Lang::Tcl};
        break;
      case ModeSet::Remedies:
        interp_langs = {Lang::MipsiThreaded, Lang::JavaQuick,
                        Lang::TclBytecode};
        break;
      case ModeSet::All:
        interp_langs = {Lang::Mipsi, Lang::Java, Lang::Perl, Lang::Tcl,
                        Lang::MipsiThreaded, Lang::JavaQuick,
                        Lang::TclBytecode};
        break;
    }
    std::vector<Lang> all_langs = {Lang::C};
    all_langs.insert(all_langs.end(), interp_langs.begin(),
                     interp_langs.end());

    std::printf("Table 1: microbenchmark slowdowns relative to "
                "compiled C (direct mode)\n\n");
    std::printf("%-14s", "Benchmark");
    for (Lang lang : interp_langs)
        std::printf(" %10s", langName(lang));
    std::printf("\n");
    std::printf("--------------------------------------------------"
                "-------\n");

    // The whole op x lang cross product is one flat parallel suite;
    // results come back in spec order, so row assembly stays simple.
    std::vector<BenchSpec> specs;
    for (const std::string &op : microOps())
        for (Lang lang : all_langs)
            specs.push_back(microBench(lang, op, microIterations(lang)));
    std::vector<Measurement> results = runSuiteWith(
        specs, jobs, [&tio](const BenchSpec &spec, size_t) {
            return runOrReplay(spec, tio);
        });

    size_t next = 0;
    for (const std::string &op : microOps()) {
        std::map<Lang, double> cycles_per_iter;
        for (Lang lang : all_langs) {
            const Measurement &m = results[next++];
            if (m.failed) {
                std::fprintf(stderr, "warn: %s/%s failed: %s\n",
                             langName(lang), op.c_str(),
                             m.error.c_str());
                continue;
            }
            if (!m.finished)
                std::fprintf(stderr, "warn: %s/%s hit budget\n",
                             langName(lang), op.c_str());
            cycles_per_iter[lang] =
                (double)m.cycles / microIterations(lang);
        }
        double base = cycles_per_iter[Lang::C];
        std::printf("%-14s", op.c_str());
        for (Lang lang : interp_langs)
            std::printf(" %10.1f", cycles_per_iter[lang] / base);
        std::printf("\n");
    }

    std::printf("\nPaper reference (Table 1, optimized-C baseline):\n"
                "  a=b+c          260     96      770     6500\n"
                "  if              79     21      190     1500\n"
                "  null-proc       84     84      670      580\n"
                "  string-concat  186    504       19       78\n"
                "  string-split    65    161       13       29\n"
                "  read           3.3    4.6      1.2       15\n");
    return 0;
}
