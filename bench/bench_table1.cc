/**
 * @file
 * Regenerates Table 1: microbenchmark slowdowns of each interpreter
 * relative to the equivalent operation compiled (direct mode).
 *
 * Slowdown = (interpreted cycles per iteration) / (compiled cycles
 * per iteration), with cycles from the Table 3 machine model. The
 * baseline compiler is this repository's non-optimizing MiniC, so
 * absolute slowdowns run lower than the paper's (whose baseline was
 * an optimizing C compiler); the ordering and the orders of magnitude
 * are the reproduction target.
 *
 * `--record <dir>` / `--replay <dir>` capture and replay the whole
 * micro cross product as binary traces (see record_replay.hh).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"

using namespace interp;
using namespace interp::harness;

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    const Lang kLangs[] = {Lang::C, Lang::Mipsi, Lang::Java, Lang::Perl,
                           Lang::Tcl};

    std::printf("Table 1: microbenchmark slowdowns relative to "
                "compiled C (direct mode)\n\n");
    std::printf("%-14s %10s %10s %10s %10s\n", "Benchmark", "MIPSI",
                "Java", "Perl", "Tcl");
    std::printf("--------------------------------------------------"
                "-------\n");

    // The whole op x lang cross product is one flat parallel suite;
    // results come back in spec order, so row assembly stays simple.
    std::vector<BenchSpec> specs;
    for (const std::string &op : microOps())
        for (Lang lang : kLangs)
            specs.push_back(microBench(lang, op, microIterations(lang)));
    std::vector<Measurement> results = runSuiteWith(
        specs, jobs, [&tio](const BenchSpec &spec, size_t) {
            return runOrReplay(spec, tio);
        });

    size_t next = 0;
    for (const std::string &op : microOps()) {
        std::map<Lang, double> cycles_per_iter;
        for (Lang lang : kLangs) {
            const Measurement &m = results[next++];
            if (m.failed) {
                std::fprintf(stderr, "warn: %s/%s failed: %s\n",
                             langName(lang), op.c_str(),
                             m.error.c_str());
                continue;
            }
            if (!m.finished)
                std::fprintf(stderr, "warn: %s/%s hit budget\n",
                             langName(lang), op.c_str());
            cycles_per_iter[lang] =
                (double)m.cycles / microIterations(lang);
        }
        double base = cycles_per_iter[Lang::C];
        std::printf("%-14s %10.1f %10.1f %10.1f %10.1f\n", op.c_str(),
                    cycles_per_iter[Lang::Mipsi] / base,
                    cycles_per_iter[Lang::Java] / base,
                    cycles_per_iter[Lang::Perl] / base,
                    cycles_per_iter[Lang::Tcl] / base);
    }

    std::printf("\nPaper reference (Table 1, optimized-C baseline):\n"
                "  a=b+c          260     96      770     6500\n"
                "  if              79     21      190     1500\n"
                "  null-proc       84     84      670      580\n"
                "  string-concat  186    504       19       78\n"
                "  string-split    65    161       13       29\n"
                "  read           3.3    4.6      1.2       15\n");
    return 0;
}
