/**
 * @file
 * Measures the tier-2 execution modes against their faithful
 * baselines on the macro suite: jvm superinstructions + field inline
 * caches, tclish command fusion + symbol caches, perlish hash-element
 * caches. These are the artifacts interpd's dynamic tier-up promotes
 * hot catalog programs to (see src/tier/), measured here standalone
 * so the steady-state gain and the one-time build cost are on the
 * record.
 *
 * The equivalence contract is one notch wider than §5's remedies:
 * per-command (execute - memModel) must be byte-identical — an inline
 * cache makes the §3.3 memory-model access sequence cheaper, it never
 * changes what the access does — and the driver flags any pair where
 * it is not. Fetch/decode may only shrink (superinstructions), and
 * the one-time artifact build is charged to Precompile.
 *
 * `--json [file]` (default BENCH_remedies.json) merges one
 * machine-readable row per pair into the remedies document: tier rows
 * are single-line objects carrying `"tier": 2`, appended to `pairs`,
 * and any previous tier rows are replaced, so re-running is
 * idempotent. Without an existing file a standalone document with the
 * same schema is written. `--jobs N` / `--record` / `--replay` behave
 * as in the other drivers. `--programs=<glob[,glob...]>` restricts
 * the suite to matching workload names.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "support/strutil.hh"
#include "workloads/registry.hh"

using namespace interp;
using namespace interp::harness;

namespace {

/** Per-command equality of retired and (execute - memModel): the
 *  tier-2 golden contract (fetch/decode and memModel excluded). */
bool
executeMinusMemModelIdentical(const trace::Profile &base,
                              const trace::Profile &tier)
{
    const auto &a = base.perCommand();
    const auto &b = tier.perCommand();
    size_t n = a.size() > b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
        trace::CommandStats sa =
            i < a.size() ? a[i] : trace::CommandStats{};
        trace::CommandStats sb =
            i < b.size() ? b[i] : trace::CommandStats{};
        if (sa.retired != sb.retired ||
            sa.execute - sa.memModel != sb.execute - sb.memModel)
            return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Read a whole file ("" if it does not exist). */
std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

/**
 * Merge @p rows (single-line `"tier": 2` objects) into the remedies
 * document at @p path: previous tier rows are dropped, the new ones
 * are appended inside `pairs`. Falls back to a standalone document
 * when the file is missing or not the expected shape.
 */
std::string
mergeIntoRemedies(const std::string &path,
                  const std::vector<std::string> &rows)
{
    std::string joined;
    for (size_t i = 0; i < rows.size(); ++i) {
        joined += rows[i];
        if (i + 1 < rows.size())
            joined += ",\n";
    }

    std::string existing = slurp(path);
    size_t tail = existing.rfind("\n  ]\n}");
    if (existing.find("\"pairs\"") == std::string::npos ||
        tail == std::string::npos)
        return "{\n  \"schema\": \"interp-remedies-v1\",\n"
               "  \"pairs\": [\n" +
               joined + "\n  ]\n}\n";

    // Drop any tier rows a previous run appended (they are the
    // single-line objects tagged "tier": 2).
    std::string head;
    size_t pos = 0;
    while (pos < tail) {
        size_t eol = existing.find('\n', pos);
        if (eol == std::string::npos || eol > tail)
            eol = tail;
        std::string line = existing.substr(pos, eol - pos);
        if (line.find("\"tier\": 2") == std::string::npos)
            head += line + "\n";
        pos = eol + 1;
    }
    // Strip trailing blank lines and a dangling comma before
    // splicing the new rows in.
    while (!head.empty() &&
           (head.back() == '\n' || head.back() == ' '))
        head.pop_back();
    if (!head.empty() && head.back() == ',')
        head.pop_back();
    return head + ",\n" + joined + "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = i + 1 < argc ? argv[i + 1]
                                     : "BENCH_remedies.json";
            break;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
            break;
        }
    }

    std::printf("Tier-2: superinstructions and inline caches on the "
                "real interpreters\n");
    std::printf("(each pair: faithful baseline vs tier-2; "
                "(exec - memmodel)/cmd must match exactly)\n\n");
    std::printf("%-11s %-10s %10s | %9s %8s | %9s %8s %7s | %9s %7s\n",
                "Mode", "Benchmark", "VirtCmds", "f/d-base", "f/d-t2",
                "mm-base", "mm-t2", "mm-sav%", "(pre x1k)", "i/cmd-%");
    std::printf("---------------------------------------------------------"
                "-----------------------------------------\n");

    // One flat suite: baseline row immediately followed by its tier-2
    // row, so pair i is results[2i] / results[2i+1].
    std::vector<BenchSpec> specs;
    for (BenchSpec &spec : workloads::filterPrograms(
             macroSuite(), workloads::parseProgramsArg(argc, argv))) {
        if (spec.lang != Lang::Java && spec.lang != Lang::Tcl &&
            spec.lang != Lang::Perl)
            continue;
        BenchSpec tier = spec;
        tier.lang = tierTier2Of(spec.lang);
        specs.push_back(std::move(spec));
        specs.push_back(std::move(tier));
    }

    SuiteOptions opt;
    opt.jobs = jobs;
    opt.io = tio;
    std::vector<Measurement> results = runSuite(specs, opt);

    std::vector<std::string> rows;
    Lang last = Lang::C;
    bool first_row = true;
    int bad_pairs = 0;

    for (size_t i = 0; i + 1 < results.size(); i += 2) {
        const Measurement &base = results[i];
        const Measurement &tier = results[i + 1];
        if (base.failed || tier.failed) {
            std::printf("%-11s %-10s failed: %s\n", langName(tier.lang),
                        tier.name.c_str(),
                        (base.failed ? base.error : tier.error).c_str());
            ++bad_pairs;
            continue;
        }
        if (!first_row && tier.lang != last)
            std::printf("\n");
        first_row = false;
        last = tier.lang;

        uint64_t mm_base = base.profile.memModelInsts();
        uint64_t mm_tier = tier.profile.memModelInsts();
        bool exec_ok =
            executeMinusMemModelIdentical(base.profile, tier.profile) &&
            base.commands == tier.commands &&
            base.stdoutText == tier.stdoutText &&
            mm_tier <= mm_base;
        if (!exec_ok)
            ++bad_pairs;

        double fd_base = base.profile.fetchDecodePerCommand();
        double fd_tier = tier.profile.fetchDecodePerCommand();
        double mm_save =
            mm_base ? 100.0 * (1.0 - (double)mm_tier / (double)mm_base)
                    : 0;
        double ipc_base =
            base.commands ? (double)base.profile.userInstructions() /
                                (double)base.commands
                          : 0;
        double ipc_tier =
            tier.commands ? (double)tier.profile.userInstructions() /
                                (double)tier.commands
                          : 0;
        double reduction =
            ipc_base > 0 ? 100.0 * (1.0 - ipc_tier / ipc_base) : 0;

        std::printf("%-11s %-10s %10s | %9.1f %8.1f | %9.2f %8.2f"
                    " %6.1f%% | %9.1f %6.1f%%%s\n",
                    langName(tier.lang), tier.name.c_str(),
                    sigThousands((double)tier.commands).c_str(),
                    fd_base, fd_tier,
                    base.commands ? (double)mm_base / base.commands : 0,
                    tier.commands ? (double)mm_tier / tier.commands : 0,
                    mm_save,
                    tier.profile.precompileInsts() / 1000.0, reduction,
                    exec_ok ? "" : "  [CONTRACT VIOLATION]");

        char buf[1024];
        std::snprintf(
            buf, sizeof buf,
            "    {\"baseline_lang\": \"%s\", \"remedy_lang\": \"%s\", "
            "\"bench\": \"%s\", \"tier\": 2, \"commands\": %llu, "
            "\"baseline\": {\"fd_per_cmd\": %.3f, \"memmodel_insts\": "
            "%llu, \"insts\": %llu, \"cycles\": %llu}, "
            "\"remedy\": {\"fd_per_cmd\": %.3f, \"memmodel_insts\": "
            "%llu, \"insts\": %llu, \"cycles\": %llu, "
            "\"precompile_insts\": %llu}, "
            "\"execute_minus_memmodel_identical\": %s, "
            "\"memmodel_reduction_pct\": %.2f, "
            "\"insts_per_cmd_reduction_pct\": %.2f}",
            jsonEscape(langName(base.lang)).c_str(),
            jsonEscape(langName(tier.lang)).c_str(),
            jsonEscape(tier.name).c_str(),
            (unsigned long long)tier.commands, fd_base,
            (unsigned long long)mm_base,
            (unsigned long long)base.profile.userInstructions(),
            (unsigned long long)base.cycles, fd_tier,
            (unsigned long long)mm_tier,
            (unsigned long long)tier.profile.userInstructions(),
            (unsigned long long)tier.cycles,
            (unsigned long long)tier.profile.precompileInsts(),
            exec_ok ? "true" : "false", mm_save, reduction);
        rows.push_back(buf);
    }

    std::printf("\nReading the table: fetch/decode shrinks where fused "
                "pairs fire; the memory-model\nslice of execute (mm) "
                "shrinks where caches hit — everything else is "
                "byte-identical\nto the baseline. (pre) is the one-shot "
                "artifact build, charged like §5's\nquicken/compile. "
                "These are the tiers interpd promotes hot programs to "
                "at runtime.\n");

    if (!json_path.empty()) {
        std::string doc = mergeIntoRemedies(json_path, rows);
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "merged %zu tier rows into %s\n",
                     rows.size(), json_path.c_str());
    }
    return bad_pairs == 0 ? 0 : 1;
}
