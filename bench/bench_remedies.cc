/**
 * @file
 * Measures the §5 fetch/decode remedies on the real interpreters.
 *
 * The paper's §5 claims that the fetch/decode overhead dominating
 * MIPSI and Java in Table 2 "could be reduced by using threaded
 * interpretation ... or binary translation". This driver runs each
 * remedied interpreter (threaded MIPSI, quickened JVM, bytecode
 * tclish) against its faithful baseline on the macro suite and prints
 * the Table-2-style before/after split. By construction the execute
 * stage of every remedy is the same code as the baseline's, so the
 * whole improvement must appear in the fetch/decode column — the
 * driver verifies the per-command execute counts are identical and
 * flags any pair where they are not.
 *
 * `--json [file]` additionally writes the machine-readable
 * BENCH_remedies.json (schema documented in EXPERIMENTS.md).
 * `--jobs N` / `--record <dir>` / `--replay <dir>` behave as in the
 * other drivers; output is byte-identical at any job count.
 * `--programs=<glob[,glob...]>` restricts the suite to matching
 * workload names (e.g. --programs='compose-*,spin').
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "support/strutil.hh"
#include "workloads/registry.hh"

using namespace interp;
using namespace interp::harness;

namespace {

/** Per-command retired+execute equality (fetch/decode excluded). */
bool
executeIdentical(const trace::Profile &base, const trace::Profile &remedy)
{
    const auto &a = base.perCommand();
    const auto &b = remedy.perCommand();
    size_t n = a.size() > b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
        trace::CommandStats sa = i < a.size() ? a[i] : trace::CommandStats{};
        trace::CommandStats sb = i < b.size() ? b[i] : trace::CommandStats{};
        if (sa.retired != sb.retired || sa.execute != sb.execute)
            return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);

    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = i + 1 < argc ? argv[i + 1]
                                     : "BENCH_remedies.json";
            break;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
            break;
        }
    }

    std::printf("Section 5: fetch/decode remedies on the real "
                "interpreters\n");
    std::printf("(each pair: faithful baseline vs remedy; execute/cmd "
                "must match exactly)\n\n");
    std::printf("%-15s %-10s %10s | %9s %8s %11s | %9s %8s %11s | %7s\n",
                "Mode", "Benchmark", "VirtCmds", "f/d-base", "f/d-rem",
                "(pre x1k)", "exec-base", "exec-rem", "cycles-sav",
                "i/cmd-%");
    std::printf("---------------------------------------------------------"
                "--------------------------------------------------\n");

    // One flat suite: baseline row immediately followed by its remedy
    // row, so pair i is results[2i] / results[2i+1].
    std::vector<BenchSpec> specs;
    for (BenchSpec &spec : workloads::filterPrograms(
             macroSuite(), workloads::parseProgramsArg(argc, argv))) {
        Lang base = spec.lang;
        Lang remedy = base == Lang::Mipsi  ? Lang::MipsiThreaded
                      : base == Lang::Java ? Lang::JavaQuick
                      : base == Lang::Tcl  ? Lang::TclBytecode
                                           : base;
        if (remedy == base)
            continue;
        BenchSpec rem = spec;
        rem.lang = remedy;
        specs.push_back(std::move(spec));
        specs.push_back(std::move(rem));
    }

    SuiteOptions opt;
    opt.jobs = jobs;
    opt.io = tio;
    std::vector<Measurement> results = runSuite(specs, opt);

    std::string json = "{\n  \"schema\": \"interp-remedies-v1\",\n"
                       "  \"pairs\": [\n";
    bool first_json = true;
    Lang last = Lang::C;
    bool first_row = true;
    int bad_pairs = 0;

    for (size_t i = 0; i + 1 < results.size(); i += 2) {
        const Measurement &base = results[i];
        const Measurement &rem = results[i + 1];
        if (base.failed || rem.failed) {
            std::printf("%-15s %-10s failed: %s\n", langName(rem.lang),
                        rem.name.c_str(),
                        (base.failed ? base.error : rem.error).c_str());
            ++bad_pairs;
            continue;
        }
        if (!first_row && rem.lang != last)
            std::printf("\n");
        first_row = false;
        last = rem.lang;

        double fd_base = base.profile.fetchDecodePerCommand();
        double fd_rem = rem.profile.fetchDecodePerCommand();
        double ex_base = base.profile.executePerCommand();
        double ex_rem = rem.profile.executePerCommand();
        bool exec_ok = executeIdentical(base.profile, rem.profile) &&
                       base.commands == rem.commands;
        if (!exec_ok)
            ++bad_pairs;

        double ipc_base =
            base.commands
                ? (double)base.profile.userInstructions() / base.commands
                : 0;
        double ipc_rem =
            rem.commands
                ? (double)rem.profile.userInstructions() / rem.commands
                : 0;
        double reduction =
            ipc_base > 0 ? 100.0 * (1.0 - ipc_rem / ipc_base) : 0;

        std::printf("%-15s %-10s %10s | %9.1f %8.1f %11.1f | %9.1f %8.1f"
                    " %11s | %6.1f%%%s\n",
                    langName(rem.lang), rem.name.c_str(),
                    sigThousands((double)rem.commands).c_str(), fd_base,
                    fd_rem, rem.profile.precompileInsts() / 1000.0,
                    ex_base, ex_rem,
                    sigThousands((double)base.cycles -
                                 (double)rem.cycles)
                        .c_str(),
                    reduction,
                    exec_ok ? "" : "  [EXECUTE MISMATCH]");

        char buf[1024];
        std::snprintf(
            buf, sizeof buf,
            "    {\"baseline_lang\": \"%s\", \"remedy_lang\": \"%s\", "
            "\"bench\": \"%s\",\n"
            "     \"commands\": %llu,\n"
            "     \"baseline\": {\"fd_per_cmd\": %.3f, \"exec_per_cmd\": "
            "%.3f, \"insts\": %llu, \"cycles\": %llu},\n"
            "     \"remedy\": {\"fd_per_cmd\": %.3f, \"exec_per_cmd\": "
            "%.3f, \"insts\": %llu, \"cycles\": %llu, "
            "\"precompile_insts\": %llu},\n"
            "     \"execute_identical\": %s, \"insts_per_cmd_reduction_pct\""
            ": %.2f}",
            jsonEscape(langName(base.lang)).c_str(),
            jsonEscape(langName(rem.lang)).c_str(),
            jsonEscape(rem.name).c_str(),
            (unsigned long long)rem.commands, fd_base, ex_base,
            (unsigned long long)base.profile.userInstructions(),
            (unsigned long long)base.cycles, fd_rem, ex_rem,
            (unsigned long long)rem.profile.userInstructions(),
            (unsigned long long)rem.cycles,
            (unsigned long long)rem.profile.precompileInsts(),
            exec_ok ? "true" : "false", reduction);
        if (!first_json)
            json += ",\n";
        first_json = false;
        json += buf;
    }
    json += "\n  ]\n}\n";

    std::printf("\nReading the table: f/d per command drops (threading "
                "~10x for MIPSI, quickening\n~2x for hot Java bytecodes, "
                "compiled scripts ~10-100x for Tcl) while execute per\n"
                "command is unchanged; the one-shot translation cost "
                "appears as (pre). This is\nthe paper's §5 remedy claim "
                "measured on the actual interpreters.\n");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return bad_pairs == 0 ? 0 : 1;
}
