/**
 * @file
 * Dispatch-technique ablation (host time, google-benchmark).
 *
 * §5 of the paper points at software remedies for fetch/decode
 * overhead: "instruction fetch/decode overhead could be reduced by
 * using threaded interpretation ... or binary translation". This
 * bench measures, on the host, the classic dispatch techniques over
 * the same tiny register bytecode:
 *
 *   - switch:   one switch in a loop (MIPSI/JVM style)
 *   - table:    function-pointer table call per op (Tcl command style)
 *   - threaded: computed-goto direct threading (the §5 suggestion)
 *   - decoded:  predecoded operands + switch (Perl op-tree style)
 *
 * The absolute numbers are host-dependent; the *ratios* show why
 * threading matters for low-level VMs where fetch/decode dominates.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

namespace {

enum Op : uint8_t
{
    OP_ADD, OP_SUB, OP_XOR, OP_SHL, OP_LOADI, OP_JNZ_BACK, OP_HALT,
    NUM_OPS,
};

/** One fixed-width instruction: op, dst, src, imm. */
struct Insn
{
    uint8_t op, dst, src;
    int32_t imm;
};

/** A small loop kernel: ~8 ops per iteration, `imm` iterations. */
std::vector<Insn>
makeProgram(int iterations)
{
    std::vector<Insn> prog;
    prog.push_back({OP_LOADI, 0, 0, iterations}); // r0 = n
    prog.push_back({OP_LOADI, 1, 0, 0});          // r1 = acc
    size_t loop_top = prog.size();
    prog.push_back({OP_ADD, 1, 0, 0});   // acc += r0
    prog.push_back({OP_XOR, 1, 0, 0});   // acc ^= r0
    prog.push_back({OP_SHL, 2, 1, 3});   // r2 = acc << 3
    prog.push_back({OP_ADD, 1, 2, 0});   // acc += r2
    prog.push_back({OP_SUB, 0, 3, 1});   // r0 -= 1  (r3 holds 1)
    prog.push_back(
        {OP_JNZ_BACK, 0, 0, (int32_t)(prog.size() - loop_top + 1)});
    prog.push_back({OP_HALT, 0, 0, 0});
    return prog;
}

int64_t
runSwitch(const std::vector<Insn> &prog)
{
    int64_t r[4] = {0, 0, 0, 1};
    size_t pc = 0;
    while (true) {
        const Insn &insn = prog[pc++];
        switch (insn.op) {
          case OP_ADD: r[insn.dst] += r[insn.src]; break;
          case OP_SUB: r[insn.dst] -= r[insn.src]; break;
          case OP_XOR: r[insn.dst] ^= r[insn.src]; break;
          case OP_SHL: r[insn.dst] = r[insn.src] << insn.imm; break;
          case OP_LOADI: r[insn.dst] = insn.imm; break;
          case OP_JNZ_BACK:
            if (r[insn.dst] != 0)
                pc -= insn.imm;
            break;
          case OP_HALT: return r[1];
        }
    }
}

struct TableVm;
using Handler = void (*)(TableVm &, const Insn &);

struct TableVm
{
    int64_t r[4] = {0, 0, 0, 1};
    size_t pc = 0;
    bool halted = false;
};

void hAdd(TableVm &vm, const Insn &i) { vm.r[i.dst] += vm.r[i.src]; }
void hSub(TableVm &vm, const Insn &i) { vm.r[i.dst] -= vm.r[i.src]; }
void hXor(TableVm &vm, const Insn &i) { vm.r[i.dst] ^= vm.r[i.src]; }
void hShl(TableVm &vm, const Insn &i)
{
    vm.r[i.dst] = vm.r[i.src] << i.imm;
}
void hLoadI(TableVm &vm, const Insn &i) { vm.r[i.dst] = i.imm; }
void hJnz(TableVm &vm, const Insn &i)
{
    if (vm.r[i.dst] != 0)
        vm.pc -= i.imm;
}
void hHalt(TableVm &vm, const Insn &) { vm.halted = true; }

int64_t
runTable(const std::vector<Insn> &prog)
{
    static const Handler table[NUM_OPS] = {hAdd, hSub, hXor, hShl,
                                           hLoadI, hJnz, hHalt};
    TableVm vm;
    while (!vm.halted) {
        const Insn &insn = prog[vm.pc++];
        table[insn.op](vm, insn);
    }
    return vm.r[1];
}

int64_t
runThreaded(const std::vector<Insn> &prog)
{
    // Direct threading with computed goto: each handler dispatches the
    // next instruction itself — no central loop branch.
    static void *labels[NUM_OPS] = {&&l_add, &&l_sub, &&l_xor, &&l_shl,
                                    &&l_loadi, &&l_jnz, &&l_halt};
    int64_t r[4] = {0, 0, 0, 1};
    size_t pc = 0;
    const Insn *insn;

#define DISPATCH()                                                     \
    do {                                                               \
        insn = &prog[pc++];                                            \
        goto *labels[insn->op];                                        \
    } while (0)

    DISPATCH();
  l_add:
    r[insn->dst] += r[insn->src];
    DISPATCH();
  l_sub:
    r[insn->dst] -= r[insn->src];
    DISPATCH();
  l_xor:
    r[insn->dst] ^= r[insn->src];
    DISPATCH();
  l_shl:
    r[insn->dst] = r[insn->src] << insn->imm;
    DISPATCH();
  l_loadi:
    r[insn->dst] = insn->imm;
    DISPATCH();
  l_jnz:
    if (r[insn->dst] != 0)
        pc -= insn->imm;
    DISPATCH();
  l_halt:
    return r[1];
#undef DISPATCH
}

constexpr int kIterations = 4096;

void
BM_DispatchSwitch(benchmark::State &state)
{
    auto prog = makeProgram(kIterations);
    for (auto _ : state)
        benchmark::DoNotOptimize(runSwitch(prog));
    state.SetItemsProcessed(state.iterations() * kIterations * 6);
}

void
BM_DispatchTable(benchmark::State &state)
{
    auto prog = makeProgram(kIterations);
    for (auto _ : state)
        benchmark::DoNotOptimize(runTable(prog));
    state.SetItemsProcessed(state.iterations() * kIterations * 6);
}

void
BM_DispatchThreaded(benchmark::State &state)
{
    auto prog = makeProgram(kIterations);
    for (auto _ : state)
        benchmark::DoNotOptimize(runThreaded(prog));
    state.SetItemsProcessed(state.iterations() * kIterations * 6);
}

BENCHMARK(BM_DispatchSwitch);
BENCHMARK(BM_DispatchTable);
BENCHMARK(BM_DispatchThreaded);

} // namespace

BENCHMARK_MAIN();
