/**
 * @file
 * Regenerates Figure 1: cumulative native-instruction distributions.
 * For each macro benchmark, the series gives the fraction of execute
 * instructions covered by the top-x virtual commands (fetch/decode
 * excluded, as in the paper).
 */

#include <cstdio>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"

using namespace interp;
using namespace interp::harness;

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);

    std::printf("Figure 1: cumulative execute-instruction share of the "
                "top-x virtual commands\n");
    std::printf("(each row is one curve; the paper plots x on a log "
                "axis)\n\n");
    std::printf("%-6s %-10s %6s %6s %6s %6s %6s %6s\n", "Lang", "Bench",
                "top1", "top2", "top3", "top5", "top10", "top20");
    std::printf("------------------------------------------------------"
                "--\n");

    // Counting only — no timing needed for this figure.
    SuiteOptions opt;
    opt.jobs = jobs;
    opt.withMachine = false;
    opt.io = tio;
    for (const Measurement &m : runSuite(withModes(macroSuite(), modes),
                                         opt)) {
        if (m.failed) {
            std::printf("%-6s %-10s failed: %s\n", langName(m.lang),
                        m.name.c_str(), m.error.c_str());
            continue;
        }
        std::printf("%-6s %-10s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% "
                    "%5.1f%%\n",
                    langName(m.lang), m.name.c_str(),
                    100 * m.profile.cumulativeExecuteShare(1),
                    100 * m.profile.cumulativeExecuteShare(2),
                    100 * m.profile.cumulativeExecuteShare(3),
                    100 * m.profile.cumulativeExecuteShare(5),
                    100 * m.profile.cumulativeExecuteShare(10),
                    100 * m.profile.cumulativeExecuteShare(20));
    }

    std::printf("\nPaper reference: a handful of commands dominate "
                "(e.g. Tcl des: 2 commands = 96%%),\nbut for Perl/Tcl "
                "the dominating set differs per program (see Figure "
                "2).\n");
    return 0;
}
