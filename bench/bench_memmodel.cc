/**
 * @file
 * Regenerates the §3.3 memory-model measurements: for each
 * interpreter, the average native-instruction cost of one logical
 * memory-model access (page-table translation for MIPSI, stack/field
 * access for Java, hash translation for Perl, symbol-table lookup for
 * Tcl) and the share of total instructions spent in the memory model.
 */

#include <cstdio>
#include <vector>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"

using namespace interp;
using namespace interp::harness;

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);

    std::printf("Section 3.3: memory-model cost per interpreter\n\n");
    std::printf("%-6s %-10s %14s %14s %10s\n", "Lang", "Bench",
                "accesses(x1k)", "insts/access", "%%of-total");
    std::printf("----------------------------------------------------"
                "-----\n");

    std::vector<BenchSpec> specs;
    for (BenchSpec &spec : withModes(macroSuite(), modes))
        if (spec.lang != Lang::C)
            specs.push_back(std::move(spec));

    SuiteOptions opt;
    opt.jobs = jobs;
    opt.withMachine = false;
    opt.io = tio;

    Lang last = Lang::C;
    for (const Measurement &m : runSuite(specs, opt)) {
        if (m.lang != last)
            std::printf("\n");
        last = m.lang;
        if (m.failed) {
            std::printf("%-6s %-10s failed: %s\n", langName(m.lang),
                        m.name.c_str(), m.error.c_str());
            continue;
        }
        std::printf("%-6s %-10s %14.1f %14.1f %9.2f%%\n",
                    langName(m.lang), m.name.c_str(),
                    m.profile.memModelAccesses() / 1000.0,
                    m.profile.memModelCostPerAccess(),
                    100.0 * m.profile.memModelFraction());
    }

    std::printf(
        "\nPaper reference (Section 3.3):\n"
        "  MIPSI: 62 insts/access, 13-18%% of total (page tables)\n"
        "  Java:  2 per stack access, 11 per field access, 7-13%% of "
        "total\n"
        "  Perl:  210 insts per hash translation, 0.16-3.8%% of total\n"
        "         (scalars/arrays compiled to slots at startup)\n"
        "  Tcl:   206-514 insts/access, growing with symbol-table "
        "size,\n"
        "         3.4-14%% of total (avg 9.3%%)\n"
        "\nNote: for MIPSI the per-access figure below counts data "
        "accesses only (PC\ntranslation is part of fetch/decode); for "
        "Java it blends 2-instruction stack\naccesses with "
        "~11-instruction static/array accesses; for Perl it is the "
        "hash\ntranslation cost alone, as in the paper.\n");
    return 0;
}
