/**
 * @file
 * Regenerates Figure 2: per-benchmark virtual-command count and
 * execute-instruction distributions. For each benchmark the top
 * commands are listed with (a) their share of retired commands (the
 * paper's white bars) and (b) their share of execute instructions
 * (grey bars). A `native` pseudo-row reports runtime-library work,
 * as the paper does for Java.
 */

#include <cstdio>

#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "harness/workloads.hh"

using namespace interp;
using namespace interp::harness;

int
main(int argc, char **argv)
{
    int jobs = parseJobs(argc, argv);
    TraceIo tio = parseTraceDirs(argc, argv);
    ModeSet modes = parseModes(argc, argv);

    std::printf("Figure 2: virtual-command and execute-instruction "
                "distributions\n\n");

    SuiteOptions opt;
    opt.jobs = jobs;
    opt.withMachine = false;
    opt.io = tio;
    for (const Measurement &m : runSuite(withModes(macroSuite(), modes),
                                         opt)) {
        if (m.failed) {
            std::printf("--- %s / %s --- failed: %s\n", langName(m.lang),
                        m.name.c_str(), m.error.c_str());
            continue;
        }
        std::printf("--- %s / %s ---\n", langName(m.lang),
                    m.name.c_str());
        std::printf("  %-14s %10s %10s\n", "command", "cmds%",
                    "exec-insts%");

        uint64_t total_cmds = m.profile.commands();
        uint64_t total_exec = m.profile.executeInsts();
        auto sorted = m.profile.byExecuteInsts();
        int shown = 0;
        for (const auto &[id, stats] : sorted) {
            if (shown >= 8)
                break;
            double cmd_pct =
                total_cmds ? 100.0 * stats.retired / total_cmds : 0;
            double exec_pct =
                total_exec ? 100.0 * stats.execute / total_exec : 0;
            if (cmd_pct < 0.5 && exec_pct < 0.5)
                continue;
            const char *name = id < m.commandNames.size()
                                   ? m.commandNames[id].c_str()
                                   : "?";
            std::printf("  %-14s %9.1f%% %9.1f%%\n", name, cmd_pct,
                        exec_pct);
            ++shown;
        }
        if (m.profile.nativeLibInsts() > 0) {
            std::printf("  %-14s %10s %9.1f%%  (runtime libraries)\n",
                        "native", "-",
                        total_exec ? 100.0 * m.profile.nativeLibInsts() /
                                         total_exec
                                   : 0.0);
        }
        std::printf("\n");
    }

    std::printf("Paper reference: MIPSI concentrates on lw/sw/sll (sll "
                "inflated by delay-slot no-ops);\nJava gfx programs "
                "spend ~half their execute instructions in `native`; "
                "for Perl/Tcl the\ndominant command differs per "
                "program (match for txt2html, expr/set for Tcl "
                "des).\n");
    return 0;
}
