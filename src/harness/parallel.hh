/**
 * @file
 * Parallel suite execution for the benchmark harness.
 *
 * The paper's evaluation is a cross product of independent runs;
 * these helpers execute a std::vector<BenchSpec> (or any indexed job
 * set) on a ThreadPool and return Measurements in deterministic spec
 * order regardless of completion order. Every job gets its own
 * Profile, Machine, FileSystem and sinks inside harness::run(), and
 * the deterministic AddressMapper makes the results bit-identical to
 * a serial pass, so `--jobs N` changes wall-clock time only.
 *
 * Failure containment: each job runs under a ScopedFatalThrow, so a
 * fatal program error (or any exception) marks that one Measurement
 * failed instead of killing the whole suite.
 */

#ifndef INTERP_HARNESS_PARALLEL_HH
#define INTERP_HARNESS_PARALLEL_HH

#include <functional>
#include <vector>

#include "harness/record_replay.hh"
#include "harness/runner.hh"

namespace interp::harness {

/**
 * Job count from the environment: INTERP_JOBS if set (0 = one per
 * hardware thread), else 1 (serial, the historical behaviour).
 */
int defaultJobs();

/**
 * Strip a `--jobs N` / `--jobs=N` / `-jN` option from argv and return
 * the requested job count (0 = one per hardware thread). Returns
 * defaultJobs() when no option is present; argc is updated.
 */
int parseJobs(int &argc, char **argv);

/** Resolve a user-facing jobs value: 0 -> hardware threads, >=1 kept. */
int resolveJobs(int jobs);

/**
 * Run fn(i) for every i in [0, n) on @p jobs worker threads.
 * Serial (and allocation-free) when jobs resolves to 1. @p fn must
 * not throw; wrap fallible work via runSuiteWith() instead.
 */
void parallelFor(size_t n, int jobs, const std::function<void(size_t)> &fn);

/**
 * Run every spec through @p fn (typically a harness::run wrapper)
 * on @p jobs threads. Results are returned in spec order. Exceptions
 * (including fatal() program errors) surface as Measurements with
 * failed=true and the message in error.
 */
std::vector<Measurement>
runSuiteWith(const std::vector<BenchSpec> &specs, int jobs,
             const std::function<Measurement(const BenchSpec &, size_t)> &fn);

/** Options forwarded to harness::run() for every spec of a suite. */
struct SuiteOptions
{
    int jobs = 1;                                ///< 0 = hardware threads
    const sim::MachineConfig *machineCfg = nullptr; ///< null = Table 3
    bool withMachine = true;                     ///< simulate timing
    /**
     * Record every run into io.recordDir, or replay every spec from
     * io.replayDir, instead of plain live runs (see record_replay.hh).
     * Record/replay jobs are ordinary suite jobs: they run on the
     * pool and a bad trace file fails one Measurement, not the suite.
     */
    TraceIo io;
};

/** Run a whole suite under the standard instrumentation. */
std::vector<Measurement> runSuite(const std::vector<BenchSpec> &specs,
                                  const SuiteOptions &opt = {});

} // namespace interp::harness

#endif // INTERP_HARNESS_PARALLEL_HH
