#include "harness/record_replay.hh"

#include <cctype>
#include <cstring>
#include <filesystem>

#include "support/logging.hh"
#include "tracefile/reader.hh"
#include "tracefile/writer.hh"

namespace interp::harness {

TraceIo
parseTraceDirs(int &argc, char **argv)
{
    TraceIo io;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string *dest = nullptr;
        const char *value = nullptr;
        if (std::strcmp(arg, "--record") == 0 ||
            std::strcmp(arg, "--replay") == 0) {
            if (i + 1 >= argc)
                fatal("%s requires a directory", arg);
            dest = std::strcmp(arg, "--record") == 0 ? &io.recordDir
                                                     : &io.replayDir;
            value = argv[++i];
        } else if (std::strncmp(arg, "--record=", 9) == 0) {
            dest = &io.recordDir;
            value = arg + 9;
        } else if (std::strncmp(arg, "--replay=", 9) == 0) {
            dest = &io.replayDir;
            value = arg + 9;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        if (!*value)
            fatal("--record/--replay require a non-empty directory");
        *dest = value;
    }
    argv[out] = nullptr;
    argc = out;
    if (!io.recordDir.empty() && !io.replayDir.empty())
        fatal("--record and --replay are mutually exclusive");
    return io;
}

std::string
traceFileName(const BenchSpec &spec)
{
    std::string name = langName(spec.lang);
    name += '-';
    name += spec.name;
    for (char &c : name) {
        if (std::isupper((unsigned char)c))
            c = (char)std::tolower((unsigned char)c);
        else if (!std::isalnum((unsigned char)c) && c != '-' &&
                 c != '_' && c != '.')
            c = '_';
    }
    return name + ".itr";
}

std::string
traceFilePath(const std::string &dir, const BenchSpec &spec)
{
    return (std::filesystem::path(dir) / traceFileName(spec)).string();
}

Measurement
replayTrace(const std::string &path, const BenchSpec &spec,
            const std::vector<trace::Sink *> &extra_sinks,
            const sim::MachineConfig *machine_cfg, bool with_machine)
{
    tracefile::TraceReader reader(path);
    const tracefile::TraceMeta &meta = reader.meta();
    if (meta.lang != langName(spec.lang) || meta.name != spec.name)
        fatal("trace file %s records %s-%s but the suite asked for "
              "%s-%s", path.c_str(), meta.lang.c_str(),
              meta.name.c_str(), langName(spec.lang),
              spec.name.c_str());

    Measurement m;
    m.lang = spec.lang;
    m.name = spec.name;

    sim::MachineConfig cfg =
        machine_cfg ? *machine_cfg : sim::MachineConfig();
    sim::Machine machine(cfg);
    // Same sink order as harness::run(): profile, machine, extras.
    std::vector<trace::Sink *> sinks;
    sinks.push_back(&m.profile);
    if (with_machine)
        sinks.push_back(&machine);
    for (trace::Sink *sink : extra_sinks)
        sinks.push_back(sink);
    reader.replay(sinks);

    m.programBytes = (size_t)meta.programBytes;
    m.commands = meta.commands;
    m.finished = meta.finished;
    m.commandNames = meta.commandNames;
    m.cycles = machine.cycles();
    m.breakdown = machine.breakdown();
    m.imissPer100 = machine.imissPer100Insts();
    return m;
}

Measurement
runOrReplay(const BenchSpec &spec, const TraceIo &io,
            const std::vector<trace::Sink *> &extra_sinks,
            const sim::MachineConfig *machine_cfg, bool with_machine)
{
    if (!io.replayDir.empty())
        return replayTrace(traceFilePath(io.replayDir, spec), spec,
                           extra_sinks, machine_cfg, with_machine);
    if (io.recordDir.empty())
        return run(spec, extra_sinks, machine_cfg, with_machine);

    std::error_code ec;
    std::filesystem::create_directories(io.recordDir, ec);
    if (ec)
        fatal("cannot create trace directory %s: %s",
              io.recordDir.c_str(), ec.message().c_str());
    tracefile::TraceWriter writer(traceFilePath(io.recordDir, spec),
                                  langName(spec.lang), spec.name);
    std::vector<trace::Sink *> sinks = extra_sinks;
    sinks.push_back(&writer);
    Measurement m = run(spec, sinks, machine_cfg, with_machine);
    writer.setRunResult(m.programBytes, m.commands, m.finished);
    writer.setCommandNames(m.commandNames);
    writer.finish();
    return m;
}

} // namespace interp::harness
