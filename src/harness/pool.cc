#include "harness/pool.hh"

namespace interp::harness {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(std::move(job));
    }
    workCv.notify_one();
}

size_t
ThreadPool::queuedCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return queue.size();
}

unsigned
ThreadPool::idleWorkers() const
{
    std::lock_guard<std::mutex> lock(mu);
    return (unsigned)workers.size() - (unsigned)running;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    idleCv.wait(lock, [this] { return queue.empty() && running == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        workCv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty())
            return; // stopping, nothing left to drain
        std::function<void()> job = std::move(queue.front());
        queue.pop_front();
        ++running;
        lock.unlock();
        job();
        lock.lock();
        --running;
        if (queue.empty() && running == 0)
            idleCv.notify_all();
    }
}

} // namespace interp::harness
