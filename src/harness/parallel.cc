#include "harness/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#include "harness/pool.hh"
#include "support/logging.hh"

namespace interp::harness {

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? (int)hw : 1;
}

int
defaultJobs()
{
    const char *env = std::getenv("INTERP_JOBS");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end == env || *end || value < 0)
        fatal("INTERP_JOBS must be a non-negative integer, got \"%s\"",
              env);
    return resolveJobs((int)value);
}

int
parseJobs(int &argc, char **argv)
{
    int jobs = defaultJobs();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
            if (i + 1 >= argc)
                fatal("%s requires a count", arg);
            value = argv[++i];
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            value = arg + 7;
        } else if (arg[0] == '-' && arg[1] == 'j' && arg[2]) {
            value = arg + 2;
        } else {
            argv[out++] = argv[i];
            continue;
        }
        char *end = nullptr;
        long parsed = std::strtol(value, &end, 10);
        if (end == value || *end || parsed < 0)
            fatal("--jobs expects a non-negative integer, got \"%s\"",
                  value);
        jobs = resolveJobs((int)parsed);
    }
    argv[out] = nullptr;
    argc = out;
    return jobs;
}

void
parallelFor(size_t n, int jobs, const std::function<void(size_t)> &fn)
{
    int workers = resolveJobs(jobs);
    if (workers <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if ((size_t)workers > n)
        workers = (int)n;
    ThreadPool pool((unsigned)workers);
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

std::vector<Measurement>
runSuiteWith(const std::vector<BenchSpec> &specs, int jobs,
             const std::function<Measurement(const BenchSpec &, size_t)> &fn)
{
    // Slot i belongs exclusively to job i: deterministic spec order
    // regardless of which worker finishes first.
    std::vector<Measurement> results(specs.size());
    parallelFor(specs.size(), jobs, [&](size_t i) {
        try {
            ScopedFatalThrow contain;
            results[i] = fn(specs[i], i);
        } catch (const std::exception &ex) {
            Measurement failed;
            failed.lang = specs[i].lang;
            failed.name = specs[i].name;
            failed.failed = true;
            failed.error = ex.what();
            results[i] = std::move(failed);
        } catch (...) {
            Measurement failed;
            failed.lang = specs[i].lang;
            failed.name = specs[i].name;
            failed.failed = true;
            failed.error = "unknown exception";
            results[i] = std::move(failed);
        }
    });
    return results;
}

std::vector<Measurement>
runSuite(const std::vector<BenchSpec> &specs, const SuiteOptions &opt)
{
    return runSuiteWith(specs, opt.jobs,
                        [&opt](const BenchSpec &spec, size_t) {
                            return runOrReplay(spec, opt.io, {},
                                               opt.machineCfg,
                                               opt.withMachine);
                        });
}

} // namespace interp::harness
