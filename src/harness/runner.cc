#include "harness/runner.hh"

#include "harness/engine.hh"
#include "harness/workloads.hh"
#include "mips/asm_builder.hh"
#include "support/logging.hh"
#include "support/strutil.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"
#include "workloads/registry.hh"

namespace interp::harness {

Measurement
run(const BenchSpec &spec, const std::vector<trace::Sink *> &extra_sinks,
    const sim::MachineConfig *machine_cfg, bool with_machine)
{
    Measurement m;
    m.lang = spec.lang;
    m.name = spec.name;

    trace::Execution exec;
    exec.addSink(&m.profile);
    sim::MachineConfig cfg =
        machine_cfg ? *machine_cfg : sim::MachineConfig();
    sim::Machine machine(cfg);
    if (with_machine)
        exec.addSink(&machine);
    for (trace::Sink *sink : extra_sinks)
        exec.addSink(sink);

    vfs::FileSystem fs;
    if (spec.needsInputs)
        installAllInputs(fs);

    auto collect_names = [&m](trace::CommandSet &set) {
        m.commandNames.reserve(set.size());
        for (size_t i = 0; i < set.size(); ++i)
            m.commandNames.push_back(set.name((trace::CommandId)i));
    };

    // Every mode — baseline, remedy, tier-2, jit — goes through the
    // same Engine interface; run() only owns the measurement plumbing.
    auto engine = makeEngine(spec.lang, exec, fs);
    EngineResult r = engine->execute(spec);
    m.finished = r.finished;
    m.commands = r.commands;
    m.programBytes = r.programBytes;
    collect_names(engine->commandSet());
    // The interpreters flush on every run() exit (FlushOnExit); this
    // covers hypothetical future paths that emit outside run().
    exec.flush();

    m.cycles = machine.cycles();
    m.breakdown = machine.breakdown();
    m.imissPer100 = machine.imissPer100Insts();
    m.stdoutText = fs.stdoutCapture();
    return m;
}

// --- macro suite --------------------------------------------------------

std::vector<BenchSpec>
macroSuite()
{
    // The suite is the workload registry's canonical row order; this
    // wrapper survives so existing callers keep one include.
    return workloads::macroRows();
}

// --- micro suite --------------------------------------------------------

std::vector<std::string>
microOps()
{
    return {"a=b+c", "if", "null-proc", "string-concat", "string-split",
            "read"};
}

int
microIterations(Lang lang)
{
    // Scaled so no microbenchmark takes more than a couple of seconds
    // of host time; slowdowns are per-iteration ratios, so the counts
    // need not match across languages. Remedy modes use their
    // baseline's counts so the pairs stay directly comparable.
    switch (baselineOf(lang)) {
      case Lang::C: return 20000;
      case Lang::Mipsi: return 3000;
      case Lang::Java: return 5000;
      case Lang::Perl: return 2000;
      case Lang::Tcl: return 400;
      default: return 1000;
    }
}

namespace {

std::string
minicMicro(const std::string &op, int n)
{
    std::string N = std::to_string(n);
    if (op == "a=b+c")
        return "int a; int b = 37; int c = 21;\n"
               "int main() {\n"
               "    int i;\n"
               "    for (i = 0; i < " + N + "; i += 1) { a = b + c; }\n"
               "    return a & 1;\n"
               "}\n";
    if (op == "if")
        return "int a; int b = 37; int c = 21;\n"
               "int main() {\n"
               "    int i;\n"
               "    for (i = 0; i < " + N + "; i += 1) {\n"
               "        if (b < c) a = b; else a = c;\n"
               "    }\n"
               "    return a & 1;\n"
               "}\n";
    if (op == "null-proc")
        return "void f() {}\n"
               "int main() {\n"
               "    int i;\n"
               "    for (i = 0; i < " + N + "; i += 1) { f(); }\n"
               "    return 0;\n"
               "}\n";
    if (op == "string-concat")
        return "char sa[32] = \"interpreter \";\n"
               "char sb[32] = \"performance\";\n"
               "char buf[64];\n"
               "int main() {\n"
               "    int i;\n"
               "    for (i = 0; i < " + N + "; i += 1) {\n"
               "        int j = 0;\n"
               "        int k = 0;\n"
               "        while (sa[j] != 0) { buf[j] = sa[j]; j += 1; }\n"
               "        while (sb[k] != 0) { buf[j + k] = sb[k]; k += 1; }\n"
               "        buf[j + k] = 0;\n"
               "    }\n"
               "    return buf[0] & 1;\n"
               "}\n";
    if (op == "string-split")
        return "char str[40] = \"structure and performance of\";\n"
               "char out[80];\n"
               "int words;\n"
               "int main() {\n"
               "    int i;\n"
               "    for (i = 0; i < " + N + "; i += 1) {\n"
               "        int w = 0;\n"
               "        int p = 0;\n"
               "        int q = 0;\n"
               "        while (str[p] != 0) {\n"
               "            if (str[p] == ' ') {\n"
               "                out[w * 16 + q] = 0;\n"
               "                w += 1;\n"
               "                q = 0;\n"
               "            } else {\n"
               "                out[w * 16 + q] = str[p];\n"
               "                q += 1;\n"
               "            }\n"
               "            p += 1;\n"
               "        }\n"
               "        out[w * 16 + q] = 0;\n"
               "        words = w + 1;\n"
               "    }\n"
               "    return words;\n"
               "}\n";
    if (op == "read")
        return "char buf[4096];\n"
               "int main() {\n"
               "    int i;\n"
               "    int n = 0;\n"
               "    for (i = 0; i < " + N + "; i += 1) {\n"
               "        int fd = open(\"read4k.in\", 0);\n"
               "        n = read(fd, buf, 4096);\n"
               "        close(fd);\n"
               "    }\n"
               "    return n & 1;\n"
               "}\n";
    fatal("unknown micro op %s", op.c_str());
}

std::string
perlMicro(const std::string &op, int n)
{
    std::string N = std::to_string(n);
    if (op == "a=b+c")
        return "$b = 37; $c = 21;\n"
               "for ($i = 0; $i < " + N + "; $i += 1) { $a = $b + $c; }\n"
               "print \"\";\n";
    if (op == "if")
        return "$b = 37; $c = 21;\n"
               "for ($i = 0; $i < " + N + "; $i += 1) {\n"
               "    if ($b < $c) { $a = $b; } else { $a = $c; }\n"
               "}\nprint \"\";\n";
    if (op == "null-proc")
        return "sub f { return; }\n"
               "for ($i = 0; $i < " + N + "; $i += 1) { &f(); }\n"
               "print \"\";\n";
    if (op == "string-concat")
        return "$sa = \"interpreter \"; $sb = \"performance\";\n"
               "for ($i = 0; $i < " + N + "; $i += 1) { $s = $sa . $sb; }\n"
               "print \"\";\n";
    if (op == "string-split")
        return "$str = \"structure and performance of\";\n"
               "for ($i = 0; $i < " + N + "; $i += 1) {\n"
               "    @parts = split(/ /, $str);\n"
               "}\nprint \"\";\n";
    if (op == "read")
        return "for ($i = 0; $i < " + N + "; $i += 1) {\n"
               "    open(F, \"read4k.in\");\n"
               "    $n = sysread(F, $buf, 4096);\n"
               "    close(F);\n"
               "}\nprint \"\";\n";
    fatal("unknown micro op %s", op.c_str());
}

std::string
tclMicro(const std::string &op, int n)
{
    std::string N = std::to_string(n);
    if (op == "a=b+c")
        return "set b 37\nset c 21\n"
               "for {set i 0} {$i < " + N + "} {incr i} {\n"
               "    set a [expr {$b + $c}]\n"
               "}\n";
    if (op == "if")
        return "set b 37\nset c 21\n"
               "for {set i 0} {$i < " + N + "} {incr i} {\n"
               "    if {$b < $c} { set a $b } else { set a $c }\n"
               "}\n";
    if (op == "null-proc")
        return "proc f {} {}\n"
               "for {set i 0} {$i < " + N + "} {incr i} { f }\n";
    if (op == "string-concat")
        return "set sa \"interpreter \"\nset sb \"performance\"\n"
               "for {set i 0} {$i < " + N + "} {incr i} {\n"
               "    set s \"$sa$sb\"\n"
               "}\n";
    if (op == "string-split")
        return "set str \"structure and performance of\"\n"
               "for {set i 0} {$i < " + N + "} {incr i} {\n"
               "    set parts [split $str \" \"]\n"
               "}\n";
    if (op == "read")
        return "for {set i 0} {$i < " + N + "} {incr i} {\n"
               "    set f [open read4k.in r]\n"
               "    set data [read $f 4096]\n"
               "    close $f\n"
               "}\n";
    fatal("unknown micro op %s", op.c_str());
}

} // namespace

namespace {

/**
 * Hand-scheduled MIPS kernels for the C/MIPSI microbenchmarks,
 * equivalent to what an optimizing C compiler emits: base addresses
 * hoisted out of the loop, values kept in registers, tight loop
 * control. These are the Table 1 baselines.
 */
std::shared_ptr<mips::Image>
microAsmKernel(const std::string &op, int n)
{
    using namespace mips;
    AsmBuilder b;

    auto emit_exit = [&b]() {
        b.li(V0, SYS_EXIT);
        b.syscall();
    };

    if (op == "a=b+c") {
        uint32_t a = b.dataWord(0);
        uint32_t bv = b.dataWord(37);
        uint32_t cv = b.dataWord(21);
        b.la(S0, a);
        b.la(S1, bv);
        b.la(S2, cv);
        b.li(T0, 0);
        b.li(T7, n);
        auto loop = b.newLabel();
        b.bind(loop);
        b.loadStore(Op::Lw, T1, 0, S1);
        b.loadStore(Op::Lw, T2, 0, S2);
        b.rtype(Op::Addu, T3, T1, T2);
        b.loadStore(Op::Sw, T3, 0, S0);
        b.itype(Op::Addiu, T0, T0, 1);
        b.branch(Op::Bne, T0, T7, loop);
        emit_exit();
    } else if (op == "if") {
        uint32_t a = b.dataWord(0);
        uint32_t bv = b.dataWord(37);
        uint32_t cv = b.dataWord(21);
        b.la(S0, a);
        b.la(S1, bv);
        b.la(S2, cv);
        b.li(T0, 0);
        b.li(T7, n);
        auto loop = b.newLabel();
        auto take_c = b.newLabel();
        auto done = b.newLabel();
        b.bind(loop);
        b.loadStore(Op::Lw, T1, 0, S1);
        b.loadStore(Op::Lw, T2, 0, S2);
        b.rtype(Op::Slt, T3, T1, T2);
        b.branch(Op::Beq, T3, ZERO, take_c);
        b.loadStore(Op::Sw, T1, 0, S0);
        b.j(done);
        b.bind(take_c);
        b.loadStore(Op::Sw, T2, 0, S0);
        b.bind(done);
        b.itype(Op::Addiu, T0, T0, 1);
        b.branch(Op::Bne, T0, T7, loop);
        emit_exit();
    } else if (op == "null-proc") {
        b.li(T0, 0);
        b.li(T7, n);
        auto f = b.newLabel();
        auto loop = b.newLabel();
        b.bind(loop);
        b.jal(f);
        b.itype(Op::Addiu, T0, T0, 1);
        b.branch(Op::Bne, T0, T7, loop);
        emit_exit();
        b.bind(f);
        b.jr(RA);
    } else if (op == "string-concat") {
        uint32_t sa = b.dataAsciiz("interpreter ");
        uint32_t sb = b.dataAsciiz("performance");
        uint32_t buf = b.dataSpace(64);
        b.li(T0, 0);
        b.li(T7, n);
        auto loop = b.newLabel();
        b.bind(loop);
        b.la(T1, sa);
        b.la(T3, buf);
        auto copy1 = b.newLabel();
        auto next1 = b.newLabel();
        b.bind(copy1);
        b.loadStore(Op::Lbu, T2, 0, T1);
        b.branch(Op::Beq, T2, ZERO, next1);
        b.loadStore(Op::Sb, T2, 0, T3);
        b.itype(Op::Addiu, T1, T1, 1);
        b.itype(Op::Addiu, T3, T3, 1);
        b.j(copy1);
        b.bind(next1);
        b.la(T1, sb);
        auto copy2 = b.newLabel();
        auto next2 = b.newLabel();
        b.bind(copy2);
        b.loadStore(Op::Lbu, T2, 0, T1);
        b.branch(Op::Beq, T2, ZERO, next2);
        b.loadStore(Op::Sb, T2, 0, T3);
        b.itype(Op::Addiu, T1, T1, 1);
        b.itype(Op::Addiu, T3, T3, 1);
        b.j(copy2);
        b.bind(next2);
        b.loadStore(Op::Sb, ZERO, 0, T3);
        b.itype(Op::Addiu, T0, T0, 1);
        b.branch(Op::Bne, T0, T7, loop);
        emit_exit();
    } else if (op == "string-split") {
        uint32_t str = b.dataAsciiz("structure and performance of");
        uint32_t out = b.dataSpace(80);
        b.li(T0, 0);
        b.li(T7, n);
        b.li(T6, ' ');
        auto loop = b.newLabel();
        b.bind(loop);
        b.la(T1, str);   // source cursor
        b.la(T3, out);   // destination cursor
        auto scan = b.newLabel();
        auto sep = b.newLabel();
        auto step = b.newLabel();
        auto done = b.newLabel();
        b.bind(scan);
        b.loadStore(Op::Lbu, T2, 0, T1);
        b.branch(Op::Beq, T2, ZERO, done);
        b.branch(Op::Beq, T2, T6, sep);
        b.loadStore(Op::Sb, T2, 0, T3);
        b.itype(Op::Addiu, T3, T3, 1);
        b.j(step);
        b.bind(sep);
        b.loadStore(Op::Sb, ZERO, 0, T3); // terminate the word
        b.itype(Op::Addiu, T3, T3, 1);
        b.bind(step);
        b.itype(Op::Addiu, T1, T1, 1);
        b.j(scan);
        b.bind(done);
        b.loadStore(Op::Sb, ZERO, 0, T3);
        b.itype(Op::Addiu, T0, T0, 1);
        b.branch(Op::Bne, T0, T7, loop);
        emit_exit();
    } else if (op == "read") {
        uint32_t path = b.dataAsciiz("read4k.in");
        uint32_t buf = b.dataSpace(4096);
        b.li(T0, 0);
        b.li(T7, n);
        auto loop = b.newLabel();
        b.bind(loop);
        b.la(A0, path);
        b.li(A1, 0);
        b.li(V0, SYS_OPEN);
        b.syscall();
        b.move(S3, V0);
        b.move(A0, S3);
        b.la(A1, buf);
        b.li(A2, 4096);
        b.li(V0, SYS_READ);
        b.syscall();
        b.move(A0, S3);
        b.li(V0, SYS_CLOSE);
        b.syscall();
        b.itype(Op::Addiu, T0, T0, 1);
        b.branch(Op::Bne, T0, T7, loop);
        emit_exit();
    } else {
        fatal("unknown micro op %s", op.c_str());
    }
    return std::make_shared<mips::Image>(b.link());
}

} // namespace

BenchSpec
microBench(Lang lang, const std::string &op, int iterations)
{
    BenchSpec spec;
    spec.lang = lang;
    spec.name = op;
    spec.needsInputs = op == "read";
    switch (baselineOf(lang)) {
      case Lang::C:
      case Lang::Mipsi:
        spec.image = microAsmKernel(op, iterations);
        break;
      case Lang::Java:
        spec.source = minicMicro(op, iterations);
        break;
      case Lang::Perl:
        spec.source = perlMicro(op, iterations);
        break;
      case Lang::Tcl:
        spec.source = tclMicro(op, iterations);
        break;
      default:
        break;
    }
    return spec;
}

} // namespace interp::harness
