/**
 * @file
 * Fixed-size work-queue thread pool for the benchmark harness.
 *
 * Every benchmark run of the paper's evaluation is independent — its
 * own trace::Profile, sim::Machine, vfs::FileSystem and sinks — so the
 * {MIPSI, Java, Perl, Tcl} x {micro, macro} x {cache configs} cross
 * product parallelizes trivially once the shared-state audit holds
 * (thread-safe logging, deterministic address mapping, per-run VFS).
 * This pool is that execution vehicle: submit() enqueues a job, the
 * workers drain the queue, wait() blocks until everything submitted so
 * far has finished. Jobs must not throw; the higher-level helpers in
 * parallel.hh convert exceptions into failed Measurements before the
 * job reaches the pool.
 */

#ifndef INTERP_HARNESS_POOL_HH
#define INTERP_HARNESS_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace interp::harness {

/** Fixed set of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** Start @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. The job must not throw. */
    void submit(std::function<void()> job);

    /** Block until every job submitted so far has completed. */
    void wait();

    unsigned threadCount() const { return (unsigned)workers.size(); }

    /**
     * Jobs sitting in the queue, not yet picked up by a worker.
     * A point-in-time gauge for admission control (interpd sheds on
     * it) and stats; with concurrent submitters the value is stale the
     * moment it returns.
     */
    size_t queuedCount() const;

    /** Workers not currently executing a job (same staleness caveat). */
    unsigned idleWorkers() const;

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    mutable std::mutex mu;
    std::condition_variable workCv; ///< workers: queue non-empty or stop
    std::condition_variable idleCv; ///< wait(): queue empty and none running
    size_t running = 0;             ///< jobs currently executing
    bool stopping = false;
};

} // namespace interp::harness

#endif // INTERP_HARNESS_POOL_HH
