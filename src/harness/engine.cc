#include "harness/engine.hh"

#include "harness/workloads.hh"
#include "jit/artifact.hh"
#include "jvm/vm.hh"
#include "minic/compile.hh"
#include "mipsi/direct.hh"
#include "mipsi/jit.hh"
#include "mipsi/mipsi.hh"
#include "mipsi/threaded.hh"
#include "perlish/interp.hh"
#include "support/logging.hh"
#include "tclish/interp.hh"

namespace interp::harness {

namespace {

mips::Image
specImage(const BenchSpec &spec)
{
    return spec.image ? *spec.image
                      : minic::compileMips(spec.source, spec.name);
}

/** Lang::C — the hand-scheduled native baseline. */
class DirectEngine final : public Engine
{
  public:
    DirectEngine(trace::Execution &exec, vfs::FileSystem &fs)
        : exec(exec), fs(fs)
    {
    }

    EngineResult execute(const BenchSpec &spec) override
    {
        EngineResult res;
        auto image = specImage(spec);
        res.programBytes = image.sizeBytes();
        cpu = std::make_unique<mipsi::DirectCpu>(exec, fs);
        cpu->load(image);
        auto r = cpu->run(spec.maxCommands);
        res.finished = r.exited;
        res.commands = r.instructions;
        return res;
    }

    trace::CommandSet &commandSet() override
    {
        return cpu->commandSet();
    }

  private:
    trace::Execution &exec;
    vfs::FileSystem &fs;
    std::unique_ptr<mipsi::DirectCpu> cpu;
};

/** Lang::Mipsi / MipsiThreaded — switch and threaded MIPS cores. */
class MipsiEngine final : public Engine
{
  public:
    MipsiEngine(trace::Execution &exec, vfs::FileSystem &fs,
                bool threaded)
        : exec(exec), fs(fs), threaded(threaded)
    {
    }

    EngineResult execute(const BenchSpec &spec) override
    {
        EngineResult res;
        auto image = specImage(spec);
        res.programBytes = image.sizeBytes();
        // run() is non-virtual by design (mipsi.hh): dispatch on the
        // concrete type, keep the base pointer only for commandSet().
        mipsi::Mipsi::RunResult r;
        if (threaded) {
            threadedVm = std::make_unique<mipsi::ThreadedMipsi>(exec, fs);
            threadedVm->load(image);
            r = threadedVm->run(spec.maxCommands);
            vm = threadedVm.get();
        } else {
            switchVm = std::make_unique<mipsi::Mipsi>(exec, fs);
            switchVm->load(image);
            r = switchVm->run(spec.maxCommands);
            vm = switchVm.get();
        }
        res.finished = r.exited;
        res.commands = r.commands;
        return res;
    }

    trace::CommandSet &commandSet() override
    {
        return vm->commandSet();
    }

  private:
    trace::Execution &exec;
    vfs::FileSystem &fs;
    bool threaded;
    // The cores have no vtable (mipsi.hh explains why), so each
    // concrete type must be owned — and destroyed — as itself; the
    // base pointer is a non-owning view for commandSet().
    std::unique_ptr<mipsi::Mipsi> switchVm;
    std::unique_ptr<mipsi::ThreadedMipsi> threadedVm;
    mipsi::Mipsi *vm = nullptr;
};

/**
 * Lang::MipsiJit — tier 3. Executes through a published JitArtifact
 * when the spec carries one (the catalog's single-builder aside
 * build), compiling and publishing a fresh one otherwise. A
 * *poisoned* published artifact never reaches enter(): the run drops
 * to the previous tier's VM outright, the same contained-fallback
 * shape as the jvm caches' debugPoisonIc.
 */
class MipsiJitEngine final : public Engine
{
  public:
    MipsiJitEngine(trace::Execution &exec, vfs::FileSystem &fs)
        : exec(exec), fs(fs)
    {
    }

    EngineResult execute(const BenchSpec &spec) override
    {
        EngineResult res;
        auto image = specImage(spec);
        res.programBytes = image.sizeBytes();
        if (spec.jitArtifact && spec.jitArtifact->poisoned()) {
            prevVm = std::make_unique<mipsi::ThreadedMipsi>(exec, fs);
            prevVm->load(image);
            auto r = prevVm->run(spec.maxCommands);
            res.finished = r.exited;
            res.commands = r.commands;
            vm = prevVm.get();
            return res;
        }
        jitVm = std::make_unique<mipsi::JitMipsi>(exec, fs);
        jitVm->load(image);
        if (spec.jitArtifact)
            jitVm->useArtifact(spec.jitArtifact);
        if (spec.publishJitArtifact)
            jitVm->setPublishHook(spec.publishJitArtifact);
        auto r = jitVm->run(spec.maxCommands);
        res.finished = r.exited;
        res.commands = r.commands;
        vm = jitVm.get();
        return res;
    }

    trace::CommandSet &commandSet() override
    {
        return vm->commandSet();
    }

  private:
    trace::Execution &exec;
    vfs::FileSystem &fs;
    // No vtable on the cores: own each concrete type as itself, keep
    // only a non-owning base view for commandSet().
    std::unique_ptr<mipsi::ThreadedMipsi> prevVm;
    std::unique_ptr<mipsi::JitMipsi> jitVm;
    mipsi::Mipsi *vm = nullptr;
};

/** Lang::Java / JavaQuick / JavaTier2 — the jvm's three tiers. */
class JvmEngine final : public Engine
{
  public:
    JvmEngine(trace::Execution &exec, vfs::FileSystem &fs, int tier)
        : exec(exec), fs(fs), tier(tier)
    {
    }

    EngineResult execute(const BenchSpec &spec) override
    {
        switch (tier) {
          case 0: return executeBaseline(spec);
          case 1: return executeQuick(spec);
          default: return executeTier2(spec);
        }
    }

    trace::CommandSet &commandSet() override
    {
        return vm->commandSet();
    }

  private:
    EngineResult executeBaseline(const BenchSpec &spec)
    {
        EngineResult res;
        vm = std::make_unique<jvm::Vm>(exec, fs);
        if (spec.jvmPairSink)
            vm->setPairSink(spec.jvmPairSink);
        if (spec.module) {
            res.programBytes = spec.module->sizeBytes();
            vm->loadShared(spec.module);
        } else {
            auto module = minic::compileBytecode(spec.source, spec.name);
            res.programBytes = module.sizeBytes();
            vm->load(module);
        }
        auto r = vm->run(spec.maxCommands);
        res.finished = r.exited;
        res.commands = r.commands;
        return res;
    }

    EngineResult executeQuick(const BenchSpec &spec)
    {
        EngineResult res;
        vm = std::make_unique<jvm::Vm>(exec, fs, /*quick=*/true);
        if (spec.module) {
            // A catalog-shared module must never be quickened in
            // place; execute through a pre-quickened artifact instead
            // (build one now if the catalog has none published yet).
            res.programBytes = spec.module->sizeBytes();
            auto artifact = spec.jvmArtifact;
            if (!artifact) {
                jvm::TierOptions opts;
                opts.fuse = false;
                opts.inlineCache = false;
                jvm::PairProfile none;
                artifact = jvm::buildTierArtifact(&exec, *spec.module,
                                                  none, opts);
                if (spec.publishJvmArtifact)
                    spec.publishJvmArtifact(artifact);
            }
            vm->useArtifact(std::move(artifact));
        } else {
            auto module = minic::compileBytecode(spec.source, spec.name);
            res.programBytes = module.sizeBytes();
            vm->load(module);
        }
        auto r = vm->run(spec.maxCommands);
        res.finished = r.exited;
        res.commands = r.commands;
        return res;
    }

    EngineResult executeTier2(const BenchSpec &spec)
    {
        EngineResult res;
        std::shared_ptr<const jvm::Module> module = spec.module;
        if (!module)
            module = std::make_shared<const jvm::Module>(
                minic::compileBytecode(spec.source, spec.name));
        res.programBytes = module->sizeBytes();
        auto artifact = spec.jvmArtifact;
        if (!artifact) {
            jvm::PairProfile local;
            const jvm::PairProfile *pairs = spec.jvmPairs.get();
            if (!pairs) {
                // Standalone mode: discover hot pairs with an
                // unmeasured profiling pre-run (interpd feeds the
                // profile from earlier baseline runs instead).
                trace::Execution pexec;
                vfs::FileSystem pfs;
                if (spec.needsInputs)
                    installAllInputs(pfs);
                jvm::Vm pvm(pexec, pfs);
                pvm.setPairSink(&local);
                pvm.loadShared(module);
                pvm.run(spec.maxCommands);
                pairs = &local;
            }
            artifact = jvm::buildTierArtifact(&exec, *module, *pairs);
            if (spec.publishJvmArtifact)
                spec.publishJvmArtifact(artifact);
        }
        vm = std::make_unique<jvm::Vm>(exec, fs, /*quick=*/true);
        vm->useArtifact(std::move(artifact));
        auto r = vm->run(spec.maxCommands);
        res.finished = r.exited;
        res.commands = r.commands;
        return res;
    }

    trace::Execution &exec;
    vfs::FileSystem &fs;
    int tier;
    std::unique_ptr<jvm::Vm> vm;
};

/** Lang::Perl / PerlIC. */
class PerlEngine final : public Engine
{
  public:
    PerlEngine(trace::Execution &exec, vfs::FileSystem &fs, bool ic)
        : exec(exec), fs(fs), ic(ic)
    {
    }

    EngineResult execute(const BenchSpec &spec) override
    {
        EngineResult res;
        res.programBytes = spec.source.size();
        vm = std::make_unique<perlish::Interp>(exec, fs,
                                               /*symbolIc=*/ic);
        vm->load(spec.source, spec.name);
        auto r = vm->run(spec.maxCommands);
        res.finished = r.exited;
        res.commands = r.commands;
        return res;
    }

    trace::CommandSet &commandSet() override
    {
        return vm->commandSet();
    }

  private:
    trace::Execution &exec;
    vfs::FileSystem &fs;
    bool ic;
    std::unique_ptr<perlish::Interp> vm;
};

/** Lang::Tcl / TclBytecode / TclTier2 / TclJit. */
class TclEngine final : public Engine
{
  public:
    TclEngine(trace::Execution &exec, vfs::FileSystem &fs,
              bool bytecode, bool tier2, bool jit)
        : exec(exec), fs(fs), bytecode(bytecode), tier2(tier2), jit(jit)
    {
    }

    EngineResult execute(const BenchSpec &spec) override
    {
        EngineResult res;
        res.programBytes = spec.source.size();
        vm = std::make_unique<tclish::TclInterp>(exec, fs, bytecode,
                                                 tier2, jit);
        auto r = vm->run(spec.source, spec.maxCommands);
        res.finished = r.exited;
        res.commands = r.commands;
        return res;
    }

    trace::CommandSet &commandSet() override
    {
        return vm->commandSet();
    }

  private:
    trace::Execution &exec;
    vfs::FileSystem &fs;
    bool bytecode, tier2, jit;
    std::unique_ptr<tclish::TclInterp> vm;
};

} // namespace

std::unique_ptr<Engine>
makeEngine(Lang lang, trace::Execution &exec, vfs::FileSystem &fs)
{
    switch (lang) {
      case Lang::C:
        return std::make_unique<DirectEngine>(exec, fs);
      case Lang::Mipsi:
        return std::make_unique<MipsiEngine>(exec, fs, false);
      case Lang::MipsiThreaded:
        return std::make_unique<MipsiEngine>(exec, fs, true);
      case Lang::MipsiJit:
        return std::make_unique<MipsiJitEngine>(exec, fs);
      case Lang::Java:
        return std::make_unique<JvmEngine>(exec, fs, 0);
      case Lang::JavaQuick:
        return std::make_unique<JvmEngine>(exec, fs, 1);
      case Lang::JavaTier2:
        return std::make_unique<JvmEngine>(exec, fs, 2);
      case Lang::Perl:
        return std::make_unique<PerlEngine>(exec, fs, false);
      case Lang::PerlIC:
        return std::make_unique<PerlEngine>(exec, fs, true);
      case Lang::Tcl:
        return std::make_unique<TclEngine>(exec, fs, false, false,
                                           false);
      case Lang::TclBytecode:
        return std::make_unique<TclEngine>(exec, fs, true, false,
                                           false);
      case Lang::TclTier2:
        return std::make_unique<TclEngine>(exec, fs, true, true, false);
      case Lang::TclJit:
        return std::make_unique<TclEngine>(exec, fs, true, true, true);
    }
    panic("makeEngine: unhandled lang %d", (int)lang);
}

} // namespace interp::harness
