/**
 * @file
 * The execution-engine abstraction: one interface that every mode —
 * baseline, §5 remedy, tier-2, and the tier-3 jit — implements.
 *
 * An Engine owns a VM and knows how to prepare (compile/load) and
 * execute one BenchSpec against it. The harness's run(), the serve
 * path and the benches all dispatch through makeEngine() instead of
 * each keeping its own per-Lang switch, so adding an execution tier
 * is a factory case, not a scavenger hunt.
 *
 * Engines construct their VM lazily inside execute(): routine
 * registration happens in VM constructors, and deferring it keeps
 * the registration order (and hence every simulated code address)
 * identical to the pre-refactor harness, which constructed VMs on
 * the stack at the same point. It also lets the jit engine pick its
 * VM from the spec — a poisoned published JitArtifact drops the run
 * to the previous tier's VM outright (mirroring debugPoisonIc's
 * contained-fallback contract), with exactly the registration a
 * plain tier-2 run would have performed.
 */

#ifndef INTERP_HARNESS_ENGINE_HH
#define INTERP_HARNESS_ENGINE_HH

#include <memory>

#include "harness/runner.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"

namespace interp::harness {

/** What an engine reports back after executing a spec. */
struct EngineResult
{
    bool finished = false;      ///< the program ran to completion
    uint64_t commands = 0;      ///< virtual commands retired
    uint64_t programBytes = 0;  ///< size of the prepared program
};

/** One execution mode: prepare and run BenchSpecs. */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Prepare (compile/load) and execute @p spec to completion or
     *  budget; emission goes to the Execution the engine was made
     *  with. */
    virtual EngineResult execute(const BenchSpec &spec) = 0;

    /** The executed program's command set (valid after execute()). */
    virtual trace::CommandSet &commandSet() = 0;
};

/** Factory: the engine implementing @p lang's execution mode. */
std::unique_ptr<Engine> makeEngine(Lang lang, trace::Execution &exec,
                                   vfs::FileSystem &fs);

} // namespace interp::harness

#endif // INTERP_HARNESS_ENGINE_HH
