/**
 * @file
 * Benchmark registry and runner: the paper's methodology as a
 * library. A BenchSpec names a program, its language and workload;
 * run() executes it under full instrumentation (software Profile +
 * Table 3 machine model, plus any extra sinks) and returns the
 * Measurement every table and figure is derived from.
 */

#ifndef INTERP_HARNESS_RUNNER_HH
#define INTERP_HARNESS_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mips/image.hh"
#include "sim/machine.hh"
#include "trace/profile.hh"

namespace interp::harness {

/**
 * The execution modes of the study: the five faithful baselines, plus
 * the three §5 fetch/decode remedies as opt-in variants. Each remedy
 * runs the same programs as its baseline with identical per-command
 * execute attribution; only fetch/decode (and a one-shot Precompile
 * charge) differ.
 */
enum class Lang : uint8_t
{
    C,     ///< compiled MiniC, direct execution (the baseline)
    Mipsi, ///< MiniC compiled to MIPS, interpreted by MIPSI
    Java,  ///< MiniC compiled to bytecode, run on the JVM-like VM
    Perl,  ///< perlish source
    Tcl,   ///< tclish source
    MipsiThreaded, ///< MIPSI with predecoded direct threading (§5)
    JavaQuick,     ///< JVM with bytecode quickening (§5)
    TclBytecode,   ///< tclish with Tcl 8.0-style compiled scripts (§5)
};

const char *langName(Lang lang);

/** The baseline a remedy mode is measured against (identity for the
 *  five baseline modes). */
Lang baselineOf(Lang lang);

/** True for the three §5 remedy modes. */
bool isRemedy(Lang lang);

/** One benchmark to run. */
struct BenchSpec
{
    Lang lang;
    std::string name;     ///< benchmark name (des, compress, ...)
    std::string source;   ///< full program text
    /**
     * Pre-linked guest image (C/MIPSI only). When set, `source` is
     * ignored. Used by the microbenchmarks, whose C baselines are
     * hand-scheduled assembly — the paper's baseline was an optimizing
     * C compiler, and MiniC's naive codegen would flatter the
     * interpreters by a constant factor otherwise.
     */
    std::shared_ptr<mips::Image> image;
    bool needsInputs = false; ///< install the standard input files
    uint64_t maxCommands = 400'000'000;
};

/** Everything measured from one run. */
struct Measurement
{
    Lang lang;
    std::string name;
    size_t programBytes = 0;
    uint64_t commands = 0;
    uint64_t cycles = 0;
    trace::Profile profile;
    sim::SlotBreakdown breakdown;
    double imissPer100 = 0;
    std::string stdoutText;
    bool finished = false;
    /**
     * The run aborted before producing results (a fatal program error
     * or an exception inside a suite job); `error` says why. Only the
     * parallel/suite helpers set this — a direct run() call propagates
     * the error instead.
     */
    bool failed = false;
    std::string error;
    /** Command names resolved from the interpreter's command set. */
    std::vector<std::string> commandNames;
};

/**
 * Run one benchmark under a Profile and (optionally) the Table 3
 * machine model.
 * @param extra_sinks  additional consumers of the instruction stream
 * @param machine_cfg  machine configuration (null = Table 3 default)
 * @param with_machine simulate timing (disable for counting-only runs)
 */
Measurement run(const BenchSpec &spec,
                const std::vector<trace::Sink *> &extra_sinks = {},
                const sim::MachineConfig *machine_cfg = nullptr,
                bool with_machine = true);

// --- suites ------------------------------------------------------------

/** The Table 2 macro suite (des in all languages + per-language apps). */
std::vector<BenchSpec> macroSuite();

/** One microbenchmark from Table 1, for one language. */
BenchSpec microBench(Lang lang, const std::string &op, int iterations);

/** The Table 1 microbenchmark names. */
std::vector<std::string> microOps();

/** Default per-language iteration counts for the micro suite. */
int microIterations(Lang lang);

} // namespace interp::harness

#endif // INTERP_HARNESS_RUNNER_HH
