/**
 * @file
 * Benchmark registry and runner: the paper's methodology as a
 * library. A BenchSpec names a program, its language and workload;
 * run() executes it under full instrumentation (software Profile +
 * Table 3 machine model, plus any extra sinks) and returns the
 * Measurement every table and figure is derived from.
 */

#ifndef INTERP_HARNESS_RUNNER_HH
#define INTERP_HARNESS_RUNNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mips/image.hh"
#include "sim/machine.hh"
#include "trace/profile.hh"

namespace interp::jvm {
struct Module;
struct TierArtifact;
struct PairProfile;
} // namespace interp::jvm

namespace interp::jit {
class JitArtifact;
} // namespace interp::jit

namespace interp::harness {

/**
 * The execution modes of the study: the five faithful baselines, the
 * three §5 fetch/decode remedies, and the tier-2 modes (profile-
 * discovered superinstructions + monomorphic inline caches attacking
 * the §3.3 memory-model cost). Each remedy runs the same programs as
 * its baseline with identical per-command execute attribution; tier-2
 * modes additionally shrink the memory-model *subset* of execute
 * (execute minus memModel stays byte-identical), with one-time
 * tiering cost charged to Precompile. The jit modes are the tier-3
 * endpoint: per-opcode stencils concatenated into an executable
 * buffer (src/jit/), with the emitted region registered as synthetic
 * code so §4 simulation still attributes its i-cache behaviour.
 */
enum class Lang : uint8_t
{
    C,     ///< compiled MiniC, direct execution (the baseline)
    Mipsi, ///< MiniC compiled to MIPS, interpreted by MIPSI
    Java,  ///< MiniC compiled to bytecode, run on the JVM-like VM
    Perl,  ///< perlish source
    Tcl,   ///< tclish source
    MipsiThreaded, ///< MIPSI with predecoded direct threading (§5)
    JavaQuick,     ///< JVM with bytecode quickening (§5)
    TclBytecode,   ///< tclish with Tcl 8.0-style compiled scripts (§5)
    JavaTier2,     ///< quickened + superinstructions + field ICs
    TclTier2,      ///< bytecode + command-pair fusion + symbol ICs
    PerlIC,        ///< baseline op tree + hash-lookup inline caches
    MipsiJit,      ///< threaded + per-opcode stencil region (tier 3)
    TclJit,        ///< tier-2 + per-command stencil region (tier 3)
};

// The Lang helpers are inline so header-only consumers (the workload
// registry is below interp_harness in the link order) can use them
// without pulling in the runner's symbols.

inline const char *
langName(Lang lang)
{
    switch (lang) {
      case Lang::C: return "C";
      case Lang::Mipsi: return "MIPSI";
      case Lang::Java: return "Java";
      case Lang::Perl: return "Perl";
      case Lang::Tcl: return "Tcl";
      case Lang::MipsiThreaded: return "MIPSI-threaded";
      case Lang::JavaQuick: return "Java-quick";
      case Lang::TclBytecode: return "Tcl-bytecode";
      case Lang::JavaTier2: return "Java-tier2";
      case Lang::TclTier2: return "Tcl-tier2";
      case Lang::PerlIC: return "Perl-ic";
      case Lang::MipsiJit: return "MIPSI-jit";
      case Lang::TclJit: return "Tcl-jit";
      default: return "?";
    }
}

/** The baseline a remedy mode is measured against (identity for the
 *  five baseline modes). */
inline Lang
baselineOf(Lang lang)
{
    switch (lang) {
      case Lang::MipsiThreaded: return Lang::Mipsi;
      case Lang::JavaQuick: return Lang::Java;
      case Lang::TclBytecode: return Lang::Tcl;
      case Lang::JavaTier2: return Lang::Java;
      case Lang::TclTier2: return Lang::Tcl;
      case Lang::PerlIC: return Lang::Perl;
      case Lang::MipsiJit: return Lang::Mipsi;
      case Lang::TclJit: return Lang::Tcl;
      default: return lang;
    }
}

/** True for every non-baseline mode (§5 remedies and tier-2). */
inline bool
isRemedy(Lang lang)
{
    return baselineOf(lang) != lang;
}

/** True for the tier-2 modes (superinstructions / inline caches). */
inline bool
isTier2(Lang lang)
{
    return lang == Lang::JavaTier2 || lang == Lang::TclTier2 ||
           lang == Lang::PerlIC;
}

/** True for the jit (tier-3 stencil) modes. */
inline bool
isJit(Lang lang)
{
    return lang == Lang::MipsiJit || lang == Lang::TclJit;
}

/**
 * The runtime tier ladder for a baseline mode: the mode a warm
 * program is promoted to at the first (remedy), second (tier-2) and
 * third (jit) hotness thresholds. Identity for modes with no higher
 * tier.
 */
inline Lang
tierRemedyOf(Lang base)
{
    switch (base) {
      case Lang::Mipsi: return Lang::MipsiThreaded;
      case Lang::Java: return Lang::JavaQuick;
      case Lang::Tcl: return Lang::TclBytecode;
      case Lang::Perl: return Lang::PerlIC;
      default: return base;
    }
}

inline Lang
tierTier2Of(Lang base)
{
    switch (base) {
      case Lang::Mipsi: return Lang::MipsiThreaded; // no higher tier
      case Lang::Java: return Lang::JavaTier2;
      case Lang::Tcl: return Lang::TclTier2;
      case Lang::Perl: return Lang::PerlIC; // IC is Perl's top tier
      default: return base;
    }
}

inline Lang
tierJitOf(Lang base)
{
    switch (base) {
      // Java and Perl have no template backend: their ladders top out
      // at tier 2 and the tier manager folds a tier-3 target down.
      case Lang::Mipsi: return Lang::MipsiJit;
      case Lang::Java: return Lang::JavaTier2;
      case Lang::Tcl: return Lang::TclJit;
      case Lang::Perl: return Lang::PerlIC;
      default: return base;
    }
}

/** One benchmark to run. */
struct BenchSpec
{
    Lang lang;
    std::string name;     ///< benchmark name (des, compress, ...)
    std::string source;   ///< full program text
    /**
     * Pre-linked guest image (C/MIPSI only). When set, `source` is
     * ignored. Used by the microbenchmarks, whose C baselines are
     * hand-scheduled assembly — the paper's baseline was an optimizing
     * C compiler, and MiniC's naive codegen would flatter the
     * interpreters by a constant factor otherwise.
     */
    std::shared_ptr<mips::Image> image;
    bool needsInputs = false; ///< install the standard input files
    uint64_t maxCommands = 400'000'000;

    // --- warm-catalog / tier-up inputs (interpd) ----------------------
    /**
     * Pre-compiled jvm module shared from a warm catalog (Java modes
     * only; `source` is ignored when set). The runner never mutates
     * it: quick/tier-2 execution over a shared module requires a
     * published artifact (below) or builds one in-run.
     */
    std::shared_ptr<const jvm::Module> module;
    /** Published tier-2 artifact to execute with (JavaQuick/JavaTier2
     *  with a shared module). When absent the runner builds one
     *  in-run, charged to Precompile. */
    std::shared_ptr<const jvm::TierArtifact> jvmArtifact;
    /** Pair profile to build the artifact from (skips the standalone
     *  profiling pre-run). */
    std::shared_ptr<const jvm::PairProfile> jvmPairs;
    /** Invoked with the artifact the run built (the tier manager's
     *  atomic-publish hook). */
    std::function<void(std::shared_ptr<const jvm::TierArtifact>)>
        publishJvmArtifact;
    /** When set on a baseline Java run, dynamic adjacent-pair counts
     *  are collected into it (host-side only, zero emission). */
    jvm::PairProfile *jvmPairSink = nullptr;
    /** Published stencil program to execute with (MipsiJit with a
     *  warm catalog). When absent the runner compiles one in-run,
     *  charged to Precompile. A poisoned artifact (debugPoison, or a
     *  build whose emit buffer overflowed) is never executed: the run
     *  falls back to the previous tier, mirroring debugPoisonIc. */
    std::shared_ptr<const jit::JitArtifact> jitArtifact;
    /** Invoked with the stencil program the run compiled (the tier
     *  manager's atomic-publish hook). */
    std::function<void(std::shared_ptr<const jit::JitArtifact>)>
        publishJitArtifact;
};

/** Everything measured from one run. */
struct Measurement
{
    Lang lang;
    std::string name;
    size_t programBytes = 0;
    uint64_t commands = 0;
    uint64_t cycles = 0;
    trace::Profile profile;
    sim::SlotBreakdown breakdown;
    double imissPer100 = 0;
    std::string stdoutText;
    bool finished = false;
    /**
     * The run aborted before producing results (a fatal program error
     * or an exception inside a suite job); `error` says why. Only the
     * parallel/suite helpers set this — a direct run() call propagates
     * the error instead.
     */
    bool failed = false;
    std::string error;
    /** Command names resolved from the interpreter's command set. */
    std::vector<std::string> commandNames;
};

/**
 * Run one benchmark under a Profile and (optionally) the Table 3
 * machine model.
 * @param extra_sinks  additional consumers of the instruction stream
 * @param machine_cfg  machine configuration (null = Table 3 default)
 * @param with_machine simulate timing (disable for counting-only runs)
 */
Measurement run(const BenchSpec &spec,
                const std::vector<trace::Sink *> &extra_sinks = {},
                const sim::MachineConfig *machine_cfg = nullptr,
                bool with_machine = true);

// --- suites ------------------------------------------------------------

/** The Table 2 macro suite (des in all languages + per-language apps). */
std::vector<BenchSpec> macroSuite();

/** One microbenchmark from Table 1, for one language. */
BenchSpec microBench(Lang lang, const std::string &op, int iterations);

/** The Table 1 microbenchmark names. */
std::vector<std::string> microOps();

/** Default per-language iteration counts for the micro suite. */
int microIterations(Lang lang);

} // namespace interp::harness

#endif // INTERP_HARNESS_RUNNER_HH
