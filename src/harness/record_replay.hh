/**
 * @file
 * Record-once / replay-many support for the benchmark harness.
 *
 * The paper captured each workload's trace once and fed it to every
 * simulator configuration; these helpers give the bench drivers the
 * same workflow. `--record <dir>` makes every suite run also write a
 * binary trace (tracefile::TraceWriter) into <dir>; `--replay <dir>`
 * skips the interpreters entirely and drives the Profile / Machine /
 * extra sinks from the recorded stream, producing byte-identical
 * Measurements. Trace files are named <lang>-<bench>.itr, so a suite
 * recorded by one driver replays under any other.
 */

#ifndef INTERP_HARNESS_RECORD_REPLAY_HH
#define INTERP_HARNESS_RECORD_REPLAY_HH

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace interp::harness {

/** Trace directories for one suite invocation (empty = off). */
struct TraceIo
{
    std::string recordDir; ///< write a trace per run into this dir
    std::string replayDir; ///< replay traces from this dir
    bool active() const
    {
        return !recordDir.empty() || !replayDir.empty();
    }
};

/**
 * Strip `--record <dir>` / `--record=<dir>` / `--replay <dir>` /
 * `--replay=<dir>` from argv (argc is updated), like parseJobs().
 * Asking for both at once is a fatal() usage error.
 */
TraceIo parseTraceDirs(int &argc, char **argv);

/**
 * Canonical trace file name for a spec: lowercase language, sanitized
 * benchmark name, `.itr` — e.g. "perl-txt2html.itr".
 */
std::string traceFileName(const BenchSpec &spec);

/** traceFileName() joined onto @p dir. */
std::string traceFilePath(const std::string &dir, const BenchSpec &spec);

/**
 * Replay the trace at @p path into a fresh Profile (plus the Table 3
 * machine when @p with_machine, plus @p extra_sinks) and return the
 * Measurement the live run would have produced. The file's recorded
 * language/benchmark must match @p spec (fatal() otherwise —
 * replaying the wrong tape is a methodology error, not a warning).
 * Program stdout is not part of a trace, so stdoutText stays empty.
 */
Measurement replayTrace(const std::string &path, const BenchSpec &spec,
                        const std::vector<trace::Sink *> &extra_sinks = {},
                        const sim::MachineConfig *machine_cfg = nullptr,
                        bool with_machine = true);

/**
 * harness::run() with the record/replay policy applied: replay from
 * io.replayDir if set, otherwise run live, also recording into
 * io.recordDir if set. Drop-in replacement for run() in suite
 * lambdas.
 */
Measurement runOrReplay(const BenchSpec &spec, const TraceIo &io,
                        const std::vector<trace::Sink *> &extra_sinks = {},
                        const sim::MachineConfig *machine_cfg = nullptr,
                        bool with_machine = true);

} // namespace interp::harness

#endif // INTERP_HARNESS_RECORD_REPLAY_HH
