/**
 * @file
 * Deterministic workload inputs for the benchmark suite.
 *
 * The paper's programs consumed real files (C sources, HTML pages,
 * HTTP logs); those are substituted with synthetic generators seeded
 * from a fixed RNG so every run of every benchmark is reproducible.
 */

#ifndef INTERP_HARNESS_WORKLOADS_HH
#define INTERP_HARNESS_WORKLOADS_HH

#include <string>
#include <vector>

#include "harness/runner.hh"
#include "vfs/vfs.hh"

namespace interp::harness {

/** Read a program source from the repository's programs/ directory. */
std::string loadProgram(const std::string &relative_path);

// --- execution-mode selection ------------------------------------------

/** Which execution modes a bench driver should run. */
enum class ModeSet : uint8_t
{
    Baseline, ///< the five faithful modes only (the default)
    Remedies, ///< only the three §5 remedy modes
    All,      ///< baselines first, then the remedy modes
    Jit,      ///< only the tier-3 jit modes (mipsi-jit, tcl-jit)
};

/**
 * Parse a `--modes=baseline|remedies|all|jit` argument if present
 * (fatal on an unknown value); other arguments are left alone.
 */
ModeSet parseModes(int argc, char **argv);

/**
 * Expand @p suite for @p mode: Baseline returns it unchanged;
 * Remedies keeps only rows whose language has a §5 remedy, retargeted
 * to the remedy mode; All appends the remedy rows after the
 * baselines; Jit keeps only rows whose language has a template
 * backend, retargeted to the jit mode. Row order within a language is
 * preserved.
 *
 * Takes the suite by value so `withModes(macroSuite(), modes)` in the
 * default Baseline case is a pure move — the driver's allocation
 * sequence (which the deterministic heap, and hence simulated data
 * aliasing at `--jobs 1`, depends on) is exactly what it was without
 * the call.
 */
std::vector<BenchSpec> withModes(std::vector<BenchSpec> suite,
                                 ModeSet mode);

/** Text with word-level redundancy, good for LZW (compress.in). */
std::string compressInput(size_t approx_bytes);

/** Assignment-statement pseudo source for cc1like (cc1.in). */
std::string cc1Input(size_t statements);

/** Method/statement pseudo source for javac (javac.in). */
std::string javacInput(size_t methods);

/** Paragraphs with headings, URLs and emphasis (txt2html.in). */
std::string txt2htmlInput(size_t lines);

/** HTML with seeded nesting errors (weblint.in). */
std::string weblintInput(size_t lines);

/** Plain text with tabs and long lines (a2ps.in). */
std::string a2psInput(size_t lines);

/** HTTP request log, one connection per paragraph (requests.in). */
std::string plexusInput(size_t requests);

/** C-like source to tokenize (tcllex.in). */
std::string tcllexInput(size_t lines);

/** Tcl-like source with proc/set definitions (tcltags.in). */
std::string tcltagsInput(size_t lines);

/** A 4 KB file for the `read` microbenchmark. */
std::string readFileInput();

/** Text lines probed by the rxmatch backtracking-matcher workload. */
std::string rxmatchInput(size_t lines);

/** Install every input file into @p fs under its canonical name. */
void installAllInputs(vfs::FileSystem &fs);

} // namespace interp::harness

#endif // INTERP_HARNESS_WORKLOADS_HH
