#include "harness/workloads.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strutil.hh"
#include "workloads/registry.hh"

namespace interp::harness {

namespace {

const char *kWords[] = {
    "the", "interpreter", "fetches", "decodes", "and", "executes",
    "one", "virtual", "command", "per", "trip", "through", "its",
    "main", "loop", "performance", "depends", "on", "cache", "memory",
    "model", "native", "library", "overhead", "of", "each",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::string
randomIdent(Rng &rng)
{
    static const char *names[] = {"alpha", "beta", "gamma", "delta",
                                  "count", "total", "index", "value",
                                  "limit", "accum", "left", "right"};
    return names[rng.below(12)];
}

} // namespace

std::string
loadProgram(const std::string &relative_path)
{
    return workloads::loadProgramFile(relative_path);
}

// --- execution-mode selection ------------------------------------------

namespace {

/** The remedy variant of @p lang, or @p lang if it has none. */
Lang
remedyOf(Lang lang)
{
    switch (lang) {
      case Lang::Mipsi: return Lang::MipsiThreaded;
      case Lang::Java: return Lang::JavaQuick;
      case Lang::Tcl: return Lang::TclBytecode;
      default: return lang;
    }
}

} // namespace

ModeSet
parseModes(int argc, char **argv)
{
    const std::string prefix = "--modes=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.compare(0, prefix.size(), prefix) != 0)
            continue;
        std::string value = arg.substr(prefix.size());
        if (value == "baseline")
            return ModeSet::Baseline;
        if (value == "remedies")
            return ModeSet::Remedies;
        if (value == "all")
            return ModeSet::All;
        if (value == "jit")
            return ModeSet::Jit;
        fatal("unknown --modes value '%s' "
              "(want baseline|remedies|all|jit)",
              value.c_str());
    }
    return ModeSet::Baseline;
}

std::vector<BenchSpec>
withModes(std::vector<BenchSpec> suite, ModeSet mode)
{
    if (mode == ModeSet::Baseline)
        return suite;
    size_t base_rows = suite.size();
    std::vector<BenchSpec> out = std::move(suite);
    for (size_t i = 0; i < base_rows; ++i) {
        Lang target = mode == ModeSet::Jit ? tierJitOf(out[i].lang)
                                           : remedyOf(out[i].lang);
        if (target == out[i].lang)
            continue;
        if (mode == ModeSet::Jit && !isJit(target))
            continue; // no template backend for this language
        BenchSpec copy = out[i];
        copy.lang = target;
        out.push_back(std::move(copy));
    }
    if (mode == ModeSet::Remedies || mode == ModeSet::Jit)
        out.erase(out.begin(), out.begin() + (ptrdiff_t)base_rows);
    return out;
}

std::string
compressInput(size_t approx_bytes)
{
    Rng rng(101);
    std::string out;
    while (out.size() < approx_bytes) {
        out += kWords[rng.below(kNumWords)];
        out.push_back(rng.below(8) == 0 ? '\n' : ' ');
    }
    return out;
}

std::string
cc1Input(size_t statements)
{
    Rng rng(202);
    std::string out;
    for (size_t i = 0; i < statements; ++i) {
        out += randomIdent(rng) + " = ";
        int terms = 2 + (int)rng.below(4);
        for (int t = 0; t < terms; ++t) {
            if (t)
                out += rng.below(2) ? " + " : " * ";
            if (rng.below(3) == 0)
                out += "(" + std::to_string(rng.below(100)) + " + " +
                       randomIdent(rng) + ")";
            else if (rng.below(2))
                out += std::to_string(rng.below(1000));
            else
                out += randomIdent(rng);
        }
        out += " ;\n";
    }
    return out;
}

std::string
javacInput(size_t methods)
{
    Rng rng(303);
    std::string out;
    for (size_t m = 0; m < methods; ++m) {
        out += "method" + std::to_string(m) + " {\n";
        size_t stmts = 3 + rng.below(6);
        for (size_t i = 0; i < stmts; ++i) {
            out += "  " + randomIdent(rng) + " = " +
                   std::to_string(rng.below(500));
            int terms = (int)rng.below(3);
            for (int t = 0; t < terms; ++t)
                out += (rng.below(2) ? " + " : " * ") + randomIdent(rng);
            out += " ;\n";
        }
        out += "}\n";
    }
    return out;
}

std::string
txt2htmlInput(size_t lines)
{
    Rng rng(404);
    std::string out;
    for (size_t i = 0; i < lines; ++i) {
        if (i % 17 == 0) {
            out += "== Section " + std::to_string(i / 17) + " ==\n";
            continue;
        }
        if (i % 11 == 0) {
            out += "\n";
            continue;
        }
        if (i % 7 == 0) {
            out += "- bullet item " + std::to_string(i) + "\n";
            continue;
        }
        std::string line;
        int words = 6 + (int)rng.below(8);
        for (int w = 0; w < words; ++w) {
            if (w)
                line += " ";
            if (rng.below(20) == 0)
                line += "*" + std::string(kWords[rng.below(kNumWords)]) +
                        "*";
            else if (rng.below(25) == 0)
                line += "http://host/doc" + std::to_string(rng.below(40));
            else if (rng.below(30) == 0)
                line += "_" + std::string(kWords[rng.below(kNumWords)]) +
                        "_";
            else
                line += kWords[rng.below(kNumWords)];
        }
        out += line + "\n";
    }
    return out;
}

std::string
weblintInput(size_t lines)
{
    Rng rng(505);
    std::string out = "<html>\n<head><title>test page</title></head>\n"
                      "<body>\n";
    for (size_t i = 0; i < lines; ++i) {
        switch (rng.below(8)) {
          case 0:
            out += "<h2>heading " + std::to_string(i) + "</h2>\n";
            break;
          case 1:
            out += "<p>text with <b>bold</b> and <i>italic</i></p>\n";
            break;
          case 2:
            out += "<ul><li>item</li><li>item two</li></ul>\n";
            break;
          case 3:
            // Seeded errors: missing alt, bad close, unknown element.
            if (rng.below(2))
                out += "<img src=\"x.gif\">\n";
            else
                out += "<img src=\"y.gif\" alt=\"y\">\n";
            break;
          case 4:
            if (rng.below(3) == 0)
                out += "<blink>nonstandard</blink>\n";
            else
                out += "<p>plain paragraph</p>\n";
            break;
          case 5:
            if (rng.below(3) == 0)
                out += "<a>anchor without href</a>\n";
            else
                out += "<a href=\"u\">ok link</a>\n";
            break;
          case 6:
            if (rng.below(4) == 0)
                out += "<p>mismatched <b>close</i></p>\n";
            else
                out += "<p>more <b>text</b></p>\n";
            break;
          default:
            out += "plain text line " + std::to_string(i) + "\n";
            break;
        }
    }
    out += "</body>\n</html>\n";
    return out;
}

std::string
a2psInput(size_t lines)
{
    Rng rng(606);
    std::string out;
    for (size_t i = 0; i < lines; ++i) {
        std::string line;
        if (i % 9 == 0)
            line += "\tindented(with) \\specials\t";
        int words = 4 + (int)rng.below(i % 13 == 0 ? 30 : 8);
        for (int w = 0; w < words; ++w) {
            if (w)
                line += " ";
            line += kWords[rng.below(kNumWords)];
        }
        out += line + "\n";
    }
    return out;
}

std::string
plexusInput(size_t requests)
{
    Rng rng(707);
    static const char *paths[] = {"/", "/index.html", "/about",
                                  "/paper.ps", "/data/table1",
                                  "/data/table2", "/missing",
                                  "/also/missing"};
    static const char *agents[] = {"Mosaic/2.6", "Lynx/2.4",
                                   "Navigator/2.0", "Fetcher/0.1"};
    std::string out;
    for (size_t i = 0; i < requests; ++i) {
        const char *method =
            rng.below(12) == 0 ? "POST" : (rng.below(5) == 0 ? "HEAD"
                                                             : "GET");
        std::string path = paths[rng.below(8)];
        if (rng.below(4) == 0)
            path += "?q=" + std::to_string(rng.below(100));
        out += std::string(method) + " " + path + " HTTP/1.0\n";
        out += "User-Agent: " + std::string(agents[rng.below(4)]) + "\n";
        out += "Host: www.cs.washington.edu\n";
        out += "\n";
    }
    return out;
}

std::string
tcllexInput(size_t lines)
{
    Rng rng(808);
    std::string out;
    for (size_t i = 0; i < lines; ++i) {
        std::string line;
        switch (rng.below(4)) {
          case 0:
            line = "int " + randomIdent(rng) + " = " +
                   std::to_string(rng.below(100)) + " ;";
            break;
          case 1:
            line = "while ( " + randomIdent(rng) + " < " +
                   std::to_string(rng.below(64)) + " ) {";
            break;
          case 2:
            line = randomIdent(rng) + " = " + randomIdent(rng) + " + " +
                   randomIdent(rng) + " * 3 ;";
            break;
          default:
            line = "return " + randomIdent(rng) + " ;";
            break;
        }
        out += line + "\n";
    }
    return out;
}

std::string
tcltagsInput(size_t lines)
{
    Rng rng(909);
    std::string out;
    for (size_t i = 0; i < lines; ++i) {
        switch (rng.below(5)) {
          case 0:
            out += "proc handler" + std::to_string(i) +
                   " {a b} {\n";
            break;
          case 1:
            out += "set config" + std::to_string(rng.below(60)) + " " +
                   std::to_string(rng.below(1000)) + "\n";
            break;
          case 2:
            out += "    " + randomIdent(rng) + " body line\n";
            break;
          case 3:
            out += "}\n";
            break;
          default:
            out += "# comment " + std::to_string(i) + "\n";
            break;
        }
    }
    return out;
}

std::string
readFileInput()
{
    Rng rng(1001);
    std::string out;
    while (out.size() < 4096)
        out += kWords[rng.below(kNumWords)] + std::string(" ");
    out.resize(4096);
    return out;
}

std::string
rxmatchInput(size_t lines)
{
    // Lines mixing the four probed patterns: "the" (plain substring),
    // "^set" (anchored head), "fe.*ch" (star backtracking), "ing$"
    // (anchored tail). Deterministic so goldens are stable.
    static const char *extras[] = {"set",      "running",  "parsing",
                                   "matching", "scanning", "string",
                                   "batch",    "fetch",    "filing"};
    Rng rng(0xc0de5eedu + (uint32_t)lines);
    std::ostringstream out;
    for (size_t i = 0; i < lines; ++i) {
        size_t words = 3 + rng.below(5);
        if (rng.below(4) == 0)
            out << "set ";
        for (size_t j = 0; j < words; ++j) {
            if (rng.below(3) == 0)
                out << extras[rng.below(9)];
            else
                out << kWords[rng.below(kNumWords)];
            if (j + 1 < words)
                out << ' ';
        }
        if (rng.below(3) == 0)
            out << " closing";
        out << '\n';
    }
    return out.str();
}

void
installAllInputs(vfs::FileSystem &fs)
{
    fs.writeFile("compress.in", compressInput(5000));
    fs.writeFile("cc1.in", cc1Input(700));
    fs.writeFile("javac.in", javacInput(120));
    fs.writeFile("txt2html.in", txt2htmlInput(260));
    fs.writeFile("weblint.in", weblintInput(240));
    fs.writeFile("a2ps.in", a2psInput(220));
    fs.writeFile("requests.in", plexusInput(90));
    fs.writeFile("tcllex.in", tcllexInput(48));
    fs.writeFile("tcltags.in", tcltagsInput(340));
    fs.writeFile("read4k.in", readFileInput());
    fs.writeFile("rxmatch.in", rxmatchInput(40));
    // Composition-tower scripts: the inner interpreter reads its
    // program from the vfs like any other input file.
    fs.writeFile("spin.sel",
                 workloads::loadProgramFile("scriptel/spin.sel"));
    fs.writeFile("mat.sel",
                 workloads::loadProgramFile("scriptel/mat.sel"));
}

} // namespace interp::harness
