/**
 * @file
 * Self-process hardware counters via perf_event_open(2).
 *
 * The replay-throughput evidence harness (bench/bench_topdown.cc)
 * wants the top-down basics for the process that just replayed a
 * tape: cycles, instructions, L1d and LLC accesses/misses, branches
 * and branch misses. This wrapper opens the counters user-space-only
 * (exclude_kernel) so it works under perf_event_paranoid=2, the
 * default in locked-down containers, with no perf(1) binary needed.
 *
 * Degradation contract: every counter is individually optional. A
 * kernel that refuses an event (no PMU in the VM, paranoid=3, an
 * unsupported cache event) simply leaves that counter absent —
 * open() never fatal()s — and readers must check HostCounter::ok
 * before using a value. A build without __linux__ compiles to a stub
 * where nothing is ever available.
 */

#ifndef INTERP_SUPPORT_HOSTPERF_HH
#define INTERP_SUPPORT_HOSTPERF_HH

#include <array>
#include <cstdint>

namespace interp::support {

/** One hardware counter reading; `ok` is false if the kernel refused
 *  the event at open time or the read failed. */
struct HostCounter
{
    bool ok = false;
    uint64_t value = 0;
};

/** One start()/stop() window's readings. */
struct HostPerfSample
{
    HostCounter cycles;
    HostCounter instructions;
    HostCounter branches;
    HostCounter branchMisses;
    HostCounter l1dAccesses;
    HostCounter l1dMisses;
    HostCounter llcAccesses;
    HostCounter llcMisses;

    /** Instructions per cycle; 0 if either counter is absent. */
    double ipc() const;
    /** L1d misses per access in [0,1]; -1 if absent. */
    double l1dMissRate() const;
    /** LLC misses per access in [0,1]; -1 if absent. */
    double llcMissRate() const;
    /** Branch misses per branch in [0,1]; -1 if absent. */
    double branchMissRate() const;
};

/**
 * A fixed set of self-process counters. Counters are opened disabled
 * in the constructor; start() resets and enables them, stop()
 * disables and reads. start()/stop() may be repeated.
 */
class HostPerf
{
  public:
    HostPerf();
    ~HostPerf();

    HostPerf(const HostPerf &) = delete;
    HostPerf &operator=(const HostPerf &) = delete;

    /** True if at least one counter opened. */
    bool anyAvailable() const;

    void start();
    HostPerfSample stop();

  private:
    static constexpr int kEvents = 8;
    /** fds in HostPerfSample field order; -1 = unavailable. */
    std::array<int, kEvents> fds_;
};

} // namespace interp::support

#endif // INTERP_SUPPORT_HOSTPERF_HH
