/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*).
 *
 * All workload generation in the repository uses this generator so
 * that every benchmark and test is reproducible bit-for-bit across
 * runs and platforms.
 */

#ifndef INTERP_SUPPORT_RNG_HH
#define INTERP_SUPPORT_RNG_HH

#include <cstdint>

namespace interp {

/** Small deterministic PRNG with a 64-bit state. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + (int64_t)below((uint64_t)(hi - lo + 1));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (double)(next() >> 11) / 9007199254740992.0;
    }

  private:
    uint64_t state;
};

} // namespace interp

#endif // INTERP_SUPPORT_RNG_HH
