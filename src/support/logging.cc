#include "support/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/detalloc.hh"

namespace interp {

namespace {

// Pull the deterministic-allocator object out of the static library:
// operator new/delete replacements only take effect when their object
// file is linked, and nothing else references detalloc.cc by name.
[[maybe_unused]] const bool detalloc_linked =
    support::deterministicAllocatorActive();

// Serializes stderr reporting so concurrent benchmark jobs never
// interleave half-written lines.
std::mutex report_mutex;

// Per-thread: fatal() throws instead of exiting (see ScopedFatalThrow).
thread_local bool fatal_throws = false;

// Log-line prefixing (setLogTimestamps). The epoch is captured at
// first use so "seconds since start" reads near zero in early lines.
std::atomic<bool> log_timestamps{false};

std::chrono::steady_clock::time_point
logEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

// Dense per-thread ids: readable in interleaved output, unlike the
// 15-digit values std::this_thread::get_id() prints on glibc.
int
shortThreadId()
{
    static std::atomic<int> next{0};
    thread_local int id = next++;
    return id;
}

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::string prefix = logLinePrefix();
    std::lock_guard<std::mutex> lock(report_mutex);
    if (!prefix.empty())
        std::fputs(prefix.c_str(), stderr);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return fmt;
    std::string out((size_t)n, '\0');
    std::vsnprintf(out.data(), (size_t)n + 1, fmt, ap);
    return out;
}

} // namespace

void
setLogTimestamps(bool on)
{
    if (on)
        logEpoch(); // pin the epoch no later than enablement
    log_timestamps.store(on, std::memory_order_relaxed);
}

bool
logTimestampsEnabled()
{
    return log_timestamps.load(std::memory_order_relaxed);
}

std::string
logLinePrefix()
{
    if (!logTimestampsEnabled())
        return "";
    auto elapsed = std::chrono::steady_clock::now() - logEpoch();
    double secs = std::chrono::duration<double>(elapsed).count();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[%012.6f t%02d] ", secs,
                  shortThreadId());
    return buf;
}

ScopedFatalThrow::ScopedFatalThrow() : saved(fatal_throws)
{
    fatal_throws = true;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    fatal_throws = saved;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    if (fatal_throws) {
        std::string msg = vformat(fmt, ap);
        va_end(ap);
        throw FatalError(msg);
    }
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace interp
