#include "support/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/detalloc.hh"

namespace interp {

namespace {

// Pull the deterministic-allocator object out of the static library:
// operator new/delete replacements only take effect when their object
// file is linked, and nothing else references detalloc.cc by name.
[[maybe_unused]] const bool detalloc_linked =
    support::deterministicAllocatorActive();

// Serializes stderr reporting so concurrent benchmark jobs never
// interleave half-written lines.
std::mutex report_mutex;

// Per-thread: fatal() throws instead of exiting (see ScopedFatalThrow).
thread_local bool fatal_throws = false;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::lock_guard<std::mutex> lock(report_mutex);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return fmt;
    std::string out((size_t)n, '\0');
    std::vsnprintf(out.data(), (size_t)n + 1, fmt, ap);
    return out;
}

} // namespace

ScopedFatalThrow::ScopedFatalThrow() : saved(fatal_throws)
{
    fatal_throws = true;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    fatal_throws = saved;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    if (fatal_throws) {
        std::string msg = vformat(fmt, ap);
        va_end(ap);
        throw FatalError(msg);
    }
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace interp
