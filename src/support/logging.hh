/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this code);
 *            aborts so the failure can be debugged.
 * fatal()  — the user asked for something impossible (bad program,
 *            bad configuration); exits with status 1.
 * warn()   — something questionable happened but execution continues.
 * inform() — status messages.
 */

#ifndef INTERP_SUPPORT_LOGGING_HH
#define INTERP_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace interp {

/**
 * Thrown by fatal() instead of exiting while a ScopedFatalThrow is
 * active on the calling thread. Carries the formatted message.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * While an instance is alive, fatal() on this thread throws FatalError
 * instead of printing and exiting the process. The parallel suite
 * runner installs one around each job so a fatal program error (bad
 * source, missing input file, budget misuse) fails that one
 * measurement instead of killing every in-flight benchmark. Nests
 * safely; panic() still aborts.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();

    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;

  private:
    bool saved;
};

/**
 * When enabled, every log line is prefixed with `[sssss.ssssss tNN] `:
 * seconds since process start on the monotonic clock, plus a short
 * dense per-thread id. Off by default so single-threaded tools (and
 * the test expectations built on their output) are unchanged; the
 * interpd daemon turns it on, because its worker logs interleave and
 * are unattributable without it.
 */
void setLogTimestamps(bool on);
bool logTimestampsEnabled();

/**
 * The prefix the current thread would put on a log line right now
 * (empty when timestamps are disabled). Exposed so tests can pin the
 * format without capturing stderr.
 */
std::string logLinePrefix();

/** Print a formatted message to stderr and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error: print to stderr and
 * exit(1), or throw FatalError under a ScopedFatalThrow.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Abort with a source-located message if the condition does not hold. */
#define INTERP_ASSERT(cond)                                                 \
    do {                                                                    \
        if (!(cond))                                                        \
            ::interp::panic("%s:%d: assertion failed: %s",                  \
                            __FILE__, __LINE__, #cond);                     \
    } while (0)

} // namespace interp

#endif // INTERP_SUPPORT_LOGGING_HH
