/**
 * @file
 * Small string utilities shared across the interpreters and the
 * benchmark harness.
 */

#ifndef INTERP_SUPPORT_STRUTIL_HH
#define INTERP_SUPPORT_STRUTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace interp {

/** Split @p text on @p sep; empty fields are kept. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split @p text on runs of whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view text);

/** True if @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Join @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Render a count with thousands separators, e.g.\ 12345 -> "12,345". */
std::string withCommas(unsigned long long value);

/**
 * Render a count the way the paper's Table 2 does: in units of 10^3
 * with two or three significant digits, e.g.\ 12,960,000 -> "13,000".
 */
std::string sigThousands(double value);

} // namespace interp

#endif // INTERP_SUPPORT_STRUTIL_HH
