#include "support/strutil.hh"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace interp {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace((unsigned char)text[i]))
            ++i;
        size_t start = i;
        while (i < text.size() && !std::isspace((unsigned char)text[i]))
            ++i;
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace((unsigned char)text[begin]))
        ++begin;
    while (end > begin && std::isspace((unsigned char)text[end - 1]))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(len > 0 ? len : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
withCommas(unsigned long long value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
sigThousands(double value)
{
    double thousands = value / 1000.0;
    if (thousands >= 100.0) {
        // Round to two significant figures beyond the leading digits.
        double magnitude = std::pow(10.0, std::floor(std::log10(thousands)) - 1);
        double rounded = std::round(thousands / magnitude) * magnitude;
        return withCommas((unsigned long long)rounded);
    }
    if (thousands >= 10.0)
        return withCommas((unsigned long long)std::llround(thousands));
    return format("%.1f", thousands);
}

} // namespace interp
