/**
 * @file
 * Deterministic global allocator (see detalloc.cc for the rationale).
 */

#ifndef INTERP_SUPPORT_DETALLOC_HH
#define INTERP_SUPPORT_DETALLOC_HH

namespace interp::support {

/**
 * True when the deterministic size-class allocator has replaced the
 * global operator new/delete. False in sanitizer builds, which keep
 * the instrumented system allocator (and with it the heap checking
 * the sanitizers exist for) at the cost of bit-exact reproducibility.
 */
bool deterministicAllocatorActive();

} // namespace interp::support

#endif // INTERP_SUPPORT_DETALLOC_HH
