#include "support/hostperf.hh"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace interp::support {

double
HostPerfSample::ipc() const
{
    if (!cycles.ok || !instructions.ok || cycles.value == 0)
        return 0;
    return (double)instructions.value / (double)cycles.value;
}

double
HostPerfSample::l1dMissRate() const
{
    if (!l1dAccesses.ok || !l1dMisses.ok || l1dAccesses.value == 0)
        return -1;
    return (double)l1dMisses.value / (double)l1dAccesses.value;
}

double
HostPerfSample::llcMissRate() const
{
    if (!llcAccesses.ok || !llcMisses.ok || llcAccesses.value == 0)
        return -1;
    return (double)llcMisses.value / (double)llcAccesses.value;
}

double
HostPerfSample::branchMissRate() const
{
    if (!branches.ok || !branchMisses.ok || branches.value == 0)
        return -1;
    return (double)branchMisses.value / (double)branches.value;
}

#ifdef __linux__

namespace {

/** Open one self-process, user-space-only counter; -1 on refusal. */
int
openEvent(uint32_t type, uint64_t config)
{
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1; // allowed under perf_event_paranoid=2
    attr.exclude_hv = 1;
    return (int)syscall(__NR_perf_event_open, &attr, 0 /* self */,
                        -1 /* any cpu */, -1 /* no group */, 0);
}

uint64_t
cacheConfig(uint64_t cache, uint64_t op, uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

} // namespace

HostPerf::HostPerf()
{
    // Field order of HostPerfSample.
    fds_[0] = openEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    fds_[1] = openEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    fds_[2] = openEvent(PERF_TYPE_HARDWARE,
                        PERF_COUNT_HW_BRANCH_INSTRUCTIONS);
    fds_[3] = openEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
    fds_[4] = openEvent(PERF_TYPE_HW_CACHE,
                        cacheConfig(PERF_COUNT_HW_CACHE_L1D,
                                    PERF_COUNT_HW_CACHE_OP_READ,
                                    PERF_COUNT_HW_CACHE_RESULT_ACCESS));
    fds_[5] = openEvent(PERF_TYPE_HW_CACHE,
                        cacheConfig(PERF_COUNT_HW_CACHE_L1D,
                                    PERF_COUNT_HW_CACHE_OP_READ,
                                    PERF_COUNT_HW_CACHE_RESULT_MISS));
    fds_[6] = openEvent(PERF_TYPE_HW_CACHE,
                        cacheConfig(PERF_COUNT_HW_CACHE_LL,
                                    PERF_COUNT_HW_CACHE_OP_READ,
                                    PERF_COUNT_HW_CACHE_RESULT_ACCESS));
    fds_[7] = openEvent(PERF_TYPE_HW_CACHE,
                        cacheConfig(PERF_COUNT_HW_CACHE_LL,
                                    PERF_COUNT_HW_CACHE_OP_READ,
                                    PERF_COUNT_HW_CACHE_RESULT_MISS));
}

HostPerf::~HostPerf()
{
    for (int fd : fds_)
        if (fd >= 0)
            close(fd);
}

bool
HostPerf::anyAvailable() const
{
    for (int fd : fds_)
        if (fd >= 0)
            return true;
    return false;
}

void
HostPerf::start()
{
    for (int fd : fds_) {
        if (fd < 0)
            continue;
        ioctl(fd, PERF_EVENT_IOC_RESET, 0);
        ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
}

HostPerfSample
HostPerf::stop()
{
    HostPerfSample sample;
    HostCounter *fields[kEvents] = {
        &sample.cycles,       &sample.instructions,
        &sample.branches,     &sample.branchMisses,
        &sample.l1dAccesses,  &sample.l1dMisses,
        &sample.llcAccesses,  &sample.llcMisses,
    };
    for (int i = 0; i < kEvents; ++i) {
        int fd = fds_[i];
        if (fd < 0)
            continue;
        ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
        uint64_t value = 0;
        if (read(fd, &value, sizeof(value)) == (ssize_t)sizeof(value)) {
            fields[i]->ok = true;
            fields[i]->value = value;
        }
    }
    return sample;
}

#else // !__linux__

HostPerf::HostPerf() { fds_.fill(-1); }
HostPerf::~HostPerf() {}
bool HostPerf::anyAvailable() const { return false; }
void HostPerf::start() {}
HostPerfSample HostPerf::stop() { return HostPerfSample(); }

#endif

} // namespace interp::support
