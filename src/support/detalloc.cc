/**
 * @file
 * Deterministic replacement for the global operator new/delete.
 *
 * The simulated data addresses fed to the d-cache come from
 * trace::AddressMapper, which canonicalizes host pointers by
 * first-touch order of 16-byte granules. That makes the simulation
 * independent of raw address values — but not of *aliasing*: when the
 * host allocator recycles memory of a freed, already-charged object
 * for a new one, the mapper sees an already-seen granule instead of a
 * fresh one. glibc malloc's recycling decisions (tcache, bin state,
 * chunk splitting and coalescing) depend on the whole process's prior
 * heap history, so two identical benchmark runs diverge once the heap
 * is warm, and a parallel suite cannot reproduce a serial one.
 *
 * This allocator makes the aliasing pattern a pure function of each
 * run's own allocation/free sequence:
 *
 *  - exact size classes, strict LIFO reuse, no splitting and no
 *    coalescing: a new cell is either the most recently freed cell of
 *    the same class (a deterministic correspondence driven entirely
 *    by the run's own sequence) or bump-allocated from a fresh mmap
 *    slab (granules never seen before, so always fresh to the run's
 *    mapper);
 *  - thread-local state, so concurrent suite jobs cannot perturb one
 *    another and no locks are taken;
 *  - 16-byte cell alignment, preserving the intra-granule offsets the
 *    mapper relies on.
 *
 * Carried-over free-list cells (freed before the current run began)
 * are indistinguishable from fresh slab memory as far as the run's
 * mapper is concerned — their granules are not in it — so per-thread
 * state may persist across jobs without breaking reproducibility.
 *
 * Slabs are never unmapped; a short-lived benchmark process trades a
 * bounded amount of fragmentation for reproducibility. Sanitizer
 * builds (INTERP_SANITIZE_BUILD) compile this file down to just the
 * status query, keeping ASan's instrumented heap.
 */

#include "support/detalloc.hh"

#if defined(INTERP_SANITIZE_BUILD)

namespace interp::support {

bool
deterministicAllocatorActive()
{
    return false;
}

} // namespace interp::support

#else // !INTERP_SANITIZE_BUILD

#include <cstddef>
#include <cstdint>
#include <new>
#include <sys/mman.h>

namespace {

constexpr size_t kGranule = 16;  ///< cell alignment; mapper granule
constexpr size_t kHeader = 16;   ///< bytes reserved before user data
constexpr size_t kSmallMaxCell = 4096;
constexpr size_t kNumSmallClasses = kSmallMaxCell / kGranule + 1;
constexpr size_t kNumBigClasses = 32; ///< power-of-two cells, by log2
constexpr size_t kMaxCell = (size_t)1 << 30;
constexpr size_t kSlabBytes = (size_t)1 << 20;

/** Stored immediately before the user pointer while a cell is live. */
struct Header
{
    uint64_t cell; ///< total cell bytes (the free-list class key)
    uint64_t back; ///< user pointer minus cell base
};

/**
 * Per-thread heap. Plain zero-initialized PODs only: safe to touch
 * from the very first allocation on a thread and needs no teardown.
 */
struct ThreadHeap
{
    void *smallFree[kNumSmallClasses];
    void *bigFree[kNumBigClasses];
    char *bump;
    size_t bumpLeft;
};

thread_local ThreadHeap t_heap;

/** log2, rounded up; class index for big cells. */
size_t
bigClass(size_t cell)
{
    return 64 - (size_t)__builtin_clzll(cell - 1);
}

void **
freeListFor(size_t cell)
{
    if (cell <= kSmallMaxCell)
        return &t_heap.smallFree[cell / kGranule];
    return &t_heap.bigFree[bigClass(cell)];
}

void *
osAlloc(size_t bytes)
{
    void *p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    return p == MAP_FAILED ? nullptr : p;
}

/** A cell of exactly @p cell bytes: LIFO reuse, else fresh memory. */
void *
takeCell(size_t cell)
{
    void **list = freeListFor(cell);
    if (*list) {
        void *base = *list;
        *list = *(void **)base;
        return base;
    }
    if (cell > kSlabBytes)
        return osAlloc(cell); // its own slab
    if (t_heap.bumpLeft < cell) {
        char *slab = (char *)osAlloc(kSlabBytes);
        if (!slab)
            return nullptr;
        // The old slab's tail is abandoned, never reused: fresh slab
        // memory is always granule-fresh, so slab geometry cannot
        // influence the mapper.
        t_heap.bump = slab;
        t_heap.bumpLeft = kSlabBytes;
    }
    char *base = t_heap.bump;
    t_heap.bump += cell;
    t_heap.bumpLeft -= cell;
    return base;
}

void *
allocate(size_t size, size_t align) noexcept
{
    if (size == 0)
        size = 1;
    if (align < kGranule)
        align = kGranule;
    size_t need = size + kHeader + (align > kGranule ? align : 0);
    if (need < size || need > kMaxCell)
        return nullptr;
    size_t cell = need <= kSmallMaxCell
                      ? (need + kGranule - 1) & ~(kGranule - 1)
                      : (size_t)1 << bigClass(need);
    char *base = (char *)takeCell(cell);
    if (!base)
        return nullptr;
    char *user = base + kHeader;
    if (align > kGranule)
        user = (char *)(((uintptr_t)user + align - 1) &
                        ~(uintptr_t)(align - 1));
    auto *h = (Header *)(user - kHeader);
    h->cell = cell;
    h->back = (uint64_t)(user - base);
    return user;
}

void
release(void *ptr) noexcept
{
    if (!ptr)
        return;
    auto *h = (Header *)((char *)ptr - kHeader);
    size_t cell = h->cell;
    void *base = (char *)ptr - h->back;
    void **list = freeListFor(cell);
    *(void **)base = *list;
    *list = base;
}

void *
allocateOrThrow(size_t size, size_t align)
{
    void *p = allocate(size, align);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    return allocateOrThrow(n, kGranule);
}

void *
operator new[](std::size_t n)
{
    return allocateOrThrow(n, kGranule);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    return allocateOrThrow(n, (size_t)align);
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return allocateOrThrow(n, (size_t)align);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return allocate(n, kGranule);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return allocate(n, kGranule);
}

void *
operator new(std::size_t n, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return allocate(n, (size_t)align);
}

void *
operator new[](std::size_t n, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return allocate(n, (size_t)align);
}

void
operator delete(void *p) noexcept
{
    release(p);
}

void
operator delete[](void *p) noexcept
{
    release(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    release(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    release(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    release(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    release(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    release(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    release(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    release(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    release(p);
}

namespace interp::support {

bool
deterministicAllocatorActive()
{
    return true;
}

} // namespace interp::support

#endif // INTERP_SANITIZE_BUILD
