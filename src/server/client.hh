/**
 * @file
 * Client side of the interpd protocol, plus the load-generator core.
 *
 * Client is a thin blocking connection: it frames requests, reads
 * framed responses, and lets callers pipeline (send several EVALs,
 * then collect responses and match them up by echoed id).
 *
 * runLoadgen() is the measurement loop both the `loadgen` program and
 * the end-to-end server test drive: N client threads, each with its
 * own connection, replaying a request mix either closed-loop (send,
 * wait, repeat — measures service latency under concurrency) or
 * open-loop (send on a fixed schedule regardless of completions — the
 * arrival process that actually exposes queueing delay and shedding).
 * Latency is client-observed: from send (closed) or from the
 * scheduled send instant (open) to response receipt.
 */

#ifndef INTERP_SERVER_CLIENT_HH
#define INTERP_SERVER_CLIENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "server/protocol.hh"

namespace interp::server {

/** One blocking connection to an interpd daemon. */
class Client
{
  public:
    /** Connect to a Unix-domain socket; fatal() on failure. */
    static Client connectUnix(const std::string &path);
    /** Connect to 127.0.0.1:port; fatal() on failure. */
    static Client connectTcp(int port);

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Send one EVAL frame (does not wait for the response). */
    void sendEval(const EvalRequest &req);
    /** Send one STATS frame. */
    void sendStats(uint32_t id);

    /** Block until one response arrives; fatal() on EOF/garbage. */
    EvalResponse recv();

    /** Non-blocking: true and fills @p resp if a complete response
     *  was available. */
    bool tryRecv(EvalResponse &resp);

    /** Send one EVAL and wait for its response (no pipelining). */
    EvalResponse eval(const EvalRequest &req);

    /** Fetch the server's STATS JSON. */
    std::string stats();

  private:
    explicit Client(int fd) : fd_(fd) {}

    void sendHello();
    void sendAll(const std::string &bytes);
    bool parseOne(EvalResponse &resp);

    int fd_ = -1;
    RecvBuffer in_;
    uint32_t nextId_ = 1;
};

// --- load generator --------------------------------------------------------

struct LoadgenOptions
{
    /** Connect target: unix path wins if both are set. */
    std::string unixPath;
    int tcpPort = -1;

    /**
     * Cluster mode: a list of endpoint specs ("unix:PATH", a bare
     * path, "tcp:PORT", or a bare loopback port), clients assigned
     * round-robin. Overrides unixPath/tcpPort when non-empty. In
     * this mode connect failures and mid-run reconnects are counted
     * per endpoint (distinct from SHED, which is a server answer)
     * and a failed connect retries instead of aborting the run.
     */
    std::vector<std::string> endpoints;
    /** Connect attempts per endpoint before a client gives up. */
    unsigned connectAttempts = 3;

    unsigned clients = 1;         ///< concurrent connections
    unsigned requestsPerClient = 8;
    /**
     * Total offered load in requests/second across all clients;
     * 0 = closed loop (each client waits for its response before
     * sending the next request).
     */
    double openRatePerSec = 0;

    /** Request templates, cycled per client; ids are rewritten. */
    std::vector<EvalRequest> mix;

    /**
     * Optional per-response hook, called once per completed request
     * under the tally lock (so it may touch shared state without its
     * own synchronization). The end-to-end test uses it to compare
     * every response against the batch harness.
     */
    std::function<void(const EvalRequest &, const EvalResponse &)>
        onResponse;

    /**
     * Optional traffic classifier: maps a request to its serving
     * class ("interactive" / "batch" — typically the workload
     * registry's traffic tag for the named program). When set, the
     * report gains a per-class outcome/latency breakdown, so shed and
     * deadline counts are attributable to the class that suffered
     * them. Called under the tally lock.
     */
    std::function<std::string(const EvalRequest &)> classOf;
};

/** Tallies for one mode (or the whole run). */
struct LoadgenTotals
{
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t deadline = 0;
    uint64_t error = 0;
    /** Client-observed latency of each OK response, microseconds. */
    std::vector<uint64_t> latencyUs;

    /**
     * Exact percentile over the sorted samples, rank q * (n-1) —
     * the same rank formula LatencyHistogram::quantile uses, so a
     * loadgen percentile is always <= the server histogram's
     * (bucket-upper-bound) answer for the same latency population.
     */
    uint64_t percentile(double q) const;
};

/**
 * Transport-level tallies for one endpoint — failures of the
 * connection itself, which never reach a server and so are
 * deliberately not SHED/ERROR rows in the outcome table.
 */
struct EndpointTotals
{
    uint64_t connects = 0;        ///< successful connects
    uint64_t connectFailures = 0; ///< refused / unreachable attempts
    uint64_t reconnects = 0;      ///< mid-run connection re-opens
    uint64_t retriesSent = 0;     ///< requests resent after a drop
    uint64_t abandoned = 0;       ///< requests given up unconnected
    uint64_t sent = 0;            ///< EVALs sent to this endpoint
    uint64_t ok = 0;
};

struct LoadgenReport
{
    std::map<std::string, LoadgenTotals> byMode; ///< key: langName
    /** Per-traffic-class tallies (only when LoadgenOptions::classOf
     *  is set): the interactive:batch shed/deadline breakdown. */
    std::map<std::string, LoadgenTotals> byClass;
    LoadgenTotals all;
    /** Cluster mode only: per-endpoint transport + balance tallies. */
    std::map<std::string, EndpointTotals> byEndpoint;

    /**
     * p50/p95/p99 + shed/miss table, one row per mode plus ALL. The
     * percentiles are exact (sorted client samples); the server's
     * STATS histogram reports log2-bucket upper bounds, so its p50/
     * p95/p99 bracket these from above.
     */
    std::string table() const;
};

/** Run the load; fatal() on connection failure. */
LoadgenReport runLoadgen(const LoadgenOptions &opt);

/**
 * Parse an execution-mode name: langName() spellings,
 * case-insensitively, plus the aliases jvm, jvm-quick and threaded.
 * False on no match.
 */
bool langFromName(const std::string &name, harness::Lang &out);

} // namespace interp::server

#endif // INTERP_SERVER_CLIENT_HH
