#include "server/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "support/logging.hh"

namespace interp::server {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

// --- Client ----------------------------------------------------------------

Client
Client::connectUnix(const std::string &path)
{
    sockaddr_un sun{};
    if (path.empty() || path.size() >= sizeof(sun.sun_path))
        fatal("loadgen: bad socket path \"%s\"", path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatal("loadgen: socket(AF_UNIX): %s", std::strerror(errno));
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, (const sockaddr *)&sun, sizeof(sun)) != 0) {
        int err = errno;
        ::close(fd);
        fatal("loadgen: connect %s: %s", path.c_str(),
              std::strerror(err));
    }
    Client client(fd);
    client.sendHello();
    return client;
}

Client
Client::connectTcp(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatal("loadgen: socket(AF_INET): %s", std::strerror(errno));
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons((uint16_t)port);
    if (::connect(fd, (const sockaddr *)&sin, sizeof(sin)) != 0) {
        int err = errno;
        ::close(fd);
        fatal("loadgen: connect 127.0.0.1:%d: %s", port,
              std::strerror(err));
    }
    Client client(fd);
    client.sendHello();
    return client;
}

void
Client::sendHello()
{
    std::string hello;
    encodeHello(hello);
    sendAll(hello);
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), in_(std::move(other.in_)), nextId_(other.nextId_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        in_ = std::move(other.in_);
        nextId_ = other.nextId_;
        other.fd_ = -1;
    }
    return *this;
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Client::sendAll(const std::string &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += (size_t)n;
            continue;
        }
        if (errno == EINTR)
            continue;
        fatal("loadgen: send: %s", std::strerror(errno));
    }
}

void
Client::sendEval(const EvalRequest &req)
{
    std::string out;
    encodeEvalRequest(out, req);
    sendAll(out);
}

void
Client::sendStats(uint32_t id)
{
    std::string out;
    StatsRequest req;
    req.id = id;
    encodeStatsRequest(out, req);
    sendAll(out);
}

bool
Client::parseOne(EvalResponse &resp)
{
    std::string payload;
    switch (takeFrame(in_, payload, kMaxResponseBytes)) {
      case FrameResult::Incomplete:
        return false;
      case FrameResult::Malformed:
        fatal("loadgen: malformed response frame");
      case FrameResult::Frame:
        break;
    }
    if (!decodeResponse(payload, resp))
        fatal("loadgen: undecodable response payload");
    return true;
}

EvalResponse
Client::recv()
{
    EvalResponse resp;
    while (!parseOne(resp)) {
        char buf[64 * 1024];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            in_.append(buf, (size_t)n);
            continue;
        }
        if (n == 0)
            fatal("loadgen: server closed the connection");
        if (errno == EINTR)
            continue;
        fatal("loadgen: recv: %s", std::strerror(errno));
    }
    return resp;
}

bool
Client::tryRecv(EvalResponse &resp)
{
    for (;;) {
        if (parseOne(resp))
            return true;
        char buf[64 * 1024];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
            in_.append(buf, (size_t)n);
            continue;
        }
        if (n == 0)
            fatal("loadgen: server closed the connection");
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return false;
        if (errno == EINTR)
            continue;
        fatal("loadgen: recv: %s", std::strerror(errno));
    }
}

EvalResponse
Client::eval(const EvalRequest &req)
{
    sendEval(req);
    return recv();
}

std::string
Client::stats()
{
    sendStats(nextId_++);
    EvalResponse resp = recv();
    if (resp.status != Status::Ok)
        fatal("loadgen: STATS answered %s", statusName(resp.status));
    return resp.result;
}

// --- load generator --------------------------------------------------------

uint64_t
LoadgenTotals::percentile(double q) const
{
    if (latencyUs.empty())
        return 0;
    std::vector<uint64_t> sorted = latencyUs;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = (size_t)(q * (double)(sorted.size() - 1));
    return sorted[idx];
}

std::string
LoadgenReport::table() const
{
    std::string out;
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%-14s %6s %6s %6s %6s %6s %9s %9s %9s\n", "mode",
                  "sent", "ok", "shed", "ddl", "err", "p50_us",
                  "p95_us", "p99_us");
    out += line;
    auto row = [&](const std::string &name, const LoadgenTotals &t) {
        std::snprintf(line, sizeof(line),
                      "%-14s %6" PRIu64 " %6" PRIu64 " %6" PRIu64
                      " %6" PRIu64 " %6" PRIu64 " %9" PRIu64
                      " %9" PRIu64 " %9" PRIu64 "\n",
                      name.c_str(), t.sent, t.ok, t.shed, t.deadline,
                      t.error, t.percentile(0.50), t.percentile(0.95),
                      t.percentile(0.99));
        out += line;
    };
    for (const auto &entry : byMode)
        row(entry.first, entry.second);
    row("ALL", all);

    if (!byClass.empty()) {
        std::snprintf(line, sizeof(line),
                      "%-14s %6s %6s %6s %6s %6s %9s %9s %9s\n",
                      "class", "sent", "ok", "shed", "ddl", "err",
                      "p50_us", "p95_us", "p99_us");
        out += line;
        for (const auto &entry : byClass)
            row(entry.first, entry.second);
    }

    if (!byEndpoint.empty()) {
        std::snprintf(line, sizeof(line),
                      "%-24s %6s %6s %6s %8s %7s %7s %9s\n",
                      "endpoint", "sent", "ok", "conn", "connfail",
                      "reconn", "resent", "abandoned");
        out += line;
        for (const auto &entry : byEndpoint) {
            const EndpointTotals &e = entry.second;
            std::snprintf(line, sizeof(line),
                          "%-24s %6" PRIu64 " %6" PRIu64 " %6" PRIu64
                          " %8" PRIu64 " %7" PRIu64 " %7" PRIu64
                          " %9" PRIu64 "\n",
                          entry.first.c_str(), e.sent, e.ok,
                          e.connects, e.connectFailures, e.reconnects,
                          e.retriesSent, e.abandoned);
            out += line;
        }
    }
    return out;
}

namespace {

Client
connectTarget(const LoadgenOptions &opt)
{
    if (!opt.unixPath.empty())
        return Client::connectUnix(opt.unixPath);
    if (opt.tcpPort >= 0)
        return Client::connectTcp(opt.tcpPort);
    fatal("loadgen: no target (need a unix path or a tcp port)");
}

/** Connect to one "unix:PATH" / "tcp:PORT" / path / port spec. */
Client
connectSpec(const std::string &spec)
{
    auto all_digits = [](const std::string &s) {
        if (s.empty())
            return false;
        for (char c : s)
            if (!std::isdigit((unsigned char)c))
                return false;
        return true;
    };
    if (spec.rfind("unix:", 0) == 0)
        return Client::connectUnix(spec.substr(5));
    if (spec.rfind("tcp:", 0) == 0 && all_digits(spec.substr(4)))
        return Client::connectTcp(std::atoi(spec.c_str() + 4));
    if (spec.find('/') != std::string::npos)
        return Client::connectUnix(spec);
    if (all_digits(spec))
        return Client::connectTcp(std::atoi(spec.c_str()));
    fatal("loadgen: bad endpoint \"%s\" "
          "(want unix:PATH, tcp:PORT, a path, or a port)",
          spec.c_str());
}

struct Tally
{
    explicit Tally(const LoadgenOptions &opt_) : opt(opt_) {}

    const LoadgenOptions &opt;
    std::mutex mu;
    LoadgenReport report;

    void
    note(const EvalRequest &req, const EvalResponse &resp,
         uint64_t latency_us)
    {
        std::lock_guard<std::mutex> lock(mu);
        std::vector<LoadgenTotals *> buckets = {
            &report.byMode[harness::langName(req.mode)], &report.all};
        if (opt.classOf)
            buckets.push_back(&report.byClass[opt.classOf(req)]);
        for (LoadgenTotals *t : buckets) {
            ++t->sent;
            switch (resp.status) {
              case Status::Ok:
                ++t->ok;
                t->latencyUs.push_back(latency_us);
                break;
              case Status::Shed:
                ++t->shed;
                break;
              case Status::Deadline:
                ++t->deadline;
                break;
              case Status::Error:
                ++t->error;
                break;
            }
        }
        if (opt.onResponse)
            opt.onResponse(req, resp);
    }

    /** Mutate one endpoint's transport tallies under the lock. */
    template <class F>
    void
    endpoint(const std::string &name, F f)
    {
        std::lock_guard<std::mutex> lock(mu);
        f(report.byEndpoint[name]);
    }
};

/**
 * Connect to @p spec with bounded retries; transport outcomes are
 * tallied per endpoint instead of aborting the whole run. Empty
 * optional after opt.connectAttempts refusals.
 */
std::optional<Client>
connectWithRetry(const LoadgenOptions &opt, const std::string &spec,
                 Tally &tally)
{
    for (unsigned attempt = 0; attempt < opt.connectAttempts;
         ++attempt) {
        try {
            ScopedFatalThrow contain;
            Client conn = connectSpec(spec);
            tally.endpoint(spec,
                           [](EndpointTotals &e) { ++e.connects; });
            return conn;
        } catch (const FatalError &) {
            tally.endpoint(spec, [](EndpointTotals &e) {
                ++e.connectFailures;
            });
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }
    return std::nullopt;
}

void
closedLoopClient(const LoadgenOptions &opt, unsigned client_index,
                 Tally &tally, Client conn)
{
    for (unsigned i = 0; i < opt.requestsPerClient; ++i) {
        EvalRequest req =
            opt.mix[(client_index + i) % opt.mix.size()];
        req.id = i + 1;
        auto t0 = steady_clock::now();
        EvalResponse resp = conn.eval(req);
        auto t1 = steady_clock::now();
        if (resp.id != req.id)
            fatal("loadgen: response id %u for request %u", resp.id,
                  req.id);
        tally.note(
            req, resp,
            (uint64_t)duration_cast<microseconds>(t1 - t0).count());
    }
}

/**
 * Closed loop against one endpoint of a cluster: a dropped
 * connection is re-opened and the in-flight request re-sent (both
 * tallied per endpoint), so one dying shard degrades the report
 * instead of killing the run.
 */
void
clusterClosedLoopClient(const LoadgenOptions &opt,
                        unsigned client_index, Tally &tally)
{
    const std::string &spec =
        opt.endpoints[client_index % opt.endpoints.size()];
    std::optional<Client> conn = connectWithRetry(opt, spec, tally);

    for (unsigned i = 0; i < opt.requestsPerClient; ++i) {
        if (!conn) {
            tally.endpoint(spec, [&](EndpointTotals &e) {
                e.abandoned += opt.requestsPerClient - i;
            });
            return;
        }
        EvalRequest req =
            opt.mix[(client_index + i) % opt.mix.size()];
        req.id = i + 1;
        for (;;) {
            try {
                ScopedFatalThrow contain;
                tally.endpoint(
                    spec, [](EndpointTotals &e) { ++e.sent; });
                auto t0 = steady_clock::now();
                EvalResponse resp = conn->eval(req);
                auto t1 = steady_clock::now();
                if (resp.id != req.id)
                    fatal("loadgen: response id %u for request %u",
                          resp.id, req.id);
                tally.note(req, resp,
                           (uint64_t)duration_cast<microseconds>(
                               t1 - t0)
                               .count());
                if (resp.status == Status::Ok)
                    tally.endpoint(
                        spec, [](EndpointTotals &e) { ++e.ok; });
                break;
            } catch (const FatalError &) {
                // The connection died under us (shard restart, proxy
                // drop): reconnect and resend this request.
                conn = connectWithRetry(opt, spec, tally);
                if (!conn) {
                    tally.endpoint(spec, [&](EndpointTotals &e) {
                        e.abandoned += opt.requestsPerClient - i;
                    });
                    return;
                }
                tally.endpoint(spec, [](EndpointTotals &e) {
                    ++e.reconnects;
                    ++e.retriesSent;
                });
            }
        }
    }
}

void
openLoopClient(const LoadgenOptions &opt, unsigned client_index,
               Tally &tally, Client conn,
               const std::string &endpoint_spec = std::string())
{
    // Each client offers rate/clients; stagger starts so the
    // aggregate arrival stream interleaves instead of bursting.
    double per_client = opt.openRatePerSec / (double)opt.clients;
    auto period = microseconds((uint64_t)(1e6 / per_client));
    auto start = steady_clock::now() +
                 (period * client_index) / opt.clients;

    std::unordered_map<uint32_t, steady_clock::time_point> sent_at;
    std::unordered_map<uint32_t, EvalRequest> req_of;
    auto settle = [&](const EvalResponse &resp) {
        auto it = sent_at.find(resp.id);
        if (it == sent_at.end())
            fatal("loadgen: response for unknown id %u", resp.id);
        uint64_t us = (uint64_t)duration_cast<microseconds>(
                          steady_clock::now() - it->second)
                          .count();
        tally.note(req_of[resp.id], resp, us);
        if (!endpoint_spec.empty() && resp.status == Status::Ok)
            tally.endpoint(endpoint_spec,
                           [](EndpointTotals &e) { ++e.ok; });
        sent_at.erase(it);
        req_of.erase(resp.id);
    };

    for (unsigned i = 0; i < opt.requestsPerClient; ++i) {
        std::this_thread::sleep_until(start + period * i);
        EvalRequest req =
            opt.mix[(client_index + i) % opt.mix.size()];
        req.id = i + 1;
        // Open loop: latency includes any send-side slip, measured
        // from the scheduled instant.
        sent_at[req.id] = start + period * i;
        req_of[req.id] = req;
        if (!endpoint_spec.empty())
            tally.endpoint(endpoint_spec,
                           [](EndpointTotals &e) { ++e.sent; });
        conn.sendEval(req);
        EvalResponse resp;
        while (conn.tryRecv(resp))
            settle(resp);
    }
    while (!sent_at.empty())
        settle(conn.recv());
}

} // namespace

LoadgenReport
runLoadgen(const LoadgenOptions &opt)
{
    if (opt.mix.empty())
        fatal("loadgen: empty request mix");
    if (opt.clients == 0)
        fatal("loadgen: need at least one client");

    Tally tally(opt);
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (unsigned c = 0; c < opt.clients; ++c)
        threads.emplace_back([&opt, c, &tally] {
            if (!opt.endpoints.empty()) {
                if (opt.openRatePerSec > 0) {
                    // Open loop per endpoint: connect with retry and
                    // accounting; a mid-run drop is fatal (the open
                    // schedule cannot be replayed honestly).
                    const std::string &spec =
                        opt.endpoints[c % opt.endpoints.size()];
                    std::optional<Client> conn =
                        connectWithRetry(opt, spec, tally);
                    if (!conn) {
                        tally.endpoint(
                            spec, [&](EndpointTotals &e) {
                                e.abandoned +=
                                    opt.requestsPerClient;
                            });
                        return;
                    }
                    openLoopClient(opt, c, tally,
                                   std::move(*conn), spec);
                } else {
                    clusterClosedLoopClient(opt, c, tally);
                }
                return;
            }
            if (opt.openRatePerSec > 0)
                openLoopClient(opt, c, tally, connectTarget(opt));
            else
                closedLoopClient(opt, c, tally, connectTarget(opt));
        });
    for (std::thread &t : threads)
        t.join();
    return tally.report;
}

bool
langFromName(const std::string &name, harness::Lang &out)
{
    auto lower = [](std::string s) {
        for (char &c : s)
            c = (char)std::tolower((unsigned char)c);
        return s;
    };
    std::string want = lower(name);
    for (int i = 0; i <= (int)harness::Lang::TclBytecode; ++i) {
        if (want == lower(harness::langName((harness::Lang)i))) {
            out = (harness::Lang)i;
            return true;
        }
    }
    if (want == "jvm")
        out = harness::Lang::Java;
    else if (want == "jvm-quick")
        out = harness::Lang::JavaQuick;
    else if (want == "threaded")
        out = harness::Lang::MipsiThreaded;
    else
        return false;
    return true;
}

} // namespace interp::server
