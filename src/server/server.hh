/**
 * @file
 * interpd: the interpreter-as-a-service daemon.
 *
 * One thread (the caller of run()) owns a poll() event loop that
 * accepts connections on a Unix-domain socket and/or loopback TCP,
 * frames requests (see protocol.hh) and writes responses; execution
 * happens on a harness::ThreadPool. The structure is the classic
 * single-threaded-accept / pooled-execute serving shape:
 *
 *   admission   EVAL frames enter a bounded queue; when it is full
 *               the request is answered SHED immediately — explicit
 *               backpressure instead of unbounded buffering.
 *   batching    a worker draining the queue takes up to
 *               ServerConfig::maxBatch *same-mode* requests in one
 *               go, so consecutive requests for one interpreter run
 *               back-to-back on a warm program catalog and the
 *               trace::BundleBatch fast path stays hot end-to-end.
 *   deadlines   each request may carry a relative deadline; it is
 *               enforced at dequeue (expired requests are answered
 *               DEADLINE without being executed) and at safepoints
 *               during execution (a sink probes the clock as batches
 *               flush and aborts the run).
 *   containment every request executes under a ScopedFatalThrow: a
 *               poisoned program (bad source, budget misuse, corrupt
 *               trace) fails that one response as ERROR, never the
 *               daemon.
 *   stats       the STATS verb renders ServerStats (per-mode
 *               counters, log2 latency histograms, pool gauges) as
 *               JSON.
 *
 * Responses are appended to connection buffers only by the event-loop
 * thread; workers hand finished responses over through a completion
 * queue plus a wake pipe. Clients may pipeline; responses can
 * overtake (a SHED answer arrives before earlier requests finish).
 */

#ifndef INTERP_SERVER_SERVER_HH
#define INTERP_SERVER_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/pool.hh"
#include "harness/runner.hh"
#include "server/protocol.hh"
#include "server/stats.hh"
#include "tier/tier.hh"

namespace interp::server {

struct ServerConfig
{
    /** Unix-domain socket path ("" = no unix listener). A stale file
     *  at the path is unlinked. */
    std::string unixPath;
    /** Loopback TCP port: -1 = no TCP listener, 0 = ephemeral (read
     *  the bound port back via Server::tcpPort()). */
    int tcpPort = -1;
    /** Execution pool size. */
    unsigned workers = 2;
    /** Admission-queue bound; EVALs beyond it are answered SHED. */
    size_t maxQueue = 64;
    /** Max same-mode requests one worker drains in one batch. */
    uint32_t maxBatch = 8;
    /** Directory for kFlagRecordTrace tapes ("" = flag is ignored). */
    std::string recordDir;
    /** Command budget for requests that do not set one. */
    uint64_t defaultMaxCommands = 400'000'000;
    /** Identity reported as "shard_id" in STATS — how a cluster's
     *  aggregator tells one daemon from another ("" = omitted). */
    std::string shardId;
    /** Set SO_REUSEPORT on the TCP listener so several interpd
     *  processes (shards) can share one port, with the kernel
     *  spreading accepts across them — the multi-acceptor scale-out
     *  path that needs no router at all. */
    bool reusePort = false;
    /** Dynamic tier-up of hot named programs (off by default; every
     *  request then runs exactly the mode it asked for). */
    tier::TierConfig tier;
};

/**
 * Compiled-program catalog: resolves EVAL program references to
 * BenchSpecs and keeps what is expensive to rebuild — macro-suite
 * sources read from disk, MIPS images assembled/compiled once — warm
 * across requests. Thread-safe; shared by all workers.
 */
class ProgramCatalog
{
  public:
    /**
     * Spec for @p name under @p mode: a macro-suite benchmark name
     * ("des", "txt2html", ...; the name must exist for the mode's
     * baseline language) or "micro:<op>" from the Table 1 set.
     * fatal() (contained by the caller) on an unknown name.
     */
    harness::BenchSpec resolve(harness::Lang mode,
                               const std::string &name,
                               uint32_t iterations);

    /** Warm-catalog effectiveness so far (STATS "catalog" section).
     *  A resolve() that finds everything warm is a hit; one that has
     *  to build (parse a micro op, assemble a MIPS image) is a miss,
     *  and each expensive build is a load. */
    CatalogCounters counters() const;

  private:
    mutable std::mutex mu;
    CatalogCounters counters_;
    bool loaded = false;
    /** (baseline lang, benchmark name) -> spec with warm image. */
    std::unordered_map<std::string, harness::BenchSpec> macro;
    /** "micro:<op>:<iters>" per baseline lang -> spec. */
    std::unordered_map<std::string, harness::BenchSpec> micro;

    void ensureLoaded();
};

class Server
{
  public:
    explicit Server(const ServerConfig &config);

    /** Unlinks the unix socket and joins the pool. run() must have
     *  returned (or never been called). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind/listen the configured sockets and start the worker pool.
     *  fatal() on any setup error. */
    void start();

    /** Event loop; returns after stop(). Call from one thread only. */
    void run();

    /** Ask run() to return. Callable from any thread and from signal
     *  handlers (one atomic store and one pipe write). */
    void stop();

    /** Actual TCP port after start() (ephemeral port resolution). */
    int tcpPort() const { return boundTcpPort_; }

    const ServerStats &stats() const { return stats_; }
    const ServerConfig &config() const { return cfg; }

  private:
    struct Conn
    {
        int fd = -1;
        RecvBuffer in;   ///< unparsed request bytes
        std::string out; ///< encoded, unsent response bytes
        bool greeted = false; ///< hello verified (protocol.hh)
    };

    /** One admitted EVAL waiting for a worker. */
    struct Pending
    {
        uint64_t connId = 0;
        EvalRequest req;
        std::chrono::steady_clock::time_point arrival;
    };

    struct Completion
    {
        uint64_t connId = 0;
        EvalResponse resp;
    };

    // --- event-loop thread only ------------------------------------------
    void acceptAll(int listen_fd);
    void readConn(uint64_t conn_id);
    void writeConn(uint64_t conn_id);
    void closeConn(uint64_t conn_id);
    void handleFrame(uint64_t conn_id, const std::string &payload);
    void queueResponse(uint64_t conn_id, const EvalResponse &resp);
    void drainCompletions();

    // --- worker threads ---------------------------------------------------
    void drainPending();
    EvalResponse executeOne(const Pending &p, uint64_t queue_us);
    void postCompletion(uint64_t conn_id, EvalResponse resp);
    void wake();

    ServerConfig cfg;
    ProgramCatalog catalog;
    ServerStats stats_;
    tier::TierManager tierMgr;

    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort_ = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::atomic<bool> stopping{false};

    uint64_t nextConnId = 1;
    std::unordered_map<uint64_t, Conn> conns;

    std::unique_ptr<harness::ThreadPool> pool;

    std::mutex pendingMu;
    std::deque<Pending> pending;

    std::mutex completionMu;
    std::vector<Completion> completions;
};

} // namespace interp::server

#endif // INTERP_SERVER_SERVER_HH
