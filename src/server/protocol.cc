#include "server/protocol.hh"

#include "tracefile/format.hh"

namespace interp::server {

using tracefile::getU32;
using tracefile::getU64;
using tracefile::putU32;
using tracefile::putU64;

namespace {

constexpr uint8_t kMaxLang = (uint8_t)harness::Lang::TclJit;
constexpr uint8_t kKnownFlags =
    kFlagRecordTrace | kFlagWithMachine | kFlagNeedsInputs;

/** Rewrite the placeholder length prefix once the payload is known. */
void
sealFrame(std::string &out, size_t frame_start)
{
    uint32_t len = (uint32_t)(out.size() - frame_start - 4);
    out[frame_start + 0] = (char)(len & 0xff);
    out[frame_start + 1] = (char)((len >> 8) & 0xff);
    out[frame_start + 2] = (char)((len >> 16) & 0xff);
    out[frame_start + 3] = (char)((len >> 24) & 0xff);
}

bool
getString(const uint8_t *&p, const uint8_t *end, uint32_t max_len,
          std::string &out)
{
    uint32_t len = 0;
    if (!getU32(p, end, len) || len > max_len ||
        (size_t)(end - p) < len)
        return false;
    out.assign((const char *)p, len);
    p += len;
    return true;
}

} // namespace

void
encodeHello(std::string &out)
{
    out += 'I';
    out += 'P';
    out += 'D';
    out += (char)kProtocolVersion;
}

HelloResult
takeHello(std::string &buf)
{
    static const char expect[kHelloBytes] = {'I', 'P', 'D',
                                             (char)kProtocolVersion};
    size_t have = buf.size() < kHelloBytes ? buf.size() : kHelloBytes;
    for (size_t i = 0; i < have; ++i)
        if (buf[i] != expect[i])
            return HelloResult::Mismatch;
    if (have < kHelloBytes)
        return HelloResult::Incomplete;
    buf.erase(0, kHelloBytes);
    return HelloResult::Ok;
}

HelloResult
takeHello(RecvBuffer &buf)
{
    static const char expect[kHelloBytes] = {'I', 'P', 'D',
                                             (char)kProtocolVersion};
    size_t have = buf.size() < kHelloBytes ? buf.size() : kHelloBytes;
    const char *p = buf.data();
    for (size_t i = 0; i < have; ++i)
        if (p[i] != expect[i])
            return HelloResult::Mismatch;
    if (have < kHelloBytes)
        return HelloResult::Incomplete;
    buf.consume(kHelloBytes);
    return HelloResult::Ok;
}

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok: return "OK";
      case Status::Shed: return "SHED";
      case Status::Deadline: return "DEADLINE";
      case Status::Error: return "ERROR";
      default: return "?";
    }
}

void
encodeEvalRequest(std::string &out, const EvalRequest &req)
{
    size_t start = out.size();
    putU32(out, 0); // length placeholder
    out.push_back((char)Verb::Eval);
    putU32(out, req.id);
    out.push_back((char)req.mode);
    out.push_back((char)req.flags);
    putU32(out, req.deadlineMs);
    putU64(out, req.maxCommands);
    putU32(out, req.iterations);
    out.push_back((char)req.kind);
    putU32(out, (uint32_t)req.program.size());
    out += req.program;
    sealFrame(out, start);
}

void
encodeStatsRequest(std::string &out, const StatsRequest &req)
{
    size_t start = out.size();
    putU32(out, 0);
    out.push_back((char)Verb::Stats);
    putU32(out, req.id);
    sealFrame(out, start);
}

void
encodeResponse(std::string &out, const EvalResponse &resp)
{
    size_t start = out.size();
    putU32(out, 0);
    putU32(out, resp.id);
    out.push_back((char)resp.status);
    putU64(out, resp.commands);
    putU64(out, resp.instructions);
    putU64(out, resp.cycles);
    putU64(out, resp.queueMicros);
    putU64(out, resp.serviceMicros);
    putU32(out, (uint32_t)resp.result.size());
    out += resp.result;
    sealFrame(out, start);
}

FrameResult
takeFrame(std::string &buf, std::string &payload, uint32_t max_bytes)
{
    if (buf.size() < 4)
        return FrameResult::Incomplete;
    const uint8_t *p = (const uint8_t *)buf.data();
    uint32_t len = (uint32_t)p[0] | ((uint32_t)p[1] << 8) |
                   ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
    if (len > max_bytes)
        return FrameResult::Malformed;
    if (buf.size() < (size_t)4 + len)
        return FrameResult::Incomplete;
    payload.assign(buf, 4, len);
    buf.erase(0, (size_t)4 + len);
    return FrameResult::Frame;
}

FrameResult
takeFrame(RecvBuffer &buf, std::string &payload, uint32_t max_bytes)
{
    if (buf.size() < 4)
        return FrameResult::Incomplete;
    const uint8_t *p = (const uint8_t *)buf.data();
    uint32_t len = (uint32_t)p[0] | ((uint32_t)p[1] << 8) |
                   ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
    if (len > max_bytes)
        return FrameResult::Malformed;
    if (buf.size() < (size_t)4 + len)
        return FrameResult::Incomplete;
    payload.assign(buf.data() + 4, len);
    buf.consume((size_t)4 + len);
    return FrameResult::Frame;
}

uint8_t
requestVerb(const std::string &payload)
{
    return payload.empty() ? 0 : (uint8_t)payload[0];
}

bool
decodeEvalRequest(const std::string &payload, EvalRequest &req)
{
    const uint8_t *p = (const uint8_t *)payload.data();
    const uint8_t *end = p + payload.size();
    if (p == end || *p++ != (uint8_t)Verb::Eval)
        return false;
    if (!getU32(p, end, req.id))
        return false;
    if (p == end)
        return false;
    uint8_t mode = *p++;
    if (mode > kMaxLang)
        return false;
    req.mode = (harness::Lang)mode;
    if (p == end)
        return false;
    req.flags = *p++;
    if (req.flags & ~kKnownFlags)
        return false;
    if (!getU32(p, end, req.deadlineMs) ||
        !getU64(p, end, req.maxCommands) ||
        !getU32(p, end, req.iterations))
        return false;
    if (p == end)
        return false;
    uint8_t kind = *p++;
    if (kind > (uint8_t)ProgramKind::Inline)
        return false;
    req.kind = (ProgramKind)kind;
    if (!getString(p, end, kMaxRequestBytes, req.program))
        return false;
    return p == end;
}

bool
decodeStatsRequest(const std::string &payload, StatsRequest &req)
{
    const uint8_t *p = (const uint8_t *)payload.data();
    const uint8_t *end = p + payload.size();
    if (p == end || *p++ != (uint8_t)Verb::Stats)
        return false;
    if (!getU32(p, end, req.id))
        return false;
    return p == end;
}

bool
decodeResponse(const std::string &payload, EvalResponse &resp)
{
    const uint8_t *p = (const uint8_t *)payload.data();
    const uint8_t *end = p + payload.size();
    if (!getU32(p, end, resp.id))
        return false;
    if (p == end)
        return false;
    uint8_t status = *p++;
    if (status > (uint8_t)Status::Error)
        return false;
    resp.status = (Status)status;
    if (!getU64(p, end, resp.commands) ||
        !getU64(p, end, resp.instructions) ||
        !getU64(p, end, resp.cycles) ||
        !getU64(p, end, resp.queueMicros) ||
        !getU64(p, end, resp.serviceMicros))
        return false;
    if (!getString(p, end, kMaxResponseBytes, resp.result))
        return false;
    return p == end;
}

} // namespace interp::server
