#include "server/stats.hh"

#include <cinttypes>
#include <cstdio>

namespace interp::server {

// --- LatencyHistogram ------------------------------------------------------

int
LatencyHistogram::bucketOf(uint64_t micros)
{
    if (micros == 0)
        return 0;
    int bit = 63 - __builtin_clzll(micros);
    return bit < kBuckets ? bit : kBuckets - 1;
}

uint64_t
LatencyHistogram::bucketFloor(int i)
{
    return i == 0 ? 0 : 1ull << i;
}

uint64_t
LatencyHistogram::bucketCeil(int i)
{
    // Inclusive upper bound: bucket i holds [2^i, 2^(i+1)), so the
    // largest value that can land in it is 2^(i+1)-1; bucket 0 holds
    // {0, 1}.
    return (1ull << (i + 1)) - 1;
}

void
LatencyHistogram::add(uint64_t micros)
{
    ++buckets_[bucketOf(micros)];
    ++total_;
}

void
LatencyHistogram::mergeFrom(const LatencyHistogram &other)
{
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

void
LatencyHistogram::accumulate(int i, uint64_t n)
{
    if (i < 0 || i >= kBuckets)
        return;
    buckets_[i] += n;
    total_ += n;
}

uint64_t
LatencyHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    uint64_t rank = (uint64_t)(q * (double)(total_ - 1));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        // Report the bucket's inclusive upper bound. The old floor
        // answer systematically under-reported: a p99 landing in
        // [2^k, 2^(k+1)) came back as exactly 2^k — up to 2x below
        // the real tail. The ceiling is conservative the safe way
        // for an SLO (exact_quantile <= quantile() always holds,
        // since the true value lies inside the bucket).
        if (seen > rank)
            return bucketCeil(i);
    }
    return bucketCeil(kBuckets - 1);
}

// --- ServerStats -----------------------------------------------------------

void
ServerStats::noteAccepted(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].accepted;
}

void
ServerStats::noteServed(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].served;
}

void
ServerStats::noteShed(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].shed;
}

void
ServerStats::noteDeadline(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].deadline;
}

void
ServerStats::noteFailed(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].failed;
}

void
ServerStats::noteTierRemedy(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].tierUpRemedy;
}

void
ServerStats::noteTierTier2(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].tierUpTier2;
}

void
ServerStats::noteTierJit(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].tierUpJit;
}

void
ServerStats::noteTieredRun(harness::Lang mode)
{
    std::lock_guard<std::mutex> lock(mu);
    ++modes_[(int)mode].tieredRuns;
}

void
ServerStats::noteLatency(uint64_t queue_us, uint64_t service_us)
{
    std::lock_guard<std::mutex> lock(mu);
    queueHisto_.add(queue_us);
    serviceHisto_.add(service_us);
    totalHisto_.add(queue_us + service_us);
}

ModeCounters
ServerStats::mode(harness::Lang lang) const
{
    std::lock_guard<std::mutex> lock(mu);
    return modes_[(int)lang];
}

ModeCounters
ServerStats::totals() const
{
    std::lock_guard<std::mutex> lock(mu);
    ModeCounters sum;
    for (const ModeCounters &m : modes_) {
        sum.accepted += m.accepted;
        sum.served += m.served;
        sum.shed += m.shed;
        sum.deadline += m.deadline;
        sum.failed += m.failed;
        sum.tierUpRemedy += m.tierUpRemedy;
        sum.tierUpTier2 += m.tierUpTier2;
        sum.tierUpJit += m.tierUpJit;
        sum.tieredRuns += m.tieredRuns;
    }
    return sum;
}

namespace {

void
appendCounters(std::string &out, const ModeCounters &c)
{
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "\"accepted\":%" PRIu64 ",\"served\":%" PRIu64
                  ",\"shed\":%" PRIu64 ",\"deadline\":%" PRIu64
                  ",\"failed\":%" PRIu64 ",\"tier_up_remedy\":%" PRIu64
                  ",\"tier_up_tier2\":%" PRIu64
                  ",\"tier_up_jit\":%" PRIu64
                  ",\"tiered_runs\":%" PRIu64,
                  c.accepted, c.served, c.shed, c.deadline, c.failed,
                  c.tierUpRemedy, c.tierUpTier2, c.tierUpJit,
                  c.tieredRuns);
    out += buf;
}

} // namespace

void
appendHistogramJson(std::string &out, const char *name,
                    const LatencyHistogram &h)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64 ",\"p50\":%" PRIu64
                  ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
                  ",\"buckets\":[",
                  name, h.count(), h.quantile(0.50), h.quantile(0.95),
                  h.quantile(0.99));
    out += buf;
    bool first = true;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
        if (!h.bucket(i))
            continue;
        std::snprintf(buf, sizeof(buf), "%s[%" PRIu64 ",%" PRIu64 "]",
                      first ? "" : ",",
                      LatencyHistogram::bucketFloor(i), h.bucket(i));
        out += buf;
        first = false;
    }
    out += "]}";
}

std::string
ServerStats::renderJson(size_t queued_jobs, unsigned idle_workers,
                        const CatalogCounters &catalog,
                        const std::string &shard_id) const
{
    std::lock_guard<std::mutex> lock(mu);
    ModeCounters sum;
    for (const ModeCounters &m : modes_) {
        sum.accepted += m.accepted;
        sum.served += m.served;
        sum.shed += m.shed;
        sum.deadline += m.deadline;
        sum.failed += m.failed;
        sum.tierUpRemedy += m.tierUpRemedy;
        sum.tierUpTier2 += m.tierUpTier2;
        sum.tierUpJit += m.tierUpJit;
        sum.tieredRuns += m.tieredRuns;
    }

    std::string out = "{";
    if (!shard_id.empty()) {
        out += "\"shard_id\":\"";
        out += shard_id;
        out += "\",";
    }
    appendCounters(out, sum);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"queued_jobs\":%zu,\"idle_workers\":%u",
                  queued_jobs, idle_workers);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"catalog\":{\"hits\":%" PRIu64
                  ",\"misses\":%" PRIu64 ",\"loads\":%" PRIu64 "}",
                  catalog.hits, catalog.misses, catalog.loads);
    out += buf;

    out += ",\"modes\":{";
    bool first = true;
    for (int i = 0; i < kModes; ++i) {
        const ModeCounters &m = modes_[i];
        if (!m.accepted)
            continue;
        if (!first)
            out += ',';
        out += '"';
        out += harness::langName((harness::Lang)i);
        out += "\":{";
        appendCounters(out, m);
        out += '}';
        first = false;
    }
    out += '}';

    out += ",\"histograms\":{";
    appendHistogramJson(out, "queue_us", queueHisto_);
    out += ',';
    appendHistogramJson(out, "service_us", serviceHisto_);
    out += ',';
    appendHistogramJson(out, "total_us", totalHisto_);
    out += "}}";
    return out;
}

// --- statsJsonUint ---------------------------------------------------------

namespace {

/** [begin,end) window of @p json holding the value of @p key, or
 *  false. The window for an object value spans its braces. */
bool
valueWindow(const std::string &json, size_t begin, size_t end,
            const std::string &key, size_t &vbegin, size_t &vend)
{
    std::string needle = "\"" + key + "\":";
    size_t at = json.find(needle, begin);
    if (at == std::string::npos || at >= end)
        return false;
    size_t v = at + needle.size();
    if (v >= end)
        return false;
    if (json[v] != '{') {
        vbegin = v;
        vend = end;
        return true;
    }
    int depth = 0;
    for (size_t i = v; i < end; ++i) {
        if (json[i] == '{')
            ++depth;
        else if (json[i] == '}' && --depth == 0) {
            vbegin = v;
            vend = i + 1;
            return true;
        }
    }
    return false;
}

} // namespace

bool
statsJsonUint(const std::string &json, const std::string &path,
              uint64_t &out)
{
    size_t begin = 0, end = json.size();
    size_t seg_start = 0;
    for (;;) {
        size_t dot = path.find('.', seg_start);
        std::string key = path.substr(seg_start, dot == std::string::npos
                                                     ? std::string::npos
                                                     : dot - seg_start);
        size_t vbegin = 0, vend = 0;
        if (!valueWindow(json, begin, end, key, vbegin, vend))
            return false;
        if (dot == std::string::npos) {
            uint64_t value = 0;
            size_t i = vbegin;
            if (i >= vend || json[i] < '0' || json[i] > '9')
                return false;
            while (i < vend && json[i] >= '0' && json[i] <= '9')
                value = value * 10 + (uint64_t)(json[i++] - '0');
            out = value;
            return true;
        }
        begin = vbegin;
        end = vend;
        seg_start = dot + 1;
    }
}

bool
statsJsonHistogram(const std::string &json, const std::string &path,
                   LatencyHistogram &out)
{
    // Resolve the dotted path to the histogram object's window.
    size_t begin = 0, end = json.size();
    size_t seg_start = 0;
    for (;;) {
        size_t dot = path.find('.', seg_start);
        std::string key =
            path.substr(seg_start, dot == std::string::npos
                                       ? std::string::npos
                                       : dot - seg_start);
        size_t vbegin = 0, vend = 0;
        if (!valueWindow(json, begin, end, key, vbegin, vend))
            return false;
        begin = vbegin;
        end = vend;
        if (dot == std::string::npos)
            break;
        seg_start = dot + 1;
    }

    const std::string needle = "\"buckets\":[";
    size_t at = json.find(needle, begin);
    if (at == std::string::npos || at >= end)
        return false;
    size_t i = at + needle.size();
    auto parseUint = [&](uint64_t &value) {
        if (i >= end || json[i] < '0' || json[i] > '9')
            return false;
        value = 0;
        while (i < end && json[i] >= '0' && json[i] <= '9')
            value = value * 10 + (uint64_t)(json[i++] - '0');
        return true;
    };
    while (i < end && json[i] != ']') {
        if (json[i] == ',') {
            ++i;
            continue;
        }
        if (json[i] != '[')
            return false;
        ++i;
        uint64_t floor = 0, count = 0;
        if (!parseUint(floor) || i >= end || json[i] != ',')
            return false;
        ++i;
        if (!parseUint(count) || i >= end || json[i] != ']')
            return false;
        ++i;
        out.accumulate(LatencyHistogram::bucketOf(floor), count);
    }
    return i < end && json[i] == ']';
}

} // namespace interp::server
