#include "server/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "harness/record_replay.hh"
#include "minic/compile.hh"
#include "support/logging.hh"
#include "tracefile/writer.hh"

namespace interp::server {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

namespace {

/**
 * Thrown by DeadlineSink at a safepoint. Deliberately not a
 * std::exception: executeOne() must tell "the deadline fired" apart
 * from "the program failed" (FatalError and friends), and catching it
 * first by distinct type is the cheapest way to keep the two paths
 * separate.
 */
struct DeadlineExpired
{
};

/**
 * Safepoint deadline enforcement: a passive sink that probes the
 * monotonic clock whenever the execution delivers events (every full
 * BundleBatch and every partial flush) and aborts the run by
 * exception once the deadline has passed. FlushOnExit skips the
 * tail flush during this unwind, so no sink sees events mid-abort.
 */
class DeadlineSink : public trace::Sink
{
  public:
    explicit DeadlineSink(steady_clock::time_point deadline)
        : deadline_(deadline)
    {
    }

    void onBundle(const trace::Bundle &) override { check(); }
    void onBatch(const trace::BundleBatch &) override { check(); }

  private:
    void
    check()
    {
        if (steady_clock::now() >= deadline_)
            throw DeadlineExpired{};
    }

    steady_clock::time_point deadline_;
};

uint64_t
elapsedMicros(steady_clock::time_point from, steady_clock::time_point to)
{
    return (uint64_t)duration_cast<microseconds>(to - from).count();
}

std::string
catalogKey(harness::Lang base, const std::string &name)
{
    return std::string(harness::langName(base)) + "/" + name;
}

} // namespace

// --- ProgramCatalog --------------------------------------------------------

void
ProgramCatalog::ensureLoaded()
{
    if (loaded)
        return;
    for (harness::BenchSpec &spec : harness::macroSuite()) {
        std::string key = catalogKey(spec.lang, spec.name);
        macro.emplace(std::move(key), std::move(spec));
    }
    loaded = true;
}

harness::BenchSpec
ProgramCatalog::resolve(harness::Lang mode, const std::string &name,
                        uint32_t iterations)
{
    using harness::Lang;
    Lang base = harness::baselineOf(mode);
    std::lock_guard<std::mutex> lock(mu);

    if (name.rfind("micro:", 0) == 0) {
        std::string op = name.substr(6);
        int iters = iterations ? (int)iterations
                               : harness::microIterations(base);
        std::string key =
            catalogKey(base, op) + "/" + std::to_string(iters);
        auto it = micro.find(key);
        if (it == micro.end()) {
            ++counters_.misses;
            ++counters_.loads;
            // microBench fatal()s on an unknown op; the caller's
            // ScopedFatalThrow turns that into an ERROR response.
            it = micro
                     .emplace(std::move(key),
                              harness::microBench(base, op, iters))
                     .first;
            if (base == Lang::Java)
                it->second.module =
                    std::make_shared<const jvm::Module>(
                        minic::compileBytecode(it->second.source,
                                               it->second.name));
        } else {
            ++counters_.hits;
        }
        harness::BenchSpec spec = it->second;
        spec.lang = mode;
        return spec;
    }

    ensureLoaded();
    auto it = macro.find(catalogKey(base, name));
    // The C column of the macro suite only has des; the other MiniC
    // programs are shared with MIPSI, so fall through to those specs.
    if (it == macro.end() && base == Lang::C)
        it = macro.find(catalogKey(Lang::Mipsi, name));
    if (it == macro.end())
        fatal("interpd: unknown %s benchmark \"%s\"",
              harness::langName(base), name.c_str());

    harness::BenchSpec &cached = it->second;
    Lang cached_base = harness::baselineOf(cached.lang);
    if ((cached_base == Lang::C || cached_base == Lang::Mipsi) &&
        !cached.image) {
        ++counters_.misses;
        ++counters_.loads;
        // Warm instance: assemble the guest image once and share it
        // across every later request for this program.
        cached.image = std::make_shared<mips::Image>(
            minic::compileMips(cached.source, cached.name));
    } else if (cached_base == Lang::Java && !cached.module) {
        ++counters_.misses;
        ++counters_.loads;
        // Compile the jvm module once and share it. Sharing is safe
        // only because requests never mutate it: jvm-quick and tier-2
        // execute shared modules through immutable published
        // artifacts, and jvm::Vm refuses in-place quickening of a
        // shared module outright.
        cached.module = std::make_shared<const jvm::Module>(
            minic::compileBytecode(cached.source, cached.name));
    } else {
        ++counters_.hits;
    }
    harness::BenchSpec spec = cached;
    spec.lang = mode;
    return spec;
}

CatalogCounters
ProgramCatalog::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters_;
}

// --- Server lifecycle ------------------------------------------------------

Server::Server(const ServerConfig &config)
    : cfg(config), tierMgr(config.tier)
{
}

Server::~Server()
{
    {
        // Unexecuted admissions die with the daemon; queued drainer
        // jobs then find nothing and return, so the pool joins fast.
        std::lock_guard<std::mutex> lock(pendingMu);
        pending.clear();
    }
    pool.reset();
    for (auto &entry : conns)
        ::close(entry.second.fd);
    if (unixFd >= 0)
        ::close(unixFd);
    if (tcpFd >= 0)
        ::close(tcpFd);
    if (wakeRead >= 0)
        ::close(wakeRead);
    if (wakeWrite >= 0)
        ::close(wakeWrite);
    if (!cfg.unixPath.empty())
        ::unlink(cfg.unixPath.c_str());
}

void
Server::start()
{
    if (cfg.unixPath.empty() && cfg.tcpPort < 0)
        fatal("interpd: no listener configured "
              "(need a unix path or a tcp port)");

    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0)
        fatal("interpd: pipe2: %s", std::strerror(errno));
    wakeRead = pipefd[0];
    wakeWrite = pipefd[1];

    if (!cfg.unixPath.empty()) {
        sockaddr_un sun{};
        if (cfg.unixPath.size() >= sizeof(sun.sun_path))
            fatal("interpd: socket path too long: %s",
                  cfg.unixPath.c_str());
        unixFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK |
                                       SOCK_CLOEXEC,
                          0);
        if (unixFd < 0)
            fatal("interpd: socket(AF_UNIX): %s", std::strerror(errno));
        sun.sun_family = AF_UNIX;
        std::memcpy(sun.sun_path, cfg.unixPath.c_str(),
                    cfg.unixPath.size() + 1);
        ::unlink(cfg.unixPath.c_str());
        if (::bind(unixFd, (const sockaddr *)&sun, sizeof(sun)) != 0)
            fatal("interpd: bind %s: %s", cfg.unixPath.c_str(),
                  std::strerror(errno));
        if (::listen(unixFd, 128) != 0)
            fatal("interpd: listen %s: %s", cfg.unixPath.c_str(),
                  std::strerror(errno));
    }

    if (cfg.tcpPort >= 0) {
        tcpFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                      SOCK_CLOEXEC,
                         0);
        if (tcpFd < 0)
            fatal("interpd: socket(AF_INET): %s", std::strerror(errno));
        int one = 1;
        ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (cfg.reusePort &&
            ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEPORT, &one,
                         sizeof(one)) != 0)
            fatal("interpd: SO_REUSEPORT: %s", std::strerror(errno));
        sockaddr_in sin{};
        sin.sin_family = AF_INET;
        sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        sin.sin_port = htons((uint16_t)cfg.tcpPort);
        if (::bind(tcpFd, (const sockaddr *)&sin, sizeof(sin)) != 0)
            fatal("interpd: bind 127.0.0.1:%d: %s", cfg.tcpPort,
                  std::strerror(errno));
        if (::listen(tcpFd, 128) != 0)
            fatal("interpd: listen tcp: %s", std::strerror(errno));
        socklen_t len = sizeof(sin);
        if (::getsockname(tcpFd, (sockaddr *)&sin, &len) != 0)
            fatal("interpd: getsockname: %s", std::strerror(errno));
        boundTcpPort_ = ntohs(sin.sin_port);
    }

    pool = std::make_unique<harness::ThreadPool>(cfg.workers);
}

void
Server::stop()
{
    stopping.store(true, std::memory_order_release);
    wake();
}

void
Server::wake()
{
    char byte = 1;
    // EAGAIN means a wake byte is already pending — good enough.
    (void)!::write(wakeWrite, &byte, 1);
}

// --- event loop ------------------------------------------------------------

void
Server::run()
{
    std::vector<pollfd> fds;
    std::vector<uint64_t> ids;
    while (!stopping.load(std::memory_order_acquire)) {
        fds.clear();
        ids.clear();
        fds.push_back({wakeRead, POLLIN, 0});
        ids.push_back(0);
        if (unixFd >= 0) {
            fds.push_back({unixFd, POLLIN, 0});
            ids.push_back(0);
        }
        if (tcpFd >= 0) {
            fds.push_back({tcpFd, POLLIN, 0});
            ids.push_back(0);
        }
        for (auto &entry : conns) {
            short events = POLLIN;
            if (!entry.second.out.empty())
                events |= POLLOUT;
            fds.push_back({entry.second.fd, events, 0});
            ids.push_back(entry.first);
        }

        int n = ::poll(fds.data(), (nfds_t)fds.size(), -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("interpd: poll: %s", std::strerror(errno));
        }
        if (stopping.load(std::memory_order_acquire))
            break;

        if (fds[0].revents & POLLIN) {
            char drain[256];
            while (::read(wakeRead, drain, sizeof(drain)) > 0) {
            }
        }
        drainCompletions();

        size_t i = 1;
        if (unixFd >= 0) {
            if (fds[i].revents & POLLIN)
                acceptAll(unixFd);
            ++i;
        }
        if (tcpFd >= 0) {
            if (fds[i].revents & POLLIN)
                acceptAll(tcpFd);
            ++i;
        }
        for (; i < fds.size(); ++i) {
            uint64_t id = ids[i];
            if (fds[i].revents &
                (POLLIN | POLLHUP | POLLERR | POLLNVAL))
                readConn(id);
            if (conns.count(id) && (fds[i].revents & POLLOUT))
                writeConn(id);
        }
    }
}

void
Server::acceptAll(int listen_fd)
{
    for (;;) {
        int fd = ::accept4(listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN, or a transient per-connection error
        }
        Conn conn;
        conn.fd = fd;
        conns.emplace(nextConnId++, std::move(conn));
    }
}

void
Server::closeConn(uint64_t conn_id)
{
    auto it = conns.find(conn_id);
    if (it == conns.end())
        return;
    ::close(it->second.fd);
    conns.erase(it);
}

void
Server::readConn(uint64_t conn_id)
{
    auto it = conns.find(conn_id);
    if (it == conns.end())
        return;
    char buf[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(it->second.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            it->second.in.append(buf, (size_t)n);
            continue;
        }
        if (n == 0) {
            closeConn(conn_id);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConn(conn_id);
        return;
    }

    std::string payload;
    for (;;) {
        auto conn = conns.find(conn_id);
        if (conn == conns.end())
            return; // a handled frame closed the connection
        if (!conn->second.greeted) {
            switch (takeHello(conn->second.in)) {
              case HelloResult::Incomplete:
                return;
              case HelloResult::Mismatch: {
                // Contained protocol failure: one diagnosable ERROR
                // reply (id 0 — no request was parsed), best-effort
                // flush, close. The daemon itself is unharmed.
                EvalResponse resp;
                resp.id = 0;
                resp.status = Status::Error;
                resp.result = "protocol mismatch: expected IPD hello "
                              "version " +
                              std::to_string(kProtocolVersion);
                queueResponse(conn_id, resp);
                writeConn(conn_id);
                closeConn(conn_id);
                return;
              }
              case HelloResult::Ok:
                conn->second.greeted = true;
                break;
            }
        }
        FrameResult r =
            takeFrame(conn->second.in, payload, kMaxRequestBytes);
        if (r == FrameResult::Incomplete)
            return;
        if (r == FrameResult::Malformed) {
            closeConn(conn_id);
            return;
        }
        handleFrame(conn_id, payload);
    }
}

void
Server::writeConn(uint64_t conn_id)
{
    auto it = conns.find(conn_id);
    if (it == conns.end())
        return;
    Conn &c = it->second;
    while (!c.out.empty()) {
        ssize_t n =
            ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            c.out.erase(0, (size_t)n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        closeConn(conn_id);
        return;
    }
}

void
Server::queueResponse(uint64_t conn_id, const EvalResponse &resp)
{
    auto it = conns.find(conn_id);
    if (it == conns.end())
        return; // client went away; drop the response
    encodeResponse(it->second.out, resp);
}

void
Server::drainCompletions()
{
    std::vector<Completion> done;
    {
        std::lock_guard<std::mutex> lock(completionMu);
        done.swap(completions);
    }
    for (Completion &c : done)
        queueResponse(c.connId, c.resp);
}

void
Server::handleFrame(uint64_t conn_id, const std::string &payload)
{
    switch (requestVerb(payload)) {
      case (uint8_t)Verb::Eval: {
        EvalRequest req;
        if (!decodeEvalRequest(payload, req)) {
            closeConn(conn_id);
            return;
        }
        stats_.noteAccepted(req.mode);
        uint32_t req_id = req.id;
        harness::Lang mode = req.mode;
        bool admitted = false;
        {
            std::lock_guard<std::mutex> lock(pendingMu);
            if (pending.size() < cfg.maxQueue) {
                Pending p;
                p.connId = conn_id;
                p.req = std::move(req);
                p.arrival = steady_clock::now();
                pending.push_back(std::move(p));
                admitted = true;
            }
        }
        if (admitted) {
            pool->submit([this] { drainPending(); });
        } else {
            stats_.noteShed(mode);
            EvalResponse resp;
            resp.id = req_id;
            resp.status = Status::Shed;
            resp.result = "admission queue full";
            queueResponse(conn_id, resp);
        }
        return;
      }
      case (uint8_t)Verb::Stats: {
        StatsRequest req;
        if (!decodeStatsRequest(payload, req)) {
            closeConn(conn_id);
            return;
        }
        EvalResponse resp;
        resp.id = req.id;
        resp.status = Status::Ok;
        resp.result =
            stats_.renderJson(pool->queuedCount(), pool->idleWorkers(),
                              catalog.counters(), cfg.shardId);
        queueResponse(conn_id, resp);
        return;
      }
      default:
        closeConn(conn_id);
    }
}

// --- execution (worker threads) --------------------------------------------

void
Server::postCompletion(uint64_t conn_id, EvalResponse resp)
{
    {
        std::lock_guard<std::mutex> lock(completionMu);
        completions.push_back({conn_id, std::move(resp)});
    }
    wake();
}

void
Server::drainPending()
{
    // Take up to maxBatch requests for ONE mode (the oldest one),
    // leaving other modes in place and in order: consecutive requests
    // for the same interpreter run back-to-back on a warm catalog.
    // Every admission submitted one drainer job, so even a drainer
    // that batches several requests leaves enough later drainers to
    // empty the queue.
    std::vector<Pending> batch;
    {
        std::lock_guard<std::mutex> lock(pendingMu);
        if (pending.empty())
            return;
        harness::Lang mode = pending.front().req.mode;
        for (auto it = pending.begin();
             it != pending.end() && batch.size() < cfg.maxBatch;) {
            if (it->req.mode == mode) {
                batch.push_back(std::move(*it));
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
    }

    for (const Pending &p : batch) {
        auto dequeue = steady_clock::now();
        uint64_t queue_us = elapsedMicros(p.arrival, dequeue);
        EvalResponse resp;
        if (p.req.deadlineMs != kNoDeadline &&
            dequeue - p.arrival >= milliseconds(p.req.deadlineMs)) {
            // Expired while queued: answer without executing.
            resp.id = p.req.id;
            resp.status = Status::Deadline;
            resp.queueMicros = queue_us;
            resp.result = "deadline expired before execution";
            stats_.noteDeadline(p.req.mode);
        } else {
            resp = executeOne(p, queue_us);
            switch (resp.status) {
              case Status::Ok:
                stats_.noteServed(p.req.mode);
                stats_.noteLatency(resp.queueMicros,
                                   resp.serviceMicros);
                break;
              case Status::Deadline:
                stats_.noteDeadline(p.req.mode);
                break;
              default:
                stats_.noteFailed(p.req.mode);
                stats_.noteLatency(resp.queueMicros,
                                   resp.serviceMicros);
                break;
            }
        }
        postCompletion(p.connId, std::move(resp));
    }
}

EvalResponse
Server::executeOne(const Pending &p, uint64_t queue_us)
{
    const EvalRequest &req = p.req;
    EvalResponse resp;
    resp.id = req.id;
    resp.queueMicros = queue_us;

    auto service_start = steady_clock::now();
    ScopedFatalThrow contain;
    try {
        harness::BenchSpec spec;
        if (req.kind == ProgramKind::Named) {
            spec = catalog.resolve(req.mode, req.program,
                                   req.iterations);
        } else {
            spec.lang = req.mode;
            spec.name = "inline";
            spec.source = req.program;
            spec.needsInputs = (req.flags & kFlagNeedsInputs) != 0;
        }
        spec.maxCommands = req.maxCommands ? req.maxCommands
                                           : cfg.defaultMaxCommands;

        // Dynamic tier-up: a hot named program is promoted to its
        // remedy / tier-2 mode. Only named programs tier (inline
        // sources have no stable identity to accumulate hotness on)
        // and only baseline modes are ever upgraded — a client that
        // asked for a remedy mode gets exactly that mode.
        tier::TierPlan plan;
        jvm::PairProfile collected;
        bool collecting = false;
        bool tiering =
            cfg.tier.enabled && req.kind == ProgramKind::Named;
        if (tiering) {
            plan = tierMgr.plan(req.mode, req.program);
            if (plan.level > 0) {
                spec.lang = plan.lang;
                stats_.noteTieredRun(req.mode);
            }
            if (plan.promotedRemedy)
                stats_.noteTierRemedy(req.mode);
            if (plan.promotedTier2)
                stats_.noteTierTier2(req.mode);
            if (plan.promotedJit)
                stats_.noteTierJit(req.mode);
            if (plan.artifact)
                spec.jvmArtifact = std::move(plan.artifact);
            if (plan.pairs)
                spec.jvmPairs = std::move(plan.pairs);
            if (plan.publish)
                spec.publishJvmArtifact = std::move(plan.publish);
            if (plan.jitArtifact)
                spec.jitArtifact = std::move(plan.jitArtifact);
            if (plan.publishJit)
                spec.publishJitArtifact = std::move(plan.publishJit);
            if (plan.collectPairs) {
                collecting = true;
                spec.jvmPairSink = &collected;
            }
        }

        std::vector<trace::Sink *> sinks;
        DeadlineSink deadline(p.arrival +
                              milliseconds(req.deadlineMs));
        if (req.deadlineMs != kNoDeadline)
            sinks.push_back(&deadline);

        std::unique_ptr<tracefile::TraceWriter> writer;
        if ((req.flags & kFlagRecordTrace) && !cfg.recordDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(cfg.recordDir, ec);
            if (ec)
                fatal("interpd: cannot create trace dir %s: %s",
                      cfg.recordDir.c_str(), ec.message().c_str());
            // Suffix the request id so concurrent requests for the
            // same program never race on one tape.
            harness::BenchSpec named = spec;
            named.name += "-r" + std::to_string(req.id);
            writer = std::make_unique<tracefile::TraceWriter>(
                harness::traceFilePath(cfg.recordDir, named),
                harness::langName(spec.lang), spec.name);
            sinks.push_back(writer.get());
        }

        bool with_machine = (req.flags & kFlagWithMachine) != 0;
        harness::Measurement m =
            harness::run(spec, sinks, nullptr, with_machine);
        if (tiering)
            tierMgr.noteRun(req.mode, req.program, m.commands,
                            collecting ? &collected : nullptr);
        if (writer) {
            writer->setRunResult(m.programBytes, m.commands,
                                 m.finished);
            writer->setCommandNames(m.commandNames);
            writer->finish();
        }

        resp.status = Status::Ok;
        resp.commands = m.commands;
        resp.instructions = m.profile.instructions();
        resp.cycles = m.cycles;
        resp.result = std::move(m.stdoutText);
        if (resp.result.size() > kMaxResponseBytes)
            resp.result.resize(kMaxResponseBytes);
    } catch (const DeadlineExpired &) {
        resp.status = Status::Deadline;
        resp.commands = 0;
        resp.instructions = 0;
        resp.cycles = 0;
        resp.result = "deadline expired during execution";
    } catch (const std::exception &e) {
        // FatalError from a poisoned program, bad catalog name, ...
        resp.status = Status::Error;
        resp.commands = 0;
        resp.instructions = 0;
        resp.cycles = 0;
        resp.result = e.what();
    }
    resp.serviceMicros =
        elapsedMicros(service_start, steady_clock::now());
    return resp;
}

} // namespace interp::server
