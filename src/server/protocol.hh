/**
 * @file
 * Wire protocol of interpd, the interpreter-as-a-service daemon.
 *
 * Both directions speak length-prefixed binary frames over a stream
 * socket (Unix-domain or loopback TCP). A connection opens with a
 * 4-byte hello — "IPD" plus a protocol version byte — sent by the
 * connecting side before its first frame; the accepting side answers
 * a mismatch with one contained-fatal ERROR response (id 0) and
 * closes, so a client that connected something else entirely (or an
 * old client) gets a diagnosable reply instead of silence, and a
 * garbage-spewing peer cannot make the daemon misparse byte soup as
 * frame lengths. After the hello:
 *
 *   frame    u32 payload length (little-endian), then the payload.
 *
 *   request  u8 verb, u32 request id, then per-verb fields:
 *     EVAL   u8 mode (harness::Lang), u8 flags, u32 deadline_ms,
 *            u64 max_commands (0 = server default), u32 iterations
 *            (micro programs; 0 = per-language default), u8 program
 *            kind (named catalog entry or inline source), u32 len +
 *            bytes of the program name/source.
 *     STATS  no further fields; the response carries the counters as
 *            JSON in its result bytes.
 *
 *   response u32 request id (echoed), u8 status, u64 virtual commands
 *            retired, u64 native instructions emitted, u64 simulated
 *            cycles (0 unless kFlagWithMachine), u64 queue micros,
 *            u64 service micros, u32 len + result bytes (program
 *            stdout for OK, an error message for ERROR, JSON for
 *            STATS).
 *
 * Requests carry client-chosen ids and responses echo them, so a
 * client may pipeline; the server may answer out of submission order
 * (SHED and DEADLINE responses overtake execution). Everything is
 * serialized explicitly via the little-endian helpers shared with the
 * trace-file format; no structs are written raw.
 */

#ifndef INTERP_SERVER_PROTOCOL_HH
#define INTERP_SERVER_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "harness/runner.hh"

namespace interp::server {

// --- connection hello ------------------------------------------------------

/** Wire protocol version; bumped on any incompatible change. */
constexpr uint8_t kProtocolVersion = 1;

/** Bytes a connecting side must send before its first frame. */
constexpr size_t kHelloBytes = 4;

enum class HelloResult : uint8_t
{
    Incomplete, ///< need more bytes (no mismatch so far)
    Ok,         ///< hello consumed from the buffer
    Mismatch,   ///< wrong magic or version; reply ERROR and close
};

/** Append the 4-byte hello ("IPD" + version) to @p out. */
void encodeHello(std::string &out);

/**
 * Inspect the front of @p buf: consume a valid hello (Ok), report a
 * wrong byte as soon as it appears (Mismatch — garbage is rejected
 * on the first byte, not after four), or ask for more (Incomplete).
 */
HelloResult takeHello(std::string &buf);

// --- receive buffering -----------------------------------------------------

/**
 * Receive-side stream buffer that drains frames in amortized O(1).
 *
 * The serve paths used to consume each parsed frame with
 * buf.erase(0, 4 + len), which memmoves the whole remainder once per
 * frame: a pipelined burst of F frames totalling B bytes cost
 * O(F * B) — quadratic in the burst, and entirely the client's
 * choice. RecvBuffer consumes by advancing a read offset instead;
 * the consumed prefix is dropped at most once per poll cycle (the
 * first append() after a drain), so each received byte is moved a
 * bounded number of times no matter how many frames arrive at once.
 */
class RecvBuffer
{
  public:
    /** Append @p n received bytes. The first append after frames
     *  were consumed also compacts — once per poll cycle, the
     *  erase-per-frame this type exists to avoid never happens. */
    void append(const char *data, size_t n)
    {
        compact();
        data_.append(data, n);
    }

    /** Unconsumed bytes. */
    size_t size() const { return data_.size() - off_; }
    bool empty() const { return size() == 0; }
    /** Front of the unconsumed bytes (valid for size() bytes). */
    const char *data() const { return data_.data() + off_; }

    /** Advance the read offset past @p n consumed bytes. */
    void consume(size_t n)
    {
        off_ += n;
        if (off_ > data_.size())
            off_ = data_.size(); // defensive clamp; callers bound n
    }

    /** Drop the consumed prefix now (append() does this lazily). */
    void compact()
    {
        if (off_ == 0)
            return;
        data_.erase(0, off_);
        off_ = 0;
    }

    void clear()
    {
        data_.clear();
        off_ = 0;
    }

  private:
    std::string data_;
    size_t off_ = 0; ///< bytes of data_ already consumed
};

/** takeHello over a RecvBuffer (the serve paths' form). */
HelloResult takeHello(RecvBuffer &buf);

// --- frame limits ----------------------------------------------------------

/** Upper bound on a request payload; larger frames are a protocol
 *  error and close the connection (graceful degradation, not OOM). */
constexpr uint32_t kMaxRequestBytes = 1u << 20;

/** Upper bound on a response payload (stdout of a served program). */
constexpr uint32_t kMaxResponseBytes = 64u << 20;

// --- verbs and statuses ----------------------------------------------------

enum class Verb : uint8_t
{
    Eval = 1,  ///< run one program under instrumentation
    Stats = 2, ///< fetch the daemon's counters as JSON
};

enum class Status : uint8_t
{
    Ok = 0,       ///< executed; result bytes are the program's stdout
    Shed = 1,     ///< admission queue full, request not executed
    Deadline = 2, ///< deadline expired (at dequeue or a safepoint)
    Error = 3,    ///< contained failure; result bytes say why
};

const char *statusName(Status status);

// --- EVAL request flags ----------------------------------------------------

/** Also record the run's trace into the server's --record-dir. */
constexpr uint8_t kFlagRecordTrace = 1u << 0;
/** Simulate timing (Table 3 machine); the response's cycles field. */
constexpr uint8_t kFlagWithMachine = 1u << 1;
/** Install the standard workload input files (inline sources only;
 *  catalog entries already know whether they need them). */
constexpr uint8_t kFlagNeedsInputs = 1u << 2;

/** How the EVAL request names its program. */
enum class ProgramKind : uint8_t
{
    Named = 0,  ///< catalog entry: a macro-suite name or "micro:<op>"
    Inline = 1, ///< program source carried in the request
};

/** Deadline value meaning "no deadline". Zero means "already
 *  expired": the request is admitted, counted, and answered DEADLINE
 *  at dequeue without being executed — the client-side probe for the
 *  deadline path. */
constexpr uint32_t kNoDeadline = 0xffffffffu;

// --- messages --------------------------------------------------------------

struct EvalRequest
{
    uint32_t id = 0;
    harness::Lang mode = harness::Lang::Tcl;
    uint8_t flags = 0;
    uint32_t deadlineMs = kNoDeadline;
    uint64_t maxCommands = 0; ///< 0 = server default budget
    uint32_t iterations = 0;  ///< micro catalog entries; 0 = default
    ProgramKind kind = ProgramKind::Named;
    std::string program;      ///< catalog name or inline source
};

struct StatsRequest
{
    uint32_t id = 0;
};

struct EvalResponse
{
    uint32_t id = 0;
    Status status = Status::Ok;
    uint64_t commands = 0;     ///< virtual commands retired
    uint64_t instructions = 0; ///< native instructions emitted
    uint64_t cycles = 0;       ///< simulated cycles (kFlagWithMachine)
    uint64_t queueMicros = 0;  ///< admission -> dequeue
    uint64_t serviceMicros = 0;///< execution time on the worker
    std::string result;        ///< stdout / error message / JSON
};

// --- encoding --------------------------------------------------------------

/** Append one framed request to @p out. */
void encodeEvalRequest(std::string &out, const EvalRequest &req);
void encodeStatsRequest(std::string &out, const StatsRequest &req);

/** Append one framed response to @p out. */
void encodeResponse(std::string &out, const EvalResponse &resp);

// --- decoding --------------------------------------------------------------

/**
 * Result of looking for one complete frame at the front of a stream
 * buffer.
 */
enum class FrameResult : uint8_t
{
    Incomplete, ///< need more bytes
    Frame,      ///< a complete frame was extracted
    Malformed,  ///< oversized or garbled; close the connection
};

/**
 * If @p buf starts with a complete frame no larger than @p max_bytes,
 * move its payload into @p payload, erase it from @p buf and return
 * Frame. Never blocks; never throws.
 */
FrameResult takeFrame(std::string &buf, std::string &payload,
                      uint32_t max_bytes);

/** takeFrame over a RecvBuffer: consumes by offset, no per-frame
 *  erase (the serve paths' form; see RecvBuffer). */
FrameResult takeFrame(RecvBuffer &buf, std::string &payload,
                      uint32_t max_bytes);

/** Peek a request payload's verb (first byte). 0 on empty. */
uint8_t requestVerb(const std::string &payload);

/** Decode a request payload; false on any malformation. */
bool decodeEvalRequest(const std::string &payload, EvalRequest &req);
bool decodeStatsRequest(const std::string &payload, StatsRequest &req);

/** Decode a response payload; false on any malformation. */
bool decodeResponse(const std::string &payload, EvalResponse &resp);

} // namespace interp::server

#endif // INTERP_SERVER_PROTOCOL_HH
