/**
 * @file
 * interpd observability: monotonic counters and latency histograms.
 *
 * The STATS verb renders one ServerStats snapshot as JSON. Counters
 * are per mode (accepted / served / shed / deadline-missed / failed)
 * and reconcile exactly: accepted == served + shed + deadline +
 * failed once the queue has drained, which the end-to-end test pins
 * against client-observed totals. Latencies go into log2-bucketed
 * histograms (queue wait, service, total), the classic shape for
 * tail-latency reporting: bucket i counts values in [2^i, 2^(i+1))
 * microseconds, with bucket 0 covering [0, 2).
 */

#ifndef INTERP_SERVER_STATS_HH
#define INTERP_SERVER_STATS_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "harness/runner.hh"

namespace interp::server {

/** Log2-bucketed latency histogram (microseconds). */
class LatencyHistogram
{
  public:
    /** Buckets 0..kBuckets-1; the last bucket absorbs the tail. */
    static constexpr int kBuckets = 40;

    void add(uint64_t micros);

    /** Bucket index a value lands in: floor(log2(us)), clamped. */
    static int bucketOf(uint64_t micros);
    /** Inclusive lower bound of bucket @p i in microseconds. */
    static uint64_t bucketFloor(int i);
    /** Inclusive upper bound of bucket @p i (bucket 0 -> 1 us). */
    static uint64_t bucketCeil(int i);

    uint64_t count() const { return total_; }
    uint64_t bucket(int i) const { return buckets_[i]; }

    /** Add @p other's samples to this histogram bucket-by-bucket.
     *  Exact at bucket granularity: merging histograms of two sample
     *  sets equals the histogram of the concatenated samples. The
     *  cluster proxy folds per-shard histograms together with this. */
    void mergeFrom(const LatencyHistogram &other);

    /** Credit @p n samples directly to bucket @p i (histogram
     *  reconstruction from a rendered bucket array). */
    void accumulate(int i, uint64_t n);

    /**
     * Value at quantile @p q in [0,1], resolved to its bucket's
     * inclusive upper bound — coarse (log2) but monotone,
     * allocation-free, and never below the exact quantile (the true
     * value lies somewhere inside the chosen bucket).
     */
    uint64_t quantile(double q) const;

  private:
    uint64_t buckets_[kBuckets] = {};
    uint64_t total_ = 0;
};

/** Warm-catalog effectiveness counters (see ProgramCatalog). */
struct CatalogCounters
{
    uint64_t hits = 0;   ///< resolve() found everything warm
    uint64_t misses = 0; ///< something had to be built
    uint64_t loads = 0;  ///< expensive builds done (compile/assemble)
};

/** Counters for one execution mode. */
struct ModeCounters
{
    uint64_t accepted = 0; ///< EVAL frames admitted (incl. shed)
    uint64_t served = 0;   ///< answered OK
    uint64_t shed = 0;     ///< refused at admission (queue full)
    uint64_t deadline = 0; ///< expired before/while executing
    uint64_t failed = 0;   ///< contained error (bad program, ...)
    // Dynamic tier-up (attributed to the *requested* baseline mode;
    // zero everywhere when tiering is off).
    uint64_t tierUpRemedy = 0; ///< baseline -> remedy promotions
    uint64_t tierUpTier2 = 0;  ///< remedy -> tier-2 promotions
    uint64_t tierUpJit = 0;    ///< tier-2 -> jit promotions
    uint64_t tieredRuns = 0;   ///< requests served at an elevated tier
};

/** All counters of one daemon, behind one mutex (STATS is rare and
 *  per-request updates are a handful of increments). */
class ServerStats
{
  public:
    static constexpr int kModes = (int)harness::Lang::TclJit + 1;

    void noteAccepted(harness::Lang mode);
    void noteServed(harness::Lang mode);
    void noteShed(harness::Lang mode);
    void noteDeadline(harness::Lang mode);
    void noteFailed(harness::Lang mode);

    /** Tier-up accounting, attributed to the requested baseline
     *  @p mode: a promotion crossing into the remedy / tier-2 tier,
     *  and each request that executed above its baseline. */
    void noteTierRemedy(harness::Lang mode);
    void noteTierTier2(harness::Lang mode);
    void noteTierJit(harness::Lang mode);
    void noteTieredRun(harness::Lang mode);

    /** Record one completed (OK/ERROR) request's latencies. */
    void noteLatency(uint64_t queue_us, uint64_t service_us);

    ModeCounters mode(harness::Lang lang) const;
    ModeCounters totals() const;

    /**
     * Render everything as one JSON object (fixed key order, so the
     * output is deterministic given the counters): per-mode counter
     * objects under "modes" for modes with traffic, summed totals at
     * the top level, the three histograms as bucket arrays plus
     * coarse p50/p95/p99, and the pool gauges passed in by the
     * caller. A non-empty @p shard_id is rendered as "shard_id" (the
     * daemon's identity inside a cluster) and @p catalog as a
     * "catalog" section (warm-catalog hits/misses/loads).
     */
    std::string renderJson(size_t queued_jobs, unsigned idle_workers,
                           const CatalogCounters &catalog = {},
                           const std::string &shard_id = "") const;

  private:
    mutable std::mutex mu;
    ModeCounters modes_[kModes];
    LatencyHistogram queueHisto_;
    LatencyHistogram serviceHisto_;
    LatencyHistogram totalHisto_;
};

/**
 * Append `"name":{"count":..,"p50":..,"p95":..,"p99":..,
 * "buckets":[[floor,count],...]}` to @p out — the one rendering of a
 * histogram this protocol has; ServerStats and the cluster proxy's
 * aggregate STATS both emit it, so statsJsonHistogram() can read
 * either back.
 */
void appendHistogramJson(std::string &out, const char *name,
                         const LatencyHistogram &h);

/**
 * Pull one unsigned counter out of a renderJson() document:
 * @p path is dot-separated ("shed", "modes.Tcl.served",
 * "histograms.total_us.p99"). Returns false if absent. A
 * string-scanning parser for exactly the JSON this module emits —
 * loadgen and the tests use it to reconcile counters.
 */
bool statsJsonUint(const std::string &json, const std::string &path,
                   uint64_t &out);

/**
 * Reconstruct the histogram at dot-separated @p path (e.g.
 * "histograms.total_us") of a renderJson() document into @p out,
 * accumulating on top of whatever @p out already holds — parse+merge
 * is the cluster aggregation path. Bucket floors index buckets, so
 * the round trip render -> parse -> render is lossless. False if the
 * path is absent or the bucket array is garbled.
 */
bool statsJsonHistogram(const std::string &json,
                        const std::string &path, LatencyHistogram &out);

} // namespace interp::server

#endif // INTERP_SERVER_STATS_HH
