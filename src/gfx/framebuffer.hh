/**
 * @file
 * Software rasterizer over an in-memory framebuffer.
 *
 * This stands in for the native graphics runtime libraries of the
 * paper's environment (the X server for Tk, AWT's native code for
 * Java 1.0). The graphics-heavy benchmarks (asteroids, mand, Tk
 * hanoi, Tk demos) spend most of their execute instructions inside
 * this library, which is exactly the effect §3.2 attributes to
 * "native" bars in Figure 2.
 *
 * The rasterizer does real work (Bresenham lines, span fills,
 * midpoint circles, a 5x7 bitmap font) so the instruction and data
 * traffic it generates under instrumentation is genuine.
 */

#ifndef INTERP_GFX_FRAMEBUFFER_HH
#define INTERP_GFX_FRAMEBUFFER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace interp::gfx {

/** An 8-bit-per-pixel in-memory framebuffer with drawing primitives. */
class Framebuffer
{
  public:
    Framebuffer(int width, int height);

    int width() const { return fb_width; }
    int height() const { return fb_height; }

    /** Fill the whole framebuffer with @p color. */
    void clear(uint8_t color);

    /** Set one pixel; out-of-bounds writes are clipped. */
    void setPixel(int x, int y, uint8_t color);

    /** Read one pixel; out-of-bounds reads return 0. */
    uint8_t pixel(int x, int y) const;

    /** Bresenham line from (x0,y0) to (x1,y1). */
    void drawLine(int x0, int y0, int x1, int y1, uint8_t color);

    /** Axis-aligned filled rectangle; clipped. */
    void fillRect(int x, int y, int w, int h, uint8_t color);

    /** Axis-aligned rectangle outline; clipped. */
    void drawRect(int x, int y, int w, int h, uint8_t color);

    /** Midpoint circle outline centered at (cx,cy). */
    void drawCircle(int cx, int cy, int radius, uint8_t color);

    /** Filled circle. */
    void fillCircle(int cx, int cy, int radius, uint8_t color);

    /** Draw ASCII text with a built-in 5x7 font; returns advance in px. */
    int drawText(int x, int y, std::string_view text, uint8_t color);

    /** Number of pixels whose value equals @p color. */
    int64_t countPixels(uint8_t color) const;

    /** FNV-1a hash of the pixel contents, for golden tests. */
    uint64_t checksum() const;

    /** Raw pixel storage (row-major). */
    const std::vector<uint8_t> &pixels() const { return data; }

  private:
    int fb_width;
    int fb_height;
    std::vector<uint8_t> data;
};

} // namespace interp::gfx

#endif // INTERP_GFX_FRAMEBUFFER_HH
