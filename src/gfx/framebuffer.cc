#include "gfx/framebuffer.hh"

#include <algorithm>
#include <cstdlib>

#include "support/logging.hh"

namespace interp::gfx {

namespace {

/**
 * 5x7 bitmap font covering ASCII 32..90 (uppercase only; lowercase is
 * folded to uppercase). Each glyph is 5 column bytes, LSB = top row.
 */
const uint8_t kFont[][5] = {
    {0x00, 0x00, 0x00, 0x00, 0x00}, // ' '
    {0x00, 0x00, 0x5f, 0x00, 0x00}, // '!'
    {0x00, 0x07, 0x00, 0x07, 0x00}, // '"'
    {0x14, 0x7f, 0x14, 0x7f, 0x14}, // '#'
    {0x24, 0x2a, 0x7f, 0x2a, 0x12}, // '$'
    {0x23, 0x13, 0x08, 0x64, 0x62}, // '%'
    {0x36, 0x49, 0x55, 0x22, 0x50}, // '&'
    {0x00, 0x05, 0x03, 0x00, 0x00}, // '\''
    {0x00, 0x1c, 0x22, 0x41, 0x00}, // '('
    {0x00, 0x41, 0x22, 0x1c, 0x00}, // ')'
    {0x14, 0x08, 0x3e, 0x08, 0x14}, // '*'
    {0x08, 0x08, 0x3e, 0x08, 0x08}, // '+'
    {0x00, 0x50, 0x30, 0x00, 0x00}, // ','
    {0x08, 0x08, 0x08, 0x08, 0x08}, // '-'
    {0x00, 0x60, 0x60, 0x00, 0x00}, // '.'
    {0x20, 0x10, 0x08, 0x04, 0x02}, // '/'
    {0x3e, 0x51, 0x49, 0x45, 0x3e}, // '0'
    {0x00, 0x42, 0x7f, 0x40, 0x00}, // '1'
    {0x42, 0x61, 0x51, 0x49, 0x46}, // '2'
    {0x21, 0x41, 0x45, 0x4b, 0x31}, // '3'
    {0x18, 0x14, 0x12, 0x7f, 0x10}, // '4'
    {0x27, 0x45, 0x45, 0x45, 0x39}, // '5'
    {0x3c, 0x4a, 0x49, 0x49, 0x30}, // '6'
    {0x01, 0x71, 0x09, 0x05, 0x03}, // '7'
    {0x36, 0x49, 0x49, 0x49, 0x36}, // '8'
    {0x06, 0x49, 0x49, 0x29, 0x1e}, // '9'
    {0x00, 0x36, 0x36, 0x00, 0x00}, // ':'
    {0x00, 0x56, 0x36, 0x00, 0x00}, // ';'
    {0x08, 0x14, 0x22, 0x41, 0x00}, // '<'
    {0x14, 0x14, 0x14, 0x14, 0x14}, // '='
    {0x00, 0x41, 0x22, 0x14, 0x08}, // '>'
    {0x02, 0x01, 0x51, 0x09, 0x06}, // '?'
    {0x32, 0x49, 0x79, 0x41, 0x3e}, // '@'
    {0x7e, 0x11, 0x11, 0x11, 0x7e}, // 'A'
    {0x7f, 0x49, 0x49, 0x49, 0x36}, // 'B'
    {0x3e, 0x41, 0x41, 0x41, 0x22}, // 'C'
    {0x7f, 0x41, 0x41, 0x22, 0x1c}, // 'D'
    {0x7f, 0x49, 0x49, 0x49, 0x41}, // 'E'
    {0x7f, 0x09, 0x09, 0x09, 0x01}, // 'F'
    {0x3e, 0x41, 0x49, 0x49, 0x7a}, // 'G'
    {0x7f, 0x08, 0x08, 0x08, 0x7f}, // 'H'
    {0x00, 0x41, 0x7f, 0x41, 0x00}, // 'I'
    {0x20, 0x40, 0x41, 0x3f, 0x01}, // 'J'
    {0x7f, 0x08, 0x14, 0x22, 0x41}, // 'K'
    {0x7f, 0x40, 0x40, 0x40, 0x40}, // 'L'
    {0x7f, 0x02, 0x0c, 0x02, 0x7f}, // 'M'
    {0x7f, 0x04, 0x08, 0x10, 0x7f}, // 'N'
    {0x3e, 0x41, 0x41, 0x41, 0x3e}, // 'O'
    {0x7f, 0x09, 0x09, 0x09, 0x06}, // 'P'
    {0x3e, 0x41, 0x51, 0x21, 0x5e}, // 'Q'
    {0x7f, 0x09, 0x19, 0x29, 0x46}, // 'R'
    {0x46, 0x49, 0x49, 0x49, 0x31}, // 'S'
    {0x01, 0x01, 0x7f, 0x01, 0x01}, // 'T'
    {0x3f, 0x40, 0x40, 0x40, 0x3f}, // 'U'
    {0x1f, 0x20, 0x40, 0x20, 0x1f}, // 'V'
    {0x3f, 0x40, 0x38, 0x40, 0x3f}, // 'W'
    {0x63, 0x14, 0x08, 0x14, 0x63}, // 'X'
    {0x07, 0x08, 0x70, 0x08, 0x07}, // 'Y'
    {0x61, 0x51, 0x49, 0x45, 0x43}, // 'Z'
};

const int kFirstGlyph = 32;
const int kLastGlyph = 90;

} // namespace

Framebuffer::Framebuffer(int width, int height)
    : fb_width(width), fb_height(height),
      data((size_t)width * (size_t)height, 0)
{
    if (width <= 0 || height <= 0)
        panic("framebuffer dimensions must be positive (%dx%d)",
              width, height);
}

void
Framebuffer::clear(uint8_t color)
{
    std::fill(data.begin(), data.end(), color);
}

void
Framebuffer::setPixel(int x, int y, uint8_t color)
{
    if (x < 0 || y < 0 || x >= fb_width || y >= fb_height)
        return;
    data[(size_t)y * fb_width + x] = color;
}

uint8_t
Framebuffer::pixel(int x, int y) const
{
    if (x < 0 || y < 0 || x >= fb_width || y >= fb_height)
        return 0;
    return data[(size_t)y * fb_width + x];
}

void
Framebuffer::drawLine(int x0, int y0, int x1, int y1, uint8_t color)
{
    int dx = std::abs(x1 - x0);
    int dy = -std::abs(y1 - y0);
    int sx = x0 < x1 ? 1 : -1;
    int sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    while (true) {
        setPixel(x0, y0, color);
        if (x0 == x1 && y0 == y1)
            break;
        int e2 = 2 * err;
        if (e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if (e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
}

void
Framebuffer::fillRect(int x, int y, int w, int h, uint8_t color)
{
    int x0 = std::max(x, 0);
    int y0 = std::max(y, 0);
    int x1 = std::min(x + w, fb_width);
    int y1 = std::min(y + h, fb_height);
    for (int yy = y0; yy < y1; ++yy)
        std::fill(data.begin() + (size_t)yy * fb_width + x0,
                  data.begin() + (size_t)yy * fb_width + x1, color);
}

void
Framebuffer::drawRect(int x, int y, int w, int h, uint8_t color)
{
    if (w <= 0 || h <= 0)
        return;
    drawLine(x, y, x + w - 1, y, color);
    drawLine(x, y + h - 1, x + w - 1, y + h - 1, color);
    drawLine(x, y, x, y + h - 1, color);
    drawLine(x + w - 1, y, x + w - 1, y + h - 1, color);
}

void
Framebuffer::drawCircle(int cx, int cy, int radius, uint8_t color)
{
    int x = radius;
    int y = 0;
    int err = 1 - radius;
    while (x >= y) {
        setPixel(cx + x, cy + y, color);
        setPixel(cx + y, cy + x, color);
        setPixel(cx - y, cy + x, color);
        setPixel(cx - x, cy + y, color);
        setPixel(cx - x, cy - y, color);
        setPixel(cx - y, cy - x, color);
        setPixel(cx + y, cy - x, color);
        setPixel(cx + x, cy - y, color);
        ++y;
        if (err < 0) {
            err += 2 * y + 1;
        } else {
            --x;
            err += 2 * (y - x) + 1;
        }
    }
}

void
Framebuffer::fillCircle(int cx, int cy, int radius, uint8_t color)
{
    for (int dy = -radius; dy <= radius; ++dy) {
        int span = 0;
        while ((span + 1) * (span + 1) + dy * dy <= radius * radius)
            ++span;
        for (int dx = -span; dx <= span; ++dx)
            setPixel(cx + dx, cy + dy, color);
    }
}

int
Framebuffer::drawText(int x, int y, std::string_view text, uint8_t color)
{
    int advance = 0;
    for (char raw : text) {
        int c = (unsigned char)raw;
        if (c >= 'a' && c <= 'z')
            c -= 'a' - 'A';
        if (c < kFirstGlyph || c > kLastGlyph)
            c = '?';
        const uint8_t *glyph = kFont[c - kFirstGlyph];
        for (int col = 0; col < 5; ++col)
            for (int row = 0; row < 7; ++row)
                if (glyph[col] & (1 << row))
                    setPixel(x + advance + col, y + row, color);
        advance += 6;
    }
    return advance;
}

int64_t
Framebuffer::countPixels(uint8_t color) const
{
    return std::count(data.begin(), data.end(), color);
}

uint64_t
Framebuffer::checksum() const
{
    uint64_t hash = 1469598103934665603ull;
    for (uint8_t byte : data) {
        hash ^= byte;
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace interp::gfx
