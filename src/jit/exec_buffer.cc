#include "jit/exec_buffer.hh"

#include <cstring>

#include "support/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define INTERP_JIT_HAVE_MMAN 1
#endif

namespace interp::jit {

ExecBuffer::~ExecBuffer()
{
#ifdef INTERP_JIT_HAVE_MMAN
    if (base_)
        ::munmap(base_, capacity_);
#endif
}

bool
ExecBuffer::map(size_t capacity)
{
#ifdef INTERP_JIT_HAVE_MMAN
    if (base_)
        fatal("jit: ExecBuffer mapped twice");
    size_t page = (size_t)::sysconf(_SC_PAGESIZE);
    if (page == 0)
        page = 4096;
    size_t rounded = (capacity + page - 1) & ~(page - 1);
    if (rounded == 0)
        rounded = page;
    // Writable now, executable only after seal() — never both.
    void *p = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED)
        return false;
    base_ = (uint8_t *)p;
    capacity_ = rounded;
    used_ = 0;
    sealed_ = false;
    return true;
#else
    (void)capacity;
    return false;
#endif
}

void
ExecBuffer::emit(const void *bytes, size_t n)
{
    if (!base_)
        fatal("jit: emit into unmapped ExecBuffer");
    if (sealed_)
        fatal("jit: emit into sealed (executable) ExecBuffer");
    if (n > capacity_ - used_)
        fatal("jit: emit buffer overflow (%zu used + %zu > %zu capacity)",
              used_, n, capacity_);
    std::memcpy(base_ + used_, bytes, n);
    used_ += n;
}

void
ExecBuffer::emit8(uint8_t value)
{
    emit(&value, 1);
}

void
ExecBuffer::emit32(uint32_t value)
{
    uint8_t b[4] = {(uint8_t)value, (uint8_t)(value >> 8),
                    (uint8_t)(value >> 16), (uint8_t)(value >> 24)};
    emit(b, 4);
}

void
ExecBuffer::emit64(uint64_t value)
{
    emit32((uint32_t)value);
    emit32((uint32_t)(value >> 32));
}

bool
ExecBuffer::seal()
{
#ifdef INTERP_JIT_HAVE_MMAN
    if (!base_)
        fatal("jit: seal of unmapped ExecBuffer");
    if (sealed_)
        fatal("jit: ExecBuffer sealed twice");
    if (::mprotect(base_, capacity_, PROT_READ | PROT_EXEC) != 0)
        return false;
    sealed_ = true;
    return true;
#else
    return false;
#endif
}

} // namespace interp::jit
