/**
 * @file
 * Executable stencil buffer with W^X lifetime discipline.
 *
 * The tier-3 template compilers concatenate per-opcode native
 * stencils into one of these. The mapping is anonymous memory that is
 * *either* writable *or* executable, never both: map() hands out a
 * PROT_READ|PROT_WRITE region for emission, seal() flips it to
 * PROT_READ|PROT_EXEC before the first instruction runs. Overflowing
 * the mapped capacity, or emitting after seal(), is a contained
 * fatal() (ScopedFatalThrow-compatible), not silent corruption — the
 * same failure contract as BundleBatch::push.
 */

#ifndef INTERP_JIT_EXEC_BUFFER_HH
#define INTERP_JIT_EXEC_BUFFER_HH

#include <cstddef>
#include <cstdint>

namespace interp::jit {

/** Map-once, emit, seal, execute. Movable-nothing: artifacts own it. */
class ExecBuffer
{
  public:
    ExecBuffer() = default;
    ~ExecBuffer();
    ExecBuffer(const ExecBuffer &) = delete;
    ExecBuffer &operator=(const ExecBuffer &) = delete;

    /**
     * Map @p capacity bytes read+write (rounded up to the page size).
     * Returns false when the host refuses the mapping — the caller
     * falls back to the portable stencil walker, it is not an error.
     */
    bool map(size_t capacity);

    /** Append @p n bytes. Overflow or post-seal emission is fatal(). */
    void emit(const void *bytes, size_t n);
    void emit8(uint8_t value);
    void emit32(uint32_t value);
    void emit64(uint64_t value);

    /**
     * W^X flip: revoke write, grant execute, in one mprotect. Returns
     * false when the host forbids executable anonymous memory (the
     * caller falls back to the portable walker; the mapping stays
     * read-only and is never executed).
     */
    bool seal();

    bool mapped() const { return base_ != nullptr; }
    bool sealed() const { return sealed_; }
    size_t used() const { return used_; }
    size_t capacity() const { return capacity_; }
    const uint8_t *base() const { return base_; }

  private:
    uint8_t *base_ = nullptr;
    size_t capacity_ = 0;
    size_t used_ = 0;
    bool sealed_ = false;
};

} // namespace interp::jit

#endif // INTERP_JIT_EXEC_BUFFER_HH
