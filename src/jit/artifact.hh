/**
 * @file
 * JitArtifact: an immutable compiled stencil program.
 *
 * The tier-3 template compiler is deliberately minimal (the "fast
 * in-place interpreter" / template-JIT shape): for a program of N
 * steps — guest instructions for MipsiJit, compiled commands for
 * TclJit — it concatenates N copies of one per-step native stencil
 * into an ExecBuffer. Each stencil calls back into a C++ helper
 * (StepFn) that performs the step's real work *and* emits its full
 * synthetic trace, then either falls through to the next stencil
 * (straight-line execution, no fetch/decode) or returns out of the
 * region (taken control transfer, exhausted budget, exit). The host
 * re-enters at the stencil of the new target, so all control flow is
 * re-checked in C++ and the native region never needs relocations or
 * patching.
 *
 * On hosts without the x86-64 backend (or where executable anonymous
 * memory is refused) enter() walks the same step sequence in C++,
 * calling the same helpers — attribution is byte-identical by
 * construction, only host-native speed differs.
 *
 * Artifacts are immutable after build() and safe to share across
 * threads (the same publish-once discipline as jvm::TierArtifact).
 * debugPoison() marks an artifact unusable — runners must fall back
 * to the previous tier, mirroring jvm::Vm::debugPoisonIc.
 */

#ifndef INTERP_JIT_ARTIFACT_HH
#define INTERP_JIT_ARTIFACT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "jit/exec_buffer.hh"

namespace interp::jit {

/**
 * Per-step helper: executes step @p index against @p ctx. A zero
 * return falls through to the next stencil; nonzero leaves the
 * region (the caller decides whether to re-enter). Must not let
 * exceptions escape — native frames have no unwind tables, so
 * helpers stash and re-raise after enter() returns.
 */
using StepFn = uint8_t (*)(void *ctx, uint32_t index);

class JitArtifact
{
  public:
    /**
     * Compile a stencil program of @p steps steps around @p fn.
     * @p capacity_bytes overrides the emit-buffer size (tests force a
     * too-small buffer to exercise the contained overflow fatal);
     * zero sizes it exactly. Never returns null: when native code
     * cannot be emitted the artifact runs in portable mode.
     */
    static std::shared_ptr<const JitArtifact>
    build(StepFn fn, uint32_t steps, size_t capacity_bytes = 0);

    /**
     * Run the program from step @p start until a helper returns
     * nonzero or the last step falls through. Entering a poisoned
     * artifact is a contained fatal().
     */
    void enter(void *ctx, uint32_t start) const;

    uint32_t numSteps() const { return steps_; }
    /** True when enter() executes emitted machine code. */
    bool native() const { return native_; }
    /** Emitted native bytes (0 in portable mode). */
    size_t codeBytes() const { return native_ ? buf_.used() : 0; }

    /** Test hook: mark the artifact unusable (callers must fall back
     *  one tier — the tier-3 analogue of debugPoisonIc). */
    void debugPoison() const { poisoned_.store(true); }
    bool poisoned() const { return poisoned_.load(); }

    /** Native stencil sizes (x86-64 backend; exposed for tests). */
    static constexpr size_t kEntryBytes = 18;
    static constexpr size_t kStencilBytes = 25;

  private:
    JitArtifact() = default;

    StepFn fn_ = nullptr;
    uint32_t steps_ = 0;
    bool native_ = false;
    ExecBuffer buf_;
    std::vector<uint32_t> offsets_; ///< per-step byte offset in buf_
    mutable std::atomic<bool> poisoned_{false};
};

} // namespace interp::jit

#endif // INTERP_JIT_ARTIFACT_HH
