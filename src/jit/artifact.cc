#include "jit/artifact.hh"

#include "support/logging.hh"

// The native backend is x86-64 SysV only; everything else (and any
// host that refuses executable anonymous memory at runtime) uses the
// portable walker in enter().
#if defined(__x86_64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__))
#define INTERP_JIT_NATIVE 1
#endif

namespace interp::jit {

#ifdef INTERP_JIT_NATIVE

namespace {

/**
 * Region entry thunk: void entry(void *ctx, const void *stencil).
 * Keeps ctx in r13 (callee-saved, reloaded by every stencil) and
 * calls into the stencil stream with the stack 16-byte aligned at
 * each helper call site.
 *
 *   push r13 ; sub rsp,8 ; mov r13,rdi ; call rsi
 *   add rsp,8 ; pop r13 ; ret
 */
void
emitEntry(ExecBuffer &buf)
{
    static const uint8_t code[] = {
        0x41, 0x55,                   // push r13
        0x48, 0x83, 0xec, 0x08,       // sub  rsp, 8
        0x49, 0x89, 0xfd,             // mov  r13, rdi
        0xff, 0xd6,                   // call rsi
        0x48, 0x83, 0xc4, 0x08,       // add  rsp, 8
        0x41, 0x5d,                   // pop  r13
        0xc3,                         // ret
    };
    static_assert(sizeof(code) == JitArtifact::kEntryBytes);
    buf.emit(code, sizeof(code));
}

/**
 * One stencil: call the helper with (ctx, index); fall through when
 * it returns zero, leave the stream otherwise.
 *
 *   mov rdi,r13 ; mov esi,index ; movabs rax,fn ; call rax
 *   test al,al ; je .next ; ret ; .next:
 */
void
emitStencil(ExecBuffer &buf, StepFn fn, uint32_t index)
{
    size_t before = buf.used();
    buf.emit8(0x4c);
    buf.emit8(0x89);
    buf.emit8(0xef);                  // mov rdi, r13
    buf.emit8(0xbe);
    buf.emit32(index);                // mov esi, index
    buf.emit8(0x48);
    buf.emit8(0xb8);
    buf.emit64((uint64_t)(uintptr_t)fn); // movabs rax, fn
    buf.emit8(0xff);
    buf.emit8(0xd0);                  // call rax
    buf.emit8(0x84);
    buf.emit8(0xc0);                  // test al, al
    buf.emit8(0x74);
    buf.emit8(0x01);                  // je .next (skip the ret)
    buf.emit8(0xc3);                  // ret
    if (buf.used() - before != JitArtifact::kStencilBytes)
        fatal("jit: stencil emitted %zu bytes, expected %zu",
              buf.used() - before, JitArtifact::kStencilBytes);
}

using EntryFn = void (*)(void *ctx, const void *stencil);

} // namespace

#endif // INTERP_JIT_NATIVE

std::shared_ptr<const JitArtifact>
JitArtifact::build(StepFn fn, uint32_t steps, size_t capacity_bytes)
{
    std::shared_ptr<JitArtifact> a(new JitArtifact());
    a->fn_ = fn;
    a->steps_ = steps;
#ifdef INTERP_JIT_NATIVE
    size_t need = kEntryBytes + (size_t)steps * kStencilBytes + 1;
    if (a->buf_.map(capacity_bytes ? capacity_bytes : need)) {
        a->offsets_.reserve(steps);
        emitEntry(a->buf_);
        for (uint32_t i = 0; i < steps; ++i) {
            a->offsets_.push_back((uint32_t)a->buf_.used());
            emitStencil(a->buf_, fn, i);
        }
        a->buf_.emit8(0xc3); // fall-through off the last stencil
        if (a->buf_.seal())
            a->native_ = true;
    }
#else
    (void)capacity_bytes;
#endif
    return a;
}

void
JitArtifact::enter(void *ctx, uint32_t start) const
{
    if (poisoned_.load())
        fatal("jit: entering a poisoned JitArtifact");
    if (start >= steps_)
        return;
#ifdef INTERP_JIT_NATIVE
    if (native_) {
        auto entry = (EntryFn)(uintptr_t)buf_.base();
        entry(ctx, buf_.base() + offsets_[start]);
        return;
    }
#endif
    for (uint32_t i = start; i < steps_; ++i)
        if (fn_(ctx, i) != 0)
            return;
}

} // namespace interp::jit
