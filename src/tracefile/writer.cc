#include "tracefile/writer.hh"

#include "support/logging.hh"

namespace interp::tracefile {

namespace {

/** Serialize the fixed+variable header for one file. */
std::string
buildHeader(const std::string &lang, const std::string &name,
            uint32_t flags, uint64_t program_bytes, uint64_t commands,
            uint64_t events, uint64_t bundles, uint64_t insts,
            uint64_t command_events, uint64_t mem_accesses,
            uint64_t chunks)
{
    std::string h;
    h.append(kMagic, sizeof(kMagic));
    putU32(h, kVersion);
    putU32(h, flags);
    putU64(h, program_bytes);
    putU64(h, commands);
    putU64(h, events);
    putU64(h, bundles);
    putU64(h, insts);
    putU64(h, command_events);
    putU64(h, mem_accesses);
    putU64(h, chunks);
    // h.size() == kFixedHeaderBytes here by construction.
    putU32(h, (uint32_t)lang.size());
    h += lang;
    putU32(h, (uint32_t)name.size());
    h += name;
    return h;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, const std::string &lang,
                         const std::string &bench_name,
                         size_t chunk_bytes)
    : path_(path), lang_(lang), name_(bench_name),
      chunkBytes_(chunk_bytes ? chunk_bytes : kDefaultChunkBytes)
{
    if (lang_.size() > kMaxHeaderString ||
        name_.size() > kMaxHeaderString)
        fatal("trace file %s: lang/name too long for header",
              path_.c_str());
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_)
        fatal("cannot create trace file %s", path_.c_str());
    std::string header = buildHeader(lang_, name_, 0, 0, 0, 0, 0, 0, 0,
                                     0, 0);
    out_.write(header.data(), (std::streamsize)header.size());
    if (!out_)
        fatal("trace file %s: header write failed", path_.c_str());
    bytesWritten_ = header.size();
    buf_.reserve(chunkBytes_ + 64);
}

TraceWriter::~TraceWriter()
{
    if (!finished_)
        warn("trace file %s abandoned without finish(); "
             "it will be rejected on replay", path_.c_str());
}

void
TraceWriter::beginEvent()
{
    ++totalEvents_;
    ++bufEvents_;
}

void
TraceWriter::emitStateChange(trace::Category cat, bool mem_model,
                             bool native, bool system,
                             trace::CommandId command)
{
    uint8_t bits = (uint8_t)cat & kStateCatMask;
    if (mem_model)
        bits |= kStateMemModelBit;
    if (native)
        bits |= kStateNativeBit;
    if (system)
        bits |= kStateSystemBit;
    bool cmd_change = command != st_.command;
    if (cmd_change)
        bits |= kStateCommandBit;
    beginEvent();
    buf_.push_back((char)kTagState);
    buf_.push_back((char)bits);
    if (cmd_change)
        putVarint(buf_, command);
    st_.cat = cat;
    st_.memModel = mem_model;
    st_.native = native;
    st_.system = system;
    st_.command = command;
}

void
TraceWriter::encodeBundle(uint32_t pc, uint32_t count,
                          trace::InstClass cls, trace::Category cat,
                          bool mem_model, bool native, bool system,
                          bool taken, trace::CommandId command,
                          uint32_t mem_addr, uint32_t target)
{
    if (cat != st_.cat || mem_model != st_.memModel ||
        native != st_.native || system != st_.system ||
        command != st_.command)
        emitStateChange(cat, mem_model, native, system, command);

    uint8_t tag = kTagBundleBit | ((uint8_t)cls & kBundleClsMask);
    if (taken)
        tag |= kBundleTakenBit;
    bool seq = pc == st_.nextPc;
    if (seq)
        tag |= kBundleSeqPcBit;
    if (count == 1)
        tag |= kBundleCountOneBit;
    beginEvent();
    buf_.push_back((char)tag);
    if (!seq)
        putSVarint(buf_, (int64_t)pc - (int64_t)st_.nextPc);
    if (count != 1)
        putVarint(buf_, count);
    if (classHasMemAddr(cls)) {
        putSVarint(buf_, (int64_t)mem_addr - (int64_t)st_.lastMemAddr);
        st_.lastMemAddr = mem_addr;
    }
    if (classHasTarget(cls))
        putSVarint(buf_, (int64_t)target - (int64_t)pc);

    st_.nextPc = pc + count * 4;
    ++totalBundles_;
    totalInsts_ += count;
    bufInsts_ += count;

    if (buf_.size() >= chunkBytes_)
        flushEventChunk();
}

void
TraceWriter::onBundle(const trace::Bundle &b)
{
    encodeBundle(b.pc, b.count, b.cls, b.cat, b.memModel, b.native,
                 b.system, b.taken, b.command, b.memAddr, b.target);
}

void
TraceWriter::onBatch(const trace::BundleBatch &batch)
{
    using trace::BundleBatch;
    const uint32_t n = batch.size();
    const uint32_t *pc = batch.pcCol();
    const uint32_t *cnt = batch.countCol();
    const uint32_t *mem_addr = batch.memAddrCol();
    const uint32_t *target = batch.targetCol();
    const uint8_t *cls_cat = batch.clsCatCol();
    const uint8_t *flags = batch.flagsCol();
    const trace::CommandId *cmd = batch.commandCol();
    for (uint32_t i = 0; i < n; ++i) {
        uint8_t f = flags[i];
        encodeBundle(pc[i], cnt[i], BundleBatch::cls(cls_cat[i]),
                     BundleBatch::cat(cls_cat[i]),
                     (f & BundleBatch::kMemModelBit) != 0,
                     (f & BundleBatch::kNativeBit) != 0,
                     (f & BundleBatch::kSystemBit) != 0,
                     (f & BundleBatch::kTakenBit) != 0, cmd[i],
                     mem_addr[i], target[i]);
    }
}

void
TraceWriter::onCommand(trace::CommandId command)
{
    beginEvent();
    buf_.push_back((char)kTagCommand);
    putVarint(buf_, command);
    st_.command = command; // mirrors Execution::beginCommand
    ++totalCommandEvents_;
    if (buf_.size() >= chunkBytes_)
        flushEventChunk();
}

void
TraceWriter::onMemModelAccess()
{
    beginEvent();
    buf_.push_back((char)kTagMemAccess);
    ++totalMemAccesses_;
    if (buf_.size() >= chunkBytes_)
        flushEventChunk();
}

void
TraceWriter::flushEventChunk()
{
    if (buf_.empty())
        return;
    writeChunk(kChunkEvents, buf_, bufEvents_, bufInsts_);
    buf_.clear();
    bufEvents_ = 0;
    bufInsts_ = 0;
    st_ = CodecState(); // chunks are independently decodable
}

void
TraceWriter::writeChunk(uint8_t type, const std::string &raw,
                        uint32_t event_count, uint64_t inst_count)
{
    std::string rle = rleCompress(raw);
    const std::string &stored = rle.size() < raw.size() ? rle : raw;
    uint8_t codec = rle.size() < raw.size() ? kCodecRle : kCodecRaw;

    std::string h;
    putU32(h, kChunkMagic);
    h.push_back((char)type);
    h.push_back((char)codec);
    putU16(h, 0);
    putU32(h, (uint32_t)raw.size());
    putU32(h, (uint32_t)stored.size());
    putU32(h, event_count);
    putU32(h, crc32(stored.data(), stored.size()));
    putU64(h, inst_count);
    out_.write(h.data(), (std::streamsize)h.size());
    out_.write(stored.data(), (std::streamsize)stored.size());
    if (!out_)
        fatal("trace file %s: chunk write failed (disk full?)",
              path_.c_str());
    bytesWritten_ += h.size() + stored.size();
    ++numChunks_;
}

void
TraceWriter::setRunResult(uint64_t program_bytes, uint64_t commands,
                          bool finished)
{
    programBytes_ = program_bytes;
    commands_ = commands;
    runFinished_ = finished;
}

void
TraceWriter::setCommandNames(const std::vector<std::string> &names)
{
    names_ = names;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    flushEventChunk();

    std::string names_raw;
    putVarint(names_raw, names_.size());
    for (const std::string &name : names_) {
        putVarint(names_raw, name.size());
        names_raw += name;
    }
    writeChunk(kChunkNames, names_raw, (uint32_t)names_.size(), 0);

    uint32_t flags = kFlagFinalized;
    if (runFinished_)
        flags |= kFlagRunFinished;
    std::string header =
        buildHeader(lang_, name_, flags, programBytes_, commands_,
                    totalEvents_, totalBundles_, totalInsts_,
                    totalCommandEvents_, totalMemAccesses_, numChunks_);
    out_.seekp((std::streamoff)kPatchOffset);
    out_.write(header.data() + kPatchOffset,
               (std::streamsize)(kFixedHeaderBytes - kPatchOffset));
    out_.close();
    if (out_.fail())
        fatal("trace file %s: finalize failed", path_.c_str());
    finished_ = true;
}

} // namespace interp::tracefile
