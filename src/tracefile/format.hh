/**
 * @file
 * On-disk format of the binary trace files (.itr).
 *
 * The paper's methodology is trace-driven: instruction/address traces
 * are captured once (they used ATOM on real Alpha binaries) and then
 * fed to counters and machine simulators many times. This format is
 * our equivalent of those trace tapes. A file is:
 *
 *   header   magic "INTERPTR", version, flags, run metadata
 *            (language, benchmark name, program size, command count),
 *            and the event/instruction totals used to validate a
 *            complete decode,
 *   chunks   a sequence of independently decodable chunks, each with
 *            a fixed 32-byte header (type, codec, sizes, event and
 *            instruction counts, CRC32 of the stored payload) and a
 *            payload of varint/delta-encoded trace::events,
 *   names    one final chunk carrying the interned virtual-command
 *            name table, so replayed Measurements can label Figure
 *            1/2-style per-command rows.
 *
 * Event payload encoding (per chunk; all delta state resets at chunk
 * boundaries, so a damaged chunk cannot corrupt decoding of later
 * ones — it is detected and reported instead):
 *
 *   tag & 0x80          Bundle. Low bits: cls (0-3), taken (4),
 *                       sequential-pc (5), count==1 (6). Fields, in
 *                       order and only when needed: signed-varint PC
 *                       delta from the expected next PC, varint count,
 *                       signed-varint data-address delta (loads and
 *                       stores), signed-varint target-minus-PC
 *                       (branch classes).
 *   0x01 Command        varint command id; also selects that command
 *                       as the attribution target (mirroring
 *                       Execution::beginCommand).
 *   0x02 MemAccess      one logical memory-model access.
 *   0x03 State          attribution change: category, memModel,
 *                       native, system, and optionally the current
 *                       command (covers resumeCommand).
 *
 * Chunk payloads may additionally be run-length encoded (codec 1)
 * with a simple byte RLE when that makes them smaller; PC-sequential
 * ALU bundles compress extremely well under it.
 *
 * Everything is little-endian and serialized explicitly; no structs
 * are written raw.
 */

#ifndef INTERP_TRACEFILE_FORMAT_HH
#define INTERP_TRACEFILE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace interp::tracefile {

// --- file constants --------------------------------------------------------

/** First eight bytes of every trace file. */
constexpr char kMagic[8] = {'I', 'N', 'T', 'E', 'R', 'P', 'T', 'R'};

/** Format version; readers reject anything else. */
constexpr uint32_t kVersion = 1;

/** Size of the fixed (pre-name) part of the file header. */
constexpr size_t kFixedHeaderBytes = 80;

/** Byte offset of the patched-on-finish region (flags..numChunks). */
constexpr size_t kPatchOffset = 12;

/** Header flag: the recorded run finished (did not hit its budget). */
constexpr uint32_t kFlagRunFinished = 1u << 0;
/** Header flag: finish() ran; totals are valid. Never set on a file
 *  left behind by an aborted recording. */
constexpr uint32_t kFlagFinalized = 1u << 1;

// --- chunk constants -------------------------------------------------------

constexpr uint32_t kChunkMagic = 0x4b4e4843; // "CHNK"
constexpr size_t kChunkHeaderBytes = 32;

constexpr uint8_t kChunkEvents = 0; ///< event payload
constexpr uint8_t kChunkNames = 1;  ///< command-name table payload

constexpr uint8_t kCodecRaw = 0;
constexpr uint8_t kCodecRle = 1;

/** Raw payload bytes at which the writer seals a chunk. */
constexpr size_t kDefaultChunkBytes = 48 * 1024;

/** Upper bound on any single chunk's raw or stored size; anything
 *  larger is treated as corruption rather than allocated. */
constexpr uint32_t kMaxChunkBytes = 64u * 1024 * 1024;

/** Upper bound on header string lengths (lang, benchmark name). */
constexpr uint32_t kMaxHeaderString = 4096;

// --- event tags ------------------------------------------------------------

constexpr uint8_t kTagCommand = 0x01;
constexpr uint8_t kTagMemAccess = 0x02;
constexpr uint8_t kTagState = 0x03;
constexpr uint8_t kTagBundleBit = 0x80;

constexpr uint8_t kBundleClsMask = 0x0f;
constexpr uint8_t kBundleTakenBit = 0x10;
constexpr uint8_t kBundleSeqPcBit = 0x20;
constexpr uint8_t kBundleCountOneBit = 0x40;

constexpr uint8_t kStateCatMask = 0x03;
constexpr uint8_t kStateMemModelBit = 0x04;
constexpr uint8_t kStateNativeBit = 0x08;
constexpr uint8_t kStateSystemBit = 0x10;
constexpr uint8_t kStateCommandBit = 0x20;

// --- little-endian serialization ------------------------------------------

void putU16(std::string &out, uint16_t v);
void putU32(std::string &out, uint32_t v);
void putU64(std::string &out, uint64_t v);

/**
 * Bounds-checked reads advancing @p p; return false instead of
 * reading past @p end (the caller reports the truncation).
 */
bool getU16(const uint8_t *&p, const uint8_t *end, uint16_t &v);
bool getU32(const uint8_t *&p, const uint8_t *end, uint32_t &v);
bool getU64(const uint8_t *&p, const uint8_t *end, uint64_t &v);

// --- varints ---------------------------------------------------------------

/** LEB128 unsigned varint. */
void putVarint(std::string &out, uint64_t v);

/**
 * Defined inline (with a single-byte fast path) because the replay
 * decoder calls this several times per bundle — out-of-line it was
 * the hottest call in a tape replay profile.
 */
inline bool
getVarint(const uint8_t *&p, const uint8_t *end, uint64_t &v)
{
    if (p < end && *p < 0x80) [[likely]] {
        v = *p++;
        return true;
    }
    v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (p >= end)
            return false;
        uint8_t byte = *p++;
        v |= (uint64_t)(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false; // > 10 continuation bytes: malformed
}

/** Zigzag mapping for signed deltas. */
constexpr uint64_t
zigzag(int64_t v)
{
    return ((uint64_t)v << 1) ^ (uint64_t)(v >> 63);
}

constexpr int64_t
unzigzag(uint64_t v)
{
    return (int64_t)(v >> 1) ^ -(int64_t)(v & 1);
}

void putSVarint(std::string &out, int64_t v);

inline bool
getSVarint(const uint8_t *&p, const uint8_t *end, int64_t &v)
{
    uint64_t raw;
    if (!getVarint(p, end, raw))
        return false;
    v = unzigzag(raw);
    return true;
}

// --- integrity and compression --------------------------------------------

/** CRC-32 (IEEE 802.3 polynomial, as used by zip/png). */
uint32_t crc32(const void *data, size_t len);

/**
 * Byte run-length encoding. Control byte c < 0x80: copy the next
 * c + 1 literal bytes; c >= 0x80: repeat the next byte c - 0x80 + 3
 * times. Chosen over a real LZ so the decoder is trivially
 * bounds-checkable; the encoded stream never expands by more than
 * 1/128 + 1 bytes.
 */
std::string rleCompress(const std::string &raw);

/**
 * Decode @p stored into @p out, which must come out to exactly
 * @p expected_bytes. Returns false on any malformed input (truncated
 * run, size mismatch) without reading out of bounds.
 */
bool rleDecompress(const uint8_t *stored, size_t stored_len,
                   size_t expected_bytes, std::string &out);

} // namespace interp::tracefile

#endif // INTERP_TRACEFILE_FORMAT_HH
