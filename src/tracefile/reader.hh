/**
 * @file
 * TraceReader: streams a recorded .itr file back into trace::Sinks.
 *
 * This is the replay half of the paper's trace-driven methodology: a
 * recorded event stream drives any combination of trace::Profile,
 * sim::Machine and sim::CacheSweep with no interpreter in the loop,
 * producing bit-identical counters to the live run that recorded it.
 *
 * Robustness contract: every malformed input — bad magic, unsupported
 * version, a file left unfinalized by an aborted recording, truncated
 * chunks, CRC mismatches, undecodable payloads, totals that do not
 * add up — is reported through fatal() with a message naming the file
 * and the defect. Under a ScopedFatalThrow (the suite runner installs
 * one per job) that surfaces as a contained FatalError, never a crash
 * or a silently wrong result.
 */

#ifndef INTERP_TRACEFILE_READER_HH
#define INTERP_TRACEFILE_READER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tracefile/format.hh"
#include "trace/events.hh"

namespace interp::tracefile {

/** Header metadata of one trace file. */
struct TraceMeta
{
    std::string lang;     ///< harness::langName of the recorded run
    std::string name;     ///< benchmark name
    uint64_t programBytes = 0;
    uint64_t commands = 0; ///< Measurement.commands of the run
    bool finished = false; ///< the run did not hit its command budget
    uint64_t totalEvents = 0;
    uint64_t totalBundles = 0;
    uint64_t totalInsts = 0;
    uint64_t totalCommandEvents = 0;
    uint64_t totalMemAccesses = 0;
    uint64_t numChunks = 0;
    /** Interned command names, from the trailing name-table chunk. */
    std::vector<std::string> commandNames;
};

/** Summary of one chunk, for tracestat and tests. */
struct ChunkInfo
{
    uint64_t offset = 0;    ///< file offset of the chunk header
    uint8_t type = 0;       ///< kChunkEvents / kChunkNames
    uint8_t codec = 0;      ///< kCodecRaw / kCodecRle
    uint32_t rawBytes = 0;
    uint32_t storedBytes = 0;
    uint32_t eventCount = 0;
    uint64_t instCount = 0;
};

/** Streaming decoder for one trace file. */
class TraceReader
{
  public:
    /**
     * Opens @p path, validates the header, walks the chunk table
     * (structure only — event payloads are not decoded) and loads the
     * command-name table, so meta() and chunks() are complete without
     * a replay(). fatal() on any defect.
     */
    explicit TraceReader(const std::string &path);

    const TraceMeta &meta() const { return meta_; }
    const std::string &path() const { return path_; }
    uint64_t fileBytes() const { return fileBytes_; }

    /**
     * Decode the whole file, delivering every event to every sink in
     * order. Bundles are delivered in BundleBatches (one Sink::onBatch
     * per full batch, flushed before any command or memory-model
     * event), mirroring a live Execution's batched delivery. May be
     * called repeatedly (each call re-reads from the first chunk).
     * Verifies per-chunk CRCs and counts and the file totals; fatal()
     * on any mismatch.
     */
    void replay(const std::vector<trace::Sink *> &sinks);

    /** Per-chunk summaries (populated at open). */
    const std::vector<ChunkInfo> &chunks() const { return chunks_; }

  private:
    /** Per-kind event counts accumulated across a replay pass. */
    struct EventTotals
    {
        uint64_t bundles = 0;
        uint64_t commandEvents = 0;
        uint64_t memAccesses = 0;
    };

    [[noreturn]] void corrupt(const char *what);
    /** Read and validate one chunk header at the current position. */
    ChunkInfo readChunkHeader(uint32_t &crc);
    /** Read, CRC-check and decompress a chunk payload into @p out;
     *  returns the decoded span. */
    std::pair<const uint8_t *, size_t>
    readChunkPayload(const ChunkInfo &info, uint32_t crc,
                     std::string &stored, std::string &raw);
    /** Structure-only pass: index chunks, decode the name table. */
    void scanChunks();
    void decodeEvents(const uint8_t *p, const uint8_t *end,
                      const ChunkInfo &info,
                      const std::vector<trace::Sink *> &sinks,
                      EventTotals &totals);
    void decodeNames(const uint8_t *p, const uint8_t *end,
                     const ChunkInfo &info);

    std::string path_;
    std::ifstream in_;
    uint64_t fileBytes_ = 0;
    uint64_t dataStart_ = 0;
    TraceMeta meta_;
    std::vector<ChunkInfo> chunks_;
};

} // namespace interp::tracefile

#endif // INTERP_TRACEFILE_READER_HH
