#include "tracefile/reader.hh"

#include <cstring>

#include "support/logging.hh"
#include "tracefile/writer.hh" // CodecState, classHasMemAddr/Target

namespace interp::tracefile {

namespace {

constexpr uint8_t kMaxInstClass = (uint8_t)trace::InstClass::Nop;
constexpr uint8_t kMaxCategory = (uint8_t)trace::Category::Precompile;

} // namespace

void
TraceReader::corrupt(const char *what)
{
    fatal("trace file %s: %s", path_.c_str(), what);
}

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    in_.open(path_, std::ios::binary);
    if (!in_)
        fatal("cannot open trace file %s", path_.c_str());
    in_.seekg(0, std::ios::end);
    fileBytes_ = (uint64_t)in_.tellg();
    in_.seekg(0);

    char fixed[kFixedHeaderBytes];
    in_.read(fixed, sizeof(fixed));
    if (!in_)
        corrupt("truncated header");
    if (std::memcmp(fixed, kMagic, sizeof(kMagic)) != 0)
        corrupt("bad magic (not a trace file)");
    const uint8_t *p = (const uint8_t *)fixed + sizeof(kMagic);
    const uint8_t *end = (const uint8_t *)fixed + sizeof(fixed);
    uint32_t version = 0, flags = 0;
    getU32(p, end, version);
    getU32(p, end, flags);
    if (version != kVersion)
        fatal("trace file %s: format version %u, this build reads "
              "version %u", path_.c_str(), version, kVersion);
    if (!(flags & kFlagFinalized))
        corrupt("not finalized (recording aborted?)");
    meta_.finished = (flags & kFlagRunFinished) != 0;
    getU64(p, end, meta_.programBytes);
    getU64(p, end, meta_.commands);
    getU64(p, end, meta_.totalEvents);
    getU64(p, end, meta_.totalBundles);
    getU64(p, end, meta_.totalInsts);
    getU64(p, end, meta_.totalCommandEvents);
    getU64(p, end, meta_.totalMemAccesses);
    getU64(p, end, meta_.numChunks);

    auto read_string = [this](std::string &out, const char *what) {
        char len_buf[4];
        in_.read(len_buf, 4);
        if (!in_)
            corrupt("truncated header");
        const uint8_t *lp = (const uint8_t *)len_buf;
        uint32_t len = 0;
        getU32(lp, lp + 4, len);
        if (len > kMaxHeaderString)
            fatal("trace file %s: implausible %s length %u",
                  path_.c_str(), what, len);
        out.resize(len);
        in_.read(out.data(), (std::streamsize)len);
        if (!in_)
            corrupt("truncated header");
    };
    read_string(meta_.lang, "language");
    read_string(meta_.name, "benchmark name");
    dataStart_ = (uint64_t)in_.tellg();
    scanChunks();
}

ChunkInfo
TraceReader::readChunkHeader(uint32_t &crc)
{
    ChunkInfo info;
    info.offset = (uint64_t)in_.tellg();
    char hdr[kChunkHeaderBytes];
    in_.read(hdr, sizeof(hdr));
    if (!in_)
        corrupt("truncated chunk header");
    const uint8_t *p = (const uint8_t *)hdr;
    const uint8_t *end = p + sizeof(hdr);
    uint32_t magic = 0;
    uint16_t reserved = 0;
    getU32(p, end, magic);
    if (magic != kChunkMagic)
        corrupt("bad chunk magic");
    info.type = *p++;
    info.codec = *p++;
    getU16(p, end, reserved);
    getU32(p, end, info.rawBytes);
    getU32(p, end, info.storedBytes);
    getU32(p, end, info.eventCount);
    getU32(p, end, crc);
    getU64(p, end, info.instCount);
    if (info.type != kChunkEvents && info.type != kChunkNames)
        corrupt("unknown chunk type");
    if (info.codec != kCodecRaw && info.codec != kCodecRle)
        corrupt("unknown chunk codec");
    if (info.rawBytes > kMaxChunkBytes || info.storedBytes > kMaxChunkBytes)
        corrupt("implausible chunk size");
    if (info.offset + kChunkHeaderBytes + info.storedBytes > fileBytes_)
        corrupt("truncated chunk payload");
    return info;
}

std::pair<const uint8_t *, size_t>
TraceReader::readChunkPayload(const ChunkInfo &info, uint32_t crc,
                              std::string &stored, std::string &raw)
{
    stored.resize(info.storedBytes);
    in_.read(stored.data(), (std::streamsize)info.storedBytes);
    if (!in_)
        corrupt("truncated chunk payload");
    if (crc32(stored.data(), stored.size()) != crc)
        corrupt("chunk CRC mismatch");
    if (info.codec == kCodecRle) {
        if (!rleDecompress((const uint8_t *)stored.data(), stored.size(),
                           info.rawBytes, raw))
            corrupt("chunk RLE payload undecodable");
        return {(const uint8_t *)raw.data(), raw.size()};
    }
    if (stored.size() != info.rawBytes)
        corrupt("chunk size fields disagree");
    return {(const uint8_t *)stored.data(), stored.size()};
}

void
TraceReader::scanChunks()
{
    std::string stored, raw;
    for (uint64_t i = 0; i < meta_.numChunks; ++i) {
        uint32_t crc = 0;
        ChunkInfo info = readChunkHeader(crc);
        if (info.type == kChunkNames) {
            auto [payload, len] = readChunkPayload(info, crc, stored, raw);
            decodeNames(payload, payload + len, info);
        } else {
            in_.seekg((std::streamoff)info.storedBytes, std::ios::cur);
        }
        chunks_.push_back(info);
    }
    if ((uint64_t)in_.tellg() != fileBytes_)
        corrupt("trailing bytes after final chunk");
}

void
TraceReader::decodeEvents(const uint8_t *p, const uint8_t *end,
                          const ChunkInfo &info,
                          const std::vector<trace::Sink *> &sinks,
                          EventTotals &totals)
{
    using trace::BundleBatch;

    // Codec state, held in the packed column representation so each
    // decoded bundle goes straight into the batch's SoA columns
    // (pushPacked) without materializing a Bundle struct. cat_bits is
    // pre-shifted into clsCat position; attr_bits carries the
    // memModel/native/system flag bits (taken is per-bundle, from the
    // event tag).
    uint32_t next_pc = 0;
    uint32_t last_mem_addr = 0;
    uint8_t cat_bits = (uint8_t)trace::Category::Execute
                       << BundleBatch::kCatShift;
    uint8_t attr_bits = 0;
    trace::CommandId command = trace::kNoCommand;

    uint64_t events = 0;
    uint64_t insts = 0;
    // Decoded bundles accumulate here and reach the sinks through one
    // onBatch call per full batch — the same batched delivery (and
    // therefore the same sink-visible event order) as a live
    // Execution. Non-bundle events flush first to keep their place in
    // the stream.
    trace::BundleBatch batch;
    auto flush = [&] {
        if (batch.empty())
            return;
        for (trace::Sink *sink : sinks)
            sink->onBatch(batch);
        batch.clear();
    };
    while (p < end) {
        uint8_t tag = *p++;
        if (tag & kTagBundleBit) {
            uint8_t cls = tag & kBundleClsMask;
            if (cls > kMaxInstClass)
                corrupt("bundle with unknown instruction class");
            uint32_t pc;
            if (tag & kBundleSeqPcBit) {
                pc = next_pc;
            } else {
                int64_t delta;
                if (!getSVarint(p, end, delta))
                    corrupt("truncated bundle PC delta");
                pc = (uint32_t)((int64_t)next_pc + delta);
            }
            uint32_t bcount;
            if (tag & kBundleCountOneBit) {
                bcount = 1;
            } else {
                uint64_t count;
                if (!getVarint(p, end, count))
                    corrupt("truncated bundle count");
                if (count == 0 || count > 0xffffffffull)
                    corrupt("bundle with implausible count");
                bcount = (uint32_t)count;
            }
            uint32_t mem_addr = 0;
            if (classHasMemAddr((trace::InstClass)cls)) {
                int64_t delta;
                if (!getSVarint(p, end, delta))
                    corrupt("truncated data-address delta");
                mem_addr = (uint32_t)((int64_t)last_mem_addr + delta);
                last_mem_addr = mem_addr;
            }
            uint32_t target = 0;
            if (classHasTarget((trace::InstClass)cls)) {
                int64_t delta;
                if (!getSVarint(p, end, delta))
                    corrupt("truncated branch target");
                target = (uint32_t)((int64_t)pc + delta);
            }
            uint8_t flag_bits = attr_bits;
            if (tag & kBundleTakenBit)
                flag_bits |= BundleBatch::kTakenBit;
            next_pc = pc + bcount * 4;
            insts += bcount;
            ++events;
            ++totals.bundles;
            batch.pushPacked(pc, bcount, (uint8_t)(cls | cat_bits),
                             flag_bits, command, mem_addr, target);
            if (batch.full())
                flush();
        } else if (tag == kTagCommand) {
            uint64_t id;
            if (!getVarint(p, end, id))
                corrupt("truncated command event");
            if (id > 0xffff)
                corrupt("command id out of range");
            command = (trace::CommandId)id;
            ++events;
            ++totals.commandEvents;
            flush();
            for (trace::Sink *sink : sinks)
                sink->onCommand((trace::CommandId)id);
        } else if (tag == kTagMemAccess) {
            ++events;
            ++totals.memAccesses;
            flush();
            for (trace::Sink *sink : sinks)
                sink->onMemModelAccess();
        } else if (tag == kTagState) {
            if (p >= end)
                corrupt("truncated state event");
            uint8_t bits = *p++;
            if ((bits & kStateCatMask) > kMaxCategory)
                corrupt("state event with unknown category");
            cat_bits = (uint8_t)((bits & kStateCatMask)
                                 << BundleBatch::kCatShift);
            attr_bits = 0;
            if (bits & kStateMemModelBit)
                attr_bits |= BundleBatch::kMemModelBit;
            if (bits & kStateNativeBit)
                attr_bits |= BundleBatch::kNativeBit;
            if (bits & kStateSystemBit)
                attr_bits |= BundleBatch::kSystemBit;
            if (bits & kStateCommandBit) {
                uint64_t id;
                if (!getVarint(p, end, id))
                    corrupt("truncated state command id");
                if (id > 0xffff)
                    corrupt("command id out of range");
                command = (trace::CommandId)id;
            }
            ++events;
        } else {
            corrupt("unknown event tag");
        }
    }
    flush();
    if (events != info.eventCount)
        corrupt("chunk event count does not match payload");
    if (insts != info.instCount)
        corrupt("chunk instruction count does not match payload");
}

void
TraceReader::decodeNames(const uint8_t *p, const uint8_t *end,
                         const ChunkInfo &info)
{
    uint64_t count;
    if (!getVarint(p, end, count))
        corrupt("truncated name table");
    if (count != info.eventCount || count > 0x10000)
        corrupt("implausible name-table size");
    std::vector<std::string> names;
    names.reserve((size_t)count);
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t len;
        if (!getVarint(p, end, len))
            corrupt("truncated name table");
        if (len > kMaxHeaderString || (uint64_t)(end - p) < len)
            corrupt("truncated name table");
        names.emplace_back((const char *)p, (size_t)len);
        p += len;
    }
    if (p != end)
        corrupt("trailing bytes in name table");
    meta_.commandNames = std::move(names);
}

void
TraceReader::replay(const std::vector<trace::Sink *> &sinks)
{
    in_.clear();
    in_.seekg((std::streamoff)dataStart_);

    uint64_t events = 0, insts = 0;
    EventTotals totals;
    std::string stored, raw;
    for (uint64_t i = 0; i < meta_.numChunks; ++i) {
        uint32_t crc = 0;
        ChunkInfo info = readChunkHeader(crc);
        auto [payload, len] = readChunkPayload(info, crc, stored, raw);
        if (info.type == kChunkEvents) {
            decodeEvents(payload, payload + len, info, sinks, totals);
            events += info.eventCount;
            insts += info.instCount;
        } else {
            decodeNames(payload, payload + len, info);
        }
    }

    if ((uint64_t)in_.tellg() != fileBytes_)
        corrupt("trailing bytes after final chunk");
    if (events != meta_.totalEvents || insts != meta_.totalInsts ||
        totals.bundles != meta_.totalBundles ||
        totals.commandEvents != meta_.totalCommandEvents ||
        totals.memAccesses != meta_.totalMemAccesses)
        corrupt("file totals do not match decoded events");
}

} // namespace interp::tracefile
