/**
 * @file
 * TraceWriter: a trace::Sink that records the instrumented event
 * stream into a .itr file (see format.hh).
 *
 * Usage mirrors the paper's capture-once workflow: attach a writer to
 * the trace::Execution of one benchmark run (harness::runOrReplay does
 * this for `--record`), let the run emit its events, then store the
 * run's results (command count, finished flag, command names) and call
 * finish(). finish() seals the last chunk, appends the command-name
 * table and patches the header totals; a file without that patch is
 * rejected by TraceReader, so an aborted recording can never
 * masquerade as a complete trace.
 */

#ifndef INTERP_TRACEFILE_WRITER_HH
#define INTERP_TRACEFILE_WRITER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tracefile/format.hh"
#include "trace/events.hh"

namespace interp::tracefile {

/** Per-chunk delta/attribution state shared by encoder and decoder. */
struct CodecState
{
    uint32_t nextPc = 0;      ///< expected PC of the next bundle
    uint32_t lastMemAddr = 0; ///< previous load/store data address
    trace::Category cat = trace::Category::Execute;
    trace::CommandId command = trace::kNoCommand;
    bool memModel = false;
    bool native = false;
    bool system = false;
};

/** True for classes whose bundles carry a meaningful target PC. */
constexpr bool
classHasTarget(trace::InstClass cls)
{
    switch (cls) {
      case trace::InstClass::CondBranch:
      case trace::InstClass::Jump:
      case trace::InstClass::IndirectJump:
      case trace::InstClass::Call:
      case trace::InstClass::Return:
        return true;
      default:
        return false;
    }
}

/** True for classes whose bundles carry a data address. */
constexpr bool
classHasMemAddr(trace::InstClass cls)
{
    return cls == trace::InstClass::Load ||
           cls == trace::InstClass::Store;
}

/** Event sink writing the binary trace file. */
class TraceWriter : public trace::Sink
{
  public:
    /**
     * Create @p path and write a provisional header. @p lang and
     * @p bench_name identify the run (harness::langName / spec name);
     * @p chunk_bytes is the raw-payload chunk size (tests shrink it
     * to exercise chunk boundaries).
     */
    TraceWriter(const std::string &path, const std::string &lang,
                const std::string &bench_name,
                size_t chunk_bytes = kDefaultChunkBytes);

    /** Warns if the writer was abandoned without finish(). */
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    // --- trace::Sink ------------------------------------------------------
    void onBundle(const trace::Bundle &bundle) override;
    /**
     * Encode a batch straight from the SoA columns (no Bundle
     * materialization). Byte-identical to encoding the same bundles
     * one at a time: the codec state machine is shared.
     */
    void onBatch(const trace::BundleBatch &batch) override;
    void onCommand(trace::CommandId command) override;
    void onMemModelAccess() override;

    // --- run results (before finish) --------------------------------------
    /** Store the run's Measurement-level results in the header. */
    void setRunResult(uint64_t program_bytes, uint64_t commands,
                      bool finished);
    /** Store the interned command-name table (written as a chunk). */
    void setCommandNames(const std::vector<std::string> &names);

    /** Seal the file: flush, write names, patch header totals. */
    void finish();

    const std::string &path() const { return path_; }
    uint64_t eventsWritten() const { return totalEvents_; }
    /** Bytes in the file so far (header + sealed chunks). */
    uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    void beginEvent();
    void emitStateChange(trace::Category cat, bool mem_model,
                         bool native, bool system,
                         trace::CommandId command);
    /** The codec proper; onBundle and onBatch both land here. */
    void encodeBundle(uint32_t pc, uint32_t count, trace::InstClass cls,
                      trace::Category cat, bool mem_model, bool native,
                      bool system, bool taken, trace::CommandId command,
                      uint32_t mem_addr, uint32_t target);
    void flushEventChunk();
    void writeChunk(uint8_t type, const std::string &raw,
                    uint32_t event_count, uint64_t inst_count);

    std::string path_;
    std::ofstream out_;
    std::string lang_;
    std::string name_;
    size_t chunkBytes_;

    std::string buf_;        ///< raw payload of the open chunk
    uint32_t bufEvents_ = 0; ///< events encoded into buf_
    uint64_t bufInsts_ = 0;  ///< instructions covered by buf_
    CodecState st_;

    uint64_t programBytes_ = 0;
    uint64_t commands_ = 0;
    bool runFinished_ = false;
    std::vector<std::string> names_;

    uint64_t totalEvents_ = 0;
    uint64_t totalBundles_ = 0;
    uint64_t totalInsts_ = 0;
    uint64_t totalCommandEvents_ = 0;
    uint64_t totalMemAccesses_ = 0;
    uint64_t numChunks_ = 0;
    uint64_t bytesWritten_ = 0;
    bool finished_ = false;
};

} // namespace interp::tracefile

#endif // INTERP_TRACEFILE_WRITER_HH
