#include "tracefile/format.hh"

#include <array>

namespace interp::tracefile {

// --- little-endian serialization ------------------------------------------

void
putU16(std::string &out, uint16_t v)
{
    out.push_back((char)(v & 0xff));
    out.push_back((char)(v >> 8));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

bool
getU16(const uint8_t *&p, const uint8_t *end, uint16_t &v)
{
    if (end - p < 2)
        return false;
    v = (uint16_t)(p[0] | (p[1] << 8));
    p += 2;
    return true;
}

bool
getU32(const uint8_t *&p, const uint8_t *end, uint32_t &v)
{
    if (end - p < 4)
        return false;
    v = (uint32_t)p[0] | ((uint32_t)p[1] << 8) | ((uint32_t)p[2] << 16) |
        ((uint32_t)p[3] << 24);
    p += 4;
    return true;
}

bool
getU64(const uint8_t *&p, const uint8_t *end, uint64_t &v)
{
    if (end - p < 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= (uint64_t)p[i] << (8 * i);
    p += 8;
    return true;
}

// --- varints ---------------------------------------------------------------

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back((char)(0x80 | (v & 0x7f)));
        v >>= 7;
    }
    out.push_back((char)v);
}

void
putSVarint(std::string &out, int64_t v)
{
    putVarint(out, zigzag(v));
}

// --- crc32 -----------------------------------------------------------------

namespace {

/**
 * Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
 * table[k][b] is the CRC of byte b followed by k zero bytes. Eight
 * lookups then advance the CRC a full 8 input bytes per iteration —
 * same polynomial, bit order and result as the bytewise loop, ~4x
 * the throughput on the multi-hundred-MB tape files.
 */
std::array<std::array<uint32_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t n = 0; n < 256; ++n) {
        uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[0][n] = c;
    }
    for (int k = 1; k < 8; ++k)
        for (uint32_t n = 0; n < 256; ++n)
            t[k][n] = t[0][t[k - 1][n] & 0xff] ^ (t[k - 1][n] >> 8);
    return t;
}

} // namespace

uint32_t
crc32(const void *data, size_t len)
{
    static const auto t = makeCrcTables();
    const uint8_t *p = (const uint8_t *)data;
    uint32_t crc = 0xffffffffu;
    while (len >= 8) {
        // Byte-order-independent 8-byte step (no unaligned loads).
        uint32_t lo = crc ^ ((uint32_t)p[0] | ((uint32_t)p[1] << 8) |
                             ((uint32_t)p[2] << 16) |
                             ((uint32_t)p[3] << 24));
        crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
              t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^
              t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
        p += 8;
        len -= 8;
    }
    while (len--)
        crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

// --- byte RLE --------------------------------------------------------------

namespace {

constexpr size_t kMinRun = 4;    ///< shorter runs stay literal
constexpr size_t kMaxRun = 130;  ///< 0xff - 0x80 + 3
constexpr size_t kMaxLiteral = 128;

void
flushLiteral(std::string &out, const std::string &raw, size_t begin,
             size_t end)
{
    while (begin < end) {
        size_t n = std::min(end - begin, kMaxLiteral);
        out.push_back((char)(n - 1));
        out.append(raw, begin, n);
        begin += n;
    }
}

} // namespace

std::string
rleCompress(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() / 2 + 16);
    size_t lit_begin = 0;
    size_t i = 0;
    while (i < raw.size()) {
        size_t run = 1;
        while (i + run < raw.size() && raw[i + run] == raw[i] &&
               run < kMaxRun)
            ++run;
        if (run >= kMinRun) {
            flushLiteral(out, raw, lit_begin, i);
            out.push_back((char)(0x80 + (run - 3)));
            out.push_back(raw[i]);
            i += run;
            lit_begin = i;
        } else {
            i += run;
        }
    }
    flushLiteral(out, raw, lit_begin, raw.size());
    return out;
}

bool
rleDecompress(const uint8_t *stored, size_t stored_len,
              size_t expected_bytes, std::string &out)
{
    out.clear();
    out.reserve(expected_bytes);
    const uint8_t *p = stored;
    const uint8_t *end = stored + stored_len;
    while (p < end) {
        uint8_t c = *p++;
        if (c < 0x80) {
            size_t n = (size_t)c + 1;
            if ((size_t)(end - p) < n || out.size() + n > expected_bytes)
                return false;
            out.append((const char *)p, n);
            p += n;
        } else {
            size_t n = (size_t)(c - 0x80) + 3;
            if (p >= end || out.size() + n > expected_bytes)
                return false;
            out.append(n, (char)*p++);
        }
    }
    return out.size() == expected_bytes;
}

} // namespace interp::tracefile
