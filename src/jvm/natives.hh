/**
 * @file
 * The VM's native runtime libraries: graphics (software rasterizer),
 * console/file I/O. Per §3.2, work done here is attributed to the
 * `native` category — for graphics-heavy programs (hanoi, asteroids)
 * it dominates the execute component and the interpreter itself stops
 * being the bottleneck.
 */

#ifndef INTERP_JVM_NATIVES_HH
#define INTERP_JVM_NATIVES_HH

#include <memory>

#include "gfx/framebuffer.hh"
#include "jvm/heap.hh"
#include "minic/builtins.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"

namespace interp::jvm {

/** Dispatches InvokeNative bytecodes (Builtin numbering). */
class NativeRuntime
{
  public:
    NativeRuntime(trace::Execution &exec, vfs::FileSystem &fs);

    /**
     * Invoke native @p id with @p args (already popped, left-to-right).
     * @param returns_value set to whether a result was produced.
     * @return the result value when returns_value.
     */
    int32_t invoke(int id, const int32_t *args, int num_args, Heap &heap,
                   bool &returns_value);

    /** Framebuffer created by gfx_init (null before). */
    gfx::Framebuffer *framebuffer() { return fb.get(); }

  private:
    /** Charge rasterizer work: ~@p pixels pixel writes near @p base. */
    void chargeDraw(uint64_t pixels);
    /** Charge kernel-side copy work for I/O of @p bytes. */
    void chargeKernel(uint32_t bytes);
    /** Read a NUL- or length-terminated string from a byte array. */
    std::string heapString(Heap &heap, int32_t ref);

    trace::Execution &exec;
    vfs::FileSystem &fs;
    std::unique_ptr<gfx::Framebuffer> fb;
    trace::RoutineId rGfx;
    trace::RoutineId rIo;
    trace::RoutineId rKernel;
};

} // namespace interp::jvm

#endif // INTERP_JVM_NATIVES_HH
