#include "jvm/heap.hh"

#include "support/logging.hh"

namespace interp::jvm {

Heap::Heap(trace::Execution &exec_) : exec(exec_)
{
    rAlloc = exec.code().registerRoutine("jvm.rt.alloc", 96,
                                         trace::Segment::Runtime);
    rGc = exec.code().registerRoutine("jvm.rt.gc", 256,
                                      trace::Segment::Runtime);
}

int32_t
Heap::alloc(uint8_t elem_bytes, int32_t length)
{
    if (length < 0)
        fatal("jvm: negative array length %d", length);
    maybeCollect();

    trace::RoutineScope r(exec, rAlloc);
    exec.alu(8);       // size computation, limit checks
    exec.branch(true); // fast path available?

    int32_t index;
    if (!freeList.empty()) {
        index = freeList.back();
        freeList.pop_back();
        exec.load(&freeList);
    } else {
        index = (int32_t)objects.size();
        objects.emplace_back();
    }
    HeapObject &obj = objects[index];
    obj.elemBytes = elem_bytes;
    obj.length = length;
    obj.marked = false;
    obj.live = true;
    obj.data.assign((size_t)length * elem_bytes, 0);
    ++liveCount;
    ++sinceGc;
    ++totalAllocs;

    // Header initialization + zero fill (one store per 32 bytes).
    exec.store(&obj.length);
    exec.store(&obj.elemBytes);
    size_t bytes = obj.data.size();
    for (size_t off = 0; off < bytes; off += 32)
        exec.store(obj.data.data() + off);
    exec.alu((uint32_t)(bytes / 16 + 2));

    return kRefBase + index;
}

bool
Heap::isRef(int32_t value) const
{
    if (value < kRefBase)
        return false;
    size_t index = (size_t)(value - kRefBase);
    return index < objects.size() && objects[index].live;
}

HeapObject &
Heap::object(int32_t ref)
{
    if (!isRef(ref))
        fatal("jvm: bad reference 0x%x", (unsigned)ref);
    return objects[(size_t)(ref - kRefBase)];
}

const HeapObject &
Heap::object(int32_t ref) const
{
    if (ref < kRefBase ||
        (size_t)(ref - kRefBase) >= objects.size() ||
        !objects[(size_t)(ref - kRefBase)].live)
        fatal("jvm: bad reference 0x%x", (unsigned)ref);
    return objects[(size_t)(ref - kRefBase)];
}

int32_t
Heap::loadElem(int32_t ref, int32_t index)
{
    HeapObject &obj = object(ref);
    if (index < 0 || index >= obj.length)
        fatal("jvm: index %d out of bounds [0,%d)", index, obj.length);
    if (obj.elemBytes == 4) {
        int32_t value;
        __builtin_memcpy(&value, obj.data.data() + (size_t)index * 4, 4);
        return value;
    }
    return obj.data[(size_t)index];
}

void
Heap::storeElem(int32_t ref, int32_t index, int32_t value)
{
    HeapObject &obj = object(ref);
    if (index < 0 || index >= obj.length)
        fatal("jvm: index %d out of bounds [0,%d)", index, obj.length);
    if (obj.elemBytes == 4)
        __builtin_memcpy(obj.data.data() + (size_t)index * 4, &value, 4);
    else
        obj.data[(size_t)index] = (uint8_t)value;
}

void
Heap::maybeCollect()
{
    if (sinceGc < gcThreshold || !rootScanner)
        return;
    std::vector<const int32_t *> ranges;
    std::vector<size_t> lengths;
    rootScanner(rootCtx, ranges, lengths);
    collect(ranges, lengths);
}

size_t
Heap::collect(const std::vector<const int32_t *> &root_ranges,
              const std::vector<size_t> &root_lengths)
{
    trace::RoutineScope r(exec, rGc);
    ++gcRuns;
    sinceGc = 0;

    // Mark phase: conservative scan of every root slot.
    INTERP_ASSERT(root_ranges.size() == root_lengths.size());
    for (size_t i = 0; i < root_ranges.size(); ++i) {
        const int32_t *slots = root_ranges[i];
        for (size_t j = 0; j < root_lengths[i]; ++j) {
            exec.load(&slots[j]);
            exec.alu(2);        // range test
            exec.branch(false); // "is it a plausible ref?"
            if (isRef(slots[j])) {
                HeapObject &obj = objects[(size_t)(slots[j] - kRefBase)];
                if (!obj.marked) {
                    obj.marked = true;
                    exec.store(&obj.marked);
                }
            }
        }
    }

    // Sweep phase.
    size_t freed = 0;
    for (size_t i = 0; i < objects.size(); ++i) {
        HeapObject &obj = objects[i];
        exec.load(&obj.marked);
        exec.branch(obj.live && !obj.marked);
        if (!obj.live)
            continue;
        if (obj.marked) {
            obj.marked = false;
            continue;
        }
        obj.live = false;
        obj.data.clear();
        obj.data.shrink_to_fit();
        freeList.push_back((int32_t)i);
        --liveCount;
        ++freed;
        exec.store(&obj.live);
        exec.alu(4);
    }
    return freed;
}

} // namespace interp::jvm
