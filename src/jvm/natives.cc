#include "jvm/natives.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/logging.hh"

namespace interp::jvm {

using minic::Builtin;

NativeRuntime::NativeRuntime(trace::Execution &exec_, vfs::FileSystem &fs_)
    : exec(exec_), fs(fs_)
{
    rGfx = exec.code().registerRoutine("jvm.native.gfx", 1400,
                                       trace::Segment::NativeLib);
    rIo = exec.code().registerRoutine("jvm.native.io", 300,
                                      trace::Segment::NativeLib);
    rKernel = exec.code().registerRoutine("jvm.native.kernel", 200,
                                          trace::Segment::NativeLib);
}

void
NativeRuntime::chargeDraw(uint64_t pixels)
{
    // The rasterizer's inner loops: address generation, masking and a
    // byte store per pixel; one emitted store per 8 pixels keeps the
    // event volume bounded while touching the real framebuffer pages.
    trace::NativeScope nat(exec);
    trace::RoutineScope r(exec, rGfx);
    exec.alu(40); // setup: clipping, edge tables
    if (!fb)
        return;
    const auto &data = fb->pixels();
    uint64_t stores = pixels / 8 + 1;
    size_t step = std::max<size_t>(64, data.size() / (stores + 1));
    size_t off = 0;
    for (uint64_t i = 0; i < stores; ++i) {
        exec.store(data.data() + off);
        exec.shortInt(3);
        exec.alu(2);
        off = (off + step) % (data.size() ? data.size() : 1);
        if ((i & 15) == 15)
            exec.branch(true); // scanline loop
    }
}

void
NativeRuntime::chargeKernel(uint32_t bytes)
{
    trace::SystemScope sys(exec);
    trace::RoutineScope r(exec, rKernel);
    exec.alu(80);
    exec.shortInt(16);
    for (uint32_t off = 0; off < bytes; off += 32) {
        exec.loadAt(0xffe00000u + off % 8192);
        exec.storeAt(0xffe10020u + off % 8192);
        exec.alu(6);
    }
}

std::string
NativeRuntime::heapString(Heap &heap, int32_t ref)
{
    const HeapObject &obj = heap.object(ref);
    std::string out;
    for (int32_t i = 0; i < obj.length; ++i) {
        char c = (char)obj.data[(size_t)i];
        if (c == '\0')
            break;
        out.push_back(c);
    }
    return out;
}

int32_t
NativeRuntime::invoke(int id, const int32_t *args, int num_args,
                      Heap &heap, bool &returns_value)
{
    const auto &info = minic::builtinInfo((Builtin)id);
    if (num_args != info.numArgs)
        panic("native %s: expected %d args, got %d", info.name,
              info.numArgs, num_args);
    returns_value = info.returnsValue;

    switch ((Builtin)id) {
      case Builtin::PrintInt: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        exec.alu(60); // itoa
        exec.shortInt(10);
        std::string text = std::to_string(args[0]);
        fs.write(1, text.data(), (int64_t)text.size());
        chargeKernel((uint32_t)text.size());
        return 0;
      }
      case Builtin::PrintChar: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        exec.alu(10);
        char c = (char)args[0];
        fs.write(1, &c, 1);
        chargeKernel(1);
        return 0;
      }
      case Builtin::PrintStr: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        std::string text = heapString(heap, args[0]);
        exec.alu((uint32_t)text.size() / 4 + 10);
        fs.write(1, text.data(), (int64_t)text.size());
        chargeKernel((uint32_t)text.size());
        return 0;
      }
      case Builtin::ReadInt: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        exec.alu(50);
        std::string line;
        char c;
        while (fs.read(0, &c, 1) == 1 && c != '\n')
            line.push_back(c);
        chargeKernel((uint32_t)line.size());
        return atoi(line.c_str());
      }
      case Builtin::Open: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        exec.alu(40);
        std::string path = heapString(heap, args[0]);
        auto mode = args[1] == 0 ? vfs::OpenMode::Read
                    : args[1] == 2 ? vfs::OpenMode::Append
                                   : vfs::OpenMode::Write;
        chargeKernel((uint32_t)path.size());
        return fs.open(path, mode);
      }
      case Builtin::Read: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        exec.alu(2500);   // java.io stream layers above the syscall
        exec.shortInt(80);
        HeapObject &buf = heap.object(args[1]);
        int32_t want = std::min(args[2], buf.length);
        std::vector<char> tmp((size_t)std::max(want, 0));
        int64_t n = fs.read(args[0], tmp.data(), want);
        for (int64_t i = 0; i < n; ++i)
            buf.data[(size_t)i] = (uint8_t)tmp[(size_t)i];
        chargeKernel(n > 0 ? (uint32_t)n : 0);
        return (int32_t)n;
      }
      case Builtin::Write: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        exec.alu(2500);   // java.io stream layers above the syscall
        exec.shortInt(80);
        HeapObject &buf = heap.object(args[1]);
        int32_t n = std::min(args[2], buf.length);
        int64_t written = fs.write(
            args[0], (const char *)buf.data.data(), n);
        chargeKernel(n > 0 ? (uint32_t)n : 0);
        return (int32_t)written;
      }
      case Builtin::Close: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rIo);
        exec.alu(20);
        chargeKernel(0);
        return fs.close(args[0]) ? 0 : -1;
      }
      case Builtin::Exit:
        // Handled by the VM (halts the loop); nothing to do here.
        return args[0];
      case Builtin::GfxInit: {
        trace::NativeScope nat(exec);
        trace::RoutineScope r(exec, rGfx);
        exec.alu(200);
        int w = std::clamp(args[0], 1, 1024);
        int h = std::clamp(args[1], 1, 1024);
        fb = std::make_unique<gfx::Framebuffer>(w, h);
        return 0;
      }
      case Builtin::GfxClear:
        if (fb) {
            fb->clear((uint8_t)args[0]);
            chargeDraw((uint64_t)fb->width() * fb->height() / 4);
        }
        return 0;
      case Builtin::GfxLine:
        if (fb) {
            fb->drawLine(args[0], args[1], args[2], args[3],
                         (uint8_t)args[4]);
            chargeDraw((uint64_t)std::max(std::abs(args[2] - args[0]),
                                          std::abs(args[3] - args[1])) +
                       1);
        }
        return 0;
      case Builtin::GfxFillRect:
        if (fb) {
            fb->fillRect(args[0], args[1], args[2], args[3],
                         (uint8_t)args[4]);
            chargeDraw((uint64_t)std::max(args[2], 0) *
                       (uint64_t)std::max(args[3], 0));
        }
        return 0;
      case Builtin::GfxRect:
        if (fb) {
            fb->drawRect(args[0], args[1], args[2], args[3],
                         (uint8_t)args[4]);
            chargeDraw(2ull * (std::max(args[2], 0) + std::max(args[3], 0)));
        }
        return 0;
      case Builtin::GfxCircle:
        if (fb) {
            fb->drawCircle(args[0], args[1], args[2], (uint8_t)args[3]);
            chargeDraw((uint64_t)(6.3 * std::max(args[2], 1)));
        }
        return 0;
      case Builtin::GfxFillCircle:
        if (fb) {
            fb->fillCircle(args[0], args[1], args[2], (uint8_t)args[3]);
            chargeDraw((uint64_t)(3.15 * args[2] * args[2]));
        }
        return 0;
      case Builtin::GfxText:
        if (fb) {
            std::string text = heapString(heap, args[2]);
            fb->drawText(args[0], args[1], text, (uint8_t)args[3]);
            chargeDraw(text.size() * 35);
        }
        return 0;
      case Builtin::GfxPixel:
        if (fb) {
            fb->setPixel(args[0], args[1], (uint8_t)args[2]);
            chargeDraw(1);
        }
        return 0;
      case Builtin::GfxFlush:
        // Presenting the frame: akin to an X protocol round trip.
        if (fb)
            chargeKernel((uint32_t)(fb->width() * fb->height() / 16));
        return 0;
      default:
        fatal("native routine %d not available on the JVM target", id);
    }
}

} // namespace interp::jvm
