#include "jvm/tier2.hh"

#include <algorithm>

#include "jvm/vm.hh"

namespace interp::jvm {

using trace::Category;
using trace::CategoryScope;
using trace::RoutineScope;

uint64_t
PairProfile::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : counts)
        sum += c;
    return sum;
}

namespace {

/** May @p op head a superinstruction? Control transfers may not:
 *  the fused handler must fall straight through into its tail. */
bool
fusableHead(Bc op)
{
    switch (op) {
      case Bc::IfZero: case Bc::IfNonZero: case Bc::Goto:
      case Bc::InvokeStatic: case Bc::InvokeNative:
      case Bc::Return: case Bc::IReturn:
        return false;
      default:
        return true;
    }
}

bool
isBranch(Bc op)
{
    return op == Bc::IfZero || op == Bc::IfNonZero || op == Bc::Goto;
}

} // namespace

std::shared_ptr<const TierArtifact>
buildTierArtifact(trace::Execution *exec, const Module &module,
                  const PairProfile &pairs, const TierOptions &opt)
{
    auto artifact = std::make_shared<TierArtifact>();
    artifact->module = module;
    artifact->hasFusion = opt.fuse;
    artifact->hasIc = opt.inlineCache;

    trace::RoutineId routine = 0;
    if (exec)
        routine = exec->code().registerRoutine("jvm.tierup", 96);

    // Select the pairs to fuse: hottest first, deterministic opcode-
    // order tie-break so concurrent builders that saw the same profile
    // produce the same artifact.
    if (opt.fuse) {
        std::vector<std::pair<uint64_t, uint32_t>> ranked;
        for (size_t a = 0; a < PairProfile::kOps; ++a) {
            if (!fusableHead((Bc)a))
                continue;
            for (size_t b = 0; b < PairProfile::kOps; ++b) {
                uint64_t n = pairs.at((Bc)a, (Bc)b);
                if (n >= opt.minPairCount)
                    ranked.emplace_back(n, (uint32_t)(a * PairProfile::kOps + b));
            }
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &x, const auto &y) {
                      if (x.first != y.first)
                          return x.first > y.first;
                      return x.second < y.second;
                  });
        for (size_t i = 0; i < ranked.size() && i < opt.maxPairs; ++i) {
            uint32_t key = ranked[i].second;
            artifact->fusedPairs.emplace_back(
                (Bc)(key / PairProfile::kOps),
                (Bc)(key % PairProfile::kOps));
        }
    }

    auto buildFunc = [&](FuncDesc &fn) {
        const size_t n = fn.code.size();
        artifact->fuse.emplace_back(n, (uint8_t)TierArtifact::kFuseNone);
        artifact->ic.emplace_back(n, (uint8_t)0);
        std::vector<uint8_t> &fuse = artifact->fuse.back();
        std::vector<uint8_t> &ic = artifact->ic.back();

        // Branch-target map: a fused tail must not be jumped into.
        std::vector<uint8_t> target(n, 0);
        for (const Insn &insn : fn.code)
            if (isBranch(insn.op) && (size_t)insn.a < n)
                target[(size_t)insn.a] = 1;

        for (size_t pc = 0; pc < n; ++pc) {
            Insn &insn = fn.code[pc];
            if (exec)
                exec->alu(1); // scan/decode the instruction once
            if (Vm::quickenable(insn.op)) {
                // Same work, same charge, as the in-place quicken() —
                // but against a private copy, published immutably.
                insn.quick = true;
                ++artifact->quickened;
                if (exec) {
                    exec->alu(6);
                    exec->store(&insn);
                }
            }
            if (opt.inlineCache &&
                (insn.op == Bc::GetStatic || insn.op == Bc::PutStatic)) {
                ic[pc] = 1;
                ++artifact->icSites;
                if (exec) {
                    exec->alu(3); // resolve field, fill the cache entry
                    exec->store(&ic[pc]);
                }
            }
        }

        if (!artifact->fusedPairs.empty()) {
            for (size_t pc = 0; pc + 1 < n; ++pc) {
                if (fuse[pc] != TierArtifact::kFuseNone || target[pc + 1])
                    continue;
                Bc a = fn.code[pc].op, b = fn.code[pc + 1].op;
                bool hot = false;
                for (const auto &p : artifact->fusedPairs)
                    if (p.first == a && p.second == b) {
                        hot = true;
                        break;
                    }
                if (!hot)
                    continue;
                fuse[pc] = TierArtifact::kFuseHead;
                fuse[pc + 1] = TierArtifact::kFuseTail;
                ++artifact->fuseSites;
                if (exec) {
                    exec->alu(4); // emit the pair into the fuse table
                    exec->store(&fuse[pc]);
                }
                ++pc; // no overlapping pairs
            }
        }
    };

    for (FuncDesc &fn : artifact->module.funcs) {
        if (exec) {
            // The one-time build is charged like the in-place
            // quickening it replaces: Precompile, own routine.
            CategoryScope pre(*exec, Category::Precompile);
            RoutineScope r(*exec, routine);
            buildFunc(fn);
        } else {
            buildFunc(fn);
        }
    }
    return artifact;
}

} // namespace interp::jvm
