/**
 * @file
 * The Java-like bytecode interpreter.
 *
 * Per §2/§3.2: a simple, low-level virtual machine — fetch/decode is
 * small and nearly fixed (~16 native instructions per bytecode in the
 * paper) thanks to the uniform bytecode representation; values move
 * through per-frame operand stacks (≈2 instructions per stack access)
 * while statics and arrays cost an order of magnitude more (≈11 per
 * field access, §3.3); and native runtime libraries absorb the heavy
 * lifting for graphics programs. The interpreter loop and handlers
 * occupy only a few KB of code, giving the good i-cache behaviour of
 * Figure 3.
 */

#ifndef INTERP_JVM_VM_HH
#define INTERP_JVM_VM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "jvm/bytecode.hh"
#include "jvm/heap.hh"
#include "jvm/natives.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"

namespace interp::jvm {

/** The virtual machine. Load a module, then run(). */
class Vm
{
  public:
    Vm(trace::Execution &exec, vfs::FileSystem &fs);

    /** Load a module (copied): allocates statics, resets frames. */
    void load(const Module &module);

    struct RunResult
    {
        bool exited = false;
        int exitCode = 0;
        uint64_t commands = 0; ///< bytecodes interpreted
    };

    /** Interpret until main returns / exit() / command budget. */
    RunResult run(uint64_t max_commands = UINT64_MAX);

    trace::CommandSet &commandSet() { return commands; }
    Heap &heap() { return heap_; }
    NativeRuntime &natives() { return native; }

    /** Value of static field @p name (tests). */
    int32_t staticValue(const std::string &name) const;

  private:
    struct Frame
    {
        int funcId;
        uint32_t pc;
        uint32_t localsBase;
        uint32_t stackBase; ///< operand-stack floor for this frame
    };

    // Stack manipulation with memory-model emission (§3.3: ~2
    // instructions per stack access).
    void push(int32_t value);
    int32_t pop();

    void pushFrame(int func_id);

    static void scanRoots(void *ctx,
                          std::vector<const int32_t *> &ranges,
                          std::vector<size_t> &lengths);

    trace::Execution &exec;
    vfs::FileSystem &fs;
    Module moduleStorage; ///< owned copy of the loaded module
    const Module *module = nullptr;
    Heap heap_;
    NativeRuntime native;
    trace::CommandSet commands;
    std::array<trace::CommandId, (size_t)Bc::NumOps> bcCommand{};

    std::vector<int32_t> stack;  ///< shared operand stack
    std::vector<int32_t> locals; ///< all frames' locals, contiguous
    std::vector<Frame> frames;
    std::vector<int32_t> statics;
    uint32_t sp = 0;
    uint32_t localsTop = 0;

    // Interpreter code regions.
    trace::RoutineId rLoop;
    trace::RoutineId rStack;
    trace::RoutineId rStatic;
    trace::RoutineId rArray;
    trace::RoutineId rArith;
    trace::RoutineId rBranch;
    trace::RoutineId rInvoke;
    trace::RoutineId rNative;
    trace::RoutineId rNew;

    uint32_t dispatchTable[(size_t)Bc::NumOps] = {};
    std::vector<int32_t> stringRefs; ///< interned LdcStr arrays
};

} // namespace interp::jvm

#endif // INTERP_JVM_VM_HH
