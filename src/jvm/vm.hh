/**
 * @file
 * The Java-like bytecode interpreter.
 *
 * Per §2/§3.2: a simple, low-level virtual machine — fetch/decode is
 * small and nearly fixed (~16 native instructions per bytecode in the
 * paper) thanks to the uniform bytecode representation; values move
 * through per-frame operand stacks (≈2 instructions per stack access)
 * while statics and arrays cost an order of magnitude more (≈11 per
 * field access, §3.3); and native runtime libraries absorb the heavy
 * lifting for graphics programs. The interpreter loop and handlers
 * occupy only a few KB of code, giving the good i-cache behaviour of
 * Figure 3.
 */

#ifndef INTERP_JVM_VM_HH
#define INTERP_JVM_VM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "jvm/bytecode.hh"
#include "jvm/tier2.hh"
#include "jvm/heap.hh"
#include "jvm/natives.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"

namespace interp::jvm {

/** The virtual machine. Load a module, then run(). */
class Vm
{
  public:
    /**
     * @p quick enables the jvm-quick execution mode (§5 remedy):
     * quickenable bytecodes (const loads, local and static field
     * access) are rewritten in place into operand-resolved forms at
     * first execution, after which their fetch/decode path is about
     * half the baseline cost. The rewrite itself is charged to the
     * Precompile category; the execute stage is shared with baseline
     * mode, so per-command execute attribution is identical.
     */
    Vm(trace::Execution &exec, vfs::FileSystem &fs, bool quick = false);

    /** Load a module (copied): allocates statics, resets frames. */
    void load(const Module &module);

    /**
     * Load a shared, immutable module without copying (the interpd
     * warm-catalog path: one compiled module, many concurrent
     * readers). Execution never writes through it — in quick mode,
     * reaching the in-place quickening pass on a shared module is a
     * contained fatal(); quick/tier-2 execution over shared programs
     * must come pre-quickened via useArtifact().
     */
    void loadShared(std::shared_ptr<const Module> module);

    /**
     * Adopt a published tier-2 artifact and load its pre-quickened
     * module (shared, immutable). Enables the quick fetch path plus
     * the artifact's superinstruction and inline-cache tables.
     */
    void useArtifact(std::shared_ptr<const TierArtifact> artifact);

    /** Collect dynamic adjacent-pair counts into @p sink (host-side
     *  only — zero trace emission; used to profile baseline runs). */
    void setPairSink(PairProfile *sink) { pairSink = sink; }

    /** Test hook: force every inline-cache site to miss, taking the
     *  contained fallback (full resolution) path. */
    void debugPoisonIc() { icPoisoned = true; }

    struct RunResult
    {
        bool exited = false;
        int exitCode = 0;
        uint64_t commands = 0; ///< bytecodes interpreted
    };

    /** Interpret until main returns / exit() / command budget. */
    RunResult run(uint64_t max_commands = UINT64_MAX);

    trace::CommandSet &commandSet() { return commands; }
    Heap &heap() { return heap_; }
    NativeRuntime &natives() { return native; }

    /** Value of static field @p name (tests). */
    int32_t staticValue(const std::string &name) const;

    /**
     * Test hook: force-quicken the instruction at @p pc in function
     * @p func_id. Quickening an already-quickened instruction is a
     * post-first-event code mutation and raises a contained fatal().
     */
    void debugQuicken(int func_id, uint32_t pc);

    /** Is @p op a rewrite candidate in quick mode? */
    static bool quickenable(Bc op);

  private:
    struct Frame
    {
        int funcId;
        uint32_t pc;
        uint32_t localsBase;
        uint32_t stackBase; ///< operand-stack floor for this frame
    };

    // Stack manipulation with memory-model emission (§3.3: ~2
    // instructions per stack access).
    void push(int32_t value);
    int32_t pop();

    void pushFrame(int func_id);

    /** Post-load() initialization shared by both load paths. */
    void initLoaded();

    /** Rewrite @p insn into its quickened form (charged Precompile). */
    void quicken(Insn &insn);

    static void scanRoots(void *ctx,
                          std::vector<const int32_t *> &ranges,
                          std::vector<size_t> &lengths);

    trace::Execution &exec;
    vfs::FileSystem &fs;
    Module moduleStorage; ///< owned copy of the loaded module
    const Module *module = nullptr;
    Heap heap_;
    NativeRuntime native;
    trace::CommandSet commands;
    std::array<trace::CommandId, (size_t)Bc::NumOps> bcCommand{};

    std::vector<int32_t> stack;  ///< shared operand stack
    std::vector<int32_t> locals; ///< all frames' locals, contiguous
    std::vector<Frame> frames;
    std::vector<int32_t> statics;
    uint32_t sp = 0;
    uint32_t localsTop = 0;

    // Interpreter code regions.
    trace::RoutineId rLoop;
    trace::RoutineId rStack;
    trace::RoutineId rStatic;
    trace::RoutineId rArray;
    trace::RoutineId rArith;
    trace::RoutineId rBranch;
    trace::RoutineId rInvoke;
    trace::RoutineId rNative;
    trace::RoutineId rNew;

    uint32_t dispatchTable[(size_t)Bc::NumOps] = {};
    std::vector<int32_t> stringRefs; ///< interned LdcStr arrays

    // Quick-mode state, declared last: baseline members (notably the
    // emitted &dispatchTable addresses) keep the exact offsets and
    // granule alignment they had before the mode existed.
    trace::RoutineId rQuicken = 0;
    bool quickMode = false;

    // Tier-2 state, likewise appended after everything the baseline
    // and quick modes emit addresses of.
    std::shared_ptr<const Module> sharedModule; ///< keep-alive, no copy
    std::shared_ptr<const TierArtifact> artifact;
    PairProfile *pairSink = nullptr;
    bool fusePending = false; ///< previous op was a fused head
    bool icPoisoned = false;  ///< debug: force IC misses
    // Pair-profiling cursor (host-side bookkeeping only).
    Bc prevOp = Bc::NumOps;
    uint32_t prevPc = 0;
    int prevFunc = -1;
    size_t prevDepth = 0;
};

} // namespace interp::jvm

#endif // INTERP_JVM_VM_HH
