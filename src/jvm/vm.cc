#include "jvm/vm.hh"

#include "support/logging.hh"

namespace interp::jvm {

using trace::Category;
using trace::CategoryScope;
using trace::MemModelScope;
using trace::RoutineScope;

namespace {
constexpr uint32_t kStackSlots = 1u << 16;
constexpr uint32_t kLocalSlots = 1u << 16;
} // namespace

Vm::Vm(trace::Execution &exec_, vfs::FileSystem &fs_, bool quick)
    : exec(exec_), fs(fs_), heap_(exec_), native(exec_, fs_),
      quickMode(quick)
{
    auto &code = exec.code();
    rLoop = code.registerRoutine("jvm.loop", 80);
    rStack = code.registerRoutine("jvm.op.stack", 64);
    rStatic = code.registerRoutine("jvm.op.static", 64);
    rArray = code.registerRoutine("jvm.op.array", 96);
    rArith = code.registerRoutine("jvm.op.arith", 96);
    rBranch = code.registerRoutine("jvm.op.branch", 64);
    rInvoke = code.registerRoutine("jvm.op.invoke", 128);
    rNative = code.registerRoutine("jvm.op.native", 96);
    rNew = code.registerRoutine("jvm.op.new", 64);
    // Only in quick mode, so the baseline VM's synthetic code layout
    // is unchanged by the existence of the quickening pass.
    if (quickMode)
        rQuicken = code.registerRoutine("jvm.quicken", 64);

    for (size_t i = 0; i < (size_t)Bc::NumOps; ++i)
        bcCommand[i] = commands.intern(bcName((Bc)i));

    stack.resize(kStackSlots);
    locals.resize(kLocalSlots);
    heap_.setRootScanner(&Vm::scanRoots, this);
}

void
Vm::scanRoots(void *ctx, std::vector<const int32_t *> &ranges,
              std::vector<size_t> &lengths)
{
    auto *vm = (Vm *)ctx;
    ranges.push_back(vm->stack.data());
    lengths.push_back(vm->sp);
    ranges.push_back(vm->locals.data());
    lengths.push_back(vm->localsTop);
    ranges.push_back(vm->statics.data());
    lengths.push_back(vm->statics.size());
    ranges.push_back(vm->stringRefs.data());
    lengths.push_back(vm->stringRefs.size());
}

void
Vm::load(const Module &module_)
{
    moduleStorage = module_;
    module = &moduleStorage;
    sharedModule.reset();
    initLoaded();
}

void
Vm::loadShared(std::shared_ptr<const Module> module_)
{
    sharedModule = std::move(module_);
    module = sharedModule.get();
    moduleStorage = Module(); // drop any previous private copy
    initLoaded();
}

void
Vm::useArtifact(std::shared_ptr<const TierArtifact> artifact_)
{
    artifact = artifact_;
    // The artifact owns its pre-quickened module; alias its lifetime.
    loadShared(std::shared_ptr<const Module>(std::move(artifact_),
                                             &artifact->module));
}

void
Vm::initLoaded()
{
    sp = 0;
    localsTop = 0;
    frames.clear();

    // Statics: scalars hold initValue; array fields are allocated and
    // seeded now (like <clinit>).
    statics.assign(module->fields.size(), 0);
    for (size_t i = 0; i < module->fields.size(); ++i) {
        const FieldDesc &f = module->fields[i];
        if (!f.isArray) {
            statics[i] = f.initValue;
            continue;
        }
        int32_t ref = heap_.alloc(f.elemBytes, f.arrayLen);
        for (size_t j = 0; j < f.initData.size(); ++j)
            heap_.storeElem(ref, (int32_t)j, f.initData[j]);
        statics[i] = ref;
    }

    // Intern string literals as byte arrays (NUL-terminated).
    stringRefs.clear();
    for (const std::string &s : module->strings) {
        int32_t ref = heap_.alloc(1, (int32_t)s.size() + 1);
        for (size_t j = 0; j < s.size(); ++j)
            heap_.storeElem(ref, (int32_t)j, (uint8_t)s[j]);
        stringRefs.push_back(ref);
    }

    if (module->mainFunc < 0)
        fatal("jvm: module has no main function");
    pushFrame(module->mainFunc);
}

void
Vm::push(int32_t value)
{
    if (sp >= kStackSlots)
        fatal("jvm: operand stack overflow");
    stack[sp] = value;
    exec.store(&stack[sp]);
    exec.alu(1);
    ++sp;
}

int32_t
Vm::pop()
{
    if (sp == 0)
        panic("jvm: operand stack underflow");
    --sp;
    exec.load(&stack[sp]);
    exec.alu(1);
    return stack[sp];
}

void
Vm::pushFrame(int func_id)
{
    const FuncDesc &fn = module->funcs[func_id];
    if (localsTop + fn.numLocals > kLocalSlots)
        fatal("jvm: call stack overflow in %s", fn.name.c_str());
    Frame frame;
    frame.funcId = func_id;
    frame.pc = 0;
    frame.localsBase = localsTop;
    localsTop += (uint32_t)fn.numLocals;
    // Pop arguments into the first param slots (right-to-left).
    for (int i = fn.numParams - 1; i >= 0; --i)
        locals[frame.localsBase + i] = pop();
    for (int i = fn.numParams; i < fn.numLocals; ++i)
        locals[frame.localsBase + i] = 0;
    frame.stackBase = sp;
    frames.push_back(frame);
}

bool
Vm::quickenable(Bc op)
{
    switch (op) {
      case Bc::IConst: case Bc::LdcStr: case Bc::ILoad: case Bc::IStore:
      case Bc::GetStatic: case Bc::PutStatic:
        return true;
      default:
        return false;
    }
}

void
Vm::quicken(Insn &insn)
{
    // Rewriting an instruction that already carries its quickened
    // encoding would mutate executed code a second time — a recorded
    // trace could no longer match a fresh run. Contained fatal.
    if (insn.quick)
        fatal("jvm-quick: rewriting already-quickened bytecode "
              "(code mutated after first execution)");
    CategoryScope pre(exec, Category::Precompile);
    RoutineScope r(exec, rQuicken);
    exec.alu(6);       // resolve operand, select quickened form
    insn.quick = true;
    exec.store(&insn); // in-place rewrite
}

void
Vm::debugQuicken(int func_id, uint32_t pc)
{
    if (func_id < 0 || (size_t)func_id >= moduleStorage.funcs.size())
        fatal("jvm: debugQuicken: bad function id %d", func_id);
    FuncDesc &fn = moduleStorage.funcs[func_id];
    if (pc >= fn.code.size())
        fatal("jvm: debugQuicken: pc %u out of range in %s", pc,
              fn.name.c_str());
    quicken(fn.code[pc]);
}

int32_t
Vm::staticValue(const std::string &name) const
{
    for (size_t i = 0; i < module->fields.size(); ++i)
        if (module->fields[i].name == name)
            return statics[i];
    fatal("jvm: no static field '%s'", name.c_str());
}

Vm::RunResult
Vm::run(uint64_t max_commands)
{
    RunResult result;
    if (!module)
        panic("Vm::run before load()");
    trace::FlushOnExit flush_guard(exec);

    while (!frames.empty() && result.commands < max_commands) {
        Frame &frame = frames.back();
        const FuncDesc &fn = module->funcs[frame.funcId];
        if (frame.pc >= fn.code.size())
            fatal("jvm: pc out of range in %s", fn.name.c_str());
        const Insn &insn = fn.code[frame.pc];

        if (pairSink) {
            // Host-side pair profiling (zero emission): count op b
            // retiring at pc+1 of op a in the same frame — exactly
            // the successions a fused handler could serve.
            if (prevFunc == frame.funcId && frames.size() == prevDepth &&
                frame.pc == prevPc + 1)
                pairSink->note(prevOp, insn.op);
            prevOp = insn.op;
            prevPc = frame.pc;
            prevFunc = frame.funcId;
            prevDepth = frames.size();
        }

        // ---- fetch & decode: uniform and cheap (the JVM way) ----------
        uint8_t fuseRole = TierArtifact::kFuseNone;
        if (artifact)
            fuseRole = artifact->fuse[frame.funcId][frame.pc];
        if (fusePending && fuseRole == TierArtifact::kFuseTail) {
            // Superinstruction continuation: the fused handler falls
            // straight through into its tail — no re-fetch, no
            // dispatch, one native instruction of glue.
            CategoryScope fd(exec, Category::FetchDecode);
            RoutineScope loop(exec, rLoop);
            exec.alu(1);
        } else if (quickMode && insn.quick) {
            // Quickened form: operands were resolved inline by the
            // rewrite, so fetch skips the dispatch-table indirection
            // and most of the operand decode (§5 remedy).
            CategoryScope fd(exec, Category::FetchDecode);
            RoutineScope loop(exec, rLoop);
            exec.alu(2);                       // loop bookkeeping
            exec.load(&fn.code[frame.pc]);     // bytecode fetch
            exec.shortInt(1);                  // opcode extract
            exec.branch(false);                // bounds/halt test
            exec.alu(1);                       // direct dispatch
        } else {
            CategoryScope fd(exec, Category::FetchDecode);
            RoutineScope loop(exec, rLoop);
            exec.alu(3);                       // loop bookkeeping
            exec.load(&fn.code[frame.pc]);     // bytecode fetch
            exec.shortInt(2);                  // opcode/operand extract
            exec.branch(false);                // bounds/halt test
            exec.load(&dispatchTable[(size_t)insn.op]);
            exec.alu(6);   // operand decode, pc bounds, quickening check
        }
        fusePending = fuseRole == TierArtifact::kFuseHead;
        if (quickMode && !insn.quick && quickenable(insn.op)) {
            // The in-place rewrite is only legal against this VM's
            // private module copy. A warm-catalog module is shared
            // across worker threads: rewriting it under concurrent
            // readers is the race this fatal contains — quick
            // execution over shared programs must come pre-quickened
            // through an atomically published TierArtifact.
            if (sharedModule)
                fatal("jvm-quick: in-place quickening of a shared "
                      "catalog module (use a published tier artifact)");
            quicken(moduleStorage.funcs[frame.funcId].code[frame.pc]);
        }
        exec.beginCommand(bcCommand[(size_t)insn.op]);
        ++result.commands;
        ++frame.pc;

        // ---- execute -----------------------------------------------------
        switch (insn.op) {
          case Bc::IConst: {
            RoutineScope r(exec, rStack);
            exec.alu(3);
            push(insn.a);
            break;
          }
          case Bc::LdcStr: {
            RoutineScope r(exec, rStack);
            exec.alu(2);
            exec.load(&stringRefs[insn.a]);
            push(stringRefs[insn.a]);
            break;
          }
          case Bc::ILoad: {
            RoutineScope r(exec, rStack);
            MemModelScope mm(exec);
            exec.noteMemModelAccess();
            exec.load(&locals[frame.localsBase + insn.a]);
            push(locals[frame.localsBase + insn.a]);
            break;
          }
          case Bc::IStore: {
            RoutineScope r(exec, rStack);
            MemModelScope mm(exec);
            exec.noteMemModelAccess();
            locals[frame.localsBase + insn.a] = pop();
            exec.store(&locals[frame.localsBase + insn.a]);
            break;
          }
          case Bc::GetStatic: {
            // §3.3: field access ~11 instructions (resolution, class
            // check, load, push).
            RoutineScope r(exec, rStatic);
            MemModelScope mm(exec);
            exec.noteMemModelAccess();
            if (artifact && !icPoisoned &&
                artifact->ic[frame.funcId][frame.pc - 1]) {
                // Monomorphic inline cache: tag check, then a load
                // through the offset resolved at tier-up build.
                exec.load(&artifact->ic[frame.funcId][frame.pc - 1]);
                exec.branch(false);         // cache tag matches (hit)
                exec.alu(1);                // resolved offset
            } else {
                exec.alu(4);                // field descriptor offset
                exec.load(&module->fields[insn.a]);
                exec.branch(false);         // class initialized?
                exec.alu(2);
            }
            exec.load(&statics[insn.a]);
            push(statics[insn.a]);
            break;
          }
          case Bc::PutStatic: {
            RoutineScope r(exec, rStatic);
            MemModelScope mm(exec);
            exec.noteMemModelAccess();
            if (artifact && !icPoisoned &&
                artifact->ic[frame.funcId][frame.pc - 1]) {
                exec.load(&artifact->ic[frame.funcId][frame.pc - 1]);
                exec.branch(false);
                exec.alu(1);
            } else {
                exec.alu(4);
                exec.load(&module->fields[insn.a]);
                exec.branch(false);
                exec.alu(2);
            }
            statics[insn.a] = pop();
            exec.store(&statics[insn.a]);
            break;
          }
          case Bc::NewArrayI:
          case Bc::NewArrayB: {
            RoutineScope r(exec, rNew);
            exec.alu(3);
            int32_t len = pop();
            int32_t ref =
                heap_.alloc(insn.op == Bc::NewArrayI ? 4 : 1, len);
            push(ref);
            break;
          }
          case Bc::ArrayLen: {
            RoutineScope r(exec, rArray);
            exec.alu(2);
            int32_t ref = pop();
            exec.load(&heap_.object(ref).length);
            push(heap_.object(ref).length);
            break;
          }
          case Bc::IALoad:
          case Bc::BALoad: {
            RoutineScope r(exec, rArray);
            MemModelScope mm(exec);
            exec.noteMemModelAccess();
            int32_t index = pop();
            int32_t ref = pop();
            HeapObject &obj = heap_.object(ref);
            exec.load(&obj.length);       // header for bounds check
            exec.alu(2);
            exec.branch(false);           // bounds ok?
            exec.shortInt(1);             // index scaling
            int32_t value = heap_.loadElem(ref, index);
            exec.load(obj.data.data() + (size_t)index * obj.elemBytes);
            push(value);
            break;
          }
          case Bc::IAStore:
          case Bc::BAStore: {
            RoutineScope r(exec, rArray);
            MemModelScope mm(exec);
            exec.noteMemModelAccess();
            int32_t value = pop();
            int32_t index = pop();
            int32_t ref = pop();
            HeapObject &obj = heap_.object(ref);
            exec.load(&obj.length);
            exec.alu(2);
            exec.branch(false);
            exec.shortInt(1);
            heap_.storeElem(ref, index, value);
            exec.store(obj.data.data() + (size_t)index * obj.elemBytes);
            break;
          }
          case Bc::Add: case Bc::Sub: case Bc::Mul: case Bc::Div:
          case Bc::Rem: case Bc::And: case Bc::Or: case Bc::Xor:
          case Bc::Shl: case Bc::Shr:
          case Bc::CmpEq: case Bc::CmpNe: case Bc::CmpLt: case Bc::CmpLe:
          case Bc::CmpGt: case Bc::CmpGe: {
            RoutineScope r(exec, rArith);
            int32_t rhs = pop();
            int32_t lhs = pop();
            exec.alu(4); // untagged-int fast-path checks
            int32_t value = 0;
            switch (insn.op) {
              case Bc::Add:
                value = (int32_t)((uint32_t)lhs + (uint32_t)rhs);
                exec.alu(1);
                break;
              case Bc::Sub:
                value = (int32_t)((uint32_t)lhs - (uint32_t)rhs);
                exec.alu(1);
                break;
              case Bc::Mul:
                value = (int32_t)((uint32_t)lhs * (uint32_t)rhs);
                exec.floatOp(1);
                break;
              case Bc::Div:
                if (rhs == 0)
                    fatal("jvm: division by zero");
                value = rhs == -1 ? (int32_t)(0u - (uint32_t)lhs)
                                  : lhs / rhs;
                exec.floatOp(1);
                exec.branch(false);
                break;
              case Bc::Rem:
                if (rhs == 0)
                    fatal("jvm: division by zero");
                value = rhs == -1 ? 0 : lhs % rhs;
                exec.floatOp(1);
                exec.branch(false);
                break;
              case Bc::And: value = lhs & rhs; exec.alu(1); break;
              case Bc::Or: value = lhs | rhs; exec.alu(1); break;
              case Bc::Xor: value = lhs ^ rhs; exec.alu(1); break;
              case Bc::Shl: value = lhs << (rhs & 31); exec.shortInt(1);
                break;
              case Bc::Shr: value = lhs >> (rhs & 31); exec.shortInt(1);
                break;
              case Bc::CmpEq: value = lhs == rhs; exec.alu(2); break;
              case Bc::CmpNe: value = lhs != rhs; exec.alu(2); break;
              case Bc::CmpLt: value = lhs < rhs; exec.alu(2); break;
              case Bc::CmpLe: value = lhs <= rhs; exec.alu(2); break;
              case Bc::CmpGt: value = lhs > rhs; exec.alu(2); break;
              case Bc::CmpGe: value = lhs >= rhs; exec.alu(2); break;
              default: break;
            }
            push(value);
            break;
          }
          case Bc::Neg: {
            RoutineScope r(exec, rArith);
            int32_t v = pop();
            exec.alu(1);
            push((int32_t)(0u - (uint32_t)v));
            break;
          }
          case Bc::Not: {
            RoutineScope r(exec, rArith);
            int32_t v = pop();
            exec.alu(1);
            push(~v);
            break;
          }
          case Bc::IfZero:
          case Bc::IfNonZero: {
            RoutineScope r(exec, rBranch);
            int32_t v = pop();
            bool taken = insn.op == Bc::IfZero ? v == 0 : v != 0;
            exec.alu(1);
            exec.branch(taken); // interpreter mirrors the outcome
            if (taken)
                frame.pc = (uint32_t)insn.a;
            break;
          }
          case Bc::Goto: {
            RoutineScope r(exec, rBranch);
            exec.alu(2);
            frame.pc = (uint32_t)insn.a;
            break;
          }
          case Bc::InvokeStatic: {
            RoutineScope r(exec, rInvoke);
            const FuncDesc &callee = module->funcs[insn.a];
            exec.alu(6);                         // method resolution
            exec.load(&module->funcs[insn.a]);
            exec.alu((uint32_t)callee.numLocals); // frame zeroing
            exec.store(&localsTop);
            pushFrame(insn.a);
            break;
          }
          case Bc::InvokeNative: {
            RoutineScope r(exec, rNative);
            exec.alu(8); // JNI-style marshalling
            const auto &info = minic::builtinInfo((minic::Builtin)insn.a);
            int32_t args[8] = {};
            for (int i = info.numArgs - 1; i >= 0; --i)
                args[i] = pop();
            if ((minic::Builtin)insn.a == minic::Builtin::Exit) {
                result.exited = true;
                result.exitCode = args[0];
                frames.clear();
                break;
            }
            bool returns = false;
            int32_t value =
                native.invoke(insn.a, args, info.numArgs, heap_, returns);
            if (returns)
                push(value);
            break;
          }
          case Bc::Return:
          case Bc::IReturn: {
            RoutineScope r(exec, rInvoke);
            exec.alu(4);
            int32_t value = 0;
            if (insn.op == Bc::IReturn)
                value = pop();
            Frame done = frames.back();
            frames.pop_back();
            localsTop = done.localsBase;
            sp = done.stackBase;
            exec.store(&localsTop);
            if (frames.empty()) {
                result.exited = true;
                result.exitCode = value;
            } else if (insn.op == Bc::IReturn) {
                push(value);
            }
            break;
          }
          case Bc::Pop: {
            RoutineScope r(exec, rStack);
            (void)pop();
            break;
          }
          case Bc::Dup: {
            RoutineScope r(exec, rStack);
            int32_t v = pop();
            push(v);
            push(v);
            break;
          }
          case Bc::NumOps:
            panic("jvm: bad opcode");
        }
    }
    return result;
}

} // namespace interp::jvm
