/**
 * @file
 * Bytecode definitions for the Java-like virtual machine.
 *
 * Mirrors the JVM's architecture as described in §2: programs are
 * compiled *offline* (by the MiniC bytecode backend) into a module of
 * stack-machine bytecodes; the interpreter operates directly on the
 * module. Values live on per-frame operand stacks and in local slots;
 * longer-lived data lives in static fields and heap-allocated arrays
 * (accessed only through dedicated bytecodes, as with getfield/
 * putfield — the §3.3 Java memory model).
 */

#ifndef INTERP_JVM_BYTECODE_HH
#define INTERP_JVM_BYTECODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace interp::jvm {

/** Bytecode opcodes. */
enum class Bc : uint8_t
{
    IConst,     ///< push immediate a
    LdcStr,     ///< push reference to interned string a (byte array)
    ILoad,      ///< push local slot a
    IStore,     ///< pop into local slot a
    GetStatic,  ///< push static field a
    PutStatic,  ///< pop into static field a
    NewArrayI,  ///< pop length; push ref to new int array
    NewArrayB,  ///< pop length; push ref to new byte array
    ArrayLen,   ///< pop ref; push length
    IALoad,     ///< pop index, ref; push int element
    IAStore,    ///< pop value, index, ref; store int element
    BALoad,     ///< pop index, ref; push byte element (zero-extended)
    BAStore,    ///< pop value, index, ref; store byte element
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Neg, Not,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, ///< pop 2; push 0/1
    IfZero,     ///< pop; branch to a if == 0
    IfNonZero,  ///< pop; branch to a if != 0
    Goto,       ///< branch to a
    InvokeStatic, ///< call function a
    InvokeNative, ///< call native routine a (Builtin numbering)
    Return,     ///< return void
    IReturn,    ///< pop; return value
    Pop,        ///< discard top of stack
    Dup,        ///< duplicate top of stack
    NumOps,
};

/** Printable mnemonic (the virtual-command name in profiles). */
const char *bcName(Bc op);

/** One fixed-width instruction. */
struct Insn
{
    Bc op = Bc::Return;
    /**
     * Set once by the quickening pass (jvm-quick mode) when this
     * instruction has been rewritten into its operand-resolved form;
     * the interpreter then takes the short fetch/decode path. Never
     * set in baseline mode. Lives in the padding byte after `op` so
     * sizeof(Insn) — and with it the code arrays' data layout the
     * simulator sees — is unchanged from the pre-quickening format.
     */
    bool quick = false;
    int32_t a = 0; ///< immediate / slot / field / target / callee
};

/** A static field ("global"). */
struct FieldDesc
{
    std::string name;
    /**
     * For scalar fields, initValue seeds the field. For array fields
     * (isArray), an array object of `arrayLen` elements (elemBytes 1
     * or 4) is allocated at startup and the field holds its reference;
     * initData seeds the first elements.
     */
    bool isArray = false;
    uint8_t elemBytes = 4;
    int32_t initValue = 0;
    int32_t arrayLen = 0;
    std::vector<int32_t> initData;
};

/** A function ("static method"). */
struct FuncDesc
{
    std::string name;
    int numParams = 0;
    int numLocals = 0; ///< includes params
    bool returnsValue = false;
    std::vector<Insn> code;
};

/** A loaded module (the unit the interpreter executes). */
struct Module
{
    std::vector<FieldDesc> fields;
    std::vector<FuncDesc> funcs;
    std::vector<std::string> strings; ///< string-literal pool
    int mainFunc = -1;

    /** Size of the module in bytes (Table 2's Size column). */
    size_t sizeBytes() const;
};

} // namespace interp::jvm

#endif // INTERP_JVM_BYTECODE_HH
