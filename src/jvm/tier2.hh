/**
 * @file
 * Tier-2 artifacts for the jvm interpreter: profile-discovered
 * superinstructions and monomorphic inline caches.
 *
 * The §5 quickening remedy (jvm-quick) rewrites instructions in place
 * at first execution — fine for a private module copy, a data race for
 * a warm-catalog module shared across interpd worker threads. Tier-2
 * turns the rewrite into an immutable *artifact*: a pre-quickened copy
 * of the module plus side tables marking
 *
 *   - fused pairs: the hottest dynamically-adjacent opcode pairs
 *     (discovered by a PairProfile collected during baseline runs)
 *     become synthetic superinstruction handlers — the head pays one
 *     quick fetch, the tail continues straight-line for ~1 native
 *     instruction instead of a full re-fetch/dispatch;
 *   - inline-cache sites: GetStatic/PutStatic sites whose field was
 *     resolved at build time — the handler checks a cache tag and
 *     loads through the resolved offset (§3.3 memory-model cost drops
 *     from ~11 to ~6 native instructions per access), falling back to
 *     the full resolution sequence on a miss, never mutating code.
 *
 * Artifacts are built aside (cost charged to Precompile, like the
 * in-place quickening it replaces) and published atomically on the
 * catalog entry; readers only ever see a complete, immutable artifact.
 */

#ifndef INTERP_JVM_TIER2_HH
#define INTERP_JVM_TIER2_HH

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "jvm/bytecode.hh"
#include "trace/execution.hh"

namespace interp::jvm {

/**
 * Dynamic adjacent-opcode-pair counts, collected host-side (zero
 * trace emission) while a program still runs in a baseline tier.
 * A pair (a, b) is counted when b retires at pc+1 of a in the same
 * frame — i.e. the dynamic successions a fused handler could serve.
 * Merging is a commutative sum, so profiles from concurrent requests
 * can be folded in any order with the same result.
 */
struct PairProfile
{
    static constexpr size_t kOps = (size_t)Bc::NumOps;
    std::array<uint64_t, kOps * kOps> counts{};

    void note(Bc a, Bc b)
    {
        ++counts[(size_t)a * kOps + (size_t)b];
    }
    uint64_t at(Bc a, Bc b) const
    {
        return counts[(size_t)a * kOps + (size_t)b];
    }
    void merge(const PairProfile &other)
    {
        for (size_t i = 0; i < counts.size(); ++i)
            counts[i] += other.counts[i];
    }
    uint64_t total() const;
};

struct TierOptions
{
    bool fuse = true;        ///< build superinstruction tables
    bool inlineCache = true; ///< build field inline-cache tables
    /** Distinct opcode pairs promoted to superinstructions. */
    unsigned maxPairs = 4;
    /** Minimum dynamic pair count for a pair to qualify. */
    uint64_t minPairCount = 16;
};

/** An immutable tier-2 execution artifact for one jvm module. */
struct TierArtifact
{
    enum : uint8_t { kFuseNone = 0, kFuseHead = 1, kFuseTail = 2 };

    /** Pre-quickened copy of the source module (every quickenable
     *  instruction already carries its resolved form, so the VM's
     *  in-place quickening pass is never reached). */
    Module module;
    /** Per-function, per-pc fusion role (kFuse*). */
    std::vector<std::vector<uint8_t>> fuse;
    /** Per-function, per-pc flag: 1 = resolved inline-cache site. */
    std::vector<std::vector<uint8_t>> ic;
    /** Opcode pairs selected for fusion (hottest first). */
    std::vector<std::pair<Bc, Bc>> fusedPairs;
    uint64_t quickened = 0; ///< instructions pre-quickened
    uint64_t fuseSites = 0; ///< static head/tail pair sites marked
    uint64_t icSites = 0;   ///< static inline-cache sites resolved
    bool hasFusion = false; ///< built with opt.fuse
    bool hasIc = false;     ///< built with opt.inlineCache
};

/**
 * Build a tier-2 artifact for @p module from @p pairs.
 *
 * When @p exec is non-null the one-time build cost is emitted under
 * Category::Precompile in a dedicated "jvm.tierup" routine (mirroring
 * how in-place quickening charges Precompile); pass nullptr for an
 * uncharged build (tier manager warming outside a measured run).
 *
 * Fusion constraints keep the fused handler a straight line:
 *   - the head must not be a control transfer (branch/call/return),
 *   - the tail must not be a branch target (no jumping into the
 *     middle of a superinstruction),
 *   - sites are claimed greedily left-to-right without overlap.
 */
std::shared_ptr<const TierArtifact>
buildTierArtifact(trace::Execution *exec, const Module &module,
                  const PairProfile &pairs, const TierOptions &opt = {});

} // namespace interp::jvm

#endif // INTERP_JVM_TIER2_HH
