/**
 * @file
 * The Java-like VM's object heap: arrays of ints or bytes, managed by
 * a conservative mark-sweep collector.
 *
 * References are encoded as 0x20000000 + object index so that they are
 * distinguishable (conservatively) from small integers when the
 * collector scans the untyped operand stacks, locals and static
 * fields. This mirrors how conservative collectors treat ambiguous
 * roots; precision is not required for correctness of the benchmarks,
 * only reachability over-approximation.
 */

#ifndef INTERP_JVM_HEAP_HH
#define INTERP_JVM_HEAP_HH

#include <cstdint>
#include <vector>

#include "trace/execution.hh"

namespace interp::jvm {

/** Reference encoding base. */
constexpr int32_t kRefBase = 0x20000000;

/** One heap array object. */
struct HeapObject
{
    uint8_t elemBytes = 4; ///< 1 (byte array) or 4 (int array)
    bool marked = false;
    bool live = false;
    int32_t length = 0;    ///< element count
    std::vector<uint8_t> data;
};

/** The collected heap. */
class Heap
{
  public:
    explicit Heap(trace::Execution &exec);

    /** Allocate an array; returns its reference. */
    int32_t alloc(uint8_t elem_bytes, int32_t length);

    /** True if @p value decodes to a live object reference. */
    bool isRef(int32_t value) const;

    /** Object behind a reference; panics on bad refs. */
    HeapObject &object(int32_t ref);
    const HeapObject &object(int32_t ref) const;

    // Typed element access with bounds checking (fatal on violation).
    int32_t loadElem(int32_t ref, int32_t index);
    void storeElem(int32_t ref, int32_t index, int32_t value);

    /**
     * Conservative mark-sweep over the given root slots. Emits the
     * collector's work into the execution context.
     * @return number of objects freed.
     */
    size_t collect(const std::vector<const int32_t *> &root_ranges,
                   const std::vector<size_t> &root_lengths);

    size_t liveObjects() const { return liveCount; }
    size_t allocationsSinceGc() const { return sinceGc; }
    uint64_t totalAllocations() const { return totalAllocs; }
    uint64_t collections() const { return gcRuns; }

    /** Allocation count that triggers a collection inside alloc(). */
    void setGcThreshold(size_t threshold) { gcThreshold = threshold; }
    size_t gcThreshold = 8192;

    /** Roots provider installed by the VM (frames + statics). */
    using RootScanner = void (*)(void *ctx,
                                 std::vector<const int32_t *> &ranges,
                                 std::vector<size_t> &lengths);
    void
    setRootScanner(RootScanner scanner, void *ctx)
    {
        rootScanner = scanner;
        rootCtx = ctx;
    }

  private:
    void maybeCollect();

    trace::Execution &exec;
    std::vector<HeapObject> objects;
    std::vector<int32_t> freeList;
    size_t liveCount = 0;
    size_t sinceGc = 0;
    uint64_t totalAllocs = 0;
    uint64_t gcRuns = 0;
    trace::RoutineId rAlloc;
    trace::RoutineId rGc;
    RootScanner rootScanner = nullptr;
    void *rootCtx = nullptr;
};

} // namespace interp::jvm

#endif // INTERP_JVM_HEAP_HH
