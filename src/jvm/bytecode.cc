#include "jvm/bytecode.hh"

namespace interp::jvm {

const char *
bcName(Bc op)
{
    switch (op) {
      case Bc::IConst: return "iconst";
      case Bc::LdcStr: return "ldc_str";
      case Bc::ILoad: return "iload";
      case Bc::IStore: return "istore";
      case Bc::GetStatic: return "getstatic";
      case Bc::PutStatic: return "putstatic";
      case Bc::NewArrayI: return "newarray_i";
      case Bc::NewArrayB: return "newarray_b";
      case Bc::ArrayLen: return "arraylength";
      case Bc::IALoad: return "iaload";
      case Bc::IAStore: return "iastore";
      case Bc::BALoad: return "baload";
      case Bc::BAStore: return "bastore";
      case Bc::Add: return "iadd";
      case Bc::Sub: return "isub";
      case Bc::Mul: return "imul";
      case Bc::Div: return "idiv";
      case Bc::Rem: return "irem";
      case Bc::And: return "iand";
      case Bc::Or: return "ior";
      case Bc::Xor: return "ixor";
      case Bc::Shl: return "ishl";
      case Bc::Shr: return "ishr";
      case Bc::Neg: return "ineg";
      case Bc::Not: return "inot";
      case Bc::CmpEq: return "icmpeq";
      case Bc::CmpNe: return "icmpne";
      case Bc::CmpLt: return "icmplt";
      case Bc::CmpLe: return "icmple";
      case Bc::CmpGt: return "icmpgt";
      case Bc::CmpGe: return "icmpge";
      case Bc::IfZero: return "ifeq";
      case Bc::IfNonZero: return "ifne";
      case Bc::Goto: return "goto";
      case Bc::InvokeStatic: return "invokestatic";
      case Bc::InvokeNative: return "invokenative";
      case Bc::Return: return "return";
      case Bc::IReturn: return "ireturn";
      case Bc::Pop: return "pop";
      case Bc::Dup: return "dup";
      default: return "?";
    }
}

size_t
Module::sizeBytes() const
{
    size_t bytes = 0;
    for (const FuncDesc &fn : funcs)
        bytes += fn.code.size() * 5 + 16; // 1-byte op + 4-byte operand
    for (const FieldDesc &f : fields)
        bytes += 16 + f.initData.size() * 4;
    for (const std::string &s : strings)
        bytes += s.size() + 1;
    return bytes;
}

} // namespace interp::jvm
