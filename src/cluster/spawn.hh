/**
 * @file
 * Shard-spawning harness for cluster tests and benchmarks.
 *
 * LocalCluster brings up N interpd shards plus one interproxy router
 * on unix-domain sockets under a private temp directory, and tears
 * everything down (and unlinks the sockets) on destruction. Two
 * spawn modes:
 *
 *   in-process   each shard is a server::Server on its own thread in
 *                this process — fast to start, easy to kill mid-run,
 *                and what the cluster tests use.
 *   subprocess   each shard is a fork/exec'd interpd binary — real
 *                process isolation for benchmarks that want shards on
 *                separate address spaces (and separate malloc arenas).
 *
 * killShard() stops one shard abruptly (thread stop / SIGKILL) so
 * failover paths can be exercised; restartShard() brings it back on
 * the same socket path.
 */

#ifndef INTERP_CLUSTER_SPAWN_HH
#define INTERP_CLUSTER_SPAWN_HH

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/proxy.hh"
#include "server/server.hh"

namespace interp::cluster {

struct ClusterConfig
{
    unsigned shardCount = 2;
    /** server::ServerConfig knobs applied to every shard. */
    unsigned workersPerShard = 2;
    size_t maxQueuePerShard = 64;
    uint32_t maxBatchPerShard = 8;
    /** Dynamic tier-up config applied to every shard. */
    tier::TierConfig tierPerShard;
    /** fork/exec this interpd binary per shard instead of running
     *  shards in-process ("" = in-process). */
    std::string interpdPath;
    /** Router knobs; listeners and shard endpoints are filled in by
     *  start() (shards live on unix sockets in a temp directory). */
    ProxyConfig proxy;
};

class LocalCluster
{
  public:
    explicit LocalCluster(const ClusterConfig &config);

    /** Stops everything still running; removes sockets and the temp
     *  directory. */
    ~LocalCluster();

    LocalCluster(const LocalCluster &) = delete;
    LocalCluster &operator=(const LocalCluster &) = delete;

    /** Spawn every shard, then the proxy; returns once the proxy
     *  listener accepts and every shard socket is connectable.
     *  fatal() on setup failure. */
    void start();

    /** Stop the proxy and every shard (idempotent). */
    void stopAll();

    /** Abruptly kill shard @p i (stop thread / SIGKILL) and unlink
     *  its socket, so the proxy sees connections die and reconnects
     *  fail — the failover path. */
    void killShard(size_t i);

    /** Bring shard @p i back on its original socket path. */
    void restartShard(size_t i);

    /** Front unix socket of the router (connect clients here). */
    const std::string &proxyPath() const { return proxyPath_; }

    /** The private temp directory ("" before start() / after
     *  teardown). Tests assert it leaves no /tmp residue behind. */
    const std::string &tempDir() const { return dir_; }

    /** Unix socket of shard @p i (for direct-to-shard checks). */
    const std::string &shardPath(size_t i) const
    {
        return shardPaths_[i];
    }

    size_t shardCount() const { return shardPaths_.size(); }

  private:
    struct ShardProc
    {
        // in-process
        std::unique_ptr<server::Server> server;
        std::thread thread;
        // subprocess
        pid_t pid = -1;
        bool alive = false;
    };

    void spawnShard(size_t i);
    void waitConnectable(const std::string &path);
    /** Sweep and remove the temp directory (idempotent): unlink every
     *  remaining entry — not just the paths this object created — so
     *  sockets left bound by SIGKILL'd shards, or anything a failed
     *  start() got as far as creating, never outlive the cluster. */
    void removeTempDir();

    ClusterConfig cfg;
    std::string dir_; ///< private temp directory holding all sockets
    std::string proxyPath_;
    std::vector<std::string> shardPaths_;
    std::vector<ShardProc> procs_;

    std::unique_ptr<Proxy> proxy_;
    std::thread proxyThread_;
    bool started_ = false;
};

} // namespace interp::cluster

#endif // INTERP_CLUSTER_SPAWN_HH
