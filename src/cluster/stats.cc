#include "cluster/stats.hh"

#include <cinttypes>
#include <cstdio>

#include "harness/runner.hh"

namespace interp::cluster {

using server::LatencyHistogram;
using server::ModeCounters;

ModeCounters
ClusterStats::totals() const
{
    ModeCounters sum;
    for (const ModeCounters &m : modes_) {
        sum.accepted += m.accepted;
        sum.served += m.served;
        sum.shed += m.shed;
        sum.deadline += m.deadline;
        sum.failed += m.failed;
        sum.tierUpRemedy += m.tierUpRemedy;
        sum.tierUpTier2 += m.tierUpTier2;
        sum.tierUpJit += m.tierUpJit;
        sum.tieredRuns += m.tieredRuns;
    }
    return sum;
}

namespace {

void
appendCounters(std::string &out, const ModeCounters &c)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"accepted\":%" PRIu64 ",\"served\":%" PRIu64
                  ",\"shed\":%" PRIu64 ",\"deadline\":%" PRIu64
                  ",\"failed\":%" PRIu64,
                  c.accepted, c.served, c.shed, c.deadline, c.failed);
    out += buf;
}

} // namespace

std::string
ClusterStats::renderJson(const std::vector<ShardGauges> &shards,
                         const std::string &merged_object) const
{
    ModeCounters sum = totals();
    uint64_t up = 0, degraded = 0;
    for (const ShardGauges &g : shards) {
        if (std::string("up") == g.state)
            ++up;
        else
            ++degraded;
    }

    std::string out = "{\"proxy\":{";
    appendCounters(out, sum);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\"forwarded\":%" PRIu64 ",\"retries\":%" PRIu64
                  ",\"rerouted\":%" PRIu64
                  ",\"shard_failures\":%" PRIu64
                  ",\"late_replies\":%" PRIu64
                  ",\"shards_up\":%" PRIu64 ",\"degraded\":%" PRIu64,
                  forwarded_, retries_, rerouted_, shardFailures_,
                  lateReplies_, up, degraded);
    out += buf;
    out += '}';

    out += ",\"modes\":{";
    bool first = true;
    for (int i = 0; i < kModes; ++i) {
        if (!modes_[i].accepted)
            continue;
        if (!first)
            out += ',';
        out += '"';
        out += harness::langName((harness::Lang)i);
        out += "\":{";
        appendCounters(out, modes_[i]);
        out += '}';
        first = false;
    }
    out += '}';

    out += ",\"mode_latency_us\":{";
    first = true;
    for (int i = 0; i < kModes; ++i) {
        if (!latency_[i].count())
            continue;
        if (!first)
            out += ',';
        server::appendHistogramJson(
            out, harness::langName((harness::Lang)i), latency_[i]);
        first = false;
    }
    out += '}';

    out += ",\"shards\":{";
    first = true;
    for (const ShardGauges &g : shards) {
        if (!first)
            out += ',';
        out += '"';
        out += g.name;
        out += "\":{\"state\":\"";
        out += g.state;
        out += '"';
        std::snprintf(
            buf, sizeof(buf),
            ",\"inflight\":%zu,\"forwarded\":%" PRIu64
            ",\"ok\":%" PRIu64 ",\"shed\":%" PRIu64
            ",\"deadline\":%" PRIu64 ",\"error\":%" PRIu64
            ",\"down_events\":%" PRIu64 ",\"reconnects\":%" PRIu64
            ",\"probe_failures\":%" PRIu64
            ",\"late_replies\":%" PRIu64 "}",
            g.inflight, g.forwarded, g.ok, g.shed, g.deadline, g.error,
            g.downEvents, g.reconnects, g.probeFailures,
            g.lateReplies);
        out += buf;
        first = false;
    }
    out += '}';

    out += ",\"merged\":";
    out += merged_object.empty() ? "{}" : merged_object;
    out += '}';
    return out;
}

std::string
mergeShardStats(const std::vector<std::string> &shard_jsons)
{
    uint64_t accepted = 0, served = 0, shed = 0, deadline = 0,
             failed = 0;
    uint64_t tierRemedy = 0, tierTier2 = 0, tierJit = 0,
             tieredRuns = 0;
    uint64_t hits = 0, misses = 0, loads = 0;
    LatencyHistogram queue, service, total;
    uint64_t reporting = 0;

    for (const std::string &json : shard_jsons) {
        uint64_t v = 0;
        // A shard document missing its top-level counters is not a
        // ServerStats rendering at all; skip it entirely.
        if (!server::statsJsonUint(json, "accepted", v))
            continue;
        ++reporting;
        accepted += v;
        if (server::statsJsonUint(json, "served", v))
            served += v;
        if (server::statsJsonUint(json, "shed", v))
            shed += v;
        if (server::statsJsonUint(json, "deadline", v))
            deadline += v;
        if (server::statsJsonUint(json, "failed", v))
            failed += v;
        // Tier-up sums (the top-level counters precede "modes", so a
        // whole-document search finds the daemon totals first).
        if (server::statsJsonUint(json, "tier_up_remedy", v))
            tierRemedy += v;
        if (server::statsJsonUint(json, "tier_up_tier2", v))
            tierTier2 += v;
        // Absent in documents from pre-jit daemons; merge tolerantly.
        if (server::statsJsonUint(json, "tier_up_jit", v))
            tierJit += v;
        if (server::statsJsonUint(json, "tiered_runs", v))
            tieredRuns += v;
        if (server::statsJsonUint(json, "catalog.hits", v))
            hits += v;
        if (server::statsJsonUint(json, "catalog.misses", v))
            misses += v;
        if (server::statsJsonUint(json, "catalog.loads", v))
            loads += v;
        server::statsJsonHistogram(json, "histograms.queue_us", queue);
        server::statsJsonHistogram(json, "histograms.service_us",
                                   service);
        server::statsJsonHistogram(json, "histograms.total_us", total);
    }

    std::string out = "{";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"shards_reporting\":%" PRIu64
                  ",\"accepted\":%" PRIu64 ",\"served\":%" PRIu64
                  ",\"shed\":%" PRIu64 ",\"deadline\":%" PRIu64
                  ",\"failed\":%" PRIu64,
                  reporting, accepted, served, shed, deadline, failed);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"tier_up_remedy\":%" PRIu64
                  ",\"tier_up_tier2\":%" PRIu64
                  ",\"tier_up_jit\":%" PRIu64
                  ",\"tiered_runs\":%" PRIu64,
                  tierRemedy, tierTier2, tierJit, tieredRuns);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"catalog\":{\"hits\":%" PRIu64
                  ",\"misses\":%" PRIu64 ",\"loads\":%" PRIu64 "}",
                  hits, misses, loads);
    out += buf;
    out += ",\"histograms\":{";
    server::appendHistogramJson(out, "queue_us", queue);
    out += ',';
    server::appendHistogramJson(out, "service_us", service);
    out += ',';
    server::appendHistogramJson(out, "total_us", total);
    out += "}}";
    return out;
}

} // namespace interp::cluster
