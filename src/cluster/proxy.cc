#include "cluster/proxy.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "support/logging.hh"

namespace interp::cluster {

using server::EvalRequest;
using server::EvalResponse;
using server::Status;
using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;

namespace {

uint64_t
elapsedMicros(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to)
{
    return (uint64_t)duration_cast<microseconds>(to - from).count();
}

} // namespace

// --- lifecycle -------------------------------------------------------------

Proxy::Proxy(const ProxyConfig &config)
    : cfg(config), ring((int)config.shards.size(),
                        config.vnodes ? config.vnodes : 1)
{
    if (cfg.poolSize == 0)
        cfg.poolSize = 1;
    shards.resize(cfg.shards.size());
    for (size_t i = 0; i < cfg.shards.size(); ++i) {
        shards[i].ep = cfg.shards[i];
        if (shards[i].ep.name.empty())
            shards[i].ep.name = "s" + std::to_string(i);
        shards[i].pool.resize(cfg.poolSize);
    }
}

Proxy::~Proxy()
{
    for (auto &entry : fronts)
        ::close(entry.second.fd);
    for (Shard &s : shards)
        for (BackConn &bc : s.pool)
            if (bc.fd >= 0)
                ::close(bc.fd);
    if (unixFd >= 0)
        ::close(unixFd);
    if (tcpFd >= 0)
        ::close(tcpFd);
    if (wakeRead >= 0)
        ::close(wakeRead);
    if (wakeWrite >= 0)
        ::close(wakeWrite);
    if (!cfg.unixPath.empty())
        ::unlink(cfg.unixPath.c_str());
}

void
Proxy::start()
{
    if (cfg.unixPath.empty() && cfg.tcpPort < 0)
        fatal("interproxy: no listener configured "
              "(need a unix path or a tcp port)");
    if (cfg.shards.empty())
        fatal("interproxy: no shards configured");

    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0)
        fatal("interproxy: pipe2: %s", std::strerror(errno));
    wakeRead = pipefd[0];
    wakeWrite = pipefd[1];

    if (!cfg.unixPath.empty()) {
        sockaddr_un sun{};
        if (cfg.unixPath.size() >= sizeof(sun.sun_path))
            fatal("interproxy: socket path too long: %s",
                  cfg.unixPath.c_str());
        unixFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK |
                                       SOCK_CLOEXEC,
                          0);
        if (unixFd < 0)
            fatal("interproxy: socket(AF_UNIX): %s",
                  std::strerror(errno));
        sun.sun_family = AF_UNIX;
        std::memcpy(sun.sun_path, cfg.unixPath.c_str(),
                    cfg.unixPath.size() + 1);
        ::unlink(cfg.unixPath.c_str());
        if (::bind(unixFd, (const sockaddr *)&sun, sizeof(sun)) != 0)
            fatal("interproxy: bind %s: %s", cfg.unixPath.c_str(),
                  std::strerror(errno));
        if (::listen(unixFd, 128) != 0)
            fatal("interproxy: listen %s: %s", cfg.unixPath.c_str(),
                  std::strerror(errno));
    }

    if (cfg.tcpPort >= 0) {
        tcpFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                      SOCK_CLOEXEC,
                         0);
        if (tcpFd < 0)
            fatal("interproxy: socket(AF_INET): %s",
                  std::strerror(errno));
        int one = 1;
        ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in sin{};
        sin.sin_family = AF_INET;
        sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        sin.sin_port = htons((uint16_t)cfg.tcpPort);
        if (::bind(tcpFd, (const sockaddr *)&sin, sizeof(sin)) != 0)
            fatal("interproxy: bind 127.0.0.1:%d: %s", cfg.tcpPort,
                  std::strerror(errno));
        if (::listen(tcpFd, 128) != 0)
            fatal("interproxy: listen tcp: %s", std::strerror(errno));
        socklen_t len = sizeof(sin);
        if (::getsockname(tcpFd, (sockaddr *)&sin, &len) != 0)
            fatal("interproxy: getsockname: %s", std::strerror(errno));
        boundTcpPort_ = ntohs(sin.sin_port);
    }

    for (size_t i = 0; i < shards.size(); ++i)
        beginConnect((int)i);
}

void
Proxy::stop()
{
    stopping.store(true, std::memory_order_release);
    wake();
}

void
Proxy::wake()
{
    char byte = 1;
    (void)!::write(wakeWrite, &byte, 1);
}

// --- event loop ------------------------------------------------------------

int
Proxy::pollTimeoutMs(Clock::time_point now) const
{
    bool have = false;
    Clock::time_point next{};
    auto consider = [&](Clock::time_point t) {
        if (!have || t < next) {
            next = t;
            have = true;
        }
    };
    for (const Shard &s : shards) {
        if (s.state == Shard::State::Down)
            consider(s.nextAttempt);
        else if (s.state == Shard::State::Up && !s.probeOutstanding)
            consider(s.nextProbe);
        for (const auto &entry : s.inflight)
            consider(entry.second.deadline);
    }
    for (const auto &agg : aggs)
        if (!agg->done)
            consider(agg->deadline);
    if (!have)
        return -1;
    if (next <= now)
        return 0;
    auto ms = duration_cast<milliseconds>(next - now).count() + 1;
    return ms > 60'000 ? 60'000 : (int)ms;
}

void
Proxy::run()
{
    // Poll-set bookkeeping: what each pollfd entry refers to.
    struct Ref
    {
        enum : uint8_t { Wake, Listener, Front, Back } kind;
        uint64_t front = 0;
        int shard = 0;
        int pool = 0;
    };
    std::vector<pollfd> fds;
    std::vector<Ref> refs;

    while (!stopping.load(std::memory_order_acquire)) {
        fds.clear();
        refs.clear();
        fds.push_back({wakeRead, POLLIN, 0});
        refs.push_back({Ref::Wake, 0, 0, 0});
        if (unixFd >= 0) {
            fds.push_back({unixFd, POLLIN, 0});
            refs.push_back({Ref::Listener, 0, 0, 0});
        }
        if (tcpFd >= 0) {
            fds.push_back({tcpFd, POLLIN, 0});
            refs.push_back({Ref::Listener, 0, 0, 0});
        }
        for (auto &entry : fronts) {
            short events = POLLIN;
            if (!entry.second.out.empty())
                events |= POLLOUT;
            fds.push_back({entry.second.fd, events, 0});
            refs.push_back({Ref::Front, entry.first, 0, 0});
        }
        for (size_t si = 0; si < shards.size(); ++si) {
            for (size_t pi = 0; pi < shards[si].pool.size(); ++pi) {
                const BackConn &bc = shards[si].pool[pi];
                if (bc.fd < 0)
                    continue;
                short events = bc.connecting ? POLLOUT : POLLIN;
                if (!bc.connecting && !bc.out.empty())
                    events |= POLLOUT;
                fds.push_back({bc.fd, events, 0});
                refs.push_back({Ref::Back, 0, (int)si, (int)pi});
            }
        }

        int timeout = pollTimeoutMs(Clock::now());
        int n = ::poll(fds.data(), (nfds_t)fds.size(), timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("interproxy: poll: %s", std::strerror(errno));
        }
        if (stopping.load(std::memory_order_acquire))
            break;

        if (fds[0].revents & POLLIN) {
            char drain[256];
            while (::read(wakeRead, drain, sizeof(drain)) > 0) {
            }
        }

        for (size_t i = 1; i < fds.size(); ++i) {
            const Ref &ref = refs[i];
            short rev = fds[i].revents;
            if (!rev)
                continue;
            switch (ref.kind) {
              case Ref::Wake:
                break;
              case Ref::Listener:
                if (rev & POLLIN)
                    acceptAll(fds[i].fd);
                break;
              case Ref::Front:
                if (rev & (POLLIN | POLLHUP | POLLERR | POLLNVAL))
                    readFront(ref.front);
                if (fronts.count(ref.front) && (rev & POLLOUT))
                    writeFront(ref.front);
                break;
              case Ref::Back: {
                // The shard may have been failed (fds closed) by an
                // earlier event in this same batch; skip stale refs.
                BackConn &bc = shards[ref.shard].pool[ref.pool];
                if (bc.fd != fds[i].fd)
                    break;
                if (bc.connecting) {
                    if (rev & (POLLOUT | POLLHUP | POLLERR))
                        finishConnect(ref.shard, ref.pool);
                    break;
                }
                if (rev & (POLLIN | POLLHUP | POLLERR | POLLNVAL))
                    readBack(ref.shard, ref.pool);
                if (bc.fd == fds[i].fd && (rev & POLLOUT))
                    writeBack(ref.shard, ref.pool);
                break;
              }
            }
        }

        runTimers(Clock::now());
    }
}

void
Proxy::runTimers(Clock::time_point now)
{
    std::vector<uint32_t> expired;
    for (size_t i = 0; i < shards.size(); ++i) {
        Shard &s = shards[i];
        if (s.state == Shard::State::Down && now >= s.nextAttempt)
            beginConnect((int)i);
        else if (s.state == Shard::State::Up && !s.probeOutstanding &&
                 now >= s.nextProbe)
            sendProbe((int)i);

        expired.clear();
        for (const auto &entry : s.inflight)
            if (now >= entry.second.deadline)
                expired.push_back(entry.first);
        for (uint32_t id : expired) {
            // failShard() inside this loop clears the map; re-check.
            auto it = s.inflight.find(id);
            if (it == s.inflight.end())
                continue;
            Outstanding o = std::move(it->second);
            s.inflight.erase(it);
            switch (o.kind) {
              case Outstanding::Kind::Probe:
                ++s.probeFailures;
                ++s.probeMisses;
                s.probeOutstanding = false;
                if (s.probeMisses >= cfg.probeMissLimit)
                    failShard((int)i, "health probes missed");
                break;
              case Outstanding::Kind::Stats:
                if (!o.agg->done && --o.agg->waiting == 0)
                    finishAgg(o.agg);
                break;
              case Outstanding::Kind::Eval:
                ++s.error;
                if (o.retriesLeft > 0) {
                    --o.retriesLeft;
                    stats_.noteRetry();
                    dispatchEval(std::move(o));
                } else {
                    EvalResponse resp;
                    resp.status = Status::Error;
                    resp.result = "shard " + s.ep.name +
                                  " timed out";
                    deliver(o, std::move(resp));
                }
                break;
            }
        }
    }

    for (auto &agg : aggs)
        if (!agg->done && now >= agg->deadline)
            finishAgg(agg);
    aggs.erase(std::remove_if(
                   aggs.begin(), aggs.end(),
                   [](const std::shared_ptr<StatsAgg> &a) {
                       return a->done;
                   }),
               aggs.end());
}

// --- front side ------------------------------------------------------------

void
Proxy::acceptAll(int listen_fd)
{
    for (;;) {
        int fd = ::accept4(listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        FrontConn conn;
        conn.fd = fd;
        fronts.emplace(nextFrontId++, std::move(conn));
    }
}

void
Proxy::closeFront(uint64_t conn_id)
{
    auto it = fronts.find(conn_id);
    if (it == fronts.end())
        return;
    ::close(it->second.fd);
    fronts.erase(it);
}

void
Proxy::readFront(uint64_t conn_id)
{
    auto it = fronts.find(conn_id);
    if (it == fronts.end())
        return;
    char buf[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(it->second.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            it->second.in.append(buf, (size_t)n);
            continue;
        }
        if (n == 0) {
            closeFront(conn_id);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeFront(conn_id);
        return;
    }

    std::string payload;
    for (;;) {
        auto conn = fronts.find(conn_id);
        if (conn == fronts.end())
            return;
        if (!conn->second.greeted) {
            switch (server::takeHello(conn->second.in)) {
              case server::HelloResult::Incomplete:
                return;
              case server::HelloResult::Mismatch: {
                EvalResponse resp;
                resp.id = 0;
                resp.status = Status::Error;
                resp.result =
                    "protocol mismatch: expected IPD hello version " +
                    std::to_string(server::kProtocolVersion);
                replyFront(conn_id, resp);
                writeFront(conn_id);
                closeFront(conn_id);
                return;
              }
              case server::HelloResult::Ok:
                conn->second.greeted = true;
                break;
            }
        }
        server::FrameResult r = server::takeFrame(
            conn->second.in, payload, server::kMaxRequestBytes);
        if (r == server::FrameResult::Incomplete)
            return;
        if (r == server::FrameResult::Malformed) {
            closeFront(conn_id);
            return;
        }
        handleFrontFrame(conn_id, payload);
    }
}

void
Proxy::writeFront(uint64_t conn_id)
{
    auto it = fronts.find(conn_id);
    if (it == fronts.end())
        return;
    FrontConn &c = it->second;
    while (!c.out.empty()) {
        ssize_t n =
            ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            c.out.erase(0, (size_t)n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        closeFront(conn_id);
        return;
    }
}

void
Proxy::replyFront(uint64_t conn_id, const EvalResponse &resp)
{
    auto it = fronts.find(conn_id);
    if (it == fronts.end())
        return; // client went away; drop the response
    encodeResponse(it->second.out, resp);
}

void
Proxy::handleFrontFrame(uint64_t conn_id, const std::string &payload)
{
    switch (server::requestVerb(payload)) {
      case (uint8_t)server::Verb::Eval: {
        EvalRequest req;
        if (!decodeEvalRequest(payload, req)) {
            closeFront(conn_id);
            return;
        }
        stats_.noteAccepted((uint8_t)req.mode);
        Outstanding o;
        o.kind = Outstanding::Kind::Eval;
        o.frontId = conn_id;
        o.clientReqId = req.id;
        o.req = std::move(req);
        o.retriesLeft = cfg.maxRetries;
        o.sentAt = Clock::now();
        dispatchEval(std::move(o));
        return;
      }
      case (uint8_t)server::Verb::Stats: {
        server::StatsRequest req;
        if (!decodeStatsRequest(payload, req)) {
            closeFront(conn_id);
            return;
        }
        startStatsFanout(conn_id, req.id);
        return;
      }
      default:
        closeFront(conn_id);
    }
}

// --- routing ---------------------------------------------------------------

void
Proxy::dispatchEval(Outstanding o)
{
    std::vector<int> cand;
    ring.candidatesFor(
        routingKey((uint8_t)o.req.mode, o.req.program), cand);
    int target = -1;
    for (int c : cand) {
        if (std::find(o.tried.begin(), o.tried.end(), c) !=
            o.tried.end())
            continue;
        const Shard &s = shards[(size_t)c];
        if (s.state == Shard::State::Down)
            continue;
        if (s.inflight.size() >= cfg.maxInflightPerShard)
            continue;
        target = c;
        break;
    }

    if (target >= 0) {
        if (o.tried.empty() && target != cand[0])
            // First choice was not the home shard: the ring routed
            // around a dead or full shard (DEGRADED accounting).
            stats_.noteRerouted();
        o.tried.push_back(target);
        forwardTo(target, std::move(o));
        return;
    }

    bool any_alive = false;
    for (const Shard &s : shards)
        if (s.state != Shard::State::Down) {
            any_alive = true;
            break;
        }
    EvalResponse resp;
    if (any_alive) {
        // Aggregate capacity: every alive shard is full or shed.
        resp.status = Status::Shed;
        resp.result = "cluster at capacity: all shards refused";
    } else {
        resp.status = Status::Error;
        resp.result = "no alive shards";
    }
    deliver(o, std::move(resp));
}

void
Proxy::forwardTo(int shard_index, Outstanding o)
{
    Shard &s = shards[(size_t)shard_index];
    uint32_t id = nextBackendId++;
    int pool_index = (int)(s.rr++ % s.pool.size());
    o.poolIndex = pool_index;
    o.deadline = Clock::now() + milliseconds(cfg.forwardTimeoutMs);

    EvalRequest wire = o.req;
    wire.id = id;
    BackConn &bc = s.pool[(size_t)pool_index];
    encodeEvalRequest(bc.out, wire);

    ++s.forwarded;
    stats_.noteForwarded();
    s.inflight.emplace(id, std::move(o));
    if (!bc.connecting)
        writeBack(shard_index, pool_index);
}

void
Proxy::deliver(Outstanding &o, EvalResponse resp)
{
    uint8_t mode = (uint8_t)o.req.mode;
    switch (resp.status) {
      case Status::Ok:
        stats_.noteServed(mode);
        stats_.noteLatency(mode,
                           elapsedMicros(o.sentAt, Clock::now()));
        break;
      case Status::Shed:
        stats_.noteShed(mode);
        break;
      case Status::Deadline:
        stats_.noteDeadline(mode);
        break;
      case Status::Error:
        stats_.noteFailed(mode);
        break;
    }
    resp.id = o.clientReqId;
    replyFront(o.frontId, resp);
    writeFront(o.frontId);
}

// --- back side -------------------------------------------------------------

void
Proxy::beginConnect(int shard_index)
{
    Shard &s = shards[(size_t)shard_index];
    s.state = Shard::State::Connecting;
    bool any = false;
    for (size_t p = 0; p < s.pool.size(); ++p) {
        BackConn &bc = s.pool[p];
        if (bc.fd >= 0)
            continue;
        int fd = -1;
        int rc = -1;
        if (!s.ep.unixPath.empty()) {
            sockaddr_un sun{};
            if (s.ep.unixPath.size() >= sizeof(sun.sun_path)) {
                warn("interproxy: shard %s: socket path too long",
                     s.ep.name.c_str());
                break;
            }
            fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK |
                                       SOCK_CLOEXEC,
                          0);
            if (fd < 0)
                break;
            sun.sun_family = AF_UNIX;
            std::memcpy(sun.sun_path, s.ep.unixPath.c_str(),
                        s.ep.unixPath.size() + 1);
            rc = ::connect(fd, (const sockaddr *)&sun, sizeof(sun));
        } else {
            fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                       SOCK_CLOEXEC,
                          0);
            if (fd < 0)
                break;
            sockaddr_in sin{};
            sin.sin_family = AF_INET;
            sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            sin.sin_port = htons((uint16_t)s.ep.tcpPort);
            rc = ::connect(fd, (const sockaddr *)&sin, sizeof(sin));
        }
        if (rc != 0 && errno != EINPROGRESS) {
            ::close(fd);
            continue;
        }
        bc.fd = fd;
        bc.connecting = (rc != 0);
        bc.in.clear();
        bc.out.clear();
        server::encodeHello(bc.out); // first bytes on the wire
        any = true;
        if (!bc.connecting)
            finishConnect(shard_index, (int)p);
    }
    if (!any) {
        // Immediate refusal on every pool connection: back off
        // quietly (down events are counted by failShard(), not by
        // each failed retry).
        s.state = Shard::State::Down;
        s.backoffMs = s.backoffMs
                          ? std::min(s.backoffMs * 2,
                                     cfg.connectBackoffMaxMs)
                          : cfg.connectBackoffMs;
        s.nextAttempt = Clock::now() + milliseconds(s.backoffMs);
    }
}

void
Proxy::finishConnect(int shard_index, int pool_index)
{
    Shard &s = shards[(size_t)shard_index];
    BackConn &bc = s.pool[(size_t)pool_index];
    if (bc.connecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(bc.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0)
            err = errno;
        if (err != 0) {
            failShard(shard_index, std::strerror(err));
            return;
        }
        bc.connecting = false;
    }
    if (s.state != Shard::State::Up) {
        s.state = Shard::State::Up;
        if (s.downEvents > 0)
            ++s.reconnects;
        s.backoffMs = 0;
        s.probeMisses = 0;
        s.probeOutstanding = false;
        s.nextProbe =
            Clock::now() + milliseconds(cfg.probeIntervalMs);
    }
    writeBack(shard_index, pool_index);
}

void
Proxy::readBack(int shard_index, int pool_index)
{
    Shard &s = shards[(size_t)shard_index];
    BackConn &bc = s.pool[(size_t)pool_index];
    char buf[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(bc.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            bc.in.append(buf, (size_t)n);
            continue;
        }
        if (n == 0) {
            failShard(shard_index, "connection closed");
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        failShard(shard_index, std::strerror(errno));
        return;
    }

    std::string payload;
    for (;;) {
        server::FrameResult r = server::takeFrame(
            bc.in, payload, server::kMaxResponseBytes);
        if (r == server::FrameResult::Incomplete)
            return;
        if (r == server::FrameResult::Malformed) {
            failShard(shard_index, "malformed response frame");
            return;
        }
        EvalResponse resp;
        if (!decodeResponse(payload, resp)) {
            failShard(shard_index, "undecodable response payload");
            return;
        }
        handleBackResponse(shard_index, resp);
        // failShard() inside the handler invalidates the buffer.
        if (bc.fd < 0)
            return;
    }
}

void
Proxy::writeBack(int shard_index, int pool_index)
{
    Shard &s = shards[(size_t)shard_index];
    BackConn &bc = s.pool[(size_t)pool_index];
    if (bc.fd < 0 || bc.connecting)
        return;
    while (!bc.out.empty()) {
        ssize_t n =
            ::send(bc.fd, bc.out.data(), bc.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            bc.out.erase(0, (size_t)n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        failShard(shard_index, std::strerror(errno));
        return;
    }
}

void
Proxy::handleBackResponse(int shard_index, const EvalResponse &resp)
{
    Shard &s = shards[(size_t)shard_index];
    auto it = s.inflight.find(resp.id);
    if (it == s.inflight.end()) {
        // Answered after we gave up on it (timeout/retry). The
        // timeout path already delivered to the client, counted the
        // outcome, and erased the id — which is what makes this drop
        // safe: no second deliver, no second latency sample, and the
        // in-flight gauge (the map size) was already decremented
        // exactly once when the id was erased. Count and drop.
        stats_.noteLateReply();
        ++s.lateReplies;
        return;
    }
    Outstanding o = std::move(it->second);
    s.inflight.erase(it);

    switch (o.kind) {
      case Outstanding::Kind::Probe:
        s.probeOutstanding = false;
        s.probeMisses = 0;
        return;
      case Outstanding::Kind::Stats:
        if (!o.agg->done) {
            o.agg->collected.push_back(resp.result);
            if (--o.agg->waiting == 0)
                finishAgg(o.agg);
        }
        return;
      case Outstanding::Kind::Eval:
        break;
    }

    switch (resp.status) {
      case Status::Ok:
        ++s.ok;
        break;
      case Status::Shed:
        ++s.shed;
        break;
      case Status::Deadline:
        ++s.deadlineCount;
        break;
      case Status::Error:
        ++s.error;
        break;
    }

    if (resp.status == Status::Shed && o.retriesLeft > 0) {
        // This shard refused; try the next ring candidate. The
        // client sees SHED only when the whole cluster refuses.
        --o.retriesLeft;
        stats_.noteRetry();
        dispatchEval(std::move(o));
        return;
    }
    deliver(o, resp);
}

void
Proxy::failShard(int shard_index, const char *reason)
{
    Shard &s = shards[(size_t)shard_index];
    if (s.state == Shard::State::Down)
        return;
    for (BackConn &bc : s.pool) {
        if (bc.fd >= 0)
            ::close(bc.fd);
        bc = BackConn{};
    }
    s.state = Shard::State::Down;
    ++s.downEvents;
    stats_.noteShardFailure();
    s.probeOutstanding = false;
    s.probeMisses = 0;
    s.backoffMs =
        s.backoffMs
            ? std::min(s.backoffMs * 2, cfg.connectBackoffMaxMs)
            : cfg.connectBackoffMs;
    s.nextAttempt = Clock::now() + milliseconds(s.backoffMs);

    auto inflight = std::move(s.inflight);
    s.inflight.clear();
    if (!inflight.empty() || s.downEvents == 1)
        warn("interproxy: shard %s down (%s), %zu in flight",
             s.ep.name.c_str(), reason, inflight.size());

    for (auto &entry : inflight) {
        Outstanding &o = entry.second;
        switch (o.kind) {
          case Outstanding::Kind::Probe:
            break;
          case Outstanding::Kind::Stats:
            if (!o.agg->done && --o.agg->waiting == 0)
                finishAgg(o.agg);
            break;
          case Outstanding::Kind::Eval:
            ++s.error;
            if (o.retriesLeft > 0) {
                --o.retriesLeft;
                stats_.noteRetry();
                dispatchEval(std::move(o));
            } else {
                EvalResponse resp;
                resp.status = Status::Error;
                resp.result = "shard " + s.ep.name +
                              " failed: " + reason;
                deliver(o, std::move(resp));
            }
            break;
        }
    }
}

void
Proxy::sendProbe(int shard_index)
{
    Shard &s = shards[(size_t)shard_index];
    uint32_t id = nextBackendId++;
    Outstanding o;
    o.kind = Outstanding::Kind::Probe;
    o.poolIndex = (int)(s.rr++ % s.pool.size());
    o.deadline = Clock::now() + milliseconds(cfg.statsTimeoutMs);
    server::StatsRequest req;
    req.id = id;
    encodeStatsRequest(s.pool[(size_t)o.poolIndex].out, req);
    int pool_index = o.poolIndex;
    s.inflight.emplace(id, std::move(o));
    s.probeOutstanding = true;
    s.nextProbe = Clock::now() + milliseconds(cfg.probeIntervalMs);
    writeBack(shard_index, pool_index);
}

// --- stats -----------------------------------------------------------------

void
Proxy::startStatsFanout(uint64_t conn_id, uint32_t client_req_id)
{
    auto agg = std::make_shared<StatsAgg>();
    agg->frontId = conn_id;
    agg->clientReqId = client_req_id;
    agg->deadline = Clock::now() + milliseconds(cfg.statsTimeoutMs);

    for (size_t i = 0; i < shards.size(); ++i) {
        Shard &s = shards[i];
        if (s.state == Shard::State::Down)
            continue;
        uint32_t id = nextBackendId++;
        Outstanding o;
        o.kind = Outstanding::Kind::Stats;
        o.poolIndex = (int)(s.rr++ % s.pool.size());
        o.deadline = agg->deadline;
        o.agg = agg;
        server::StatsRequest req;
        req.id = id;
        encodeStatsRequest(s.pool[(size_t)o.poolIndex].out, req);
        int pool_index = o.poolIndex;
        s.inflight.emplace(id, std::move(o));
        ++agg->waiting;
        writeBack((int)i, pool_index);
    }

    if (agg->waiting == 0)
        finishAgg(agg);
    else
        aggs.push_back(agg);
}

void
Proxy::finishAgg(const std::shared_ptr<StatsAgg> &agg)
{
    if (agg->done)
        return;
    agg->done = true;
    EvalResponse resp;
    resp.id = agg->clientReqId;
    resp.status = Status::Ok;
    resp.result =
        stats_.renderJson(gauges(), mergeShardStats(agg->collected));
    replyFront(agg->frontId, resp);
    writeFront(agg->frontId);
}

std::vector<ShardGauges>
Proxy::gauges() const
{
    std::vector<ShardGauges> out;
    out.reserve(shards.size());
    for (const Shard &s : shards) {
        ShardGauges g;
        g.name = s.ep.name;
        switch (s.state) {
          case Shard::State::Up:
            g.state = "up";
            break;
          case Shard::State::Connecting:
            g.state = "connecting";
            break;
          case Shard::State::Down:
            g.state = "down";
            break;
        }
        g.inflight = s.inflight.size();
        g.forwarded = s.forwarded;
        g.ok = s.ok;
        g.shed = s.shed;
        g.deadline = s.deadlineCount;
        g.error = s.error;
        g.downEvents = s.downEvents;
        g.reconnects = s.reconnects;
        g.probeFailures = s.probeFailures;
        g.lateReplies = s.lateReplies;
        out.push_back(std::move(g));
    }
    return out;
}

// --- endpoint parsing ------------------------------------------------------

ShardEndpoint
parseEndpoint(const std::string &spec, const std::string &name)
{
    ShardEndpoint ep;
    ep.name = name;
    auto all_digits = [](const std::string &s) {
        if (s.empty())
            return false;
        for (char c : s)
            if (!std::isdigit((unsigned char)c))
                return false;
        return true;
    };
    if (spec.rfind("unix:", 0) == 0)
        ep.unixPath = spec.substr(5);
    else if (spec.rfind("tcp:", 0) == 0 &&
             all_digits(spec.substr(4)))
        ep.tcpPort = std::atoi(spec.c_str() + 4);
    else if (spec.find('/') != std::string::npos)
        ep.unixPath = spec;
    else if (all_digits(spec))
        ep.tcpPort = std::atoi(spec.c_str());
    else
        fatal("interproxy: bad shard endpoint \"%s\" "
              "(want unix:PATH, tcp:PORT, a path, or a port)",
              spec.c_str());
    if (!ep.unixPath.empty() ? false
                             : (ep.tcpPort <= 0 || ep.tcpPort > 65535))
        fatal("interproxy: bad shard port in \"%s\"", spec.c_str());
    return ep;
}

} // namespace interp::cluster
