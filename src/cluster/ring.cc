#include "cluster/ring.hh"

#include <algorithm>

#include "support/logging.hh"

namespace interp::cluster {

uint64_t
hashKey(const std::string &key)
{
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    // Raw FNV-1a has weak avalanche on short, near-identical inputs —
    // exactly what vnode labels ("shard-0#17" vs "shard-1#17") are.
    // Without a finalizer the per-shard point sets stay correlated and
    // ring ownership skews as far as 90/10 on two shards; the fmix64
    // bit mixer restores uniform gaps.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

HashRing::HashRing(int shards, unsigned vnodes) : shards_(shards)
{
    if (shards <= 0 || vnodes == 0)
        fatal("interproxy: ring needs >= 1 shard and >= 1 vnode "
              "(got %d, %u)",
              shards, vnodes);
    points_.reserve((size_t)shards * vnodes);
    for (int s = 0; s < shards; ++s) {
        for (unsigned v = 0; v < vnodes; ++v) {
            std::string label = "shard-" + std::to_string(s) + "#" +
                                std::to_string(v);
            points_.emplace_back(hashKey(label), s);
        }
    }
    std::sort(points_.begin(), points_.end());
}

size_t
HashRing::pointFor(const std::string &key) const
{
    uint64_t h = hashKey(key);
    // First point with hash >= h, wrapping to 0 past the top.
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const std::pair<uint64_t, int> &p, uint64_t value) {
            return p.first < value;
        });
    if (it == points_.end())
        it = points_.begin();
    return (size_t)(it - points_.begin());
}

int
HashRing::shardFor(const std::string &key) const
{
    return points_[pointFor(key)].second;
}

void
HashRing::candidatesFor(const std::string &key,
                        std::vector<int> &out) const
{
    out.clear();
    std::vector<bool> seen((size_t)shards_, false);
    size_t start = pointFor(key);
    for (size_t i = 0; i < points_.size() && (int)out.size() < shards_;
         ++i) {
        int s = points_[(start + i) % points_.size()].second;
        if (!seen[(size_t)s]) {
            seen[(size_t)s] = true;
            out.push_back(s);
        }
    }
}

std::string
routingKey(uint8_t mode, const std::string &program)
{
    std::string key;
    key.reserve(program.size() + 2);
    key += (char)('0' + mode);
    key += '|';
    key += program;
    return key;
}

} // namespace interp::cluster
