/**
 * @file
 * interproxy: the sharded-cluster front-end router.
 *
 * One thread (the caller of run()) owns a poll() event loop that is a
 * client-facing interpd on one side and a pipelined interpd client on
 * the other:
 *
 *   routing    every EVAL is consistent-hashed by (mode, program)
 *              onto one of N interpd shards (HashRing with virtual
 *              nodes), so each program warms exactly one shard's
 *              catalog and repeat traffic stays hot. Requests are
 *              forwarded over per-shard non-blocking connection
 *              pools with proxy-assigned ids and demultiplexed back
 *              to the right client connection and client-chosen id,
 *              preserving full pipelining with out-of-order replies
 *              end to end.
 *   failover   a shard that refuses connections, closes mid-request,
 *              times out, or fails health probes is marked down:
 *              its in-flight requests are retried on the next ring
 *              candidate (bounded retries) or answered ERROR, new
 *              requests route around it (explicit DEGRADED
 *              accounting in STATS), and reconnects back off
 *              exponentially until it returns.
 *   shedding   a shard's SHED answer makes the proxy retry the next
 *              candidate; the client sees SHED only when every
 *              alive shard has refused — backpressure at aggregate
 *              cluster capacity, not at one unlucky shard.
 *   stats      STATS fans out to every alive shard, merges their
 *              ServerStats documents (histograms folded with
 *              LatencyHistogram::mergeFrom) and renders them with
 *              the router's own counters and per-shard gauges.
 *
 * The proxy executes nothing itself, so the loop never blocks on
 * interpreter work; it is purely I/O-bound and single-threaded.
 */

#ifndef INTERP_CLUSTER_PROXY_HH
#define INTERP_CLUSTER_PROXY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/ring.hh"
#include "cluster/stats.hh"
#include "server/protocol.hh"

namespace interp::cluster {

/** Where one interpd shard listens. Unix path wins if both set. */
struct ShardEndpoint
{
    std::string name;     ///< identity in STATS ("s0", "s1", ... )
    std::string unixPath; ///< unix-domain socket path
    int tcpPort = -1;     ///< 127.0.0.1 TCP port
};

struct ProxyConfig
{
    /** Front-side listeners, same semantics as ServerConfig. */
    std::string unixPath;
    int tcpPort = -1;

    std::vector<ShardEndpoint> shards;

    /** Virtual nodes per shard on the hash ring. */
    unsigned vnodes = 64;
    /** Connections per shard (requests round-robin across them). */
    unsigned poolSize = 1;
    /** Re-dispatch budget per request (shard SHED / death / timeout). */
    uint32_t maxRetries = 2;
    /** Reconnect backoff after a shard goes down (doubles per
     *  failure up to the max). */
    uint32_t connectBackoffMs = 50;
    uint32_t connectBackoffMaxMs = 2000;
    /** Health-probe (STATS) period against every up shard. */
    uint32_t probeIntervalMs = 250;
    /** Consecutive missed probes before the shard is marked down. */
    uint32_t probeMissLimit = 2;
    /** Probe / STATS fan-out reply deadline. */
    uint32_t statsTimeoutMs = 1000;
    /** Per-forwarded-request reply deadline at a shard. */
    uint32_t forwardTimeoutMs = 30000;
    /** Proxy-side in-flight cap per shard; a full shard is skipped
     *  on the ring exactly like a down one. */
    size_t maxInflightPerShard = 1024;
};

class Proxy
{
  public:
    explicit Proxy(const ProxyConfig &config);

    /** run() must have returned (or never been called). */
    ~Proxy();

    Proxy(const Proxy &) = delete;
    Proxy &operator=(const Proxy &) = delete;

    /** Bind front listeners and start connecting to every shard.
     *  fatal() on setup errors (shard connects are retried, not
     *  fatal — a cluster may come up proxy-first). */
    void start();

    /** Event loop; returns after stop(). Call from one thread only. */
    void run();

    /** Ask run() to return; callable from any thread / signal. */
    void stop();

    /** Actual front TCP port after start(). */
    int tcpPort() const { return boundTcpPort_; }

    const ProxyConfig &config() const { return cfg; }

  private:
    using Clock = std::chrono::steady_clock;

    struct FrontConn
    {
        int fd = -1;
        server::RecvBuffer in;
        std::string out;
        bool greeted = false;
    };

    struct BackConn
    {
        int fd = -1;
        bool connecting = false; ///< non-blocking connect pending
        server::RecvBuffer in;
        std::string out;
    };

    /** One STATS fan-out awaiting shard replies. */
    struct StatsAgg
    {
        uint64_t frontId = 0;
        uint32_t clientReqId = 0;
        int waiting = 0;
        bool done = false;
        Clock::time_point deadline;
        std::vector<std::string> collected;
    };

    /** One frame sent to a shard and not yet answered. */
    struct Outstanding
    {
        enum class Kind : uint8_t { Eval, Probe, Stats };
        Kind kind = Kind::Eval;
        int poolIndex = 0;
        Clock::time_point deadline;
        // Eval
        uint64_t frontId = 0;
        uint32_t clientReqId = 0;
        server::EvalRequest req;
        uint32_t retriesLeft = 0;
        std::vector<int> tried; ///< shards already attempted
        Clock::time_point sentAt;
        // Stats fan-out
        std::shared_ptr<StatsAgg> agg;
    };

    struct Shard
    {
        ShardEndpoint ep;
        enum class State : uint8_t { Connecting, Up, Down };
        State state = State::Down;
        std::vector<BackConn> pool;
        unsigned rr = 0; ///< round-robin pool cursor
        std::unordered_map<uint32_t, Outstanding> inflight;
        uint32_t backoffMs = 0;
        Clock::time_point nextAttempt; ///< reconnect timer (Down)
        Clock::time_point nextProbe;   ///< health-probe timer (Up)
        bool probeOutstanding = false;
        uint32_t probeMisses = 0;
        // gauges
        uint64_t forwarded = 0, ok = 0, shed = 0, deadlineCount = 0,
                 error = 0, downEvents = 0, reconnects = 0,
                 probeFailures = 0, lateReplies = 0;
    };

    // --- front side -------------------------------------------------------
    void acceptAll(int listen_fd);
    void readFront(uint64_t conn_id);
    void writeFront(uint64_t conn_id);
    void closeFront(uint64_t conn_id);
    void handleFrontFrame(uint64_t conn_id, const std::string &payload);
    void replyFront(uint64_t conn_id, const server::EvalResponse &resp);

    // --- routing ----------------------------------------------------------
    /** Forward @p o to the best candidate, or synthesize SHED/ERROR
     *  back to its client when the ring is exhausted. */
    void dispatchEval(Outstanding o);
    void forwardTo(int shard_index, Outstanding o);
    void deliver(Outstanding &o, server::EvalResponse resp);

    // --- back side --------------------------------------------------------
    void beginConnect(int shard_index);
    void finishConnect(int shard_index, int pool_index);
    void readBack(int shard_index, int pool_index);
    void writeBack(int shard_index, int pool_index);
    void handleBackResponse(int shard_index,
                            const server::EvalResponse &resp);
    /** Mark the shard down, fail over its in-flight work, schedule a
     *  reconnect. */
    void failShard(int shard_index, const char *reason);
    void sendProbe(int shard_index);

    // --- stats ------------------------------------------------------------
    void startStatsFanout(uint64_t conn_id, uint32_t client_req_id);
    void finishAgg(const std::shared_ptr<StatsAgg> &agg);
    std::vector<ShardGauges> gauges() const;

    // --- timers -----------------------------------------------------------
    int pollTimeoutMs(Clock::time_point now) const;
    void runTimers(Clock::time_point now);
    void wake();

    ProxyConfig cfg;
    HashRing ring;
    ClusterStats stats_;

    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort_ = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::atomic<bool> stopping{false};

    uint64_t nextFrontId = 1;
    std::unordered_map<uint64_t, FrontConn> fronts;

    std::vector<Shard> shards;
    uint32_t nextBackendId = 1;
    std::vector<std::shared_ptr<StatsAgg>> aggs;
};

/** Parse "unix:PATH", "tcp:PORT", a bare path (contains '/') or a
 *  bare port into an endpoint named @p name. fatal() on nonsense. */
ShardEndpoint parseEndpoint(const std::string &spec,
                            const std::string &name);

} // namespace interp::cluster

#endif // INTERP_CLUSTER_PROXY_HH
