/**
 * @file
 * interproxy observability: cluster-wide counters and aggregation.
 *
 * Three layers, all served by the proxy's STATS verb in one JSON
 * document:
 *
 *   proxy    counters the router observes itself: per-mode outcome
 *            counts (as seen by clients), forwards, SHED-retries,
 *            reroutes away from dead home shards (the DEGRADED
 *            accounting), synthesized shard-failure errors, late
 *            replies — plus per-mode log2 latency histograms of
 *            forward -> response time (client-observed tail latency
 *            of the whole cluster).
 *   shards   per-shard gauges: state (up/connecting/down), in-flight,
 *            forwarded/outcome counts, down events, reconnects,
 *            probe failures.
 *   merged   the sum of the shards' own ServerStats documents,
 *            gathered by STATS fan-out: counter sums, catalog sums,
 *            and the three latency histograms folded together with
 *            LatencyHistogram::mergeFrom() — cluster-wide queue/
 *            service/total tails at log2 resolution.
 *
 * ClusterStats is owned and mutated by the proxy's event-loop thread
 * only (the proxy is single-threaded), so it needs no locking.
 */

#ifndef INTERP_CLUSTER_STATS_HH
#define INTERP_CLUSTER_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "server/stats.hh"

namespace interp::cluster {

/** Snapshot of one shard's health and traffic, rendered per shard. */
struct ShardGauges
{
    std::string name;
    const char *state = "down"; ///< "up" | "connecting" | "down"
    size_t inflight = 0;        ///< requests awaiting a reply
    uint64_t forwarded = 0;     ///< EVAL frames sent (incl. retries)
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t deadline = 0;
    uint64_t error = 0;
    uint64_t downEvents = 0;    ///< transitions into "down"
    uint64_t reconnects = 0;    ///< successful re-establishments
    uint64_t probeFailures = 0; ///< health probes timed out/refused
    /** Replies that arrived after the proxy gave up on the request
     *  (timeout/retry); dropped without touching client state. */
    uint64_t lateReplies = 0;
};

/** Event-loop-thread-only counters of the router itself. */
class ClusterStats
{
  public:
    static constexpr int kModes = server::ServerStats::kModes;

    void noteAccepted(uint8_t mode) { ++modes_[clamp(mode)].accepted; }
    void noteServed(uint8_t mode) { ++modes_[clamp(mode)].served; }
    void noteShed(uint8_t mode) { ++modes_[clamp(mode)].shed; }
    void noteDeadline(uint8_t mode) { ++modes_[clamp(mode)].deadline; }
    void noteFailed(uint8_t mode) { ++modes_[clamp(mode)].failed; }

    void noteForwarded() { ++forwarded_; }
    void noteRetry() { ++retries_; }
    void noteRerouted() { ++rerouted_; }
    void noteShardFailure() { ++shardFailures_; }
    void noteLateReply() { ++lateReplies_; }

    /** Forward -> response time of one answered request. */
    void
    noteLatency(uint8_t mode, uint64_t micros)
    {
        latency_[clamp(mode)].add(micros);
    }

    server::ModeCounters totals() const;

    /**
     * The cluster STATS document: proxy counters + per-mode latency
     * histograms, the per-shard gauge objects, and @p merged_object
     * (a JSON object rendered by mergeShardStats(), or "{}" when no
     * shard answered) under "merged". Deterministic key order.
     */
    std::string renderJson(const std::vector<ShardGauges> &shards,
                           const std::string &merged_object) const;

  private:
    static int
    clamp(uint8_t mode)
    {
        return mode < kModes ? mode : 0;
    }

    server::ModeCounters modes_[kModes];
    server::LatencyHistogram latency_[kModes];
    uint64_t forwarded_ = 0;
    uint64_t retries_ = 0;
    uint64_t rerouted_ = 0;
    uint64_t shardFailures_ = 0;
    uint64_t lateReplies_ = 0;
};

/**
 * Fold the ServerStats JSON documents of several shards into one
 * object: counter and catalog sums, and queue/service/total
 * histograms merged bucket-by-bucket (parse with
 * statsJsonHistogram(), fold with mergeFrom()). "shards_reporting"
 * records how many documents went in — a dead shard's counters are
 * simply absent, which the caller surfaces via the gauges instead.
 */
std::string mergeShardStats(const std::vector<std::string> &shard_jsons);

} // namespace interp::cluster

#endif // INTERP_CLUSTER_STATS_HH
