/**
 * @file
 * Consistent-hash ring with virtual nodes.
 *
 * The interproxy router places every shard at `vnodes` pseudo-random
 * points on a 64-bit ring and sends each request to the first shard
 * clockwise from the hash of its routing key (program name x mode).
 * Virtual nodes smooth the load split; consistent hashing keeps the
 * remap small when membership changes: removing one shard moves only
 * the keys that shard owned, everything else keeps its assignment —
 * which is exactly what a warm program catalog per shard wants, since
 * a remapped program must be re-loaded (re-compiled) at its new home.
 *
 * candidatesFor() yields the full failover order for a key: the home
 * shard first, then each distinct successor around the ring. Routing
 * to candidate k+1 exactly when candidates 0..k are dead/full makes
 * "route around failures, shed only at aggregate capacity" a local
 * decision per request, with no global rebalancing step.
 */

#ifndef INTERP_CLUSTER_RING_HH
#define INTERP_CLUSTER_RING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace interp::cluster {

/** FNV-1a 64-bit — stable across runs and platforms, so routing (and
 *  therefore which shard warms which program) is reproducible. */
uint64_t hashKey(const std::string &key);

class HashRing
{
  public:
    /** @p shards numbered 0..shards-1, each at @p vnodes points. */
    HashRing(int shards, unsigned vnodes);

    int shards() const { return shards_; }

    /** Home shard for @p key (ignores liveness). */
    int shardFor(const std::string &key) const;

    /**
     * All distinct shards in ring order starting at @p key's point:
     * out[0] is the home shard, out[k] the k-th failover choice.
     * Size == shards().
     */
    void candidatesFor(const std::string &key,
                       std::vector<int> &out) const;

  private:
    size_t pointFor(const std::string &key) const;

    int shards_;
    /** Sorted (hash point, shard) pairs. */
    std::vector<std::pair<uint64_t, int>> points_;
};

/** Routing key of an EVAL: mode and program name together, so the
 *  same program under two modes may warm on two shards (each mode's
 *  catalog entry is a distinct compiled artifact). */
std::string routingKey(uint8_t mode, const std::string &program);

} // namespace interp::cluster

#endif // INTERP_CLUSTER_RING_HH
