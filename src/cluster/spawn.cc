#include "cluster/spawn.hh"

#include <dirent.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "support/logging.hh"

namespace interp::cluster {

LocalCluster::LocalCluster(const ClusterConfig &config) : cfg(config)
{
    if (cfg.shardCount == 0)
        fatal("cluster: need at least one shard");
}

LocalCluster::~LocalCluster()
{
    stopAll();
    removeTempDir();
}

void
LocalCluster::removeTempDir()
{
    if (dir_.empty())
        return;
    // Unlinking only the paths this object handed out is not enough:
    // a SIGKILL'd subprocess shard never removes its bound socket, a
    // respawn re-binds the same name, and a start() that fatal()ed
    // midway may have created sockets this object never recorded. Any
    // survivor makes the old blind rmdir() fail silently and leaks
    // the whole /tmp/interproxy-* directory. Sweep everything.
    if (DIR *d = ::opendir(dir_.c_str())) {
        while (struct dirent *ent = ::readdir(d)) {
            if (!std::strcmp(ent->d_name, ".") ||
                !std::strcmp(ent->d_name, ".."))
                continue;
            std::string path = dir_ + "/" + ent->d_name;
            ::unlink(path.c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir_.c_str());
    dir_.clear();
    proxyPath_.clear();
    shardPaths_.clear();
}

void
LocalCluster::waitConnectable(const std::string &path)
{
    // A bound-and-listening unix socket accepts immediately; poll
    // for it so subprocess shards get time to reach listen().
    for (int attempt = 0; attempt < 500; ++attempt) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            fatal("cluster: socket: %s", std::strerror(errno));
        sockaddr_un sun{};
        sun.sun_family = AF_UNIX;
        std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
        int rc = ::connect(fd, (const sockaddr *)&sun, sizeof(sun));
        ::close(fd);
        if (rc == 0)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    fatal("cluster: shard socket %s never became connectable",
          path.c_str());
}

void
LocalCluster::spawnShard(size_t i)
{
    ShardProc &p = procs_[i];
    if (cfg.interpdPath.empty()) {
        server::ServerConfig sc;
        sc.unixPath = shardPaths_[i];
        sc.workers = cfg.workersPerShard;
        sc.maxQueue = cfg.maxQueuePerShard;
        sc.maxBatch = cfg.maxBatchPerShard;
        sc.shardId = "s" + std::to_string(i);
        sc.tier = cfg.tierPerShard;
        p.server = std::make_unique<server::Server>(sc);
        p.server->start();
        p.thread = std::thread([srv = p.server.get()] { srv->run(); });
        p.alive = true;
        return;
    }

    pid_t pid = ::fork();
    if (pid < 0)
        fatal("cluster: fork: %s", std::strerror(errno));
    if (pid == 0) {
        std::string workers = std::to_string(cfg.workersPerShard);
        std::string queue = std::to_string(cfg.maxQueuePerShard);
        std::string batch = std::to_string(cfg.maxBatchPerShard);
        std::string shard_id = "s" + std::to_string(i);
        std::string remedy_after =
            std::to_string(cfg.tierPerShard.remedyAfter);
        std::string tier2_after =
            std::to_string(cfg.tierPerShard.tier2After);
        std::string jit_after =
            std::to_string(cfg.tierPerShard.jitAfter);
        std::string per_point =
            std::to_string(cfg.tierPerShard.commandsPerPoint);
        std::string decay =
            std::to_string(cfg.tierPerShard.decayEvery);
        if (cfg.tierPerShard.enabled)
            ::execl(cfg.interpdPath.c_str(), cfg.interpdPath.c_str(),
                    "--socket", shardPaths_[i].c_str(), "--workers",
                    workers.c_str(), "--queue", queue.c_str(),
                    "--batch", batch.c_str(), "--shard-id",
                    shard_id.c_str(), "--tierup",
                    "--tier-remedy-after", remedy_after.c_str(),
                    "--tier-tier2-after", tier2_after.c_str(),
                    "--tier-jit-after", jit_after.c_str(),
                    "--tier-commands-per-point", per_point.c_str(),
                    "--tier-decay-every", decay.c_str(),
                    (char *)nullptr);
        else
            ::execl(cfg.interpdPath.c_str(), cfg.interpdPath.c_str(),
                    "--socket", shardPaths_[i].c_str(), "--workers",
                    workers.c_str(), "--queue", queue.c_str(),
                    "--batch", batch.c_str(), "--shard-id",
                    shard_id.c_str(), (char *)nullptr);
        // exec failed; nothing sane to do in the child but leave.
        ::_exit(127);
    }
    p.pid = pid;
    p.alive = true;
    waitConnectable(shardPaths_[i]);
}

void
LocalCluster::start()
{
    char tmpl[] = "/tmp/interproxy-XXXXXX";
    if (!::mkdtemp(tmpl))
        fatal("cluster: mkdtemp: %s", std::strerror(errno));
    dir_ = tmpl;
    proxyPath_ = dir_ + "/proxy.sock";

    shardPaths_.resize(cfg.shardCount);
    procs_.resize(cfg.shardCount);
    cfg.proxy.shards.clear();
    for (size_t i = 0; i < cfg.shardCount; ++i) {
        shardPaths_[i] = dir_ + "/shard" + std::to_string(i) + ".sock";
        ShardEndpoint ep;
        ep.name = "s" + std::to_string(i);
        ep.unixPath = shardPaths_[i];
        cfg.proxy.shards.push_back(std::move(ep));
    }
    for (size_t i = 0; i < cfg.shardCount; ++i)
        spawnShard(i);

    cfg.proxy.unixPath = proxyPath_;
    proxy_ = std::make_unique<Proxy>(cfg.proxy);
    proxy_->start();
    proxyThread_ = std::thread([p = proxy_.get()] { p->run(); });
    waitConnectable(proxyPath_);
    started_ = true;
}

void
LocalCluster::killShard(size_t i)
{
    ShardProc &p = procs_.at(i);
    if (!p.alive)
        return;
    if (p.server) {
        p.server->stop();
        p.thread.join();
        p.server.reset();
    } else if (p.pid > 0) {
        ::kill(p.pid, SIGKILL);
        ::waitpid(p.pid, nullptr, 0);
        p.pid = -1;
    }
    ::unlink(shardPaths_[i].c_str());
    p.alive = false;
}

void
LocalCluster::restartShard(size_t i)
{
    ShardProc &p = procs_.at(i);
    if (p.alive)
        return;
    spawnShard(i);
    if (p.server)
        waitConnectable(shardPaths_[i]);
}

void
LocalCluster::stopAll()
{
    if (proxy_) {
        proxy_->stop();
        if (proxyThread_.joinable())
            proxyThread_.join();
        proxy_.reset();
    }
    for (size_t i = 0; i < procs_.size(); ++i)
        killShard(i);
    started_ = false;
}

} // namespace interp::cluster
