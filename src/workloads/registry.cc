#include "workloads/registry.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace interp::workloads {

using harness::Lang;

const char *
trafficName(Traffic t)
{
    return t == Traffic::Interactive ? "interactive" : "batch";
}

std::string
loadProgramFile(const std::string &relative_path)
{
    std::string path =
        std::string(INTERP_PROGRAMS_DIR) + "/" + relative_path;
    std::ifstream in(path);
    if (!in.good())
        fatal("cannot open program source %s", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
composeSource(const std::string &script)
{
    std::string src = loadProgramFile("minic/scriptel.mc");
    const std::string key = "compose.sel";
    size_t at = src.find(key);
    if (at == std::string::npos)
        fatal("scriptel.mc lost its script placeholder");
    while (at != std::string::npos) {
        src.replace(at, key.size(), script);
        at = src.find(key, at + script.size());
    }
    return src;
}

// --- the table ---------------------------------------------------------

namespace {

/** Shorthand builders so the table below stays readable. */
Workload
direct(std::string name, Traffic traffic, bool inputs,
       std::vector<ModeSource> sources)
{
    Workload w;
    w.name = std::move(name);
    w.traffic = traffic;
    w.needsInputs = inputs;
    w.sources = std::move(sources);
    return w;
}

Workload
composed(std::string name, Traffic traffic, std::string script)
{
    // Composed workloads always need inputs: the script itself is a
    // vfs file, installed alongside the standard input set.
    Workload w;
    w.name = std::move(name);
    w.traffic = traffic;
    w.needsInputs = true;
    w.script = std::move(script);
    // The tower's MIPS level: Scriptel compiled for the backend. The
    // same row serves Lang::C in bench_compose (native rung).
    w.sources = {{Lang::Mipsi, "minic/scriptel.mc", 20}};
    return w;
}

/** Captured expected-stdout table (regenerate with capture_goldens). */
struct GoldenRow
{
    const char *name;
    Lang lang;
    const char *expect;
};

const std::vector<GoldenRow> kGoldenRows = {
#include "workloads/goldens.inc"
};

std::vector<Workload>
buildRegistry()
{
    std::vector<Workload> table;

    // --- the paper's Table 2 suite (legacy order keys 0..5) ------------
    table.push_back(direct(
        "des", Traffic::Batch, false,
        {{Lang::C, "minic/des.mc", 0},
         {Lang::Mipsi, "minic/des.mc", 0},
         {Lang::Java, "minic/des.mc", 0},
         {Lang::Perl, "perlish/des.pl", 0},
         {Lang::Tcl, "tclish/des.tcl", 0}}));
    table.push_back(direct("compress", Traffic::Batch, true,
                           {{Lang::Mipsi, "minic/compress.mc", 1}}));
    table.push_back(direct("eqntott", Traffic::Batch, false,
                           {{Lang::Mipsi, "minic/eqntott.mc", 2}}));
    table.push_back(direct("espresso", Traffic::Batch, false,
                           {{Lang::Mipsi, "minic/espresso.mc", 3}}));
    table.push_back(direct("li", Traffic::Batch, false,
                           {{Lang::Mipsi, "minic/li.mc", 4}}));
    table.push_back(direct("asteroids", Traffic::Batch, false,
                           {{Lang::Java, "minic/asteroids.mc", 1}}));
    table.push_back(direct("hanoi", Traffic::Interactive, false,
                           {{Lang::Java, "minic/hanoi_gfx.mc", 2},
                            {Lang::Tcl, "tclish/hanoi.tcl", 5}}));
    table.push_back(direct("javac", Traffic::Batch, true,
                           {{Lang::Java, "minic/javac.mc", 3}}));
    table.push_back(direct("mand", Traffic::Batch, false,
                           {{Lang::Java, "minic/mand.mc", 4}}));
    table.push_back(direct("a2ps", Traffic::Batch, true,
                           {{Lang::Perl, "perlish/a2ps.pl", 1}}));
    table.push_back(direct("plexus", Traffic::Batch, true,
                           {{Lang::Perl, "perlish/plexus.pl", 2}}));
    table.push_back(direct("txt2html", Traffic::Batch, true,
                           {{Lang::Perl, "perlish/txt2html.pl", 3}}));
    table.push_back(direct("weblint", Traffic::Batch, true,
                           {{Lang::Perl, "perlish/weblint.pl", 4}}));
    table.push_back(direct("tcllex", Traffic::Interactive, true,
                           {{Lang::Tcl, "tclish/tcllex.tcl", 1}}));
    table.push_back(direct("tcltags", Traffic::Batch, true,
                           {{Lang::Tcl, "tclish/tcltags.tcl", 2}}));

    // --- the modern spread (ISSUE 10; order keys 10..15) ---------------
    table.push_back(direct(
        "rxmatch", Traffic::Interactive, true,
        {{Lang::Mipsi, "minic/rxmatch.mc", 10},
         {Lang::Java, "minic/rxmatch.mc", 10},
         {Lang::Perl, "perlish/rxmatch.pl", 10},
         {Lang::Tcl, "tclish/rxmatch.tcl", 10}}));
    table.push_back(direct(
        "kanren", Traffic::Batch, false,
        {{Lang::Mipsi, "minic/kanren.mc", 11},
         {Lang::Java, "minic/kanren.mc", 11},
         {Lang::Tcl, "tclish/kanren.tcl", 11}}));
    table.push_back(direct(
        "matmul", Traffic::Batch, false,
        {{Lang::Mipsi, "minic/matmul.mc", 12},
         {Lang::Java, "minic/matmul.mc", 12},
         {Lang::Perl, "perlish/matmul.pl", 12},
         {Lang::Tcl, "tclish/matmul.tcl", 12}}));
    table.push_back(direct(
        "spin", Traffic::Interactive, false,
        {{Lang::Mipsi, "minic/spin.mc", 13},
         {Lang::Java, "minic/spin.mc", 13},
         {Lang::Perl, "perlish/spin.pl", 13},
         {Lang::Tcl, "tclish/spin.tcl", 13}}));

    // --- the composition tower -----------------------------------------
    table.push_back(composed("compose-spin", Traffic::Interactive,
                             "spin.sel"));
    table.push_back(composed("compose-mat", Traffic::Batch, "mat.sel"));

    for (const GoldenRow &row : kGoldenRows)
        for (Workload &w : table)
            if (w.name == row.name)
                w.goldens.push_back({row.lang, row.expect});

    return table;
}

} // namespace

const std::vector<Workload> &
registry()
{
    static const std::vector<Workload> table = buildRegistry();
    return table;
}

const Workload *
find(const std::string &name)
{
    for (const Workload &w : registry())
        if (w.name == name)
            return &w;
    return nullptr;
}

bool
Workload::supports(harness::Lang mode) const
{
    Lang base = harness::baselineOf(mode);
    for (const ModeSource &s : sources)
        if (s.lang == base)
            return true;
    return false;
}

const std::string *
goldenFor(const Workload &w, harness::Lang mode)
{
    Lang base = harness::baselineOf(mode);
    for (const Golden &g : w.goldens)
        if (g.lang == base)
            return &g.expect;
    return nullptr;
}

uint64_t
fnv64(const std::string &text)
{
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
fnv64Hex(const std::string &text)
{
    char buf[32];
    snprintf(buf, sizeof buf, "fnv64:%016llx",
             (unsigned long long)fnv64(text));
    return buf;
}

bool
goldenMatches(const Workload &w, harness::Lang mode,
              const std::string &got)
{
    const std::string *expect = goldenFor(w, mode);
    if (!expect)
        return false;
    if (expect->compare(0, 6, "fnv64:") == 0)
        return fnv64Hex(got) == *expect;
    return got == *expect;
}

harness::BenchSpec
specFor(const Workload &w, harness::Lang mode)
{
    harness::BenchSpec spec;
    spec.lang = mode;
    spec.name = w.name;
    spec.needsInputs = w.needsInputs;
    if (w.composed()) {
        spec.source = composeSource(w.script);
        return spec;
    }
    Lang base = harness::baselineOf(mode);
    for (const ModeSource &s : w.sources) {
        if (s.lang == base) {
            spec.source = loadProgramFile(s.path);
            return spec;
        }
    }
    fatal("workload %s does not run under %s", w.name.c_str(),
          harness::langName(mode));
}

std::vector<harness::BenchSpec>
macroRows()
{
    std::vector<harness::BenchSpec> suite;
    const Lang groups[] = {Lang::C, Lang::Mipsi, Lang::Java, Lang::Perl,
                           Lang::Tcl};
    for (Lang lang : groups) {
        std::vector<std::pair<int, const Workload *>> rows;
        for (const Workload &w : registry())
            for (const ModeSource &s : w.sources)
                if (s.lang == lang)
                    rows.push_back({s.order, &w});
        std::stable_sort(rows.begin(), rows.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        for (const auto &[order, w] : rows)
            suite.push_back(specFor(*w, lang));
    }
    return suite;
}

// --- suite subsetting --------------------------------------------------

std::string
parseProgramsArg(int argc, char **argv)
{
    const std::string prefix = "--programs=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.compare(0, prefix.size(), prefix) == 0)
            return arg.substr(prefix.size());
    }
    return "";
}

bool
globMatch(const std::string &pattern, const std::string &name)
{
    size_t p = 0, n = 0;
    size_t star = std::string::npos, mark = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = n;
        } else if (star != std::string::npos) {
            p = star + 1;
            n = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::vector<harness::BenchSpec>
filterPrograms(std::vector<harness::BenchSpec> suite,
               const std::string &patterns)
{
    if (patterns.empty())
        return suite;
    std::vector<std::string> globs;
    size_t pos = 0;
    while (pos <= patterns.size()) {
        size_t comma = patterns.find(',', pos);
        if (comma == std::string::npos)
            comma = patterns.size();
        if (comma > pos)
            globs.push_back(patterns.substr(pos, comma - pos));
        pos = comma + 1;
    }
    std::vector<harness::BenchSpec> out;
    for (harness::BenchSpec &spec : suite)
        for (const std::string &g : globs)
            if (globMatch(g, spec.name)) {
                out.push_back(std::move(spec));
                break;
            }
    return out;
}

} // namespace interp::workloads
