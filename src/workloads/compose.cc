#include "workloads/compose.hh"

#include <algorithm>

#include "mipsi/guest_memory.hh"

namespace interp::workloads {

const char *
innerPhaseName(InnerPhase p)
{
    switch (p) {
      case InnerPhase::Startup: return "startup";
      case InnerPhase::Precompile: return "inner-precompile";
      case InnerPhase::Fetch: return "inner-fetch";
      case InnerPhase::Decode: return "inner-decode";
      case InnerPhase::Execute: return "inner-execute";
      case InnerPhase::Dispatch: return "inner-dispatch";
      case InnerPhase::Runtime: return "runtime";
      default: return "?";
    }
}

InnerPhase
GuestFetchProfiler::classify(const std::string &fn_name)
{
    if (fn_name == "fetch_op")
        return InnerPhase::Fetch;
    if (fn_name == "exec_op")
        return InnerPhase::Decode;
    if (fn_name.compare(0, 3, "op_") == 0)
        return InnerPhase::Execute;
    if (fn_name == "main")
        return InnerPhase::Dispatch;
    if (fn_name == "load_script" || fn_name == "tokenize" ||
        fn_name == "next_word" || fn_name == "str_lit" ||
        fn_name == "word_entry" || fn_name == "add_word" ||
        fn_name == "emit")
        return InnerPhase::Precompile;
    return InnerPhase::Runtime;
}

GuestFetchProfiler::GuestFetchProfiler(const mips::Image &image)
{
    const std::string prefix = "fn.";
    for (const auto &[symbol, addr] : image.symbols) {
        if (symbol.compare(0, prefix.size(), prefix) != 0)
            continue;
        FuncCounters fc;
        fc.name = symbol.substr(prefix.size());
        fc.start = addr;
        fc.phase = classify(fc.name);
        funcs_.push_back(std::move(fc));
    }
    std::sort(funcs_.begin(), funcs_.end(),
              [](const FuncCounters &a, const FuncCounters &b) {
                  return a.start < b.start;
              });
    for (size_t i = 0; i < funcs_.size(); ++i)
        funcs_[i].end = i + 1 < funcs_.size() ? funcs_[i + 1].start
                                              : 0xffffffffu;
}

size_t
GuestFetchProfiler::indexOf(uint32_t guest_pc) const
{
    // Last range with start <= pc. Functions are contiguous in the
    // image, so the upper bound's predecessor owns the address.
    size_t lo = 0, hi = funcs_.size();
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (funcs_[mid].start <= guest_pc)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo == 0 ? SIZE_MAX : lo - 1;
}

void
GuestFetchProfiler::onBundle(const trace::Bundle &bundle)
{
    if (bundle.cls == trace::InstClass::Load &&
        bundle.cat == trace::Category::FetchDecode &&
        (bundle.memAddr & mipsi::kGuestDataBit) && !funcs_.empty()) {
        size_t idx = indexOf(bundle.memAddr & ~mipsi::kGuestDataBit);
        if (idx != SIZE_MAX) {
            cur_ = idx;
            funcs_[idx].guestFetches += 1;
            phases_[(size_t)funcs_[idx].phase].guestFetches += 1;
        }
    }

    InnerPhase phase = cur_ == SIZE_MAX ? InnerPhase::Startup
                                        : funcs_[cur_].phase;
    PhaseCounters &pc = phases_[(size_t)phase];
    switch (bundle.cat) {
      case trace::Category::FetchDecode:
        pc.outerFetchDecode += bundle.count;
        break;
      case trace::Category::Execute:
        pc.outerExecute += bundle.count;
        break;
      case trace::Category::Precompile:
        pc.outerPrecompile += bundle.count;
        break;
    }
    if (cur_ != SIZE_MAX)
        funcs_[cur_].outerInsts += bundle.count;
}

} // namespace interp::workloads
