/**
 * @file
 * The guest-workload registry: the single source of truth for what
 * the benchmark suite runs. Every workload declares its name, a
 * traffic class (interactive short-run vs batch long-run — the
 * serving mix loadgen builds), the guest source it runs under each
 * baseline mode, and an expected-stdout golden per mode. The macro
 * suite, interpd's warm catalog and the bench drivers all enumerate
 * from here instead of keeping hard-coded lists.
 *
 * Composition-tower workloads (script non-empty) are ordinary
 * registry entries whose MIPS-mode source is the Scriptel interpreter
 * (programs/minic/scriptel.mc) specialised to read the workload's
 * script: guest-on-guest execution under mipsi, servable and
 * tierable like any other program.
 */

#ifndef INTERP_WORKLOADS_REGISTRY_HH
#define INTERP_WORKLOADS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace interp::workloads {

/** Serving traffic class, the unit of the loadgen interactive:batch
 *  mix and of per-class latency/shed accounting. */
enum class Traffic : uint8_t
{
    Interactive, ///< short request, latency-sensitive
    Batch,       ///< long request, throughput-oriented
};

const char *trafficName(Traffic t);

/** One guest implementation of a workload: the baseline mode it runs
 *  under and the programs/-relative source path. `order` fixes the
 *  row position within the mode's suite group (the legacy Table 2
 *  ordering predates the registry and is kept stable). */
struct ModeSource
{
    harness::Lang lang;
    std::string path;
    int order = 0;
};

/** Expected stdout for a workload under one baseline mode. Either the
 *  literal text, or "fnv64:<hex>" for outputs too large to embed. */
struct Golden
{
    harness::Lang lang;
    std::string expect;
};

struct Workload
{
    std::string name;
    Traffic traffic = Traffic::Batch;
    bool needsInputs = false;
    /** Composition tower: the vfs script file Scriptel interprets
     *  (installed by installAllInputs). Empty for direct workloads. */
    std::string script;
    std::vector<ModeSource> sources;
    std::vector<Golden> goldens;

    /** True if the workload runs under @p mode (via its baseline). */
    bool supports(harness::Lang mode) const;
    bool composed() const { return !script.empty(); }
};

/** All registered workloads, legacy Table 2 entries first. */
const std::vector<Workload> &registry();

/** Lookup by workload name; nullptr when unknown. */
const Workload *find(const std::string &name);

/** The declared golden for @p mode's baseline; nullptr if none. */
const std::string *goldenFor(const Workload &w, harness::Lang mode);

/** Compare @p got against the golden (literal or fnv64 form). False
 *  when no golden is declared. */
bool goldenMatches(const Workload &w, harness::Lang mode,
                   const std::string &got);

/** FNV-1a 64-bit, for the checksum golden form. */
uint64_t fnv64(const std::string &text);
std::string fnv64Hex(const std::string &text);

/** Build the BenchSpec running @p w under @p mode. */
harness::BenchSpec specFor(const Workload &w, harness::Lang mode);

/** The full macro suite in canonical order (what macroSuite serves):
 *  per baseline mode, registry workloads sorted by ModeSource::order. */
std::vector<harness::BenchSpec> macroRows();

/** Read a source file from the repository's programs/ directory. */
std::string loadProgramFile(const std::string &relative_path);

/** The Scriptel interpreter source specialised to run @p script. */
std::string composeSource(const std::string &script);

// --- suite subsetting (--programs=<glob>) ------------------------------

/** Parse a `--programs=<glob[,glob...]>` argument; "" if absent. */
std::string parseProgramsArg(int argc, char **argv);

/** Shell-style match: `*` any run, `?` any one char. */
bool globMatch(const std::string &pattern, const std::string &name);

/** Keep only rows whose name matches one of the comma-separated
 *  patterns; an empty pattern list keeps everything. */
std::vector<harness::BenchSpec>
filterPrograms(std::vector<harness::BenchSpec> suite,
               const std::string &patterns);

} // namespace interp::workloads

#endif // INTERP_WORKLOADS_REGISTRY_HH
