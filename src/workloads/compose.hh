/**
 * @file
 * Per-level attribution for the composition tower (guest-on-guest).
 *
 * When Scriptel — a mini script interpreter written in MiniC — runs
 * under mipsi, the outer Profile's fetch/decode vs execute split
 * describes only the *outer* interpreter. The inner interpreter's own
 * structure (its fetch loop, its decode ladder, its opcode handlers)
 * is invisible: it is all just "execute" to mipsi. GuestFetchProfiler
 * recovers that level: mipsi's instruction fetch surfaces the guest PC
 * as a memory-model load at (kGuestDataBit | pc), and MiniC's codegen
 * records a `fn.<name>` symbol per function, so every outer-native
 * instruction can be bucketed by which inner-interpreter phase the
 * guest program counter was in. The inner phases mirror the paper's
 * taxonomy one level down: Scriptel's tokenizer is inner Precompile,
 * fetch_op is inner FetchDecode's fetch half, exec_op's dispatch
 * ladder is its decode half, the op_* handlers are inner Execute.
 */

#ifndef INTERP_WORKLOADS_COMPOSE_HH
#define INTERP_WORKLOADS_COMPOSE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mips/image.hh"
#include "trace/events.hh"

namespace interp::workloads {

/** The paper's Table 2 categories, applied to the *inner* level. */
enum class InnerPhase : uint8_t
{
    Startup,    ///< before the first guest fetch (outer precompile)
    Precompile, ///< inner tokenizer/loader (load_script, tokenize, ...)
    Fetch,      ///< inner command fetch (fetch_op)
    Decode,     ///< inner dispatch ladder (exec_op)
    Execute,    ///< inner opcode handlers (op_*)
    Dispatch,   ///< the inner main loop's own residue (main)
    Runtime,    ///< shared runtime helpers (print_*, read_file, ...)
    kCount,
};

const char *innerPhaseName(InnerPhase p);

/** Outer-native instruction counts charged while the guest PC was in
 *  one inner phase, split by the *outer* interpreter's category. */
struct PhaseCounters
{
    uint64_t outerFetchDecode = 0;
    uint64_t outerExecute = 0;
    uint64_t outerPrecompile = 0;
    uint64_t guestFetches = 0; ///< guest instructions fetched in phase

    uint64_t total() const
    {
        return outerFetchDecode + outerExecute + outerPrecompile;
    }
};

/** Per-guest-function tallies (the drill-down table). */
struct FuncCounters
{
    std::string name; ///< without the fn. prefix
    uint32_t start = 0;
    uint32_t end = 0;
    InnerPhase phase = InnerPhase::Runtime;
    uint64_t outerInsts = 0;
    uint64_t guestFetches = 0;
};

/**
 * Trace sink attributing every outer-native instruction to the inner
 * interpreter phase owning the current guest PC. Pass as an extra
 * sink to harness::run() for a baseline-MIPSI composed workload; the
 * guest PC is tracked through mipsi's per-instruction fetch loads, so
 * the remedy/jit rungs (which elide those fetches by design) only
 * yield totals, not per-phase splits.
 */
class GuestFetchProfiler : public trace::Sink
{
  public:
    explicit GuestFetchProfiler(const mips::Image &image);

    void onBundle(const trace::Bundle &bundle) override;

    const std::array<PhaseCounters, (size_t)InnerPhase::kCount> &
    phases() const
    {
        return phases_;
    }
    const std::vector<FuncCounters> &functions() const { return funcs_; }

    /** Classify a guest function name into its inner phase. */
    static InnerPhase classify(const std::string &fn_name);

  private:
    size_t indexOf(uint32_t guest_pc) const;

    std::vector<FuncCounters> funcs_; ///< sorted by start address
    std::array<PhaseCounters, (size_t)InnerPhase::kCount> phases_{};
    size_t cur_ = SIZE_MAX; ///< function owning the last guest fetch
};

} // namespace interp::workloads

#endif // INTERP_WORKLOADS_COMPOSE_HH
