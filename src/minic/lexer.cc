#include "minic/lexer.hh"

#include <cctype>
#include <unordered_map>

#include "support/logging.hh"

namespace interp::minic {

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "end of input";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::CharLit: return "character literal";
      case Tok::StrLit: return "string literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwChar: return "'char'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Assign: return "'='";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      default: return "?";
    }
}

namespace {

const std::unordered_map<std::string, Tok> kKeywords = {
    {"int", Tok::KwInt},       {"char", Tok::KwChar},
    {"void", Tok::KwVoid},     {"if", Tok::KwIf},
    {"else", Tok::KwElse},     {"while", Tok::KwWhile},
    {"for", Tok::KwFor},       {"return", Tok::KwReturn},
    {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
};

/** Decode one (possibly escaped) character; advances @p i. */
char
unescape(std::string_view src, size_t &i, const std::string &file, int line)
{
    char c = src[i++];
    if (c != '\\')
        return c;
    if (i >= src.size())
        fatal("%s:%d: dangling escape", file.c_str(), line);
    char e = src[i++];
    switch (e) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        fatal("%s:%d: unknown escape '\\%c'", file.c_str(), line, e);
    }
}

} // namespace

std::vector<Token>
lex(std::string_view src, const std::string &file)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;

    auto push = [&](Tok kind) {
        Token t;
        t.kind = kind;
        t.line = line;
        out.push_back(std::move(t));
    };

    while (i < src.size()) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace((unsigned char)c)) {
            ++i;
            continue;
        }
        // comments
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < src.size() &&
                   !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= src.size())
                fatal("%s:%d: unterminated comment", file.c_str(), line);
            i += 2;
            continue;
        }
        // identifiers / keywords
        if (std::isalpha((unsigned char)c) || c == '_') {
            size_t start = i;
            while (i < src.size() &&
                   (std::isalnum((unsigned char)src[i]) || src[i] == '_'))
                ++i;
            std::string word(src.substr(start, i - start));
            auto kw = kKeywords.find(word);
            Token t;
            t.kind = kw != kKeywords.end() ? kw->second : Tok::Ident;
            t.text = std::move(word);
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }
        // numbers
        if (std::isdigit((unsigned char)c)) {
            size_t start = i;
            int base = 10;
            if (c == '0' && i + 1 < src.size() &&
                (src[i + 1] == 'x' || src[i + 1] == 'X')) {
                base = 16;
                i += 2;
                start = i;
                while (i < src.size() &&
                       std::isxdigit((unsigned char)src[i]))
                    ++i;
            } else {
                while (i < src.size() && std::isdigit((unsigned char)src[i]))
                    ++i;
            }
            Token t;
            t.kind = Tok::IntLit;
            t.intValue = (int32_t)strtoul(
                std::string(src.substr(start, i - start)).c_str(), nullptr,
                base);
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }
        // character literal
        if (c == '\'') {
            ++i;
            if (i >= src.size())
                fatal("%s:%d: unterminated char literal", file.c_str(),
                      line);
            char v = unescape(src, i, file, line);
            if (i >= src.size() || src[i] != '\'')
                fatal("%s:%d: unterminated char literal", file.c_str(),
                      line);
            ++i;
            Token t;
            t.kind = Tok::CharLit;
            t.intValue = (uint8_t)v;
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }
        // string literal
        if (c == '"') {
            ++i;
            std::string text;
            while (i < src.size() && src[i] != '"') {
                if (src[i] == '\n')
                    fatal("%s:%d: newline in string literal", file.c_str(),
                          line);
                text.push_back(unescape(src, i, file, line));
            }
            if (i >= src.size())
                fatal("%s:%d: unterminated string literal", file.c_str(),
                      line);
            ++i;
            Token t;
            t.kind = Tok::StrLit;
            t.text = std::move(text);
            t.line = line;
            out.push_back(std::move(t));
            continue;
        }
        // operators and punctuation
        auto two = [&](char second) {
            return i + 1 < src.size() && src[i + 1] == second;
        };
        switch (c) {
          case '(': push(Tok::LParen); ++i; break;
          case ')': push(Tok::RParen); ++i; break;
          case '{': push(Tok::LBrace); ++i; break;
          case '}': push(Tok::RBrace); ++i; break;
          case '[': push(Tok::LBracket); ++i; break;
          case ']': push(Tok::RBracket); ++i; break;
          case ',': push(Tok::Comma); ++i; break;
          case ';': push(Tok::Semi); ++i; break;
          case '~': push(Tok::Tilde); ++i; break;
          case '^': push(Tok::Caret); ++i; break;
          case '%': push(Tok::Percent); ++i; break;
          case '/': push(Tok::Slash); ++i; break;
          case '*': push(Tok::Star); ++i; break;
          case '+':
            if (two('=')) { push(Tok::PlusAssign); i += 2; }
            else { push(Tok::Plus); ++i; }
            break;
          case '-':
            if (two('=')) { push(Tok::MinusAssign); i += 2; }
            else { push(Tok::Minus); ++i; }
            break;
          case '&':
            if (two('&')) { push(Tok::AmpAmp); i += 2; }
            else { push(Tok::Amp); ++i; }
            break;
          case '|':
            if (two('|')) { push(Tok::PipePipe); i += 2; }
            else { push(Tok::Pipe); ++i; }
            break;
          case '=':
            if (two('=')) { push(Tok::Eq); i += 2; }
            else { push(Tok::Assign); ++i; }
            break;
          case '!':
            if (two('=')) { push(Tok::Ne); i += 2; }
            else { push(Tok::Bang); ++i; }
            break;
          case '<':
            if (two('=')) { push(Tok::Le); i += 2; }
            else if (two('<')) { push(Tok::Shl); i += 2; }
            else { push(Tok::Lt); ++i; }
            break;
          case '>':
            if (two('=')) { push(Tok::Ge); i += 2; }
            else if (two('>')) { push(Tok::Shr); i += 2; }
            else { push(Tok::Gt); ++i; }
            break;
          default:
            fatal("%s:%d: unexpected character '%c'", file.c_str(), line,
                  c);
        }
    }
    push(Tok::End);
    return out;
}

} // namespace interp::minic
