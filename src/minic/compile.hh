/**
 * @file
 * One-call MiniC driver helpers: source text in, linked artifact out.
 */

#ifndef INTERP_MINIC_COMPILE_HH
#define INTERP_MINIC_COMPILE_HH

#include <string>
#include <string_view>

#include "jvm/bytecode.hh"
#include "minic/ast.hh"
#include "mips/image.hh"

namespace interp::minic {

/** Parse + analyze; returns the annotated AST. */
Program frontend(std::string_view source,
                 const std::string &filename = "<input>");

/** Full pipeline to a MIPS image. */
mips::Image compileMips(std::string_view source,
                        const std::string &filename = "<input>");

/** Full pipeline to a bytecode module for the Java-like VM. */
jvm::Module compileBytecode(std::string_view source,
                            const std::string &filename = "<input>");

} // namespace interp::minic

#endif // INTERP_MINIC_COMPILE_HH
