#include "minic/parser.hh"

#include "minic/lexer.hh"
#include "support/logging.hh"

namespace interp::minic {

namespace {

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, std::string file)
        : toks(std::move(tokens)), filename(std::move(file))
    {}

    Program
    parseProgram()
    {
        Program prog;
        while (!at(Tok::End)) {
            // Both globals and functions start with: type ident
            Type type = parseType();
            Token name = expect(Tok::Ident);
            if (at(Tok::LParen)) {
                prog.funcs.push_back(parseFunc(type, name.text));
            } else {
                prog.globals.push_back(parseGlobal(type, name.text));
            }
        }
        return prog;
    }

  private:
    // --- token helpers ----------------------------------------------------
    const Token &peek() const { return toks[pos]; }
    bool at(Tok kind) const { return toks[pos].kind == kind; }

    Token
    advance()
    {
        return toks[pos++];
    }

    bool
    accept(Tok kind)
    {
        if (at(kind)) {
            ++pos;
            return true;
        }
        return false;
    }

    Token
    expect(Tok kind)
    {
        if (!at(kind))
            fatal("%s:%d: expected %s, found %s", filename.c_str(),
                  peek().line, tokName(kind), tokName(peek().kind));
        return advance();
    }

    [[noreturn]] void
    error(const char *msg)
    {
        fatal("%s:%d: %s", filename.c_str(), peek().line, msg);
    }

    // --- types ---------------------------------------------------------
    bool
    atType() const
    {
        return at(Tok::KwInt) || at(Tok::KwChar) || at(Tok::KwVoid);
    }

    Type
    parseType()
    {
        Type type;
        if (accept(Tok::KwInt))
            type.base = Type::Base::Int;
        else if (accept(Tok::KwChar))
            type.base = Type::Base::Char;
        else if (accept(Tok::KwVoid))
            type.base = Type::Base::Void;
        else
            error("expected a type");
        while (accept(Tok::Star))
            ++type.ptr;
        return type;
    }

    // --- declarations ------------------------------------------------------
    GlobalDecl
    parseGlobal(Type type, std::string name)
    {
        GlobalDecl g;
        g.type = type;
        g.name = std::move(name);
        g.line = peek().line;
        if (accept(Tok::LBracket)) {
            Token size = expect(Tok::IntLit);
            g.arraySize = size.intValue;
            expect(Tok::RBracket);
        }
        if (accept(Tok::Assign)) {
            if (at(Tok::StrLit)) {
                g.initString = advance().text;
                g.hasInitString = true;
            } else if (accept(Tok::LBrace)) {
                while (!accept(Tok::RBrace)) {
                    g.initValues.push_back(parseConstInt());
                    if (!at(Tok::RBrace))
                        expect(Tok::Comma);
                }
            } else {
                g.initValues.push_back(parseConstInt());
            }
        }
        expect(Tok::Semi);
        return g;
    }

    int32_t
    parseConstInt()
    {
        bool neg = accept(Tok::Minus);
        Token t = peek();
        if (!at(Tok::IntLit) && !at(Tok::CharLit))
            error("expected a constant");
        advance();
        return neg ? -t.intValue : t.intValue;
    }

    FuncDecl
    parseFunc(Type ret, std::string name)
    {
        FuncDecl fn;
        fn.retType = ret;
        fn.name = std::move(name);
        fn.line = peek().line;
        expect(Tok::LParen);
        if (!at(Tok::RParen) && !at(Tok::KwVoid)) {
            do {
                Param p;
                p.type = parseType();
                p.name = expect(Tok::Ident).text;
                fn.params.push_back(std::move(p));
            } while (accept(Tok::Comma));
        } else {
            accept(Tok::KwVoid); // allow f(void)
        }
        expect(Tok::RParen);
        fn.body = parseBlock();
        return fn;
    }

    // --- statements -----------------------------------------------------
    StmtPtr
    makeStmt(StmtKind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = peek().line;
        return s;
    }

    StmtPtr
    parseBlock()
    {
        auto block = makeStmt(StmtKind::Block);
        expect(Tok::LBrace);
        while (!accept(Tok::RBrace))
            block->stmts.push_back(parseStmt());
        return block;
    }

    StmtPtr
    parseVarDecl()
    {
        auto s = makeStmt(StmtKind::VarDecl);
        s->declType = parseType();
        s->name = expect(Tok::Ident).text;
        if (accept(Tok::LBracket)) {
            s->arraySize = expect(Tok::IntLit).intValue;
            expect(Tok::RBracket);
        }
        if (accept(Tok::Assign))
            s->expr = parseExpr();
        expect(Tok::Semi);
        return s;
    }

    StmtPtr
    parseStmt()
    {
        if (atType())
            return parseVarDecl();
        if (at(Tok::LBrace))
            return parseBlock();
        if (accept(Tok::Semi))
            return makeStmt(StmtKind::Empty);
        if (accept(Tok::KwIf)) {
            auto s = makeStmt(StmtKind::If);
            expect(Tok::LParen);
            s->cond = parseExpr();
            expect(Tok::RParen);
            s->thenStmt = parseStmt();
            if (accept(Tok::KwElse))
                s->elseStmt = parseStmt();
            return s;
        }
        if (accept(Tok::KwWhile)) {
            auto s = makeStmt(StmtKind::While);
            expect(Tok::LParen);
            s->cond = parseExpr();
            expect(Tok::RParen);
            s->body = parseStmt();
            return s;
        }
        if (accept(Tok::KwFor)) {
            auto s = makeStmt(StmtKind::For);
            expect(Tok::LParen);
            if (!at(Tok::Semi)) {
                if (atType()) {
                    // for (int i = 0; ...) — reuse var-decl parsing, but
                    // it consumes the ';' itself.
                    s->init = parseVarDecl();
                } else {
                    auto init = makeStmt(StmtKind::ExprStmt);
                    init->expr = parseExpr();
                    s->init = std::move(init);
                    expect(Tok::Semi);
                }
            } else {
                expect(Tok::Semi);
            }
            if (!at(Tok::Semi))
                s->cond = parseExpr();
            expect(Tok::Semi);
            if (!at(Tok::RParen))
                s->inc = parseExpr();
            expect(Tok::RParen);
            s->body = parseStmt();
            return s;
        }
        if (accept(Tok::KwReturn)) {
            auto s = makeStmt(StmtKind::Return);
            if (!at(Tok::Semi))
                s->expr = parseExpr();
            expect(Tok::Semi);
            return s;
        }
        if (accept(Tok::KwBreak)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Break);
        }
        if (accept(Tok::KwContinue)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Continue);
        }
        auto s = makeStmt(StmtKind::ExprStmt);
        s->expr = parseExpr();
        expect(Tok::Semi);
        return s;
    }

    // --- expressions ------------------------------------------------------
    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    ExprPtr
    parseExpr()
    {
        return parseAssign();
    }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseLogicalOr();
        if (at(Tok::Assign) || at(Tok::PlusAssign) || at(Tok::MinusAssign)) {
            auto e = makeExpr(ExprKind::Assign);
            e->op = advance().kind;
            e->lhs = std::move(lhs);
            e->rhs = parseAssign();
            return e;
        }
        return lhs;
    }

    ExprPtr
    binary(Tok op, ExprPtr lhs, ExprPtr rhs)
    {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Binary;
        e->line = lhs->line;
        e->op = op;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        return e;
    }

    ExprPtr
    parseLogicalOr()
    {
        ExprPtr e = parseLogicalAnd();
        while (at(Tok::PipePipe)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseLogicalAnd());
        }
        return e;
    }

    ExprPtr
    parseLogicalAnd()
    {
        ExprPtr e = parseBitOr();
        while (at(Tok::AmpAmp)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseBitOr());
        }
        return e;
    }

    ExprPtr
    parseBitOr()
    {
        ExprPtr e = parseBitXor();
        while (at(Tok::Pipe)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseBitXor());
        }
        return e;
    }

    ExprPtr
    parseBitXor()
    {
        ExprPtr e = parseBitAnd();
        while (at(Tok::Caret)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseBitAnd());
        }
        return e;
    }

    ExprPtr
    parseBitAnd()
    {
        ExprPtr e = parseEquality();
        while (at(Tok::Amp)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseEquality());
        }
        return e;
    }

    ExprPtr
    parseEquality()
    {
        ExprPtr e = parseRelational();
        while (at(Tok::Eq) || at(Tok::Ne)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseRelational());
        }
        return e;
    }

    ExprPtr
    parseRelational()
    {
        ExprPtr e = parseShift();
        while (at(Tok::Lt) || at(Tok::Le) || at(Tok::Gt) || at(Tok::Ge)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseShift());
        }
        return e;
    }

    ExprPtr
    parseShift()
    {
        ExprPtr e = parseAdditive();
        while (at(Tok::Shl) || at(Tok::Shr)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseAdditive());
        }
        return e;
    }

    ExprPtr
    parseAdditive()
    {
        ExprPtr e = parseMultiplicative();
        while (at(Tok::Plus) || at(Tok::Minus)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseMultiplicative());
        }
        return e;
    }

    ExprPtr
    parseMultiplicative()
    {
        ExprPtr e = parseUnary();
        while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
            Tok op = advance().kind;
            e = binary(op, std::move(e), parseUnary());
        }
        return e;
    }

    ExprPtr
    parseUnary()
    {
        if (at(Tok::Minus) || at(Tok::Bang) || at(Tok::Tilde)) {
            auto e = makeExpr(ExprKind::Unary);
            e->op = advance().kind;
            e->rhs = parseUnary();
            return e;
        }
        if (accept(Tok::Star)) {
            auto e = makeExpr(ExprKind::Deref);
            e->rhs = parseUnary();
            return e;
        }
        if (accept(Tok::Amp)) {
            auto e = makeExpr(ExprKind::AddrOf);
            e->rhs = parseUnary();
            return e;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (true) {
            if (accept(Tok::LBracket)) {
                auto idx = std::make_unique<Expr>();
                idx->kind = ExprKind::Index;
                idx->line = e->line;
                idx->lhs = std::move(e);
                idx->rhs = parseExpr();
                expect(Tok::RBracket);
                e = std::move(idx);
            } else if (at(Tok::LParen) && e->kind == ExprKind::Var) {
                advance();
                auto call = std::make_unique<Expr>();
                call->kind = ExprKind::Call;
                call->line = e->line;
                call->name = e->name;
                if (!at(Tok::RParen)) {
                    do {
                        call->args.push_back(parseExpr());
                    } while (accept(Tok::Comma));
                }
                expect(Tok::RParen);
                e = std::move(call);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        if (at(Tok::IntLit) || at(Tok::CharLit)) {
            auto e = makeExpr(ExprKind::IntLit);
            e->intValue = advance().intValue;
            return e;
        }
        if (at(Tok::StrLit)) {
            auto e = makeExpr(ExprKind::StrLit);
            e->name = advance().text;
            return e;
        }
        if (at(Tok::Ident)) {
            auto e = makeExpr(ExprKind::Var);
            e->name = advance().text;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            expect(Tok::RParen);
            return e;
        }
        error("expected an expression");
    }

    std::vector<Token> toks;
    std::string filename;
    size_t pos = 0;
};

} // namespace

Program
parse(std::string_view source, const std::string &filename)
{
    Parser parser(lex(source, filename), filename);
    return parser.parseProgram();
}

} // namespace interp::minic
