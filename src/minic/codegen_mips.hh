/**
 * @file
 * MiniC -> MIPS R3000 code generator.
 *
 * A classic non-optimizing, stack-discipline tree-walk generator (in
 * the spirit of a 1990s `cc -O0`): expression operands are pushed to
 * the stack around subexpression evaluation, locals live in the frame
 * and every branch/jump delay slot is filled with a no-op by the
 * assembler. The resulting load/store and no-op densities are what
 * give the MIPSI rows of Table 2 and Figure 2 their shape.
 */

#ifndef INTERP_MINIC_CODEGEN_MIPS_HH
#define INTERP_MINIC_CODEGEN_MIPS_HH

#include "minic/ast.hh"
#include "mips/image.hh"

namespace interp::minic {

/** Compile an analyzed program (see analyze()) to a linked image. */
mips::Image compileToMips(const Program &prog);

} // namespace interp::minic

#endif // INTERP_MINIC_CODEGEN_MIPS_HH
