/**
 * @file
 * MiniC -> JVM-like bytecode code generator.
 *
 * Produces the offline-compiled module the bytecode VM interprets
 * (the "javac" of this repository). The mapping is straightforwardly
 * Java-flavored: locals to slots, globals to static fields, arrays to
 * heap objects, builtins to native runtime calls. C pointers exist
 * only as array references on this target — pointer arithmetic and
 * address-of are rejected (write indexing-style MiniC for programs
 * that must run on both backends).
 */

#ifndef INTERP_MINIC_CODEGEN_BYTECODE_HH
#define INTERP_MINIC_CODEGEN_BYTECODE_HH

#include "jvm/bytecode.hh"
#include "minic/ast.hh"

namespace interp::minic {

/** Compile an analyzed program (see analyze()) to a bytecode module. */
jvm::Module compileToBytecode(const Program &prog);

} // namespace interp::minic

#endif // INTERP_MINIC_CODEGEN_BYTECODE_HH
