/**
 * @file
 * MiniC builtin functions.
 *
 * The I/O and memory builtins map to guest system calls on the MIPS
 * backend and to native runtime-library calls on the bytecode backend.
 * The gfx_* builtins are the "native graphics runtime library" of the
 * Java-like VM (§3.2): bytecode programs call them to draw into the
 * software framebuffer, and the work they trigger is attributed to the
 * `native` category.
 */

#ifndef INTERP_MINIC_BUILTINS_HH
#define INTERP_MINIC_BUILTINS_HH

namespace interp::minic {

/** Builtin identifiers, in a fixed ABI order. */
enum class Builtin : int
{
    PrintInt,   ///< print_int(v)
    PrintChar,  ///< print_char(c)
    PrintStr,   ///< print_str(s)
    ReadInt,    ///< read_int() -> int
    Open,       ///< open(path, mode) -> fd   (mode 0 = read, 1 = write)
    Read,       ///< read(fd, buf, n) -> n
    Write,      ///< write(fd, buf, n) -> n
    Close,      ///< close(fd) -> 0
    Sbrk,       ///< sbrk(n) -> old break (pointer as int)
    Exit,       ///< exit(code)
    GfxInit,    ///< gfx_init(w, h)
    GfxClear,   ///< gfx_clear(color)
    GfxLine,    ///< gfx_line(x0, y0, x1, y1, color)
    GfxFillRect,///< gfx_fillrect(x, y, w, h, color)
    GfxRect,    ///< gfx_rect(x, y, w, h, color)
    GfxCircle,  ///< gfx_circle(cx, cy, r, color)
    GfxFillCircle, ///< gfx_fillcircle(cx, cy, r, color)
    GfxText,    ///< gfx_text(x, y, s, color)
    GfxPixel,   ///< gfx_pixel(x, y, color)
    GfxFlush,   ///< gfx_flush()
    Count,
};

/** Static description of a builtin. */
struct BuiltinInfo
{
    const char *name;
    int numArgs;
    bool returnsValue;
};

/** Table indexed by Builtin. */
const BuiltinInfo &builtinInfo(Builtin b);

/** Find a builtin by name; returns -1 if not a builtin. */
int findBuiltin(const char *name);

} // namespace interp::minic

#endif // INTERP_MINIC_BUILTINS_HH
