#include "minic/compile.hh"

#include "minic/codegen_bytecode.hh"
#include "minic/codegen_mips.hh"
#include "minic/parser.hh"
#include "minic/sema.hh"

namespace interp::minic {

Program
frontend(std::string_view source, const std::string &filename)
{
    Program prog = parse(source, filename);
    analyze(prog, filename);
    return prog;
}

mips::Image
compileMips(std::string_view source, const std::string &filename)
{
    Program prog = frontend(source, filename);
    return compileToMips(prog);
}

jvm::Module
compileBytecode(std::string_view source, const std::string &filename)
{
    Program prog = frontend(source, filename);
    return compileToBytecode(prog);
}

} // namespace interp::minic
