#include "minic/sema.hh"

#include <unordered_map>
#include <vector>

#include "minic/builtins.hh"
#include "support/logging.hh"

namespace interp::minic {

namespace {

/** Per-program analysis state. */
class Analyzer
{
  public:
    Analyzer(Program &prog, std::string file)
        : prog_(prog), filename(std::move(file))
    {
        for (size_t i = 0; i < prog_.globals.size(); ++i) {
            GlobalDecl &g = prog_.globals[i];
            if (globalIds.count(g.name))
                err(g.line, "duplicate global '%s'", g.name.c_str());
            if (g.type.isVoid())
                err(g.line, "global '%s' cannot be void", g.name.c_str());
            uint32_t elem = (uint32_t)g.type.sizeOf();
            g.byteSize = g.arraySize >= 0 ? elem * (uint32_t)g.arraySize
                                          : elem;
            if (g.hasInitString) {
                if (g.arraySize < 0 ||
                    !(g.type == Type::charType()))
                    err(g.line, "string initializer needs char array");
                if (g.initString.size() + 1 > (size_t)g.arraySize)
                    err(g.line, "string initializer too long");
            }
            if ((int)g.initValues.size() >
                (g.arraySize >= 0 ? g.arraySize : 1))
                err(g.line, "too many initializers for '%s'",
                    g.name.c_str());
            globalIds[g.name] = (int)i;
        }
        for (size_t i = 0; i < prog_.funcs.size(); ++i) {
            FuncDecl &fn = prog_.funcs[i];
            if (funcIds.count(fn.name) ||
                findBuiltin(fn.name.c_str()) >= 0)
                err(fn.line, "duplicate function '%s'", fn.name.c_str());
            if (fn.params.size() > 4)
                err(fn.line, "'%s': at most 4 parameters supported",
                    fn.name.c_str());
            funcIds[fn.name] = (int)i;
        }
    }

    void
    run()
    {
        for (FuncDecl &fn : prog_.funcs)
            analyzeFunc(fn);
        if (!funcIds.count("main"))
            fatal("%s: no 'main' function", filename.c_str());
    }

  private:
    template <typename... Args>
    [[noreturn]] void
    err(int line, const char *fmt, Args... args)
    {
        std::string full = "%s:%d: " + std::string(fmt);
        fatal(full.c_str(), filename.c_str(), line, args...);
    }

    // --- scope management ----------------------------------------------
    void pushScope() { scopes.emplace_back(); }
    void popScope() { scopes.pop_back(); }

    int
    declareLocal(int line, const std::string &name, Type type,
                 int array_size)
    {
        if (scopes.back().count(name))
            err(line, "duplicate variable '%s'", name.c_str());
        FuncDecl::Local local;
        local.name = name;
        local.type = type;
        local.arraySize = array_size;
        uint32_t bytes = array_size >= 0
                             ? ((uint32_t)type.sizeOf() * array_size + 3) &
                                   ~3u
                             : 4;
        local.offset = fn_->frameBytes;
        fn_->frameBytes += bytes;
        fn_->locals.push_back(local);
        int slot = (int)fn_->locals.size() - 1;
        scopes.back()[name] = slot;
        return slot;
    }

    /** Resolve @p name to a local slot, or -1. */
    int
    lookupLocal(const std::string &name) const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        return -1;
    }

    // --- functions --------------------------------------------------------
    void
    analyzeFunc(FuncDecl &fn)
    {
        fn_ = &fn;
        fn.locals.clear();
        fn.frameBytes = 0;
        scopes.clear();
        pushScope();
        for (const Param &p : fn.params) {
            if (p.type.isVoid())
                err(fn.line, "parameter '%s' cannot be void",
                    p.name.c_str());
            declareLocal(fn.line, p.name, p.type, -1);
        }
        analyzeStmt(*fn.body);
        popScope();
    }

    // --- statements -----------------------------------------------------
    void
    analyzeStmt(Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::Block:
            pushScope();
            for (auto &child : s.stmts)
                analyzeStmt(*child);
            popScope();
            break;
          case StmtKind::VarDecl: {
            if (s.declType.isVoid())
                err(s.line, "variable '%s' cannot be void",
                    s.name.c_str());
            if (s.expr) {
                if (s.arraySize >= 0)
                    err(s.line, "array initializers not supported on "
                                "locals");
                analyzeExpr(*s.expr);
                requireValue(*s.expr);
            }
            s.localSlot =
                declareLocal(s.line, s.name, s.declType, s.arraySize);
            break;
          }
          case StmtKind::ExprStmt:
            analyzeExpr(*s.expr);
            break;
          case StmtKind::If:
            analyzeExpr(*s.cond);
            requireValue(*s.cond);
            analyzeStmt(*s.thenStmt);
            if (s.elseStmt)
                analyzeStmt(*s.elseStmt);
            break;
          case StmtKind::While:
            analyzeExpr(*s.cond);
            requireValue(*s.cond);
            ++loopDepth;
            analyzeStmt(*s.body);
            --loopDepth;
            break;
          case StmtKind::For:
            pushScope();
            if (s.init)
                analyzeStmt(*s.init);
            if (s.cond) {
                analyzeExpr(*s.cond);
                requireValue(*s.cond);
            }
            if (s.inc)
                analyzeExpr(*s.inc);
            ++loopDepth;
            analyzeStmt(*s.body);
            --loopDepth;
            popScope();
            break;
          case StmtKind::Return:
            if (s.expr) {
                analyzeExpr(*s.expr);
                requireValue(*s.expr);
                if (fn_->retType.isVoid())
                    err(s.line, "returning a value from void function");
            } else if (!fn_->retType.isVoid()) {
                err(s.line, "missing return value");
            }
            break;
          case StmtKind::Break:
          case StmtKind::Continue:
            if (loopDepth == 0)
                err(s.line, "break/continue outside a loop");
            break;
          case StmtKind::Empty:
            break;
        }
    }

    // --- expressions ------------------------------------------------------
    void
    requireValue(const Expr &e)
    {
        if (e.type.isVoid())
            err(e.line, "void value used in expression");
    }

    bool
    isLvalue(const Expr &e) const
    {
        if (e.kind == ExprKind::Var && !e.isArrayVar)
            return true;
        return e.kind == ExprKind::Index || e.kind == ExprKind::Deref;
    }

    void
    analyzeExpr(Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            e.type = Type::intType();
            break;
          case ExprKind::StrLit:
            e.strId = (int)prog_.strings.size();
            prog_.strings.push_back(e.name);
            e.type = Type::charType().pointerTo();
            break;
          case ExprKind::Var: {
            int slot = lookupLocal(e.name);
            if (slot >= 0) {
                const auto &local = fn_->locals[slot];
                e.localSlot = slot;
                e.isArrayVar = local.arraySize >= 0;
                e.type = e.isArrayVar ? local.type.pointerTo()
                                      : local.type;
            } else {
                auto it = globalIds.find(e.name);
                if (it == globalIds.end())
                    err(e.line, "undefined variable '%s'",
                        e.name.c_str());
                const GlobalDecl &g = prog_.globals[it->second];
                e.globalId = it->second;
                e.isArrayVar = g.arraySize >= 0;
                e.type = e.isArrayVar ? g.type.pointerTo() : g.type;
            }
            break;
          }
          case ExprKind::Index: {
            analyzeExpr(*e.lhs);
            analyzeExpr(*e.rhs);
            requireValue(*e.rhs);
            if (!e.lhs->type.isPointer())
                err(e.line, "indexing a non-pointer");
            e.type = e.lhs->type.pointee();
            break;
          }
          case ExprKind::Deref:
            analyzeExpr(*e.rhs);
            if (!e.rhs->type.isPointer())
                err(e.line, "dereferencing a non-pointer");
            e.type = e.rhs->type.pointee();
            break;
          case ExprKind::AddrOf:
            analyzeExpr(*e.rhs);
            if (!isLvalue(*e.rhs))
                err(e.line, "'&' needs an lvalue");
            e.type = e.rhs->type.pointerTo();
            break;
          case ExprKind::Unary:
            analyzeExpr(*e.rhs);
            requireValue(*e.rhs);
            e.type = Type::intType();
            break;
          case ExprKind::Assign: {
            analyzeExpr(*e.lhs);
            analyzeExpr(*e.rhs);
            requireValue(*e.rhs);
            if (!isLvalue(*e.lhs))
                err(e.line, "assignment needs an lvalue");
            e.type = e.lhs->type;
            break;
          }
          case ExprKind::Binary: {
            analyzeExpr(*e.lhs);
            analyzeExpr(*e.rhs);
            requireValue(*e.lhs);
            requireValue(*e.rhs);
            bool lp = e.lhs->type.isPointer();
            bool rp = e.rhs->type.isPointer();
            if (e.op == Tok::Plus && (lp || rp)) {
                if (lp && rp)
                    err(e.line, "adding two pointers");
                e.type = lp ? e.lhs->type : e.rhs->type;
            } else if (e.op == Tok::Minus && lp) {
                e.type = rp ? Type::intType() : e.lhs->type;
            } else {
                e.type = Type::intType();
            }
            break;
          }
          case ExprKind::Call: {
            for (auto &arg : e.args) {
                analyzeExpr(*arg);
                requireValue(*arg);
            }
            int b = findBuiltin(e.name.c_str());
            if (b >= 0) {
                const BuiltinInfo &info = builtinInfo((Builtin)b);
                if ((int)e.args.size() != info.numArgs)
                    err(e.line, "'%s' expects %d arguments, got %d",
                        e.name.c_str(), info.numArgs,
                        (int)e.args.size());
                e.builtinId = b;
                e.type = info.returnsValue ? Type::intType()
                                           : Type::voidType();
            } else {
                auto it = funcIds.find(e.name);
                if (it == funcIds.end())
                    err(e.line, "undefined function '%s'",
                        e.name.c_str());
                const FuncDecl &callee = prog_.funcs[it->second];
                if (e.args.size() != callee.params.size())
                    err(e.line, "'%s' expects %d arguments, got %d",
                        e.name.c_str(), (int)callee.params.size(),
                        (int)e.args.size());
                e.funcId = it->second;
                e.type = callee.retType;
            }
            break;
          }
        }
    }

    Program &prog_;
    std::string filename;
    std::unordered_map<std::string, int> globalIds;
    std::unordered_map<std::string, int> funcIds;
    std::vector<std::unordered_map<std::string, int>> scopes;
    FuncDecl *fn_ = nullptr;
    int loopDepth = 0;
};

} // namespace

void
analyze(Program &prog, const std::string &filename)
{
    prog.strings.clear();
    Analyzer analyzer(prog, filename);
    analyzer.run();
}

} // namespace interp::minic
