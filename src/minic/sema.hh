/**
 * @file
 * MiniC semantic analysis: name resolution, type checking, frame
 * layout. Annotates the AST in place; both code generators consume
 * the annotated program.
 */

#ifndef INTERP_MINIC_SEMA_HH
#define INTERP_MINIC_SEMA_HH

#include <string>

#include "minic/ast.hh"

namespace interp::minic {

/**
 * Analyze @p prog in place. Errors are fatal() with @p filename in
 * the message. Requires a function `int main()` (or `void main()`).
 */
void analyze(Program &prog, const std::string &filename = "<input>");

} // namespace interp::minic

#endif // INTERP_MINIC_SEMA_HH
