/**
 * @file
 * MiniC recursive-descent parser.
 */

#ifndef INTERP_MINIC_PARSER_HH
#define INTERP_MINIC_PARSER_HH

#include <string>
#include <string_view>

#include "minic/ast.hh"

namespace interp::minic {

/** Parse a full translation unit; errors are fatal(). */
Program parse(std::string_view source,
              const std::string &filename = "<input>");

} // namespace interp::minic

#endif // INTERP_MINIC_PARSER_HH
