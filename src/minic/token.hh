/**
 * @file
 * MiniC token definitions.
 *
 * MiniC is the small C-like language this repository uses to produce
 * *compiled* guest workloads: the MIPS backend yields binaries for the
 * MIPSI emulator and the direct-mode (compiled-C) baseline; the
 * bytecode backend yields modules for the Java-like VM.
 */

#ifndef INTERP_MINIC_TOKEN_HH
#define INTERP_MINIC_TOKEN_HH

#include <cstdint>
#include <string>

namespace interp::minic {

/** Token kinds. */
enum class Tok : uint8_t
{
    End,
    Ident, IntLit, CharLit, StrLit,
    // keywords
    KwInt, KwChar, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
    KwBreak, KwContinue,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi,
    // operators
    Assign, PlusAssign, MinusAssign,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    AmpAmp, PipePipe,
    Eq, Ne, Lt, Le, Gt, Ge,
};

/** One lexed token with source location. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;    ///< identifier / string payload
    int32_t intValue = 0;
    int line = 0;
};

/** Printable name of a token kind, for diagnostics. */
const char *tokName(Tok kind);

} // namespace interp::minic

#endif // INTERP_MINIC_TOKEN_HH
