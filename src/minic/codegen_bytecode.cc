#include "minic/codegen_bytecode.hh"

#include <vector>

#include "minic/builtins.hh"
#include "support/logging.hh"

namespace interp::minic {

namespace {

using jvm::Bc;
using jvm::Insn;

/** Emits one function's bytecode. */
class BcGen
{
  public:
    BcGen(const Program &prog, jvm::Module &module)
        : prog_(prog), module_(module)
    {}

    void
    run()
    {
        // Fields mirror the globals, index-for-index.
        for (const GlobalDecl &g : prog_.globals) {
            jvm::FieldDesc field;
            field.name = g.name;
            if (g.arraySize >= 0) {
                field.isArray = true;
                field.elemBytes = (uint8_t)g.type.sizeOf();
                if (field.elemBytes != 1)
                    field.elemBytes = 4;
                field.arrayLen = g.arraySize;
                if (g.hasInitString) {
                    for (char c : g.initString)
                        field.initData.push_back((uint8_t)c);
                    field.initData.push_back(0);
                } else {
                    field.initData = g.initValues;
                }
            } else {
                field.initValue =
                    g.initValues.empty() ? 0 : g.initValues[0];
            }
            module_.fields.push_back(std::move(field));
        }

        module_.strings = prog_.strings;

        for (size_t i = 0; i < prog_.funcs.size(); ++i) {
            module_.funcs.push_back(genFunc(prog_.funcs[i]));
            if (prog_.funcs[i].name == "main")
                module_.mainFunc = (int)i;
        }
    }

  private:
    [[noreturn]] void
    err(int line, const char *msg)
    {
        fatal("bytecode backend: line %d: %s", line, msg);
    }

    // --- emission helpers ----------------------------------------------
    void
    emit(Bc op, int32_t a = 0)
    {
        Insn insn;
        insn.op = op;
        insn.a = a;
        code.push_back(insn);
    }

    size_t
    emitBranchPlaceholder(Bc op)
    {
        emit(op, -1);
        return code.size() - 1;
    }

    void
    patch(size_t at)
    {
        code[at].a = (int32_t)code.size();
    }

    void
    patchTo(size_t at, size_t target)
    {
        code[at].a = (int32_t)target;
    }

    // --- functions --------------------------------------------------------
    jvm::FuncDesc
    genFunc(const FuncDecl &fn)
    {
        fn_ = &fn;
        code.clear();
        breakFixups.clear();
        continueTargets.clear();

        // Slot assignment: sema locals in order, then scratch slots.
        // Array locals get a ref slot plus prologue allocation.
        slotOf.assign(fn.locals.size(), -1);
        int next = 0;
        for (size_t i = 0; i < fn.locals.size(); ++i)
            slotOf[i] = next++;
        scratch0 = next++;
        scratch1 = next++;
        scratch2 = next++;

        for (size_t i = fn.params.size(); i < fn.locals.size(); ++i) {
            const auto &local = fn.locals[i];
            if (local.arraySize >= 0) {
                emit(Bc::IConst, local.arraySize);
                emit(local.type.sizeOf() == 1 ? Bc::NewArrayB
                                              : Bc::NewArrayI);
                emit(Bc::IStore, slotOf[i]);
            }
        }

        genStmt(*fn.body);
        // Implicit return (0 for value-returning functions).
        if (fn.retType.isVoid()) {
            emit(Bc::Return);
        } else {
            emit(Bc::IConst, 0);
            emit(Bc::IReturn);
        }

        jvm::FuncDesc out;
        out.name = fn.name;
        out.numParams = (int)fn.params.size();
        out.numLocals = next;
        out.returnsValue = !fn.retType.isVoid();
        out.code = code;
        return out;
    }

    // --- statements -----------------------------------------------------
    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::Block:
            for (const auto &child : s.stmts)
                genStmt(*child);
            break;
          case StmtKind::VarDecl:
            if (s.expr) {
                genExpr(*s.expr);
                emit(Bc::IStore, slotOf[s.localSlot]);
            }
            break;
          case StmtKind::ExprStmt:
            genExprForEffect(*s.expr);
            break;
          case StmtKind::If: {
            genExpr(*s.cond);
            size_t to_else = emitBranchPlaceholder(Bc::IfZero);
            genStmt(*s.thenStmt);
            if (s.elseStmt) {
                size_t to_end = emitBranchPlaceholder(Bc::Goto);
                patch(to_else);
                genStmt(*s.elseStmt);
                patch(to_end);
            } else {
                patch(to_else);
            }
            break;
          }
          case StmtKind::While: {
            size_t head = code.size();
            genExpr(*s.cond);
            size_t to_exit = emitBranchPlaceholder(Bc::IfZero);
            enterLoop(head);
            genStmt(*s.body);
            exitLoop();
            emit(Bc::Goto, (int32_t)head);
            patch(to_exit);
            fixBreaks();
            break;
          }
          case StmtKind::For: {
            if (s.init)
                genStmt(*s.init);
            size_t head = code.size();
            size_t to_exit = SIZE_MAX;
            if (s.cond) {
                genExpr(*s.cond);
                to_exit = emitBranchPlaceholder(Bc::IfZero);
            }
            // continue jumps to the increment, which we emit after the
            // body; collect them as fixups too.
            enterLoop(SIZE_MAX);
            genStmt(*s.body);
            size_t inc_at = code.size();
            if (s.inc)
                genExprForEffect(*s.inc);
            emit(Bc::Goto, (int32_t)head);
            exitLoopFor(inc_at);
            if (to_exit != SIZE_MAX)
                patch(to_exit);
            fixBreaks();
            break;
          }
          case StmtKind::Return:
            if (s.expr) {
                genExpr(*s.expr);
                emit(Bc::IReturn);
            } else {
                emit(Bc::Return);
            }
            break;
          case StmtKind::Break:
            breakFixups.back().push_back(
                emitBranchPlaceholder(Bc::Goto));
            break;
          case StmtKind::Continue: {
            size_t target = continueTargets.back();
            if (target == SIZE_MAX) {
                // for-loop: target known only after the body.
                continueFixups.back().push_back(
                    emitBranchPlaceholder(Bc::Goto));
            } else {
                emit(Bc::Goto, (int32_t)target);
            }
            break;
          }
          case StmtKind::Empty:
            break;
        }
    }

    void
    enterLoop(size_t continue_target)
    {
        breakFixups.emplace_back();
        continueTargets.push_back(continue_target);
        continueFixups.emplace_back();
    }

    void
    exitLoop()
    {
        continueTargets.pop_back();
        INTERP_ASSERT(continueFixups.back().empty());
        continueFixups.pop_back();
    }

    void
    exitLoopFor(size_t inc_at)
    {
        continueTargets.pop_back();
        for (size_t at : continueFixups.back())
            patchTo(at, inc_at);
        continueFixups.pop_back();
    }

    void
    fixBreaks()
    {
        for (size_t at : breakFixups.back())
            patch(at);
        breakFixups.pop_back();
    }

    // --- expressions ------------------------------------------------------
    static Bc
    arrayLoadOp(const Type &elem)
    {
        return elem.sizeOf() == 1 ? Bc::BALoad : Bc::IALoad;
    }

    static Bc
    arrayStoreOp(const Type &elem)
    {
        return elem.sizeOf() == 1 ? Bc::BAStore : Bc::IAStore;
    }

    /** Evaluate for side effects only (assignments skip the result). */
    void
    genExprForEffect(const Expr &e)
    {
        if (e.kind == ExprKind::Assign) {
            genAssign(e, false);
            return;
        }
        genExpr(e);
        if (!e.type.isVoid())
            emit(Bc::Pop);
    }

    /** Evaluate @p e, leaving its value on the operand stack. */
    void
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            emit(Bc::IConst, e.intValue);
            break;
          case ExprKind::StrLit:
            emit(Bc::LdcStr, e.strId);
            break;
          case ExprKind::Var:
            // Scalars and array refs load identically: a slot or a
            // static field holds either an int or a reference.
            if (e.localSlot >= 0)
                emit(Bc::ILoad, slotOf[e.localSlot]);
            else
                emit(Bc::GetStatic, e.globalId);
            break;
          case ExprKind::Index:
            genExpr(*e.lhs);
            genExpr(*e.rhs);
            emit(arrayLoadOp(e.type));
            break;
          case ExprKind::Deref:
            // *p is p[0] on this target.
            genExpr(*e.rhs);
            emit(Bc::IConst, 0);
            emit(arrayLoadOp(e.type));
            break;
          case ExprKind::AddrOf:
            err(e.line, "'&' is not supported on the bytecode target");
          case ExprKind::Unary:
            genExpr(*e.rhs);
            switch (e.op) {
              case Tok::Minus: emit(Bc::Neg); break;
              case Tok::Tilde: emit(Bc::Not); break;
              case Tok::Bang:
                emit(Bc::IConst, 0);
                emit(Bc::CmpEq);
                break;
              default: panic("bad unary op");
            }
            break;
          case ExprKind::Assign:
            genAssign(e, true);
            break;
          case ExprKind::Binary:
            genBinary(e);
            break;
          case ExprKind::Call:
            genCall(e, true);
            break;
        }
    }

    void
    genAssign(const Expr &e, bool want_value)
    {
        const Expr &lhs = *e.lhs;
        if (e.op != Tok::Assign) {
            genCompoundAssign(e, want_value);
            return;
        }
        if (lhs.kind == ExprKind::Var) {
            genExpr(*e.rhs);
            if (want_value)
                emit(Bc::Dup);
            if (lhs.localSlot >= 0)
                emit(Bc::IStore, slotOf[lhs.localSlot]);
            else
                emit(Bc::PutStatic, lhs.globalId);
            return;
        }
        // Array element (or deref) target.
        if (lhs.kind == ExprKind::Index) {
            genExpr(*lhs.lhs);
            genExpr(*lhs.rhs);
        } else if (lhs.kind == ExprKind::Deref) {
            genExpr(*lhs.rhs);
            emit(Bc::IConst, 0);
        } else {
            err(e.line, "unsupported assignment target");
        }
        genExpr(*e.rhs);
        if (want_value) {
            emit(Bc::IStore, scratch2);
            emit(Bc::ILoad, scratch2);
        }
        emit(arrayStoreOp(lhs.type));
        if (want_value)
            emit(Bc::ILoad, scratch2);
    }

    void
    genCompoundAssign(const Expr &e, bool want_value)
    {
        const Expr &lhs = *e.lhs;
        Bc op = e.op == Tok::PlusAssign ? Bc::Add : Bc::Sub;
        if (lhs.type.isPointer())
            err(e.line, "pointer arithmetic is not supported on the "
                        "bytecode target");
        if (lhs.kind == ExprKind::Var) {
            genExpr(lhs); // current value
            genExpr(*e.rhs);
            emit(op);
            if (want_value)
                emit(Bc::Dup);
            if (lhs.localSlot >= 0)
                emit(Bc::IStore, slotOf[lhs.localSlot]);
            else
                emit(Bc::PutStatic, lhs.globalId);
            return;
        }
        if (lhs.kind != ExprKind::Index && lhs.kind != ExprKind::Deref)
            err(e.line, "unsupported assignment target");

        // Evaluate ref and index once, via scratch slots.
        if (lhs.kind == ExprKind::Index) {
            genExpr(*lhs.lhs);
            emit(Bc::IStore, scratch0);
            genExpr(*lhs.rhs);
            emit(Bc::IStore, scratch1);
        } else {
            genExpr(*lhs.rhs);
            emit(Bc::IStore, scratch0);
            emit(Bc::IConst, 0);
            emit(Bc::IStore, scratch1);
        }
        emit(Bc::ILoad, scratch0);
        emit(Bc::ILoad, scratch1);
        emit(Bc::ILoad, scratch0);
        emit(Bc::ILoad, scratch1);
        emit(arrayLoadOp(lhs.type));
        genExpr(*e.rhs);
        emit(op);
        if (want_value) {
            emit(Bc::IStore, scratch2);
            emit(Bc::ILoad, scratch2);
        }
        emit(arrayStoreOp(lhs.type));
        if (want_value)
            emit(Bc::ILoad, scratch2);
    }

    void
    genBinary(const Expr &e)
    {
        if (e.op == Tok::AmpAmp || e.op == Tok::PipePipe) {
            bool is_and = e.op == Tok::AmpAmp;
            genExpr(*e.lhs);
            size_t shortcut = emitBranchPlaceholder(
                is_and ? Bc::IfZero : Bc::IfNonZero);
            genExpr(*e.rhs);
            size_t shortcut2 = emitBranchPlaceholder(
                is_and ? Bc::IfZero : Bc::IfNonZero);
            emit(Bc::IConst, is_and ? 1 : 0);
            size_t to_end = emitBranchPlaceholder(Bc::Goto);
            patch(shortcut);
            patch(shortcut2);
            emit(Bc::IConst, is_and ? 0 : 1);
            patch(to_end);
            return;
        }

        if ((e.lhs->type.isPointer() || e.rhs->type.isPointer()) &&
            (e.op == Tok::Plus || e.op == Tok::Minus))
            err(e.line, "pointer arithmetic is not supported on the "
                        "bytecode target; use indexing");

        genExpr(*e.lhs);
        genExpr(*e.rhs);
        switch (e.op) {
          case Tok::Plus: emit(Bc::Add); break;
          case Tok::Minus: emit(Bc::Sub); break;
          case Tok::Star: emit(Bc::Mul); break;
          case Tok::Slash: emit(Bc::Div); break;
          case Tok::Percent: emit(Bc::Rem); break;
          case Tok::Amp: emit(Bc::And); break;
          case Tok::Pipe: emit(Bc::Or); break;
          case Tok::Caret: emit(Bc::Xor); break;
          case Tok::Shl: emit(Bc::Shl); break;
          case Tok::Shr: emit(Bc::Shr); break;
          case Tok::Eq: emit(Bc::CmpEq); break;
          case Tok::Ne: emit(Bc::CmpNe); break;
          case Tok::Lt: emit(Bc::CmpLt); break;
          case Tok::Le: emit(Bc::CmpLe); break;
          case Tok::Gt: emit(Bc::CmpGt); break;
          case Tok::Ge: emit(Bc::CmpGe); break;
          default: panic("bad binary op");
        }
    }

    void
    genCall(const Expr &e, bool want_value)
    {
        for (const auto &arg : e.args)
            genExpr(*arg);
        if (e.builtinId >= 0) {
            Builtin builtin = (Builtin)e.builtinId;
            if (builtin == Builtin::Sbrk)
                err(e.line, "sbrk is not available on the bytecode "
                            "target; use arrays");
            emit(Bc::InvokeNative, e.builtinId);
            const auto &info = builtinInfo(builtin);
            if (info.returnsValue && !want_value)
                emit(Bc::Pop);
        } else {
            emit(Bc::InvokeStatic, e.funcId);
            const FuncDecl &callee = prog_.funcs[e.funcId];
            if (!callee.retType.isVoid() && !want_value)
                emit(Bc::Pop);
        }
    }

    const Program &prog_;
    jvm::Module &module_;
    const FuncDecl *fn_ = nullptr;
    std::vector<Insn> code;
    std::vector<int> slotOf;
    int scratch0 = 0, scratch1 = 0, scratch2 = 0;
    std::vector<std::vector<size_t>> breakFixups;
    std::vector<size_t> continueTargets;
    std::vector<std::vector<size_t>> continueFixups;
};

} // namespace

jvm::Module
compileToBytecode(const Program &prog)
{
    jvm::Module module;
    BcGen gen(prog, module);
    gen.run();
    return module;
}

} // namespace interp::minic
