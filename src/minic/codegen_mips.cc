#include "minic/codegen_mips.hh"

#include <vector>

#include "minic/builtins.hh"
#include "mips/asm_builder.hh"
#include "support/logging.hh"

namespace interp::minic {

namespace {

using mips::AsmBuilder;
using mips::Op;
using mips::Reg;

/** Emits one program through an AsmBuilder. */
class MipsGen
{
  public:
    explicit MipsGen(const Program &prog) : prog_(prog) {}

    mips::Image
    run()
    {
        layoutData();

        // Entry stub: call main, then exit with its return value.
        funcLabels.resize(prog_.funcs.size());
        for (size_t i = 0; i < prog_.funcs.size(); ++i)
            funcLabels[i] = b.newLabel();

        b.here("__start");
        int main_id = -1;
        for (size_t i = 0; i < prog_.funcs.size(); ++i)
            if (prog_.funcs[i].name == "main")
                main_id = (int)i;
        INTERP_ASSERT(main_id >= 0);
        b.jal(funcLabels[main_id]);
        b.move(mips::A0, mips::V0);
        b.li(mips::V0, mips::SYS_EXIT2);
        b.syscall();

        for (size_t i = 0; i < prog_.funcs.size(); ++i)
            genFunc(prog_.funcs[i], funcLabels[i]);

        return b.link();
    }

  private:
    // --- data layout -------------------------------------------------------
    void
    layoutData()
    {
        globalAddr.resize(prog_.globals.size());
        for (size_t i = 0; i < prog_.globals.size(); ++i) {
            const GlobalDecl &g = prog_.globals[i];
            if (g.type.sizeOf() >= 4 || g.type.isPointer())
                b.dataAlign(4);
            uint32_t addr;
            if (g.hasInitString) {
                addr = b.dataAsciiz(g.initString);
                uint32_t used = (uint32_t)g.initString.size() + 1;
                if (g.byteSize > used)
                    b.dataSpace(g.byteSize - used);
            } else if (!g.initValues.empty()) {
                int elem = g.type.sizeOf();
                if (elem == 1) {
                    std::string bytes;
                    for (int32_t v : g.initValues)
                        bytes.push_back((char)v);
                    addr = b.dataBytes(bytes);
                } else {
                    addr = 0;
                    for (size_t k = 0; k < g.initValues.size(); ++k) {
                        uint32_t a = b.dataWord((uint32_t)g.initValues[k]);
                        if (k == 0)
                            addr = a;
                    }
                }
                uint32_t used =
                    (uint32_t)(g.initValues.size() * g.type.sizeOf());
                if (g.byteSize > used)
                    b.dataSpace(g.byteSize - used);
            } else {
                addr = b.dataSpace(g.byteSize ? g.byteSize : 4);
            }
            globalAddr[i] = addr;
            b.dataSymbol(g.name, addr);
        }
        strAddr.resize(prog_.strings.size());
        for (size_t i = 0; i < prog_.strings.size(); ++i)
            strAddr[i] = b.dataAsciiz(prog_.strings[i]);
    }

    // --- frame helpers -----------------------------------------------------
    /** Push V0 onto the runtime stack. */
    void
    push()
    {
        b.itype(Op::Addiu, mips::SP, mips::SP, -4);
        b.loadStore(Op::Sw, mips::V0, 0, mips::SP);
    }

    /** Pop the runtime stack into @p reg. */
    void
    pop(Reg reg)
    {
        b.loadStore(Op::Lw, reg, 0, mips::SP);
        b.itype(Op::Addiu, mips::SP, mips::SP, 4);
    }

    // --- functions --------------------------------------------------------
    void
    genFunc(const FuncDecl &fn, AsmBuilder::Label entry)
    {
        fn_ = &fn;
        b.bind(entry);
        namedEntry(fn.name);

        frameBytes = ((fn.frameBytes + 8) + 7) & ~7u;
        epilogue = b.newLabel();

        // Prologue.
        b.itype(Op::Addiu, mips::SP, mips::SP,
                (int16_t)-(int32_t)frameBytes);
        b.loadStore(Op::Sw, mips::RA, (int16_t)(frameBytes - 4), mips::SP);
        b.loadStore(Op::Sw, mips::FP, (int16_t)(frameBytes - 8), mips::SP);
        b.move(mips::FP, mips::SP);
        static const Reg kArgRegs[4] = {mips::A0, mips::A1, mips::A2,
                                        mips::A3};
        for (size_t i = 0; i < fn.params.size(); ++i)
            b.loadStore(Op::Sw, kArgRegs[i],
                        (int16_t)fn.locals[i].offset, mips::FP);

        genStmt(*fn.body);

        // Fall-through return (void or missing return gives 0).
        b.li(mips::V0, 0);
        b.bind(epilogue);
        b.move(mips::SP, mips::FP);
        b.loadStore(Op::Lw, mips::RA, (int16_t)(frameBytes - 4), mips::SP);
        b.loadStore(Op::Lw, mips::FP, (int16_t)(frameBytes - 8), mips::SP);
        b.itype(Op::Addiu, mips::SP, mips::SP, (int16_t)frameBytes);
        b.jr(mips::RA);
    }

    void
    namedEntry(const std::string &name)
    {
        b.here("fn." + name);
    }

    // --- statements -----------------------------------------------------
    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::Block:
            for (const auto &child : s.stmts)
                genStmt(*child);
            break;
          case StmtKind::VarDecl:
            if (s.expr) {
                genExpr(*s.expr);
                b.loadStore(Op::Sw, mips::V0,
                            (int16_t)fn_->locals[s.localSlot].offset,
                            mips::FP);
            }
            break;
          case StmtKind::ExprStmt:
            genExpr(*s.expr);
            break;
          case StmtKind::If: {
            auto else_l = b.newLabel();
            genExpr(*s.cond);
            b.branch(Op::Beq, mips::V0, mips::ZERO, else_l);
            genStmt(*s.thenStmt);
            if (s.elseStmt) {
                auto end_l = b.newLabel();
                b.j(end_l);
                b.bind(else_l);
                genStmt(*s.elseStmt);
                b.bind(end_l);
            } else {
                b.bind(else_l);
            }
            break;
          }
          case StmtKind::While: {
            auto head = b.newLabel();
            auto exit = b.newLabel();
            b.bind(head);
            genExpr(*s.cond);
            b.branch(Op::Beq, mips::V0, mips::ZERO, exit);
            breakStack.push_back(exit);
            continueStack.push_back(head);
            genStmt(*s.body);
            breakStack.pop_back();
            continueStack.pop_back();
            b.j(head);
            b.bind(exit);
            break;
          }
          case StmtKind::For: {
            auto head = b.newLabel();
            auto step = b.newLabel();
            auto exit = b.newLabel();
            if (s.init)
                genStmt(*s.init);
            b.bind(head);
            if (s.cond) {
                genExpr(*s.cond);
                b.branch(Op::Beq, mips::V0, mips::ZERO, exit);
            }
            breakStack.push_back(exit);
            continueStack.push_back(step);
            genStmt(*s.body);
            breakStack.pop_back();
            continueStack.pop_back();
            b.bind(step);
            if (s.inc)
                genExpr(*s.inc);
            b.j(head);
            b.bind(exit);
            break;
          }
          case StmtKind::Return:
            if (s.expr)
                genExpr(*s.expr);
            else
                b.li(mips::V0, 0);
            b.j(epilogue);
            break;
          case StmtKind::Break:
            b.j(breakStack.back());
            break;
          case StmtKind::Continue:
            b.j(continueStack.back());
            break;
          case StmtKind::Empty:
            break;
        }
    }

    // --- expressions ------------------------------------------------------
    /** Memory op for a value of @p type. */
    static Op
    loadOpFor(const Type &type)
    {
        return type.sizeOf() == 1 ? Op::Lbu : Op::Lw;
    }

    static Op
    storeOpFor(const Type &type)
    {
        return type.sizeOf() == 1 ? Op::Sb : Op::Sw;
    }

    /** Leave the address of lvalue @p e in V0. */
    void
    genAddr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::Var:
            if (e.localSlot >= 0) {
                b.itype(Op::Addiu, mips::V0, mips::FP,
                        (int16_t)fn_->locals[e.localSlot].offset);
            } else {
                b.la(mips::V0, globalAddr[e.globalId]);
            }
            break;
          case ExprKind::Index: {
            genExpr(*e.lhs); // pointer value
            push();
            genExpr(*e.rhs); // index
            if (e.lhs->type.elemSize() == 4)
                b.shift(Op::Sll, mips::V0, mips::V0, 2);
            pop(mips::T1);
            b.rtype(Op::Addu, mips::V0, mips::T1, mips::V0);
            break;
          }
          case ExprKind::Deref:
            genExpr(*e.rhs);
            break;
          default:
            panic("genAddr on non-lvalue");
        }
    }

    /** Evaluate @p e, leaving the value in V0. */
    void
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            b.li(mips::V0, e.intValue);
            break;
          case ExprKind::StrLit:
            b.la(mips::V0, strAddr[e.strId]);
            break;
          case ExprKind::Var:
            if (e.isArrayVar) {
                genAddr2ArrayBase(e);
            } else if (e.localSlot >= 0) {
                b.loadStore(Op::Lw, mips::V0,
                            (int16_t)fn_->locals[e.localSlot].offset,
                            mips::FP);
            } else {
                b.la(mips::V0, globalAddr[e.globalId]);
                b.loadStore(loadOpFor(e.type), mips::V0, 0, mips::V0);
            }
            break;
          case ExprKind::Index:
            genAddr(e);
            b.loadStore(loadOpFor(e.type), mips::V0, 0, mips::V0);
            break;
          case ExprKind::Deref:
            genExpr(*e.rhs);
            b.loadStore(loadOpFor(e.type), mips::V0, 0, mips::V0);
            break;
          case ExprKind::AddrOf:
            genAddr(*e.rhs);
            break;
          case ExprKind::Unary:
            genExpr(*e.rhs);
            switch (e.op) {
              case Tok::Minus:
                b.rtype(Op::Subu, mips::V0, mips::ZERO, mips::V0);
                break;
              case Tok::Tilde:
                b.rtype(Op::Nor, mips::V0, mips::V0, mips::ZERO);
                break;
              case Tok::Bang:
                b.itype(Op::Sltiu, mips::V0, mips::V0, 1);
                break;
              default:
                panic("bad unary op");
            }
            break;
          case ExprKind::Assign:
            genAssign(e);
            break;
          case ExprKind::Binary:
            genBinary(e);
            break;
          case ExprKind::Call:
            genCall(e);
            break;
        }
    }

    /** Array-variable reference decays to its base address. */
    void
    genAddr2ArrayBase(const Expr &e)
    {
        if (e.localSlot >= 0)
            b.itype(Op::Addiu, mips::V0, mips::FP,
                    (int16_t)fn_->locals[e.localSlot].offset);
        else
            b.la(mips::V0, globalAddr[e.globalId]);
    }

    void
    genAssign(const Expr &e)
    {
        const Type &lt = e.lhs->type;
        if (e.op == Tok::Assign) {
            genExpr(*e.rhs);
            // Fast path: direct store for scalar locals.
            if (e.lhs->kind == ExprKind::Var && e.lhs->localSlot >= 0 &&
                !e.lhs->isArrayVar) {
                b.loadStore(Op::Sw, mips::V0,
                            (int16_t)fn_->locals[e.lhs->localSlot].offset,
                            mips::FP);
                return;
            }
            push();
            genAddr(*e.lhs);
            pop(mips::T1);
            b.loadStore(storeOpFor(lt), mips::T1, 0, mips::V0);
            b.move(mips::V0, mips::T1);
            return;
        }
        // += / -= : evaluate the lvalue address once.
        genAddr(*e.lhs);
        push();
        genExpr(*e.rhs);
        if (lt.isPointer() && lt.elemSize() == 4)
            b.shift(Op::Sll, mips::V0, mips::V0, 2);
        pop(mips::T1);                                // address
        b.loadStore(loadOpFor(lt), mips::T2, 0, mips::T1);
        if (e.op == Tok::PlusAssign)
            b.rtype(Op::Addu, mips::V0, mips::T2, mips::V0);
        else
            b.rtype(Op::Subu, mips::V0, mips::T2, mips::V0);
        b.loadStore(storeOpFor(lt), mips::V0, 0, mips::T1);
    }

    void
    genBinary(const Expr &e)
    {
        // Short-circuit logical operators.
        if (e.op == Tok::AmpAmp || e.op == Tok::PipePipe) {
            auto out_l = b.newLabel();
            auto end_l = b.newLabel();
            bool is_and = e.op == Tok::AmpAmp;
            genExpr(*e.lhs);
            if (is_and)
                b.branch(Op::Beq, mips::V0, mips::ZERO, out_l);
            else
                b.branch(Op::Bne, mips::V0, mips::ZERO, out_l);
            genExpr(*e.rhs);
            if (is_and)
                b.branch(Op::Beq, mips::V0, mips::ZERO, out_l);
            else
                b.branch(Op::Bne, mips::V0, mips::ZERO, out_l);
            b.li(mips::V0, is_and ? 1 : 0);
            b.j(end_l);
            b.bind(out_l);
            b.li(mips::V0, is_and ? 0 : 1);
            b.bind(end_l);
            return;
        }

        genExpr(*e.lhs);
        push();
        genExpr(*e.rhs);

        bool lp = e.lhs->type.isPointer();
        bool rp = e.rhs->type.isPointer();

        // Pointer arithmetic scaling (word-sized elements only).
        if (e.op == Tok::Plus && lp && !rp && e.lhs->type.elemSize() == 4)
            b.shift(Op::Sll, mips::V0, mips::V0, 2);
        if (e.op == Tok::Minus && lp && !rp &&
            e.lhs->type.elemSize() == 4)
            b.shift(Op::Sll, mips::V0, mips::V0, 2);

        pop(mips::T1);

        if (e.op == Tok::Plus && rp && !lp && e.rhs->type.elemSize() == 4)
            b.shift(Op::Sll, mips::T1, mips::T1, 2);

        switch (e.op) {
          case Tok::Plus:
            b.rtype(Op::Addu, mips::V0, mips::T1, mips::V0);
            break;
          case Tok::Minus:
            b.rtype(Op::Subu, mips::V0, mips::T1, mips::V0);
            if (lp && rp && e.lhs->type.elemSize() == 4)
                b.shift(Op::Sra, mips::V0, mips::V0, 2);
            break;
          case Tok::Star:
            b.multDiv(Op::Mult, mips::T1, mips::V0);
            b.mflo(mips::V0);
            break;
          case Tok::Slash:
            b.multDiv(Op::Div, mips::T1, mips::V0);
            b.mflo(mips::V0);
            break;
          case Tok::Percent:
            b.multDiv(Op::Div, mips::T1, mips::V0);
            b.mfhi(mips::V0);
            break;
          case Tok::Amp:
            b.rtype(Op::And, mips::V0, mips::T1, mips::V0);
            break;
          case Tok::Pipe:
            b.rtype(Op::Or, mips::V0, mips::T1, mips::V0);
            break;
          case Tok::Caret:
            b.rtype(Op::Xor, mips::V0, mips::T1, mips::V0);
            break;
          case Tok::Shl:
            b.shiftVar(Op::Sllv, mips::V0, mips::T1, mips::V0);
            break;
          case Tok::Shr:
            b.shiftVar(Op::Srav, mips::V0, mips::T1, mips::V0);
            break;
          case Tok::Eq:
            b.rtype(Op::Xor, mips::V0, mips::T1, mips::V0);
            b.itype(Op::Sltiu, mips::V0, mips::V0, 1);
            break;
          case Tok::Ne:
            b.rtype(Op::Xor, mips::V0, mips::T1, mips::V0);
            b.rtype(Op::Sltu, mips::V0, mips::ZERO, mips::V0);
            break;
          case Tok::Lt:
            b.rtype(Op::Slt, mips::V0, mips::T1, mips::V0);
            break;
          case Tok::Gt:
            b.rtype(Op::Slt, mips::V0, mips::V0, mips::T1);
            break;
          case Tok::Le:
            b.rtype(Op::Slt, mips::V0, mips::V0, mips::T1);
            b.itype(Op::Xori, mips::V0, mips::V0, 1);
            break;
          case Tok::Ge:
            b.rtype(Op::Slt, mips::V0, mips::T1, mips::V0);
            b.itype(Op::Xori, mips::V0, mips::V0, 1);
            break;
          default:
            panic("bad binary op");
        }
    }

    void
    genCall(const Expr &e)
    {
        for (const auto &arg : e.args) {
            genExpr(*arg);
            push();
        }
        static const Reg kArgRegs[4] = {mips::A0, mips::A1, mips::A2,
                                        mips::A3};
        for (int i = (int)e.args.size() - 1; i >= 0; --i)
            pop(kArgRegs[i]);

        if (e.builtinId >= 0) {
            genBuiltin((Builtin)e.builtinId, e.line);
        } else {
            b.jal(funcLabels[e.funcId]);
        }
    }

    void
    genBuiltin(Builtin builtin, int line)
    {
        uint32_t nr;
        switch (builtin) {
          case Builtin::PrintInt: nr = mips::SYS_PRINT_INT; break;
          case Builtin::PrintChar: nr = mips::SYS_PRINT_CHAR; break;
          case Builtin::PrintStr: nr = mips::SYS_PRINT_STRING; break;
          case Builtin::ReadInt: nr = mips::SYS_READ_INT; break;
          case Builtin::Open: nr = mips::SYS_OPEN; break;
          case Builtin::Read: nr = mips::SYS_READ; break;
          case Builtin::Write: nr = mips::SYS_WRITE; break;
          case Builtin::Close: nr = mips::SYS_CLOSE; break;
          case Builtin::Sbrk: nr = mips::SYS_SBRK; break;
          case Builtin::Exit: nr = mips::SYS_EXIT2; break;
          default:
            fatal("line %d: builtin '%s' is not available on the MIPS "
                  "target", line, builtinInfo(builtin).name);
        }
        b.li(mips::V0, (int32_t)nr);
        b.syscall();
    }

    const Program &prog_;
    AsmBuilder b;
    std::vector<uint32_t> globalAddr;
    std::vector<uint32_t> strAddr;
    std::vector<AsmBuilder::Label> funcLabels;
    std::vector<AsmBuilder::Label> breakStack;
    std::vector<AsmBuilder::Label> continueStack;
    const FuncDecl *fn_ = nullptr;
    uint32_t frameBytes = 0;
    AsmBuilder::Label epilogue = 0;
};

} // namespace

mips::Image
compileToMips(const Program &prog)
{
    MipsGen gen(prog);
    return gen.run();
}

} // namespace interp::minic
