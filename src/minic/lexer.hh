/**
 * @file
 * MiniC lexer: hand-written scanner producing the token stream.
 */

#ifndef INTERP_MINIC_LEXER_HH
#define INTERP_MINIC_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

#include "minic/token.hh"

namespace interp::minic {

/** Lex @p source completely; reports errors through fatal(). */
std::vector<Token> lex(std::string_view source,
                       const std::string &filename = "<input>");

} // namespace interp::minic

#endif // INTERP_MINIC_LEXER_HH
