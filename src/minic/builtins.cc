#include "minic/builtins.hh"

#include <cstring>

#include "support/logging.hh"

namespace interp::minic {

namespace {

const BuiltinInfo kBuiltins[(int)Builtin::Count] = {
    {"print_int", 1, false},
    {"print_char", 1, false},
    {"print_str", 1, false},
    {"read_int", 0, true},
    {"open", 2, true},
    {"read", 3, true},
    {"write", 3, true},
    {"close", 1, true},
    {"sbrk", 1, true},
    {"exit", 1, false},
    {"gfx_init", 2, false},
    {"gfx_clear", 1, false},
    {"gfx_line", 5, false},
    {"gfx_fillrect", 5, false},
    {"gfx_rect", 5, false},
    {"gfx_circle", 4, false},
    {"gfx_fillcircle", 4, false},
    {"gfx_text", 4, false},
    {"gfx_pixel", 3, false},
    {"gfx_flush", 0, false},
};

} // namespace

const BuiltinInfo &
builtinInfo(Builtin b)
{
    int idx = (int)b;
    if (idx < 0 || idx >= (int)Builtin::Count)
        panic("bad builtin id %d", idx);
    return kBuiltins[idx];
}

int
findBuiltin(const char *name)
{
    for (int i = 0; i < (int)Builtin::Count; ++i)
        if (std::strcmp(kBuiltins[i].name, name) == 0)
            return i;
    return -1;
}

} // namespace interp::minic
