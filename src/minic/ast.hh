/**
 * @file
 * MiniC abstract syntax tree, shared by the parser, the semantic
 * analyzer and both code generators.
 */

#ifndef INTERP_MINIC_AST_HH
#define INTERP_MINIC_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minic/token.hh"

namespace interp::minic {

/** A MiniC type: void, int, char, or pointer(s) to those. */
struct Type
{
    enum class Base : uint8_t { Void, Int, Char };

    Base base = Base::Int;
    int ptr = 0; ///< pointer depth

    bool isPointer() const { return ptr > 0; }
    bool isVoid() const { return base == Base::Void && ptr == 0; }

    /** Size of a value of this type in bytes. */
    int
    sizeOf() const
    {
        if (ptr > 0)
            return 4;
        return base == Base::Char ? 1 : 4;
    }

    /** Size of the pointed-to / element type. */
    int
    elemSize() const
    {
        Type e = *this;
        e.ptr -= 1;
        return e.sizeOf();
    }

    Type
    pointee() const
    {
        Type e = *this;
        e.ptr -= 1;
        return e;
    }

    Type
    pointerTo() const
    {
        Type e = *this;
        e.ptr += 1;
        return e;
    }

    bool
    operator==(const Type &o) const
    {
        return base == o.base && ptr == o.ptr;
    }

    static Type intType() { return {Base::Int, 0}; }
    static Type charType() { return {Base::Char, 0}; }
    static Type voidType() { return {Base::Void, 0}; }
};

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    IntLit,  ///< integer / character literal
    StrLit,  ///< string literal (char*)
    Var,     ///< variable reference
    Binary,  ///< lhs op rhs (arithmetic / comparison / logical)
    Unary,   ///< op rhs (-, !, ~)
    Assign,  ///< lhs = rhs (also += and -=)
    Call,    ///< function or builtin call
    Index,   ///< lhs[rhs]
    Deref,   ///< *rhs
    AddrOf,  ///< &rhs
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** One expression node; fields used depend on kind. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    int32_t intValue = 0;           // IntLit
    std::string name;               // Var / Call; StrLit payload
    Tok op = Tok::End;              // Binary / Unary / Assign
    ExprPtr lhs;
    ExprPtr rhs;
    std::vector<ExprPtr> args;      // Call

    // --- sema annotations ---------------------------------------------
    Type type;        ///< result type
    int localSlot = -1;  ///< Var: index into the function's locals
    int globalId = -1;   ///< Var: index into the program's globals
    int builtinId = -1;  ///< Call: builtin index, or -1 for user call
    int funcId = -1;     ///< Call: user function index
    int strId = -1;      ///< StrLit: string-pool index
    bool isArrayVar = false; ///< Var names an array (decays to pointer)
};

/** Statement node kinds. */
enum class StmtKind : uint8_t
{
    ExprStmt, If, While, For, Return, Break, Continue, Block, VarDecl,
    Empty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** One statement node; fields used depend on kind. */
struct Stmt
{
    StmtKind kind;
    int line = 0;

    ExprPtr expr;  // ExprStmt / Return value / VarDecl initializer
    ExprPtr cond;  // If / While / For condition
    ExprPtr inc;   // For increment
    StmtPtr init;  // For initializer
    StmtPtr thenStmt;
    StmtPtr elseStmt;
    StmtPtr body;  // While / For body
    std::vector<StmtPtr> stmts; // Block

    // VarDecl
    Type declType;
    std::string name;
    int arraySize = -1; ///< -1: scalar; else element count

    // --- sema annotations ---------------------------------------------
    int localSlot = -1;
};

/** A global variable declaration. */
struct GlobalDecl
{
    Type type;
    std::string name;
    int arraySize = -1;           ///< -1: scalar
    std::vector<int32_t> initValues;
    std::string initString;
    bool hasInitString = false;
    int line = 0;

    // --- sema annotations ---------------------------------------------
    uint32_t byteSize = 0;
};

/** A function parameter. */
struct Param
{
    Type type;
    std::string name;
};

/** A function definition. */
struct FuncDecl
{
    Type retType;
    std::string name;
    std::vector<Param> params;
    StmtPtr body;
    int line = 0;

    // --- sema annotations ---------------------------------------------
    /** One stack slot (scalar or array) in the frame. */
    struct Local
    {
        std::string name;
        Type type;
        int arraySize = -1;
        uint32_t offset = 0; ///< byte offset from the frame base
    };

    std::vector<Local> locals; ///< params first, then block locals
    uint32_t frameBytes = 0;
};

/** A whole translation unit. */
struct Program
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> funcs;
    std::vector<std::string> strings; ///< string-literal pool (sema)
};

} // namespace interp::minic

#endif // INTERP_MINIC_AST_HH
