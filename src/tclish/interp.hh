/**
 * @file
 * The tclish interpreter: direct interpretation of ASCII source.
 *
 * There is no compilation step of any kind — exactly like Tcl 7.4:
 *  - the eval loop re-parses the command text on *every* execution
 *    (a while body is re-scanned on each iteration), which is why
 *    fetch/decode costs thousands of native instructions per virtual
 *    command (Table 2: 2,000-5,200);
 *  - all values are strings; `expr` re-parses its arithmetic
 *    expression from text at each evaluation (the a=b+c microbenchmark
 *    is 6500x slower than C in the paper);
 *  - variables are named by strings and every access is a symbol-table
 *    lookup costing ~200-500 instructions, growing with table size
 *    (§3.3).
 *
 * One executed Tcl command = one virtual command; its name (set, expr,
 * puts, a proc name, ...) is the command-distribution key of Figs 1-2.
 */

#ifndef INTERP_TCLISH_INTERP_HH
#define INTERP_TCLISH_INTERP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gfx/framebuffer.hh"
#include "tclish/symtab.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"

namespace interp::tclish {

/** Compiled-script cache of the bytecode mode (see bytecode.cc). */
struct BytecodeState;

/** Outcome of evaluating a script or command. */
enum class Status : uint8_t
{
    Ok, Return, Break, Continue, Stop, // Stop: budget exhausted / exit
};

/** A result: status plus the command's string value. */
struct Result
{
    Status status = Status::Ok;
    std::string value;
};

/** The interpreter. */
class TclInterp
{
  public:
    /**
     * @p bytecode enables the tclish-bytecode execution mode, the
     * Tcl 8.0-style §5 remedy: each distinct script string (program,
     * proc body, loop body, bracket script) is parsed ONCE into a
     * cached command list, charged to the Precompile category; every
     * subsequent trip fetches the compiled words for a few dozen
     * instructions instead of re-scanning the text. Substitution,
     * expr evaluation and command dispatch are unchanged, so
     * per-command execute attribution is identical to baseline.
     *
     * @p tier2 (implies bytecode) enables the Tcl-tier2 mode:
     *  - command-pair superinstructions — after a compiled script has
     *    run a few trips, the hottest adjacent command-name pairs are
     *    fused, and the second command of a fused pair costs a couple
     *    of glue instructions of fetch instead of a full compiled-word
     *    fetch (one-shot fusion pass charged to Precompile);
     *  - monomorphic symbol inline caches — each $-reference site in a
     *    compiled command caches its global-scope resolution; a hit
     *    replaces the ~200-500-instruction symbol-table translation
     *    (§3.3) with a short guarded load, a miss falls back to the
     *    full baseline lookup (guard charged as memory-model work,
     *    refill charged to Precompile). Writes always take the
     *    baseline path: the cache serves reads only.
     * Execute attribution outside the memory-model subset stays
     * byte-identical to baseline.
     *
     * @p jit (implies tier2) enables the Tcl-jit tier-3 mode: each
     * compiled script is template-compiled into a jit::JitArtifact —
     * one native stencil per compiled command, calling back into the
     * unchanged substitution/dispatch path — so a trip through a hot
     * script *falls through* the stencil stream instead of fetching
     * compiled words. The stencil glue executes at its own PCs inside
     * a Segment::JitCode region (Fig 3-style i-cache attribution of
     * the emitted code), compilation is charged to Precompile, and
     * the symbol-cache hit path shrinks to the stencil's inlined
     * guard. Fusion is subsumed (the glue is already cheaper than a
     * fused fetch); everything outside fetch/decode and the
     * memory-model subset stays byte-identical to baseline.
     */
    TclInterp(trace::Execution &exec, vfs::FileSystem &fs,
              bool bytecode = false, bool tier2 = false,
              bool jit = false);

    /** Out of line (bytecode.cc): BytecodeState is incomplete here. */
    ~TclInterp();

    struct RunResult
    {
        bool exited = false;
        int exitCode = 0;
        uint64_t commands = 0;
    };

    /** Interpret a whole script (the program text, kept as a string). */
    RunResult run(const std::string &script,
                  uint64_t max_commands = UINT64_MAX);

    trace::CommandSet &commandSet() { return commands_; }

    /** Value of a global variable, or "" (tests). */
    std::string varValue(const std::string &name);

    /** Framebuffer created by the tk-like commands (null before). */
    gfx::Framebuffer *framebuffer() { return fb.get(); }

    /**
     * Test hook: drop @p script from the compiled-script cache.
     * Invalidating a script that has already executed is a
     * post-first-event code mutation and raises a contained fatal().
     */
    void debugInvalidate(const std::string &script);

  private:
    struct Proc
    {
        std::vector<std::string> params;
        std::string body;
    };

    struct Scope
    {
        SymTab vars;
        std::vector<std::string> globals; ///< names imported via `global`
    };

    struct Channel
    {
        int fd = -1;
    };

    /** Per-command handler region (lazily registered). */
    trace::RoutineId commandRegion(const std::string &name);

    // --- evaluation -------------------------------------------------------
    /**
     * Mode dispatch only; noinline so the baseline call sites and the
     * baseline loop's own frame (evalDirect) compile exactly as they
     * did before the bytecode mode existed — stack temporaries feed
     * the simulated data addresses, so their layout is part of the
     * baseline's observable behaviour.
     */
    __attribute__((noinline))
    Result evalScript(const std::string &script);
    Result evalDirect(const std::string &script);
    Result evalCompiled(const std::string &script); ///< bytecode.cc
    Result evalCommand(const std::vector<std::string> &words, int line);
    Result invokeProc(const Proc &proc,
                      const std::vector<std::string> &words);

    // --- parsing (runtime, charged) -----------------------------------
    /**
     * Parse one command starting at @p pos of @p script into
     * substituted words; advances @p pos past the command.
     * @return false at end of script.
     */
    bool parseCommand(const std::string &script, size_t &pos,
                      std::vector<std::string> &words, int &line);
    /** Substitute $vars, [scripts] and backslashes in a word. */
    std::string substitute(const std::string &text, Result &failure);

    // --- variables --------------------------------------------------------
    SymTab &scopeFor(const std::string &name);
    std::string readVar(const std::string &name);
    void writeVar(const std::string &name, const std::string &value);

    // --- expr ---------------------------------------------------------
    int64_t evalExpr(const std::string &text, int line);

    // --- bytecode mode (all definitions in bytecode.cc) --------------------
    /** Register the mode's routines and allocate `bc` (ctor helper). */
    void initBytecode();
    /**
     * Tier-2 symbol-cache probe for one $-reference (bytecode.cc).
     * Returns true when the site's cache hit — the fast-path charge
     * has been emitted and the caller must skip chargeLookup. On a
     * miss (or outside an active compiled-command cursor) emits
     * guard/refill overhead as applicable and returns false.
     */
    bool icReadHit(const std::string &name, SymTab &table, bool found);
    /** Tier-2 one-shot pair-fusion pass over one compiled script
     *  (bytecode.cc; opaque pointer: the script type is complete only
     *  there). */
    void fusePairs(void *script);
    /**
     * Tier-3 stencil helper (bytecode.cc): execute one compiled
     * command of the context's script. The static thunk is the
     * jit::StepFn target; it never lets an exception unwind into the
     * native stencil frame (stashed in the context and re-raised by
     * evalCompiled after the stream is left).
     */
    static uint8_t jitStepThunk(void *ctx, uint32_t index) noexcept;
    uint8_t jitCmdStep(void *ctx, uint32_t index);

    // --- cost emission -----------------------------------------------------
    void chargeParse(size_t chars, size_t words);
    void chargeBytecodeFetch(size_t words); ///< bytecode.cc
    void chargeLookup(const std::string &name, int chain_steps,
                      const void *bucket);
    void chargeCommandLookup(const std::string &name);
    void chargeStringWork(size_t chars);
    void kernelWrite(int fd, const std::string &text);

    trace::Execution &exec;
    vfs::FileSystem &fs;
    trace::CommandSet commands_;

    std::vector<Scope> scopes; ///< [0] is the global scope
    std::map<std::string, Proc> procs;
    std::map<std::string, Channel> channels;
    std::unique_ptr<gfx::Framebuffer> fb;

    uint64_t commandsRun = 0;
    uint64_t commandBudget = UINT64_MAX;
    bool exited = false;
    int exitCode = 0;
    int procDepth = 0;

    // Interpreter code regions.
    trace::RoutineId rParse;
    trace::RoutineId rSubst;
    trace::RoutineId rCmdLookup;
    trace::RoutineId rSymtab;
    trace::RoutineId rExpr;
    trace::RoutineId rString;
    trace::RoutineId rList;
    trace::RoutineId rProc;
    trace::RoutineId rCmds;
    std::map<std::string, trace::RoutineId> cmdRegions;
    trace::RoutineId rIo;
    trace::RoutineId rTk;
    trace::RoutineId rKernel;

    // Bytecode-mode state, declared last: baseline members keep the
    // exact offsets (and 16-byte-granule alignment, which the
    // simulated data addresses depend on) they had before this mode
    // existed. The compiled-script cache lives behind a pointer to an
    // incomplete type on purpose — instantiating its containers here
    // would pull their template code into interp.cc, and that much
    // extra code mass shifts GCC's per-unit inlining decisions, which
    // moves stack temporaries across 16-byte granules and perturbs
    // the baseline's simulated data addresses. bytecode.cc is the
    // only TU that sees the complete type.
    bool bytecodeMode = false;
    bool compiling = false; ///< routes chargeParse to Precompile
    /** Owned; a raw pointer (not unique_ptr) so interp.cc never
     *  instantiates the deleter. Freed by ~TclInterp in bytecode.cc. */
    BytecodeState *bc = nullptr;
    trace::RoutineId rCompile = 0; ///< one-shot bytecode compiler
    trace::RoutineId rBcFetch = 0; ///< compiled-command fetch loop

    // Tier-2 state, appended after the bytecode mode's for the same
    // layout reason. The IC slot vector type is complete only in
    // bytecode.cc, so the active cursor is opaque here.
    bool tier2Mode = false;
    uint64_t symbolEpoch = 0; ///< bumped by unset; invalidates ICs
    void *icSlots = nullptr;  ///< active command's IC slots, or null
    uint32_t icRef = 0;       ///< next $-reference ordinal in command
    trace::RoutineId rIcHit = 0; ///< symbol-cache probe routine
    trace::RoutineId rFuse = 0;  ///< pair-fusion pass routine

    // Tier-3 jit state, appended after tier-2's for the same layout
    // reason. Per-script artifacts live in BytecodeState (the only
    // place their types are complete).
    bool jitMode = false;
    trace::RoutineId rJitEmit = 0; ///< one-shot stencil compiler
};

} // namespace interp::tclish

#endif // INTERP_TCLISH_INTERP_HH
