/**
 * @file
 * The tclish interpreter: direct interpretation of ASCII source.
 *
 * There is no compilation step of any kind — exactly like Tcl 7.4:
 *  - the eval loop re-parses the command text on *every* execution
 *    (a while body is re-scanned on each iteration), which is why
 *    fetch/decode costs thousands of native instructions per virtual
 *    command (Table 2: 2,000-5,200);
 *  - all values are strings; `expr` re-parses its arithmetic
 *    expression from text at each evaluation (the a=b+c microbenchmark
 *    is 6500x slower than C in the paper);
 *  - variables are named by strings and every access is a symbol-table
 *    lookup costing ~200-500 instructions, growing with table size
 *    (§3.3).
 *
 * One executed Tcl command = one virtual command; its name (set, expr,
 * puts, a proc name, ...) is the command-distribution key of Figs 1-2.
 */

#ifndef INTERP_TCLISH_INTERP_HH
#define INTERP_TCLISH_INTERP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gfx/framebuffer.hh"
#include "tclish/symtab.hh"
#include "trace/execution.hh"
#include "vfs/vfs.hh"

namespace interp::tclish {

/** Outcome of evaluating a script or command. */
enum class Status : uint8_t
{
    Ok, Return, Break, Continue, Stop, // Stop: budget exhausted / exit
};

/** A result: status plus the command's string value. */
struct Result
{
    Status status = Status::Ok;
    std::string value;
};

/** The interpreter. */
class TclInterp
{
  public:
    TclInterp(trace::Execution &exec, vfs::FileSystem &fs);

    struct RunResult
    {
        bool exited = false;
        int exitCode = 0;
        uint64_t commands = 0;
    };

    /** Interpret a whole script (the program text, kept as a string). */
    RunResult run(const std::string &script,
                  uint64_t max_commands = UINT64_MAX);

    trace::CommandSet &commandSet() { return commands_; }

    /** Value of a global variable, or "" (tests). */
    std::string varValue(const std::string &name);

    /** Framebuffer created by the tk-like commands (null before). */
    gfx::Framebuffer *framebuffer() { return fb.get(); }

  private:
    struct Proc
    {
        std::vector<std::string> params;
        std::string body;
    };

    struct Scope
    {
        SymTab vars;
        std::vector<std::string> globals; ///< names imported via `global`
    };

    struct Channel
    {
        int fd = -1;
    };

    /** Per-command handler region (lazily registered). */
    trace::RoutineId commandRegion(const std::string &name);

    // --- evaluation -------------------------------------------------------
    Result evalScript(const std::string &script);
    Result evalCommand(const std::vector<std::string> &words, int line);
    Result invokeProc(const Proc &proc,
                      const std::vector<std::string> &words);

    // --- parsing (runtime, charged) -----------------------------------
    /**
     * Parse one command starting at @p pos of @p script into
     * substituted words; advances @p pos past the command.
     * @return false at end of script.
     */
    bool parseCommand(const std::string &script, size_t &pos,
                      std::vector<std::string> &words, int &line);
    /** Substitute $vars, [scripts] and backslashes in a word. */
    std::string substitute(const std::string &text, Result &failure);

    // --- variables --------------------------------------------------------
    SymTab &scopeFor(const std::string &name);
    std::string readVar(const std::string &name);
    void writeVar(const std::string &name, const std::string &value);

    // --- expr ---------------------------------------------------------
    int64_t evalExpr(const std::string &text, int line);

    // --- cost emission -----------------------------------------------------
    void chargeParse(size_t chars, size_t words);
    void chargeLookup(const std::string &name, int chain_steps,
                      const void *bucket);
    void chargeCommandLookup(const std::string &name);
    void chargeStringWork(size_t chars);
    void kernelWrite(int fd, const std::string &text);

    trace::Execution &exec;
    vfs::FileSystem &fs;
    trace::CommandSet commands_;

    std::vector<Scope> scopes; ///< [0] is the global scope
    std::map<std::string, Proc> procs;
    std::map<std::string, Channel> channels;
    std::unique_ptr<gfx::Framebuffer> fb;

    uint64_t commandsRun = 0;
    uint64_t commandBudget = UINT64_MAX;
    bool exited = false;
    int exitCode = 0;
    int procDepth = 0;

    // Interpreter code regions.
    trace::RoutineId rParse;
    trace::RoutineId rSubst;
    trace::RoutineId rCmdLookup;
    trace::RoutineId rSymtab;
    trace::RoutineId rExpr;
    trace::RoutineId rString;
    trace::RoutineId rList;
    trace::RoutineId rProc;
    trace::RoutineId rCmds;
    std::map<std::string, trace::RoutineId> cmdRegions;
    trace::RoutineId rIo;
    trace::RoutineId rTk;
    trace::RoutineId rKernel;
};

} // namespace interp::tclish

#endif // INTERP_TCLISH_INTERP_HH
