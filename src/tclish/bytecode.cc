/**
 * @file
 * The tclish-bytecode execution mode (Tcl 8.0-style, §5 remedy).
 *
 * Every definition of the mode lives in this translation unit, and
 * BytecodeState is complete only here. That is deliberate: if the
 * compiled-script cache's container code were instantiated inside
 * interp.cc, the added code mass shifts GCC's per-unit inlining
 * decisions for the *baseline* eval path, which moves stack
 * temporaries across 16-byte address granules and perturbs the
 * baseline interpreter's simulated data addresses (and with them its
 * cycle counts). Keeping interp.cc's code mass unchanged keeps the
 * baseline bit-for-bit identical to what it was before this mode
 * existed.
 */

#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "jit/artifact.hh"
#include "support/logging.hh"
#include "tclish/interp.hh"

namespace interp::tclish {

using trace::Category;
using trace::CategoryScope;
using trace::MemModelScope;
using trace::RoutineScope;

/**
 * Compiled-script cache: each distinct script string (program text,
 * proc body, loop body, bracket script) maps to its one-shot parse.
 */
struct BytecodeState
{
    /** One monomorphic symbol-cache slot: a $-reference site in a
     *  compiled command remembers its last global-scope resolution.
     *  Guards are deterministic values only (scope kind, name, unset
     *  epoch) — never raw host addresses, so cache decisions replay
     *  identically across runs and threads. */
    struct IcSlot
    {
        bool filled = false;
        bool global = false; ///< resolved in the global scope
        std::string name;
        uint64_t epoch = 0;
        uint64_t hits = 0;
        /** Consecutive misses; at kDeadAfterMisses the site is
         *  megamorphic (e.g. an array element whose name varies per
         *  trip) and the probe is retired for good. */
        uint8_t misses = 0;
    };
    static constexpr uint8_t kDeadAfterMisses = 4;

    /** One parsed command (words keep the \x01 braced-word sentinel;
     *  line is the post-parse line number the baseline would report). */
    struct Cmd
    {
        std::vector<std::string> words;
        int line = 1;
        // Tier-2 only:
        std::vector<IcSlot> ic; ///< per-$-reference symbol caches
        uint8_t fuse = 0;       ///< 0 none, 1 pair head, 2 pair tail
    };

    /** A script compiled once. */
    struct Script
    {
        std::vector<Cmd> cmds;
        bool executed = false;
        uint64_t trips = 0; ///< tier-2: executions of this script
        bool fused = false; ///< tier-2: fusion pass already ran
        // Tier-3 only: the script's stencil program and the base PC
        // of its glue inside the Segment::JitCode region.
        std::shared_ptr<const jit::JitArtifact> jit;
        uint32_t jitBase = 0;
    };

    std::map<std::string, Script> scripts;

    /** Tier-2: dynamic adjacent command-name pair counts, global
     *  across scripts (a loop body re-entering evalCompiled per trip
     *  accumulates its pairs once per iteration). */
    std::map<std::pair<std::string, std::string>, uint64_t> pairCounts;
};

namespace {

/** Trips of one script before its one-shot fusion pass runs. */
constexpr uint64_t kFuseAfterTrips = 4;
/** Distinct command-name pairs promoted to superinstructions. */
constexpr size_t kMaxFusedPairs = 4;
/** Minimum dynamic pair count for a pair to qualify. */
constexpr uint64_t kMinPairCount = 8;

/** Command-name key of a compiled word (sentinel stripped). */
std::string
cmdKey(const BytecodeState::Cmd &cmd)
{
    if (cmd.words.empty())
        return "";
    const std::string &w = cmd.words[0];
    return (!w.empty() && w[0] == '\x01') ? w.substr(1) : w;
}

/** Glue instructions charged per command stencil (region sizing). */
constexpr uint32_t kJitGlueInsts = 2;

/**
 * One evalCompiled invocation's native-stream context. Stack
 * allocated per (possibly nested) invocation: a stencil helper that
 * triggers a nested eval re-enters evalCompiled with its own ctx.
 */
struct JitRunCtx
{
    TclInterp *self = nullptr;
    BytecodeState::Script *cs = nullptr;
    Result last;               ///< last Ok command result
    Result out;                ///< early-exit result (returned set)
    bool returned = false;
    std::exception_ptr pending;
};

} // namespace

void
TclInterp::initBytecode()
{
    auto &code = exec.code();
    rCompile = code.registerRoutine("tcl.compile", 1800);
    rBcFetch = code.registerRoutine("tcl.bcfetch", 300);
    if (tier2Mode) {
        rIcHit = code.registerRoutine("tcl.symcache", 140);
        rFuse = code.registerRoutine("tcl.fuse", 400);
    }
    if (jitMode)
        rJitEmit = code.registerRoutine("tcl.jit_emit", 120);
    bc = new BytecodeState;
}

TclInterp::~TclInterp()
{
    delete bc;
}

void
TclInterp::chargeBytecodeFetch(size_t words)
{
    // Tcl 8.0's fetch: advance the compiled-command pc and pick up
    // the pre-parsed word descriptors — a few dozen instructions
    // instead of re-scanning the command text.
    CategoryScope fd(exec, Category::FetchDecode);
    RoutineScope r(exec, rBcFetch);
    exec.alu(8);            // pc advance, opcode fetch
    exec.branch(false);     // halt test
    for (size_t w = 0; w < words; ++w) {
        exec.load(bc);       // word descriptor
        exec.alu(2);
    }
}

Result
TclInterp::evalCompiled(const std::string &script)
{
    BytecodeState::Script *cs;
    auto it = bc->scripts.find(script);
    if (it != bc->scripts.end()) {
        cs = &it->second;
    } else {
        // One-shot Tcl 8.0-style compile: run the ordinary parser
        // over the whole script now. The `compiling` flag routes
        // chargeParse to Precompile; the extra emission here is the
        // compiler's own code-generation overhead.
        BytecodeState::Script fresh;
        {
            compiling = true;
            CategoryScope pre(exec, Category::Precompile);
            RoutineScope r(exec, rCompile);
            exec.alu(80); // compile-env setup
            size_t pos = 0;
            int line = 1;
            std::vector<std::string> words;
            while (parseCommand(script, pos, words, line)) {
                exec.alu(40 + (uint32_t)words.size() * 12); // descriptors
                exec.store(bc);
                BytecodeState::Cmd cc;
                cc.words = words;
                cc.line = line;
                fresh.cmds.push_back(std::move(cc));
            }
            compiling = false;
        }
        cs = &bc->scripts.emplace(script, std::move(fresh)).first->second;
    }

    if (jitMode && !cs->jit) {
        // One-shot template compilation, one stencil per compiled
        // command. The glue executes at PCs inside a fresh
        // Segment::JitCode region, so the emitted code has an i-cache
        // footprint of its own (growing with the script, unlike the
        // interpreter's fixed loop).
        uint32_t glue = (uint32_t)cs->cmds.size() * kJitGlueInsts;
        trace::RoutineId region = exec.code().registerRoutine(
            "tcl.jitcode", glue ? glue : kJitGlueInsts,
            trace::Segment::JitCode);
        cs->jitBase = exec.code().routine(region).base;
        CategoryScope pre(exec, Category::Precompile);
        RoutineScope r(exec, rJitEmit);
        exec.alu(6); // size the buffer, map it writable
        cs->jit = jit::JitArtifact::build(&TclInterp::jitStepThunk,
                                          (uint32_t)cs->cmds.size());
        for (size_t i = 0; i < cs->cmds.size(); ++i) {
            exec.alu(3);      // select + patch the stencil
            exec.shortInt(1); // offset bookkeeping
            exec.store(bc);   // record the stencil offset
        }
        exec.alu(2); // seal: the W^X flip to read+execute
    }

    if (jitMode) {
        // Tier-3 trip: fall through the script's stencil stream. Each
        // stencil calls back into jitCmdStep — substitution, inline
        // caches and dispatch are the unchanged tier-2 paths, only the
        // per-command fetch differs. A nested eval (proc body, loop
        // body) re-enters here with its own context, so an exception
        // stashed at depth N re-raises level by level.
        JitRunCtx ctx;
        ctx.self = this;
        ctx.cs = cs;
        cs->jit->enter(&ctx, 0);
        if (ctx.pending)
            std::rethrow_exception(ctx.pending);
        return ctx.returned ? ctx.out : ctx.last;
    }

    if (tier2Mode) {
        // Profile dynamic adjacency until this script's fusion pass
        // fires: the command list runs front to back, so each trip
        // adds every adjacent pair once (loop bodies re-enter here
        // per iteration and accumulate accordingly).
        ++cs->trips;
        if (!cs->fused) {
            for (size_t i = 0; i + 1 < cs->cmds.size(); ++i)
                ++bc->pairCounts[{cmdKey(cs->cmds[i]),
                                  cmdKey(cs->cmds[i + 1])}];
            if (cs->trips >= kFuseAfterTrips)
                fusePairs(cs);
        }
    }

    Result last;
    bool prevHead = false;
    for (BytecodeState::Cmd &cc : cs->cmds) {
        cs->executed = true;
        if (prevHead && cc.fuse == 2) {
            // Superinstruction continuation: the fused handler falls
            // straight into the second command's pre-substituted
            // words — glue instead of a full compiled-word fetch.
            CategoryScope fd(exec, Category::FetchDecode);
            RoutineScope r(exec, rBcFetch);
            exec.alu(2);
            exec.alu((uint32_t)cc.words.size());
        } else {
            chargeBytecodeFetch(cc.words.size());
        }
        prevHead = cc.fuse == 1;
        if (commandsRun >= commandBudget)
            return {Status::Stop, ""};
        // Identical substitution pass to the baseline loop in
        // evalScript: only the fetch of the words changed, not what
        // is done with them, so execute attribution matches command
        // for command. In tier-2 the command's IC slots are exposed
        // to readVar for the duration of the substitution pass only
        // (never across the nested evals substitution may trigger —
        // icReadHit saves/restores around those via evalCompiled
        // re-entry, and command handlers run with no cursor at all).
        Result failure;
        failure.status = Status::Ok;
        void *savedSlots = icSlots;
        uint32_t savedRef = icRef;
        if (tier2Mode) {
            icSlots = &cc.ic;
            icRef = 0;
        }
        std::vector<std::string> substituted;
        substituted.reserve(cc.words.size());
        for (const std::string &word : cc.words) {
            if (!word.empty() && word[0] == '\x01') {
                substituted.push_back(word.substr(1));
            } else {
                substituted.push_back(substitute(word, failure));
                if (failure.status != Status::Ok) {
                    icSlots = savedSlots;
                    icRef = savedRef;
                    return failure;
                }
            }
        }
        icSlots = nullptr; // handlers see no cursor
        last = evalCommand(substituted, cc.line);
        icSlots = savedSlots;
        icRef = savedRef;
        if (last.status != Status::Ok)
            return last;
    }
    return last;
}

void
TclInterp::fusePairs(void *script_ptr)
{
    BytecodeState::Script &script =
        *(BytecodeState::Script *)script_ptr;
    // One-shot fusion pass (translation work → Precompile): rank the
    // dynamic pair profile, pick the hottest command-name pairs, and
    // mark this script's adjacent occurrences head/tail, greedily and
    // without overlap. std::map iteration makes the ranking (and its
    // tie-break, lexicographic key order) deterministic.
    script.fused = true;
    std::vector<std::pair<uint64_t, const std::pair<std::string,
                                                    std::string> *>>
        ranked;
    for (const auto &kv : bc->pairCounts)
        if (kv.second >= kMinPairCount)
            ranked.emplace_back(kv.second, &kv.first);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &x, const auto &y) {
                         return x.first > y.first;
                     });
    if (ranked.size() > kMaxFusedPairs)
        ranked.resize(kMaxFusedPairs);

    CategoryScope pre(exec, Category::Precompile);
    RoutineScope r(exec, rFuse);
    exec.alu(40); // rank the profile, set up the rewrite
    for (size_t i = 0; i + 1 < script.cmds.size(); ++i) {
        if (script.cmds[i].fuse != 0)
            continue;
        std::pair<std::string, std::string> key = {
            cmdKey(script.cmds[i]), cmdKey(script.cmds[i + 1])};
        bool hot = false;
        for (const auto &rk : ranked)
            if (*rk.second == key) {
                hot = true;
                break;
            }
        if (!hot)
            continue;
        script.cmds[i].fuse = 1;
        script.cmds[i + 1].fuse = 2;
        exec.alu(30); // emit the fused descriptor
        exec.store(bc);
        ++i; // no overlapping pairs
    }
}

uint8_t
TclInterp::jitStepThunk(void *ctx, uint32_t index) noexcept
{
    auto *c = (JitRunCtx *)ctx;
    try {
        return c->self->jitCmdStep(ctx, index);
    } catch (...) {
        // Native stencil frames have no unwind tables; stash and
        // leave the stream normally — evalCompiled re-raises.
        c->pending = std::current_exception();
        return 1;
    }
}

uint8_t
TclInterp::jitCmdStep(void *ctx_ptr, uint32_t index)
{
    JitRunCtx &ctx = *(JitRunCtx *)ctx_ptr;
    BytecodeState::Script &cs = *ctx.cs;
    BytecodeState::Cmd &cc = cs.cmds[index];
    cs.executed = true;

    // The whole per-command fetch: the stencil's own glue, executing
    // inside the emitted region (the words are baked into the
    // stencil, so there is no compiled-word fetch at all).
    {
        CategoryScope fd(exec, Category::FetchDecode);
        exec.emitAt(cs.jitBase + index * kJitGlueInsts * 4,
                    trace::InstClass::IntAlu);
    }
    if (commandsRun >= commandBudget) {
        ctx.out = {Status::Stop, ""};
        ctx.returned = true;
        return 1;
    }
    // Identical substitution pass to the tier-2 loop in evalCompiled:
    // only the fetch of the words changed, not what is done with
    // them, so execute attribution matches command for command.
    Result failure;
    failure.status = Status::Ok;
    void *savedSlots = icSlots;
    uint32_t savedRef = icRef;
    icSlots = &cc.ic;
    icRef = 0;
    std::vector<std::string> substituted;
    substituted.reserve(cc.words.size());
    for (const std::string &word : cc.words) {
        if (!word.empty() && word[0] == '\x01') {
            substituted.push_back(word.substr(1));
        } else {
            substituted.push_back(substitute(word, failure));
            if (failure.status != Status::Ok) {
                icSlots = savedSlots;
                icRef = savedRef;
                ctx.out = failure;
                ctx.returned = true;
                return 1;
            }
        }
    }
    icSlots = nullptr; // handlers see no cursor
    Result res = evalCommand(substituted, cc.line);
    icSlots = savedSlots;
    icRef = savedRef;

    // The stencil's exit guard: falls through to the next command's
    // stencil on Ok, leaves the region on a non-local status or at
    // the end of the script.
    bool leaving = res.status != Status::Ok ||
                   (size_t)index + 1 >= cs.cmds.size();
    {
        CategoryScope fd(exec, Category::FetchDecode);
        exec.emitAt(cs.jitBase + index * kJitGlueInsts * 4 + 4,
                    trace::InstClass::CondBranch, 1, 0, leaving, 0);
    }
    if (res.status != Status::Ok) {
        ctx.out = res;
        ctx.returned = true;
        return 1;
    }
    ctx.last = res;
    return leaving ? 1 : 0;
}

bool
TclInterp::icReadHit(const std::string &name, SymTab &table, bool found)
{
    if (!icSlots)
        return false; // no active compiled-command site
    auto &slots = *(std::vector<BytecodeState::IcSlot> *)icSlots;
    uint32_t ord = icRef++;
    if (ord >= slots.size())
        slots.resize(ord + 1);
    BytecodeState::IcSlot &slot = slots[ord];
    bool global = &table == &scopes[0].vars;
    // Only global bindings are cacheable (a proc-local lives in a
    // per-call table, so its slot could never hit). Skip the probe
    // entirely rather than charging a guard that must always miss —
    // local-heavy programs pay nothing for the cache. The ordinal was
    // consumed above, so slot positions stay stable either way.
    if (!global)
        return false;
    // A slot that keeps missing is megamorphic — stop probing and
    // let the site pay exactly the baseline cost from here on. The
    // bounded early-miss tax is what any real monomorphic IC pays.
    if (slot.misses >= BytecodeState::kDeadAfterMisses)
        return false;
    if (slot.filled && slot.global && slot.name == name &&
        slot.epoch == symbolEpoch && found) {
        // Hit: short guarded load instead of the §3.3 translation.
        // In tier-3 the slot address and guard constant are baked
        // into the command's stencil, so the hit shrinks further: no
        // cache-slot indexing, no cached-entry load.
        MemModelScope mm(exec);
        RoutineScope r(exec, rIcHit);
        exec.noteMemModelAccess();
        if (jitMode) {
            exec.alu(1);                     // inlined slot constant
            exec.branch(false);              // epoch guard holds
            exec.load(table.lastBucketAddr); // direct slot load
            exec.alu(2);                     // value handoff
        } else {
            exec.alu(6);                     // cache-slot index
            exec.load(bc);                   // cached entry
            exec.branch(false);              // epoch/name guard holds
            exec.load(table.lastBucketAddr); // direct slot load
            exec.alu(8);                     // value handoff
        }
        ++slot.hits;
        slot.misses = 0;
        return true;
    }
    // Miss: the guard itself is memory-model execute work; the refill
    // is translation work (Precompile). The caller then performs the
    // full baseline lookup — the contained fallback path.
    {
        MemModelScope mm(exec);
        RoutineScope r(exec, rIcHit);
        exec.alu(6);
        exec.load(bc);
        exec.branch(true); // guard fails
    }
    {
        CategoryScope pre(exec, Category::Precompile);
        RoutineScope r(exec, rIcHit);
        exec.alu(10);
        exec.store(bc);
    }
    slot.filled = true;
    slot.global = global;
    slot.name = name;
    slot.epoch = symbolEpoch;
    ++slot.misses;
    return false;
}

void
TclInterp::debugInvalidate(const std::string &script)
{
    if (!bc)
        return;
    auto it = bc->scripts.find(script);
    if (it == bc->scripts.end())
        return;
    // Events emitted while executing the compiled form are already in
    // the trace; recompiling would let a fresh run diverge from a
    // recorded one. Contained fatal.
    if (it->second.executed)
        fatal("tclish-bytecode: invalidating an already-executed "
              "compiled script (code mutated after first execution)");
    bc->scripts.erase(it);
}

} // namespace interp::tclish
